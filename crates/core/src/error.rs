//! foMPI error type.

use fompi_fabric::FabricError;

/// Errors reported by the RMA layer. MPI would abort by default; we surface
/// typed errors so tests can assert on misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FompiError {
    /// Communication call outside any access epoch, or targeting a rank not
    /// covered by the current epoch.
    NoAccessEpoch {
        /// The offending target.
        target: u32,
    },
    /// Synchronisation call invalid in the current epoch state
    /// (e.g. `lock` inside a fence epoch, `complete` without `start`).
    InvalidEpoch(&'static str),
    /// Target displacement range exceeds the target's window.
    OutOfBounds {
        /// Target rank.
        target: u32,
        /// Byte offset of the access.
        offset: usize,
        /// Byte length of the access.
        len: usize,
        /// Target window size in bytes.
        win_size: usize,
    },
    /// The PSCW matching pool on the target is exhausted (more concurrent
    /// posters than the configured `pscw_pool`).
    PoolExhausted {
        /// The target whose pool overflowed.
        target: u32,
    },
    /// Origin and target datatype signatures disagree (total bytes differ).
    TypeMismatch {
        /// Total origin bytes.
        origin_bytes: usize,
        /// Total target bytes.
        target_bytes: usize,
    },
    /// Operation/type combination not valid for accumulate
    /// (e.g. non-arithmetic type).
    BadAccumulate(&'static str),
    /// Dynamic-window address range not attached at the target.
    NotAttached {
        /// Target rank.
        target: u32,
        /// Requested address.
        addr: u64,
    },
    /// Too many attached regions (config `max_dyn_regions`).
    RegionTableFull,
    /// Shared-memory window requested across node boundaries.
    NotShareable,
    /// Underlying fabric error.
    Fabric(FabricError),
}

impl From<FabricError> for FompiError {
    fn from(e: FabricError) -> Self {
        FompiError::Fabric(e)
    }
}

impl std::fmt::Display for FompiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FompiError::NoAccessEpoch { target } => {
                write!(f, "no access epoch covering target {target}")
            }
            FompiError::InvalidEpoch(what) => write!(f, "invalid epoch transition: {what}"),
            FompiError::OutOfBounds { target, offset, len, win_size } => write!(
                f,
                "access [{offset}, {}) exceeds window of size {win_size} at target {target}",
                offset + len
            ),
            FompiError::PoolExhausted { target } => {
                write!(f, "PSCW matching pool exhausted at target {target}")
            }
            FompiError::TypeMismatch { origin_bytes, target_bytes } => write!(
                f,
                "datatype signature mismatch: origin {origin_bytes} B vs target {target_bytes} B"
            ),
            FompiError::BadAccumulate(why) => write!(f, "invalid accumulate: {why}"),
            FompiError::NotAttached { target, addr } => {
                write!(f, "address {addr:#x} not attached at target {target}")
            }
            FompiError::RegionTableFull => write!(f, "dynamic window region table full"),
            FompiError::NotShareable => {
                write!(f, "shared window requires all ranks on one node")
            }
            FompiError::Fabric(e) => write!(f, "fabric: {e}"),
        }
    }
}

impl FompiError {
    /// May the caller retry after backing off? True only for wrapped
    /// transient fabric conditions (`SegmentBusy`, `Backpressure`).
    pub fn is_transient(&self) -> bool {
        matches!(self, FompiError::Fabric(e) if e.is_transient())
    }
}

impl std::error::Error for FompiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FompiError::Fabric(e) => Some(e),
            _ => None,
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FompiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = FompiError::OutOfBounds { target: 2, offset: 8, len: 8, win_size: 10 };
        assert!(e.to_string().contains("target 2"));
        let e = FompiError::NoAccessEpoch { target: 1 };
        assert!(e.to_string().contains("access epoch"));
    }

    #[test]
    fn fabric_error_converts() {
        let fe = FabricError::UnknownKey(fompi_fabric::SegKey { rank: 0, id: 9 });
        let e: FompiError = fe.clone().into();
        assert_eq!(e, FompiError::Fabric(fe));
    }

    #[test]
    fn source_exposes_fabric_cause() {
        use std::error::Error;
        let fe = FabricError::Backpressure { retry_after_ns: 500 };
        let e: FompiError = fe.clone().into();
        let src = e.source().expect("wrapped fabric error must be the source");
        assert_eq!(src.to_string(), fe.to_string());
        assert!(e.is_transient());
        assert!(FompiError::RegionTableFull.source().is_none());
        assert!(!FompiError::RegionTableFull.is_transient());
    }
}
