//! The paper's closed-form performance models, as code.
//!
//! §3 reports parametrized cost functions for every critical foMPI call,
//! measured on Blue Waters. They serve three purposes here:
//!
//! 1. the large-scale simulator ([`fompi-simnet`](https://crates.io)) uses
//!    them for per-primitive costs;
//! 2. the benchmark harness prints them next to our measured/fitted
//!    constants (EXPERIMENTS.md "models" table);
//! 3. users can do what §6 suggests — e.g. pick Fence vs PSCW by testing
//!    `fence(p) > post(k) + complete(k) + start() + wait()`.
//!
//! All results in nanoseconds; `s` is bytes, `p` processes, `k` neighbours.

/// Paper model constants (Blue Waters, Cray XE6/Gemini).
#[derive(Debug, Clone)]
pub struct PaperModel {
    /// Pput = put_byte·s + put_base.
    pub put_base: f64,
    /// Per-byte put cost.
    pub put_byte: f64,
    /// Pget = get_byte·s + get_base.
    pub get_base: f64,
    /// Per-byte get cost.
    pub get_byte: f64,
    /// Pacc,sum = accsum_byte·s + accsum_base (DMAPP-accelerated MPI_SUM).
    pub accsum_base: f64,
    /// Per-byte accelerated-accumulate cost.
    pub accsum_byte: f64,
    /// Pacc,min = accmin_byte·s + accmin_base (lock-fallback MPI_MIN).
    pub accmin_base: f64,
    /// Per-byte fallback-accumulate cost.
    pub accmin_byte: f64,
    /// PCAS (8-byte compare-and-swap).
    pub cas: f64,
    /// Pfence = fence_log · log2 p.
    pub fence_log: f64,
    /// Ppost = Pcomplete = pscw_per_neighbor · k.
    pub pscw_per_neighbor: f64,
    /// Pstart.
    pub start: f64,
    /// Pwait.
    pub wait: f64,
    /// Plock,excl.
    pub lock_excl: f64,
    /// Plock,shrd = Plock_all.
    pub lock_shared: f64,
    /// Punlock = Punlock_all.
    pub unlock: f64,
    /// Pflush.
    pub flush: f64,
    /// Psync.
    pub sync: f64,
    /// Per-message injection overhead o (DMAPP descriptor build + doorbell).
    pub inject: f64,
    /// Issue-side gap g between coalesced members of an injection burst
    /// (see `fompi_fabric::batch`): successive ops folded into an open
    /// burst pay `gap` instead of `inject`.
    pub gap: f64,
}

impl Default for PaperModel {
    fn default() -> Self {
        Self {
            put_base: 1_000.0,
            put_byte: 0.16,
            get_base: 1_900.0,
            get_byte: 0.17,
            accsum_base: 2_400.0,
            accsum_byte: 28.0,
            accmin_base: 7_300.0,
            accmin_byte: 0.8,
            cas: 2_400.0,
            fence_log: 2_900.0,
            pscw_per_neighbor: 350.0,
            start: 700.0,
            wait: 1_800.0,
            lock_excl: 5_400.0,
            lock_shared: 2_700.0,
            unlock: 400.0,
            flush: 76.0,
            sync: 17.0,
            inject: 416.0,
            gap: 50.0,
        }
    }
}

impl PaperModel {
    /// Pput(s).
    pub fn put(&self, s: usize) -> f64 {
        self.put_base + self.put_byte * s as f64
    }

    /// Pget(s).
    pub fn get(&self, s: usize) -> f64 {
        self.get_base + self.get_byte * s as f64
    }

    /// Pacc,sum(s).
    pub fn acc_sum(&self, s: usize) -> f64 {
        self.accsum_base + self.accsum_byte * s as f64
    }

    /// Pacc,min(s).
    pub fn acc_min(&self, s: usize) -> f64 {
        self.accmin_base + self.accmin_byte * s as f64
    }

    /// Pfence(p).
    pub fn fence(&self, p: usize) -> f64 {
        self.fence_log * (p.max(2) as f64).log2()
    }

    /// Ppost(k) (= Pcomplete(k)).
    pub fn post(&self, k: usize) -> f64 {
        self.pscw_per_neighbor * k as f64
    }

    /// Full PSCW round for k neighbours: post + start + complete + wait.
    pub fn pscw_round(&self, k: usize) -> f64 {
        2.0 * self.post(k) + self.start + self.wait
    }

    /// §6's example rule: prefer PSCW over fence when the fence is costlier.
    pub fn prefer_pscw(&self, p: usize, k: usize) -> bool {
        self.fence(p) > self.pscw_round(k)
    }

    /// Closed-form cost of a burst of `n` contiguous `s`-byte puts with
    /// issue-side batching: one injection, `n-1` issue gaps, one wire
    /// message of the combined size. Compare [`PaperModel::put_unbatched`].
    pub fn put_batched(&self, n: usize, s: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.inject + (n - 1) as f64 * self.gap + self.put(n * s)
    }

    /// The same `n` puts without batching: each pays its own injection and
    /// its own wire message. (The per-byte terms are identical — batching
    /// wins exactly `(n-1)·(inject + put_base - gap)`.)
    pub fn put_unbatched(&self, n: usize, s: usize) -> f64 {
        n as f64 * (self.inject + self.put(s))
    }

    /// Closed-form cost of one notified put of `s` bytes (foMPI-NA-style:
    /// the data and its completion notification fuse into one call). The
    /// origin pays two injections — the put and the notification AMO that
    /// trails it in the DMAPP ordered class — and the notification is
    /// visible once both the data and the AMO latency have elapsed:
    /// `2·inject + max(Pput(s), Pacc,sum(8))`.
    pub fn put_notified(&self, s: usize) -> f64 {
        2.0 * self.inject + self.put(s).max(self.acc_sum(8))
    }

    /// The same producer-visible handoff with the pre-notified idiom the
    /// paper's applications use (§4.4): put the data, then a *separately
    /// flushed* flag AMO the consumer polls — the flush serializes the
    /// data's wire latency before the flag update even starts:
    /// `2·inject + Pflush + Pput(s) + Pacc,sum(8)`.
    pub fn put_polled(&self, s: usize) -> f64 {
        2.0 * self.inject + self.flush + self.put(s) + self.acc_sum(8)
    }

    /// One producer-consumer channel round trip over notified access
    /// (`msg::channel`): a notified put of the payload plus the notified
    /// credit-return AMO flowing back.
    pub fn channel_round(&self, s: usize) -> f64 {
        self.put_notified(s) + self.notified_amo()
    }

    /// Cost of a bare notified AMO (credit return, counters): the AMO and
    /// its notification share the ordered path, so the origin pays two
    /// injections and one AMO latency dominates.
    pub fn notified_amo(&self) -> f64 {
        2.0 * self.inject + self.acc_sum(8)
    }

    /// Closed-form cost of one uncontended versioned read (`fompi-txn`):
    /// an atomic version fetch (CAS-class AMO), an atomic payload read of
    /// `s` bytes through the accumulate path, and the version re-check
    /// AMO — `2·PCAS + Pacc,sum(s)`.
    pub fn txn_read(&self, s: usize) -> f64 {
        2.0 * self.cas + self.acc_sum(s)
    }

    /// Closed-form cost of one uncontended optimistic commit over `nkeys`
    /// cells of `s` payload bytes each: a lock CAS and an unlock CAS per
    /// key, an atomic payload write per key, and the two flushes that
    /// fence the write and publication phases —
    /// `2k·PCAS + k·Pacc,sum(s) + 2·Pflush`.
    pub fn txn_commit(&self, nkeys: usize, s: usize) -> f64 {
        let k = nkeys as f64;
        2.0 * k * self.cas + k * self.acc_sum(s) + 2.0 * self.flush
    }

    /// One fan-in message round over a remote-memory channel
    /// (`fompi-rmc`): because each producer owns a private slot region on
    /// the consumer (record `source` replaces any shared cursor), the data
    /// path adds *nothing* over the SPSC channel — a notified put in, a
    /// notified credit AMO back.
    pub fn rmc_fanin_round(&self, s: usize) -> f64 {
        self.channel_round(s)
    }

    /// One fan-out publication of `s` bytes to `m` subscribers: the
    /// publisher serializes `m` notified-put *injections* (2 each — data +
    /// trailing notification AMO) but the wire latencies overlap, so one
    /// `max(Pput(s), Pacc,sum(8))` term covers the whole subscriber set.
    pub fn rmc_fanout_publish(&self, m: usize, s: usize) -> f64 {
        2.0 * m as f64 * self.inject + self.put(s).max(self.acc_sum(8))
    }

    /// One RPC round trip (`fompi-rmc::rpc`): the request rides a fan-in
    /// channel round to the server, the reply rides the caller's reply
    /// channel back — two full channel rounds, credits included.
    pub fn rpc_round(&self, req: usize, rep: usize) -> f64 {
        self.channel_round(req) + self.channel_round(rep)
    }
}

/// Instruction counts the paper reports for foMPI fast paths (§2.3/§2.4/§6),
/// and the derived ns overheads at the 2.3 GHz Interlagos clock.
pub mod overhead {
    /// Instructions added by MPI_Put/MPI_Get on the optimized critical path.
    pub const PUT_GET_INSTRUCTIONS: u32 = 173;
    /// Instructions added by the flush family.
    pub const FLUSH_INSTRUCTIONS: u32 = 78;
    /// Approximate instructions for one intra-node message injection (§3.1.2
    /// reports ≈190 instructions ≈ 80 ns).
    pub const INJECT_INSTRUCTIONS: u32 = 190;
    /// Interlagos clock, GHz.
    pub const CLOCK_GHZ: f64 = 2.3;

    /// Convert an instruction count to nanoseconds at ~1 IPC.
    pub fn instr_ns(instructions: u32) -> f64 {
        instructions as f64 / CLOCK_GHZ
    }

    /// foMPI put/get software overhead in ns (≈75 ns).
    pub fn put_get_ns() -> f64 {
        instr_ns(PUT_GET_INSTRUCTIONS)
    }

    /// foMPI flush software overhead in ns (≈34 ns; the paper's measured
    /// Pflush = 76 ns includes the DMAPP bulk-completion check).
    pub fn flush_ns() -> f64 {
        instr_ns(FLUSH_INSTRUCTIONS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_at_published_points() {
        let m = PaperModel::default();
        assert!((m.put(8) - 1001.28).abs() < 0.01);
        assert!((m.get(8) - 1901.36).abs() < 0.01);
        assert!((m.fence(8) - 2900.0 * 3.0).abs() < 1e-9);
        assert!((m.post(2) - 700.0).abs() < 1e-9);
    }

    #[test]
    fn fence_vs_pscw_crossover_exists() {
        let m = PaperModel::default();
        // Small k, large p: PSCW wins.
        assert!(m.prefer_pscw(1 << 16, 2));
        // Huge k at tiny p: fence wins.
        assert!(!m.prefer_pscw(2, 64));
    }

    #[test]
    fn batched_model_amortizes_injection() {
        let m = PaperModel::default();
        // A single op gains nothing from a burst.
        assert!((m.put_batched(1, 8) - (m.inject + m.put(8))).abs() < 1e-9);
        assert!((m.put_unbatched(1, 8) - m.put_batched(1, 8)).abs() < 1e-9);
        // An 8-op burst of small puts pays one base latency, not eight.
        let gain = m.put_unbatched(8, 8) - m.put_batched(8, 8);
        assert!((gain - 7.0 * (m.inject + m.put_base - m.gap)).abs() < 1e-6);
        assert!(m.put_batched(8, 8) < 0.5 * m.put_unbatched(8, 8));
    }

    #[test]
    fn overheads_are_sub_microsecond() {
        assert!(overhead::put_get_ns() < 100.0);
        assert!(overhead::flush_ns() < 50.0);
    }

    #[test]
    fn notified_put_beats_polled_flag_at_every_size() {
        let m = PaperModel::default();
        for s in [8usize, 64, 512, 4096, 1 << 16] {
            assert!(
                m.put_notified(s) < m.put_polled(s),
                "notified access must beat the flush+flag idiom at s={s}"
            );
        }
        // The win approaches flush + min(Pput, Pacc,sum) for small puts
        // (overlap of the data and the notification) …
        let gain_small = m.put_polled(8) - m.put_notified(8);
        assert!((gain_small - (m.flush + m.put(8).min(m.acc_sum(8)))).abs() < 1e-9);
        // … and stays ≥ flush + Pacc,sum once the put dominates the max.
        let gain_big = m.put_polled(1 << 20) - m.put_notified(1 << 20);
        assert!((gain_big - (m.flush + m.acc_sum(8))).abs() < 1e-6);
    }

    #[test]
    fn txn_models_scale_with_keys_and_payload() {
        let m = PaperModel::default();
        // A versioned read pays two version AMOs on top of the atomic
        // payload read, so it always costs more than the bare accumulate…
        assert!((m.txn_read(16) - (2.0 * m.cas + m.acc_sum(16))).abs() < 1e-9);
        assert!(m.txn_read(16) > m.acc_sum(16));
        // …and a commit costs strictly more per extra key (lock + write +
        // unlock), by exactly 2·PCAS + Pacc,sum(s).
        let s = 16;
        let per_key = m.txn_commit(2, s) - m.txn_commit(1, s);
        assert!((per_key - (2.0 * m.cas + m.acc_sum(s))).abs() < 1e-9);
        assert!(m.txn_commit(4, s) > m.txn_commit(2, s));
        // A 1-key commit still beats two separate commits (one flush pair
        // amortized), which is the whole point of multi-key transactions.
        assert!(m.txn_commit(2, s) < 2.0 * m.txn_commit(1, s));
    }

    #[test]
    fn channel_round_is_put_plus_credit() {
        let m = PaperModel::default();
        let s = 256;
        assert!((m.channel_round(s) - (m.put_notified(s) + m.notified_amo())).abs() < 1e-9);
        assert!(m.notified_amo() > m.acc_sum(8));
    }

    #[test]
    fn rmc_fanin_is_faa_free() {
        // The MPMC fan-in data path must cost exactly the SPSC channel
        // round: per-producer slot regions mean no shared cursor, no FAA.
        let m = PaperModel::default();
        for s in [8usize, 256, 4096] {
            assert!((m.rmc_fanin_round(s) - m.channel_round(s)).abs() < 1e-9);
        }
    }

    #[test]
    fn rmc_fanout_overlaps_wire_latency() {
        let m = PaperModel::default();
        let s = 512;
        // One subscriber degenerates to a plain notified put.
        assert!((m.rmc_fanout_publish(1, s) - m.put_notified(s)).abs() < 1e-9);
        // Each extra subscriber costs exactly two more injections…
        let slope = m.rmc_fanout_publish(3, s) - m.rmc_fanout_publish(2, s);
        assert!((slope - 2.0 * m.inject).abs() < 1e-9);
        // …which beats m sequential notified puts (the overlap win).
        assert!(m.rmc_fanout_publish(8, s) < 8.0 * m.put_notified(s));
    }

    #[test]
    fn rpc_round_is_two_channel_rounds() {
        let m = PaperModel::default();
        let (req, rep) = (64, 256);
        assert!(
            (m.rpc_round(req, rep) - (m.channel_round(req) + m.channel_round(rep))).abs() < 1e-9
        );
        // An RPC always costs more than a one-way message of either size.
        assert!(m.rpc_round(req, rep) > m.channel_round(req.max(rep)));
    }
}
