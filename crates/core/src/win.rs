//! MPI-3 windows: creation flavours, epoch state and addressing.
//!
//! §2.2 of the paper: four collective creation routines with very different
//! scalability properties, all reproduced here:
//!
//! * [`Win::create`] (*traditional*) — exposes caller-specified sizes at
//!   arbitrary per-rank base addresses, forcing Ω(p) remote-descriptor
//!   storage per process (two allgathers: one for DMAPP descriptors, one
//!   for the intra-node XPMEM information). Discouraged, kept for
//!   backwards compatibility — and for the memory-scaling experiment.
//! * [`Win::allocate`] — library-allocated *symmetric heap*: a leader
//!   proposes an id, every rank tries to claim it, an allreduce checks
//!   success, repeat — O(1) memory, O(log p) time w.h.p.
//! * [`Win::create_dynamic`] — no initial memory; regions attach/detach
//!   locally and remote peers resolve addresses through the one-sided
//!   cached-region-table protocol (see the `dynamic` module).
//! * [`Win::allocate_shared`] — co-located ranks get direct load/store
//!   views (XPMEM), O(1) memory per core.

use crate::error::{FompiError, Result};
use crate::meta::{self, off, WinConfig};
use fompi_fabric::{Endpoint, NotifyRecord, SegKey, Segment};
use fompi_runtime::{CollEngine, Group, RankCtx};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

/// Which creation routine produced the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WinKind {
    /// MPI_Win_create.
    Create,
    /// MPI_Win_allocate.
    Allocate,
    /// MPI_Win_create_dynamic.
    Dynamic,
    /// MPI_Win_allocate_shared.
    Shared,
}

/// How remote data segments are addressed.
#[derive(Debug, Clone)]
pub(crate) enum KeyTable {
    /// Symmetric id: every rank registered under the same id — O(1).
    Sym(u64),
    /// Per-target descriptor table — Ω(p) (traditional windows).
    Table(Arc<Vec<SegKey>>),
    /// No static data segment (dynamic windows).
    None,
}

/// Per-target displacement units.
#[derive(Debug, Clone)]
pub(crate) enum DispUnits {
    /// All ranks share one unit.
    Uniform(usize),
    /// Per-rank units (traditional windows) — Ω(p).
    PerRank(Arc<Vec<usize>>),
}

impl DispUnits {
    pub(crate) fn of(&self, target: u32) -> usize {
        match self {
            DispUnits::Uniform(u) => *u,
            DispUnits::PerRank(v) => v[target as usize],
        }
    }
}

/// Lock type for passive-target epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockType {
    /// MPI_LOCK_SHARED.
    Shared,
    /// MPI_LOCK_EXCLUSIVE.
    Exclusive,
}

/// Current access-epoch state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum AccessEpoch {
    /// No epoch open.
    None,
    /// Between fences.
    Fence,
    /// PSCW access epoch toward a group.
    Pscw(Group),
    /// Passive target: at least one per-target lock held.
    Lock,
    /// Passive target: global lock_all held.
    LockAll,
}

/// Current exposure-epoch state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ExposureEpoch {
    /// Not exposed (passive exposure is implicit and always on).
    None,
    /// Between fences.
    Fence,
    /// PSCW exposure epoch for a group.
    Pscw(Group),
}

#[derive(Debug)]
pub(crate) struct EpochState {
    pub access: AccessEpoch,
    pub exposure: ExposureEpoch,
    /// Passive-target locks currently held, by target.
    pub locks: HashMap<u32, LockType>,
    /// Targets locked with MPI_MODE_NOCHECK (no protocol state to release).
    pub nocheck: std::collections::HashSet<u32>,
}

impl EpochState {
    fn new() -> Self {
        Self {
            access: AccessEpoch::None,
            exposure: ExposureEpoch::None,
            locks: HashMap::new(),
            nocheck: std::collections::HashSet::new(),
        }
    }
}

/// Immutable window facts shared by all ranks.
pub(crate) struct WinShared {
    pub kind: WinKind,
    pub cfg: WinConfig,
    pub keys: KeyTable,
    pub meta_id: u64,
    pub disp: DispUnits,
    /// Per-rank window sizes in bytes (traditional windows only; other
    /// kinds carry [`SizeInfo::Uniform`] or none).
    pub sizes: SizeInfo,
    /// Master rank hosting the global lock.
    pub master: u32,
    pub p: usize,
}

/// Window sizes, as stored per creation kind.
#[derive(Debug, Clone)]
pub enum SizeInfo {
    /// Same size everywhere.
    Uniform(usize),
    /// Per-rank sizes (Ω(p), traditional windows).
    PerRank(Arc<Vec<usize>>),
    /// No static size (dynamic windows).
    None,
}

impl SizeInfo {
    /// Size of `target`'s window, if statically known.
    pub fn of(&self, target: u32) -> Option<usize> {
        match self {
            SizeInfo::Uniform(s) => Some(*s),
            SizeInfo::PerRank(v) => Some(v[target as usize]),
            SizeInfo::None => None,
        }
    }
}

/// A dynamic-window region attached locally.
#[derive(Debug, Clone)]
pub(crate) struct LocalRegion {
    pub addr: u64,
    pub size: usize,
    pub key: SegKey,
    pub seg: Arc<Segment>,
}

/// Cached remote region table for dynamic windows.
#[derive(Debug, Clone, Default)]
pub(crate) struct RemoteRegions {
    pub id: u64,
    pub regions: Vec<(u64, u64, u64)>, // (addr, size, key_id)
}

/// An MPI-3 window (one rank's handle).
///
/// All creation functions are collective over the universe. The handle is
/// rank-local (not `Send`); protocol state lives in the shared fabric
/// segments.
pub struct Win {
    pub(crate) ep: Rc<Endpoint>,
    pub(crate) coll: Arc<CollEngine>,
    pub(crate) shared: Arc<WinShared>,
    pub(crate) my_data: Option<Arc<Segment>>,
    pub(crate) my_meta: Arc<Segment>,
    pub(crate) state: RefCell<EpochState>,
    /// Count of exclusive locks currently held by this origin (the paper's
    /// "already holds an exclusive lock" fast path, §2.3).
    pub(crate) held_excl: Cell<u32>,
    /// Dynamic windows: locally attached regions.
    pub(crate) dyn_local: RefCell<Vec<LocalRegion>>,
    /// Dynamic windows: next local virtual address.
    pub(crate) dyn_next_addr: Cell<u64>,
    /// Dynamic windows: cache of remote region tables.
    pub(crate) dyn_cache: RefCell<HashMap<u32, RemoteRegions>>,
    /// Notified access: records popped from this rank's notification ring
    /// while matching a different `(source, tag)` — re-offered, in arrival
    /// order, to later waits (see [`crate::sync::notify`]).
    pub(crate) notify_stash: RefCell<VecDeque<NotifyRecord>>,
}

impl Win {
    // ------------------------------------------------------------ creation

    /// MPI_Win_allocate: symmetric-heap allocation, O(1) metadata.
    pub fn allocate(ctx: &RankCtx, size: usize, disp_unit: usize) -> Result<Win> {
        Self::allocate_cfg(ctx, size, disp_unit, WinConfig::default())
    }

    /// [`Win::allocate`] with explicit tuning knobs.
    pub fn allocate_cfg(
        ctx: &RankCtx,
        size: usize,
        disp_unit: usize,
        cfg: WinConfig,
    ) -> Result<Win> {
        let seg = Segment::new(size.max(8));
        let data_id = Self::claim_symmetric(ctx, seg.clone())?;
        Self::finish(
            ctx,
            WinKind::Allocate,
            cfg,
            KeyTable::Sym(data_id),
            Some(seg),
            DispUnits::Uniform(disp_unit),
            SizeInfo::Uniform(size),
        )
    }

    /// MPI_Win_create: traditional window over "existing" memory of
    /// caller-chosen size; requires Ω(p) descriptor storage (two
    /// allgathers). Strongly discouraged by the paper; included for
    /// completeness and the scalability comparison.
    pub fn create(ctx: &RankCtx, size: usize, disp_unit: usize) -> Result<Win> {
        Self::create_cfg(ctx, size, disp_unit, WinConfig::default())
    }

    /// [`Win::create`] with explicit tuning knobs.
    pub fn create_cfg(ctx: &RankCtx, size: usize, disp_unit: usize, cfg: WinConfig) -> Result<Win> {
        let seg = Segment::new(size.max(8));
        let key = ctx.fabric().register(ctx.rank(), seg.clone());
        // First allgather: DMAPP descriptors of every rank (the XPMEM
        // allgather among node-local ranks is subsumed: the key table
        // serves both transports here).
        let mut payload = Vec::with_capacity(24);
        payload.extend_from_slice(&(key.rank as u64).to_le_bytes());
        payload.extend_from_slice(&key.id.to_le_bytes());
        payload.extend_from_slice(&(size as u64).to_le_bytes());
        payload.extend_from_slice(&(disp_unit as u64).to_le_bytes());
        let all = ctx.allgather(&payload);
        let mut keys = Vec::with_capacity(all.len());
        let mut sizes = Vec::with_capacity(all.len());
        let mut disps = Vec::with_capacity(all.len());
        for row in &all {
            let rank = u64::from_le_bytes(row[0..8].try_into().unwrap()) as u32;
            let id = u64::from_le_bytes(row[8..16].try_into().unwrap());
            keys.push(SegKey { rank, id });
            sizes.push(u64::from_le_bytes(row[16..24].try_into().unwrap()) as usize);
            disps.push(u64::from_le_bytes(row[24..32].try_into().unwrap()) as usize);
        }
        Self::finish(
            ctx,
            WinKind::Create,
            cfg,
            KeyTable::Table(Arc::new(keys)),
            Some(seg),
            DispUnits::PerRank(Arc::new(disps)),
            SizeInfo::PerRank(Arc::new(sizes)),
        )
    }

    /// MPI_Win_create_dynamic: no initial memory; use
    /// [`Win::attach`]/[`Win::detach`].
    pub fn create_dynamic(ctx: &RankCtx) -> Result<Win> {
        Self::create_dynamic_cfg(ctx, WinConfig::default())
    }

    /// [`Win::create_dynamic`] with explicit tuning knobs.
    pub fn create_dynamic_cfg(ctx: &RankCtx, cfg: WinConfig) -> Result<Win> {
        Self::finish(
            ctx,
            WinKind::Dynamic,
            cfg,
            KeyTable::None,
            None,
            DispUnits::Uniform(1),
            SizeInfo::None,
        )
    }

    /// MPI_Win_allocate_shared: all ranks must be co-located; peers get
    /// direct load/store access via [`Win::shared_query`].
    pub fn allocate_shared(ctx: &RankCtx, size: usize, disp_unit: usize) -> Result<Win> {
        if !ctx.fabric().topology().single_node() {
            return Err(FompiError::NotShareable);
        }
        let seg = Segment::new(size.max(8));
        let data_id = Self::claim_symmetric(ctx, seg.clone())?;
        Self::finish(
            ctx,
            WinKind::Shared,
            WinConfig::default(),
            KeyTable::Sym(data_id),
            Some(seg),
            DispUnits::Uniform(disp_unit),
            SizeInfo::Uniform(size),
        )
    }

    /// The symmetric-heap claim loop of §2.2: leader proposes an id,
    /// everyone tries to register under it, an allreduce checks global
    /// success; repeat until all succeeded.
    fn claim_symmetric(ctx: &RankCtx, seg: Arc<Segment>) -> Result<u64> {
        loop {
            let proposal = if ctx.rank() == 0 {
                ctx.fabric().propose_id().to_le_bytes().to_vec()
            } else {
                vec![0u8; 8]
            };
            let id = u64::from_le_bytes(ctx.bcast(0, &proposal).try_into().unwrap());
            let ok = ctx.fabric().register_symmetric(ctx.rank(), id, seg.clone()).is_ok();
            let all_ok = ctx.allreduce_u64(ok as u64, |a, b| a & b);
            if all_ok == 1 {
                return Ok(id);
            }
            if ok {
                ctx.fabric().deregister(SegKey { rank: ctx.rank(), id });
            }
        }
    }

    fn finish(
        ctx: &RankCtx,
        kind: WinKind,
        cfg: WinConfig,
        keys: KeyTable,
        my_data: Option<Arc<Segment>>,
        disp: DispUnits,
        sizes: SizeInfo,
    ) -> Result<Win> {
        // Meta segment: symmetric id so peers can address protocol state
        // with O(1) storage regardless of window kind.
        let meta = Segment::new(cfg.meta_bytes());
        Self::init_meta(&meta, &cfg);
        let meta_id;
        loop {
            let proposal = if ctx.rank() == 0 {
                ctx.fabric().propose_id().to_le_bytes().to_vec()
            } else {
                vec![0u8; 8]
            };
            let id = u64::from_le_bytes(ctx.bcast(0, &proposal).try_into().unwrap());
            let ok = ctx.fabric().register_symmetric(ctx.rank(), id, meta.clone()).is_ok();
            if ctx.allreduce_u64(ok as u64, |a, b| a & b) == 1 {
                meta_id = id;
                break;
            }
            if ok {
                ctx.fabric().deregister(SegKey { rank: ctx.rank(), id });
            }
        }
        ctx.ep().charge(ctx.fabric().model().register_ns);
        let shared =
            Arc::new(WinShared { kind, cfg, keys, meta_id, disp, sizes, master: 0, p: ctx.size() });
        let win = Win {
            ep: ctx.ep_rc(),
            coll: ctx.coll_arc(),
            shared,
            my_data,
            my_meta: meta,
            state: RefCell::new(EpochState::new()),
            held_excl: Cell::new(0),
            dyn_local: RefCell::new(Vec::new()),
            dyn_next_addr: Cell::new(DYN_BASE_ADDR),
            dyn_cache: RefCell::new(HashMap::new()),
            notify_stash: RefCell::new(VecDeque::new()),
        };
        // Ensure every rank finished registration before anyone
        // communicates.
        ctx.barrier();
        Ok(win)
    }

    fn init_meta(meta: &Segment, cfg: &WinConfig) {
        if cfg.pscw_fast {
            assert!(
                !cfg.dyn_notify,
                "pscw_fast repurposes the slot pool; dyn_notify needs the free list"
            );
            // Fast PSCW: the pool is a zeroed slot array (0 = free) and
            // MATCH_HEAD is the FAA ring cursor starting at 0. The segment
            // is allocated zeroed, so nothing to write.
        } else {
            // Free list: chain 0 → 1 → ... → n-1 → NIL.
            for i in 0..cfg.pscw_pool {
                let next = if i + 1 < cfg.pscw_pool { (i + 1) as u32 } else { meta::NIL };
                meta.write_u64(cfg.pool_off(i as u32), meta::pack_elem(0, next));
            }
            meta.write_u64(off::FREE_HEAD, meta::pack_head(0, 0));
            meta.write_u64(off::MATCH_HEAD, meta::pack_head(0, meta::NIL));
        }
        meta.write_u64(off::READERS_HEAD, meta::pack_head(0, meta::NIL));
        meta.write_u64(off::INVAL_HEAD, meta::pack_head(0, meta::NIL));
        meta.write_u64(off::MCS_TAIL, 0);
        meta.write_u64(off::MCS_FLAG, 0);
        meta.write_u64(off::MCS_NEXT, 0);
    }

    // ---------------------------------------------------------- addressing

    /// Remote descriptor for `target`'s data segment.
    pub(crate) fn data_key(&self, target: u32) -> Result<SegKey> {
        match &self.shared.keys {
            KeyTable::Sym(id) => Ok(SegKey { rank: target, id: *id }),
            KeyTable::Table(t) => Ok(t[target as usize]),
            KeyTable::None => {
                Err(FompiError::InvalidEpoch("dynamic windows address memory by attached address"))
            }
        }
    }

    /// Remote descriptor for `target`'s meta segment.
    pub(crate) fn meta_key(&self, target: u32) -> SegKey {
        SegKey { rank: target, id: self.shared.meta_id }
    }

    /// Resolve `(target, disp, len)` to a fabric location, honouring the
    /// target's displacement unit (and, for dynamic windows, the cached
    /// region-table protocol).
    pub(crate) fn target_span(
        &self,
        target: u32,
        target_disp: usize,
        len: usize,
    ) -> Result<(SegKey, usize)> {
        if self.shared.kind == WinKind::Dynamic {
            return self.dyn_resolve(target, target_disp as u64, len);
        }
        let off = target_disp * self.shared.disp.of(target);
        if let Some(sz) = self.shared.sizes.of(target) {
            if off + len > sz {
                return Err(FompiError::OutOfBounds { target, offset: off, len, win_size: sz });
            }
        }
        Ok((self.data_key(target)?, off))
    }

    // ------------------------------------------------------------- queries

    /// The window kind.
    pub fn kind(&self) -> WinKind {
        self.shared.kind
    }

    /// Number of ranks in the window.
    pub fn size(&self) -> usize {
        self.shared.p
    }

    /// This rank.
    pub fn rank(&self) -> u32 {
        self.ep.rank()
    }

    /// Local window size in bytes (0 for dynamic windows).
    pub fn local_size(&self) -> usize {
        self.my_data.as_ref().map(|s| s.len()).unwrap_or(0)
    }

    /// Read the local window memory (what a load from the window buffer
    /// would return). Public model: the window owns its memory.
    pub fn read_local(&self, off: usize, dst: &mut [u8]) {
        self.my_data.as_ref().expect("window has no static local memory").read(off, dst);
        if self.rc_on() {
            self.rc_local(off, dst.len(), false);
        }
    }

    /// Write the local window memory (a local store).
    pub fn write_local(&self, off: usize, src: &[u8]) {
        self.my_data.as_ref().expect("window has no static local memory").write(off, src);
        if self.rc_on() {
            self.rc_local(off, src.len(), true);
        }
    }

    /// Direct load/store view of `rank`'s shared-window segment
    /// (MPI_Win_shared_query). Transient XPMEM attach failures
    /// (`SegmentBusy` under an armed fault plan) are retried with bounded
    /// backoff — the attach is purely local, so no RMA ordering guarantee
    /// constrains the retry.
    pub fn shared_query(&self, rank: u32) -> Result<fompi_fabric::xpmem::MappedView> {
        if self.shared.kind != WinKind::Shared {
            return Err(FompiError::InvalidEpoch("shared_query needs a shared window"));
        }
        let key = self.data_key(rank)?;
        let mut attempt = 0u32;
        loop {
            match fompi_fabric::xpmem::MappedView::attach(self.ep.fabric(), self.ep.rank(), key) {
                Ok(view) => return Ok(view),
                Err(fompi_fabric::FabricError::SegmentBusy { retry_after_ns })
                    if attempt < crate::dynamic::ATTACH_RETRY_LIMIT =>
                {
                    attempt += 1;
                    let t0 = self.ep.clock().now();
                    self.ep.charge(crate::dynamic::busy_backoff_ns(retry_after_ns, attempt));
                    self.ep.trace_sync(
                        fompi_fabric::telemetry::EventKind::FaultRetry,
                        self.ep.rank(),
                        t0,
                    );
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// This window's displacement unit toward `target`.
    pub fn disp_unit(&self, target: u32) -> usize {
        self.shared.disp.of(target)
    }

    /// Statically-known window sizes (per creation kind).
    pub fn size_info(&self) -> &SizeInfo {
        &self.shared.sizes
    }

    /// The window's tuning configuration.
    pub fn config(&self) -> &WinConfig {
        &self.shared.cfg
    }

    /// Per-rank metadata bytes this window consumes — the paper's central
    /// scalability metric (§2.2): Ω(p) for traditional windows, O(1)
    /// otherwise.
    pub fn metadata_bytes(&self) -> usize {
        let base = self.shared.cfg.meta_bytes();
        match self.shared.kind {
            // key (12 B) + size (8 B) + disp unit (8 B) per target.
            WinKind::Create => base + self.shared.p * 28,
            WinKind::Allocate | WinKind::Shared => base + 24,
            WinKind::Dynamic => {
                base + self
                    .dyn_cache
                    .borrow()
                    .values()
                    .map(|c| 16 + c.regions.len() * 24)
                    .sum::<usize>()
            }
        }
    }

    /// Free the window (collective). Consumes the handle. Notifications
    /// still queued for this rank — stashed or in the ring — are dropped
    /// and counted ([`fompi_fabric::Counters::notify_dropped`]): like
    /// `MPI_Win_free` with unmatched foMPI-NA notifications, the records
    /// do not outlive the window they synchronised.
    pub fn free(self, ctx: &RankCtx) {
        // Racecheck: probe epoch quiescence before the barrier (the state
        // is per-rank), but mark the id freed only after it — peers may
        // legitimately still be recording their last pre-free accesses.
        let rc_clean = if self.rc_on() { Some(self.rc_free_clean()) } else { None };
        ctx.barrier();
        if let Some(clean) = rc_clean {
            self.rc_freed(clean);
        }
        let stashed = self.notify_stash.borrow_mut().drain(..).count() as u64;
        if stashed > 0 {
            self.trace_scope();
            let t0 = self.ep.clock().now();
            for _ in 0..stashed {
                self.ep.trace_sync(fompi_fabric::telemetry::EventKind::NotifyDrop, self.rank(), t0);
            }
            ctx.fabric()
                .counters()
                .notify_dropped
                .fetch_add(stashed, std::sync::atomic::Ordering::Relaxed);
        }
        self.ep.notify_drop_all();
        if let KeyTable::Sym(id) = &self.shared.keys {
            ctx.fabric().deregister(SegKey { rank: self.rank(), id: *id });
        } else if let KeyTable::Table(t) = &self.shared.keys {
            ctx.fabric().deregister(t[self.rank() as usize]);
        }
        for r in self.dyn_local.borrow().iter() {
            ctx.fabric().deregister(r.key);
        }
        ctx.fabric().deregister(SegKey { rank: self.rank(), id: self.shared.meta_id });
        ctx.barrier();
    }

    // ----------------------------------------------------------- telemetry

    /// Attribute subsequent endpoint telemetry events to this window (the
    /// meta-segment id doubles as a process-unique window id). A plain
    /// `Cell` store — cheap enough to run unconditionally.
    #[inline]
    pub(crate) fn trace_scope(&self) {
        self.ep.set_trace_win(self.shared.meta_id);
    }

    /// This window's id as it appears in telemetry reports and traces.
    pub fn telemetry_id(&self) -> u64 {
        self.shared.meta_id
    }

    /// The fabric endpoint this window issues through: the rank's virtual
    /// clock, time charging and trace hooks. Layers built on top of the
    /// window ops (the `fompi-txn` transaction layer) use it to charge
    /// backoff time and record their own telemetry spans.
    pub fn endpoint(&self) -> &fompi_fabric::Endpoint {
        &self.ep
    }

    // -------------------------------------------------------- epoch checks

    /// Verify an access epoch covering `target` is open.
    pub(crate) fn check_access(&self, target: u32) -> Result<()> {
        self.trace_scope();
        let st = self.state.borrow();
        match &st.access {
            AccessEpoch::Fence | AccessEpoch::LockAll => Ok(()),
            AccessEpoch::Pscw(g) if g.contains(target) => Ok(()),
            AccessEpoch::Lock if st.locks.contains_key(&target) => Ok(()),
            _ => Err(FompiError::NoAccessEpoch { target }),
        }
    }
}

/// Base virtual address for dynamic-window attachments (arbitrary non-zero
/// constant so address 0 stays invalid).
pub(crate) const DYN_BASE_ADDR: u64 = 0x1000_0000;
