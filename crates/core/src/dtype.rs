//! MPI derived datatypes and the MPITypes-style flattening engine.
//!
//! §2.4 of the paper: "In each communication, the datatypes are split into
//! the smallest number of contiguous blocks (using both the origin and
//! target datatype) and one DMAPP operation or memory copy is initiated for
//! each block." [`DataType::flatten`] produces the coalesced block list;
//! [`zip_blocks`] merges an origin and a target block stream into transfer
//! triples; [`DataType::pack`]/[`DataType::unpack`] serve the
//! message-passing baseline.
//!
//! Supported constructors mirror the common MPI set: named types,
//! contiguous, vector (strided), indexed, and struct (heterogeneous with
//! byte displacements). Displacements must be non-negative (MPI's negative
//! lower bounds are not needed by any experiment in the paper).

use crate::error::{FompiError, Result};
use crate::op::NumKind;

/// An MPI datatype.
#[derive(Debug, Clone, PartialEq)]
pub enum DataType {
    /// A named (predefined) type of the given numeric kind.
    Named(NumKind),
    /// `count` consecutive copies of `inner`.
    Contiguous {
        /// Repetition count.
        count: usize,
        /// Element type.
        inner: Box<DataType>,
    },
    /// `count` blocks of `blocklen` elements, successive blocks `stride`
    /// elements apart (stride in units of `inner`'s extent, like
    /// `MPI_Type_vector`).
    Vector {
        /// Number of blocks.
        count: usize,
        /// Elements per block.
        blocklen: usize,
        /// Inter-block stride in elements (must be ≥ blocklen).
        stride: usize,
        /// Element type.
        inner: Box<DataType>,
    },
    /// Blocks of varying length at varying element displacements
    /// (`MPI_Type_indexed`): `(blocklen, displacement)` pairs, displacement
    /// in elements.
    Indexed {
        /// `(blocklen, displacement)` pairs.
        blocks: Vec<(usize, usize)>,
        /// Element type.
        inner: Box<DataType>,
    },
    /// Heterogeneous struct: `(count, byte displacement, field type)`.
    Struct {
        /// Fields in declaration order.
        fields: Vec<(usize, usize, DataType)>,
    },
}

/// Convenience constructors matching the MPI naming.
impl DataType {
    /// MPI_DOUBLE.
    pub fn double() -> Self {
        DataType::Named(NumKind::F64)
    }

    /// MPI_INT64_T.
    pub fn int64() -> Self {
        DataType::Named(NumKind::I64)
    }

    /// MPI_UINT64_T.
    pub fn uint64() -> Self {
        DataType::Named(NumKind::U64)
    }

    /// MPI_BYTE.
    pub fn byte() -> Self {
        DataType::Named(NumKind::U8)
    }

    /// MPI_Type_contiguous.
    pub fn contiguous(count: usize, inner: DataType) -> Self {
        DataType::Contiguous { count, inner: Box::new(inner) }
    }

    /// MPI_Type_vector.
    pub fn vector(count: usize, blocklen: usize, stride: usize, inner: DataType) -> Self {
        assert!(stride >= blocklen, "vector stride must cover the block");
        DataType::Vector { count, blocklen, stride, inner: Box::new(inner) }
    }

    /// MPI_Type_indexed.
    pub fn indexed(blocks: Vec<(usize, usize)>, inner: DataType) -> Self {
        DataType::Indexed { blocks, inner: Box::new(inner) }
    }

    /// MPI_Type_create_struct (displacements in bytes).
    pub fn structure(fields: Vec<(usize, usize, DataType)>) -> Self {
        DataType::Struct { fields }
    }

    /// MPI_Type_create_subarray (C order): select the box
    /// `starts[d] .. starts[d] + subsizes[d]` out of an n-dimensional array
    /// of `sizes`, built by nesting vector types (innermost dimension
    /// contiguous). Used for zero-copy halo faces.
    pub fn subarray(sizes: &[usize], subsizes: &[usize], starts: &[usize], elem: DataType) -> Self {
        assert!(!sizes.is_empty());
        assert_eq!(sizes.len(), subsizes.len());
        assert_eq!(sizes.len(), starts.len());
        for d in 0..sizes.len() {
            assert!(starts[d] + subsizes[d] <= sizes[d], "subarray out of bounds in dim {d}");
        }
        // Innermost (last) dimension: a contiguous run of elements offset
        // by starts, expressed as an indexed type with one block.
        let nd = sizes.len();
        let mut ty = DataType::indexed(vec![(subsizes[nd - 1], starts[nd - 1])], elem);
        // Pad the extent to the full row so outer vectors stride correctly:
        // wrap in a struct placing the block inside a row-sized field.
        let elem_size = match &ty {
            DataType::Indexed { inner, .. } => inner.extent(),
            _ => unreachable!(),
        };
        ty =
            DataType::structure(vec![(1, 0, ty), (0, sizes[nd - 1] * elem_size, DataType::byte())]);
        for d in (0..nd - 1).rev() {
            let row_extent = ty.extent();
            let inner = ty;
            // subsizes[d] rows starting at starts[d], stride = full dim.
            let sel = DataType::indexed(vec![(subsizes[d], starts[d])], inner);
            ty = DataType::structure(vec![
                (1, 0, sel),
                (0, sizes[d] * row_extent, DataType::byte()),
            ]);
        }
        ty
    }

    /// Total payload bytes of one instance.
    pub fn size(&self) -> usize {
        match self {
            DataType::Named(k) => k.size(),
            DataType::Contiguous { count, inner } => count * inner.size(),
            DataType::Vector { count, blocklen, inner, .. } => count * blocklen * inner.size(),
            DataType::Indexed { blocks, inner } => {
                blocks.iter().map(|(b, _)| b * inner.size()).sum()
            }
            DataType::Struct { fields } => fields.iter().map(|(c, _, t)| c * t.size()).sum(),
        }
    }

    /// Extent in bytes (span from offset 0 to the last byte touched, i.e.
    /// the stride between consecutive instances in a count > 1 transfer).
    pub fn extent(&self) -> usize {
        match self {
            DataType::Named(k) => k.size(),
            DataType::Contiguous { count, inner } => count * inner.extent(),
            DataType::Vector { count, blocklen, stride, inner } => {
                if *count == 0 {
                    0
                } else {
                    ((count - 1) * stride + blocklen) * inner.extent()
                }
            }
            DataType::Indexed { blocks, inner } => {
                blocks.iter().map(|(b, d)| (d + b) * inner.extent()).max().unwrap_or(0)
            }
            DataType::Struct { fields } => fields
                .iter()
                .map(|(c, d, t)| {
                    d + if *c == 0 { 0 } else { (c - 1) * t.extent() + t.size_of_last() }
                })
                .max()
                .unwrap_or(0),
        }
    }

    /// Size of the trailing instance (for struct extent computation; for
    /// our non-resized types this is the payload of one instance's last
    /// contiguous run — conservatively, `extent()` of the field type).
    fn size_of_last(&self) -> usize {
        self.extent()
    }

    /// True if one instance occupies one contiguous run.
    pub fn is_contiguous(&self) -> bool {
        match self {
            DataType::Named(_) => true,
            DataType::Contiguous { inner, .. } => inner.is_contiguous_dense(),
            DataType::Vector { count, blocklen, stride, inner } => {
                inner.is_contiguous_dense() && (*count <= 1 || stride == blocklen)
            }
            DataType::Indexed { blocks, inner } => {
                if !inner.is_contiguous_dense() {
                    return false;
                }
                let mut expect = None;
                for (b, d) in blocks {
                    if let Some(e) = expect {
                        if *d != e {
                            return false;
                        }
                    } else if *d != 0 {
                        return false;
                    }
                    expect = Some(d + b);
                }
                true
            }
            DataType::Struct { .. } => self.flatten_one().len() <= 1,
        }
    }

    /// Contiguous *and* extent == size (instances tile densely).
    fn is_contiguous_dense(&self) -> bool {
        self.is_contiguous() && self.extent() == self.size()
    }

    /// Flatten one instance into `(byte offset, len)` runs, coalesced.
    pub fn flatten_one(&self) -> Vec<(usize, usize)> {
        let mut runs = Vec::new();
        self.emit(0, &mut runs);
        coalesce(&mut runs);
        runs
    }

    /// Flatten `count` consecutive instances (spaced by `extent()`),
    /// coalesced — "the smallest number of contiguous blocks".
    pub fn flatten(&self, count: usize) -> Vec<(usize, usize)> {
        let ext = self.extent();
        let one = self.flatten_one();
        let mut runs = Vec::with_capacity(one.len() * count);
        for i in 0..count {
            let base = i * ext;
            runs.extend(one.iter().map(|&(o, l)| (base + o, l)));
        }
        coalesce(&mut runs);
        runs
    }

    fn emit(&self, base: usize, out: &mut Vec<(usize, usize)>) {
        match self {
            DataType::Named(k) => out.push((base, k.size())),
            DataType::Contiguous { count, inner } => {
                let ext = inner.extent();
                for i in 0..*count {
                    inner.emit(base + i * ext, out);
                }
            }
            DataType::Vector { count, blocklen, stride, inner } => {
                let ext = inner.extent();
                for i in 0..*count {
                    for j in 0..*blocklen {
                        inner.emit(base + (i * stride + j) * ext, out);
                    }
                }
            }
            DataType::Indexed { blocks, inner } => {
                let ext = inner.extent();
                for (b, d) in blocks {
                    for j in 0..*b {
                        inner.emit(base + (d + j) * ext, out);
                    }
                }
            }
            DataType::Struct { fields } => {
                for (c, d, t) in fields {
                    let ext = t.extent();
                    for i in 0..*c {
                        t.emit(base + d + i * ext, out);
                    }
                }
            }
        }
    }

    /// Pack `count` instances from `src` (laid out with this type) into a
    /// dense byte vector.
    pub fn pack(&self, count: usize, src: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size() * count);
        for (off, len) in self.flatten(count) {
            out.extend_from_slice(&src[off..off + len]);
        }
        out
    }

    /// Unpack a dense byte vector into `dst` laid out with this type.
    pub fn unpack(&self, count: usize, packed: &[u8], dst: &mut [u8]) {
        let mut cur = 0;
        for (off, len) in self.flatten(count) {
            dst[off..off + len].copy_from_slice(&packed[cur..cur + len]);
            cur += len;
        }
        debug_assert_eq!(cur, packed.len());
    }
}

fn coalesce(runs: &mut Vec<(usize, usize)>) {
    if runs.is_empty() {
        return;
    }
    runs.sort_unstable();
    let mut w = 0;
    for i in 1..runs.len() {
        if runs[w].0 + runs[w].1 == runs[i].0 {
            runs[w].1 += runs[i].1;
        } else {
            w += 1;
            runs[w] = runs[i];
        }
    }
    runs.truncate(w + 1);
}

/// Merge an origin block stream and a target block stream (equal total
/// bytes) into `(origin_off, target_off, len)` transfer triples — one fabric
/// operation each.
pub fn zip_blocks(
    origin: &[(usize, usize)],
    target: &[(usize, usize)],
) -> Result<Vec<(usize, usize, usize)>> {
    let ob: usize = origin.iter().map(|r| r.1).sum();
    let tb: usize = target.iter().map(|r| r.1).sum();
    if ob != tb {
        return Err(FompiError::TypeMismatch { origin_bytes: ob, target_bytes: tb });
    }
    let mut out = Vec::new();
    let (mut oi, mut ti) = (0usize, 0usize);
    let (mut oo, mut to) = (0usize, 0usize); // consumed within current runs
    while oi < origin.len() && ti < target.len() {
        let (obase, olen) = origin[oi];
        let (tbase, tlen) = target[ti];
        let n = (olen - oo).min(tlen - to);
        out.push((obase + oo, tbase + to, n));
        oo += n;
        to += n;
        if oo == olen {
            oi += 1;
            oo = 0;
        }
        if to == tlen {
            ti += 1;
            to = 0;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_basics() {
        let d = DataType::double();
        assert_eq!(d.size(), 8);
        assert_eq!(d.extent(), 8);
        assert!(d.is_contiguous());
        assert_eq!(d.flatten(3), vec![(0, 24)]);
    }

    #[test]
    fn vector_flattening() {
        // 3 blocks of 2 doubles, stride 4 doubles: runs at 0, 32, 64.
        let v = DataType::vector(3, 2, 4, DataType::double());
        assert_eq!(v.size(), 48);
        assert_eq!(v.extent(), (2 * 4 + 2) * 8);
        assert!(!v.is_contiguous());
        assert_eq!(v.flatten_one(), vec![(0, 16), (32, 16), (64, 16)]);
    }

    #[test]
    fn dense_vector_is_contiguous() {
        let v = DataType::vector(4, 2, 2, DataType::int64());
        assert!(v.is_contiguous());
        assert_eq!(v.flatten_one(), vec![(0, 64)]);
    }

    #[test]
    fn indexed_coalesces_adjacent_blocks() {
        let d = DataType::indexed(vec![(2, 0), (1, 2), (3, 5)], DataType::byte());
        assert_eq!(d.flatten_one(), vec![(0, 3), (5, 3)]);
        assert_eq!(d.size(), 6);
        assert_eq!(d.extent(), 8);
    }

    #[test]
    fn struct_mixed_fields() {
        // {2×i64 at 0, 1×f32 at 20}
        let s = DataType::structure(vec![
            (2, 0, DataType::int64()),
            (1, 20, DataType::Named(NumKind::F32)),
        ]);
        assert_eq!(s.size(), 20);
        assert_eq!(s.flatten_one(), vec![(0, 16), (20, 4)]);
    }

    #[test]
    fn multi_count_flatten_merges_across_instances() {
        // Contiguous type: N instances must merge to a single run.
        let c = DataType::contiguous(4, DataType::byte());
        assert_eq!(c.flatten(5), vec![(0, 20)]);
    }

    #[test]
    fn pack_unpack_roundtrip_vector() {
        let v = DataType::vector(2, 1, 3, DataType::byte()); // bytes at 0 and 3
        let src: Vec<u8> = (0..10).collect();
        let packed = v.pack(2, &src); // extent 4: instance 1 at 0/3, instance 2 at 4/7
        assert_eq!(packed, vec![0, 3, 4, 7]);
        let mut dst = vec![0xFFu8; 10];
        v.unpack(2, &packed, &mut dst);
        assert_eq!(dst[0], 0);
        assert_eq!(dst[3], 3);
        assert_eq!(dst[4], 4);
        assert_eq!(dst[7], 7);
        assert_eq!(dst[1], 0xFF); // gaps untouched
    }

    #[test]
    fn zip_blocks_merges_streams() {
        // origin: [0,8) [16,24); target: [100,116)
        let triples = zip_blocks(&[(0, 8), (16, 8)], &[(100, 16)]).unwrap();
        assert_eq!(triples, vec![(0, 100, 8), (16, 108, 8)]);
    }

    #[test]
    fn zip_blocks_rejects_mismatch() {
        assert!(matches!(zip_blocks(&[(0, 8)], &[(0, 4)]), Err(FompiError::TypeMismatch { .. })));
    }

    #[test]
    fn subarray_2d_selects_box() {
        // 4x6 byte array, take rows 1..3, cols 2..5.
        let ty = DataType::subarray(&[4, 6], &[2, 3], &[1, 2], DataType::byte());
        assert_eq!(ty.size(), 6);
        assert_eq!(ty.flatten_one(), vec![(8, 3), (14, 3)]);
        // Extent covers the whole array so count>1 instances tile it.
        assert_eq!(ty.extent(), 24);
    }

    #[test]
    fn subarray_3d_face() {
        // 2x3x4 array, the z=1 plane: sizes [2,3,4], sub [1,3,4], start [1,0,0].
        let ty = DataType::subarray(&[2, 3, 4], &[1, 3, 4], &[1, 0, 0], DataType::byte());
        assert_eq!(ty.size(), 12);
        assert_eq!(ty.flatten_one(), vec![(12, 12)]);
    }

    #[test]
    fn subarray_roundtrip_pack() {
        let ty = DataType::subarray(&[3, 3], &[2, 2], &[0, 1], DataType::byte());
        let src: Vec<u8> = (0..9).collect();
        assert_eq!(ty.pack(1, &src), vec![1, 2, 4, 5]);
    }

    #[test]
    fn zip_blocks_uneven_split() {
        let t = zip_blocks(&[(0, 10)], &[(50, 4), (60, 6)]).unwrap();
        assert_eq!(t, vec![(0, 50, 4), (4, 60, 6)]);
    }
}
