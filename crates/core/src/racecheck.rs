//! Window-layer glue for the `fompi-check` race detector
//! ([`fompi_fabric::shadow`]).
//!
//! The window layer — not the raw endpoint — is the recording boundary:
//! it is the only place that can tell *user data* accesses apart from the
//! protocol AMOs on the meta segment (lock words, PSCW matching lists,
//! the accumulate lock), which legitimately race by design. Every public
//! communication call records one logical access per target byte
//! interval; the sync layer reports its epoch transitions. All helpers
//! gate on [`Shadow::active`] — one relaxed load — so the disabled cost
//! matches the fault-injection bar (PR 2).

use crate::op::MpiOp;
use crate::win::{AccessEpoch, LockType, Win, WinKind};
use fompi_fabric::shadow::{AccessKind, LockCtx, RaceViolation, Shadow, ACC_NOOP};
use fompi_fabric::telemetry::{Event, EventKind, Flavor};

/// Accumulate tag for compare-and-swap (never equal to an [`MpiOp`]
/// discriminant, and not the [`ACC_NOOP`] carve-out).
pub(crate) const ACC_CAS: u16 = u16::MAX - 1;

/// Map a reduction op to its shadow tag: same-tag overlap is permitted,
/// `MPI_NO_OP` (an atomic read) may overlap anything.
pub(crate) fn acc_tag(op: MpiOp) -> u16 {
    match op {
        MpiOp::NoOp => ACC_NOOP,
        other => other as u16,
    }
}

impl Win {
    /// Checker arming probe: the entire disabled hot path.
    #[inline]
    pub(crate) fn rc_on(&self) -> bool {
        self.ep.fabric().shadow().active()
    }

    /// Virtual timestamp for the start of a recorded access span, taken
    /// only when the checker is armed.
    #[inline]
    pub(crate) fn rc_start(&self) -> Option<f64> {
        if self.rc_on() {
            Some(self.ep.clock().now())
        } else {
            None
        }
    }

    fn rc_shadow(&self) -> &Shadow {
        self.ep.fabric().shadow()
    }

    /// Lock context this origin holds toward `target` right now.
    fn rc_lock_ctx(&self, target: u32) -> LockCtx {
        let st = self.state.borrow();
        match &st.access {
            AccessEpoch::LockAll => LockCtx::Shared,
            AccessEpoch::Lock => match st.locks.get(&target) {
                Some(LockType::Exclusive) => LockCtx::Exclusive,
                Some(LockType::Shared) => LockCtx::Shared,
                None => LockCtx::NoLock,
            },
            _ => LockCtx::NoLock,
        }
    }

    /// Shadow-interval base for an access at `target_disp` whose resolved
    /// segment offset is `resolved`. Dynamic windows key intervals by the
    /// virtual attach address (unique across regions); everything else by
    /// the window byte offset.
    pub(crate) fn rc_base(&self, target_disp: usize, resolved: usize) -> usize {
        if self.shared.kind == WinKind::Dynamic {
            target_disp
        } else {
            resolved
        }
    }

    /// Record a remote access spanning `[lo, lo + len)` bytes of
    /// `target`'s window. `t_start` is the [`Win::rc_start`] probe value;
    /// call sites skip the call entirely when the probe returned `None`.
    #[inline(never)]
    #[cold]
    pub(crate) fn rc_remote(
        &self,
        t_start: f64,
        target: u32,
        lo: usize,
        len: usize,
        kind: AccessKind,
    ) {
        let viols = self.rc_shadow().record_remote(
            self.telemetry_id(),
            target,
            self.ep.rank(),
            lo,
            lo + len,
            kind,
            self.rc_lock_ctx(target),
            t_start,
            self.ep.clock().now(),
            self.ep.current_flow(),
        );
        self.rc_flag(viols);
        if matches!(kind, AccessKind::Acc(_)) {
            self.rc_atomic_own(target);
        }
    }

    /// Record a local load/store of `[off, off + len)` on this rank's own
    /// window memory.
    #[inline(never)]
    #[cold]
    pub(crate) fn rc_local(&self, off: usize, len: usize, write: bool) {
        let t = self.ep.clock().now();
        let viols = self.rc_shadow().record_local(
            self.telemetry_id(),
            self.ep.rank(),
            off,
            off + len,
            write,
            t,
            self.ep.current_flow(),
        );
        self.rc_flag(viols);
    }

    /// Route violations: telemetry first (so the `RaceReport` event is
    /// recorded even when `panic` mode aborts), then enforcement.
    fn rc_flag(&self, viols: Vec<RaceViolation>) {
        if viols.is_empty() {
            return;
        }
        let tel = self.ep.fabric().telemetry();
        if tel.enabled() {
            for v in &viols {
                tel.record(Event {
                    kind: EventKind::RaceReport,
                    flavor: Flavor::NotApplicable,
                    transport: None,
                    origin: v.a.origin,
                    target: v.b.origin,
                    win: v.win,
                    bytes: (v.hi - v.lo) as u64,
                    // Carry a causal flow id so the RaceReport joins the
                    // same Perfetto arcs as the accesses themselves: the
                    // later access's flow, or the earlier one's if the
                    // later carried none.
                    flow: if v.b.flow != fompi_fabric::telemetry::NO_FLOW {
                        v.b.flow
                    } else {
                        v.a.flow
                    },
                    t_start: v.a.t_start.min(v.b.t_start),
                    t_end: v.a.t_end.max(v.b.t_end),
                });
            }
        }
        // In panic mode the enforce below aborts the run: flush the
        // flight-recorder window first so the abort keeps its black box.
        if self.rc_shadow().mode() == fompi_fabric::shadow::RacecheckMode::Panic {
            self.ep.flight_dump("racecheck abort");
        }
        self.rc_shadow().enforce(&viols);
    }

    // --------------------------------------------------------- epoch edges
    //
    // Placement contract (see `fompi_fabric::shadow` docs): release-side
    // bumps (unlock, MCS hand-off) happen after the data is committed but
    // *before* the release word becomes visible to waiters; acquire-side
    // bumps (post, wait, notification consume) happen *after* the signal
    // is observed but before control returns to the caller.

    /// Collective fence completed (call after the barrier).
    pub(crate) fn rc_fence(&self) {
        if self.rc_on() {
            self.rc_shadow().fence(self.telemetry_id(), self.ep.rank());
        }
    }

    /// Same-origin completion edge: flush/flush_local (`Some(target)` or
    /// all-targets `None`), and per-target completion inside `complete`.
    pub(crate) fn rc_flush(&self, target: Option<u32>) {
        if self.rc_on() {
            self.rc_shadow().flush(self.telemetry_id(), self.ep.rank(), target);
        }
    }

    /// Passive-target lock acquired (`None` = lock_all / MCS global lock).
    pub(crate) fn rc_lock_acquired(&self, target: Option<u32>) {
        if self.rc_on() {
            self.rc_shadow().lock_acquired(self.telemetry_id(), self.ep.rank(), target);
        }
    }

    /// Passive-target lock about to be released (`None` = unlock_all /
    /// MCS hand-off).
    pub(crate) fn rc_unlock(&self, target: Option<u32>) {
        if self.rc_on() {
            self.rc_shadow().unlock(self.telemetry_id(), self.ep.rank(), target);
        }
    }

    /// Acquire edge on this rank's own window memory: PSCW post/wait,
    /// `win_sync`, or a consumed notification.
    pub(crate) fn rc_acquire_own(&self) {
        if self.rc_on() {
            self.rc_shadow().acquire_own(self.telemetry_id(), self.ep.rank());
        }
    }

    /// An accumulate-class op this rank issued at *itself* is a
    /// `win_sync`-equivalent acquire edge on this unified-model fabric:
    /// the flag-notification idiom (put → flush → FAA of the target's
    /// flag; the target polls its own flag with an atomic read, then
    /// reads the data locally) must order the poller's subsequent local
    /// reads after the producer's puts. Call after recording the access
    /// itself, so the atomic still conflicts with non-atomic overlap in
    /// the pre-edge epoch.
    /// Only passive-target epochs get the edge: there, concurrent
    /// producers' records are pinned to their lock sessions and stay
    /// conflict-visible across the bump. In an active epoch (fence/PSCW)
    /// nothing pins concurrent records, so a bump would excuse genuine
    /// same-epoch conflicts — and the epoch's own sync calls provide the
    /// ordering anyway.
    pub(crate) fn rc_atomic_own(&self, target: u32) {
        if target == self.ep.rank() && self.rc_lock_ctx(target) != LockCtx::NoLock {
            self.rc_acquire_own();
        }
    }

    /// Quiescence probe for [`Win::free`]: true when no access or
    /// exposure epoch is open and no locks are held.
    pub(crate) fn rc_free_clean(&self) -> bool {
        // A fence epoch is itself a synchronisation point: freeing after a
        // fence (without MPI_MODE_NOSUCCEED) is legal. Only passive locks
        // and PSCW epochs left open make the free unsynchronized.
        let st = self.state.borrow();
        matches!(st.access, AccessEpoch::None | AccessEpoch::Fence)
            && matches!(
                st.exposure,
                crate::win::ExposureEpoch::None | crate::win::ExposureEpoch::Fence
            )
            && st.locks.is_empty()
    }

    /// Mark this window freed (flags a violation when `clean` is false).
    pub(crate) fn rc_freed(&self, clean: bool) {
        let t = self.ep.clock().now();
        let viols = self.rc_shadow().window_freed(self.telemetry_id(), self.ep.rank(), t, clean);
        self.rc_flag(viols);
    }
}
