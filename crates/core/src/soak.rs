//! Protocol soak harness: run every synchronisation protocol for many
//! epochs under an armed fault plan and check the window's protocol
//! invariants after the dust settles.
//!
//! The paper's protocols are *bufferless* — all transient state lives in
//! the fixed window metadata words (§2.3, Figure 2/3). That makes
//! quiescence checkable: after balanced epochs every counter, lock word
//! and matching list must be back in its rest state, whatever latencies,
//! delayed completions or transient registration failures the fault layer
//! injected. Any residue is a protocol bug (a lost release, a leaked pool
//! element, an unconsumed completion), and every violation string carries
//! the root seed so the exact schedule replays with `FOMPI_SEED=<seed>`.
//!
//! Invariants checked after each workload (on every rank's own metadata):
//!
//! * `COMPLETION == 0` — `wait`/`test` consume exactly what `complete`
//!   produced;
//! * match list empty and the Figure-2c free list holds all `pscw_pool`
//!   elements (default protocol), or every ring slot is consumed (fast
//!   protocol, where `MATCH_HEAD` is the FAA cursor and may be nonzero);
//! * `LOCAL_LOCK == 0` and, at the master, `GLOBAL_LOCK == 0` — the
//!   two-level lock hierarchy fully released;
//! * `MCS_TAIL == 0` — the MCS queue drained (`MCS_FLAG` may legally hold
//!   a stale grant);
//! * `ACC_LOCK == 0` — no accumulate fallback lock leaked;
//! * workload payloads are correct (puts landed, counters conserved,
//!   notifications exact).

use crate::error::Result;
use crate::meta::{self, off, WinConfig};
use crate::op::{MpiOp, NumKind};
use crate::win::{LockType, Win};
use fompi_fabric::rng::splitmix64;
use fompi_fabric::FaultPlan;
use fompi_runtime::{Group, RankCtx, Universe};

/// One synchronisation protocol exercised by the soak harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Fence epochs with a neighbour put per epoch.
    Fence,
    /// PSCW ring (Figure-2 matching-list protocol).
    Pscw,
    /// PSCW ring over the FAA-ring fast path.
    PscwFast,
    /// Exclusive per-target locks incrementing a counter (conservation).
    Lock,
    /// lock_all epochs with hardware-AMO accumulates (conservation).
    LockAll,
    /// MCS queue lock guarding a shared counter.
    Mcs,
    /// Notified access ring (counter exactness + payload).
    Notify,
    /// Passive target: put + flush, read-back verification per epoch.
    Flush,
    /// Seqlock-versioned two-key transfers (the `fompi-txn` commit path:
    /// CAS lock, accumulate(REPLACE) write, CAS publish) over disjoint
    /// seed-derived cell pairings; total balance is conserved.
    TxnTransfer,
    /// Remote-memory-channel ring (the `fompi-rmc` wire protocol: slotted
    /// notified puts forward, credit-counting notified AMOs back, a flush
    /// fence per ring lap); counts and payloads are exact and the
    /// notification ring must drain to empty.
    RmcChannel,
}

impl Protocol {
    /// Every protocol, in soak order.
    pub const ALL: [Protocol; 10] = [
        Protocol::Fence,
        Protocol::Pscw,
        Protocol::PscwFast,
        Protocol::Lock,
        Protocol::LockAll,
        Protocol::Mcs,
        Protocol::Notify,
        Protocol::Flush,
        Protocol::TxnTransfer,
        Protocol::RmcChannel,
    ];

    /// Stable name (CSV column, violation messages).
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Fence => "fence",
            Protocol::Pscw => "pscw",
            Protocol::PscwFast => "pscw_fast",
            Protocol::Lock => "lock",
            Protocol::LockAll => "lock_all",
            Protocol::Mcs => "mcs",
            Protocol::Notify => "notify",
            Protocol::Flush => "flush",
            Protocol::TxnTransfer => "txn_transfer",
            Protocol::RmcChannel => "rmc_channel",
        }
    }
}

/// Result of one soak case: a protocol soaked at one (p, seed) point.
#[derive(Debug)]
pub struct SoakOutcome {
    /// Protocol exercised.
    pub protocol: Protocol,
    /// Rank count.
    pub p: usize,
    /// Epochs per rank.
    pub epochs: usize,
    /// Root seed (replay with `FOMPI_SEED=<seed>` and the same plan).
    pub seed: u64,
    /// Total faults the plan injected across all ranks.
    pub injected: u64,
    /// Per-rank final virtual clocks as raw `f64` bits: two runs of the
    /// same (protocol, p, seed, plan) must agree bit-for-bit for the
    /// contention-free workloads (fence, PSCW, notify, flush).
    pub clocks: Vec<u64>,
    /// Invariant violations (empty = pass). Each carries the seed.
    pub violations: Vec<String>,
    /// Total accesses flagged by the RMA race checker (0 unless armed via
    /// [`run_case_racecheck`] or `FOMPI_RACECHECK`; must stay 0 here —
    /// the workloads are synchronisation-correct).
    pub raceflags: u64,
}

impl SoakOutcome {
    /// Did every invariant hold?
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Derive `n` independent soak seeds from one root seed, so a whole
/// campaign replays from a single `FOMPI_SEED`.
pub fn seeds(root: u64, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| {
            let s = splitmix64(root.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            if s == 0 {
                1
            } else {
                s
            }
        })
        .collect()
}

/// Run one soak case: `p` ranks soaking `proto` for `epochs` epochs under
/// `plan`. A plan with `seed == 0` inherits a seed derived from `seed`
/// (the root seed), so one number reproduces both workload and faults.
pub fn run_case(
    proto: Protocol,
    p: usize,
    epochs: usize,
    seed: u64,
    plan: FaultPlan,
) -> SoakOutcome {
    run_case_racecheck(proto, p, epochs, seed, plan, None)
}

/// [`run_case`] with the RMA race checker armed at `mode` (`None` defers
/// to the environment). The soak workloads are synchronisation-correct by
/// construction, so any racecheck flag here is a checker false positive —
/// the false-positive acceptance gate runs every protocol through this
/// with [`fompi_fabric::RacecheckMode::Panic`].
pub fn run_case_racecheck(
    proto: Protocol,
    p: usize,
    epochs: usize,
    seed: u64,
    plan: FaultPlan,
    racecheck: Option<fompi_fabric::RacecheckMode>,
) -> SoakOutcome {
    assert!(p >= 2, "soak workloads are ring-shaped; need p >= 2");
    // Split ranks across two nodes so both the XPMEM and the DMAPP paths
    // see faults.
    let node_size = p.div_ceil(2);
    let mut uni = Universe::new(p).node_size(node_size).seed(seed).faults(plan);
    if let Some(mode) = racecheck {
        uni = uni.racecheck(mode);
    }
    let (per_rank, fabric) = uni.launch(move |ctx| {
        let mut v = Vec::new();
        let r = match proto {
            Protocol::Fence => fence_ring(ctx, p, epochs, seed, &mut v),
            Protocol::Pscw => pscw_ring(ctx, p, epochs, seed, false, &mut v),
            Protocol::PscwFast => pscw_ring(ctx, p, epochs, seed, true, &mut v),
            Protocol::Lock => lock_counter(ctx, p, epochs, seed, &mut v),
            Protocol::LockAll => lock_all_accumulate(ctx, p, epochs, seed, &mut v),
            Protocol::Mcs => mcs_counter(ctx, p, epochs, seed, &mut v),
            Protocol::Notify => notify_ring(ctx, p, epochs, seed, &mut v),
            Protocol::Flush => flush_readback(ctx, p, epochs, seed, &mut v),
            Protocol::TxnTransfer => txn_transfer(ctx, p, epochs, seed, &mut v),
            Protocol::RmcChannel => rmc_channel(ctx, p, epochs, seed, &mut v),
        };
        if let Err(e) = r {
            v.push(violation(proto.name(), seed, ctx.rank(), format!("protocol error: {e}")));
        }
        (v, ctx.now().to_bits())
    });
    let (violations, clocks): (Vec<_>, Vec<_>) = per_rank.into_iter().unzip();
    SoakOutcome {
        protocol: proto,
        p,
        epochs,
        seed,
        injected: fabric.faults().total_injected(),
        clocks,
        violations: violations.into_iter().flatten().collect(),
        raceflags: fabric.shadow().total_flagged(),
    }
}

// ------------------------------------------------------------- internals

fn violation(proto: &str, seed: u64, rank: u32, msg: String) -> String {
    format!("[{proto} seed={seed:#018x} rank={rank}] {msg} (replay: FOMPI_SEED={seed})")
}

/// Deterministic epoch payload, nonzero so "slot never written" is
/// distinguishable from "wrong value written".
fn payload(seed: u64, epoch: usize, rank: u32) -> u64 {
    splitmix64(seed ^ ((epoch as u64) << 20) ^ (rank as u64 + 1)) | 1
}

/// Deterministic lock target for (epoch, rank): every rank can recompute
/// everyone's picks, so counter conservation needs no extra collective.
fn pick_target(seed: u64, epoch: usize, rank: u32, p: usize) -> u32 {
    (splitmix64(seed ^ 0xC0FF_EE00 ^ ((epoch as u64) << 16) ^ (rank as u64)) % p as u64) as u32
}

fn neighbors(me: u32, p: usize) -> (u32, u32) {
    let p = p as u32;
    ((me + p - 1) % p, (me + 1) % p)
}

/// Post-workload rest-state check of this rank's metadata words (see the
/// module docs for the invariant list). Must run after a barrier so every
/// peer's releases have been issued.
fn quiescence(win: &Win, proto: &'static str, seed: u64, me: u32, v: &mut Vec<String>) {
    let seg = &win.my_meta;
    let cfg = &win.shared.cfg;
    let mut check = |word: &str, got: u64, want: u64| {
        if got != want {
            v.push(violation(
                proto,
                seed,
                me,
                format!("metadata word {word} not quiescent: {got:#x} != {want:#x}"),
            ));
        }
    };
    check("COMPLETION", seg.read_u64(off::COMPLETION), 0);
    check("LOCAL_LOCK", seg.read_u64(off::LOCAL_LOCK), 0);
    check("ACC_LOCK", seg.read_u64(off::ACC_LOCK), 0);
    if me == win.shared.master {
        check("GLOBAL_LOCK", seg.read_u64(off::GLOBAL_LOCK), 0);
        check("MCS_TAIL", seg.read_u64(off::MCS_TAIL), 0);
    }
    if cfg.pscw_fast {
        // Fast protocol: MATCH_HEAD is the FAA ticket cursor (monotonic);
        // quiescence means every announcement slot was consumed.
        for slot in 0..cfg.pscw_pool as u32 {
            check("pool slot", seg.read_u64(cfg.pool_off(slot)), 0);
        }
    } else {
        let (_, idx) = meta::unpack_head(seg.read_u64(off::MATCH_HEAD));
        check("MATCH_HEAD index", idx as u64, meta::NIL as u64);
        // Walk the Figure-2c free list: all pool elements must be home.
        let (_, mut cur) = meta::unpack_head(seg.read_u64(off::FREE_HEAD));
        let mut n = 0usize;
        while cur != meta::NIL && n <= cfg.pscw_pool {
            n += 1;
            cur = meta::unpack_elem(seg.read_u64(cfg.pool_off(cur))).1;
        }
        check("free-list length", n as u64, cfg.pscw_pool as u64);
    }
}

fn fence_ring(
    ctx: &RankCtx,
    p: usize,
    epochs: usize,
    seed: u64,
    v: &mut Vec<String>,
) -> Result<()> {
    let win = Win::allocate(ctx, p * 8, 1)?;
    let me = ctx.rank();
    let (left, right) = neighbors(me, p);
    win.fence()?;
    for e in 0..epochs {
        win.put(&payload(seed, e, me).to_le_bytes(), right, me as usize * 8)?;
        win.fence()?;
        let mut b = [0u8; 8];
        win.read_local(left as usize * 8, &mut b);
        let (got, want) = (u64::from_le_bytes(b), payload(seed, e, left));
        if got != want {
            v.push(violation(
                "fence",
                seed,
                me,
                format!("epoch {e}: slot from rank {left} = {got:#x}, want {want:#x}"),
            ));
        }
        // Second fence: the local verification read above must not race
        // with the left neighbour's next-epoch put into the same slot.
        win.fence()?;
    }
    win.fence_assert(crate::sync::fence::ASSERT_NOSUCCEED)?;
    ctx.barrier();
    quiescence(&win, "fence", seed, me, v);
    Ok(())
}

fn pscw_ring(
    ctx: &RankCtx,
    p: usize,
    epochs: usize,
    seed: u64,
    fast: bool,
    v: &mut Vec<String>,
) -> Result<()> {
    let cfg = WinConfig { pscw_fast: fast, ..WinConfig::default() };
    let win = Win::allocate_cfg(ctx, p * 8, 1, cfg)?;
    let me = ctx.rank();
    let (left, right) = neighbors(me, p);
    let proto = if fast { "pscw_fast" } else { "pscw" };
    let exposure = Group::new([left]);
    let access = Group::new([right]);
    for e in 0..epochs {
        win.post(&exposure)?;
        win.start(&access)?;
        win.put(&payload(seed, e, me).to_le_bytes(), right, me as usize * 8)?;
        win.complete()?;
        win.wait()?;
        let mut b = [0u8; 8];
        win.read_local(left as usize * 8, &mut b);
        let (got, want) = (u64::from_le_bytes(b), payload(seed, e, left));
        if got != want {
            v.push(violation(
                proto,
                seed,
                me,
                format!("epoch {e}: slot from rank {left} = {got:#x}, want {want:#x}"),
            ));
        }
    }
    ctx.barrier();
    quiescence(&win, if fast { "pscw_fast" } else { "pscw" }, seed, me, v);
    Ok(())
}

fn lock_counter(
    ctx: &RankCtx,
    p: usize,
    epochs: usize,
    seed: u64,
    v: &mut Vec<String>,
) -> Result<()> {
    let win = Win::allocate(ctx, 16, 1)?;
    let me = ctx.rank();
    ctx.barrier();
    for e in 0..epochs {
        let t = pick_target(seed, e, me, p);
        win.lock(LockType::Exclusive, t)?;
        let mut b = [0u8; 8];
        win.get(&mut b, t, 0)?;
        win.flush(t)?;
        win.put(&(u64::from_le_bytes(b).wrapping_add(1)).to_le_bytes(), t, 0)?;
        win.unlock(t)?;
    }
    ctx.barrier();
    let want: u64 = (0..p as u32)
        .map(|r| (0..epochs).filter(|&e| pick_target(seed, e, r, p) == me).count() as u64)
        .sum();
    let mut b = [0u8; 8];
    win.read_local(0, &mut b);
    let got = u64::from_le_bytes(b);
    if got != want {
        v.push(violation("lock", seed, me, format!("counter = {got}, want {want}")));
    }
    quiescence(&win, "lock", seed, me, v);
    Ok(())
}

fn lock_all_accumulate(
    ctx: &RankCtx,
    p: usize,
    epochs: usize,
    seed: u64,
    v: &mut Vec<String>,
) -> Result<()> {
    let win = Win::allocate(ctx, 16, 1)?;
    let me = ctx.rank();
    ctx.barrier();
    for e in 0..epochs {
        win.lock_all()?;
        let t = pick_target(seed, e, me, p);
        win.accumulate(&1u64.to_le_bytes(), NumKind::U64, MpiOp::Sum, t, 0)?;
        win.flush_all()?;
        win.unlock_all()?;
    }
    ctx.barrier();
    let want: u64 = (0..p as u32)
        .map(|r| (0..epochs).filter(|&e| pick_target(seed, e, r, p) == me).count() as u64)
        .sum();
    let mut b = [0u8; 8];
    win.read_local(0, &mut b);
    let got = u64::from_le_bytes(b);
    if got != want {
        v.push(violation("lock_all", seed, me, format!("counter = {got}, want {want}")));
    }
    quiescence(&win, "lock_all", seed, me, v);
    Ok(())
}

fn mcs_counter(
    ctx: &RankCtx,
    p: usize,
    epochs: usize,
    seed: u64,
    v: &mut Vec<String>,
) -> Result<()> {
    let win = Win::allocate(ctx, 16, 1)?;
    let me = ctx.rank();
    ctx.barrier();
    for _ in 0..epochs {
        win.mcs_lock()?;
        let mut b = [0u8; 8];
        win.get(&mut b, 0, 0)?;
        win.flush(0)?;
        win.put(&(u64::from_le_bytes(b).wrapping_add(1)).to_le_bytes(), 0, 0)?;
        win.mcs_unlock()?;
    }
    ctx.barrier();
    if me == 0 {
        let mut b = [0u8; 8];
        win.read_local(0, &mut b);
        let (got, want) = (u64::from_le_bytes(b), (p * epochs) as u64);
        if got != want {
            v.push(violation("mcs", seed, me, format!("counter = {got}, want {want}")));
        }
    }
    quiescence(&win, "mcs", seed, me, v);
    Ok(())
}

fn notify_ring(
    ctx: &RankCtx,
    p: usize,
    epochs: usize,
    seed: u64,
    v: &mut Vec<String>,
) -> Result<()> {
    let win = Win::allocate(ctx, p * epochs * 8, 1)?;
    let me = ctx.rank();
    let (left, right) = neighbors(me, p);
    win.lock_all()?;
    for e in 0..epochs {
        let disp = (me as usize * epochs + e) * 8;
        win.put_signal(&payload(seed, e, me).to_le_bytes(), right, disp, 0)?;
    }
    win.signal_wait(0, epochs as u64)?;
    // Only the left neighbour targets slot 0 here, so the counter must be
    // *exactly* its epoch count — a lost or duplicated notification is a
    // violation even though signal_wait already returned.
    let n = win.signal_test(0)?;
    if n != epochs as u64 {
        v.push(violation("notify", seed, me, format!("counter = {n}, want {epochs}")));
    }
    for e in 0..epochs {
        let mut b = [0u8; 8];
        win.read_local((left as usize * epochs + e) * 8, &mut b);
        let (got, want) = (u64::from_le_bytes(b), payload(seed, e, left));
        if got != want {
            v.push(violation(
                "notify",
                seed,
                me,
                format!("epoch {e}: slot from rank {left} = {got:#x}, want {want:#x}"),
            ));
        }
    }
    win.unlock_all()?;
    ctx.barrier();
    quiescence(&win, "notify", seed, me, v);
    Ok(())
}

fn flush_readback(
    ctx: &RankCtx,
    p: usize,
    epochs: usize,
    seed: u64,
    v: &mut Vec<String>,
) -> Result<()> {
    let win = Win::allocate(ctx, p * 8, 1)?;
    let me = ctx.rank();
    let (_, right) = neighbors(me, p);
    win.lock_all()?;
    for e in 0..epochs {
        let val = payload(seed, e, me);
        let disp = me as usize * 8;
        // Alternate the implicit and the request-based paths: rput/rget
        // exercise the backpressure-rejection retry in `Win::rput`.
        if e % 2 == 0 {
            win.put(&val.to_le_bytes(), right, disp)?;
        } else {
            win.rput(&val.to_le_bytes(), right, disp)?.wait();
        }
        win.flush(right)?;
        let mut b = [0u8; 8];
        if e % 2 == 0 {
            win.get(&mut b, right, disp)?;
        } else {
            win.rget(&mut b, right, disp)?.wait();
        }
        win.flush(right)?;
        // We are the only writer of that slot and our put completed at the
        // flush, so the read-back must match exactly.
        let got = u64::from_le_bytes(b);
        if got != val {
            v.push(violation(
                "flush",
                seed,
                me,
                format!("epoch {e}: read-back = {got:#x}, want {val:#x}"),
            ));
        }
    }
    win.unlock_all()?;
    ctx.barrier();
    quiescence(&win, "flush", seed, me, v);
    Ok(())
}

/// Initial balance of global cell `c` — nonzero and seed-dependent, so a
/// never-written cell is distinguishable from a zero balance.
fn txn_init_balance(seed: u64, c: usize) -> u64 {
    splitmix64(seed ^ 0xBA1A_4CE5 ^ (c as u64 + 1)) | 1
}

/// Seed-derived pairing of the `2p` transfer cells for one epoch: a
/// Fisher–Yates permutation, chopped into `p` disjoint pairs. Rank `r`
/// handles pair `r`. Disjointness means no two ranks ever contend for a
/// version word, so the lock CASes always succeed first try and the
/// number of issued operations — hence the fault draws and the virtual
/// clocks — is schedule-independent.
fn txn_pairing(seed: u64, epoch: usize, p: usize) -> Vec<usize> {
    let cells = 2 * p;
    let mut perm: Vec<usize> = (0..cells).collect();
    let mut rng = fompi_fabric::rng::Rng::seed_from_u64(splitmix64(
        seed ^ 0x7AB1_E0F0 ^ ((epoch as u64) << 8),
    ));
    for i in (1..cells).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Transfer amount rank `r` moves in `epoch` (wrapping arithmetic keeps
/// the conserved sum exact even if balances wrap).
fn txn_amount(seed: u64, epoch: usize, r: u32) -> u64 {
    splitmix64(seed ^ 0xF00D ^ ((epoch as u64) << 24) ^ (r as u64 + 1)) % 1024
}

/// The `fompi-txn` commit path soaked under faults: every rank owns two
/// 16-byte versioned cells (8-byte seqlock version word + 8-byte balance)
/// and per epoch commits one two-key transfer over a seed-derived
/// *disjoint* pairing of all `2p` cells. The remote protocol is exactly
/// the transaction layer's — `MPI_NO_OP` versioned reads, sorted-order
/// lock CAS `v → v+1`, accumulate(`MPI_REPLACE`) payload writes, publish
/// CAS `v+1 → v+2`, flushes between phases — so a racecheck or metadata
/// residue here indicts the commit protocol itself. Every rank recomputes
/// the exact final balances and version words, and the conserved total is
/// allreduced and checked per seed.
fn txn_transfer(
    ctx: &RankCtx,
    p: usize,
    epochs: usize,
    seed: u64,
    v: &mut Vec<String>,
) -> Result<()> {
    const CELL: usize = 16;
    let win = Win::allocate(ctx, 2 * CELL, 1)?;
    let me = ctx.rank();
    // Global cell c lives on rank c/2 at displacement (c%2)*16.
    let owner = |c: usize| ((c / 2) as u32, (c % 2) * CELL);
    for slot in 0..2usize {
        win.write_local(slot * CELL, &0u64.to_le_bytes());
        win.write_local(
            slot * CELL + 8,
            &txn_init_balance(seed, me as usize * 2 + slot).to_le_bytes(),
        );
    }
    ctx.barrier();
    for e in 0..epochs {
        let perm = txn_pairing(seed, e, p);
        let (a, b) = (perm[2 * me as usize], perm[2 * me as usize + 1]);
        let amt = txn_amount(seed, e, me);
        // Global lock order: cell index order == (rank, disp) order.
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        win.lock_all()?;
        let mut versions = [0u64; 2];
        let mut bals = [0u64; 2];
        for (k, &c) in [lo, hi].iter().enumerate() {
            let (t, d) = owner(c);
            let mut vb = [0u8; 8];
            win.fetch_and_op(&[], &mut vb, NumKind::U64, MpiOp::NoOp, t, d)?;
            let v1 = u64::from_le_bytes(vb);
            let mut pb = [0u8; 8];
            win.get_accumulate(&[], &mut pb, NumKind::U64, MpiOp::NoOp, t, d + 8)?;
            win.fetch_and_op(&[], &mut vb, NumKind::U64, MpiOp::NoOp, t, d)?;
            let v2 = u64::from_le_bytes(vb);
            // Pairings are disjoint and epochs barrier-separated, so a
            // torn read can only come from a protocol bug.
            if v1 & 1 == 1 || v1 != v2 {
                v.push(violation(
                    "txn_transfer",
                    seed,
                    me,
                    format!("epoch {e}: torn read on cell {c}: v1={v1} v2={v2}"),
                ));
            }
            versions[k] = v1;
            bals[k] = u64::from_le_bytes(pb);
        }
        for (k, &c) in [lo, hi].iter().enumerate() {
            let (t, d) = owner(c);
            let prev = win.compare_and_swap(versions[k] + 1, versions[k], t, d)?;
            if prev != versions[k] {
                v.push(violation(
                    "txn_transfer",
                    seed,
                    me,
                    format!("epoch {e}: lost lock CAS on cell {c} despite disjoint pairing"),
                ));
            }
        }
        let (new_lo, new_hi) = if a == lo {
            (bals[0].wrapping_sub(amt), bals[1].wrapping_add(amt))
        } else {
            (bals[0].wrapping_add(amt), bals[1].wrapping_sub(amt))
        };
        for (&c, nb) in [lo, hi].iter().zip([new_lo, new_hi]) {
            let (t, d) = owner(c);
            win.accumulate(&nb.to_le_bytes(), NumKind::U64, MpiOp::Replace, t, d + 8)?;
        }
        win.flush_all()?;
        for (k, &c) in [lo, hi].iter().enumerate() {
            let (t, d) = owner(c);
            let prev = win.compare_and_swap(versions[k] + 2, versions[k] + 1, t, d)?;
            if prev != versions[k] + 1 {
                v.push(violation(
                    "txn_transfer",
                    seed,
                    me,
                    format!("epoch {e}: publish CAS on cell {c} found {prev}, lock was stolen"),
                ));
            }
        }
        win.flush_all()?;
        win.unlock_all()?;
        // Next epoch's pairing may hand these cells to other ranks.
        ctx.barrier();
    }
    // Every rank replays the whole campaign locally: the schedule is a
    // pure function of the seed, so final balances are exactly known.
    let cells = 2 * p;
    let mut model: Vec<u64> = (0..cells).map(|c| txn_init_balance(seed, c)).collect();
    for e in 0..epochs {
        let perm = txn_pairing(seed, e, p);
        for r in 0..p {
            let (a, b) = (perm[2 * r], perm[2 * r + 1]);
            let amt = txn_amount(seed, e, r as u32);
            model[a] = model[a].wrapping_sub(amt);
            model[b] = model[b].wrapping_add(amt);
        }
    }
    let mut local_sum = 0u64;
    for slot in 0..2usize {
        let c = me as usize * 2 + slot;
        let mut b = [0u8; 8];
        win.read_local(slot * CELL, &mut b);
        let (got_v, want_v) = (u64::from_le_bytes(b), 2 * epochs as u64);
        if got_v != want_v {
            v.push(violation(
                "txn_transfer",
                seed,
                me,
                format!("cell {c} version = {got_v}, want {want_v}"),
            ));
        }
        win.read_local(slot * CELL + 8, &mut b);
        let got = u64::from_le_bytes(b);
        if got != model[c] {
            v.push(violation(
                "txn_transfer",
                seed,
                me,
                format!("cell {c} balance = {got:#x}, want {:#x}", model[c]),
            ));
        }
        local_sum = local_sum.wrapping_add(got);
    }
    // Conservation, asserted across ranks per seed: transfers move value,
    // they never mint or burn it.
    let total = ctx.allreduce_u64(local_sum, u64::wrapping_add);
    let want_total = (0..cells).fold(0u64, |s, c| s.wrapping_add(txn_init_balance(seed, c)));
    if total != want_total {
        v.push(violation(
            "txn_transfer",
            seed,
            me,
            format!("conserved sum = {total:#x}, want {want_total:#x}"),
        ));
    }
    quiescence(&win, "txn_transfer", seed, me, v);
    Ok(())
}

/// The `fompi-rmc` channel wire protocol soaked under faults: every rank
/// streams `epochs` messages to its right neighbour over a slotted ring
/// in the receiver's window copy (notified puts), the receiver hands one
/// notified credit AMO back per drained slot, and slot reuse is fenced
/// with one flush per ring lap — exactly the producer/consumer loop the
/// `fompi-rmc` ends run, minus the crate dependency. Each slot region has
/// a single writer and each credit pad a single incrementer, so whatever
/// latencies, delayed completions or transient rejections the fault layer
/// injects, every payload must land exactly once, in order, and the
/// notification ring must drain to empty (the channel's bufferless rest
/// state).
fn rmc_channel(
    ctx: &RankCtx,
    p: usize,
    epochs: usize,
    seed: u64,
    v: &mut Vec<String>,
) -> Result<()> {
    const SLOTS: u64 = 2;
    const DATA_TAG: u32 = 0x00D0;
    const CREDIT_TAG: u32 = 0x00C0;
    // Layout: 8-byte credit-AMO pad at 0, then SLOTS cells for the left
    // neighbour's payloads.
    let win = Win::allocate(ctx, 8 + SLOTS as usize * 8, 1)?;
    let me = ctx.rank();
    let (left, right) = neighbors(me, p);
    win.lock_all()?;
    ctx.barrier();
    let (mut credits, mut head, mut flushed_at) = (SLOTS, 0u64, 0u64);
    let (mut tail, mut drained) = (0u64, 0usize);
    let check_slot = |win: &Win, tail: u64, v: &mut Vec<String>| {
        let mut b = [0u8; 8];
        win.read_local(8 + (tail % SLOTS) as usize * 8, &mut b);
        let (got, want) = (u64::from_le_bytes(b), payload(seed, tail as usize, left));
        if got != want {
            v.push(violation(
                "rmc_channel",
                seed,
                me,
                format!("message {tail} from rank {left} = {got:#x}, want {want:#x}"),
            ));
        }
    };
    for e in 0..epochs {
        // Service the consumer side first so a blocked neighbour always
        // makes progress: drain every arrived payload, recycle its slot
        // with a credit AMO.
        while win.test_notify(left, DATA_TAG)?.is_some() {
            check_slot(&win, tail, v);
            tail += 1;
            drained += 1;
            win.accumulate_notify(1, MpiOp::Sum, left, 0, CREDIT_TAG)?;
        }
        // Producer side: absorb credits (keep draining while starved —
        // the ring would deadlock if every rank just waited), fence slot
        // reuse once per lap, send.
        while credits == 0 {
            if win.test_notify(right, CREDIT_TAG)?.is_some() {
                credits += 1;
            } else if win.test_notify(left, DATA_TAG)?.is_some() {
                check_slot(&win, tail, v);
                tail += 1;
                drained += 1;
                win.accumulate_notify(1, MpiOp::Sum, left, 0, CREDIT_TAG)?;
            } else {
                std::thread::yield_now();
            }
        }
        if head >= flushed_at + SLOTS {
            win.flush(right)?;
            flushed_at = head;
        }
        win.put_notify(
            &payload(seed, e, me).to_le_bytes(),
            right,
            8 + (head % SLOTS) as usize * 8,
            DATA_TAG,
        )?;
        head += 1;
        credits -= 1;
    }
    // Drain the remainder of the left neighbour's stream...
    while drained < epochs {
        win.wait_notify(left, DATA_TAG)?;
        check_slot(&win, tail, v);
        tail += 1;
        drained += 1;
        win.accumulate_notify(1, MpiOp::Sum, left, 0, CREDIT_TAG)?;
    }
    // ...and absorb the returning credits: one per message sent, so the
    // ring ends exactly as full as it started. A short count here is a
    // lost credit notification.
    while credits < SLOTS {
        win.wait_notify(right, CREDIT_TAG)?;
        credits += 1;
    }
    win.flush_all()?;
    ctx.barrier();
    // Bufferless rest state: every data and credit notification consumed.
    let pending = win.notify_pending();
    if pending != 0 {
        v.push(violation(
            "rmc_channel",
            seed,
            me,
            format!("{pending} notification record(s) left in the ring"),
        ));
    }
    win.unlock_all()?;
    ctx.barrier();
    quiescence(&win, "rmc_channel", seed, me, v);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_protocols_pass_clean() {
        for proto in Protocol::ALL {
            let out = run_case(proto, 4, 4, 42, FaultPlan::disabled());
            assert!(out.passed(), "{:?}: {:?}", proto, out.violations);
            assert_eq!(out.injected, 0);
        }
    }

    #[test]
    fn all_protocols_survive_heavy_faults() {
        for proto in Protocol::ALL {
            let out = run_case(proto, 4, 4, 1234, FaultPlan::heavy(0));
            assert!(out.passed(), "{:?}: {:?}", proto, out.violations);
            assert!(out.injected > 0, "{proto:?} saw no faults under a heavy plan");
        }
    }

    #[test]
    fn rmc_channel_racecheck_clean_under_heavy_faults() {
        // The acceptance bar for the channel wire protocol: all six fault
        // classes armed, race checker panicking on any flag. The slot
        // fences and single-writer layout must hold under any injected
        // schedule.
        let out = run_case_racecheck(
            Protocol::RmcChannel,
            4,
            6,
            7,
            FaultPlan::heavy(0),
            Some(fompi_fabric::RacecheckMode::Panic),
        );
        assert!(out.passed(), "{:?}", out.violations);
        assert_eq!(out.raceflags, 0);
        assert!(out.injected > 0, "heavy plan must inject");
    }

    #[test]
    fn seed_derivation_is_stable_and_nonzero() {
        let a = seeds(7, 8);
        let b = seeds(7, 8);
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| s != 0));
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len());
    }

    #[test]
    fn txn_pairings_are_disjoint_and_cover_every_cell() {
        for p in [2, 3, 5, 8] {
            for e in 0..6 {
                let mut perm = txn_pairing(0xDEAD_BEEF, e, p);
                assert_eq!(perm.len(), 2 * p);
                perm.sort_unstable();
                assert_eq!(perm, (0..2 * p).collect::<Vec<_>>(), "p={p} epoch={e}");
            }
        }
        // Pairings vary across epochs — the soak is not one fixed pattern.
        assert_ne!(txn_pairing(1, 0, 4), txn_pairing(1, 1, 4));
    }

    #[test]
    fn violations_name_the_seed() {
        let msg = violation("fence", 0xABC, 3, "boom".into());
        assert!(msg.contains("FOMPI_SEED=2748"), "{msg}");
        assert!(msg.contains("rank=3"), "{msg}");
    }
}
