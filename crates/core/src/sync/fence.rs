//! MPI_Win_fence — global active-target synchronisation.
//!
//! §2.3: "Our implementation uses an x86 mfence instruction (XPMEM) and
//! DMAPP bulk synchronization (gsync) followed by an MPI barrier to ensure
//! global completion. The asymptotic memory bound is O(1) and, assuming a
//! good barrier implementation, the time bound is O(log p)."

use crate::error::{FompiError, Result};
use crate::win::{AccessEpoch, ExposureEpoch, Win};
use fompi_fabric::telemetry::{EventKind, NO_TARGET};
use std::sync::atomic::Ordering;

/// Fence assertion: no RMA epoch precedes this fence.
pub const ASSERT_NOPRECEDE: u32 = 1;
/// Fence assertion: no RMA epoch follows this fence.
pub const ASSERT_NOSUCCEED: u32 = 2;
/// Fence assertion: no local stores preceded this fence.
pub const ASSERT_NOSTORE: u32 = 4;
/// Fence assertion: no puts target this process in the next epoch.
pub const ASSERT_NOPUT: u32 = 8;

impl Win {
    /// MPI_Win_fence with no assertions: closes the previous access and
    /// exposure epochs and opens the next ones for the whole window.
    pub fn fence(&self) -> Result<()> {
        self.fence_assert(0)
    }

    /// MPI_Win_fence with assertions. `ASSERT_NOPRECEDE` skips the local
    /// completion work (nothing to commit); the barrier is always needed
    /// to order the epochs.
    pub fn fence_assert(&self, assert: u32) -> Result<()> {
        {
            let st = self.state.borrow();
            if matches!(st.access, AccessEpoch::Lock | AccessEpoch::LockAll) || !st.locks.is_empty()
            {
                return Err(FompiError::InvalidEpoch("fence during passive-target epoch"));
            }
            if matches!(st.access, AccessEpoch::Pscw(_))
                || matches!(st.exposure, ExposureEpoch::Pscw(_))
            {
                return Err(FompiError::InvalidEpoch("fence during PSCW epoch"));
            }
        }
        self.trace_scope();
        let t_start = self.ep.clock().now();
        if assert & ASSERT_NOPRECEDE == 0 {
            // Commit all outstanding one-sided operations. `gsync` also
            // retires any open issue-side injection bursts first, so a
            // batched epoch closes with the same completion guarantee.
            self.ep.mfence();
            self.ep.gsync();
        }
        self.coll.barrier(&self.ep);
        let mut st = self.state.borrow_mut();
        if assert & ASSERT_NOSUCCEED != 0 {
            st.access = AccessEpoch::None;
            st.exposure = ExposureEpoch::None;
        } else {
            st.access = AccessEpoch::Fence;
            st.exposure = ExposureEpoch::Fence;
        }
        drop(st);
        self.rc_fence();
        self.ep.fabric().counters().fences.fetch_add(1, Ordering::Relaxed);
        self.ep.trace_sync(EventKind::Fence, NO_TARGET, t_start);
        Ok(())
    }
}
