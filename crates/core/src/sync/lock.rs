//! Passive-target lock synchronisation (§2.3, Figure 3).
//!
//! Two-level 64-bit lock hierarchy:
//!
//! * one **global** lock word at a designated *master* — high 32 bits count
//!   processes registered for exclusive locks, low 32 bits count
//!   lock_all (global shared) holders; the two halves mutually exclude;
//! * one **local** reader-writer word per rank — bit 63 is the writer bit,
//!   the low bits count shared holders.
//!
//! Costs (uncontended) match the paper: a shared lock or lock_all is one
//! remote AMO; the first exclusive lock is two AMOs (global registration +
//! local CAS), later exclusive locks by the same origin skip the global
//! step; unlock is one AMO (plus one more when the last exclusive lock
//! releases the global registration). All waiting uses exponential
//! backoff.

use crate::error::{FompiError, Result};
use crate::meta::{off, split_global, GLOBAL_EXCL_ONE, WRITER_BIT};
use crate::win::{AccessEpoch, LockType, Win};
use fompi_fabric::telemetry::{EventKind, NO_TARGET};
use fompi_fabric::AmoOp;
use std::sync::atomic::Ordering;

/// Lock assertion: the user guarantees no conflicting lock is held or
/// attempted (MPI_MODE_NOCHECK) — the acquisition protocol is skipped
/// entirely, leaving only epoch bookkeeping.
pub const ASSERT_NOCHECK: u32 = 0x10;

impl Win {
    /// MPI_Win_lock: open a passive-target access epoch toward `target`.
    pub fn lock(&self, lock_type: LockType, target: u32) -> Result<()> {
        self.lock_assert(lock_type, target, 0)
    }

    /// [`Win::lock`] with assertions. With [`ASSERT_NOCHECK`] no protocol
    /// messages are sent at all — the paper's zero-cost path for
    /// statically race-free programs.
    pub fn lock_assert(&self, lock_type: LockType, target: u32, assert: u32) -> Result<()> {
        {
            let st = self.state.borrow();
            if !matches!(st.access, AccessEpoch::None | AccessEpoch::Lock) {
                return Err(FompiError::InvalidEpoch("lock during non-passive epoch"));
            }
            if st.locks.contains_key(&target) {
                return Err(FompiError::InvalidEpoch("target already locked by this origin"));
            }
        }
        self.trace_scope();
        let t_start = self.ep.clock().now();
        if assert & ASSERT_NOCHECK != 0 {
            let mut st = self.state.borrow_mut();
            st.locks.insert(target, LockType::Shared); // unlock = 0 AMOs
            st.access = AccessEpoch::Lock;
            st.nocheck.insert(target);
            drop(st);
            self.rc_lock_acquired(Some(target));
            self.ep.fabric().counters().locks.fetch_add(1, Ordering::Relaxed);
            self.ep.trace_sync(EventKind::Lock, target, t_start);
            return Ok(());
        }
        match lock_type {
            LockType::Shared => self.lock_shared(target)?,
            LockType::Exclusive => self.lock_exclusive(target)?,
        }
        let mut st = self.state.borrow_mut();
        st.locks.insert(target, lock_type);
        st.access = AccessEpoch::Lock;
        drop(st);
        // Sample the racecheck session *after* the protocol succeeded, so
        // a blocked acquirer observes the releasing holder's epoch bump.
        self.rc_lock_acquired(Some(target));
        self.ep.fabric().counters().locks.fetch_add(1, Ordering::Relaxed);
        self.ep.trace_sync(EventKind::Lock, target, t_start);
        Ok(())
    }

    /// MPI_Win_unlock: completes all operations to `target`, then releases
    /// the lock.
    pub fn unlock(&self, target: u32) -> Result<()> {
        let lock_type = {
            let st = self.state.borrow();
            *st.locks.get(&target).ok_or(FompiError::InvalidEpoch("unlock without lock"))?
        };
        self.trace_scope();
        let t_start = self.ep.clock().now();
        // Unlock must guarantee completion at the target. `flush_target`
        // first retires any open injection burst to `target` (issue-side
        // batching), then joins that peer's completion horizon.
        self.ep.mfence();
        self.ep.flush_target(target);
        // Racecheck release edge: bump *before* the release AMOs become
        // visible, so the next acquirer samples the advanced epoch.
        self.rc_unlock(Some(target));
        if self.state.borrow_mut().nocheck.remove(&target) {
            // MPI_MODE_NOCHECK: nothing was acquired, nothing to release.
            let mut st = self.state.borrow_mut();
            st.locks.remove(&target);
            if st.locks.is_empty() {
                st.access = AccessEpoch::None;
            }
            drop(st);
            self.ep.fabric().counters().unlocks.fetch_add(1, Ordering::Relaxed);
            self.ep.trace_sync(EventKind::Unlock, target, t_start);
            return Ok(());
        }
        let lkey = self.meta_key(target);
        match lock_type {
            LockType::Shared => {
                // Releases are non-fetching AMOs: one injection, completion
                // in the background (Punlock = 0.4 µs, §3.2).
                self.ep.amo_sync_release(lkey, off::LOCAL_LOCK, AmoOp::Add, u64::MAX)?;
                // -1
            }
            LockType::Exclusive => {
                // fetch_sub(WRITER_BIT) preserves concurrent reader
                // register/back-off deltas (a swap(0) would destroy them).
                self.ep.amo_sync_release(
                    lkey,
                    off::LOCAL_LOCK,
                    AmoOp::Add,
                    WRITER_BIT.wrapping_neg(),
                )?;
                let held = self.held_excl.get() - 1;
                self.held_excl.set(held);
                if held == 0 {
                    let gkey = self.meta_key(self.shared.master);
                    self.ep.amo_sync_release(
                        gkey,
                        off::GLOBAL_LOCK,
                        AmoOp::Add,
                        GLOBAL_EXCL_ONE.wrapping_neg(),
                    )?;
                }
            }
        }
        let mut st = self.state.borrow_mut();
        st.locks.remove(&target);
        if st.locks.is_empty() {
            st.access = AccessEpoch::None;
        }
        drop(st);
        self.ep.fabric().counters().unlocks.fetch_add(1, Ordering::Relaxed);
        self.ep.trace_sync(EventKind::Unlock, target, t_start);
        Ok(())
    }

    /// MPI_Win_lock_all: shared lock on every rank — one remote AMO on the
    /// global lock (the MPI-3.0 specification does not allow an exclusive
    /// lock_all).
    pub fn lock_all(&self) -> Result<()> {
        {
            let st = self.state.borrow();
            if !matches!(st.access, AccessEpoch::None) {
                return Err(FompiError::InvalidEpoch("lock_all during open epoch"));
            }
        }
        self.trace_scope();
        let t_start = self.ep.clock().now();
        let gkey = self.meta_key(self.shared.master);
        let mut spins = 0u64;
        loop {
            let (old, _) = self.ep.amo_sync(gkey, off::GLOBAL_LOCK, AmoOp::Add, 1, 0)?;
            let (excl, _shared) = split_global(old);
            if excl == 0 {
                break;
            }
            // Back off: undo the registration and retry. Under the model
            // checker, park until the exclusive half drains (a free retry
            // would be an always-enabled step — unbounded exploration).
            self.ep.amo_sync(gkey, off::GLOBAL_LOCK, AmoOp::Add, u64::MAX, 0)?; // -1
            if !self.ep.mc_poll_word(gkey, off::GLOBAL_LOCK, "lock-all", |w| split_global(w).0 == 0)
            {
                spins += 1;
                if spins > super::SPIN_LIMIT {
                    super::spin_overflow("global lock free of exclusive holders");
                }
                super::backoff_spin(&self.ep, spins);
            }
        }
        self.state.borrow_mut().access = AccessEpoch::LockAll;
        self.rc_lock_acquired(None);
        self.ep.fabric().counters().locks.fetch_add(1, Ordering::Relaxed);
        self.ep.trace_sync(EventKind::LockAll, NO_TARGET, t_start);
        Ok(())
    }

    /// MPI_Win_unlock_all.
    pub fn unlock_all(&self) -> Result<()> {
        {
            let st = self.state.borrow();
            if !matches!(st.access, AccessEpoch::LockAll) {
                return Err(FompiError::InvalidEpoch("unlock_all without lock_all"));
            }
        }
        self.trace_scope();
        let t_start = self.ep.clock().now();
        self.ep.mfence();
        self.ep.gsync();
        self.rc_unlock(None);
        let gkey = self.meta_key(self.shared.master);
        self.ep.amo_sync_release(gkey, off::GLOBAL_LOCK, AmoOp::Add, u64::MAX)?; // -1
        self.state.borrow_mut().access = AccessEpoch::None;
        self.ep.fabric().counters().unlocks.fetch_add(1, Ordering::Relaxed);
        self.ep.trace_sync(EventKind::UnlockAll, NO_TARGET, t_start);
        Ok(())
    }

    // ----------------------------------------------------------- internals

    /// Shared lock: one fetch-and-add on the target's local lock; if a
    /// writer holds it, back off and spin-read until the writer bit clears.
    fn lock_shared(&self, target: u32) -> Result<()> {
        let lkey = self.meta_key(target);
        let mut spins = 0u64;
        loop {
            let (old, _) = self.ep.amo_sync(lkey, off::LOCAL_LOCK, AmoOp::Add, 1, 0)?;
            if old & WRITER_BIT == 0 {
                return Ok(());
            }
            self.ep.amo_sync(lkey, off::LOCAL_LOCK, AmoOp::Add, u64::MAX, 0)?; // -1
            if self.ep.mc_poll_word(lkey, off::LOCAL_LOCK, "lock-shared", |w| w & WRITER_BIT == 0) {
                // Gate-mediated wait: the writer's release wakes us.
                continue;
            }
            // Spin-read until the writer finishes.
            loop {
                spins += 1;
                if spins > super::SPIN_LIMIT {
                    super::spin_overflow("exclusive lock release");
                }
                super::backoff_spin(&self.ep, spins.min(10));
                if self.ep.read_sync(lkey, off::LOCAL_LOCK)? & WRITER_BIT == 0 {
                    break;
                }
            }
        }
    }

    /// Exclusive lock: invariant 1 registers on the global lock (skipped
    /// when this origin already holds an exclusive lock); invariant 2 CASes
    /// the target's local lock from 0 to the writer bit. If the local CAS
    /// fails while we hold no other exclusive lock, release the global
    /// registration and retry both steps (Figure 3c, Process 2).
    fn lock_exclusive(&self, target: u32) -> Result<()> {
        let gkey = self.meta_key(self.shared.master);
        let lkey = self.meta_key(target);
        let mut spins = 0u64;
        loop {
            let registered_here = if self.held_excl.get() == 0 {
                // Invariant 1: no lock_all holders.
                loop {
                    let (old, _) =
                        self.ep.amo_sync(gkey, off::GLOBAL_LOCK, AmoOp::Add, GLOBAL_EXCL_ONE, 0)?;
                    let (_excl, shared) = split_global(old);
                    if shared == 0 {
                        break;
                    }
                    self.ep.amo_sync(
                        gkey,
                        off::GLOBAL_LOCK,
                        AmoOp::Add,
                        GLOBAL_EXCL_ONE.wrapping_neg(),
                        0,
                    )?;
                    if !self.ep.mc_poll_word(gkey, off::GLOBAL_LOCK, "lock-excl-global", |w| {
                        split_global(w).1 == 0
                    }) {
                        spins += 1;
                        if spins > super::SPIN_LIMIT {
                            super::spin_overflow("global lock free of lock_all holders");
                        }
                        super::backoff_spin(&self.ep, spins);
                    }
                }
                true
            } else {
                false
            };
            // Invariant 2: acquire the local writer bit.
            let (old, _) = self.ep.amo_sync(lkey, off::LOCAL_LOCK, AmoOp::Cas, WRITER_BIT, 0)?;
            if old == 0 {
                self.held_excl.set(self.held_excl.get() + 1);
                return Ok(());
            }
            if registered_here {
                // Release the global registration while we wait, so
                // lock_all requests are not starved.
                self.ep.amo_sync(
                    gkey,
                    off::GLOBAL_LOCK,
                    AmoOp::Add,
                    GLOBAL_EXCL_ONE.wrapping_neg(),
                    0,
                )?;
            }
            if !self.ep.mc_poll_word(lkey, off::LOCAL_LOCK, "lock-excl-local", |w| w == 0) {
                spins += 1;
                if spins > super::SPIN_LIMIT {
                    super::spin_overflow("local lock release");
                }
                super::backoff_spin(&self.ep, spins);
            }
        }
    }
}
