//! Notified access (extension): put with integrated remote notification.
//!
//! The paper's applications (MILC §4.4, the UPC port it mirrors) pair
//! every data transfer with a separate atomic-add flag update; the target
//! spins on the flag. Notified access — the direction foMPI later took
//! with foMPI-NA (Belli & Hoefler, IPDPS'15) — fuses the two: the origin's
//! single call delivers the data *and* bumps a notification counter at the
//! target, saving one injection and one AMO round trip per message; the
//! target waits on its local counter.
//!
//! Counters are monotonic (no reset races across iterations): waiters pass
//! the absolute count they expect. `notify_slots` counters per rank are
//! available (one per neighbour/direction is typical).

use crate::error::{FompiError, Result};
use crate::win::Win;
use fompi_fabric::AmoOp;

impl Win {
    /// Put `origin` into `target` at `target_disp` and raise the target's
    /// notification counter `slot` by one, all completing together.
    /// Requires an access epoch covering `target`.
    pub fn put_notify(
        &self,
        origin: &[u8],
        target: u32,
        target_disp: usize,
        slot: usize,
    ) -> Result<()> {
        if slot >= self.shared.cfg.notify_slots {
            return Err(FompiError::InvalidEpoch("notification slot out of range"));
        }
        self.check_access(target)?;
        self.ep.charge(crate::perf::overhead::put_get_ns());
        let (key, off) = self.target_span(target, target_disp, origin.len())?;
        self.ep.put_implicit(key, off, origin)?;
        // The notification is NIC-ordered after the data (no origin-side
        // blocking): one non-fetching AMO whose visibility trails the put.
        let mkey = self.meta_key(target);
        self.ep.amo_sync_release_ordered(mkey, self.shared.cfg.notify_off(slot), AmoOp::Add, 1)?;
        Ok(())
    }

    /// Block until this rank's notification counter `slot` reaches
    /// `count` (absolute, monotonic). Purely local spinning.
    pub fn notify_wait(&self, slot: usize, count: u64) -> Result<()> {
        if slot >= self.shared.cfg.notify_slots {
            return Err(FompiError::InvalidEpoch("notification slot out of range"));
        }
        let mkey = self.meta_key(self.ep.rank());
        let noff = self.shared.cfg.notify_off(slot);
        let mut spins = 0u64;
        loop {
            if self.ep.read_sync(mkey, noff)? >= count {
                return Ok(());
            }
            spins += 1;
            if spins > super::SPIN_LIMIT {
                super::spin_overflow("put_notify notifications");
            }
            std::thread::yield_now();
        }
    }

    /// Nonblocking check of notification counter `slot`.
    pub fn notify_test(&self, slot: usize) -> Result<u64> {
        if slot >= self.shared.cfg.notify_slots {
            return Err(FompiError::InvalidEpoch("notification slot out of range"));
        }
        let mkey = self.meta_key(self.ep.rank());
        Ok(self.ep.read_sync(mkey, self.shared.cfg.notify_off(slot))?)
    }
}

#[cfg(test)]
mod tests {
    use crate::win::{LockType, Win};
    use fompi_runtime::Universe;

    #[test]
    fn put_notify_producer_consumer() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            if ctx.rank() == 0 {
                win.lock(LockType::Shared, 1).unwrap();
                for i in 0..5u64 {
                    win.put_notify(&(i * 11).to_le_bytes(), 1, (i as usize) * 8, 0).unwrap();
                }
                win.unlock(1).unwrap();
                ctx.barrier();
                Vec::new()
            } else {
                win.notify_wait(0, 5).unwrap();
                let mut vals = Vec::new();
                for i in 0..5usize {
                    let mut b = [0u8; 8];
                    win.read_local(i * 8, &mut b);
                    vals.push(u64::from_le_bytes(b));
                }
                ctx.barrier();
                vals
            }
        });
        assert_eq!(got[1], vec![0, 11, 22, 33, 44]);
    }

    #[test]
    fn notify_data_visible_before_notification() {
        // The flush inside put_notify orders data before the counter: the
        // consumer reading after notify_wait must never see stale bytes.
        let rounds = 25u64;
        let got = Universe::new(2).node_size(1).run(move |ctx| {
            let win = Win::allocate(ctx, 16, 1).unwrap();
            if ctx.rank() == 0 {
                win.lock(LockType::Shared, 1).unwrap();
                for i in 1..=rounds {
                    win.put_notify(&i.to_le_bytes(), 1, 0, 3).unwrap();
                }
                win.unlock(1).unwrap();
                ctx.barrier();
                true
            } else {
                let mut ok = true;
                for i in 1..=rounds {
                    win.notify_wait(3, i).unwrap();
                    let mut b = [0u8; 8];
                    win.read_local(0, &mut b);
                    // Value must be at least i (later puts may have landed).
                    ok &= u64::from_le_bytes(b) >= i;
                }
                ctx.barrier();
                ok
            }
        });
        assert!(got[1]);
    }

    #[test]
    fn distinct_slots_are_independent() {
        let got = Universe::new(3).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            if ctx.rank() != 0 {
                win.lock(LockType::Shared, 0).unwrap();
                win.put_notify(
                    &[ctx.rank() as u8; 8],
                    0,
                    ctx.rank() as usize * 8,
                    ctx.rank() as usize,
                )
                .unwrap();
                win.unlock(0).unwrap();
                ctx.barrier();
                0
            } else {
                win.notify_wait(1, 1).unwrap();
                win.notify_wait(2, 1).unwrap();
                let c1 = win.notify_test(1).unwrap();
                let c2 = win.notify_test(2).unwrap();
                ctx.barrier();
                (c1 + c2) as u32
            }
        });
        assert_eq!(got[0], 2);
    }

    #[test]
    fn slot_bounds_checked() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 16, 1).unwrap();
            let r = if ctx.rank() == 0 {
                win.lock(LockType::Shared, 1).unwrap();
                let e = win.put_notify(&[1u8; 4], 1, 0, 99).is_err();
                win.unlock(1).unwrap();
                e
            } else {
                win.notify_test(99).is_err()
            };
            ctx.barrier();
            r
        });
        assert!(got.iter().all(|&e| e));
    }
}
