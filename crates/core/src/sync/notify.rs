//! Notified access: RMA operations with integrated remote notifications.
//!
//! The paper's applications (MILC §4.4, the UPC port it mirrors) pair
//! every data transfer with a separate atomic-add flag update; the target
//! spins on the flag. Notified access — the direction foMPI later took
//! with foMPI-NA (Belli & Hoefler, IPDPS'15) — fuses the two. Two API
//! generations live here:
//!
//! * **Signals** ([`Win::put_signal`] / [`Win::signal_wait`] /
//!   [`Win::signal_test`]): the original slot-counter scheme. The origin's
//!   call delivers the data *and* bumps one of `notify_slots` monotonic
//!   counters in the target's window metadata; the target spins on its
//!   local counter. No payload metadata travels with the signal — the
//!   consumer must know from the slot number alone what arrived.
//!
//! * **Notifications** ([`Win::put_notify`] / [`Win::get_notify`] /
//!   [`Win::accumulate_notify`] matched by [`Win::wait_notify`] /
//!   [`Win::test_notify`]): full foMPI-NA-style notified access over the
//!   fabric's per-rank notification rings ([`fompi_fabric::notify`]).
//!   Every notified operation appends a `(tag, source, bytes)` record to
//!   the target's ring, ordered after the operation's data (an open
//!   injection burst toward the target is drained first, so the record
//!   trails the burst's completion). Consumers match with tag and source
//!   wildcards ([`ANY_TAG`] / [`ANY_SOURCE`]); records popped while
//!   looking for a different match are stashed FIFO and re-offered to
//!   later waits, so a wait never steals or reorders another match.
//!
//! Matching a notification *is* the consumption fence: the matched
//! record's stamp joins the consumer's virtual clock, so a local read
//! after [`Win::wait_notify`] observes the notified operation's data.
//! Un-consumed records (ring + stash) are discarded and counted when the
//! window is freed.

use crate::error::{FompiError, Result};
use crate::racecheck::acc_tag;
use crate::win::Win;
use fompi_fabric::shadow::AccessKind;
use fompi_fabric::telemetry::{flow_origin, EventKind, NO_FLOW};
use fompi_fabric::{notify_match, AmoOp, NotifyRecord, NOTIFY_ANY};

/// Wildcard tag for [`Win::wait_notify`] / [`Win::test_notify`].
pub const ANY_TAG: u32 = NOTIFY_ANY;

/// Wildcard source rank for [`Win::wait_notify`] / [`Win::test_notify`].
pub const ANY_SOURCE: u32 = NOTIFY_ANY;

impl Win {
    // ------------------------------------------------- signals (slot API)

    /// Put `origin` into `target` at `target_disp` and raise the target's
    /// signal counter `slot` by one, all completing together.
    /// Requires an access epoch covering `target`.
    pub fn put_signal(
        &self,
        origin: &[u8],
        target: u32,
        target_disp: usize,
        slot: usize,
    ) -> Result<()> {
        if slot >= self.shared.cfg.notify_slots {
            return Err(FompiError::InvalidEpoch("signal slot out of range"));
        }
        self.check_access(target)?;
        self.ep.charge(crate::perf::overhead::put_get_ns());
        // One causal flow covers the data put and its signal release; the
        // release hands the flow to the waiter via the signal mailbox.
        let prev = self.ep.flow_open();
        let r = (|| -> Result<()> {
            let rc = self.rc_start();
            let (key, off) = self.target_span(target, target_disp, origin.len())?;
            self.ep.put_implicit(key, off, origin)?;
            if let Some(t0) = rc {
                // Only the data interval is shadowed; the signal AMO lands in
                // window metadata, outside user-addressable bytes.
                self.rc_remote(
                    t0,
                    target,
                    self.rc_base(target_disp, off),
                    origin.len(),
                    AccessKind::Put,
                );
            }
            // The signal is NIC-ordered after the data (no origin-side
            // blocking): one non-fetching AMO whose visibility trails the put.
            let mkey = self.meta_key(target);
            self.ep.amo_sync_release_ordered(
                mkey,
                self.shared.cfg.notify_off(slot),
                AmoOp::Add,
                1,
            )?;
            Ok(())
        })();
        self.ep.flow_close(prev);
        r
    }

    /// Block until this rank's signal counter `slot` reaches `count`
    /// (absolute, monotonic). Purely local spinning.
    pub fn signal_wait(&self, slot: usize, count: u64) -> Result<()> {
        if slot >= self.shared.cfg.notify_slots {
            return Err(FompiError::InvalidEpoch("signal slot out of range"));
        }
        let mkey = self.meta_key(self.ep.rank());
        let noff = self.shared.cfg.notify_off(slot);
        let t0 = self.ep.clock().now();
        let mut spins = 0u64;
        loop {
            if self.ep.read_sync(mkey, noff)? >= count {
                // Racecheck acquire edge: the signal is release-ordered
                // after its data, so reads that follow are synchronized.
                self.rc_acquire_own();
                // Join the producer's flow (latest release wins the
                // mailbox); the consume span closes its arrow.
                let flow = self.ep.fabric().telemetry().take_signal_flow(self.ep.rank());
                if flow != NO_FLOW {
                    self.ep.trace_flow_consume(
                        EventKind::NotifyWait,
                        flow_origin(flow),
                        t0,
                        flow,
                        0,
                    );
                }
                return Ok(());
            }
            spins += 1;
            if spins > super::SPIN_LIMIT {
                super::spin_overflow("put_signal counters");
            }
            std::thread::yield_now();
        }
    }

    /// Nonblocking check of signal counter `slot`.
    pub fn signal_test(&self, slot: usize) -> Result<u64> {
        if slot >= self.shared.cfg.notify_slots {
            return Err(FompiError::InvalidEpoch("signal slot out of range"));
        }
        let mkey = self.meta_key(self.ep.rank());
        let v = self.ep.read_sync(mkey, self.shared.cfg.notify_off(slot))?;
        if v > 0 {
            // A nonzero counter proves at least one producer's release was
            // observed — an acquire edge for the data behind it.
            self.rc_acquire_own();
        }
        Ok(v)
    }

    // ------------------------------------------- notifications (ring API)

    /// Put `origin` into `target` at `target_disp` and append a `(tag,
    /// source, bytes)` notification to `target`'s ring, ordered after the
    /// data. Requires an access epoch covering `target`; `tag` must not be
    /// [`ANY_TAG`] (reserved for matching). A full target ring surfaces as
    /// transient [`FompiError::Fabric`] backpressure after a bounded
    /// stall-and-retry (see [`fompi_fabric::Endpoint::notify_append`]).
    pub fn put_notify(
        &self,
        origin: &[u8],
        target: u32,
        target_disp: usize,
        tag: u32,
    ) -> Result<()> {
        self.notify_tag_ok(tag)?;
        self.check_access(target)?;
        self.ep.charge(crate::perf::overhead::put_get_ns());
        let rc = self.rc_start();
        let (key, off) = self.target_span(target, target_disp, origin.len())?;
        self.ep.put_notified(key, off, origin, tag)?;
        if let Some(t0) = rc {
            self.rc_remote(
                t0,
                target,
                self.rc_base(target_disp, off),
                origin.len(),
                AccessKind::Put,
            );
        }
        Ok(())
    }

    /// Get from `target` at `target_disp` into `dst` and notify *the
    /// target* that the read retired — the buffer-reuse handshake of
    /// notified access (the owner may overwrite once it matches the
    /// notification).
    pub fn get_notify(
        &self,
        dst: &mut [u8],
        target: u32,
        target_disp: usize,
        tag: u32,
    ) -> Result<()> {
        self.notify_tag_ok(tag)?;
        self.check_access(target)?;
        self.ep.charge(crate::perf::overhead::put_get_ns());
        let rc = self.rc_start();
        let (key, off) = self.target_span(target, target_disp, dst.len())?;
        let len = dst.len();
        self.ep.get_notified(key, off, dst, tag)?;
        if let Some(t0) = rc {
            self.rc_remote(t0, target, self.rc_base(target_disp, off), len, AccessKind::Get);
        }
        Ok(())
    }

    /// Notified 8-byte accumulate: apply `op` to the u64 at `target_disp`
    /// and append a notification, ordered after the update. Only
    /// hardware-accelerated ops ([`crate::MpiOp::hw_amo`] on `U64`) are
    /// accepted — the credit-return primitive of producer-consumer
    /// channels rides this path.
    pub fn accumulate_notify(
        &self,
        operand: u64,
        op: crate::MpiOp,
        target: u32,
        target_disp: usize,
        tag: u32,
    ) -> Result<()> {
        self.notify_tag_ok(tag)?;
        let amo = op
            .hw_amo(crate::NumKind::U64)
            .ok_or(FompiError::BadAccumulate("accumulate_notify needs a hardware AMO op"))?;
        self.check_access(target)?;
        self.ep.charge(crate::perf::overhead::put_get_ns());
        let rc = self.rc_start();
        let (key, off) = self.target_span(target, target_disp, 8)?;
        self.ep.amo_notified(key, off, amo, operand, tag)?;
        if let Some(t0) = rc {
            self.rc_remote(
                t0,
                target,
                self.rc_base(target_disp, off),
                8,
                AccessKind::Acc(acc_tag(op)),
            );
        }
        Ok(())
    }

    /// Block until a notification matching `(source, tag)` — either may be
    /// a wildcard ([`ANY_SOURCE`] / [`ANY_TAG`]) — arrives at this rank,
    /// and return it. Previously-popped non-matching records are offered
    /// first, in arrival order, so concurrent waits on disjoint matches
    /// never lose records to each other. The matched record's stamp joins
    /// this rank's virtual clock: the notified operation's data is visible
    /// after the call. Spinning is free in virtual time (local ring poll).
    pub fn wait_notify(&self, source: u32, tag: u32) -> Result<NotifyRecord> {
        self.trace_scope();
        let t0 = self.ep.clock().now();
        let mut spins = 0u64;
        loop {
            if let Some(rec) = self.notify_take(source, tag) {
                self.ep.notify_join(&rec);
                // Racecheck acquire edge: matching consumes the
                // notification's ordering guarantee.
                self.rc_acquire_own();
                // The consume span carries the record's flow: the arrow
                // from the producing put/post terminates here.
                self.ep.trace_flow_consume(
                    EventKind::NotifyWait,
                    rec.source,
                    t0,
                    rec.flow,
                    rec.bytes,
                );
                return Ok(rec);
            }
            // Under the model checker, park in the gate until the ring is
            // non-empty instead of spinning: a blocked waiter with nothing
            // to observe must be *disabled*, or exploration never
            // terminates (and genuine deadlocks would look like spins).
            if self.ep.mc_poll_my_ring("wait-notify") {
                continue;
            }
            spins += 1;
            if spins > super::SPIN_LIMIT {
                super::spin_overflow("a matching notification");
            }
            std::thread::yield_now();
        }
    }

    /// Nonblocking [`Win::wait_notify`]: one matching pass over the stash
    /// and ring; `None` if no queued notification matches `(source, tag)`.
    pub fn test_notify(&self, source: u32, tag: u32) -> Result<Option<NotifyRecord>> {
        self.trace_scope();
        let t0 = self.ep.clock().now();
        Ok(self.notify_take(source, tag).inspect(|rec| {
            self.ep.notify_join(rec);
            self.rc_acquire_own();
            self.ep.trace_flow_consume(EventKind::NotifyWait, rec.source, t0, rec.flow, rec.bytes);
        }))
    }

    /// Notifications queued for this rank and not yet matched (stash +
    /// ring; the ring count is approximate under concurrent producers).
    pub fn notify_pending(&self) -> usize {
        self.notify_stash.borrow().len() + self.ep.notify_backlog()
    }

    /// One matching pass: stash first (FIFO), then drain the ring into the
    /// stash until a match pops out. Unmatched records keep arrival order.
    /// No clock joins happen here — only the *matched* record may touch
    /// the consumer's clock (see [`fompi_fabric::Endpoint::notify_poll`]),
    /// so consumer time never depends on unrelated queue traffic.
    fn notify_take(&self, source: u32, tag: u32) -> Option<NotifyRecord> {
        let mut stash = self.notify_stash.borrow_mut();
        if let Some(i) = stash.iter().position(|r| notify_match(source, tag, r.source, r.tag)) {
            return stash.remove(i);
        }
        while let Some(rec) = self.ep.notify_poll() {
            if notify_match(source, tag, rec.source, rec.tag) {
                return Some(rec);
            }
            stash.push_back(rec);
        }
        None
    }

    fn notify_tag_ok(&self, tag: u32) -> Result<()> {
        if tag == ANY_TAG {
            return Err(FompiError::InvalidEpoch("ANY_TAG is reserved for matching"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::{ANY_SOURCE, ANY_TAG};
    use crate::win::{LockType, Win};
    use fompi_fabric::FaultPlan;
    use fompi_runtime::Universe;

    // ------------------------------------------------------ signals (slots)

    #[test]
    fn put_signal_producer_consumer() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            if ctx.rank() == 0 {
                win.lock(LockType::Shared, 1).unwrap();
                for i in 0..5u64 {
                    win.put_signal(&(i * 11).to_le_bytes(), 1, (i as usize) * 8, 0).unwrap();
                }
                win.unlock(1).unwrap();
                ctx.barrier();
                Vec::new()
            } else {
                win.signal_wait(0, 5).unwrap();
                let mut vals = Vec::new();
                for i in 0..5usize {
                    let mut b = [0u8; 8];
                    win.read_local(i * 8, &mut b);
                    vals.push(u64::from_le_bytes(b));
                }
                ctx.barrier();
                vals
            }
        });
        assert_eq!(got[1], vec![0, 11, 22, 33, 44]);
    }

    #[test]
    fn signal_data_visible_before_notification() {
        // The ordered AMO inside put_signal trails the data: the consumer
        // reading after signal_wait must never see stale bytes.
        let rounds = 25u64;
        let got = Universe::new(2).node_size(1).run(move |ctx| {
            let win = Win::allocate(ctx, 16, 1).unwrap();
            if ctx.rank() == 0 {
                win.lock(LockType::Shared, 1).unwrap();
                for i in 1..=rounds {
                    win.put_signal(&i.to_le_bytes(), 1, 0, 3).unwrap();
                }
                win.unlock(1).unwrap();
                ctx.barrier();
                true
            } else {
                let mut ok = true;
                for i in 1..=rounds {
                    win.signal_wait(3, i).unwrap();
                    let mut b = [0u8; 8];
                    win.read_local(0, &mut b);
                    // Value must be at least i (later puts may have landed).
                    ok &= u64::from_le_bytes(b) >= i;
                }
                ctx.barrier();
                ok
            }
        });
        assert!(got[1]);
    }

    #[test]
    fn distinct_slots_are_independent() {
        let got = Universe::new(3).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            if ctx.rank() != 0 {
                win.lock(LockType::Shared, 0).unwrap();
                win.put_signal(
                    &[ctx.rank() as u8; 8],
                    0,
                    ctx.rank() as usize * 8,
                    ctx.rank() as usize,
                )
                .unwrap();
                win.unlock(0).unwrap();
                ctx.barrier();
                0
            } else {
                win.signal_wait(1, 1).unwrap();
                win.signal_wait(2, 1).unwrap();
                let c1 = win.signal_test(1).unwrap();
                let c2 = win.signal_test(2).unwrap();
                ctx.barrier();
                (c1 + c2) as u32
            }
        });
        assert_eq!(got[0], 2);
    }

    #[test]
    fn slot_bounds_checked() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 16, 1).unwrap();
            let r = if ctx.rank() == 0 {
                win.lock(LockType::Shared, 1).unwrap();
                let e = win.put_signal(&[1u8; 4], 1, 0, 99).is_err();
                win.unlock(1).unwrap();
                e
            } else {
                win.signal_test(99).is_err()
            };
            ctx.barrier();
            r
        });
        assert!(got.iter().all(|&e| e));
    }

    // ------------------------------------------------- notifications (ring)

    #[test]
    fn put_notify_wait_notify_roundtrip() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            win.lock_all().unwrap();
            if ctx.rank() == 0 {
                win.put_notify(&0xAB12u64.to_le_bytes(), 1, 8, 7).unwrap();
                win.unlock_all().unwrap();
                ctx.barrier();
                0
            } else {
                let rec = win.wait_notify(0, 7).unwrap();
                assert_eq!((rec.source, rec.tag, rec.bytes), (0, 7, 8));
                let mut b = [0u8; 8];
                win.read_local(8, &mut b);
                win.unlock_all().unwrap();
                ctx.barrier();
                u64::from_le_bytes(b)
            }
        });
        assert_eq!(got[1], 0xAB12);
    }

    #[test]
    fn wildcard_waits_preserve_arrival_order() {
        // Rank 0 sends tags 1, 2, 3 in order. The consumer first asks for
        // tag 2 specifically (stashing 1), then a wildcard wait must return
        // the *stashed* record (tag 1) before the still-queued tag 3.
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            win.lock_all().unwrap();
            if ctx.rank() == 0 {
                for tag in 1..=3u32 {
                    win.put_notify(&[tag as u8; 4], 1, tag as usize * 4, tag).unwrap();
                }
                win.unlock_all().unwrap();
                ctx.barrier();
                Vec::new()
            } else {
                let first = win.wait_notify(ANY_SOURCE, 2).unwrap();
                let second = win.wait_notify(0, ANY_TAG).unwrap();
                let third = win.wait_notify(ANY_SOURCE, ANY_TAG).unwrap();
                assert_eq!(win.notify_pending(), 0);
                win.unlock_all().unwrap();
                ctx.barrier();
                vec![first.tag, second.tag, third.tag]
            }
        });
        assert_eq!(got[1], vec![2, 1, 3]);
    }

    #[test]
    fn test_notify_is_nonblocking_and_matches() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 32, 1).unwrap();
            win.lock_all().unwrap();
            if ctx.rank() == 0 {
                // Nothing queued yet: a probe for a never-sent tag is None.
                assert!(win.test_notify(ANY_SOURCE, 99).unwrap().is_none());
                win.put_notify(&[7u8; 8], 1, 0, 5).unwrap();
                win.unlock_all().unwrap();
                ctx.barrier();
                true
            } else {
                ctx.barrier(); // producer already unlocked ⇒ record queued
                let rec = win.test_notify(1, ANY_TAG).unwrap();
                assert!(rec.is_none(), "no notification from rank 1 expected");
                let rec = win.test_notify(0, 5).unwrap().expect("queued record");
                assert_eq!(rec.bytes, 8);
                win.unlock_all().unwrap();
                true
            }
        });
        assert!(got.iter().all(|&b| b));
    }

    #[test]
    fn any_tag_is_rejected_for_sending() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 16, 1).unwrap();
            win.lock_all().unwrap();
            let e = win.put_notify(&[1u8; 4], (ctx.rank() + 1) % 2, 0, ANY_TAG).is_err();
            win.unlock_all().unwrap();
            ctx.barrier();
            e
        });
        assert!(got.iter().all(|&e| e));
    }

    #[test]
    fn notified_op_inside_fault_delayed_burst_stays_ordered_and_deterministic() {
        // Batching on + a delay/backpressure-heavy fault plan: each round
        // puts a payload (opening a burst) and then a notified put, whose
        // notification must trail the whole burst. Virtual clocks of both
        // ranks must be bit-identical across two runs, and every matched
        // record's stamp must be monotone (ordered class).
        let run = || {
            let plan = FaultPlan { delay_prob: 0.5, bp_prob: 0.3, ..FaultPlan::heavy(99) };
            Universe::new(2).node_size(1).seed(99).faults(plan).batch(true).run(|ctx| {
                // One 512 B zone per round: the producer runs ahead of the
                // consumer, so zones must never be reused within a run.
                let win = Win::allocate(ctx, 20 * 512, 1).unwrap();
                win.lock_all().unwrap();
                if ctx.rank() == 0 {
                    for round in 0..20u32 {
                        let base = round as usize * 512;
                        win.put(&[round as u8; 256], 1, base).unwrap();
                        win.put_notify(&round.to_le_bytes(), 1, base + 256, round).unwrap();
                    }
                    win.unlock_all().unwrap();
                    ctx.barrier();
                } else {
                    let mut last_stamp = 0.0f64;
                    for round in 0..20u32 {
                        let rec = win.wait_notify(0, round).unwrap();
                        assert!(rec.stamp >= last_stamp, "notification stamps went backwards");
                        last_stamp = rec.stamp;
                        let base = round as usize * 512;
                        let mut b = [0u8; 4];
                        win.read_local(base + 256, &mut b);
                        assert_eq!(u32::from_le_bytes(b), round);
                        // The burst data travelled with the notification.
                        let mut d = [0u8; 256];
                        win.read_local(base, &mut d);
                        assert!(d.iter().all(|&x| x == round as u8));
                    }
                    win.unlock_all().unwrap();
                    ctx.barrier();
                }
                ctx.now().to_bits()
            })
        };
        assert_eq!(run(), run(), "virtual clocks must not depend on the real schedule");
    }

    #[test]
    fn overflow_backpressures_and_surfaces_transient_error() {
        // A 2-record ring and a parked consumer: the third append stalls
        // (backpressure accounting) and, with nobody draining, surfaces a
        // transient error after the bounded retry.
        let got = Universe::new(2).node_size(1).notify_depth(2).run(|ctx| {
            let win = Win::allocate(ctx, 32, 1).unwrap();
            win.lock_all().unwrap();
            let r = if ctx.rank() == 0 {
                win.put_notify(&[1u8; 4], 1, 0, 1).unwrap();
                win.put_notify(&[2u8; 4], 1, 4, 2).unwrap();
                let before = ctx.now();
                let err = win.put_notify(&[3u8; 4], 1, 8, 3).unwrap_err();
                assert!(err.is_transient(), "ring overflow must be retryable: {err}");
                assert!(ctx.now() > before, "the stall must charge virtual time");
                let c = ctx.fabric().counters().snapshot();
                assert!(c.notify_overflows >= 1);
                assert_eq!(c.notify_posts, 2, "the failed append must not count as posted");
                true
            } else {
                true
            };
            win.unlock_all().unwrap();
            ctx.barrier();
            // Drain the two queued records: the overflow left them intact.
            if ctx.rank() == 1 {
                win.wait_notify(ANY_SOURCE, ANY_TAG).unwrap();
                win.wait_notify(ANY_SOURCE, ANY_TAG).unwrap();
            }
            ctx.barrier();
            r
        });
        assert!(got.iter().all(|&b| b));
    }

    #[test]
    fn window_free_drops_unconsumed_notifications() {
        let drops = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            win.lock_all().unwrap();
            if ctx.rank() == 0 {
                for tag in 1..=3u32 {
                    win.put_notify(&[9u8; 8], 1, tag as usize * 8, tag).unwrap();
                }
            }
            win.unlock_all().unwrap();
            ctx.barrier();
            if ctx.rank() == 1 {
                // Consume one (stashing tag 1), leave tag 1 + tag 3 behind.
                win.wait_notify(0, 2).unwrap();
                assert_eq!(win.notify_pending(), 2);
            }
            // The counters are fabric-global, so only one rank may bracket
            // the free — rank 0 drops nothing, making rank 1's delta exact.
            let before = ctx.fabric().counters().snapshot();
            win.free(ctx);
            ctx.fabric().counters().snapshot().since(&before).notify_dropped
        });
        // Rank 1 freed a window with tag-1 (stashed) and tag-3 (queued)
        // records outstanding.
        assert_eq!(drops[1], 2);
    }
}
