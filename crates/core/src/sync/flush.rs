//! The flush family and MPI_Win_sync (§2.3).
//!
//! "foMPI's flush implementation relies on the underlying interfaces and
//! simply issues a DMAPP remote bulk completion and an x86 mfence. All
//! flush operations share the same implementation and add only 78 CPU
//! instructions to the critical path." The paper measures
//! Pflush = 76 ns and Psync = 17 ns.

use crate::error::{FompiError, Result};
use crate::perf::overhead;
use crate::win::{AccessEpoch, Win};
use fompi_fabric::telemetry::{EventKind, NO_TARGET};
use std::sync::atomic::Ordering;

impl Win {
    fn check_passive(&self, target: Option<u32>) -> Result<()> {
        let st = self.state.borrow();
        match (&st.access, target) {
            (AccessEpoch::LockAll, _) => Ok(()),
            (AccessEpoch::Lock, Some(t)) if st.locks.contains_key(&t) => Ok(()),
            (AccessEpoch::Lock, None) => Ok(()),
            _ => Err(FompiError::InvalidEpoch("flush requires a passive-target epoch")),
        }
    }

    /// MPI_Win_flush: all outstanding operations to `target` are complete
    /// at the target when this returns.
    pub fn flush(&self, target: u32) -> Result<()> {
        self.check_passive(Some(target))?;
        // `flush_target` records the Flush telemetry event at the fabric
        // layer; scope it to this window first.
        self.trace_scope();
        self.ep.charge(overhead::flush_ns());
        self.ep.flush_target(target);
        self.ep.mfence();
        self.rc_flush(Some(target));
        Ok(())
    }

    /// MPI_Win_flush_all: remote completion at every target.
    pub fn flush_all(&self) -> Result<()> {
        self.check_passive(None)?;
        self.trace_scope();
        let t_start = self.ep.clock().now();
        self.ep.charge(overhead::flush_ns());
        self.ep.gsync();
        self.ep.mfence();
        self.rc_flush(None);
        self.ep.fabric().counters().flushes.fetch_add(1, Ordering::Relaxed);
        self.ep.trace_sync(EventKind::Flush, NO_TARGET, t_start);
        Ok(())
    }

    /// MPI_Win_flush_local: local completion only — origin buffers are
    /// reusable (our fabric copies at injection, so this is pure overhead,
    /// exactly the cheap path the paper describes). With issue-side
    /// batching armed it also retires any open burst to `target` — the
    /// doorbell write that hands the coalesced descriptor to the NIC —
    /// without waiting for remote completion.
    pub fn flush_local(&self, target: u32) -> Result<()> {
        self.check_passive(Some(target))?;
        self.trace_scope();
        let t_start = self.ep.clock().now();
        self.ep.charge(overhead::flush_ns());
        self.ep.drain_target(target);
        self.rc_flush(Some(target));
        self.ep.fabric().counters().flushes.fetch_add(1, Ordering::Relaxed);
        self.ep.trace_sync(EventKind::FlushLocal, target, t_start);
        Ok(())
    }

    /// MPI_Win_flush_local_all.
    pub fn flush_local_all(&self) -> Result<()> {
        self.check_passive(None)?;
        self.trace_scope();
        let t_start = self.ep.clock().now();
        self.ep.charge(overhead::flush_ns());
        self.ep.drain_all();
        self.rc_flush(None);
        self.ep.fabric().counters().flushes.fetch_add(1, Ordering::Relaxed);
        self.ep.trace_sync(EventKind::FlushLocal, NO_TARGET, t_start);
        Ok(())
    }

    /// MPI_Win_sync: memory barrier separating private and public window
    /// copies (a no-op data-wise in the unified model; Psync = 17 ns).
    pub fn sync(&self) {
        self.trace_scope();
        let t_start = self.ep.clock().now();
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
        self.ep.charge(self.ep.fabric().model().sync_ns);
        self.rc_acquire_own();
        self.ep.trace_sync(EventKind::WinSync, NO_TARGET, t_start);
    }
}
