//! MCS queue lock (extension; §2.3's remark: "The number of remote
//! requests while waiting can be bound by using MCS locks").
//!
//! The backoff-based exclusive lock of Figure 3 retries the remote CAS
//! while waiting — under contention that is unbounded remote traffic. The
//! classic Mellor-Crummey/Scott queue lock bounds it: a waiter enqueues
//! with **one** remote swap, links itself behind its predecessor with one
//! remote put, and then spins on a flag in its *own* memory. Release hands
//! the lock to the successor with a single remote put.
//!
//! This is a window-wide exclusive lock (an extension beyond MPI-3's
//! lock set — MPI has no exclusive lock_all). It opens an access epoch to
//! every rank while held. Queue-node state lives in the window metadata
//! (`MCS_TAIL` at the master, `MCS_FLAG`/`MCS_NEXT` per rank), so the
//! memory cost is O(1) per process.

use crate::error::{FompiError, Result};
use crate::meta::off;
use crate::win::{AccessEpoch, Win};
use fompi_fabric::AmoOp;

impl Win {
    /// Acquire the window-wide MCS lock. Exactly one remote swap plus (if
    /// contended) one remote put; all waiting is local spinning.
    pub fn mcs_lock(&self) -> Result<()> {
        {
            let st = self.state.borrow();
            if !matches!(st.access, AccessEpoch::None) {
                return Err(FompiError::InvalidEpoch("mcs_lock during open epoch"));
            }
        }
        let me = self.ep.rank();
        let my = self.meta_key(me);
        // Reset the local queue node before publishing ourselves.
        self.ep.write_sync(my, off::MCS_FLAG, 0)?;
        self.ep.write_sync(my, off::MCS_NEXT, 0)?;
        self.ep.mfence();
        let master = self.meta_key(self.shared.master);
        let (old, _) = self.ep.amo_sync(master, off::MCS_TAIL, AmoOp::Swap, me as u64 + 1, 0)?;
        if old != 0 {
            // Link behind the predecessor, then spin locally.
            let prev = (old - 1) as u32;
            self.ep.write_sync(self.meta_key(prev), off::MCS_NEXT, me as u64 + 1)?;
            let mut spins = 0u64;
            while self.ep.read_sync(my, off::MCS_FLAG)? == 0 {
                spins += 1;
                if spins > super::SPIN_LIMIT {
                    super::spin_overflow("MCS predecessor release");
                }
                std::thread::yield_now();
            }
        }
        self.state.borrow_mut().access = AccessEpoch::LockAll;
        // Racecheck: the MCS lock is a window-wide exclusive session;
        // sample it only once the hand-off (or free tail) was observed.
        self.rc_lock_acquired(None);
        Ok(())
    }

    /// Release the window-wide MCS lock: complete all operations, then
    /// hand off to the successor (or clear the tail).
    pub fn mcs_unlock(&self) -> Result<()> {
        {
            let st = self.state.borrow();
            if !matches!(st.access, AccessEpoch::LockAll) {
                return Err(FompiError::InvalidEpoch("mcs_unlock without mcs_lock"));
            }
        }
        self.ep.mfence();
        self.ep.gsync();
        // Racecheck release edge: before the tail CAS / successor flag
        // becomes visible, so the next holder samples the advanced epoch.
        self.rc_unlock(None);
        let me = self.ep.rank();
        let my = self.meta_key(me);
        let master = self.meta_key(self.shared.master);
        let mut next = self.ep.read_sync(my, off::MCS_NEXT)?;
        if next == 0 {
            // Nobody visible behind us: try to clear the tail.
            let (old, _) = self.ep.amo_sync(master, off::MCS_TAIL, AmoOp::Cas, 0, me as u64 + 1)?;
            if old == me as u64 + 1 {
                self.state.borrow_mut().access = AccessEpoch::None;
                return Ok(());
            }
            // A successor is mid-enqueue: wait for its link to appear.
            let mut spins = 0u64;
            loop {
                next = self.ep.read_sync(my, off::MCS_NEXT)?;
                if next != 0 {
                    break;
                }
                spins += 1;
                if spins > super::SPIN_LIMIT {
                    super::spin_overflow("MCS successor link");
                }
                std::thread::yield_now();
            }
        }
        let succ = (next - 1) as u32;
        self.ep.write_sync(self.meta_key(succ), off::MCS_FLAG, 1)?;
        self.state.borrow_mut().access = AccessEpoch::None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::win::{LockType, Win};
    use fompi_fabric::CostModel;
    use fompi_runtime::Universe;

    #[test]
    fn mcs_mutual_exclusion_counter() {
        let p = 8;
        let iters = 25;
        let got = Universe::new(p).node_size(4).model(CostModel::free()).run(move |ctx| {
            let win = Win::allocate(ctx, 16, 1).unwrap();
            for _ in 0..iters {
                win.mcs_lock().unwrap();
                let mut cur = [0u8; 8];
                win.get(&mut cur, 0, 0).unwrap();
                win.flush(0).unwrap();
                let v = u64::from_le_bytes(cur) + 1;
                win.put(&v.to_le_bytes(), 0, 0).unwrap();
                win.mcs_unlock().unwrap();
            }
            ctx.barrier();
            let mut b = [0u8; 8];
            win.read_local(0, &mut b);
            u64::from_le_bytes(b)
        });
        assert_eq!(got[0], (p * iters) as u64);
    }

    #[test]
    fn mcs_uncontended_is_two_remote_ops() {
        let (res, _fabric) = Universe::new(2).node_size(1).launch(|ctx| {
            let win = Win::allocate(ctx, 16, 1).unwrap();
            let mut ops = 0;
            ctx.barrier();
            if ctx.rank() == 1 {
                let before = ctx.fabric().counters().snapshot();
                win.mcs_lock().unwrap();
                win.mcs_unlock().unwrap();
                let after = ctx.fabric().counters().snapshot();
                ops = after.since(&before).total_ops();
            }
            ctx.barrier();
            ops
        });
        // lock: 2 local node resets + 1 swap; unlock: 1 local read + 1 CAS.
        // Bounded small constant either way.
        assert!(res[1] <= 8, "uncontended MCS cost: {} ops", res[1]);
    }

    /// The paper's point: while *waiting*, MCS spins locally whereas the
    /// backoff lock keeps issuing remote AMOs.
    #[test]
    fn mcs_waiting_issues_fewer_remote_ops_than_backoff() {
        let contended_ops = |mcs: bool| {
            let (_res, fabric) = Universe::new(6).node_size(1).launch(move |ctx| {
                let win = Win::allocate(ctx, 16, 1).unwrap();
                ctx.barrier();
                for _ in 0..10 {
                    if mcs {
                        win.mcs_lock().unwrap();
                        win.mcs_unlock().unwrap();
                    } else {
                        win.lock(LockType::Exclusive, 0).unwrap();
                        win.unlock(0).unwrap();
                    }
                }
                ctx.barrier();
            });
            fabric.counters().snapshot().amos
        };
        let mcs = contended_ops(true);
        let backoff = contended_ops(false);
        assert!(mcs < backoff, "MCS should bound waiting traffic: {mcs} AMOs vs backoff {backoff}");
    }
}
