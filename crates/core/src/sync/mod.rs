//! Synchronisation protocols (§2.3): fence, general active target (PSCW),
//! passive-target locks, and the flush family.

pub mod fence;
pub mod flush;
pub mod listops;
pub mod lock;
pub mod mcs;
pub mod notify;
pub mod pscw;

use fompi_fabric::Endpoint;

/// Exponential backoff for remote retry loops ("all waits/retries can be
/// performed with exponential back off to avoid congestion", §2.3).
/// Charges virtual time for the wait and yields the OS thread so peer rank
/// threads can make real progress.
pub(crate) fn backoff_spin(ep: &Endpoint, attempt: u64) {
    let exp = attempt.min(8);
    let ns = 100.0 * (1u64 << exp) as f64;
    ep.charge(ns.min(25_000.0));
    std::thread::yield_now();
}

/// Bound for protocol spin loops: generous enough for any legal schedule,
/// small enough that a deadlocked test fails fast instead of hanging CI.
pub(crate) const SPIN_LIMIT: u64 = 200_000_000;

/// Panic with a protocol diagnosis when a spin loop exceeds [`SPIN_LIMIT`]
/// — this indicates an illegal program (e.g. cyclic PSCW matching, which
/// the MPI specification forbids).
#[cold]
pub(crate) fn spin_overflow(what: &str) -> ! {
    panic!(
        "foMPI protocol spin limit exceeded while waiting for {what}: \
            the program is likely deadlocked (illegal matching or lock cycle)"
    );
}
