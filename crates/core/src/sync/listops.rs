//! Shared one-sided intrusive-list operations (Figure 2c generalised).
//!
//! The PSCW matching list, the dynamic-window registered-readers list and
//! the invalidation mailbox all use the same machinery: a per-rank pool of
//! 16-byte elements managed by a remote Treiber free list, plus any number
//! of tagged list heads that elements can be pushed onto with one-sided
//! CAS sequences. Heads carry an ABA tag in the high 32 bits.

use crate::error::{FompiError, Result};
use crate::meta::{self, off};
use crate::win::Win;
use fompi_fabric::AmoOp;

impl Win {
    /// Acquire a free pool element at `target` (Figure 2c: get head → get
    /// element's next → CAS head). Spins while the pool is exhausted.
    pub(crate) fn list_acquire_slot(&self, target: u32) -> Result<u32> {
        let mkey = self.meta_key(target);
        let cfg = &self.shared.cfg;
        let mut spins = 0u64;
        loop {
            let h = self.ep.read_sync(mkey, off::FREE_HEAD)?;
            let (tag, idx) = meta::unpack_head(h);
            if idx == meta::NIL {
                spins += 1;
                if spins > cfg.pool_retry_limit {
                    return Err(FompiError::PoolExhausted { target });
                }
                super::backoff_spin(&self.ep, spins.min(10));
                continue;
            }
            let elem = self.ep.read_sync(mkey, cfg.pool_off(idx))?;
            let (_, next) = meta::unpack_elem(elem);
            let (old, _) = self.ep.amo_sync(
                mkey,
                off::FREE_HEAD,
                AmoOp::Cas,
                meta::pack_head(tag.wrapping_add(1), next),
                h,
            )?;
            if old == h {
                return Ok(idx);
            }
            spins += 1;
            super::backoff_spin(&self.ep, spins.min(6));
        }
    }

    /// Push pool element `idx` carrying `origin` onto `target`'s list at
    /// `head_off`.
    pub(crate) fn list_push(
        &self,
        target: u32,
        head_off: usize,
        idx: u32,
        origin: u32,
    ) -> Result<()> {
        let mkey = self.meta_key(target);
        let cfg = &self.shared.cfg;
        let mut spins = 0u64;
        loop {
            let mh = self.ep.read_sync(mkey, head_off)?;
            let (tag, head_idx) = meta::unpack_head(mh);
            self.ep.write_sync(mkey, cfg.pool_off(idx), meta::pack_elem(origin, head_idx))?;
            let (old, _) = self.ep.amo_sync(
                mkey,
                head_off,
                AmoOp::Cas,
                meta::pack_head(tag.wrapping_add(1), idx),
                mh,
            )?;
            if old == mh {
                return Ok(());
            }
            spins += 1;
            super::backoff_spin(&self.ep, spins.min(6));
        }
    }

    /// Return pool element `idx` to the *local* free list.
    pub(crate) fn list_free_local(&self, idx: u32) -> Result<()> {
        let mkey = self.meta_key(self.ep.rank());
        let cfg = &self.shared.cfg;
        let mut spins = 0u64;
        loop {
            let fh = self.ep.read_sync(mkey, off::FREE_HEAD)?;
            let (tag, head) = meta::unpack_head(fh);
            self.ep.write_sync(mkey, cfg.pool_off(idx), meta::pack_elem(0, head))?;
            let (old, _) = self.ep.amo_sync(
                mkey,
                off::FREE_HEAD,
                AmoOp::Cas,
                meta::pack_head(tag.wrapping_add(1), idx),
                fh,
            )?;
            if old == fh {
                return Ok(());
            }
            spins += 1;
            super::backoff_spin(&self.ep, spins.min(6));
        }
    }

    /// Atomically take the whole local list at `head_off`, returning the
    /// origins of its elements (elements are recycled). Concurrent pushers
    /// retry against the tag bump, so no element is lost.
    pub(crate) fn list_drain_local(&self, head_off: usize) -> Result<Vec<u32>> {
        let me = self.ep.rank();
        let mkey = self.meta_key(me);
        let cfg = &self.shared.cfg;
        let mut spins = 0u64;
        loop {
            let h = self.ep.read_sync(mkey, head_off)?;
            let (tag, idx) = meta::unpack_head(h);
            if idx == meta::NIL {
                return Ok(Vec::new());
            }
            let (old, _) = self.ep.amo_sync(
                mkey,
                head_off,
                AmoOp::Cas,
                meta::pack_head(tag.wrapping_add(1), meta::NIL),
                h,
            )?;
            if old == h {
                // The chain is now private: walk and recycle.
                let mut origins = Vec::new();
                let mut cur = idx;
                while cur != meta::NIL {
                    let ev = self.ep.read_sync(mkey, cfg.pool_off(cur))?;
                    let (origin, next) = meta::unpack_elem(ev);
                    origins.push(origin);
                    self.list_free_local(cur)?;
                    cur = next;
                }
                return Ok(origins);
            }
            spins += 1;
            super::backoff_spin(&self.ep, spins.min(6));
        }
    }
}
