//! General Active Target Synchronisation (Post/Start/Complete/Wait).
//!
//! The paper's scalable matching protocol (§2.3, Figure 2): a poster
//! announces itself by acquiring a free element in the *target's* matching
//! list through a purely one-sided free-storage-management protocol
//! (Figure 2c) and pushing it onto the target's match list; a starter spins
//! on its *local* list until every member of its access group is present;
//! `complete` commits all RMA operations and bumps a remote completion
//! counter at each exposure peer; `wait` spins locally on that counter.
//!
//! Message complexity: O(k) remote AMOs for post and complete, **zero**
//! remote operations for start and wait — the property Figure 6c measures
//! (flat PSCW latency in p for a ring, k = 2).
//!
//! Both remote lists are Treiber stacks whose head words carry an ABA tag
//! in the high 32 bits; elements live in a fixed pool sized by
//! `WinConfig::pscw_pool`, giving the O(k) memory bound.

use crate::error::{FompiError, Result};
use crate::meta::{self, off};
use crate::win::{AccessEpoch, ExposureEpoch, Win};
use fompi_fabric::telemetry::{EventKind, NO_TARGET};
use fompi_fabric::AmoOp;
use fompi_runtime::Group;
use std::collections::HashSet;

impl Win {
    /// MPI_Win_post: open an exposure epoch for `group`. Announces this
    /// rank in every group member's matching list; never blocks on the
    /// peers' progress (only on pool space).
    pub fn post(&self, group: &Group) -> Result<()> {
        {
            let st = self.state.borrow();
            if !matches!(st.exposure, ExposureEpoch::None) {
                return Err(FompiError::InvalidEpoch("post during open exposure epoch"));
            }
        }
        self.trace_scope();
        let t_start = self.ep.clock().now();
        // Racecheck acquire edge for the new exposure epoch — bumped
        // *before* the announcement unblocks any starter, so their
        // accesses land in the new generation.
        self.rc_acquire_own();
        let me = self.ep.rank();
        if self.shared.cfg.pscw_fast {
            // Fast path: one FAA ticket + one put per neighbour. The ring
            // cursor lives in the MATCH_HEAD word; slots hold origin+1 (0 =
            // free). Bounded-outstanding assumption: ≤ pscw_pool posts in
            // flight per target (the paper's k ∈ O(log p)).
            let pool = self.shared.cfg.pscw_pool as u64;
            for target in group.iter() {
                let mkey = self.meta_key(target);
                let (ticket, _) = self.ep.amo_sync(mkey, off::MATCH_HEAD, AmoOp::Add, 1, 0)?;
                let slot = (ticket % pool) as u32;
                let soff = self.shared.cfg.pool_off(slot);
                // Wait for the slot to be free (only when lapped).
                let mut spins = 0u64;
                while self.ep.read_sync(mkey, soff)? != 0 {
                    spins += 1;
                    if spins > self.shared.cfg.pool_retry_limit {
                        return Err(FompiError::PoolExhausted { target });
                    }
                    super::backoff_spin(&self.ep, spins.min(10));
                }
                self.ep.write_sync(mkey, soff, me as u64 + 1)?;
            }
        } else {
            for target in group.iter() {
                let idx = self.list_acquire_slot(target)?;
                self.list_push(target, off::MATCH_HEAD, idx, me)?;
            }
        }
        self.state.borrow_mut().exposure = ExposureEpoch::Pscw(group.clone());
        self.ep.trace_sync(EventKind::Post, NO_TARGET, t_start);
        Ok(())
    }

    /// MPI_Win_start: open an access epoch toward `group`. Blocks until
    /// every member's post has arrived in the local matching list
    /// (§2.5 (b)). Purely local spinning — zero remote operations.
    pub fn start(&self, group: &Group) -> Result<()> {
        {
            let st = self.state.borrow();
            if !matches!(st.access, AccessEpoch::None) {
                return Err(FompiError::InvalidEpoch("start during open access epoch"));
            }
        }
        self.trace_scope();
        let t_start = self.ep.clock().now();
        let mut needed: HashSet<u32> = group.iter().collect();
        let mut spins = 0u64;
        while !needed.is_empty() {
            if self.shared.cfg.pscw_fast {
                self.reap_matches_fast(&mut needed)?;
            } else {
                self.reap_matches(&mut needed)?;
            }
            if !needed.is_empty() {
                spins += 1;
                if spins > super::SPIN_LIMIT {
                    super::spin_overflow("matching MPI_Win_post calls");
                }
                std::thread::yield_now();
            }
        }
        self.state.borrow_mut().access = AccessEpoch::Pscw(group.clone());
        self.ep.trace_sync(EventKind::Start, NO_TARGET, t_start);
        Ok(())
    }

    /// MPI_Win_complete: close the access epoch. Guarantees remote
    /// visibility of all issued RMA operations, then increments the
    /// completion counter at every group member (one remote AMO each).
    pub fn complete(&self) -> Result<()> {
        let group = {
            let st = self.state.borrow();
            match &st.access {
                AccessEpoch::Pscw(g) => g.clone(),
                _ => return Err(FompiError::InvalidEpoch("complete without start")),
            }
        };
        self.trace_scope();
        let t_start = self.ep.clock().now();
        // `gsync` retires open injection bursts before joining the
        // completion horizon, so batched access epochs close correctly.
        self.ep.mfence();
        self.ep.gsync();
        for target in group.iter() {
            // Racecheck: complete orders this origin's own later accesses
            // (a phase edge only — bumping the generation here would mask
            // races between two origins sharing one exposure epoch).
            self.rc_flush(Some(target));
            // Non-fetching FAA: one injection per neighbour, latencies
            // overlapped — Pcomplete = 350 ns · k (§3.2).
            self.ep.amo_sync_release(self.meta_key(target), off::COMPLETION, AmoOp::Add, 1)?;
        }
        self.state.borrow_mut().access = AccessEpoch::None;
        self.ep.trace_sync(EventKind::Complete, NO_TARGET, t_start);
        Ok(())
    }

    /// MPI_Win_wait: close the exposure epoch; blocks until every member
    /// of the exposure group has called complete (§2.5 (c)). Local
    /// spinning on the completion counter — zero remote operations.
    pub fn wait(&self) -> Result<()> {
        let group = {
            let st = self.state.borrow();
            match &st.exposure {
                ExposureEpoch::Pscw(g) => g.clone(),
                _ => return Err(FompiError::InvalidEpoch("wait without post")),
            }
        };
        self.trace_scope();
        let t_start = self.ep.clock().now();
        let mkey = self.meta_key(self.ep.rank());
        let want = group.len() as u64;
        let mut spins = 0u64;
        loop {
            let v = self.ep.read_sync(mkey, off::COMPLETION)?;
            if v >= want {
                break;
            }
            spins += 1;
            if spins > super::SPIN_LIMIT {
                super::spin_overflow("matching MPI_Win_complete calls");
            }
            std::thread::yield_now();
        }
        // Consume the counter (epochs may repeat).
        self.ep.amo_sync(
            mkey,
            off::COMPLETION,
            AmoOp::Add,
            (want as i64).wrapping_neg() as u64,
            0,
        )?;
        self.state.borrow_mut().exposure = ExposureEpoch::None;
        // Racecheck acquire edge: every complete of this epoch has been
        // observed, so local reads that follow are ordered.
        self.rc_acquire_own();
        self.ep.trace_sync(EventKind::WaitEpoch, NO_TARGET, t_start);
        Ok(())
    }

    /// MPI_Win_test: nonblocking [`Win::wait`]. Returns `true` (and closes
    /// the exposure epoch) if all completes arrived.
    pub fn test(&self) -> Result<bool> {
        let group = {
            let st = self.state.borrow();
            match &st.exposure {
                ExposureEpoch::Pscw(g) => g.clone(),
                _ => return Err(FompiError::InvalidEpoch("test without post")),
            }
        };
        self.trace_scope();
        let t_start = self.ep.clock().now();
        let mkey = self.meta_key(self.ep.rank());
        let want = group.len() as u64;
        if self.ep.read_sync(mkey, off::COMPLETION)? < want {
            return Ok(false);
        }
        self.ep.amo_sync(
            mkey,
            off::COMPLETION,
            AmoOp::Add,
            (want as i64).wrapping_neg() as u64,
            0,
        )?;
        self.state.borrow_mut().exposure = ExposureEpoch::None;
        self.rc_acquire_own();
        self.ep.trace_sync(EventKind::WaitEpoch, NO_TARGET, t_start);
        Ok(true)
    }

    // ---------------------------------------------------- protocol pieces

    /// Fast-path scan: the pool is a slot array; consume announcements by
    /// zeroing the slot (purely local operations).
    fn reap_matches_fast(&self, needed: &mut HashSet<u32>) -> Result<()> {
        let me = self.ep.rank();
        let mkey = self.meta_key(me);
        for slot in 0..self.shared.cfg.pscw_pool as u32 {
            if needed.is_empty() {
                break;
            }
            let soff = self.shared.cfg.pool_off(slot);
            let v = self.ep.read_sync(mkey, soff)?;
            if v != 0 {
                let origin = (v - 1) as u32;
                if needed.remove(&origin) {
                    self.ep.write_sync(mkey, soff, 0)?;
                }
            }
        }
        Ok(())
    }

    /// Scan the local match list, unlinking and recycling every element
    /// whose origin is still `needed`. Only the owner unlinks, so interior
    /// updates are safe; head removal races only with new pushes and is
    /// resolved by CAS.
    fn reap_matches(&self, needed: &mut HashSet<u32>) -> Result<()> {
        let me = self.ep.rank();
        let mkey = self.meta_key(me);
        let cfg = &self.shared.cfg;
        'restart: loop {
            let mh = self.ep.read_sync(mkey, off::MATCH_HEAD)?;
            let (tag, head) = meta::unpack_head(mh);
            let mut prev: Option<u32> = None;
            let mut cur = head;
            while cur != meta::NIL {
                let ev = self.ep.read_sync(mkey, cfg.pool_off(cur))?;
                let (origin, next) = meta::unpack_elem(ev);
                if needed.contains(&origin) {
                    match prev {
                        Some(p) => {
                            // Interior unlink: only we modify next links.
                            let pv = self.ep.read_sync(mkey, cfg.pool_off(p))?;
                            let (porigin, _) = meta::unpack_elem(pv);
                            self.ep.write_sync(
                                mkey,
                                cfg.pool_off(p),
                                meta::pack_elem(porigin, next),
                            )?;
                            needed.remove(&origin);
                            self.list_free_local(cur)?;
                            cur = next;
                        }
                        None => {
                            // Head unlink: CAS against concurrent pushes.
                            let (old, _) = self.ep.amo_sync(
                                mkey,
                                off::MATCH_HEAD,
                                AmoOp::Cas,
                                meta::pack_head(tag.wrapping_add(1), next),
                                mh,
                            )?;
                            if old == mh {
                                needed.remove(&origin);
                                self.list_free_local(cur)?;
                            }
                            continue 'restart;
                        }
                    }
                } else {
                    prev = Some(cur);
                    cur = next;
                }
            }
            return Ok(());
        }
    }
}
