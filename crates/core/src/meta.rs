//! Window metadata segment layout.
//!
//! Every rank of a window owns, besides the user-visible data segment, a
//! small *meta* segment holding the protocol state other ranks manipulate
//! with one-sided operations:
//!
//! ```text
//! offset  contents (each sync var = 16 B: [u64 value][u64 stamp])
//! ------  ---------------------------------------------------------------
//!   0     completion counter         (PSCW wait — Figure 2b)
//!  16     matching-list head         (tag<<32 | idx, Figure 2b/2c)
//!  32     free-list head             (tag<<32 | idx, Figure 2c)
//!  48     accumulate lock            (lock-get-compute-put fallback §2.4)
//!  64     local reader-writer lock   (bit 63 writer, bits 0..62 readers §2.3)
//!  80     global lock                (hi32 = exclusive count, lo32 = lock_all
//!                                     count; only used at the master rank)
//!  96     dynamic-window id counter  (cache invalidation §2.2)
//! 112     dynamic region count
//! 128     registered-readers head    (notify protocol, §2.2 optimisation)
//! 144     invalidation-list head     (notify protocol)
//! 160     MCS queue tail             (master only; §2.3's MCS remark)
//! 176     MCS granted flag           (local spin target)
//! 192     MCS successor link
//! 208     notification counters      (notify_slots × 16 B, foMPI-NA ext.)
//! ...     dynamic region table       (max_dyn_regions × 24 B: addr,size,key)
//! table_end  PSCW matching pool      (pscw_pool × 16 B sync vars)
//! ```
//!
//! The pool element value packs `origin<<32 | next_idx`; index `NIL`
//! (0xFFFF_FFFF) terminates lists. List heads pack an ABA tag in the high
//! half, bumped on every CAS, so the remote Treiber stacks of Figure 2c are
//! safe against reuse.

/// Byte offsets of the fixed sync variables.
pub mod off {
    /// PSCW completion counter.
    pub const COMPLETION: usize = 0;
    /// Matching-list head.
    pub const MATCH_HEAD: usize = 16;
    /// Free-list head.
    pub const FREE_HEAD: usize = 32;
    /// Accumulate fallback lock.
    pub const ACC_LOCK: usize = 48;
    /// Local reader-writer lock word.
    pub const LOCAL_LOCK: usize = 64;
    /// Global lock word (master rank only).
    pub const GLOBAL_LOCK: usize = 80;
    /// Dynamic-window id counter.
    pub const DYN_ID: usize = 96;
    /// Dynamic-window region count.
    pub const DYN_COUNT: usize = 112;
    /// Head of the registered-readers list (dynamic-window notify
    /// protocol: the peers holding a cached copy of my region table, §2.2).
    pub const READERS_HEAD: usize = 128;
    /// Head of the invalidation list (targets whose cached tables I must
    /// drop before my next access).
    pub const INVAL_HEAD: usize = 144;
    /// MCS lock: queue tail (master rank only).
    pub const MCS_TAIL: usize = 160;
    /// MCS lock: my queue node's granted flag.
    pub const MCS_FLAG: usize = 176;
    /// MCS lock: my queue node's successor link.
    pub const MCS_NEXT: usize = 192;
    /// Start of the notified-access counters (notify_slots × 16 B), the
    /// foMPI-NA extension: put + remote notification in one call.
    pub const NOTIFY_BASE: usize = 208;
}

/// Bytes per dynamic region table entry: `addr: u64, size: u64, key_id: u64`.
pub const DYN_ENTRY_BYTES: usize = 24;

/// Bytes per matching-pool element (one sync var).
pub const POOL_ELEM_BYTES: usize = 16;

/// Null index for intrusive lists.
pub const NIL: u32 = u32::MAX;

/// Writer bit of the local reader-writer lock (§2.3: "the highest order bit
/// of the lock variable indicates a write access").
pub const WRITER_BIT: u64 = 1 << 63;

/// Window tuning knobs.
#[derive(Debug, Clone)]
pub struct WinConfig {
    /// PSCW matching-pool slots per rank. Bounds the number of posts that
    /// can be simultaneously outstanding toward one rank; the paper assumes
    /// `k ∈ O(log p)` neighbours (§2.3).
    pub pscw_pool: usize,
    /// Maximum simultaneously attached dynamic regions per rank.
    pub max_dyn_regions: usize,
    /// Route eligible accumulates through hardware AMOs (true = paper's
    /// DMAPP-accelerated path). Disable to force the lock fallback for all
    /// ops — needed when mixing ops that must stay mutually atomic.
    pub hw_amo: bool,
    /// Dynamic windows: use the notify-based cache-invalidation protocol
    /// (§2.2's optimised variant — readers register on the target and are
    /// told to invalidate on detach) instead of the id-counter check per
    /// access. Better communication latency, costlier detach.
    pub dyn_notify: bool,
    /// Retries before a pool acquisition gives up with
    /// [`crate::FompiError::PoolExhausted`] — the detector for programs
    /// whose PSCW fan-in exceeds `pscw_pool` in a dependency cycle.
    pub pool_retry_limit: u64,
    /// Signal counters per rank for the slot-based notified-access
    /// extension ([`crate::win::Win::put_signal`]).
    pub notify_slots: usize,
    /// PSCW fast path: announce posts through an FAA ring cursor over the
    /// slot pool (one non-fetching-AMO-priced announcement per neighbour,
    /// matching the paper's Ppost = 350 ns·k) instead of the Figure-2c
    /// CAS free-list/match-list pair. Requires that at most `pscw_pool`
    /// announcements are outstanding per target at any time.
    pub pscw_fast: bool,
}

impl Default for WinConfig {
    fn default() -> Self {
        Self {
            pscw_pool: 128,
            max_dyn_regions: 64,
            hw_amo: true,
            dyn_notify: false,
            pool_retry_limit: 1_000_000,
            notify_slots: 16,
            pscw_fast: false,
        }
    }
}

impl WinConfig {
    /// Byte offset of notification counter `slot`.
    pub fn notify_off(&self, slot: usize) -> usize {
        debug_assert!(slot < self.notify_slots);
        off::NOTIFY_BASE + slot * POOL_ELEM_BYTES
    }

    /// Start of the dynamic region table.
    pub fn dyn_table_off(&self) -> usize {
        off::NOTIFY_BASE + self.notify_slots * POOL_ELEM_BYTES
    }

    /// Total bytes of the metadata segment under this configuration.
    pub fn meta_bytes(&self) -> usize {
        self.dyn_table_off()
            + self.max_dyn_regions * DYN_ENTRY_BYTES
            + self.pscw_pool * POOL_ELEM_BYTES
    }

    /// Byte offset of pool element `idx`.
    pub fn pool_off(&self, idx: u32) -> usize {
        debug_assert!((idx as usize) < self.pscw_pool);
        self.dyn_table_off()
            + self.max_dyn_regions * DYN_ENTRY_BYTES
            + idx as usize * POOL_ELEM_BYTES
    }

    /// Byte offset of dynamic region entry `i`.
    pub fn dyn_entry_off(&self, i: usize) -> usize {
        debug_assert!(i < self.max_dyn_regions);
        self.dyn_table_off() + i * DYN_ENTRY_BYTES
    }
}

/// Pack a list head: `tag<<32 | idx`.
pub fn pack_head(tag: u32, idx: u32) -> u64 {
    (tag as u64) << 32 | idx as u64
}

/// Unpack a list head into `(tag, idx)`.
pub fn unpack_head(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Pack a pool element: `origin<<32 | next`.
pub fn pack_elem(origin: u32, next: u32) -> u64 {
    (origin as u64) << 32 | next as u64
}

/// Unpack a pool element into `(origin, next)`.
pub fn unpack_elem(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Split the global lock word into `(exclusive_count, lock_all_count)`.
pub fn split_global(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Increment value for the exclusive half of the global lock.
pub const GLOBAL_EXCL_ONE: u64 = 1 << 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_aligned_and_disjoint() {
        let cfg = WinConfig::default();
        for o in [
            off::COMPLETION,
            off::MATCH_HEAD,
            off::FREE_HEAD,
            off::ACC_LOCK,
            off::LOCAL_LOCK,
            off::GLOBAL_LOCK,
            off::DYN_ID,
            off::DYN_COUNT,
            off::READERS_HEAD,
            off::INVAL_HEAD,
            off::MCS_TAIL,
            off::MCS_FLAG,
            off::MCS_NEXT,
            off::NOTIFY_BASE,
            cfg.dyn_table_off(),
            cfg.notify_off(0),
        ] {
            assert_eq!(o % 8, 0);
        }
        assert_eq!(cfg.pool_off(0) % 8, 0);
        assert!(cfg.pool_off(cfg.pscw_pool as u32 - 1) + POOL_ELEM_BYTES <= cfg.meta_bytes());
        assert!(cfg.dyn_entry_off(cfg.max_dyn_regions - 1) + DYN_ENTRY_BYTES <= cfg.pool_off(0));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let (t, i) = unpack_head(pack_head(7, 42));
        assert_eq!((t, i), (7, 42));
        let (o, n) = unpack_elem(pack_elem(3, NIL));
        assert_eq!((o, n), (3, NIL));
        let (e, s) = split_global(GLOBAL_EXCL_ONE * 2 + 5);
        assert_eq!((e, s), (2, 5));
    }

    #[test]
    fn meta_is_small_and_constant_in_p() {
        // O(1) metadata per rank — the paper's scalability requirement.
        let cfg = WinConfig::default();
        assert!(cfg.meta_bytes() < 8192);
    }
}
