//! MPI reduction operations for accumulate calls.
//!
//! DMAPP accelerates "many common integer operations on 8-byte data"
//! (§2.1/§2.4): for those we issue per-element hardware AMOs. Everything
//! else takes foMPI's lock-get-compute-put fallback, which is why the paper
//! measures `Pacc,min` with a 7.3 µs base but *better bandwidth* than the
//! AMO stream (Figure 6a).

use fompi_fabric::AmoOp;

/// The MPI_Op set supported by accumulate/get_accumulate/fetch_and_op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpiOp {
    /// MPI_SUM
    Sum,
    /// MPI_PROD
    Prod,
    /// MPI_MIN
    Min,
    /// MPI_MAX
    Max,
    /// MPI_BAND
    Band,
    /// MPI_BOR
    Bor,
    /// MPI_BXOR
    Bxor,
    /// MPI_REPLACE (put with accumulate atomicity)
    Replace,
    /// MPI_NO_OP (pure atomic read in get_accumulate/fetch_and_op)
    NoOp,
}

/// Element types accumulate understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumKind {
    /// 64-bit signed integer.
    I64,
    /// 64-bit unsigned integer.
    U64,
    /// 64-bit float.
    F64,
    /// 32-bit signed integer.
    I32,
    /// 32-bit float.
    F32,
    /// Raw byte.
    U8,
}

impl NumKind {
    /// Element size in bytes.
    pub fn size(self) -> usize {
        match self {
            NumKind::I64 | NumKind::U64 | NumKind::F64 => 8,
            NumKind::I32 | NumKind::F32 => 4,
            NumKind::U8 => 1,
        }
    }
}

impl MpiOp {
    /// The hardware AMO this op maps to for 8-byte integer data, if DMAPP
    /// accelerates it. `Min`/`Max`/`Prod` and all floating point fall back
    /// to the software protocol, matching the paper.
    pub fn hw_amo(self, kind: NumKind) -> Option<AmoOp> {
        if kind.size() != 8 || matches!(kind, NumKind::F64) {
            return None;
        }
        match self {
            MpiOp::Sum => Some(AmoOp::Add),
            MpiOp::Band => Some(AmoOp::And),
            MpiOp::Bor => Some(AmoOp::Or),
            MpiOp::Bxor => Some(AmoOp::Xor),
            MpiOp::Replace => Some(AmoOp::Swap),
            MpiOp::NoOp => Some(AmoOp::Fetch),
            MpiOp::Min | MpiOp::Max | MpiOp::Prod => None,
        }
    }

    /// Combine one element: `target := target ⊕ origin`, returning the new
    /// target value. Operands are the raw little-endian bytes of the
    /// element, interpreted per `kind`.
    pub fn apply(self, kind: NumKind, target: &[u8], origin: &[u8]) -> Vec<u8> {
        debug_assert_eq!(target.len(), kind.size());
        debug_assert_eq!(origin.len(), kind.size());
        macro_rules! num {
            ($t:ty) => {{
                let a = <$t>::from_le_bytes(target.try_into().unwrap());
                let b = <$t>::from_le_bytes(origin.try_into().unwrap());
                let r: $t = match self {
                    MpiOp::Sum => a.wrapping_add_compat(b),
                    MpiOp::Prod => a.wrapping_mul_compat(b),
                    MpiOp::Min => {
                        if b < a {
                            b
                        } else {
                            a
                        }
                    }
                    MpiOp::Max => {
                        if b > a {
                            b
                        } else {
                            a
                        }
                    }
                    MpiOp::Band | MpiOp::Bor | MpiOp::Bxor => {
                        unreachable!("bitwise ops handled on integer path")
                    }
                    MpiOp::Replace => b,
                    MpiOp::NoOp => a,
                };
                r.to_le_bytes().to_vec()
            }};
        }
        macro_rules! int {
            ($t:ty) => {{
                let a = <$t>::from_le_bytes(target.try_into().unwrap());
                let b = <$t>::from_le_bytes(origin.try_into().unwrap());
                let r: $t = match self {
                    MpiOp::Sum => a.wrapping_add(b),
                    MpiOp::Prod => a.wrapping_mul(b),
                    MpiOp::Min => a.min(b),
                    MpiOp::Max => a.max(b),
                    MpiOp::Band => a & b,
                    MpiOp::Bor => a | b,
                    MpiOp::Bxor => a ^ b,
                    MpiOp::Replace => b,
                    MpiOp::NoOp => a,
                };
                r.to_le_bytes().to_vec()
            }};
        }
        match kind {
            NumKind::I64 => int!(i64),
            NumKind::U64 => int!(u64),
            NumKind::I32 => int!(i32),
            NumKind::U8 => int!(u8),
            NumKind::F64 => num!(f64),
            NumKind::F32 => num!(f32),
        }
    }
}

/// Float helpers so the `num!` macro can use one name for add/mul.
trait WrappingCompat {
    fn wrapping_add_compat(self, o: Self) -> Self;
    fn wrapping_mul_compat(self, o: Self) -> Self;
}
impl WrappingCompat for f64 {
    fn wrapping_add_compat(self, o: Self) -> Self {
        self + o
    }
    fn wrapping_mul_compat(self, o: Self) -> Self {
        self * o
    }
}
impl WrappingCompat for f32 {
    fn wrapping_add_compat(self, o: Self) -> Self {
        self + o
    }
    fn wrapping_mul_compat(self, o: Self) -> Self {
        self * o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hw_acceleration_set_matches_paper() {
        // SUM on 8-byte ints is accelerated; MIN is not (Figure 6a).
        assert_eq!(MpiOp::Sum.hw_amo(NumKind::I64), Some(AmoOp::Add));
        assert_eq!(MpiOp::Sum.hw_amo(NumKind::U64), Some(AmoOp::Add));
        assert_eq!(MpiOp::Min.hw_amo(NumKind::I64), None);
        assert_eq!(MpiOp::Sum.hw_amo(NumKind::F64), None);
        assert_eq!(MpiOp::Sum.hw_amo(NumKind::I32), None);
        assert_eq!(MpiOp::Replace.hw_amo(NumKind::U64), Some(AmoOp::Swap));
    }

    #[test]
    fn apply_i64() {
        let t = 10i64.to_le_bytes();
        let o = 3i64.to_le_bytes();
        assert_eq!(MpiOp::Sum.apply(NumKind::I64, &t, &o), 13i64.to_le_bytes());
        assert_eq!(MpiOp::Min.apply(NumKind::I64, &t, &o), 3i64.to_le_bytes());
        assert_eq!(MpiOp::Max.apply(NumKind::I64, &t, &o), 10i64.to_le_bytes());
        assert_eq!(MpiOp::Prod.apply(NumKind::I64, &t, &o), 30i64.to_le_bytes());
        assert_eq!(MpiOp::Replace.apply(NumKind::I64, &t, &o), 3i64.to_le_bytes());
        assert_eq!(MpiOp::NoOp.apply(NumKind::I64, &t, &o), 10i64.to_le_bytes());
    }

    #[test]
    fn apply_f64_and_f32() {
        let t = 1.5f64.to_le_bytes();
        let o = 2.25f64.to_le_bytes();
        assert_eq!(MpiOp::Sum.apply(NumKind::F64, &t, &o), 3.75f64.to_le_bytes());
        assert_eq!(MpiOp::Min.apply(NumKind::F64, &t, &o), 1.5f64.to_le_bytes());
        let t = 2.0f32.to_le_bytes();
        let o = 4.0f32.to_le_bytes();
        assert_eq!(MpiOp::Prod.apply(NumKind::F32, &t, &o), 8.0f32.to_le_bytes());
    }

    #[test]
    fn apply_bitwise_u64() {
        let t = 0b1100u64.to_le_bytes();
        let o = 0b1010u64.to_le_bytes();
        assert_eq!(MpiOp::Band.apply(NumKind::U64, &t, &o), 0b1000u64.to_le_bytes());
        assert_eq!(MpiOp::Bxor.apply(NumKind::U64, &t, &o), 0b0110u64.to_le_bytes());
    }

    #[test]
    fn sum_wraps_like_hardware() {
        let t = u64::MAX.to_le_bytes();
        let o = 2u64.to_le_bytes();
        assert_eq!(MpiOp::Sum.apply(NumKind::U64, &t, &o), 1u64.to_le_bytes());
    }
}
