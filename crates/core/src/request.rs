//! Request-based RMA operations (MPI_Rput/MPI_Rget and friends).
//!
//! §2: "Several functions can be completed in bulk with bulk
//! synchronization operations or using fine-grained request objects and
//! test/wait functions. However, we observed that the completion model only
//! minimally affects local overheads." The request object wraps the
//! fabric's explicit-nonblocking handle.

use fompi_fabric::{Endpoint, NbHandle};
use std::rc::Rc;

/// A fine-grained completion handle for one RMA operation.
pub struct Request {
    ep: Rc<Endpoint>,
    h: NbHandle,
    done: bool,
}

impl Request {
    pub(crate) fn new(ep: Rc<Endpoint>, h: NbHandle) -> Self {
        Self { ep, h, done: false }
    }

    /// MPI_Wait: block until the operation is remotely complete.
    pub fn wait(&mut self) {
        if !self.done {
            self.ep.wait(self.h);
            self.done = true;
        }
    }

    /// MPI_Test: poll for completion.
    pub fn test(&mut self) -> bool {
        if !self.done && self.ep.clock().now() >= self.h.t_complete {
            self.done = true;
        }
        self.done
    }

    /// Virtual completion time (for benchmarking overlap).
    pub fn completion_time(&self) -> f64 {
        self.h.t_complete
    }
}

/// Wait on a set of requests (MPI_Waitall).
pub fn wait_all(reqs: &mut [Request]) {
    for r in reqs {
        r.wait();
    }
}
