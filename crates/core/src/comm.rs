//! Communication functions: put, get, accumulate and friends (§2.4).
//!
//! These "map nearly directly to low-level hardware functions":
//!
//! * [`Win::put`]/[`Win::get`] issue one implicit-nonblocking fabric op per
//!   contiguous block (one op total on the tuned contiguous fast path,
//!   adding only the paper's 173-instruction overhead), completed by the
//!   next flush/fence/complete;
//! * [`Win::accumulate`] uses per-element hardware AMOs when DMAPP
//!   accelerates the (op, type) pair, otherwise the bufferless
//!   lock-get-accumulate-put fallback that avoids any receiver involvement
//!   in true passive mode;
//! * [`Win::fetch_and_op`]/[`Win::compare_and_swap`] are the fine-grained
//!   single-element specialisations.

use crate::dtype::{zip_blocks, DataType};
use crate::error::{FompiError, Result};
use crate::meta::off;
use crate::op::{MpiOp, NumKind};
use crate::perf::overhead;
use crate::racecheck::{acc_tag, ACC_CAS};
use crate::request::Request;
use crate::win::Win;
use fompi_fabric::shadow::AccessKind;
use fompi_fabric::AmoOp;

impl Win {
    // ------------------------------------------------------------- put/get

    /// MPI_Put of contiguous bytes. Completes at the next synchronisation
    /// (flush/unlock/fence/complete) — "bulk completion".
    pub fn put(&self, origin: &[u8], target: u32, target_disp: usize) -> Result<()> {
        self.check_access(target)?;
        self.ep.charge(overhead::put_get_ns());
        let rc = self.rc_start();
        let (key, off) = self.target_span(target, target_disp, origin.len())?;
        self.ep.put_implicit(key, off, origin)?;
        if let Some(t0) = rc {
            self.rc_remote(
                t0,
                target,
                self.rc_base(target_disp, off),
                origin.len(),
                AccessKind::Put,
            );
        }
        Ok(())
    }

    /// MPI_Get of contiguous bytes. The destination holds valid data after
    /// the next synchronisation.
    pub fn get(&self, dst: &mut [u8], target: u32, target_disp: usize) -> Result<()> {
        self.check_access(target)?;
        self.ep.charge(overhead::put_get_ns());
        let rc = self.rc_start();
        let (key, off) = self.target_span(target, target_disp, dst.len())?;
        self.ep.get_implicit(key, off, dst)?;
        if let Some(t0) = rc {
            self.rc_remote(t0, target, self.rc_base(target_disp, off), dst.len(), AccessKind::Get);
        }
        Ok(())
    }

    /// Request-based put (MPI_Rput): returns a [`Request`] for fine-grained
    /// completion. Injection-queue backpressure (a transient refusal under
    /// an armed fault plan — nothing was issued) is retried here with the
    /// hinted backoff: MPI semantics permit it because an unissued op has
    /// no ordering footprint.
    pub fn rput(&self, origin: &[u8], target: u32, target_disp: usize) -> Result<Request> {
        self.check_access(target)?;
        self.ep.charge(overhead::put_get_ns());
        let rc = self.rc_start();
        let (key, off) = self.target_span(target, target_disp, origin.len())?;
        let h = self.retry_backpressure(|| self.ep.put_nb(key, off, origin))?;
        if let Some(t0) = rc {
            self.rc_remote(
                t0,
                target,
                self.rc_base(target_disp, off),
                origin.len(),
                AccessKind::Put,
            );
        }
        Ok(Request::new(self.ep.clone(), h))
    }

    /// Request-based get (MPI_Rget). Backpressure is retried as in
    /// [`Win::rput`].
    pub fn rget(&self, dst: &mut [u8], target: u32, target_disp: usize) -> Result<Request> {
        self.check_access(target)?;
        self.ep.charge(overhead::put_get_ns());
        let rc = self.rc_start();
        let (key, off) = self.target_span(target, target_disp, dst.len())?;
        let h = self.retry_backpressure(|| self.ep.get_nb(key, off, &mut *dst))?;
        if let Some(t0) = rc {
            self.rc_remote(t0, target, self.rc_base(target_disp, off), dst.len(), AccessKind::Get);
        }
        Ok(Request::new(self.ep.clone(), h))
    }

    /// Bounded retry around an explicit-nonblocking issue that may be
    /// refused with [`fompi_fabric::FabricError::Backpressure`]. Each
    /// retry charges the hinted backoff to virtual time.
    fn retry_backpressure<T>(
        &self,
        mut issue: impl FnMut() -> std::result::Result<T, fompi_fabric::FabricError>,
    ) -> Result<T> {
        let mut attempt = 0u32;
        loop {
            match issue() {
                Ok(v) => return Ok(v),
                Err(fompi_fabric::FabricError::Backpressure { retry_after_ns })
                    if attempt < crate::dynamic::ATTACH_RETRY_LIMIT =>
                {
                    attempt += 1;
                    self.ep.charge(crate::dynamic::busy_backoff_ns(retry_after_ns, attempt));
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Datatyped MPI_Put: origin laid out as `origin_count × origin_ty`
    /// within `origin`, target as `target_count × target_ty` at
    /// `target_disp`. Split into the minimal number of contiguous blocks
    /// (§2.4, MPITypes) with one fabric op each.
    #[allow(clippy::too_many_arguments)] // mirrors the MPI datatype signature
    pub fn put_typed(
        &self,
        origin: &[u8],
        origin_count: usize,
        origin_ty: &DataType,
        target: u32,
        target_disp: usize,
        target_count: usize,
        target_ty: &DataType,
    ) -> Result<()> {
        self.check_access(target)?;
        self.ep.charge(overhead::put_get_ns());
        let ob = origin_ty.flatten(origin_count);
        let tb = target_ty.flatten(target_count);
        let span = target_ty.extent() * target_count;
        let rc = self.rc_start();
        let (key, base) = self.target_span(target, target_disp, span.max(1))?;
        let rc_base = self.rc_base(target_disp, base);
        for (oo, to, len) in zip_blocks(&ob, &tb)? {
            self.ep.put_implicit(key, base + to, &origin[oo..oo + len])?;
            if let Some(t0) = rc {
                self.rc_remote(t0, target, rc_base + to, len, AccessKind::Put);
            }
        }
        Ok(())
    }

    /// Datatyped MPI_Get.
    #[allow(clippy::too_many_arguments)] // mirrors the MPI datatype signature
    pub fn get_typed(
        &self,
        dst: &mut [u8],
        origin_count: usize,
        origin_ty: &DataType,
        target: u32,
        target_disp: usize,
        target_count: usize,
        target_ty: &DataType,
    ) -> Result<()> {
        self.check_access(target)?;
        self.ep.charge(overhead::put_get_ns());
        let ob = origin_ty.flatten(origin_count);
        let tb = target_ty.flatten(target_count);
        let span = target_ty.extent() * target_count;
        let rc = self.rc_start();
        let (key, base) = self.target_span(target, target_disp, span.max(1))?;
        let rc_base = self.rc_base(target_disp, base);
        for (oo, to, len) in zip_blocks(&ob, &tb)? {
            self.ep.get_implicit(key, base + to, &mut dst[oo..oo + len])?;
            if let Some(t0) = rc {
                self.rc_remote(t0, target, rc_base + to, len, AccessKind::Get);
            }
        }
        Ok(())
    }

    // ---------------------------------------------------------- accumulate

    /// MPI_Accumulate over contiguous elements of `kind`. Element-wise
    /// atomic with respect to other accumulates of the same kind.
    pub fn accumulate(
        &self,
        origin: &[u8],
        kind: NumKind,
        op: MpiOp,
        target: u32,
        target_disp: usize,
    ) -> Result<()> {
        self.check_access(target)?;
        let es = kind.size();
        if !origin.len().is_multiple_of(es) {
            return Err(FompiError::BadAccumulate("origin not a whole number of elements"));
        }
        let rc = self.rc_start();
        let (key, base) = self.target_span(target, target_disp, origin.len())?;
        if self.shared.cfg.hw_amo && base % 8 == 0 {
            if let Some(amo) = op.hw_amo(kind) {
                // DMAPP-accelerated path: one non-fetching AMO per element.
                for (i, chunk) in origin.chunks_exact(8).enumerate() {
                    let v = u64::from_le_bytes(chunk.try_into().unwrap());
                    self.ep.amo_implicit(key, base + i * 8, amo, v)?;
                }
                if let Some(t0) = rc {
                    let lo = self.rc_base(target_disp, base);
                    self.rc_remote(t0, target, lo, origin.len(), AccessKind::Acc(acc_tag(op)));
                }
                return Ok(());
            }
        }
        // Fallback: lock the remote window, get, accumulate locally, put
        // back — no receiver involvement (true passive mode).
        self.acc_locked(target, key, base, origin.len(), |cur| {
            let mut out = Vec::with_capacity(cur.len());
            for (t, o) in cur.chunks_exact(es).zip(origin.chunks_exact(es)) {
                out.extend_from_slice(&op.apply(kind, t, o));
            }
            out
        })?;
        if let Some(t0) = rc {
            let lo = self.rc_base(target_disp, base);
            self.rc_remote(t0, target, lo, origin.len(), AccessKind::Acc(acc_tag(op)));
        }
        Ok(())
    }

    /// Datatyped MPI_Accumulate: `op` is applied element-wise through the
    /// origin and target typemaps (signatures must match in total
    /// elements). Always uses the lock-fallback path — the atomicity unit
    /// is the whole typed region, matching foMPI's fallback semantics.
    #[allow(clippy::too_many_arguments)] // mirrors the MPI datatype signature
    pub fn accumulate_typed(
        &self,
        origin: &[u8],
        origin_count: usize,
        origin_ty: &DataType,
        kind: NumKind,
        op: MpiOp,
        target: u32,
        target_disp: usize,
        target_count: usize,
        target_ty: &DataType,
    ) -> Result<()> {
        self.check_access(target)?;
        let es = kind.size();
        let ob = origin_ty.flatten(origin_count);
        let tb = target_ty.flatten(target_count);
        let packed: Vec<u8> =
            ob.iter().flat_map(|&(o, l)| origin[o..o + l].iter().copied()).collect();
        if !packed.len().is_multiple_of(es) {
            return Err(FompiError::BadAccumulate("typemap not a whole number of elements"));
        }
        let span = target_ty.extent() * target_count;
        let rc = self.rc_start();
        let (key, base) = self.target_span(target, target_disp, span.max(1))?;
        // One locked read-modify-write covering the target extent; only
        // typemap bytes are rewritten.
        self.acc_locked(target, key, base, span, |cur| {
            let mut out = cur.to_vec();
            let mut consumed = 0usize;
            for &(toff, tlen) in &tb {
                let mut o = 0;
                while o < tlen {
                    let t0 = toff + o;
                    let new = op.apply(kind, &cur[t0..t0 + es], &packed[consumed..consumed + es]);
                    out[t0..t0 + es].copy_from_slice(&new);
                    consumed += es;
                    o += es;
                }
            }
            debug_assert_eq!(consumed, packed.len());
            out
        })?;
        // The fallback rewrites the whole extent (holes included), so the
        // shadow record covers it all.
        if let Some(t0) = rc {
            let lo = self.rc_base(target_disp, base);
            self.rc_remote(t0, target, lo, span, AccessKind::Acc(acc_tag(op)));
        }
        Ok(())
    }

    /// MPI_Get_accumulate: fetches the previous target contents into
    /// `result` and applies `op` with `origin`. With [`MpiOp::NoOp`] this
    /// is an atomic read.
    pub fn get_accumulate(
        &self,
        origin: &[u8],
        result: &mut [u8],
        kind: NumKind,
        op: MpiOp,
        target: u32,
        target_disp: usize,
    ) -> Result<()> {
        self.check_access(target)?;
        let es = kind.size();
        if !result.len().is_multiple_of(es) || (op != MpiOp::NoOp && origin.len() != result.len()) {
            return Err(FompiError::BadAccumulate("origin/result element mismatch"));
        }
        let rc = self.rc_start();
        let (key, base) = self.target_span(target, target_disp, result.len())?;
        // Single 8-byte element: one hardware AMO, exactly like
        // fetch_and_op (MPI defines fetch_and_op AS this case, so the two
        // must share a path and a cost). This also matters for
        // determinism: the locked fallback serialises through the
        // per-target ACC_LOCK word, so two origins reading *different*
        // cells on the same target contend and their retry backoff charges
        // schedule-dependent virtual time.
        if self.shared.cfg.hw_amo && es == 8 && result.len() == 8 && base % 8 == 0 {
            if let Some(amo) = op.hw_amo(kind) {
                let v = if op == MpiOp::NoOp {
                    0
                } else {
                    u64::from_le_bytes(origin.try_into().unwrap())
                };
                let old = self.ep.amo(key, base, amo, v, 0)?;
                result.copy_from_slice(&old.to_le_bytes());
                if let Some(t0) = rc {
                    let lo = self.rc_base(target_disp, base);
                    self.rc_remote(t0, target, lo, es, AccessKind::Acc(acc_tag(op)));
                }
                return Ok(());
            }
        }
        let old = self.acc_locked(target, key, base, result.len(), |cur| {
            if op == MpiOp::NoOp {
                return cur.to_vec();
            }
            let mut out = Vec::with_capacity(cur.len());
            for (t, o) in cur.chunks_exact(es).zip(origin.chunks_exact(es)) {
                out.extend_from_slice(&op.apply(kind, t, o));
            }
            out
        })?;
        result.copy_from_slice(&old);
        if let Some(t0) = rc {
            let lo = self.rc_base(target_disp, base);
            self.rc_remote(t0, target, lo, result.len(), AccessKind::Acc(acc_tag(op)));
        }
        Ok(())
    }

    /// MPI_Fetch_and_op: single-element get_accumulate, the
    /// latency-critical fine-grained call. Uses one hardware AMO whenever
    /// possible (Sum/bitwise/Replace/NoOp on 8-byte integers).
    pub fn fetch_and_op(
        &self,
        origin: &[u8],
        result: &mut [u8],
        kind: NumKind,
        op: MpiOp,
        target: u32,
        target_disp: usize,
    ) -> Result<()> {
        self.check_access(target)?;
        let es = kind.size();
        if result.len() != es {
            return Err(FompiError::BadAccumulate("fetch_and_op result must be one element"));
        }
        let rc = self.rc_start();
        let (key, base) = self.target_span(target, target_disp, es)?;
        if self.shared.cfg.hw_amo && es == 8 && base % 8 == 0 {
            if let Some(amo) = op.hw_amo(kind) {
                let v = if op == MpiOp::NoOp {
                    0
                } else {
                    u64::from_le_bytes(origin.try_into().unwrap())
                };
                let old = self.ep.amo(key, base, amo, v, 0)?;
                result.copy_from_slice(&old.to_le_bytes());
                if let Some(t0) = rc {
                    let lo = self.rc_base(target_disp, base);
                    self.rc_remote(t0, target, lo, es, AccessKind::Acc(acc_tag(op)));
                }
                return Ok(());
            }
        }
        let mut res = vec![0u8; es];
        let old = self.acc_locked(target, key, base, es, |cur| {
            if op == MpiOp::NoOp {
                cur.to_vec()
            } else {
                op.apply(kind, cur, origin)
            }
        })?;
        res.copy_from_slice(&old);
        result.copy_from_slice(&res);
        if let Some(t0) = rc {
            let lo = self.rc_base(target_disp, base);
            self.rc_remote(t0, target, lo, es, AccessKind::Acc(acc_tag(op)));
        }
        Ok(())
    }

    /// Request-based accumulate (MPI_Raccumulate): like
    /// [`Win::accumulate`], returning a [`Request`] whose completion covers
    /// every element operation issued.
    pub fn raccumulate(
        &self,
        origin: &[u8],
        kind: NumKind,
        op: MpiOp,
        target: u32,
        target_disp: usize,
    ) -> Result<Request> {
        self.accumulate(origin, kind, op, target, target_disp)?;
        let h = fompi_fabric::NbHandle { t_complete: self.ep.pending_for(target) };
        Ok(Request::new(self.ep.clone(), h))
    }

    /// Request-based get_accumulate (MPI_Rget_accumulate). The fallback
    /// path is blocking internally, so the request completes immediately;
    /// the handle exists for API parity with the standard.
    pub fn rget_accumulate(
        &self,
        origin: &[u8],
        result: &mut [u8],
        kind: NumKind,
        op: MpiOp,
        target: u32,
        target_disp: usize,
    ) -> Result<Request> {
        self.get_accumulate(origin, result, kind, op, target, target_disp)?;
        let h = fompi_fabric::NbHandle { t_complete: self.ep.clock().now() };
        Ok(Request::new(self.ep.clone(), h))
    }

    /// MPI_Compare_and_swap on one 8-byte element. Always a hardware AMO.
    pub fn compare_and_swap(
        &self,
        desired: u64,
        compare: u64,
        target: u32,
        target_disp: usize,
    ) -> Result<u64> {
        self.check_access(target)?;
        let rc = self.rc_start();
        let (key, base) = self.target_span(target, target_disp, 8)?;
        if base % 8 != 0 {
            return Err(FompiError::BadAccumulate("CAS target must be 8-byte aligned"));
        }
        let old = self.ep.amo(key, base, AmoOp::Cas, desired, compare)?;
        if let Some(t0) = rc {
            let lo = self.rc_base(target_disp, base);
            self.rc_remote(t0, target, lo, 8, AccessKind::Acc(ACC_CAS));
        }
        Ok(old)
    }

    /// The bufferless fallback protocol (§2.4): lock the target's
    /// accumulate lock, get the current data, apply `f`, put the result
    /// back, unlock. Returns the *previous* contents.
    fn acc_locked(
        &self,
        target: u32,
        key: fompi_fabric::SegKey,
        base: usize,
        len: usize,
        f: impl FnOnce(&[u8]) -> Vec<u8>,
    ) -> Result<Vec<u8>> {
        let mkey = self.meta_key(target);
        let mut spins = 0u64;
        loop {
            let (old, _) = self.ep.amo_sync(mkey, off::ACC_LOCK, AmoOp::Cas, 1, 0)?;
            if old == 0 {
                break;
            }
            // A failed CAS means another origin holds the lock: under the
            // model checker, park until its release swap lands instead of
            // free-spinning (each retry is an always-enabled step, so the
            // explored spin would never terminate). Unarmed: backoff.
            if !self.ep.mc_poll_word(mkey, off::ACC_LOCK, "acc-lock", |w| w == 0) {
                spins += 1;
                crate::sync::backoff_spin(&self.ep, spins);
            }
        }
        // One causal flow ties the protocol's get→put pair together in the
        // trace (the lock CAS/unlock swap are schedule-dependent polls and
        // stay out of it).
        let prev = self.ep.flow_open();
        let r = (|| -> Result<Vec<u8>> {
            let mut cur = vec![0u8; len];
            self.ep.get(key, base, &mut cur)?;
            let new = f(&cur);
            debug_assert_eq!(new.len(), len);
            self.ep.put(key, base, &new)?;
            Ok(cur)
        })();
        self.ep.flow_close(prev);
        self.ep.amo_sync(mkey, off::ACC_LOCK, AmoOp::Swap, 0, 0)?;
        r
    }
}
