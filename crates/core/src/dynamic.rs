//! Dynamic windows: attach/detach and the one-sided region-table cache
//! (§2.2).
//!
//! Attach and detach are *non-collective* and purely local: the owner
//! registers the region, appends `(addr, size, key)` to its region table in
//! the meta segment and bumps the table's id counter. A peer that wants to
//! communicate first reads the remote id (one get); if its cached table is
//! stale it fetches the whole table with one bulk get and re-resolves.
//! This is exactly the paper's cached protocol — O(1) memory per region
//! and one extra round trip only after attach/detach activity.
//!
//! With `WinConfig::dyn_notify` the §2.2 *optimised* variant runs instead:
//! a peer that caches a target's table registers itself in the target's
//! registered-readers list (the Figure-2c pool again); `detach` drains
//! that list and pushes an invalidation into each reader's mailbox. A
//! reader then only checks its **local** invalidation mailbox before each
//! access — no remote id read — trading detach cost for communication
//! latency.

use crate::error::{FompiError, Result};
use crate::meta::{off, DYN_ENTRY_BYTES};
use crate::win::{LocalRegion, RemoteRegions, Win, WinKind};
use fompi_fabric::telemetry::EventKind;
use fompi_fabric::{FabricError, SegKey, Segment};

/// How many transient `SegmentBusy` registration failures attach-side
/// paths retry before surfacing the error. Under any plausible fault plan
/// (busy probability < 1) the chance of this many consecutive failures is
/// negligible, so hitting the limit means the plan is pathological — the
/// error then carries the last retry hint.
pub(crate) const ATTACH_RETRY_LIMIT: u32 = 64;

/// Exponential backoff (charged to virtual time) for retry `attempt`
/// after a transient registration failure with hint `retry_after_ns`.
pub(crate) fn busy_backoff_ns(retry_after_ns: u64, attempt: u32) -> f64 {
    retry_after_ns as f64 * (1u64 << attempt.min(6)) as f64 / 2.0
}

impl Win {
    /// MPI_Win_attach: expose `size` bytes (library-allocated — ranks are
    /// threads, so "user memory" is handed out by the window). Returns the
    /// region's address in the target address space.
    pub fn attach(&self, size: usize) -> Result<u64> {
        if self.kind() != WinKind::Dynamic {
            return Err(FompiError::InvalidEpoch("attach requires a dynamic window"));
        }
        let mut local = self.dyn_local.borrow_mut();
        if local.len() >= self.shared.cfg.max_dyn_regions {
            return Err(FompiError::RegionTableFull);
        }
        let seg = Segment::new(size.max(8));
        // Registration may fail transiently (`SegmentBusy`) under an armed
        // fault plan, as NIC registration resources can on real hardware.
        // Retrying here is legal: the region is not yet visible to any
        // peer, so no MPI ordering guarantee is in force — attach is
        // local and non-collective (§2.2).
        let mut attempt = 0u32;
        let key = loop {
            match self.ep.fabric().try_register(self.ep.rank(), seg.clone()) {
                Ok(key) => break key,
                Err(FabricError::SegmentBusy { retry_after_ns }) => {
                    attempt += 1;
                    if attempt > ATTACH_RETRY_LIMIT {
                        return Err(FabricError::SegmentBusy { retry_after_ns }.into());
                    }
                    let t0 = self.ep.clock().now();
                    self.ep.charge(busy_backoff_ns(retry_after_ns, attempt));
                    self.ep.trace_sync(EventKind::FaultRetry, self.ep.rank(), t0);
                }
                Err(e) => return Err(e.into()),
            }
        };
        self.ep.charge(self.ep.fabric().model().register_ns);
        // Page-aligned bump allocation of the virtual RMA address space.
        let addr = self.dyn_next_addr.get();
        let span = (size.max(8) as u64 + 0xFFF) & !0xFFF;
        self.dyn_next_addr.set(addr + span);
        // Publish: write the table entry, bump count, bump the id counter
        // (readers check the id first, so order matters).
        let idx = local.len();
        let ekey = self.meta_key(self.ep.rank());
        let eoff = self.shared.cfg.dyn_entry_off(idx);
        self.my_meta.write_u64(eoff, addr);
        self.my_meta.write_u64(eoff + 8, size as u64);
        self.my_meta.write_u64(eoff + 16, key.id);
        self.ep.write_sync(ekey, off::DYN_COUNT, (idx + 1) as u64)?;
        self.ep.amo_sync(ekey, off::DYN_ID, fompi_fabric::AmoOp::Add, 1, 0)?;
        local.push(LocalRegion { addr, size, key, seg });
        Ok(addr)
    }

    /// MPI_Win_detach: withdraw the region at `addr`. Remote peers with a
    /// cached descriptor notice via the id counter on their next access.
    pub fn detach(&self, addr: u64) -> Result<()> {
        if self.kind() != WinKind::Dynamic {
            return Err(FompiError::InvalidEpoch("detach requires a dynamic window"));
        }
        let mut local = self.dyn_local.borrow_mut();
        let idx = local
            .iter()
            .position(|r| r.addr == addr)
            .ok_or(FompiError::NotAttached { target: self.ep.rank(), addr })?;
        let removed = local.swap_remove(idx);
        // Rewrite the table: the swapped-in entry moves to `idx`.
        if idx < local.len() {
            let moved = &local[idx];
            let eoff = self.shared.cfg.dyn_entry_off(idx);
            self.my_meta.write_u64(eoff, moved.addr);
            self.my_meta.write_u64(eoff + 8, moved.size as u64);
            self.my_meta.write_u64(eoff + 16, moved.key.id);
        }
        let ekey = self.meta_key(self.ep.rank());
        self.ep.write_sync(ekey, off::DYN_COUNT, local.len() as u64)?;
        self.ep.amo_sync(ekey, off::DYN_ID, fompi_fabric::AmoOp::Add, 1, 0)?;
        if self.shared.cfg.dyn_notify {
            // §2.2 optimised protocol: tell every registered reader to drop
            // its cached copy of our table, then forget the reader list.
            drop(local);
            let me = self.ep.rank();
            for reader in self.list_drain_local(off::READERS_HEAD)? {
                let idx = self.list_acquire_slot(reader)?;
                self.list_push(reader, off::INVAL_HEAD, idx, me)?;
            }
        }
        self.ep.fabric().deregister(removed.key);
        Ok(())
    }

    /// Local data of an attached region (for verification in examples and
    /// tests).
    pub fn region_read(&self, addr: u64, off_in: usize, dst: &mut [u8]) -> Result<()> {
        let local = self.dyn_local.borrow();
        let r = local
            .iter()
            .find(|r| r.addr == addr)
            .ok_or(FompiError::NotAttached { target: self.ep.rank(), addr })?;
        r.seg.read(off_in, dst);
        Ok(())
    }

    /// Write local data of an attached region.
    pub fn region_write(&self, addr: u64, off_in: usize, src: &[u8]) -> Result<()> {
        let local = self.dyn_local.borrow();
        let r = local
            .iter()
            .find(|r| r.addr == addr)
            .ok_or(FompiError::NotAttached { target: self.ep.rank(), addr })?;
        r.seg.write(off_in, src);
        Ok(())
    }

    /// Resolve `(target, addr, len)` against the cached remote region
    /// table. Default protocol: check the remote id counter per access;
    /// with `dyn_notify`, check only the local invalidation mailbox and
    /// trust the cache otherwise (§2.2's optimised variant).
    pub(crate) fn dyn_resolve(
        &self,
        target: u32,
        addr: u64,
        len: usize,
    ) -> Result<(SegKey, usize)> {
        let mkey = self.meta_key(target);
        if self.shared.cfg.dyn_notify {
            // Drain the local mailbox: each entry names a target whose
            // cached table is stale.
            for stale in self.list_drain_local(off::INVAL_HEAD)? {
                self.dyn_cache.borrow_mut().remove(&stale);
            }
            {
                let cache = self.dyn_cache.borrow();
                if let Some(c) = cache.get(&target) {
                    return Self::find_region(c, target, addr, len);
                }
            }
        }
        let mut tries = 0;
        loop {
            let remote_id = self.ep.read_sync(mkey, off::DYN_ID)?;
            if !self.shared.cfg.dyn_notify {
                let cache = self.dyn_cache.borrow();
                if let Some(c) = cache.get(&target) {
                    if c.id == remote_id {
                        return Self::find_region(c, target, addr, len);
                    }
                }
            }
            // Cache miss or stale: fetch count, then the table in one get.
            let count = self.ep.read_sync(mkey, off::DYN_COUNT)? as usize;
            let mut buf = vec![0u8; count * DYN_ENTRY_BYTES];
            if count > 0 {
                self.ep.get(mkey, self.shared.cfg.dyn_table_off(), &mut buf)?;
            }
            // Re-read the id: if it moved while we copied, retry.
            let id_after = self.ep.read_sync(mkey, off::DYN_ID)?;
            if id_after != remote_id {
                tries += 1;
                if tries > 1_000_000 {
                    return Err(FompiError::NotAttached { target, addr });
                }
                continue;
            }
            let regions = (0..count)
                .map(|i| {
                    let b = &buf[i * DYN_ENTRY_BYTES..];
                    (
                        u64::from_le_bytes(b[0..8].try_into().unwrap()),
                        u64::from_le_bytes(b[8..16].try_into().unwrap()),
                        u64::from_le_bytes(b[16..24].try_into().unwrap()),
                    )
                })
                .collect();
            let entry = RemoteRegions { id: remote_id, regions };
            let out = Self::find_region(&entry, target, addr, len);
            self.dyn_cache.borrow_mut().insert(target, entry);
            if self.shared.cfg.dyn_notify && target != self.ep.rank() {
                // Register for detach notifications (first-time access or
                // post-invalidation refresh).
                let idx = self.list_acquire_slot(target)?;
                self.list_push(target, off::READERS_HEAD, idx, self.ep.rank())?;
            }
            return out;
        }
    }

    fn find_region(
        c: &RemoteRegions,
        target: u32,
        addr: u64,
        len: usize,
    ) -> Result<(SegKey, usize)> {
        for &(base, size, key_id) in &c.regions {
            if addr >= base && addr + len as u64 <= base + size {
                return Ok((SegKey { rank: target, id: key_id }, (addr - base) as usize));
            }
        }
        Err(FompiError::NotAttached { target, addr })
    }
}
