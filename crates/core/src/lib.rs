//! # fompi — scalable MPI-3 One Sided over RDMA
//!
//! A Rust reproduction of **foMPI** ("fast one-sided MPI"), the MPI-3.0 RMA
//! implementation of *Gerstenberger, Besta, Hoefler: Enabling
//! Highly-Scalable Remote Memory Access Programming with MPI-3 One Sided*
//! (SC'13). The library implements the paper's scalable, bufferless
//! protocols — O(log p) time and space per process — on top of the
//! simulated DMAPP/XPMEM fabric in `fompi-fabric`:
//!
//! * **window creation** (§2.2): traditional, allocated (symmetric heap),
//!   dynamic (one-sided cached region tables) and shared-memory windows —
//!   [`Win`];
//! * **synchronisation** (§2.3): fence, general active target (PSCW) with
//!   the remote free-storage matching protocol of Figure 2, the two-level
//!   lock hierarchy of Figure 3, and the flush family;
//! * **communication** (§2.4): put/get (implicit-nonblocking, bulk
//!   completed), accumulates with hardware-AMO and lock-fallback paths,
//!   fetch-and-op, compare-and-swap, request-based variants, and full MPI
//!   derived-datatype support via the flattening engine in [`dtype`];
//! * **performance models** (§3): the paper's closed-form cost functions in
//!   [`perf`].
//!
//! ## Quickstart
//!
//! ```
//! use fompi_runtime::Universe;
//! use fompi::Win;
//!
//! // 4 ranks, 2 per node: ranks 0-1 talk over XPMEM, 0-2 over DMAPP.
//! let sums = Universe::new(4).node_size(2).run(|ctx| {
//!     let win = Win::allocate(ctx, 1024, 1).unwrap();
//!     win.fence().unwrap();
//!     // Everyone puts its rank (as one u64) into the right neighbour.
//!     let next = (ctx.rank() + 1) % 4;
//!     win.put(&(ctx.rank() as u64).to_le_bytes(), next, 0).unwrap();
//!     win.fence().unwrap();
//!     let mut got = [0u8; 8];
//!     win.read_local(0, &mut got);
//!     u64::from_le_bytes(got)
//! });
//! assert_eq!(sums, vec![3, 0, 1, 2]);
//! ```

pub mod comm;
pub mod dtype;
pub mod dynamic;
pub mod error;
pub mod meta;
pub mod op;
pub mod perf;
pub mod racecheck;
pub mod request;
pub mod soak;
pub mod sync;
pub mod win;

pub use dtype::DataType;
pub use error::{FompiError, Result};
pub use meta::WinConfig;
pub use op::{MpiOp, NumKind};
pub use perf::PaperModel;
pub use request::{wait_all, Request};
pub use sync::fence::{ASSERT_NOPRECEDE, ASSERT_NOPUT, ASSERT_NOSTORE, ASSERT_NOSUCCEED};
pub use sync::notify::{ANY_SOURCE, ANY_TAG};
pub use win::{LockType, SizeInfo, Win, WinKind};

/// A matched notification record (re-exported from the fabric): who sent
/// it, with what tag, how many bytes the notified operation moved, and
/// the virtual time it became visible.
pub use fompi_fabric::NotifyRecord as Notification;

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_runtime::{Group, Universe};

    #[test]
    fn fence_put_roundtrip() {
        let got = Universe::new(4).node_size(2).run(|ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            win.fence().unwrap();
            let next = (ctx.rank() + 1) % 4;
            win.put(&[ctx.rank() as u8 + 1; 8], next, 0).unwrap();
            win.fence().unwrap();
            let mut b = [0u8; 8];
            win.read_local(0, &mut b);
            b[0]
        });
        assert_eq!(got, vec![4, 1, 2, 3]);
    }

    #[test]
    fn get_after_fence_reads_remote() {
        let got = Universe::new(3).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 16, 1).unwrap();
            win.write_local(0, &[ctx.rank() as u8 * 7; 16]);
            win.fence().unwrap();
            let mut b = [0u8; 16];
            let prev = (ctx.rank() + 2) % 3;
            win.get(&mut b, prev, 0).unwrap();
            win.fence().unwrap();
            b[5]
        });
        assert_eq!(got, vec![14, 0, 7]);
    }

    #[test]
    fn lock_flush_put() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 64, 8).unwrap();
            if ctx.rank() == 0 {
                win.lock(LockType::Exclusive, 1).unwrap();
                win.put(&123u64.to_le_bytes(), 1, 2).unwrap(); // disp unit 8
                win.flush(1).unwrap();
                win.unlock(1).unwrap();
            }
            ctx.barrier();
            let mut b = [0u8; 8];
            win.read_local(16, &mut b);
            u64::from_le_bytes(b)
        });
        assert_eq!(got[1], 123);
    }

    #[test]
    fn pscw_ring() {
        let p = 4;
        let got = Universe::new(p).node_size(2).run(|ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            let me = ctx.rank();
            let left = (me + p as u32 - 1) % p as u32;
            let right = (me + 1) % p as u32;
            // Exposure to both neighbours; access to both neighbours.
            win.post(&Group::new([left, right])).unwrap();
            win.start(&Group::new([left, right])).unwrap();
            win.put(&[me as u8 + 1; 4], right, 0).unwrap();
            win.put(&[me as u8 + 101; 4], left, 4).unwrap();
            win.complete().unwrap();
            win.wait().unwrap();
            let mut lo = [0u8; 4];
            let mut hi = [0u8; 4];
            win.read_local(0, &mut lo);
            win.read_local(4, &mut hi);
            (lo[0], hi[0])
        });
        for (r, &(lo, hi)) in got.iter().enumerate() {
            let left = (r + p - 1) % p;
            let right = (r + 1) % p;
            assert_eq!(lo as usize, left + 1, "rank {r} left put");
            assert_eq!(hi as usize, right + 101, "rank {r} right put");
        }
    }

    #[test]
    fn pscw_fast_ring_correct_and_reusable() {
        let p = 6;
        let cfg = WinConfig { pscw_fast: true, pscw_pool: 8, ..WinConfig::default() };
        let got = Universe::new(p).node_size(3).run(move |ctx| {
            let win = Win::allocate_cfg(ctx, 64, 1, cfg.clone()).unwrap();
            let me = ctx.rank();
            let pn = p as u32;
            let g = Group::new([(me + pn - 1) % pn, (me + 1) % pn]);
            let mut last = 0;
            for round in 0..20u8 {
                win.post(&g).unwrap();
                win.start(&g).unwrap();
                win.put(&[round + 1; 4], (me + 1) % pn, 0).unwrap();
                win.complete().unwrap();
                win.wait().unwrap();
                let mut b = [0u8; 4];
                win.read_local(0, &mut b);
                last = b[0];
            }
            last
        });
        assert!(got.iter().all(|&v| v == 20));
    }

    #[test]
    fn pscw_fast_is_much_cheaper() {
        let cycle = |fast: bool| {
            let cfg = WinConfig { pscw_fast: fast, ..WinConfig::default() };
            let times = Universe::new(4).node_size(1).run(move |ctx| {
                let win = Win::allocate_cfg(ctx, 64, 1, cfg.clone()).unwrap();
                let me = ctx.rank();
                let g = Group::new([(me + 3) % 4, (me + 1) % 4]);
                ctx.barrier();
                let t0 = ctx.now();
                win.post(&g).unwrap();
                win.start(&g).unwrap();
                win.complete().unwrap();
                win.wait().unwrap();
                ctx.now() - t0
            });
            times.iter().cloned().fold(0.0, f64::max)
        };
        // Best of 3 (contention jitter), like the paper's medians.
        let slow = (0..3).map(|_| cycle(false)).fold(f64::MAX, f64::min);
        let fast = (0..3).map(|_| cycle(true)).fold(f64::MAX, f64::min);
        assert!(
            fast < slow * 0.5,
            "fast PSCW ({fast} ns) should be at least 2x cheaper than the \
             CAS-list protocol ({slow} ns)"
        );
    }

    #[test]
    fn accumulate_sum_hw_path() {
        let got = Universe::new(4).node_size(2).run(|ctx| {
            let win = Win::allocate(ctx, 32, 1).unwrap();
            win.fence().unwrap();
            // Everyone adds (rank+1) into rank 0's first element.
            win.accumulate(&(ctx.rank() as u64 + 1).to_le_bytes(), NumKind::U64, MpiOp::Sum, 0, 0)
                .unwrap();
            win.fence().unwrap();
            let mut b = [0u8; 8];
            win.read_local(0, &mut b);
            u64::from_le_bytes(b)
        });
        assert_eq!(got[0], 1 + 2 + 3 + 4);
    }

    #[test]
    fn accumulate_min_fallback_path() {
        let got = Universe::new(4).node_size(4).run(|ctx| {
            let win = Win::allocate(ctx, 32, 1).unwrap();
            win.write_local(0, &i64::MAX.to_le_bytes());
            win.fence().unwrap();
            let v = (ctx.rank() as i64 + 1) * 10;
            win.accumulate(&v.to_le_bytes(), NumKind::I64, MpiOp::Min, 0, 0).unwrap();
            win.fence().unwrap();
            let mut b = [0u8; 8];
            win.read_local(0, &mut b);
            i64::from_le_bytes(b)
        });
        assert_eq!(got[0], 10);
    }

    #[test]
    fn fetch_and_op_counts_atomically() {
        let got = Universe::new(8).node_size(4).run(|ctx| {
            let win = Win::allocate(ctx, 16, 1).unwrap();
            win.lock_all().unwrap();
            let mut slots = Vec::new();
            for _ in 0..4 {
                let mut old = [0u8; 8];
                win.fetch_and_op(&1u64.to_le_bytes(), &mut old, NumKind::U64, MpiOp::Sum, 0, 0)
                    .unwrap();
                slots.push(u64::from_le_bytes(old));
            }
            win.unlock_all().unwrap();
            ctx.barrier();
            let mut b = [0u8; 8];
            win.read_local(0, &mut b);
            (slots, u64::from_le_bytes(b))
        });
        // Every fetched value unique; final count = 32.
        let mut seen: Vec<u64> = got.iter().flat_map(|(s, _)| s.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..32).collect::<Vec<_>>());
        assert_eq!(got[0].1, 32);
    }

    #[test]
    fn compare_and_swap_single_winner() {
        let got = Universe::new(6).node_size(3).run(|ctx| {
            let win = Win::allocate(ctx, 16, 1).unwrap();
            win.lock_all().unwrap();
            let old = win.compare_and_swap(ctx.rank() as u64 + 1, 0, 0, 0).unwrap();
            win.unlock_all().unwrap();
            ctx.barrier();
            old
        });
        // Exactly one rank saw 0 (the winner).
        assert_eq!(got.iter().filter(|&&o| o == 0).count(), 1);
    }

    #[test]
    fn communication_without_epoch_fails() {
        let errs = Universe::new(2).node_size(2).run(|ctx| {
            let win = Win::allocate(ctx, 8, 1).unwrap();
            let r = win.put(&[1u8; 4], (ctx.rank() + 1) % 2, 0);
            ctx.barrier();
            r.is_err()
        });
        assert!(errs.iter().all(|&e| e));
    }

    #[test]
    fn dynamic_window_attach_put_detach() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::create_dynamic(ctx).unwrap();
            // Rank 1 attaches and publishes its address via allgather.
            let addr = if ctx.rank() == 1 { win.attach(256).unwrap() } else { 0 };
            let addrs = ctx.allgather(&addr.to_le_bytes());
            let raddr = u64::from_le_bytes(addrs[1].as_slice().try_into().unwrap());
            if ctx.rank() == 0 {
                win.lock(LockType::Exclusive, 1).unwrap();
                win.put(&[0xAB; 16], 1, raddr as usize).unwrap();
                win.flush(1).unwrap();
                win.unlock(1).unwrap();
            }
            ctx.barrier();
            let out = if ctx.rank() == 1 {
                let mut b = [0u8; 16];
                win.region_read(raddr, 0, &mut b).unwrap();
                b[7]
            } else {
                0
            };
            ctx.barrier();
            if ctx.rank() == 1 {
                win.detach(raddr).unwrap();
            }
            ctx.barrier();
            // After detach, access must fail (fresh resolve).
            let err = if ctx.rank() == 0 {
                win.lock(LockType::Shared, 1).unwrap();
                let e = win.put(&[1u8; 4], 1, raddr as usize).is_err();
                win.unlock(1).unwrap();
                e
            } else {
                true
            };
            (out, err)
        });
        assert_eq!(got[1].0, 0xAB);
        assert!(got[0].1);
    }

    #[test]
    fn traditional_window_has_linear_metadata() {
        let sizes = Universe::new(8).node_size(4).run(|ctx| {
            let create = Win::create(ctx, 64, 1).unwrap();
            let alloc = Win::allocate(ctx, 64, 1).unwrap();
            (create.metadata_bytes(), alloc.metadata_bytes())
        });
        let (c, a) = sizes[0];
        assert!(c > a, "traditional windows must store per-target descriptors");
    }

    #[test]
    fn shared_window_direct_access() {
        let got = Universe::new(4).node_size(4).run(|ctx| {
            let win = Win::allocate_shared(ctx, 64, 1).unwrap();
            win.fence().unwrap();
            // Rank 0 writes into rank 3's memory with plain stores.
            if ctx.rank() == 0 {
                let view = win.shared_query(3).unwrap();
                view.store_bytes(0, &[0x5A; 8]);
            }
            ctx.barrier();
            let mut b = [0u8; 8];
            win.read_local(0, &mut b);
            b[0]
        });
        assert_eq!(got[3], 0x5A);
    }

    #[test]
    fn shared_window_rejected_across_nodes() {
        let errs = Universe::new(4)
            .node_size(2)
            .run(|ctx| matches!(Win::allocate_shared(ctx, 64, 1), Err(FompiError::NotShareable)));
        assert!(errs.iter().all(|&e| e));
    }

    #[test]
    fn rput_request_completes() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 32, 1).unwrap();
            if ctx.rank() == 0 {
                win.lock(LockType::Shared, 1).unwrap();
                let mut req = win.rput(&[7u8; 8], 1, 0).unwrap();
                req.wait();
                win.unlock(1).unwrap();
            }
            ctx.barrier();
            let mut b = [0u8; 8];
            win.read_local(0, &mut b);
            b[0]
        });
        assert_eq!(got[1], 7);
    }

    #[test]
    fn typed_put_vector_to_contiguous() {
        let got = Universe::new(2).node_size(2).run(|ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            win.fence().unwrap();
            if ctx.rank() == 0 {
                // Origin: every second byte of 8; target: contiguous 4.
                let src: Vec<u8> = (10..18).collect();
                let oty = DataType::vector(4, 1, 2, DataType::byte());
                let tty = DataType::contiguous(4, DataType::byte());
                win.put_typed(&src, 1, &oty, 1, 0, 1, &tty).unwrap();
            }
            win.fence().unwrap();
            let mut b = [0u8; 4];
            win.read_local(0, &mut b);
            b
        });
        assert_eq!(got[1], [10, 12, 14, 16]);
    }

    #[test]
    fn lock_nocheck_is_free_and_functional() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 32, 1).unwrap();
            ctx.barrier();
            let mut ops = 0;
            if ctx.rank() == 0 {
                let before = ctx.fabric().counters().snapshot();
                win.lock_assert(LockType::Exclusive, 1, sync::lock::ASSERT_NOCHECK).unwrap();
                let after = ctx.fabric().counters().snapshot();
                ops = after.since(&before).amos;
                win.put(&[5u8; 8], 1, 0).unwrap();
                win.flush(1).unwrap();
                win.unlock(1).unwrap();
            }
            ctx.barrier();
            let mut b = [0u8; 8];
            win.read_local(0, &mut b);
            (ops, b[0])
        });
        assert_eq!(got[0].0, 0, "NOCHECK lock must send zero protocol AMOs");
        assert_eq!(got[1].1, 5);
    }

    #[test]
    fn accumulate_typed_strided_sum() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            // Target holds 4 u64 = [10, 20, 30, 40].
            for (i, v) in [10u64, 20, 30, 40].iter().enumerate() {
                win.write_local(i * 8, &v.to_le_bytes());
            }
            win.fence().unwrap();
            if ctx.rank() == 0 {
                // Add [1, 2] into elements 0 and 2 of rank 1 (stride 2).
                let src: Vec<u8> = [1u64, 2].iter().flat_map(|v| v.to_le_bytes()).collect();
                let oty = DataType::contiguous(2, DataType::uint64());
                let tty = DataType::vector(2, 1, 2, DataType::uint64());
                win.accumulate_typed(&src, 1, &oty, NumKind::U64, MpiOp::Sum, 1, 0, 1, &tty)
                    .unwrap();
            }
            win.fence().unwrap();
            let mut out = [0u8; 32];
            win.read_local(0, &mut out);
            (0..4)
                .map(|i| u64::from_le_bytes(out[i * 8..i * 8 + 8].try_into().unwrap()))
                .collect::<Vec<_>>()
        });
        assert_eq!(got[1], vec![11, 20, 32, 40]);
    }

    #[test]
    fn dynamic_notify_protocol_invalidates_cache() {
        let cfg = WinConfig { dyn_notify: true, ..WinConfig::default() };
        let got = Universe::new(2).node_size(1).run(move |ctx| {
            let win = Win::create_dynamic_cfg(ctx, cfg.clone()).unwrap();
            let addr = if ctx.rank() == 1 { win.attach(64).unwrap() } else { 0 };
            let addrs = ctx.allgather(&addr.to_le_bytes());
            let raddr = u64::from_le_bytes(addrs[1].as_slice().try_into().unwrap());
            if ctx.rank() == 0 {
                // First access populates the cache and registers us.
                win.lock(LockType::Shared, 1).unwrap();
                win.put(&[7u8; 8], 1, raddr as usize).unwrap();
                win.flush(1).unwrap();
                // Second access must be resolvable purely from cache —
                // count remote gets to prove no id check happened.
                let before = ctx.fabric().counters().snapshot();
                win.put(&[8u8; 8], 1, raddr as usize + 8).unwrap();
                let gets = ctx.fabric().counters().snapshot().since(&before).gets;
                win.flush(1).unwrap();
                win.unlock(1).unwrap();
                ctx.barrier(); // let rank 1 detach + notify
                ctx.barrier();
                // Cache must now be invalidated: access fails cleanly.
                win.lock(LockType::Shared, 1).unwrap();
                let err = win.put(&[9u8; 4], 1, raddr as usize).is_err();
                win.unlock(1).unwrap();
                (gets, err)
            } else {
                ctx.barrier();
                win.detach(raddr).unwrap();
                ctx.barrier();
                (0, true)
            }
        });
        assert_eq!(got[0].0, 0, "cached access must not re-read the remote id");
        assert!(got[0].1, "detached access must fail after notify");
    }

    #[test]
    fn raccumulate_and_rget_accumulate() {
        let got = Universe::new(3).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 32, 1).unwrap();
            win.lock_all().unwrap();
            let mut req = win
                .raccumulate(&(ctx.rank() as u64 + 1).to_le_bytes(), NumKind::U64, MpiOp::Sum, 0, 0)
                .unwrap();
            req.wait();
            win.unlock_all().unwrap();
            ctx.barrier();
            let mut out = [0u8; 8];
            if ctx.rank() == 1 {
                win.lock(LockType::Shared, 0).unwrap();
                let mut r =
                    win.rget_accumulate(&[], &mut out, NumKind::U64, MpiOp::NoOp, 0, 0).unwrap();
                assert!(r.test(), "fallback path completes inline");
                r.wait();
                win.unlock(0).unwrap();
            }
            ctx.barrier();
            u64::from_le_bytes(out)
        });
        assert_eq!(got[1], 1 + 2 + 3);
    }

    #[test]
    fn traditional_window_per_rank_sizes_and_disp_units() {
        // Each rank exposes a different size with a different displacement
        // unit — the Ω(p) bookkeeping traditional windows exist for.
        let got = Universe::new(3).node_size(1).run(|ctx| {
            let me = ctx.rank() as usize;
            let win = Win::create(ctx, 32 * (me + 1), me + 1).unwrap();
            assert_eq!(win.disp_unit(0), 1);
            assert_eq!(win.disp_unit(2), 3);
            win.fence().unwrap();
            // Write 4 bytes at element 4 of the next rank: byte offset
            // 4 * that rank's disp unit.
            let next = ((me + 1) % 3) as u32;
            win.put(&[me as u8 + 1; 4], next, 4).unwrap();
            win.fence().unwrap();
            let mut b = [0u8; 4];
            win.read_local(4 * (me + 1), &mut b);
            // Out-of-bounds on the smallest rank's window must error.
            let err = {
                win.fence_assert(ASSERT_NOSUCCEED).unwrap();
                win.lock(LockType::Shared, 0).unwrap();
                let e = win.put(&[0u8; 8], 0, 30).is_err(); // 30*1+8 > 32
                win.unlock(0).unwrap();
                e
            };
            ctx.barrier();
            (b[0], err)
        });
        for (r, (v, err)) in got.iter().enumerate() {
            let prev = (r + 2) % 3;
            assert_eq!(*v as usize, prev + 1, "rank {r}");
            assert!(err, "rank {r} bounds check");
        }
    }

    #[test]
    fn get_accumulate_noop_is_atomic_read() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 16, 1).unwrap();
            win.write_local(0, &99u64.to_le_bytes());
            win.fence().unwrap();
            let mut out = [0u8; 8];
            let other = (ctx.rank() + 1) % 2;
            win.get_accumulate(&[], &mut out, NumKind::U64, MpiOp::NoOp, other, 0).unwrap();
            win.fence().unwrap();
            u64::from_le_bytes(out)
        });
        assert_eq!(got, vec![99, 99]);
    }
}
