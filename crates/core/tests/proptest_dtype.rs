//! Property tests for the datatype engine: flattening, packing and the
//! block-zip transfer algorithm must satisfy the MPI typemap laws for
//! arbitrary derived types.

use fompi::dtype::{zip_blocks, DataType};
use fompi::NumKind;
use proptest::prelude::*;

/// Random derived datatype of bounded depth/extent.
fn dtype_strategy(depth: u32) -> BoxedStrategy<DataType> {
    let leaf = prop_oneof![
        Just(DataType::byte()),
        Just(DataType::Named(NumKind::I32)),
        Just(DataType::double()),
        Just(DataType::int64()),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = dtype_strategy(depth - 1);
    prop_oneof![
        leaf,
        (1usize..4, dtype_strategy(depth - 1))
            .prop_map(|(count, inner)| DataType::contiguous(count, inner)),
        (1usize..4, 1usize..3, 0usize..3, inner.clone()).prop_map(|(count, blocklen, extra, inner)| {
            DataType::vector(count, blocklen, blocklen + extra, inner)
        }),
        proptest::collection::vec((1usize..3, 0usize..6), 1..4).prop_map(|blocks| {
            // Make displacements non-overlapping and increasing.
            let mut disp = 0usize;
            let blocks: Vec<(usize, usize)> = blocks
                .into_iter()
                .map(|(len, gap)| {
                    let d = disp + gap;
                    disp = d + len;
                    (len, d)
                })
                .collect();
            DataType::indexed(blocks, DataType::byte())
        }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// sum of run lengths == size(), runs are sorted, non-overlapping,
    /// within extent, and maximally coalesced.
    #[test]
    fn flatten_invariants(ty in dtype_strategy(2), count in 1usize..4) {
        let runs = ty.flatten(count);
        let total: usize = runs.iter().map(|r| r.1).sum();
        prop_assert_eq!(total, ty.size() * count, "size law");
        let extent_span = if count == 0 { 0 } else { (count - 1) * ty.extent() + ty.extent() };
        for w in runs.windows(2) {
            prop_assert!(w[0].0 + w[0].1 < w[1].0 + 1, "sorted/non-overlapping");
            prop_assert!(w[0].0 + w[0].1 != w[1].0, "coalesced: {:?}", runs);
        }
        if let Some(last) = runs.last() {
            prop_assert!(last.0 + last.1 <= extent_span, "within extent");
        }
    }

    /// pack → unpack is the identity on the typemap's bytes and leaves
    /// gap bytes untouched.
    #[test]
    fn pack_unpack_roundtrip(ty in dtype_strategy(2), count in 1usize..4) {
        let span = ty.extent() * count;
        let src: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
        let packed = ty.pack(count, &src);
        prop_assert_eq!(packed.len(), ty.size() * count);
        let mut dst = vec![0xEEu8; span];
        ty.unpack(count, &packed, &mut dst);
        // Typemap bytes match the source; gaps keep the sentinel.
        let runs = ty.flatten(count);
        let mut in_map = vec![false; span];
        for (off, len) in &runs {
            for i in *off..*off + *len {
                in_map[i] = true;
            }
        }
        for i in 0..span {
            if in_map[i] {
                prop_assert_eq!(dst[i], src[i], "mapped byte {}", i);
            } else {
                prop_assert_eq!(dst[i], 0xEE, "gap byte {} must be untouched", i);
            }
        }
    }

    /// zip_blocks conserves bytes: the triples cover exactly the origin
    /// and target streams, in order.
    #[test]
    fn zip_blocks_conserves(
        a in dtype_strategy(2),
        b in dtype_strategy(2),
        count_a in 1usize..3,
    ) {
        // Choose count_b so the totals match, if possible.
        let bytes_a = a.size() * count_a;
        if b.size() == 0 || bytes_a % b.size() != 0 {
            return Ok(());
        }
        let count_b = bytes_a / b.size();
        if count_b == 0 || count_b > 64 {
            return Ok(());
        }
        let ra = a.flatten(count_a);
        let rb = b.flatten(count_b);
        let triples = zip_blocks(&ra, &rb).unwrap();
        let total: usize = triples.iter().map(|t| t.2).sum();
        prop_assert_eq!(total, bytes_a);
        // Origin offsets advance monotonically through the origin runs.
        let mut covered_a = Vec::new();
        for (o, _, l) in &triples {
            covered_a.push((*o, *l));
        }
        let mut merged = covered_a.clone();
        merged.sort_unstable();
        prop_assert_eq!(&covered_a, &merged, "origin stream in order");
    }

    /// A contiguous type always flattens to one run.
    #[test]
    fn contiguous_is_one_run(count in 1usize..64, elems in 1usize..16) {
        let ty = DataType::contiguous(elems, DataType::double());
        prop_assert!(ty.is_contiguous());
        let runs = ty.flatten(count);
        prop_assert_eq!(runs.len(), 1);
        prop_assert_eq!(runs[0], (0, count * elems * 8));
    }

    /// extent ≥ size always.
    #[test]
    fn extent_dominates_size(ty in dtype_strategy(3)) {
        prop_assert!(ty.extent() >= ty.size());
    }
}
