//! Randomized tests for the datatype engine (seeded in-repo PRNG):
//! flattening, packing and the block-zip transfer algorithm must satisfy
//! the MPI typemap laws for arbitrary derived types.

use fompi::dtype::{zip_blocks, DataType};
use fompi::NumKind;
use fompi_fabric::rng::Rng;

fn random_leaf(rng: &mut Rng) -> DataType {
    match rng.next_below(4) {
        0 => DataType::byte(),
        1 => DataType::Named(NumKind::I32),
        2 => DataType::double(),
        _ => DataType::int64(),
    }
}

/// Random derived datatype of bounded depth/extent.
fn random_dtype(rng: &mut Rng, depth: u32) -> DataType {
    if depth == 0 {
        return random_leaf(rng);
    }
    match rng.next_below(4) {
        0 => random_leaf(rng),
        1 => {
            let count = rng.range(1, 4);
            DataType::contiguous(count, random_dtype(rng, depth - 1))
        }
        2 => {
            let count = rng.range(1, 4);
            let blocklen = rng.range(1, 3);
            let extra = rng.range(0, 3);
            DataType::vector(count, blocklen, blocklen + extra, random_dtype(rng, depth - 1))
        }
        _ => {
            // Indexed with non-overlapping, increasing displacements.
            let n = rng.range(1, 4);
            let mut disp = 0usize;
            let blocks: Vec<(usize, usize)> = (0..n)
                .map(|_| {
                    let len = rng.range(1, 3);
                    let gap = rng.range(0, 6);
                    let d = disp + gap;
                    disp = d + len;
                    (len, d)
                })
                .collect();
            DataType::indexed(blocks, DataType::byte())
        }
    }
}

/// sum of run lengths == size(), runs are sorted, non-overlapping, within
/// extent, and maximally coalesced.
#[test]
fn flatten_invariants() {
    for case in 0..512u64 {
        let mut rng = Rng::seed_from_u64(0xF1A7_0000 + case);
        let ty = random_dtype(&mut rng, 2);
        let count = rng.range(1, 4);
        let runs = ty.flatten(count);
        let total: usize = runs.iter().map(|r| r.1).sum();
        assert_eq!(total, ty.size() * count, "size law, case {case}");
        let extent_span = (count - 1) * ty.extent() + ty.extent();
        for w in runs.windows(2) {
            assert!(w[0].0 + w[0].1 < w[1].0 + 1, "sorted/non-overlapping, case {case}");
            assert!(w[0].0 + w[0].1 != w[1].0, "coalesced, case {case}: {runs:?}");
        }
        if let Some(last) = runs.last() {
            assert!(last.0 + last.1 <= extent_span, "within extent, case {case}");
        }
    }
}

/// pack → unpack is the identity on the typemap's bytes and leaves gap
/// bytes untouched.
#[test]
fn pack_unpack_roundtrip() {
    for case in 0..512u64 {
        let mut rng = Rng::seed_from_u64(0x9AC4_0000 + case);
        let ty = random_dtype(&mut rng, 2);
        let count = rng.range(1, 4);
        let span = ty.extent() * count;
        let src: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
        let packed = ty.pack(count, &src);
        assert_eq!(packed.len(), ty.size() * count, "case {case}");
        let mut dst = vec![0xEEu8; span];
        ty.unpack(count, &packed, &mut dst);
        // Typemap bytes match the source; gaps keep the sentinel.
        let runs = ty.flatten(count);
        let mut in_map = vec![false; span];
        for (off, len) in &runs {
            in_map[*off..*off + *len].fill(true);
        }
        for i in 0..span {
            if in_map[i] {
                assert_eq!(dst[i], src[i], "mapped byte {i}, case {case}");
            } else {
                assert_eq!(dst[i], 0xEE, "gap byte {i} must be untouched, case {case}");
            }
        }
    }
}

/// zip_blocks conserves bytes: the triples cover exactly the origin and
/// target streams, in order.
#[test]
fn zip_blocks_conserves() {
    let mut tested = 0u32;
    for case in 0..512u64 {
        let mut rng = Rng::seed_from_u64(0x21B0_0000 + case);
        let a = random_dtype(&mut rng, 2);
        let b = random_dtype(&mut rng, 2);
        let count_a = rng.range(1, 3);
        // Choose count_b so the totals match, if possible.
        let bytes_a = a.size() * count_a;
        if b.size() == 0 || !bytes_a.is_multiple_of(b.size()) {
            continue;
        }
        let count_b = bytes_a / b.size();
        if count_b == 0 || count_b > 64 {
            continue;
        }
        tested += 1;
        let ra = a.flatten(count_a);
        let rb = b.flatten(count_b);
        let triples = zip_blocks(&ra, &rb).unwrap();
        let total: usize = triples.iter().map(|t| t.2).sum();
        assert_eq!(total, bytes_a, "case {case}");
        // Origin offsets advance monotonically through the origin runs.
        let covered_a: Vec<(usize, usize)> = triples.iter().map(|(o, _, l)| (*o, *l)).collect();
        let mut merged = covered_a.clone();
        merged.sort_unstable();
        assert_eq!(covered_a, merged, "origin stream in order, case {case}");
    }
    assert!(tested > 50, "too few compatible type pairs exercised: {tested}");
}

/// A contiguous type always flattens to one run.
#[test]
fn contiguous_is_one_run() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xC047_0000 + case);
        let count = rng.range(1, 64);
        let elems = rng.range(1, 16);
        let ty = DataType::contiguous(elems, DataType::double());
        assert!(ty.is_contiguous());
        let runs = ty.flatten(count);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0], (0, count * elems * 8));
    }
}

/// extent ≥ size always.
#[test]
fn extent_dominates_size() {
    for case in 0..512u64 {
        let mut rng = Rng::seed_from_u64(0xE47E_0000 + case);
        let ty = random_dtype(&mut rng, 3);
        assert!(ty.extent() >= ty.size(), "case {case}");
    }
}
