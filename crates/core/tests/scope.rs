//! End-to-end tests for the fompi-scope observability plane: causal flow
//! arrows in the exported Perfetto trace, byte-deterministic metrics
//! snapshots, and the armed/unarmed virtual-time ablation (observability
//! must never perturb the model).

use fompi::win::{LockType, Win};
use fompi_fabric::telemetry::perfetto::trace_json;
use fompi_fabric::{metrics_snapshot, ProfileMode};
use fompi_runtime::Universe;

/// Parse every `"name":"flow"` record out of a Chrome-trace JSON line:
/// `(ph, id, tid, has_bp)` per record, in emission order.
fn flow_steps(json: &str) -> Vec<(String, u64, u32, bool)> {
    let mut out = Vec::new();
    for frag in json.split("{\"name\":\"flow\",\"cat\":\"flow\",").skip(1) {
        let frag = &frag[..frag.find('}').expect("flow record closes")];
        let field = |key: &str| -> &str {
            let at = frag.find(key).unwrap_or_else(|| panic!("{key} in {frag}")) + key.len();
            let rest = &frag[at..];
            &rest[..rest.find([',', '}']).unwrap_or(rest.len())]
        };
        let ph = field("\"ph\":").trim_matches('"').to_string();
        let id: u64 = field("\"id\":").parse().expect("numeric flow id");
        let tid: u32 = field("\"tid\":").parse().expect("numeric tid");
        out.push((ph, id, tid, frag.contains("\"bp\":\"e\"")));
    }
    out
}

/// The acceptance-criterion trace: a notified put's flow arrow must
/// connect the origin's issue span (rank 0) to the target's
/// notify-consume span (rank 1), and the epoch shows up as a scope span.
#[test]
fn notified_put_flow_arrow_connects_origin_to_target() {
    let (_out, fabric) = Universe::new(2).node_size(1).trace(4096).launch(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.lock_all().unwrap();
        if ctx.rank() == 0 {
            win.put_notify(&0xFEEDu64.to_le_bytes(), 1, 8, 42).unwrap();
        } else {
            let rec = win.wait_notify(0, 42).unwrap();
            assert_eq!((rec.source, rec.tag, rec.bytes), (0, 42, 8));
        }
        win.unlock_all().unwrap();
        ctx.barrier();
    });
    let json = trace_json(&fabric.telemetry().events(), 2);
    let steps = flow_steps(&json);
    assert!(!steps.is_empty(), "notified put must emit flow arrows:\n{json}");
    // Some flow id must start on rank 0's track and finish, slice-bound,
    // on rank 1's track.
    let connected = steps.iter().any(|(ph, id, tid, _)| {
        ph == "s"
            && *tid == 0
            && steps.iter().any(|(ph2, id2, tid2, bp)| ph2 == "f" && id2 == id && *tid2 == 1 && *bp)
    });
    assert!(connected, "no s(rank0) -> f(rank1) arrow pair:\n{json}");
    // The put span itself carries the flow id in its args.
    let put_args = json
        .split("{\"name\":\"put\",")
        .nth(1)
        .map(|f| &f[..f.find("}}").unwrap_or(f.len())])
        .expect("a put span in the trace");
    assert!(put_args.contains("\"flow\":"), "put span lost its flow:\n{json}");
    // The passive epoch is a synthesized scope span.
    assert!(json.contains("\"name\":\"lock_all_session\""), "missing epoch scope span:\n{json}");
}

/// Signals (the slot API) connect through the signal-flow mailbox: the
/// producer's put and the consumer's `signal_wait` share one flow.
#[test]
fn put_signal_flow_reaches_the_waiter() {
    let (_out, fabric) = Universe::new(2).node_size(1).trace(4096).launch(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        if ctx.rank() == 0 {
            win.lock(LockType::Shared, 1).unwrap();
            win.put_signal(&77u64.to_le_bytes(), 1, 0, 0).unwrap();
            win.unlock(1).unwrap();
        } else {
            win.signal_wait(0, 1).unwrap();
        }
        ctx.barrier();
    });
    let json = trace_json(&fabric.telemetry().events(), 2);
    let steps = flow_steps(&json);
    let connected = steps.iter().any(|(ph, id, tid, _)| {
        ph == "s"
            && *tid == 0
            && steps.iter().any(|(ph2, id2, tid2, _)| ph2 == "f" && id2 == id && *tid2 == 1)
    });
    assert!(connected, "signal flow never reached the waiter:\n{json}");
}

/// A seeded notified-handoff workload built only from schedule-independent
/// primitives: two runs must produce byte-identical metrics snapshots in
/// both exposition formats.
fn metrics_workload() -> (String, String) {
    let (_out, fabric) = Universe::new(2).node_size(1).seed(7).metrics(true).launch(|ctx| {
        let win = Win::allocate(ctx, 4096, 1).unwrap();
        if ctx.rank() == 0 {
            win.lock(LockType::Shared, 1).unwrap();
            for i in 0..32usize {
                win.put_notify(&[i as u8; 64], 1, i * 64, i as u32).unwrap();
            }
            win.unlock(1).unwrap();
        } else {
            for i in 0..32u32 {
                win.wait_notify(0, i).unwrap();
            }
        }
        ctx.barrier();
    });
    let snap = metrics_snapshot(&fabric);
    (snap.to_prometheus(), snap.to_json_line())
}

#[test]
fn metrics_snapshots_are_byte_deterministic() {
    let (prom_a, json_a) = metrics_workload();
    let (prom_b, json_b) = metrics_workload();
    assert_eq!(prom_a, prom_b, "prometheus snapshot must be byte-stable");
    assert_eq!(json_a, json_b, "json snapshot must be byte-stable");
    // Tail quantiles for put latency, in both forms.
    for q in ["0.5", "0.99", "0.999"] {
        let row = format!("fompi_op_virtual_ns{{class=\"put\",quantile=\"{q}\"}}");
        assert!(prom_a.contains(&row), "missing {row} in:\n{prom_a}");
    }
    assert!(json_a.contains("\"class\":\"put\""), "{json_a}");
    assert!(json_a.contains("\"p999\":"), "{json_a}");
    assert!(json_a.starts_with('{') && !json_a.contains('\n'), "one JSON line");
}

/// The overhead ablation: the same seeded workload with the whole
/// observability plane armed (metrics + full profiling + flight recorder)
/// and with it disarmed must land on bit-identical virtual clocks.
/// Wall-clock profiling and flow tracing may cost real time, never
/// virtual time.
#[test]
fn armed_observability_is_virtual_time_invisible() {
    let run = |armed: bool| {
        let mut u = Universe::new(2).node_size(1).seed(11).batch(true);
        if armed {
            u = u.metrics(true).profile(ProfileMode::Full).trace(4096);
        }
        u.run(|ctx| {
            let win = Win::allocate(ctx, 4096, 1).unwrap();
            if ctx.rank() == 0 {
                win.lock(LockType::Shared, 1).unwrap();
                for i in 0..24usize {
                    win.put_notify(&[i as u8; 48], 1, i * 64, i as u32).unwrap();
                }
                win.unlock(1).unwrap();
            } else {
                for i in 0..24u32 {
                    win.wait_notify(0, i).unwrap();
                }
            }
            ctx.barrier();
            ctx.now().to_bits()
        })
    };
    assert_eq!(
        run(true),
        run(false),
        "observability must not perturb virtual time (armed vs disarmed)"
    );
}
