//! Fan-out channel: one publisher multicasting to a subscriber set.
//!
//! Every subscriber's window copy holds its own `slots × slot_bytes`
//! ring; the publisher keeps an independent head cursor and credit window
//! per subscriber, so a publication is one notified put per subscriber —
//! the injections serialise on the publisher's CPU while the wire
//! latencies overlap (the `rmc_fanout_publish` model twin).
//!
//! When a subscriber runs out of credits the [`LaggingPolicy`] decides:
//! `Block` waits for its credit (lossless — the slowest subscriber paces
//! the fan-out), `Drop` skips it and counts the drop (lossy — fast
//! subscribers never wait; the subscriber's own cursor stays consistent
//! because its head simply doesn't advance).

use crate::LaggingPolicy;
use fompi::{MpiOp, Result, Win};
use fompi_fabric::telemetry::{EventKind, NO_TARGET};
use fompi_fabric::Endpoint;
use fompi_runtime::RankCtx;
use std::rc::Rc;

/// Tag carried by fan-out data notifications (publisher → subscriber).
pub const FANOUT_DATA_TAG: u32 = 0x00F0_00DA;

/// Tag carried by fan-out credit notifications (subscriber → publisher).
pub const FANOUT_CREDIT_TAG: u32 = 0x00F0_00CE;

/// Publishing half of a fan-out channel.
pub struct Publisher {
    win: Win,
    ep: Rc<Endpoint>,
    subs: Vec<u32>,
    slots: usize,
    slot_bytes: usize,
    lagging: LaggingPolicy,
    /// Per-subscriber publication cursor (same order as `subs`).
    heads: Vec<u64>,
    /// Per-subscriber credits in hand.
    credits: Vec<u64>,
    /// Per-subscriber head at the last flush (the slot-reuse fence — see
    /// [`Publisher::publish`]).
    flushed_at: Vec<u64>,
    /// Per-subscriber messages dropped under [`LaggingPolicy::Drop`].
    dropped: Vec<u64>,
}

/// Subscribing half of a fan-out channel.
pub struct Subscriber {
    win: Win,
    ep: Rc<Endpoint>,
    publisher: u32,
    slots: usize,
    slot_bytes: usize,
    tail: u64,
}

/// What [`fanout`] hands each participating rank.
pub enum FanoutEnd {
    /// This rank is the publisher.
    Publisher(Publisher),
    /// This rank is one of the subscribers.
    Subscriber(Subscriber),
}

/// Collectively build a fan-out channel from `publisher` to
/// `subscribers`, each subscriber ring `slots` cells of `slot_bytes`.
/// Every rank of the universe must call; ranks that are neither publisher
/// nor subscriber get `None`. Subscribers must be distinct and must not
/// include the publisher. Each subscriber's ring lives in its own window
/// copy; the publisher's copy doubles as the credit-AMO landing pad at
/// offset 0. All ends hold a `lock_all` passive epoch for the channel's
/// lifetime — drop via the ends' `close`.
pub fn fanout(
    ctx: &RankCtx,
    publisher: u32,
    subscribers: &[u32],
    slots: usize,
    slot_bytes: usize,
    lagging: LaggingPolicy,
) -> Result<Option<FanoutEnd>> {
    assert!(slots > 0 && slot_bytes > 0, "fan-out needs at least one non-empty slot");
    assert!(!subscribers.is_empty(), "fan-out needs at least one subscriber");
    assert!(!subscribers.contains(&publisher), "the publisher cannot also subscribe");
    assert!(
        subscribers.iter().enumerate().all(|(i, s)| !subscribers[..i].contains(s)),
        "fan-out subscribers must be distinct"
    );
    let win = Win::allocate(ctx, slots * slot_bytes, 1)?;
    win.lock_all()?;
    let me = ctx.rank();
    if me == publisher {
        let n = subscribers.len();
        Ok(Some(FanoutEnd::Publisher(Publisher {
            win,
            ep: ctx.ep_rc(),
            subs: subscribers.to_vec(),
            slots,
            slot_bytes,
            lagging,
            heads: vec![0; n],
            credits: vec![slots as u64; n],
            flushed_at: vec![0; n],
            dropped: vec![0; n],
        })))
    } else if subscribers.contains(&me) {
        Ok(Some(FanoutEnd::Subscriber(Subscriber {
            win,
            ep: ctx.ep_rc(),
            publisher,
            slots,
            slot_bytes,
            tail: 0,
        })))
    } else {
        win.unlock_all()?;
        win.free(ctx);
        Ok(None)
    }
}

impl FanoutEnd {
    /// Unwrap the publishing half.
    pub fn into_publisher(self) -> Publisher {
        match self {
            FanoutEnd::Publisher(p) => p,
            FanoutEnd::Subscriber(_) => panic!("this rank is a subscriber"),
        }
    }

    /// Unwrap the subscribing half.
    pub fn into_subscriber(self) -> Subscriber {
        match self {
            FanoutEnd::Subscriber(s) => s,
            FanoutEnd::Publisher(_) => panic!("this rank is the publisher"),
        }
    }
}

impl Publisher {
    /// Publish `msg` (at most `slot_bytes`) to every subscriber, applying
    /// the lagging policy per subscriber. Returns how many subscribers
    /// received the message (all of them under [`LaggingPolicy::Block`]).
    /// One causal flow covers the whole multicast, so the trace fans
    /// arrows from this `rmc_send` span into every subscriber's wait.
    pub fn publish(&mut self, msg: &[u8]) -> Result<usize> {
        assert!(msg.len() <= self.slot_bytes, "message exceeds the fan-out slot size");
        let t0 = self.ep.clock().now();
        let prev = self.ep.flow_open();
        let r = self.publish_inner(msg);
        let flow = self.ep.current_flow();
        self.ep.flow_close(prev);
        let delivered = r?;
        self.ep.trace_flow_consume(
            EventKind::RmcSend,
            NO_TARGET,
            t0,
            flow,
            (delivered * msg.len()) as u64,
        );
        Ok(delivered)
    }

    fn publish_inner(&mut self, msg: &[u8]) -> Result<usize> {
        let mut delivered = 0;
        for j in 0..self.subs.len() {
            let sub = self.subs[j];
            if self.credits[j] == 0 {
                // Absorb any credits already queued before deciding the
                // subscriber is lagging.
                while self.win.test_notify(sub, FANOUT_CREDIT_TAG)?.is_some() {
                    self.credits[j] += 1;
                }
            }
            if self.credits[j] == 0 {
                match self.lagging {
                    LaggingPolicy::Block => {
                        self.win.wait_notify(sub, FANOUT_CREDIT_TAG)?;
                        self.credits[j] += 1;
                    }
                    LaggingPolicy::Drop => {
                        self.dropped[j] += 1;
                        continue;
                    }
                }
            }
            // Slot-reuse fence: two same-origin puts to one slot in the
            // same epoch are unordered in MPI — flush between reuses (one
            // flush covers a whole window of slots).
            if self.heads[j] >= self.flushed_at[j] + self.slots as u64 {
                self.win.flush(sub)?;
                self.flushed_at[j] = self.heads[j];
            }
            let slot = (self.heads[j] % self.slots as u64) as usize;
            self.win.put_notify(msg, sub, slot * self.slot_bytes, FANOUT_DATA_TAG)?;
            self.heads[j] += 1;
            self.credits[j] -= 1;
            delivered += 1;
        }
        Ok(delivered)
    }

    /// Messages dropped per subscriber (same order as the subscriber
    /// list) under [`LaggingPolicy::Drop`].
    pub fn dropped(&self) -> &[u64] {
        &self.dropped
    }

    /// Total drops across the subscriber set.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// Tear down this end (collective with every other end's `close`).
    pub fn close(self, ctx: &RankCtx) -> Result<()> {
        self.win.unlock_all()?;
        self.win.free(ctx);
        Ok(())
    }
}

impl Subscriber {
    /// Receive the next publication into `buf`, returning the payload
    /// length. Blocks on the publisher's data notification; the slot is
    /// recycled immediately with a notified credit AMO.
    pub fn recv(&mut self, buf: &mut [u8]) -> Result<usize> {
        let t0 = self.ep.clock().now();
        let rec = self.win.wait_notify(self.publisher, FANOUT_DATA_TAG)?;
        let len = rec.bytes as usize;
        assert!(len <= self.slot_bytes && len <= buf.len(), "slot payload exceeds recv buffer");
        let slot = (self.tail % self.slots as u64) as usize;
        self.win.read_local(slot * self.slot_bytes, &mut buf[..len]);
        self.tail += 1;
        self.win.accumulate_notify(1, MpiOp::Sum, self.publisher, 0, FANOUT_CREDIT_TAG)?;
        self.ep.trace_flow_consume(EventKind::RmcRecv, self.publisher, t0, rec.flow, rec.bytes);
        Ok(len)
    }

    /// Nonblocking probe: is a publication ready (not consumed)?
    pub fn try_peek(&self) -> Result<Option<usize>> {
        Ok(if self.win.notify_pending() > 0 { Some(self.slot_bytes) } else { None })
    }

    /// Tear down this end (collective with every other end's `close`).
    pub fn close(self, ctx: &RankCtx) -> Result<()> {
        self.win.unlock_all()?;
        self.win.free(ctx);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_runtime::Universe;

    #[test]
    fn blocking_fanout_is_lossless_and_ordered() {
        const MSGS: u64 = 20;
        let got = Universe::new(4).node_size(1).run(|ctx| {
            let end = fanout(ctx, 0, &[1, 2, 3], 2, 8, LaggingPolicy::Block).unwrap().unwrap();
            match end {
                FanoutEnd::Publisher(mut px) => {
                    for i in 0..MSGS {
                        let n = px.publish(&i.to_le_bytes()).unwrap();
                        assert_eq!(n, 3, "block policy delivers to every subscriber");
                    }
                    assert_eq!(px.dropped_total(), 0);
                    px.close(ctx).unwrap();
                    MSGS
                }
                FanoutEnd::Subscriber(mut sx) => {
                    let mut buf = [0u8; 8];
                    let mut ok = 0u64;
                    for i in 0..MSGS {
                        sx.recv(&mut buf).unwrap();
                        if u64::from_le_bytes(buf) == i {
                            ok += 1;
                        }
                    }
                    sx.close(ctx).unwrap();
                    ok
                }
            }
        });
        assert_eq!(got, vec![MSGS; 4]);
    }

    #[test]
    fn drop_policy_counts_lagging_subscribers() {
        // Both subscribers park until the publisher is done: with 2-slot
        // rings, every publication past the second must drop, and each
        // subscriber is left with a clean *prefix* — drops happen at the
        // publisher, so nothing is torn or reordered.
        const MSGS: u64 = 10;
        let got = Universe::new(3).node_size(1).run(|ctx| {
            let end = fanout(ctx, 0, &[1, 2], 2, 8, LaggingPolicy::Drop).unwrap().unwrap();
            match end {
                FanoutEnd::Publisher(mut px) => {
                    let mut delivered = 0;
                    for i in 0..MSGS {
                        delivered += px.publish(&i.to_le_bytes()).unwrap() as u64;
                    }
                    assert_eq!(delivered, 4, "2 slots per parked subscriber");
                    assert_eq!(px.dropped(), &[MSGS - 2, MSGS - 2]);
                    assert_eq!(px.dropped_total(), 2 * (MSGS - 2));
                    ctx.barrier(); // the laggards may drain now
                    let total = px.dropped_total();
                    px.close(ctx).unwrap();
                    total
                }
                FanoutEnd::Subscriber(mut sx) => {
                    ctx.barrier(); // park until the publisher is done
                    let mut buf = [0u8; 8];
                    let mut seq = Vec::new();
                    for _ in 0..2 {
                        sx.recv(&mut buf).unwrap();
                        seq.push(u64::from_le_bytes(buf));
                    }
                    assert_eq!(seq, vec![0, 1], "drops keep a clean prefix");
                    assert!(sx.try_peek().unwrap().is_none(), "dropped messages never arrive");
                    sx.close(ctx).unwrap();
                    2
                }
            }
        });
        assert_eq!(got[1], 2);
        assert_eq!(got[2], 2);
    }

    #[test]
    fn third_party_ranks_pass_through() {
        let got = Universe::new(4).node_size(2).run(|ctx| {
            match fanout(ctx, 1, &[3], 2, 16, LaggingPolicy::Block).unwrap() {
                Some(FanoutEnd::Publisher(mut px)) => {
                    px.publish(b"cast").unwrap();
                    px.close(ctx).unwrap();
                    1u8
                }
                Some(FanoutEnd::Subscriber(mut sx)) => {
                    let mut b = [0u8; 16];
                    let n = sx.recv(&mut b).unwrap();
                    assert_eq!(&b[..n], b"cast");
                    sx.close(ctx).unwrap();
                    2u8
                }
                None => 0u8,
            }
        });
        assert_eq!(got, vec![0, 1, 0, 2]);
    }
}
