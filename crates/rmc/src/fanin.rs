//! MPMC fan-in channel: N producers, one consumer, FAA-free data path.
//!
//! The consumer's window copy holds one private slot *region* per
//! producer:
//!
//! ```text
//! | producer 0: slot 0..slots | producer 1: slot 0..slots | ...
//! ```
//!
//! Each producer appends into its own region with `put_notify`, so no
//! shared cursor exists and nothing is fetch-and-added on the data path —
//! the notification record's `source` field tells the consumer whose
//! region (and, via that producer's tail, which slot) a message landed in,
//! exactly like the notified DSDE port. Backpressure is per-producer: the
//! consumer recycles a slot with one notified credit AMO aimed at the
//! producer that owns it, and a producer out of credits blocks in
//! [`FaninProducer::send`].
//!
//! The consumer drains until dry: [`FaninConsumer::try_recv`] is one
//! nonblocking matching pass, so `while let Some(..) = q.try_recv(..)?`
//! consumes exactly the messages whose notifications have arrived.

use fompi::{FompiError, MpiOp, Result, Win, ANY_SOURCE};
use fompi_fabric::telemetry::EventKind;
use fompi_fabric::{Endpoint, NotifyRecord};
use fompi_runtime::RankCtx;
use std::rc::Rc;

/// Tag carried by fan-in data notifications (producer → consumer).
pub const FANIN_DATA_TAG: u32 = 0x00F1_00DA;

/// Tag carried by fan-in credit notifications (consumer → producer).
pub const FANIN_CREDIT_TAG: u32 = 0x00F1_00CE;

/// Producer half of a fan-in channel.
pub struct FaninProducer {
    win: Win,
    ep: Rc<Endpoint>,
    consumer: u32,
    /// Byte offset of this producer's region in the consumer's window.
    region: usize,
    slots: usize,
    slot_bytes: usize,
    head: u64,
    credits: u64,
    /// Head value at the last flush toward the consumer (the slot-reuse
    /// fence — see [`FaninProducer::send`]).
    flushed_at: u64,
}

/// Consumer half of a fan-in channel.
pub struct FaninConsumer {
    win: Win,
    ep: Rc<Endpoint>,
    producers: Vec<u32>,
    slots: usize,
    slot_bytes: usize,
    /// Per-producer consumption cursor (same order as `producers`).
    tails: Vec<u64>,
}

/// What [`fanin`] hands each participating rank.
pub enum FaninEnd {
    /// This rank is one of the producers.
    Producer(FaninProducer),
    /// This rank is the consumer.
    Consumer(FaninConsumer),
}

/// Collectively build a fan-in channel from `producers` to `consumer`
/// with `slots` ring cells of `slot_bytes` each per producer. Every rank
/// of the universe must call (window creation is collective); ranks that
/// are neither producer nor consumer get `None`. Producers must be
/// distinct and must not include the consumer. The slot regions live in
/// the consumer's window copy; each producer's copy doubles as its
/// credit-AMO landing pad at offset 0. All ends hold a `lock_all` passive
/// epoch for the channel's lifetime — drop via the ends' `close`.
pub fn fanin(
    ctx: &RankCtx,
    consumer: u32,
    producers: &[u32],
    slots: usize,
    slot_bytes: usize,
) -> Result<Option<FaninEnd>> {
    assert!(slots > 0 && slot_bytes > 0, "fan-in needs at least one non-empty slot");
    assert!(!producers.is_empty(), "fan-in needs at least one producer");
    assert!(!producers.contains(&consumer), "the consumer cannot also produce");
    assert!(
        producers.iter().enumerate().all(|(i, p)| !producers[..i].contains(p)),
        "fan-in producers must be distinct"
    );
    let win = Win::allocate(ctx, producers.len() * slots * slot_bytes, 1)?;
    win.lock_all()?;
    let me = ctx.rank();
    if me == consumer {
        Ok(Some(FaninEnd::Consumer(FaninConsumer {
            win,
            ep: ctx.ep_rc(),
            producers: producers.to_vec(),
            slots,
            slot_bytes,
            tails: vec![0; producers.len()],
        })))
    } else if let Some(i) = producers.iter().position(|&p| p == me) {
        Ok(Some(FaninEnd::Producer(FaninProducer {
            win,
            ep: ctx.ep_rc(),
            consumer,
            region: i * slots * slot_bytes,
            slots,
            slot_bytes,
            head: 0,
            credits: slots as u64,
            flushed_at: 0,
        })))
    } else {
        win.unlock_all()?;
        win.free(ctx);
        Ok(None)
    }
}

impl FaninEnd {
    /// Unwrap the producer half.
    pub fn into_producer(self) -> FaninProducer {
        match self {
            FaninEnd::Producer(p) => p,
            FaninEnd::Consumer(_) => panic!("this rank is the consumer"),
        }
    }

    /// Unwrap the consumer half.
    pub fn into_consumer(self) -> FaninConsumer {
        match self {
            FaninEnd::Consumer(c) => c,
            FaninEnd::Producer(_) => panic!("this rank is a producer"),
        }
    }
}

impl FaninProducer {
    /// Append `msg` (at most `slot_bytes`) to this producer's region.
    /// Blocks on the consumer's credit notifications when the region is
    /// full. The send span (`rmc_send`) shares its flow id with the
    /// notified put, so the trace draws an arrow into the consumer's
    /// matching wait.
    pub fn send(&mut self, msg: &[u8]) -> Result<()> {
        assert!(msg.len() <= self.slot_bytes, "message exceeds the fan-in slot size");
        let t0 = self.ep.clock().now();
        if self.credits == 0 {
            self.win.wait_notify(self.consumer, FANIN_CREDIT_TAG)?;
            self.credits += 1;
        }
        // Slot-reuse fence: the credit proves the consumer drained the old
        // payload, but two same-origin puts in one epoch are unordered in
        // MPI — a flush between them completes the old put before its slot
        // is rewritten. One flush covers a whole window of slots.
        if self.head >= self.flushed_at + self.slots as u64 {
            self.win.flush(self.consumer)?;
            self.flushed_at = self.head;
        }
        let slot = (self.head % self.slots as u64) as usize;
        let prev = self.ep.flow_open();
        let r = self.win.put_notify(
            msg,
            self.consumer,
            self.region + slot * self.slot_bytes,
            FANIN_DATA_TAG,
        );
        let flow = self.ep.current_flow();
        self.ep.flow_close(prev);
        r?;
        self.head += 1;
        self.credits -= 1;
        self.ep.trace_flow_consume(EventKind::RmcSend, self.consumer, t0, flow, msg.len() as u64);
        Ok(())
    }

    /// Credits currently in hand (free slots known to this side).
    pub fn credits(&self) -> u64 {
        self.credits
    }

    /// Absorb any credit notifications that already arrived (nonblocking).
    pub fn poll_credits(&mut self) -> Result<u64> {
        while self.win.test_notify(self.consumer, FANIN_CREDIT_TAG)?.is_some() {
            self.credits += 1;
        }
        Ok(self.credits)
    }

    /// Tear down this end (collective with every other end's `close`).
    pub fn close(self, ctx: &RankCtx) -> Result<()> {
        self.win.unlock_all()?;
        self.win.free(ctx);
        Ok(())
    }
}

impl FaninConsumer {
    /// Receive the next message from any producer into `buf`; returns the
    /// producing rank and payload length. Blocks until a data
    /// notification arrives; the matched record's stamp fences the region
    /// read. The slot is recycled immediately with a notified credit AMO
    /// aimed at the producing rank.
    pub fn recv(&mut self, buf: &mut [u8]) -> Result<(u32, usize)> {
        let t0 = self.ep.clock().now();
        let rec = self.win.wait_notify(ANY_SOURCE, FANIN_DATA_TAG)?;
        self.consume(&rec, buf, t0)
    }

    /// One nonblocking matching pass — the drain-until-dry primitive:
    /// `None` once every arrived message has been consumed.
    pub fn try_recv(&mut self, buf: &mut [u8]) -> Result<Option<(u32, usize)>> {
        let t0 = self.ep.clock().now();
        match self.win.test_notify(ANY_SOURCE, FANIN_DATA_TAG)? {
            Some(rec) => self.consume(&rec, buf, t0).map(Some),
            None => Ok(None),
        }
    }

    fn consume(&mut self, rec: &NotifyRecord, buf: &mut [u8], t0: f64) -> Result<(u32, usize)> {
        let i = self
            .producers
            .iter()
            .position(|&p| p == rec.source)
            .ok_or(FompiError::InvalidEpoch("fan-in data record from a non-producer rank"))?;
        let len = rec.bytes as usize;
        assert!(len <= self.slot_bytes && len <= buf.len(), "slot payload exceeds recv buffer");
        let slot = (self.tails[i] % self.slots as u64) as usize;
        let region = i * self.slots * self.slot_bytes;
        self.win.read_local(region + slot * self.slot_bytes, &mut buf[..len]);
        self.tails[i] += 1;
        // Recycle the slot: one notified credit AMO to the owning
        // producer (the operand is informational — flow control rides the
        // notification itself).
        self.win.accumulate_notify(1, MpiOp::Sum, rec.source, 0, FANIN_CREDIT_TAG)?;
        self.ep.trace_flow_consume(EventKind::RmcRecv, rec.source, t0, rec.flow, rec.bytes);
        Ok((rec.source, len))
    }

    /// Data notifications queued and not yet consumed (approximate under
    /// concurrent producers).
    pub fn pending(&self) -> usize {
        self.win.notify_pending()
    }

    /// Tear down this end (collective with every other end's `close`).
    pub fn close(self, ctx: &RankCtx) -> Result<()> {
        self.win.unlock_all()?;
        self.win.free(ctx);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_runtime::Universe;

    #[test]
    fn many_producers_drain_until_dry() {
        const MSGS: u64 = 12;
        let p = 5usize;
        let got = Universe::new(p).node_size(1).notify_depth(256).run(move |ctx| {
            let producers: Vec<u32> = (1..p as u32).collect();
            let end = fanin(ctx, 0, &producers, 4, 16).unwrap().unwrap();
            match end {
                FaninEnd::Producer(mut tx) => {
                    for i in 0..MSGS {
                        let word = (u64::from(ctx.rank()) << 32) | i;
                        tx.send(&word.to_le_bytes()).unwrap();
                    }
                    tx.close(ctx).unwrap();
                    Vec::new()
                }
                FaninEnd::Consumer(mut rx) => {
                    let mut per_src = vec![0u64; p];
                    let mut buf = [0u8; 16];
                    let mut seen = 0;
                    while seen < MSGS * (p as u64 - 1) {
                        // Drain-until-dry, then block for the next batch.
                        while let Some((src, len)) = rx.try_recv(&mut buf).unwrap() {
                            assert_eq!(len, 8);
                            let word = u64::from_le_bytes(buf[..8].try_into().unwrap());
                            assert_eq!(word >> 32, u64::from(src), "payload names its producer");
                            // FIFO per producer: low word counts up.
                            assert_eq!(word & 0xFFFF_FFFF, per_src[src as usize]);
                            per_src[src as usize] += 1;
                            seen += 1;
                        }
                        if seen < MSGS * (p as u64 - 1) {
                            let (src, len) = rx.recv(&mut buf).unwrap();
                            assert_eq!(len, 8);
                            let word = u64::from_le_bytes(buf[..8].try_into().unwrap());
                            assert_eq!(word >> 32, u64::from(src));
                            assert_eq!(word & 0xFFFF_FFFF, per_src[src as usize]);
                            per_src[src as usize] += 1;
                            seen += 1;
                        }
                    }
                    assert_eq!(rx.pending(), 0, "dry means dry");
                    rx.close(ctx).unwrap();
                    per_src
                }
            }
        });
        assert_eq!(got[0][1..], vec![MSGS; p - 1]);
    }

    #[test]
    fn credits_bound_each_producer_independently() {
        // Two producers, a 2-slot ring each, far more messages than slots:
        // every send spends a credit and nothing interleaves across
        // regions.
        const MSGS: u64 = 40;
        let got = Universe::new(3).node_size(1).run(|ctx| {
            let end = fanin(ctx, 2, &[0, 1], 2, 8).unwrap().unwrap();
            match end {
                FaninEnd::Producer(mut tx) => {
                    for i in 0..MSGS {
                        tx.send(&i.to_le_bytes()).unwrap();
                        assert!(tx.credits() < 2, "a send always spends a credit");
                    }
                    tx.close(ctx).unwrap();
                    0
                }
                FaninEnd::Consumer(mut rx) => {
                    let mut next = [0u64; 2];
                    let mut buf = [0u8; 8];
                    for _ in 0..2 * MSGS {
                        let (src, _) = rx.recv(&mut buf).unwrap();
                        let v = u64::from_le_bytes(buf);
                        assert_eq!(v, next[src as usize], "per-producer FIFO");
                        next[src as usize] += 1;
                    }
                    rx.close(ctx).unwrap();
                    next.iter().sum::<u64>()
                }
            }
        });
        assert_eq!(got[2], 2 * MSGS);
    }

    #[test]
    fn third_party_ranks_pass_through() {
        let got =
            Universe::new(4).node_size(2).run(|ctx| match fanin(ctx, 3, &[1], 2, 16).unwrap() {
                Some(FaninEnd::Producer(mut tx)) => {
                    tx.send(b"ping").unwrap();
                    tx.close(ctx).unwrap();
                    1u8
                }
                Some(FaninEnd::Consumer(mut rx)) => {
                    let mut b = [0u8; 16];
                    let (src, n) = rx.recv(&mut b).unwrap();
                    assert_eq!((src, &b[..n]), (1, &b"ping"[..]));
                    rx.close(ctx).unwrap();
                    2u8
                }
                None => 0u8,
            });
        assert_eq!(got, vec![0, 1, 0, 2]);
    }

    #[test]
    fn duplicate_or_self_producers_are_rejected() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let dup = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = fanin(ctx, 0, &[1, 1], 2, 8);
            }))
            .is_err();
            ctx.barrier();
            let selfp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = fanin(ctx, 0, &[0, 1], 2, 8);
            }))
            .is_err();
            ctx.barrier();
            dup && selfp
        });
        assert!(got.iter().all(|&b| b));
    }
}
