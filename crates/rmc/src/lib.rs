//! Remote memory channels (RMC): the queue substrate the paper's notified
//! access was designed for.
//!
//! §4 motivates notified access "to support fast remote-queue-like
//! communications"; this crate builds those queues as a first-class
//! programming model, layered *purely* on the existing one-sided
//! primitives — `put_notify` for data, `accumulate_notify` for credits,
//! passive-target epochs for lifetime. Three shapes:
//!
//! - [`fanin`] — MPMC fan-in: N producers append into per-producer slot
//!   regions on one consumer rank. The notification record's `source`
//!   field replaces any shared cursor, so the data path is FAA-free (the
//!   same trick as the notified DSDE port); backpressure is per-producer
//!   credit AMOs.
//! - [`fanout`] — one publisher multicasting to a subscriber set, with
//!   per-subscriber credit windows and a lagging-subscriber policy
//!   ([`LaggingPolicy::Block`] vs [`LaggingPolicy::Drop`] with a
//!   per-subscriber drop counter).
//! - [`mesh`] — the all-to-all closure of fan-in: every rank produces
//!   toward every rank and consumes its own fan-in over one symmetric
//!   window (the shape DSDE and halo exchanges need), with lazy credit
//!   returns batched off the receive path.
//! - [`rpc`] — request/response with correlation tags carried in the
//!   notification records, per-endpoint reply channels, bounded
//!   outstanding-request budgets, and timeouts surfaced as *transient*
//!   errors (retryable, consistent with `FabricError` backpressure).
//!
//! Tuning rides the `FOMPI_RMC` environment knob (or
//! `Universe::rmc(spec)`): the fabric carries the raw spec string, this
//! crate owns the grammar — see [`RmcConfig::parse`].
//!
//! Telemetry: producers emit `rmc_send` spans, consumers `rmc_recv`, RPC
//! callers `rpc_call`; each shares its causal flow id with the underlying
//! notified ops, so the Perfetto exporter draws arrows from the send span
//! into the consumer's matching wait.
//!
//! Like `msg::channel`, each structure claims a `(peer, tag)` pair in the
//! per-rank notification space for its lifetime: don't run two RMC
//! structures with the same endpoints concurrently on one rank.

pub mod fanin;
pub mod fanout;
pub mod mesh;
pub mod rpc;

pub use fanin::{fanin, FaninConsumer, FaninEnd, FaninProducer};
pub use fanout::{fanout, FanoutEnd, Publisher, Subscriber};
pub use mesh::{mesh, Mesh};
pub use rpc::{rpc, RpcClient, RpcEnd, RpcRequest, RpcServer};

use fompi_runtime::RankCtx;

/// What a publisher does when a subscriber has no free slots left.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaggingPolicy {
    /// Wait for the lagging subscriber's credit (lossless; the slowest
    /// subscriber paces the whole fan-out).
    Block,
    /// Skip the lagging subscriber and count the drop (lossy; fast
    /// subscribers never wait for slow ones).
    Drop,
}

/// Parsed `FOMPI_RMC` tuning knobs. Every field has a default; the spec
/// grammar is comma-separated `key=value` pairs, e.g.
/// `slots=8,slot_bytes=256,lagging=drop,rpc_budget=4,rpc_timeout_ns=2000000`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RmcConfig {
    /// Ring slots per producer region / per subscriber ring.
    pub slots: usize,
    /// Payload capacity of one slot, bytes.
    pub slot_bytes: usize,
    /// Fan-out behaviour when a subscriber lags.
    pub lagging: LaggingPolicy,
    /// Maximum outstanding requests per RPC client.
    pub rpc_budget: usize,
    /// Virtual-time reply deadline: a reply whose notification stamp
    /// lands after `issue + rpc_timeout_ns` is dropped and surfaced as a
    /// transient error.
    pub rpc_timeout_ns: u64,
}

impl Default for RmcConfig {
    fn default() -> Self {
        RmcConfig {
            slots: 8,
            slot_bytes: 256,
            lagging: LaggingPolicy::Block,
            rpc_budget: 4,
            rpc_timeout_ns: 50_000_000,
        }
    }
}

impl RmcConfig {
    /// Parse a spec string over the defaults. Unknown keys and malformed
    /// values are errors — a typo in `FOMPI_RMC` must fail loudly, not
    /// silently run with defaults.
    pub fn parse(spec: &str) -> std::result::Result<RmcConfig, String> {
        let mut cfg = RmcConfig::default();
        for pair in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, val) = pair
                .split_once('=')
                .ok_or_else(|| format!("FOMPI_RMC entry {pair:?} is not key=value"))?;
            let uint = |what: &str| {
                val.parse::<u64>().map_err(|_| format!("FOMPI_RMC {what}={val:?} is not a number"))
            };
            match key.trim() {
                "slots" => cfg.slots = uint("slots")? as usize,
                "slot_bytes" => cfg.slot_bytes = uint("slot_bytes")? as usize,
                "lagging" => {
                    cfg.lagging = match val.trim() {
                        "block" => LaggingPolicy::Block,
                        "drop" => LaggingPolicy::Drop,
                        other => {
                            return Err(format!("FOMPI_RMC lagging={other:?} (want block or drop)"))
                        }
                    }
                }
                "rpc_budget" => cfg.rpc_budget = uint("rpc_budget")? as usize,
                "rpc_timeout_ns" => cfg.rpc_timeout_ns = uint("rpc_timeout_ns")?,
                other => return Err(format!("unknown FOMPI_RMC key {other:?}")),
            }
        }
        if cfg.slots == 0 || cfg.slot_bytes == 0 {
            return Err("FOMPI_RMC slots and slot_bytes must be nonzero".into());
        }
        if cfg.rpc_budget == 0 {
            return Err("FOMPI_RMC rpc_budget must be nonzero".into());
        }
        Ok(cfg)
    }

    /// The config in force for this job: the fabric-carried `FOMPI_RMC` /
    /// `Universe::rmc` spec parsed over the defaults. Panics on a
    /// malformed spec (configuration errors are programmer errors).
    pub fn from_ctx(ctx: &RankCtx) -> RmcConfig {
        match ctx.fabric().rmc() {
            Some(spec) => match RmcConfig::parse(&spec) {
                Ok(cfg) => cfg,
                Err(e) => panic!("invalid FOMPI_RMC spec: {e}"),
            },
            None => RmcConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_round_trips() {
        assert_eq!(RmcConfig::parse("").unwrap(), RmcConfig::default());
        let cfg =
            RmcConfig::parse("slots=16,slot_bytes=64,lagging=drop,rpc_budget=2,rpc_timeout_ns=99")
                .unwrap();
        assert_eq!(cfg.slots, 16);
        assert_eq!(cfg.slot_bytes, 64);
        assert_eq!(cfg.lagging, LaggingPolicy::Drop);
        assert_eq!(cfg.rpc_budget, 2);
        assert_eq!(cfg.rpc_timeout_ns, 99);
    }

    #[test]
    fn malformed_specs_fail_loudly() {
        for bad in
            ["slots", "slots=x", "lagging=maybe", "rnaks=2", "slots=0", "rpc_budget=0", "a=1,b"]
        {
            assert!(RmcConfig::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn universe_spec_reaches_the_config() {
        use fompi_runtime::Universe;
        let got = Universe::new(2).node_size(1).rmc("slots=3,lagging=drop").run(|ctx| {
            let cfg = RmcConfig::from_ctx(ctx);
            (cfg.slots, cfg.lagging == LaggingPolicy::Drop)
        });
        assert!(got.iter().all(|&(s, d)| s == 3 && d));
    }
}
