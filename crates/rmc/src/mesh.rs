//! All-to-all MPMC mesh: every rank is simultaneously a producer toward
//! every other rank and the consumer of its own fan-in.
//!
//! Why a single structure instead of `p` [`crate::fanin`] channels: the
//! notification *ring* is per rank but the unmatched-record *stash* is per
//! window, so two windows receiving concurrently on one rank would stash
//! each other's records where the other window's wait can never find
//! them. The mesh therefore lives on ONE symmetric window — every
//! record a rank ever polls belongs to this structure and stash-first
//! matching stays lossless.
//!
//! Window layout on every rank's copy (`p` ranks, `S` slots of `B`
//! bytes):
//!
//! ```text
//! | 8 B credit pad | region 0: S×B | region 1: S×B | ... | region p-1 |
//! ```
//!
//! Region `s` on rank `c`'s copy is where rank `s`'s messages to `c`
//! land, so the notification record's `source` field routes each record
//! to its region — the FAA-free trick of the fan-in channel, now in both
//! directions at once. Credit AMOs land in the shared pad (same-op `Sum`
//! accumulates may overlap under the racecheck, per MPI-3.0 §11.7.1);
//! the credit *count* is carried by the records themselves, one per slot.
//!
//! Credits are returned **lazily**: [`Mesh::try_recv`] only records the
//! debt, and [`Mesh::flush_credits`] pays it. Batching the returns off
//! the receive path keeps the drain exactly as cheap as a raw
//! `test_notify` loop — the property the DSDE port's "RMC matches
//! notified access" claim rests on. Call `flush_credits` at phase
//! boundaries (after a drain, before the next send burst); a mesh used
//! for continuous streaming should call it every few receives.

use crate::RmcConfig;
use fompi::{FompiError, MpiOp, Result, Win, ANY_SOURCE};
use fompi_fabric::telemetry::EventKind;
use fompi_fabric::{Endpoint, NotifyRecord};
use fompi_runtime::RankCtx;
use std::rc::Rc;

/// Tag of mesh data notifications.
pub const MESH_DATA_TAG: u32 = 0x00F2_00DA;

/// Tag of mesh credit notifications.
pub const MESH_CREDIT_TAG: u32 = 0x00F2_00CE;

/// One rank's end of the all-to-all mesh (see the module docs).
pub struct Mesh {
    win: Win,
    ep: Rc<Endpoint>,
    slots: usize,
    slot_bytes: usize,
    /// Per-target write cursor into *my* region on the target's copy.
    heads: Vec<u64>,
    /// Per-target send credits in hand.
    credits: Vec<u64>,
    /// Per-target head value at the last flush toward it (see
    /// [`Mesh::send`]'s slot-reuse fence).
    flushed_at: Vec<u64>,
    /// Per-source read cursor into that source's region on my copy.
    tails: Vec<u64>,
    /// Per-source credits consumed but not yet returned.
    owed: Vec<u64>,
}

/// Collectively build a mesh over the whole universe. Every rank gets an
/// end; geometry comes from `cfg` (`slots` per ordered pair, `slot_bytes`
/// payload capacity).
pub fn mesh(ctx: &RankCtx, cfg: &RmcConfig) -> Result<Mesh> {
    assert!(cfg.slots > 0 && cfg.slot_bytes > 0, "mesh needs at least one non-empty slot");
    let p = ctx.size();
    let win = Win::allocate(ctx, 8 + p * cfg.slots * cfg.slot_bytes, 1)?;
    win.lock_all()?;
    Ok(Mesh {
        win,
        ep: ctx.ep_rc(),
        slots: cfg.slots,
        slot_bytes: cfg.slot_bytes,
        heads: vec![0; p],
        credits: vec![cfg.slots as u64; p],
        flushed_at: vec![0; p],
        tails: vec![0; p],
        owed: vec![0; p],
    })
}

impl Mesh {
    fn region(&self, producer: u32) -> usize {
        8 + producer as usize * self.slots * self.slot_bytes
    }

    /// Append `msg` to `target`'s copy of my region (self-sends allowed —
    /// the record lands in my own ring). Blocks on the target's credit
    /// when my window of `slots` in-flight messages toward it is full.
    pub fn send(&mut self, target: u32, msg: &[u8]) -> Result<()> {
        assert!(msg.len() <= self.slot_bytes, "message exceeds the mesh slot size");
        let t = target as usize;
        if self.credits[t] == 0 {
            while self.win.test_notify(target, MESH_CREDIT_TAG)?.is_some() {
                self.credits[t] += 1;
            }
            if self.credits[t] == 0 {
                self.win.wait_notify(target, MESH_CREDIT_TAG)?;
                self.credits[t] += 1;
            }
        }
        // Slot-reuse fence: put N+slots lands where put N did. The credit
        // proves the consumer drained the old payload, but two same-origin
        // puts in one epoch are unordered in MPI — a flush between them
        // completes the old put before the slot is rewritten (and bumps
        // the racecheck phase). One flush covers a whole window of slots.
        if self.heads[t] >= self.flushed_at[t] + self.slots as u64 {
            self.win.flush(target)?;
            self.flushed_at[t] = self.heads[t];
        }
        let me = self.ep.rank();
        let slot = (self.heads[t] % self.slots as u64) as usize;
        let t0 = self.ep.clock().now();
        let prev = self.ep.flow_open();
        let r = self.win.put_notify(
            msg,
            target,
            self.region(me) + slot * self.slot_bytes,
            MESH_DATA_TAG,
        );
        let flow = self.ep.current_flow();
        self.ep.flow_close(prev);
        r?;
        self.heads[t] += 1;
        self.credits[t] -= 1;
        self.ep.trace_flow_consume(EventKind::RmcSend, target, t0, flow, msg.len() as u64);
        Ok(())
    }

    fn consume(&mut self, rec: NotifyRecord, t0: f64, buf: &mut [u8]) -> Result<(u32, usize)> {
        if rec.source as usize >= self.tails.len() {
            return Err(FompiError::InvalidEpoch("mesh data record from outside the universe"));
        }
        let len = rec.bytes as usize;
        assert!(len <= self.slot_bytes && len <= buf.len(), "mesh payload exceeds recv buffer");
        let s = rec.source as usize;
        let slot = (self.tails[s] % self.slots as u64) as usize;
        self.win.read_local(self.region(rec.source) + slot * self.slot_bytes, &mut buf[..len]);
        self.tails[s] += 1;
        self.owed[s] += 1;
        self.ep.trace_flow_consume(EventKind::RmcRecv, rec.source, t0, rec.flow, rec.bytes);
        Ok((rec.source, len))
    }

    /// Nonblocking receive from any producer: `(source, len)` with the
    /// payload in `buf[..len]`, or `None` when nothing is queued — the
    /// drain-until-dry primitive. The consumed slot's credit is *owed*,
    /// not sent; see [`Mesh::flush_credits`].
    pub fn try_recv(&mut self, buf: &mut [u8]) -> Result<Option<(u32, usize)>> {
        let t0 = self.ep.clock().now();
        match self.win.test_notify(ANY_SOURCE, MESH_DATA_TAG)? {
            Some(rec) => self.consume(rec, t0, buf).map(Some),
            None => Ok(None),
        }
    }

    /// Blocking [`Mesh::try_recv`].
    pub fn recv(&mut self, buf: &mut [u8]) -> Result<(u32, usize)> {
        let t0 = self.ep.clock().now();
        let rec = self.win.wait_notify(ANY_SOURCE, MESH_DATA_TAG)?;
        self.consume(rec, t0, buf)
    }

    /// Return every owed credit to its producer (one notified AMO per
    /// slot, so producers can count records). Senders blocked on a full
    /// pair window resume once these arrive.
    pub fn flush_credits(&mut self) -> Result<()> {
        for s in 0..self.owed.len() {
            while self.owed[s] > 0 {
                self.win.accumulate_notify(1, MpiOp::Sum, s as u32, 0, MESH_CREDIT_TAG)?;
                self.owed[s] -= 1;
            }
        }
        Ok(())
    }

    /// Data notifications queued for this rank and not yet matched.
    pub fn pending(&self) -> usize {
        self.win.notify_pending()
    }

    /// Tear down (collective across the universe). Unpaid credits are
    /// fine — the window dies with them.
    pub fn close(self, ctx: &RankCtx) -> Result<()> {
        self.win.unlock_all()?;
        self.win.free(ctx);
        Ok(())
    }
}

/// Loom model of the lazy batched credit return.
///
/// A mesh end is single-threaded per rank, so what loom checks is the
/// concurrent substrate [`Mesh::flush_credits`] leans on: the consumer's
/// batched burst of `MESH_CREDIT_TAG` records landing in the producer's
/// notification ring *while* the producer drains it from [`Mesh::send`]'s
/// blocked path. The property is credit conservation — across every
/// interleaving of the batched return and the drain, exactly `owed`
/// credits arrive, none lost, duplicated or torn, including when several
/// consumers pay one producer concurrently (the all-to-all case).
///
/// loom is NOT a dependency of this workspace: add it locally as a
/// dev-dependency (do not commit) and run
/// `RUSTFLAGS="--cfg loom" cargo test -p fompi-rmc --release loom_`.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::MESH_CREDIT_TAG;
    use fompi_fabric::{NotifyQueue, NotifyRecord};
    use loom::thread;
    use std::sync::Arc;

    /// The record `accumulate_notify` appends per returned credit.
    fn credit(consumer: u32) -> NotifyRecord {
        NotifyRecord {
            tag: MESH_CREDIT_TAG,
            source: consumer,
            bytes: 8,
            stamp: 1.0,
            flow: consumer as u64,
        }
    }

    /// One consumer flushes a batch of owed credits while the blocked
    /// producer drains its ring concurrently (the `send` credit-wait
    /// loop). Every interleaving must hand the producer exactly `owed`
    /// credits.
    #[test]
    fn loom_batched_return_conserves_credits() {
        const OWED: usize = 2;
        loom::model(|| {
            let ring = Arc::new(NotifyQueue::new(4));
            let consumer = {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    // flush_credits: one notified AMO per owed slot, back
                    // to back — the lazy batch, not one-per-recv.
                    for _ in 0..OWED {
                        assert!(ring.try_push(credit(1)), "sized ring refused a credit");
                    }
                })
            };
            // Producer side of the interleaving: bounded drain attempts
            // racing the batch (test_notify's nonblocking pops).
            let mut credits = 0usize;
            for _ in 0..OWED {
                if let Some(r) = ring.try_pop() {
                    assert_eq!(r.tag, MESH_CREDIT_TAG);
                    assert_eq!(r.source, 1);
                    credits += 1;
                }
            }
            consumer.join().unwrap();
            // Whatever the race left queued is still there afterward.
            while let Some(r) = ring.try_pop() {
                assert_eq!(r.tag, MESH_CREDIT_TAG);
                credits += 1;
            }
            assert_eq!(credits, OWED, "a credit was lost or duplicated");
        });
    }

    /// Two consumers pay the same producer concurrently — the MPMC case
    /// `flush_credits` creates in an all-to-all phase boundary. Per-source
    /// conservation must hold (the producer tracks credits per target).
    #[test]
    fn loom_concurrent_payers_conserve_per_source() {
        loom::model(|| {
            let ring = Arc::new(NotifyQueue::new(4));
            let payers: Vec<_> = [1u32, 2]
                .into_iter()
                .map(|c| {
                    let ring = Arc::clone(&ring);
                    thread::spawn(move || assert!(ring.try_push(credit(c))))
                })
                .collect();
            for p in payers {
                p.join().unwrap();
            }
            let mut per_source = [0usize; 3];
            while let Some(r) = ring.try_pop() {
                assert_eq!(r.tag, MESH_CREDIT_TAG);
                assert_eq!(r.flow, r.source as u64, "torn credit record");
                per_source[r.source as usize] += 1;
            }
            assert_eq!(per_source, [0, 1, 1], "per-source credit conservation");
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_runtime::Universe;

    #[test]
    fn every_pair_exchanges_and_drains_dry() {
        // Each rank sends one tagged payload to every rank (itself
        // included — self-sends must work for periodic halos).
        let p = 4usize;
        let got = Universe::new(p).node_size(2).notify_depth(64).run(move |ctx| {
            let mut m =
                mesh(ctx, &RmcConfig { slots: 2, slot_bytes: 16, ..RmcConfig::default() }).unwrap();
            let me = ctx.rank();
            for t in 0..p as u32 {
                m.send(t, &(((me as u64) << 32) | t as u64).to_le_bytes()).unwrap();
            }
            ctx.barrier();
            let mut from = vec![false; p];
            let mut buf = [0u8; 16];
            while let Some((src, len)) = m.try_recv(&mut buf).unwrap() {
                assert_eq!(len, 8);
                let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
                assert_eq!(v, ((src as u64) << 32) | me as u64, "wrong payload routing");
                from[src as usize] = true;
            }
            m.flush_credits().unwrap();
            ctx.barrier();
            m.close(ctx).unwrap();
            from.iter().all(|&b| b)
        });
        assert!(got.iter().all(|&b| b), "some pair lost its message: {got:?}");
    }

    #[test]
    fn credits_recycle_across_rounds() {
        // More rounds than slots: round N+1's sends need round N's
        // flushed credits, exercising the lazy return path end to end.
        let (p, rounds, slots) = (3usize, 6u64, 2usize);
        let got = Universe::new(p).node_size(1).notify_depth(128).run(move |ctx| {
            let mut m =
                mesh(ctx, &RmcConfig { slots, slot_bytes: 16, ..RmcConfig::default() }).unwrap();
            let me = ctx.rank();
            let mut seen = 0u64;
            for r in 0..rounds {
                for t in 0..p as u32 {
                    if t != me {
                        m.send(t, &((r << 8) | t as u64).to_le_bytes()).unwrap();
                    }
                }
                ctx.barrier();
                let mut buf = [0u8; 16];
                while let Some((_, len)) = m.try_recv(&mut buf).unwrap() {
                    let v = u64::from_le_bytes(buf[..len].try_into().unwrap());
                    assert_eq!(v, (r << 8) | me as u64);
                    seen += 1;
                }
                m.flush_credits().unwrap();
                ctx.barrier();
            }
            m.close(ctx).unwrap();
            seen
        });
        assert!(got.iter().all(|&s| s == rounds * (p as u64 - 1)), "{got:?}");
    }

    #[test]
    fn racecheck_stays_clean_under_concurrent_credit_amos() {
        // Every rank floods every other rank; all credit AMOs land in the
        // same shared pad byte-range concurrently. Same-op accumulate
        // overlap is legal — the shadow must not fire.
        let p = 3usize;
        let rc = fompi_fabric::RacecheckMode::Panic;
        Universe::new(p).node_size(1).notify_depth(256).racecheck(rc).run(move |ctx| {
            let mut m =
                mesh(ctx, &RmcConfig { slots: 4, slot_bytes: 8, ..RmcConfig::default() }).unwrap();
            for r in 0..8u64 {
                for t in 0..p as u32 {
                    if t != ctx.rank() {
                        m.send(t, &r.to_le_bytes()).unwrap();
                    }
                }
                ctx.barrier();
                let mut buf = [0u8; 8];
                while m.try_recv(&mut buf).unwrap().is_some() {}
                m.flush_credits().unwrap();
                ctx.barrier();
            }
            m.close(ctx).unwrap();
        });
    }
}
