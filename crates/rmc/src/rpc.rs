//! One-sided RPC: request/response over remote memory channels.
//!
//! Requests fan in to the server exactly like [`crate::fanin`] — one
//! private slot region per client on the server's window copy — and each
//! client's own copy holds its reply ring. The *correlation id* rides in
//! the notification record's tag (low 16 bits under [`REQ_TAG_BASE`] /
//! [`REP_TAG_BASE`]), so a client with several calls in flight matches
//! exactly the reply it waits for, in any order, with no payload header.
//!
//! Window layout (symmetric; `C` clients, `S` slots of `B` bytes):
//!
//! ```text
//! | 8 B credit pad | region 0: S×B | region 1: S×B | ... | region C-1 |
//! ```
//!
//! On the server's copy region `i` is client `i`'s request ring; on a
//! client's copy the first region is its reply ring. Credit AMOs land in
//! the pad (same-op accumulates may overlap per MPI-3.0 §11.7.1, so one
//! shared pad is racecheck-clean).
//!
//! Two budgets bound the pipeline: each client may hold at most
//! `rpc_budget` outstanding requests (and never more than a slot-window's
//! worth), surfaced as a *transient* error when exceeded; and a reply
//! whose notification stamp lands after the issue time plus
//! `rpc_timeout_ns` of virtual time is dropped and surfaced as the same
//! transient class — retry is always legal, like fabric backpressure.

use crate::RmcConfig;
use fompi::{FompiError, MpiOp, Result, Win, ANY_SOURCE};
use fompi_fabric::telemetry::EventKind;
use fompi_fabric::{Endpoint, FabricError};
use fompi_runtime::RankCtx;
use std::rc::Rc;

/// Request-tag base; the low 16 bits carry the correlation id.
pub const REQ_TAG_BASE: u32 = 0x0052_0000;

/// Reply-tag base; the low 16 bits carry the correlation id.
pub const REP_TAG_BASE: u32 = 0x0053_0000;

/// Tag of request-slot credit notifications (server → client).
pub const REQ_CREDIT_TAG: u32 = 0x0054_0001;

/// Tag of reply-slot credit notifications (client → server).
pub const REP_CREDIT_TAG: u32 = 0x0054_0002;

/// Give up a blocking RPC wait after this many fruitless matching passes:
/// the peer is gone or deadlocked, which timeout semantics must surface
/// as an error rather than hang.
const SPIN_LIMIT: u64 = 1 << 20;

fn transient(retry_after_ns: u64) -> FompiError {
    FompiError::Fabric(FabricError::Backpressure { retry_after_ns })
}

/// Client half of an RPC endpoint.
pub struct RpcClient {
    win: Win,
    ep: Rc<Endpoint>,
    server: u32,
    /// Byte offset of this client's request region on the server's copy.
    region: usize,
    slots: usize,
    slot_bytes: usize,
    budget: usize,
    timeout_ns: u64,
    corr_next: u64,
    req_credits: u64,
    /// `corr_next` at the last flush toward the server (the request-slot
    /// reuse fence — see [`RpcClient::call_async`]).
    flushed_at: u64,
    /// In-flight calls: `(corr, virtual issue time)`, oldest first.
    outstanding: Vec<(u64, f64)>,
}

/// Server half of an RPC endpoint.
pub struct RpcServer {
    win: Win,
    ep: Rc<Endpoint>,
    clients: Vec<u32>,
    slots: usize,
    slot_bytes: usize,
    /// Per-client next expected correlation id (clients issue in order).
    next_corr: Vec<u64>,
    /// Per-client reply-slot credits in hand.
    rep_credits: Vec<u64>,
    /// Per-client reply corr at the last flush (the reply-slot reuse
    /// fence — see [`RpcServer::reply`]).
    flushed_at: Vec<u64>,
}

/// One request the server pulled off the wire.
#[derive(Debug, Clone)]
pub struct RpcRequest {
    /// The calling rank.
    pub client: u32,
    /// Correlation id the reply must carry.
    pub corr: u64,
    /// Request payload.
    pub data: Vec<u8>,
}

/// What [`rpc`] hands each participating rank.
pub enum RpcEnd {
    /// This rank is the server.
    Server(RpcServer),
    /// This rank is one of the clients.
    Client(RpcClient),
}

/// Collectively build an RPC endpoint: `clients` call into `server`.
/// Every rank of the universe must call; ranks that are neither get
/// `None`. Ring geometry and budgets come from `cfg`
/// ([`RmcConfig::from_ctx`] honours `FOMPI_RMC`).
pub fn rpc(ctx: &RankCtx, server: u32, clients: &[u32], cfg: &RmcConfig) -> Result<Option<RpcEnd>> {
    assert!(cfg.slots > 0 && cfg.slot_bytes > 0, "rpc needs at least one non-empty slot");
    assert!(!clients.is_empty(), "rpc needs at least one client");
    assert!(!clients.contains(&server), "the server cannot also call");
    assert!(
        clients.iter().enumerate().all(|(i, c)| !clients[..i].contains(c)),
        "rpc clients must be distinct"
    );
    let win = Win::allocate(ctx, 8 + clients.len() * cfg.slots * cfg.slot_bytes, 1)?;
    win.lock_all()?;
    let me = ctx.rank();
    if me == server {
        Ok(Some(RpcEnd::Server(RpcServer {
            win,
            ep: ctx.ep_rc(),
            clients: clients.to_vec(),
            slots: cfg.slots,
            slot_bytes: cfg.slot_bytes,
            next_corr: vec![0; clients.len()],
            rep_credits: vec![cfg.slots as u64; clients.len()],
            flushed_at: vec![0; clients.len()],
        })))
    } else if let Some(i) = clients.iter().position(|&c| c == me) {
        Ok(Some(RpcEnd::Client(RpcClient {
            win,
            ep: ctx.ep_rc(),
            server,
            region: 8 + i * cfg.slots * cfg.slot_bytes,
            slots: cfg.slots,
            slot_bytes: cfg.slot_bytes,
            budget: cfg.rpc_budget,
            timeout_ns: cfg.rpc_timeout_ns,
            corr_next: 0,
            req_credits: cfg.slots as u64,
            flushed_at: 0,
            outstanding: Vec::new(),
        })))
    } else {
        win.unlock_all()?;
        win.free(ctx);
        Ok(None)
    }
}

impl RpcEnd {
    /// Unwrap the server half.
    pub fn into_server(self) -> RpcServer {
        match self {
            RpcEnd::Server(s) => s,
            RpcEnd::Client(_) => panic!("this rank is a client"),
        }
    }

    /// Unwrap the client half.
    pub fn into_client(self) -> RpcClient {
        match self {
            RpcEnd::Client(c) => c,
            RpcEnd::Server(_) => panic!("this rank is the server"),
        }
    }
}

impl RpcClient {
    /// Issue a request without waiting for its reply; returns the
    /// correlation id to pass to [`RpcClient::wait_reply`]. Exceeding the
    /// outstanding budget (or the reply ring's slot window) surfaces as a
    /// transient error — drain a reply, then retry.
    pub fn call_async(&mut self, req: &[u8]) -> Result<u64> {
        assert!(req.len() <= self.slot_bytes, "request exceeds the rpc slot size");
        if self.outstanding.len() >= self.budget {
            return Err(transient(self.timeout_ns));
        }
        if let Some(&(oldest, _)) = self.outstanding.first() {
            if self.corr_next - oldest >= self.slots as u64 {
                // A fresh corr would alias an unconsumed reply slot.
                return Err(transient(self.timeout_ns));
            }
        }
        if self.req_credits == 0 {
            while self.win.test_notify(self.server, REQ_CREDIT_TAG)?.is_some() {
                self.req_credits += 1;
            }
            if self.req_credits == 0 {
                self.win.wait_notify(self.server, REQ_CREDIT_TAG)?;
                self.req_credits += 1;
            }
        }
        let corr = self.corr_next;
        // Slot-reuse fence: request corr and corr−slots share a slot, and
        // two same-origin puts in one epoch are unordered in MPI — flush
        // between reuses (one flush covers a whole window of slots).
        if corr >= self.flushed_at + self.slots as u64 {
            self.win.flush(self.server)?;
            self.flushed_at = corr;
        }
        let slot = (corr % self.slots as u64) as usize;
        let t0 = self.ep.clock().now();
        let prev = self.ep.flow_open();
        let r = self.win.put_notify(
            req,
            self.server,
            self.region + slot * self.slot_bytes,
            REQ_TAG_BASE | (corr as u32 & 0xFFFF),
        );
        let flow = self.ep.current_flow();
        self.ep.flow_close(prev);
        r?;
        self.req_credits -= 1;
        self.corr_next += 1;
        self.outstanding.push((corr, t0));
        self.ep.trace_flow_consume(EventKind::RmcSend, self.server, t0, flow, req.len() as u64);
        Ok(corr)
    }

    /// Wait for the reply to `corr`, copy it into `buf`, and return its
    /// length. Replies may be awaited in any order. A reply whose
    /// notification stamp exceeds the issue time plus the configured
    /// timeout is *dropped* (its slot still recycles) and surfaced as a
    /// transient error — deterministically, since the verdict depends
    /// only on virtual stamps. A reply that never arrives surfaces the
    /// same error after a bounded number of matching passes.
    pub fn wait_reply(&mut self, corr: u64, buf: &mut [u8]) -> Result<usize> {
        let at = self
            .outstanding
            .iter()
            .position(|&(c, _)| c == corr)
            .ok_or(FompiError::InvalidEpoch("unknown rpc correlation id"))?;
        let issued = self.outstanding[at].1;
        let deadline = issued + self.timeout_ns as f64;
        let tag = REP_TAG_BASE | (corr as u32 & 0xFFFF);
        let mut spins = 0u64;
        loop {
            if let Some(rec) = self.win.test_notify(self.server, tag)? {
                let len = rec.bytes as usize;
                assert!(
                    len <= self.slot_bytes && len <= buf.len(),
                    "reply payload exceeds recv buffer"
                );
                let slot = (corr % self.slots as u64) as usize;
                self.win.read_local(8 + slot * self.slot_bytes, &mut buf[..len]);
                // Recycle the reply slot whether or not we keep the data.
                self.win.accumulate_notify(1, MpiOp::Sum, self.server, 0, REP_CREDIT_TAG)?;
                self.outstanding.remove(at);
                if rec.stamp > deadline {
                    return Err(transient(self.timeout_ns));
                }
                self.ep.trace_flow_consume(EventKind::RpcCall, self.server, issued, rec.flow, {
                    rec.bytes
                });
                return Ok(len);
            }
            // Model checker: park until a notification arrives instead of
            // spinning, so a waiting client is disabled, not busy.
            if self.ep.mc_poll_my_ring("rpc-wait-reply") {
                continue;
            }
            spins += 1;
            if spins > SPIN_LIMIT {
                return Err(transient(self.timeout_ns));
            }
            std::thread::yield_now();
        }
    }

    /// One synchronous round trip: issue `req`, wait for the reply.
    pub fn call(&mut self, req: &[u8], buf: &mut [u8]) -> Result<usize> {
        let corr = self.call_async(req)?;
        self.wait_reply(corr, buf)
    }

    /// Requests in flight.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Tear down this end (collective with every other end's `close`).
    pub fn close(self, ctx: &RankCtx) -> Result<()> {
        self.win.unlock_all()?;
        self.win.free(ctx);
        Ok(())
    }
}

impl RpcServer {
    fn client_index(&self, rank: u32) -> Result<usize> {
        self.clients
            .iter()
            .position(|&c| c == rank)
            .ok_or(FompiError::InvalidEpoch("rpc record from a rank that is not a client"))
    }

    /// One nonblocking pass: absorb reply credits, then probe each client
    /// for its next in-order request. Returns the first request found.
    pub fn try_recv(&mut self) -> Result<Option<RpcRequest>> {
        let t0 = self.ep.clock().now();
        while let Some(rec) = self.win.test_notify(ANY_SOURCE, REP_CREDIT_TAG)? {
            let i = self.client_index(rec.source)?;
            self.rep_credits[i] += 1;
        }
        for i in 0..self.clients.len() {
            let client = self.clients[i];
            // Clients issue correlation ids in order, so the next request
            // from client i can only carry next_corr[i] — an exact-tag
            // match, no wildcard needed.
            let corr = self.next_corr[i];
            let tag = REQ_TAG_BASE | (corr as u32 & 0xFFFF);
            if let Some(rec) = self.win.test_notify(client, tag)? {
                let len = rec.bytes as usize;
                assert!(len <= self.slot_bytes, "request exceeds the rpc slot size");
                let slot = (corr % self.slots as u64) as usize;
                let region = 8 + i * self.slots * self.slot_bytes;
                let mut data = vec![0u8; len];
                self.win.read_local(region + slot * self.slot_bytes, &mut data);
                self.next_corr[i] += 1;
                // The payload is copied out: recycle the request slot.
                self.win.accumulate_notify(1, MpiOp::Sum, client, 0, REQ_CREDIT_TAG)?;
                self.ep.trace_flow_consume(EventKind::RmcRecv, client, t0, rec.flow, rec.bytes);
                return Ok(Some(RpcRequest { client, corr, data }));
            }
        }
        Ok(None)
    }

    /// Block until a request arrives (bounded; a starved server panics
    /// like a starved `wait_notify` rather than hang silently).
    pub fn recv(&mut self) -> Result<RpcRequest> {
        let mut spins = 0u64;
        loop {
            if let Some(req) = self.try_recv()? {
                return Ok(req);
            }
            // Model checker: a server with an empty ring is blocked, not
            // spinning — park until a client posts something.
            if self.ep.mc_poll_my_ring("rpc-recv") {
                continue;
            }
            spins += 1;
            assert!(spins <= SPIN_LIMIT, "rpc server starved: no request arrived");
            std::thread::yield_now();
        }
    }

    /// Send `rep` as the reply to `req`. Blocks on the client's
    /// reply-slot credits when its ring is full.
    pub fn reply(&mut self, req: &RpcRequest, rep: &[u8]) -> Result<()> {
        assert!(rep.len() <= self.slot_bytes, "reply exceeds the rpc slot size");
        let i = self.client_index(req.client)?;
        if self.rep_credits[i] == 0 {
            while self.win.test_notify(req.client, REP_CREDIT_TAG)?.is_some() {
                self.rep_credits[i] += 1;
            }
            if self.rep_credits[i] == 0 {
                self.win.wait_notify(req.client, REP_CREDIT_TAG)?;
                self.rep_credits[i] += 1;
            }
        }
        // Slot-reuse fence for the reply ring (same rule as the client's
        // request ring).
        if req.corr >= self.flushed_at[i] + self.slots as u64 {
            self.win.flush(req.client)?;
            self.flushed_at[i] = req.corr;
        }
        let t0 = self.ep.clock().now();
        let slot = (req.corr % self.slots as u64) as usize;
        let prev = self.ep.flow_open();
        let r = self.win.put_notify(
            rep,
            req.client,
            8 + slot * self.slot_bytes,
            REP_TAG_BASE | (req.corr as u32 & 0xFFFF),
        );
        let flow = self.ep.current_flow();
        self.ep.flow_close(prev);
        r?;
        self.rep_credits[i] -= 1;
        self.ep.trace_flow_consume(EventKind::RmcSend, req.client, t0, flow, rep.len() as u64);
        Ok(())
    }

    /// Tear down this end (collective with every other end's `close`).
    pub fn close(self, ctx: &RankCtx) -> Result<()> {
        self.win.unlock_all()?;
        self.win.free(ctx);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_runtime::Universe;

    fn cfg(slots: usize, budget: usize) -> RmcConfig {
        RmcConfig { slots, slot_bytes: 32, rpc_budget: budget, ..RmcConfig::default() }
    }

    #[test]
    fn request_response_round_trips_from_many_clients() {
        const CALLS: u64 = 8;
        let p = 4usize;
        let got = Universe::new(p).node_size(1).notify_depth(128).run(move |ctx| {
            let clients: Vec<u32> = (1..p as u32).collect();
            let n_clients = clients.len() as u64;
            match rpc(ctx, 0, &clients, &cfg(4, 4)).unwrap().unwrap() {
                RpcEnd::Server(mut srv) => {
                    for _ in 0..CALLS * n_clients {
                        let req = srv.recv().unwrap();
                        let v = u64::from_le_bytes(req.data[..8].try_into().unwrap());
                        srv.reply(&req, &(v * 3).to_le_bytes()).unwrap();
                    }
                    ctx.barrier();
                    srv.close(ctx).unwrap();
                    CALLS * n_clients
                }
                RpcEnd::Client(mut cl) => {
                    let mut ok = 0u64;
                    let mut buf = [0u8; 32];
                    for i in 0..CALLS {
                        let x = (u64::from(ctx.rank()) << 16) | i;
                        let n = cl.call(&x.to_le_bytes(), &mut buf).unwrap();
                        assert_eq!(n, 8);
                        if u64::from_le_bytes(buf[..8].try_into().unwrap()) == x * 3 {
                            ok += 1;
                        }
                    }
                    ctx.barrier();
                    cl.close(ctx).unwrap();
                    ok
                }
            }
        });
        assert_eq!(got, vec![CALLS * 3, CALLS, CALLS, CALLS]);
    }

    #[test]
    fn out_of_order_waits_match_by_correlation_tag() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            match rpc(ctx, 0, &[1], &cfg(4, 4)).unwrap().unwrap() {
                RpcEnd::Server(mut srv) => {
                    // Echo each request's own payload back.
                    for _ in 0..3 {
                        let req = srv.recv().unwrap();
                        srv.reply(&req, &req.data.clone()).unwrap();
                    }
                    ctx.barrier();
                    srv.close(ctx).unwrap();
                    Vec::new()
                }
                RpcEnd::Client(mut cl) => {
                    let c0 = cl.call_async(b"aaaa").unwrap();
                    let c1 = cl.call_async(b"bbbb").unwrap();
                    let c2 = cl.call_async(b"cccc").unwrap();
                    assert_eq!(cl.outstanding(), 3);
                    let mut buf = [0u8; 32];
                    // Await newest first: correlation tags must match the
                    // right replies regardless of order.
                    let mut out = Vec::new();
                    for c in [c2, c0, c1] {
                        let n = cl.wait_reply(c, &mut buf).unwrap();
                        out.push(buf[..n].to_vec());
                    }
                    assert_eq!(cl.outstanding(), 0);
                    ctx.barrier();
                    cl.close(ctx).unwrap();
                    out
                }
            }
        });
        assert_eq!(got[1], vec![b"cccc".to_vec(), b"aaaa".to_vec(), b"bbbb".to_vec()]);
    }

    #[test]
    fn outstanding_budget_is_a_transient_error() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            match rpc(ctx, 0, &[1], &cfg(8, 2)).unwrap().unwrap() {
                RpcEnd::Server(mut srv) => {
                    for _ in 0..2 {
                        let req = srv.recv().unwrap();
                        srv.reply(&req, b"ok").unwrap();
                    }
                    ctx.barrier();
                    srv.close(ctx).unwrap();
                    true
                }
                RpcEnd::Client(mut cl) => {
                    let a = cl.call_async(b"x").unwrap();
                    let b = cl.call_async(b"y").unwrap();
                    let err = cl.call_async(b"z").unwrap_err();
                    assert!(err.is_transient(), "budget exhaustion must be retryable: {err}");
                    let mut buf = [0u8; 32];
                    cl.wait_reply(a, &mut buf).unwrap();
                    cl.wait_reply(b, &mut buf).unwrap();
                    ctx.barrier();
                    cl.close(ctx).unwrap();
                    true
                }
            }
        });
        assert!(got.iter().all(|&b| b));
    }

    #[test]
    fn late_reply_times_out_deterministically() {
        // The server stalls (virtual time) before replying: the reply's
        // stamp lands past the client's deadline, so the wait must
        // surface a transient timeout — and a fresh call on the same
        // endpoint must still work (the late reply's slot recycled).
        let run = || {
            Universe::new(2).node_size(1).seed(7).run(|ctx| {
                let mut c = cfg(4, 4);
                c.rpc_timeout_ns = 100_000; // 100 µs virtual deadline
                match rpc(ctx, 0, &[1], &c).unwrap().unwrap() {
                    RpcEnd::Server(mut srv) => {
                        let req = srv.recv().unwrap();
                        ctx.ep().charge(1_000_000.0); // 1 ms stall
                        srv.reply(&req, b"late").unwrap();
                        let req = srv.recv().unwrap();
                        srv.reply(&req, b"fast").unwrap();
                        ctx.barrier();
                        srv.close(ctx).unwrap();
                        0
                    }
                    RpcEnd::Client(mut cl) => {
                        let mut buf = [0u8; 32];
                        let err = cl.call(b"one", &mut buf).unwrap_err();
                        assert!(err.is_transient(), "timeout must be retryable: {err}");
                        assert_eq!(cl.outstanding(), 0, "a timed-out call is not outstanding");
                        let n = cl.call(b"two", &mut buf).unwrap();
                        assert_eq!(&buf[..n], b"fast");
                        ctx.barrier();
                        cl.close(ctx).unwrap();
                        ctx.now().to_bits()
                    }
                }
            })
        };
        assert_eq!(run(), run(), "the timeout verdict must be schedule-independent");
    }

    #[test]
    fn third_party_ranks_pass_through() {
        let got =
            Universe::new(4).node_size(2).run(|ctx| match rpc(ctx, 2, &[0], &cfg(2, 2)).unwrap() {
                Some(RpcEnd::Server(mut srv)) => {
                    let req = srv.recv().unwrap();
                    srv.reply(&req, b"pong").unwrap();
                    srv.close(ctx).unwrap();
                    1u8
                }
                Some(RpcEnd::Client(mut cl)) => {
                    let mut buf = [0u8; 32];
                    let n = cl.call(b"ping", &mut buf).unwrap();
                    assert_eq!(&buf[..n], b"pong");
                    cl.close(ctx).unwrap();
                    2u8
                }
                None => 0u8,
            });
        assert_eq!(got, vec![2, 0, 1, 0]);
    }
}
