//! End-to-end acceptance: fan-in, fan-out, mesh and RPC at 64 ranks,
//! race checker panicking, all six fault classes armed.
//!
//! This is the scale point the subsystem is sized for — 63 producers
//! hammering one consumer's credit pad, one publisher pacing 63
//! subscriber rings, and a served RPC rank taking calls from a whole
//! cabinet — with the fault layer injecting jitter, spikes, delayed
//! completions, backpressure (including rejected issues), rank pauses
//! and transient registration failures, and `FOMPI_RACECHECK=panic`
//! semantics turning any shadow-memory flag into an abort.

use fompi_fabric::{FaultPlan, RacecheckMode};
use fompi_rmc::{fanin, fanout, mesh, rpc, FaninEnd, FanoutEnd, LaggingPolicy, RmcConfig, RpcEnd};
use fompi_runtime::Universe;

const P: usize = 64;
const MSGS: usize = 4;
const BYTES: usize = 32;

fn payload(source: u32, seq: usize) -> [u8; BYTES] {
    let mut b = [0u8; BYTES];
    b[..8].copy_from_slice(&(((source as u64) << 32) | seq as u64 | 1 << 63).to_le_bytes());
    b
}

#[test]
fn sixty_four_ranks_end_to_end_racecheck_clean_under_all_fault_classes() {
    let rc = RacecheckMode::Panic;
    let (_, fabric) = Universe::new(P)
        .node_size(8)
        .seed(64)
        .faults(FaultPlan::heavy(0))
        .racecheck(rc)
        .notify_depth(1024)
        .launch(|ctx| {
            let me = ctx.rank();

            // Phase 1: fan-in — every other rank streams into rank 0.
            let producers: Vec<u32> = (1..P as u32).collect();
            match fanin(ctx, 0, &producers, 2, BYTES).unwrap() {
                Some(FaninEnd::Producer(mut tx)) => {
                    for seq in 0..MSGS {
                        tx.send(&payload(me, seq)).unwrap();
                    }
                    ctx.barrier();
                    tx.close(ctx).unwrap();
                }
                Some(FaninEnd::Consumer(mut rx)) => {
                    let mut buf = [0u8; BYTES];
                    let mut next = vec![0usize; P];
                    for _ in 0..(P - 1) * MSGS {
                        let (src, len) = rx.recv(&mut buf).unwrap();
                        assert_eq!(len, BYTES);
                        let seq = next[src as usize];
                        assert_eq!(buf, payload(src, seq), "fan-in reorder from {src}");
                        next[src as usize] = seq + 1;
                    }
                    assert!(rx.try_recv(&mut buf).unwrap().is_none(), "consumer not dry");
                    ctx.barrier();
                    rx.close(ctx).unwrap();
                }
                None => unreachable!(),
            }

            // Phase 2: fan-out — rank 0 multicasts to all 63 subscribers.
            match fanout(ctx, 0, &producers, 2, BYTES, LaggingPolicy::Block).unwrap() {
                Some(FanoutEnd::Publisher(mut tx)) => {
                    for seq in 0..MSGS {
                        assert_eq!(tx.publish(&payload(0, seq)).unwrap(), P - 1);
                    }
                    assert_eq!(tx.dropped_total(), 0);
                    ctx.barrier();
                    tx.close(ctx).unwrap();
                }
                Some(FanoutEnd::Subscriber(mut rx)) => {
                    let mut buf = [0u8; BYTES];
                    for seq in 0..MSGS {
                        assert_eq!(rx.recv(&mut buf).unwrap(), BYTES);
                        assert_eq!(buf, payload(0, seq), "multicast reorder at {me}");
                    }
                    ctx.barrier();
                    rx.close(ctx).unwrap();
                }
                None => unreachable!(),
            }

            // Phase 3: mesh — every rank exchanges with its two ring
            // neighbours, then drains dry and lazily returns credits.
            let cfg = RmcConfig { slots: 4, slot_bytes: BYTES, ..RmcConfig::default() };
            let mut m = mesh(ctx, &cfg).unwrap();
            let targets = [(me + 1) % P as u32, (me + P as u32 - 1) % P as u32];
            for seq in 0..MSGS {
                for &t in &targets {
                    m.send(t, &payload(me, seq)).unwrap();
                }
            }
            let mut buf = [0u8; BYTES];
            let mut next = vec![0usize; P];
            for _ in 0..2 * MSGS {
                let (src, len) = m.recv(&mut buf).unwrap();
                assert_eq!(len, BYTES);
                assert!(targets.contains(&src), "mesh message from non-neighbour {src}");
                let seq = next[src as usize];
                assert_eq!(buf, payload(src, seq), "mesh reorder from {src}");
                next[src as usize] = seq + 1;
            }
            assert!(m.try_recv(&mut buf).unwrap().is_none(), "mesh not dry");
            m.flush_credits().unwrap();
            ctx.barrier();
            m.close(ctx).unwrap();

            // Phase 4: RPC — rank 0 serves calls from every other rank.
            let cfg = RmcConfig { slots: 2, slot_bytes: BYTES, ..RmcConfig::default() };
            match rpc(ctx, 0, &producers, &cfg).unwrap() {
                Some(RpcEnd::Server(mut srv)) => {
                    for _ in 0..(P - 1) * 2 {
                        let req = srv.recv().unwrap();
                        let mut rep = req.data.clone();
                        rep.iter_mut().for_each(|b| *b = b.wrapping_add(1));
                        srv.reply(&req, &rep).unwrap();
                    }
                    ctx.barrier();
                    srv.close(ctx).unwrap();
                }
                Some(RpcEnd::Client(mut cl)) => {
                    let mut buf = [0u8; BYTES];
                    for seq in 0..2 {
                        let req = payload(me, seq);
                        assert_eq!(cl.call(&req, &mut buf).unwrap(), BYTES);
                        let mut want = req;
                        want.iter_mut().for_each(|b| *b = b.wrapping_add(1));
                        assert_eq!(buf, want, "rpc reply corrupted at {me}");
                    }
                    ctx.barrier();
                    cl.close(ctx).unwrap();
                }
                None => unreachable!(),
            }
            ctx.barrier();
        });
    assert!(fabric.faults().total_injected() > 0, "heavy plan must inject");
    assert_eq!(fabric.shadow().total_flagged(), 0, "rmc must be racecheck-clean");
}
