//! MIMD Lattice Computation proxy (§4.4, Figure 8).
//!
//! MILC's su3_rmd spends its time in a conjugate-gradient solver over a
//! 4-dimensional lattice, communicating with all 8 neighbours (±x ±y ±z ±t)
//! every iteration plus global allreductions for the CG dot products. This
//! proxy keeps exactly that structure — 4-D domain decomposition,
//! pack/exchange/unpack of 8 halo faces per stencil application, two dot
//! products per iteration — over a 3-complex vector field per site, with an
//! SPD Laplacian-like operator so CG provably converges.
//!
//! Communication backends follow the paper:
//!
//! * **MPI-1**: nonblocking isend/irecv of packed faces + waitall (the
//!   original MILC scheme);
//! * **foMPI RMA**: the UPC port's scheme rebuilt on MPI-3 — data lands in
//!   the neighbour's window via `MPI_Put`, a flag is raised with
//!   `MPI_Fetch_and_op`, all inside one `lock_all` epoch with
//!   `MPI_Win_flush`; receivers spin on monotonic per-face iteration
//!   counters (no resets, no races);
//! * **UPC**: notify with `aadd`, peers `upc_memget_nb` from the source's
//!   send buffer and fence.
//!
//! All backends execute identical local arithmetic; the RMA and UPC
//! variants share the tuned collective for dot products and must agree
//! bitwise, while MPI-1 reduces in tree order (equal up to FP
//! reassociation).

// Lattice code indexes parallel per-dimension arrays (halo faces, face
// buffers, neighbour ranks) by the dimension number d ∈ 0..4; iterator
// rewrites hide that symmetry.
#![allow(clippy::needless_range_loop)]

use fompi::{MpiOp, NumKind, Win};
use fompi_msg::Comm;
use fompi_pgas::SharedArray;
use fompi_runtime::RankCtx;

/// Values per lattice site (3 complex = 6 f64, an su3 vector).
pub const SITE_F64: usize = 6;

/// Mass-squared term of the Wilson-like operator `(8 + m²)·x − Σ x_neib`.
/// Without it the operator has the constant vector in its null space and CG
/// stalls — exactly why lattice QCD solvers carry a mass term.
pub const MASS2: f64 = 1.0;

/// Problem description.
#[derive(Debug, Clone, Copy)]
pub struct MilcConfig {
    /// Local lattice dims [x, y, z, t] — the paper uses 4³×8 per process.
    pub local: [usize; 4],
    /// CG iterations to run.
    pub iters: usize,
    /// RNG seed for the right-hand side.
    pub seed: u64,
}

impl Default for MilcConfig {
    fn default() -> Self {
        Self { local: [4, 4, 4, 8], iters: 8, seed: 77 }
    }
}

/// Per-rank outcome.
#[derive(Debug, Clone)]
pub struct MilcResult {
    /// Virtual ns for the CG loop.
    pub time_ns: f64,
    /// Residual norm after each iteration (identical on all ranks and
    /// across backends).
    pub residuals: Vec<f64>,
}

/// Factor `p` into a 4-D process grid, greedily balancing dimensions.
pub fn grid_dims(p: usize) -> [usize; 4] {
    let mut dims = [1usize; 4];
    let mut rest = p;
    let mut f = 2;
    let mut factors = Vec::new();
    while rest > 1 {
        while rest.is_multiple_of(f) {
            factors.push(f);
            rest /= f;
        }
        f += 1;
    }
    // Largest factors first onto the smallest dimension.
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let i = (0..4).min_by_key(|&i| dims[i]).unwrap();
        dims[i] *= f;
    }
    dims
}

fn rank_coords(rank: usize, dims: &[usize; 4]) -> [usize; 4] {
    let mut c = [0; 4];
    let mut r = rank;
    for d in 0..4 {
        c[d] = r % dims[d];
        r /= dims[d];
    }
    c
}

fn coords_rank(c: &[usize; 4], dims: &[usize; 4]) -> usize {
    ((c[3] * dims[2] + c[2]) * dims[1] + c[1]) * dims[0] + c[0]
}

/// The lattice geometry and face packing for one rank.
pub struct Lattice {
    local: [usize; 4],
    dims: [usize; 4],
    coords: [usize; 4],
    vol: usize,
}

impl Lattice {
    /// Build for `rank` of `p`.
    pub fn new(rank: usize, p: usize, cfg: &MilcConfig) -> Lattice {
        let dims = grid_dims(p);
        Lattice {
            local: cfg.local,
            dims,
            coords: rank_coords(rank, &dims),
            vol: cfg.local.iter().product(),
        }
    }

    /// Local site count.
    pub fn volume(&self) -> usize {
        self.vol
    }

    /// Sites on the face normal to dim `d`.
    pub fn face_sites(&self, d: usize) -> usize {
        self.vol / self.local[d]
    }

    fn site_index(&self, c: &[usize; 4]) -> usize {
        ((c[3] * self.local[2] + c[2]) * self.local[1] + c[1]) * self.local[0] + c[0]
    }

    /// Neighbour rank in dim `d`, direction `up` (periodic).
    pub fn neighbor(&self, d: usize, up: bool) -> usize {
        let mut c = self.coords;
        let n = self.dims[d];
        c[d] = if up { (c[d] + 1) % n } else { (c[d] + n - 1) % n };
        coords_rank(&c, &self.dims)
    }

    /// Iterate the sites of the face at `d`, boundary side `hi`
    /// (coordinate = L-1 when hi else 0), in canonical order.
    fn face_iter(&self, d: usize, hi: bool) -> Vec<usize> {
        let mut sites = Vec::with_capacity(self.face_sites(d));
        let mut c = [0usize; 4];
        let fixed = if hi { self.local[d] - 1 } else { 0 };
        // Iterate remaining dims in order.
        let others: Vec<usize> = (0..4).filter(|&x| x != d).collect();
        let counts: Vec<usize> = others.iter().map(|&x| self.local[x]).collect();
        let total: usize = counts.iter().product();
        for mut idx in 0..total {
            for (k, &o) in others.iter().enumerate() {
                c[o] = idx % counts[k];
                idx /= counts[k];
            }
            c[d] = fixed;
            sites.push(self.site_index(&c));
        }
        sites
    }

    /// Pack the face data (f64 LE bytes) that travels `up` in dim `d`.
    pub fn pack_face(&self, field: &[f64], d: usize, up: bool) -> Vec<u8> {
        let sites = self.face_iter(d, up);
        let mut out = Vec::with_capacity(sites.len() * SITE_F64 * 8);
        for s in sites {
            for k in 0..SITE_F64 {
                out.extend_from_slice(&field[s * SITE_F64 + k].to_le_bytes());
            }
        }
        out
    }

    /// Decode a received face buffer.
    pub fn decode_face(bytes: &[u8]) -> Vec<f64> {
        bytes.chunks_exact(8).map(|b| f64::from_le_bytes(b.try_into().unwrap())).collect()
    }

    /// Apply the SPD stencil: `out = (8+m²)·x − Σ neighbours`, using `halo[d][side]`
    /// for off-rank neighbours. `halo[d][0]` holds the face received from
    /// the *down* neighbour (our x at coord −1), `halo[d][1]` from up.
    /// Charges su3-like flops.
    pub fn apply_stencil(
        &self,
        ctx: &RankCtx,
        x: &[f64],
        halo: &[[Vec<f64>; 2]; 4],
        out: &mut [f64],
    ) {
        let l = self.local;
        // Precompute face orderings for halo lookup.
        let face_pos: Vec<[std::collections::HashMap<usize, usize>; 2]> = (0..4)
            .map(|d| {
                let lo: std::collections::HashMap<usize, usize> =
                    self.face_iter(d, false).into_iter().enumerate().map(|(i, s)| (s, i)).collect();
                let hi: std::collections::HashMap<usize, usize> =
                    self.face_iter(d, true).into_iter().enumerate().map(|(i, s)| (s, i)).collect();
                [lo, hi]
            })
            .collect();
        for ct in 0..l[3] {
            for cz in 0..l[2] {
                for cy in 0..l[1] {
                    for cx in 0..l[0] {
                        let c = [cx, cy, cz, ct];
                        let s = self.site_index(&c);
                        for k in 0..SITE_F64 {
                            let mut acc = (8.0 + MASS2) * x[s * SITE_F64 + k];
                            for d in 0..4 {
                                // Up neighbour.
                                if c[d] + 1 < l[d] {
                                    let mut cn = c;
                                    cn[d] += 1;
                                    acc -= x[self.site_index(&cn) * SITE_F64 + k];
                                } else {
                                    // Comes from the up halo: our hi face
                                    // position indexes the neighbour's lo
                                    // face (same canonical order).
                                    let fi = face_pos[d][1][&s];
                                    acc -= halo[d][1][fi * SITE_F64 + k];
                                }
                                // Down neighbour.
                                if c[d] > 0 {
                                    let mut cn = c;
                                    cn[d] -= 1;
                                    acc -= x[self.site_index(&cn) * SITE_F64 + k];
                                } else {
                                    let fi = face_pos[d][0][&s];
                                    acc -= halo[d][0][fi * SITE_F64 + k];
                                }
                            }
                            out[s * SITE_F64 + k] = acc;
                        }
                    }
                }
            }
        }
        // su3_rmd does ~72 flops per site per direction; charge the full
        // matrix-vector work.
        ctx.ep().charge_flops(self.vol as f64 * 8.0 * 72.0);
    }
}

/// Halo exchange backends: given the field, produce `halo[d][side]` for the
/// stencil (side 0 = from down neighbour, 1 = from up neighbour).
pub trait HaloExchange {
    /// Exchange all 8 faces of `field` for iteration `iter`.
    fn exchange(
        &mut self,
        ctx: &RankCtx,
        lat: &Lattice,
        field: &[f64],
        iter: usize,
    ) -> [[Vec<f64>; 2]; 4];
}

/// MPI-1 backend: 8 isend/irecv pairs + waitall.
pub struct Mpi1Halo<'c> {
    /// The communicator.
    pub comm: &'c Comm,
}

const MILC_TAG: u32 = 0x111C_0000;

impl HaloExchange for Mpi1Halo<'_> {
    fn exchange(
        &mut self,
        ctx: &RankCtx,
        lat: &Lattice,
        field: &[f64],
        iter: usize,
    ) -> [[Vec<f64>; 2]; 4] {
        let _ = ctx;
        let tag = MILC_TAG + (iter as u32 % 16) * 8;
        let mut halo: [[Vec<f64>; 2]; 4] = std::array::from_fn(|_| [Vec::new(), Vec::new()]);
        for d in 0..4 {
            let fb = lat.face_sites(d) * SITE_F64 * 8;
            let up = lat.neighbor(d, true) as u32;
            let down = lat.neighbor(d, false) as u32;
            // Send our hi face up (it becomes their lo halo? no: their
            // *down* halo is data from their down neighbour's hi face).
            let hi_face = lat.pack_face(field, d, true);
            let lo_face = lat.pack_face(field, d, false);
            let mut from_down = vec![0u8; fb];
            let mut from_up = vec![0u8; fb];
            // hi face → up neighbour (arrives as their halo[d][0]);
            // lo face → down neighbour (arrives as their halo[d][1]).
            let r1 = self.comm.irecv(&mut from_down, down, tag + d as u32).unwrap();
            let r2 = self.comm.irecv(&mut from_up, up, tag + 4 + d as u32).unwrap();
            self.comm.isend(&hi_face, up, tag + d as u32).unwrap().wait(self.comm.ep());
            self.comm.isend(&lo_face, down, tag + 4 + d as u32).unwrap().wait(self.comm.ep());
            r1.wait(self.comm.ep());
            r2.wait(self.comm.ep());
            halo[d][0] = Lattice::decode_face(&from_down);
            halo[d][1] = Lattice::decode_face(&from_up);
        }
        halo
    }
}

/// foMPI RMA backend: put + fetch_and_op notify inside a lock_all epoch.
pub struct RmaHalo {
    /// Window holding halo landing zones + 8 iteration counters.
    pub win: Win,
    face_bytes: [usize; 4],
}

impl RmaHalo {
    /// Window layout: 8 counters (64 B) then the 8 face landing zones
    /// (d-major, lo then hi).
    pub fn new(ctx: &RankCtx, cfg: &MilcConfig) -> RmaHalo {
        let lat = Lattice::new(ctx.rank() as usize, ctx.size(), cfg);
        let mut face_bytes = [0usize; 4];
        let mut total = 64;
        for d in 0..4 {
            face_bytes[d] = lat.face_sites(d) * SITE_F64 * 8;
            total += 2 * face_bytes[d];
        }
        let win = Win::allocate(ctx, total, 1).expect("milc window");
        win.lock_all().expect("milc lock_all");
        RmaHalo { win, face_bytes }
    }

    fn zone_off(&self, d: usize, side: usize) -> usize {
        let mut off = 64;
        for dd in 0..d {
            off += 2 * self.face_bytes[dd];
        }
        off + side * self.face_bytes[d]
    }

    /// Release the epoch (call before dropping).
    pub fn finish(self) {
        self.win.unlock_all().expect("milc unlock_all");
    }
}

impl HaloExchange for RmaHalo {
    fn exchange(
        &mut self,
        ctx: &RankCtx,
        lat: &Lattice,
        field: &[f64],
        iter: usize,
    ) -> [[Vec<f64>; 2]; 4] {
        let want = (iter + 1) as u64;
        let memcpy = ctx.fabric().model().memcpy_byte_ns;
        for d in 0..4 {
            let up = lat.neighbor(d, true) as u32;
            let down = lat.neighbor(d, false) as u32;
            let hi_face = lat.pack_face(field, d, true);
            let lo_face = lat.pack_face(field, d, false);
            // Packing into the communication buffer costs a copy.
            ctx.ep().charge(memcpy * (hi_face.len() + lo_face.len()) as f64);
            // Our hi face lands in the up neighbour's lo zone, and vice
            // versa.
            self.win.put(&hi_face, up, self.zone_off(d, 0)).expect("halo put");
            self.win.put(&lo_face, down, self.zone_off(d, 1)).expect("halo put");
        }
        // One flush, then notify all 8 neighbours with monotonic counters.
        self.win.flush_all().expect("halo flush");
        let one = 1u64.to_le_bytes();
        let mut old = [0u8; 8];
        for d in 0..4 {
            let up = lat.neighbor(d, true) as u32;
            let down = lat.neighbor(d, false) as u32;
            // Counter slot 2d   = "lo zone filled" (written by down's hi),
            // counter slot 2d+1 = "hi zone filled".
            self.win
                .fetch_and_op(&one, &mut old, NumKind::U64, MpiOp::Sum, up, (2 * d) * 8)
                .expect("notify");
            self.win
                .fetch_and_op(&one, &mut old, NumKind::U64, MpiOp::Sum, down, (2 * d + 1) * 8)
                .expect("notify");
        }
        // Wait for all 8 of our own flags to reach this iteration's count.
        let mut halo: [[Vec<f64>; 2]; 4] = std::array::from_fn(|_| [Vec::new(), Vec::new()]);
        for d in 0..4 {
            for side in 0..2 {
                let mut spins = 0u64;
                loop {
                    let mut cur = [0u8; 8];
                    self.win
                        .fetch_and_op(
                            &[],
                            &mut cur,
                            NumKind::U64,
                            MpiOp::NoOp,
                            ctx.rank(),
                            (2 * d + side) * 8,
                        )
                        .expect("flag read");
                    if u64::from_le_bytes(cur) >= want {
                        break;
                    }
                    spins += 1;
                    assert!(spins < 200_000_000, "milc halo deadlock");
                    std::thread::yield_now();
                }
                let mut bytes = vec![0u8; self.face_bytes[d]];
                self.win.read_local(self.zone_off(d, side), &mut bytes);
                halo[d][side] = Lattice::decode_face(&bytes);
            }
        }
        halo
    }
}

/// UPC backend: write to own send buffer, `aadd` the neighbour's flag,
/// peers `memget_nb` + fence.
pub struct UpcHalo {
    arr: SharedArray,
    face_bytes: [usize; 4],
}

impl UpcHalo {
    /// Chunk layout: 8 flags (64 B) then 8 send-face zones (d-major, lo/hi).
    pub fn new(ctx: &RankCtx, cfg: &MilcConfig) -> UpcHalo {
        let lat = Lattice::new(ctx.rank() as usize, ctx.size(), cfg);
        let mut face_bytes = [0usize; 4];
        let mut total = 64;
        for d in 0..4 {
            face_bytes[d] = lat.face_sites(d) * SITE_F64 * 8;
            total += 2 * face_bytes[d];
        }
        UpcHalo { arr: SharedArray::all_alloc(ctx, total), face_bytes }
    }

    fn zone_off(&self, d: usize, side: usize) -> usize {
        let mut off = 64;
        for dd in 0..d {
            off += 2 * self.face_bytes[dd];
        }
        off + side * self.face_bytes[d]
    }
}

impl HaloExchange for UpcHalo {
    fn exchange(
        &mut self,
        ctx: &RankCtx,
        lat: &Lattice,
        field: &[f64],
        iter: usize,
    ) -> [[Vec<f64>; 2]; 4] {
        let want = (iter + 1) as u64;
        // Publish faces in our own chunk: zone (d, 0) = our lo face,
        // zone (d, 1) = our hi face.
        for d in 0..4 {
            let lo = lat.pack_face(field, d, false);
            let hi = lat.pack_face(field, d, true);
            self.arr.write_local(self.zone_off(d, 0), &lo);
            self.arr.write_local(self.zone_off(d, 1), &hi);
        }
        self.arr.fence();
        // Notify: tell each neighbour its source data is ready.
        for d in 0..4 {
            let up = lat.neighbor(d, true) as u32;
            let down = lat.neighbor(d, false) as u32;
            self.arr.aadd(up, (2 * d) * 8, 1);
            self.arr.aadd(down, (2 * d + 1) * 8, 1);
        }
        // Wait + pull.
        let mut halo: [[Vec<f64>; 2]; 4] = std::array::from_fn(|_| [Vec::new(), Vec::new()]);
        for d in 0..4 {
            let up = lat.neighbor(d, true) as u32;
            let down = lat.neighbor(d, false) as u32;
            for (side, (peer, zone)) in [(down, 1usize), (up, 0usize)].into_iter().enumerate() {
                let mut spins = 0u64;
                loop {
                    if self.arr.aadd(ctx.rank(), (2 * d + side) * 8, 0) >= want {
                        break;
                    }
                    spins += 1;
                    assert!(spins < 200_000_000, "upc halo deadlock");
                    std::thread::yield_now();
                }
                // side 0: data from down neighbour = its hi face (zone 1);
                // side 1: data from up neighbour = its lo face (zone 0).
                let mut bytes = vec![0u8; self.face_bytes[d]];
                self.arr.memget_nb(&mut bytes, peer, self.zone_off(d, zone));
                self.arr.fence();
                halo[d][side] = Lattice::decode_face(&bytes);
            }
        }
        halo
    }
}

/// Zero-copy RMA halo backend (the §4.4 remark: "one could use MPI
/// datatypes to communicate the data directly from the application buffers
/// resulting in additional performance gains", cf. Hoefler & Gottlieb's
/// zero-copy datatype schemes). Faces are described as 5-D subarray
/// datatypes over the field and shipped with `put_typed` — no pack/unpack
/// copies; the fabric issues one operation per contiguous block instead.
///
/// The trade-off this ablation exposes: the t-face is one contiguous block
/// (typed wins — no copy, one put), while the x-face shatters into
/// `ly·lz·lt` tiny blocks (typed loses — per-block injection beats the
/// memcpy it saved). Exactly the crossover studied in the paper's reference \[13\].
pub struct RmaTypedHalo {
    /// Window with counters + landing zones (same layout as [`RmaHalo`]).
    pub win: Win,
    face_bytes: [usize; 4],
    /// Face datatypes, `[d][side]`, side 0 = lo face, 1 = hi face.
    face_ty: Vec<[fompi::DataType; 2]>,
}

impl RmaTypedHalo {
    /// Build the window and the face subarray types.
    pub fn new(ctx: &RankCtx, cfg: &MilcConfig) -> RmaTypedHalo {
        let lat = Lattice::new(ctx.rank() as usize, ctx.size(), cfg);
        let l = cfg.local;
        let mut face_bytes = [0usize; 4];
        let mut total = 64;
        for d in 0..4 {
            face_bytes[d] = lat.face_sites(d) * SITE_F64 * 8;
            total += 2 * face_bytes[d];
        }
        // Field as a 5-D byte array, axes outer→inner: [t][z][y][x][site].
        let sizes = [l[3], l[2], l[1], l[0], SITE_F64 * 8];
        // Lattice dim d maps to array axis: x→3, y→2, z→1, t→0.
        let axis_of = [3usize, 2, 1, 0];
        let face_ty = (0..4)
            .map(|d| {
                let a = axis_of[d];
                let mk = |hi: bool| {
                    let mut sub = sizes;
                    let mut start = [0usize; 5];
                    sub[a] = 1;
                    start[a] = if hi { sizes[a] - 1 } else { 0 };
                    fompi::DataType::subarray(&sizes, &sub, &start, fompi::DataType::byte())
                };
                [mk(false), mk(true)]
            })
            .collect();
        let win = Win::allocate(ctx, total, 1).expect("milc typed window");
        win.lock_all().expect("milc typed lock_all");
        RmaTypedHalo { win, face_bytes, face_ty }
    }

    fn zone_off(&self, d: usize, side: usize) -> usize {
        let mut off = 64;
        for dd in 0..d {
            off += 2 * self.face_bytes[dd];
        }
        off + side * self.face_bytes[d]
    }

    /// Release the epoch.
    pub fn finish(self) {
        self.win.unlock_all().expect("milc typed unlock_all");
    }
}

impl HaloExchange for RmaTypedHalo {
    fn exchange(
        &mut self,
        ctx: &RankCtx,
        lat: &Lattice,
        field: &[f64],
        iter: usize,
    ) -> [[Vec<f64>; 2]; 4] {
        let want = (iter + 1) as u64;
        // One byte view of the field (the host-language copy is an artifact
        // of Rust slices; the *model* cost is only the typed puts — the
        // point of zero-copy).
        let bytes: Vec<u8> = field.iter().flat_map(|v| v.to_le_bytes()).collect();
        for d in 0..4 {
            let up = lat.neighbor(d, true) as u32;
            let down = lat.neighbor(d, false) as u32;
            let dense = fompi::DataType::contiguous(self.face_bytes[d], fompi::DataType::byte());
            // hi face → up neighbour's lo zone; lo face → down's hi zone.
            self.win
                .put_typed(&bytes, 1, &self.face_ty[d][1], up, self.zone_off(d, 0), 1, &dense)
                .expect("typed halo put");
            self.win
                .put_typed(&bytes, 1, &self.face_ty[d][0], down, self.zone_off(d, 1), 1, &dense)
                .expect("typed halo put");
        }
        self.win.flush_all().expect("typed halo flush");
        let one = 1u64.to_le_bytes();
        let mut old = [0u8; 8];
        for d in 0..4 {
            let up = lat.neighbor(d, true) as u32;
            let down = lat.neighbor(d, false) as u32;
            self.win
                .fetch_and_op(&one, &mut old, NumKind::U64, MpiOp::Sum, up, (2 * d) * 8)
                .expect("notify");
            self.win
                .fetch_and_op(&one, &mut old, NumKind::U64, MpiOp::Sum, down, (2 * d + 1) * 8)
                .expect("notify");
        }
        let mut halo: [[Vec<f64>; 2]; 4] = std::array::from_fn(|_| [Vec::new(), Vec::new()]);
        for d in 0..4 {
            for side in 0..2 {
                let mut spins = 0u64;
                loop {
                    let mut cur = [0u8; 8];
                    self.win
                        .fetch_and_op(
                            &[],
                            &mut cur,
                            NumKind::U64,
                            MpiOp::NoOp,
                            ctx.rank(),
                            (2 * d + side) * 8,
                        )
                        .expect("flag read");
                    if u64::from_le_bytes(cur) >= want {
                        break;
                    }
                    spins += 1;
                    assert!(spins < 200_000_000, "milc typed halo deadlock");
                    std::thread::yield_now();
                }
                let mut zb = vec![0u8; self.face_bytes[d]];
                self.win.read_local(self.zone_off(d, side), &mut zb);
                halo[d][side] = Lattice::decode_face(&zb);
            }
        }
        halo
    }
}

/// foMPI backend with zero-copy datatype halos (§4.4's suggested
/// optimisation).
pub fn run_rma_typed(ctx: &RankCtx, cfg: &MilcConfig) -> MilcResult {
    let halo = RmaTypedHalo::new(ctx, cfg);
    let res = run_cg(ctx, cfg, halo, |ctx, v| {
        ctx.coll().allreduce_f64(ctx.ep(), v, |a, b| a + b);
    });
    ctx.barrier();
    res
}

/// Notified-access halo backend: `put_signal` fuses the data transfer and
/// the flag update into one call (saving one injection + one AMO round
/// trip per face versus [`RmaHalo`]) and waiters spin on local counters.
pub struct NotifyHalo {
    /// Window with landing zones only (no separate flag words needed).
    pub win: Win,
    face_bytes: [usize; 4],
}

impl NotifyHalo {
    /// Window layout: the 8 face landing zones (d-major, lo then hi).
    pub fn new(ctx: &RankCtx, cfg: &MilcConfig) -> NotifyHalo {
        let lat = Lattice::new(ctx.rank() as usize, ctx.size(), cfg);
        let mut face_bytes = [0usize; 4];
        let mut total = 0;
        for d in 0..4 {
            face_bytes[d] = lat.face_sites(d) * SITE_F64 * 8;
            total += 2 * face_bytes[d];
        }
        let win = Win::allocate(ctx, total.max(8), 1).expect("milc notify window");
        win.lock_all().expect("milc notify lock_all");
        NotifyHalo { win, face_bytes }
    }

    fn zone_off(&self, d: usize, side: usize) -> usize {
        let mut off = 0;
        for dd in 0..d {
            off += 2 * self.face_bytes[dd];
        }
        off + side * self.face_bytes[d]
    }

    /// Release the epoch.
    pub fn finish(self) {
        self.win.unlock_all().expect("milc notify unlock_all");
    }
}

impl HaloExchange for NotifyHalo {
    fn exchange(
        &mut self,
        ctx: &RankCtx,
        lat: &Lattice,
        field: &[f64],
        iter: usize,
    ) -> [[Vec<f64>; 2]; 4] {
        let want = (iter + 1) as u64;
        let memcpy = ctx.fabric().model().memcpy_byte_ns;
        for d in 0..4 {
            let up = lat.neighbor(d, true) as u32;
            let down = lat.neighbor(d, false) as u32;
            let hi_face = lat.pack_face(field, d, true);
            let lo_face = lat.pack_face(field, d, false);
            ctx.ep().charge(memcpy * (hi_face.len() + lo_face.len()) as f64);
            // One fused call per face: data + notification (slot 2d for
            // the lo zone, 2d+1 for the hi zone, like RmaHalo's flags).
            self.win.put_signal(&hi_face, up, self.zone_off(d, 0), 2 * d).expect("notify halo put");
            self.win
                .put_signal(&lo_face, down, self.zone_off(d, 1), 2 * d + 1)
                .expect("notify halo put");
        }
        let mut halo: [[Vec<f64>; 2]; 4] = std::array::from_fn(|_| [Vec::new(), Vec::new()]);
        for d in 0..4 {
            for side in 0..2 {
                self.win.signal_wait(2 * d + side, want).expect("notify wait");
                let mut bytes = vec![0u8; self.face_bytes[d]];
                self.win.read_local(self.zone_off(d, side), &mut bytes);
                halo[d][side] = Lattice::decode_face(&bytes);
            }
        }
        halo
    }
}

/// foMPI backend with notified access (the foMPI-NA extension direction).
pub fn run_rma_notify(ctx: &RankCtx, cfg: &MilcConfig) -> MilcResult {
    let halo = NotifyHalo::new(ctx, cfg);
    let res = run_cg(ctx, cfg, halo, |ctx, v| {
        ctx.coll().allreduce_f64(ctx.ep(), v, |a, b| a + b);
    });
    ctx.barrier();
    res
}

/// Remote-memory-channel halo backend: the 8 faces ride an
/// [`fompi_rmc::mesh`] instead of a bespoke window. Each message carries
/// a one-byte zone header (`2·d + side` of the *receiver's* halo), so
/// faces from the same neighbour — or from *this rank itself* under
/// periodic wraparound in a size-1 or size-2 grid dimension — demultiplex
/// by content, not by landing address. Credits return in one batched
/// flush per iteration; the allreduce that follows every exchange keeps
/// iterations from overlapping, so 8 slots per ordered pair always
/// suffice.
pub struct RmcHalo {
    mesh: fompi_rmc::Mesh,
    face_bytes: [usize; 4],
}

impl RmcHalo {
    /// Build the mesh sized for the largest face plus the zone header.
    pub fn new(ctx: &RankCtx, cfg: &MilcConfig) -> RmcHalo {
        let lat = Lattice::new(ctx.rank() as usize, ctx.size(), cfg);
        let mut face_bytes = [0usize; 4];
        for d in 0..4 {
            face_bytes[d] = lat.face_sites(d) * SITE_F64 * 8;
        }
        let rc = fompi_rmc::RmcConfig {
            slots: 8,
            slot_bytes: 1 + face_bytes.iter().copied().max().unwrap(),
            ..Default::default()
        };
        RmcHalo { mesh: fompi_rmc::mesh(ctx, &rc).expect("milc mesh"), face_bytes }
    }

    /// Tear down the mesh (collective).
    pub fn finish(self, ctx: &RankCtx) {
        self.mesh.close(ctx).expect("milc mesh close");
    }
}

impl HaloExchange for RmcHalo {
    fn exchange(
        &mut self,
        ctx: &RankCtx,
        lat: &Lattice,
        field: &[f64],
        _iter: usize,
    ) -> [[Vec<f64>; 2]; 4] {
        let memcpy = ctx.fabric().model().memcpy_byte_ns;
        for d in 0..4 {
            let up = lat.neighbor(d, true) as u32;
            let down = lat.neighbor(d, false) as u32;
            let hi_face = lat.pack_face(field, d, true);
            let lo_face = lat.pack_face(field, d, false);
            ctx.ep().charge(memcpy * (hi_face.len() + lo_face.len()) as f64);
            // hi face → up neighbour's halo[d][0]; lo face → down's
            // halo[d][1]. The header byte names the destination zone.
            let mut msg = Vec::with_capacity(1 + hi_face.len());
            msg.push((2 * d) as u8);
            msg.extend_from_slice(&hi_face);
            self.mesh.send(up, &msg).expect("rmc halo send");
            msg.clear();
            msg.push((2 * d + 1) as u8);
            msg.extend_from_slice(&lo_face);
            self.mesh.send(down, &msg).expect("rmc halo send");
        }
        // Collect exactly our 8 zones; ordering within a pair is FIFO and
        // the post-exchange allreduce fences iterations apart.
        let mut halo: [[Vec<f64>; 2]; 4] = std::array::from_fn(|_| [Vec::new(), Vec::new()]);
        let mut buf = vec![0u8; 1 + self.face_bytes.iter().copied().max().unwrap()];
        let mut have = 0;
        while have < 8 {
            let (_, len) = self.mesh.recv(&mut buf).expect("rmc halo recv");
            let zone = buf[0] as usize;
            let (d, side) = (zone / 2, zone % 2);
            assert_eq!(len, 1 + self.face_bytes[d], "face size mismatch for zone {zone}");
            assert!(halo[d][side].is_empty(), "duplicate face for zone {zone}");
            halo[d][side] = Lattice::decode_face(&buf[1..len]);
            have += 1;
        }
        self.mesh.flush_credits().expect("rmc halo credits");
        halo
    }
}

/// foMPI backend with the halo exchange on remote memory channels.
pub fn run_rma_rmc(ctx: &RankCtx, cfg: &MilcConfig) -> MilcResult {
    let halo = RmcHalo::new(ctx, cfg);
    let res = run_cg(ctx, cfg, halo, |ctx, v| {
        ctx.coll().allreduce_f64(ctx.ep(), v, |a, b| a + b);
    });
    ctx.barrier();
    res
}

/// Deterministic right-hand side.
fn rhs(lat: &Lattice, cfg: &MilcConfig, rank: usize) -> Vec<f64> {
    (0..lat.volume() * SITE_F64)
        .map(|i| {
            let h = crate::splitmix64(cfg.seed ^ ((rank as u64) << 32) ^ i as u64);
            ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect()
}

/// Run `cfg.iters` CG iterations with the given halo backend and a dot
/// product reducer (message-based for MPI-1, tuned-collective for
/// RMA/PGAS).
pub fn run_cg(
    ctx: &RankCtx,
    cfg: &MilcConfig,
    mut halo: impl HaloExchange,
    allreduce: impl Fn(&RankCtx, &mut [f64]),
) -> MilcResult {
    let lat = Lattice::new(ctx.rank() as usize, ctx.size(), cfg);
    let nvals = lat.volume() * SITE_F64;
    let b = rhs(&lat, cfg, ctx.rank() as usize);
    let mut x = vec![0.0f64; nvals];
    let mut r = b.clone();
    let mut pvec = r.clone();
    let mut ax = vec![0.0f64; nvals];
    let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
    let mut residuals = Vec::with_capacity(cfg.iters);
    ctx.barrier();
    let t0 = ctx.now();
    let mut rr = [dot(&r, &r)];
    allreduce(ctx, &mut rr);
    for it in 0..cfg.iters {
        let h = halo.exchange(ctx, &lat, &pvec, it);
        lat.apply_stencil(ctx, &pvec, &h, &mut ax);
        ctx.ep().charge_flops(2.0 * nvals as f64); // dot
        let mut pap = [dot(&pvec, &ax)];
        allreduce(ctx, &mut pap);
        let alpha = rr[0] / pap[0];
        for i in 0..nvals {
            x[i] += alpha * pvec[i];
            r[i] -= alpha * ax[i];
        }
        ctx.ep().charge_flops(4.0 * nvals as f64);
        let mut rr_new = [dot(&r, &r)];
        allreduce(ctx, &mut rr_new);
        let beta = rr_new[0] / rr[0];
        for i in 0..nvals {
            pvec[i] = r[i] + beta * pvec[i];
        }
        ctx.ep().charge_flops(2.0 * nvals as f64);
        rr = rr_new;
        residuals.push(rr[0].sqrt());
    }
    ctx.barrier();
    MilcResult { time_ns: ctx.now() - t0, residuals }
}

/// Convenience wrappers for the three backends.
pub fn run_mpi1(ctx: &RankCtx, comm: &Comm, cfg: &MilcConfig) -> MilcResult {
    run_cg(ctx, cfg, Mpi1Halo { comm }, |_ctx, v| {
        // Message-based allreduce through the MPI-1 stack.
        comm.allreduce_f64(v, |a, b| a + b);
    })
}

/// foMPI backend entry point.
pub fn run_rma(ctx: &RankCtx, cfg: &MilcConfig) -> MilcResult {
    let halo = RmaHalo::new(ctx, cfg);
    let res = run_cg(ctx, cfg, halo, |ctx, v| {
        ctx.coll().allreduce_f64(ctx.ep(), v, |a, b| a + b);
    });
    ctx.barrier();
    res
}

/// UPC backend entry point.
pub fn run_upc(ctx: &RankCtx, cfg: &MilcConfig) -> MilcResult {
    let halo = UpcHalo::new(ctx, cfg);
    let res = run_cg(ctx, cfg, halo, |ctx, v| {
        ctx.coll().allreduce_f64(ctx.ep(), v, |a, b| a + b);
    });
    ctx.barrier();
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_msg::MsgEngine;
    use fompi_runtime::Universe;

    #[test]
    fn grid_dims_cover_p() {
        for p in [1, 2, 4, 6, 8, 12, 16, 64, 512] {
            let d = grid_dims(p);
            assert_eq!(d.iter().product::<usize>(), p, "p={p} dims={d:?}");
        }
    }

    #[test]
    fn neighbor_symmetry() {
        let cfg = MilcConfig::default();
        let p = 8;
        for rank in 0..p {
            let lat = Lattice::new(rank, p, &cfg);
            for d in 0..4 {
                let up = lat.neighbor(d, true);
                let back = Lattice::new(up, p, &cfg).neighbor(d, false);
                assert_eq!(back, rank, "rank {rank} dim {d}");
            }
        }
    }

    fn residuals_of(res: &[MilcResult]) -> Vec<f64> {
        res[0].residuals.clone()
    }

    #[test]
    fn cg_converges_mpi1() {
        let cfg = MilcConfig { local: [2, 2, 2, 2], iters: 6, seed: 5 };
        let p = 4;
        let engine = MsgEngine::new(p);
        let got = Universe::new(p).node_size(2).run(move |ctx| {
            let comm = Comm::attach(ctx, &engine);
            run_mpi1(ctx, &comm, &cfg)
        });
        let r = residuals_of(&got);
        assert!(r.last().unwrap() < &r[0], "CG must reduce the residual: {r:?}");
        // All ranks agree bit-for-bit.
        for other in &got[1..] {
            assert_eq!(other.residuals, r);
        }
    }

    #[test]
    fn all_backends_agree_bitwise() {
        let cfg = MilcConfig { local: [2, 2, 2, 2], iters: 5, seed: 9 };
        let p = 4;
        let engine = MsgEngine::new(p);
        let mpi = Universe::new(p).node_size(2).run(move |ctx| {
            let comm = Comm::attach(ctx, &engine);
            run_mpi1(ctx, &comm, &cfg)
        });
        let rma = Universe::new(p).node_size(2).run(move |ctx| run_rma(ctx, &cfg));
        let upc = Universe::new(p).node_size(2).run(move |ctx| run_upc(ctx, &cfg));
        // The MPI-1 dot products reduce in binomial-tree order while the
        // RMA/UPC variants use the tuned collective (sequential order), so
        // agreement is to floating-point reassociation, not bitwise.
        for (a, b) in mpi[0].residuals.iter().zip(&rma[0].residuals) {
            assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "MPI-1 vs RMA: {a} vs {b}");
        }
        for (a, b) in rma[0].residuals.iter().zip(&upc[0].residuals) {
            assert_eq!(a, b, "RMA vs UPC must match bitwise (same reduce order)");
        }
    }

    #[test]
    fn odd_process_grid_converges() {
        // p = 6 factors to a non-power-of-two 4-D grid; halo pairing and
        // the CG must still work.
        let cfg = MilcConfig { local: [2, 2, 2, 2], iters: 4, seed: 8 };
        let p = 6;
        let got = Universe::new(p).node_size(3).run(move |ctx| run_rma(ctx, &cfg));
        let r = &got[0].residuals;
        assert!(r.last().unwrap() < &r[0]);
        for other in &got[1..] {
            assert_eq!(&other.residuals, r);
        }
    }

    #[test]
    fn single_rank_self_neighbor_works() {
        let cfg = MilcConfig { local: [2, 2, 2, 4], iters: 4, seed: 3 };
        let got = Universe::new(1).node_size(1).run(move |ctx| run_rma(ctx, &cfg));
        let r = &got[0].residuals;
        assert!(r.last().unwrap() < &r[0]);
    }

    #[test]
    fn typed_faces_equal_packed_faces() {
        // The subarray datatype must enumerate face bytes in exactly the
        // order pack_face uses, or the receiver's decode is garbage.
        let cfg = MilcConfig { local: [2, 3, 2, 4], iters: 1, seed: 1 };
        let lat = Lattice::new(0, 1, &cfg);
        let field: Vec<f64> = (0..lat.volume() * SITE_F64).map(|i| i as f64).collect();
        let bytes: Vec<u8> = field.iter().flat_map(|v| v.to_le_bytes()).collect();
        let l = cfg.local;
        let sizes = [l[3], l[2], l[1], l[0], SITE_F64 * 8];
        let axis_of = [3usize, 2, 1, 0];
        for d in 0..4 {
            for (side, hi) in [(false, false), (true, true)] {
                let a = axis_of[d];
                let mut sub = sizes;
                let mut start = [0usize; 5];
                sub[a] = 1;
                start[a] = if hi { sizes[a] - 1 } else { 0 };
                let ty = fompi::DataType::subarray(&sizes, &sub, &start, fompi::DataType::byte());
                let typed = ty.pack(1, &bytes);
                let packed = lat.pack_face(&field, d, side);
                assert_eq!(typed, packed, "dim {d} hi={hi}");
            }
        }
    }

    #[test]
    fn typed_halo_matches_packed_halo() {
        let cfg = MilcConfig { local: [2, 2, 2, 4], iters: 4, seed: 6 };
        let p = 8;
        let packed = Universe::new(p).node_size(4).run(move |ctx| run_rma(ctx, &cfg));
        let typed = Universe::new(p).node_size(4).run(move |ctx| run_rma_typed(ctx, &cfg));
        assert_eq!(packed[0].residuals, typed[0].residuals, "typed halo must be bit-identical");
    }

    #[test]
    fn notify_halo_matches_packed_halo() {
        let cfg = MilcConfig { local: [2, 2, 2, 4], iters: 4, seed: 6 };
        let p = 8;
        let packed = Universe::new(p).node_size(4).run(move |ctx| run_rma(ctx, &cfg));
        let notify = Universe::new(p).node_size(4).run(move |ctx| run_rma_notify(ctx, &cfg));
        assert_eq!(packed[0].residuals, notify[0].residuals);
    }

    #[test]
    fn rmc_halo_matches_packed_halo() {
        // Same tuned collective, same arithmetic: the channel-based halo
        // must reproduce the flag-based halo bit for bit — including the
        // self-neighbour wraparound the p=8 grid's size-1 dimension has.
        let cfg = MilcConfig { local: [2, 2, 2, 4], iters: 4, seed: 6 };
        let p = 8;
        let packed = Universe::new(p).node_size(4).run(move |ctx| run_rma(ctx, &cfg));
        let rmc = Universe::new(p).node_size(4).run(move |ctx| run_rma_rmc(ctx, &cfg));
        assert_eq!(packed[0].residuals, rmc[0].residuals);
    }

    #[test]
    fn rmc_halo_single_rank_self_mesh() {
        // p=1: all 8 faces are self-sends through the mesh.
        let cfg = MilcConfig { local: [2, 2, 2, 4], iters: 4, seed: 3 };
        let got = Universe::new(1).node_size(1).run(move |ctx| run_rma_rmc(ctx, &cfg));
        let r = &got[0].residuals;
        assert!(r.last().unwrap() < &r[0]);
    }

    #[test]
    fn rmc_halo_cheaper_than_flag_halo() {
        // Fused data+notification sends and local drain beat put + flush
        // + remote FAA flags + remote polling, even paying for credits.
        let cfg = MilcConfig { local: [4, 4, 4, 8], iters: 4, seed: 2 };
        let p = 8;
        let flags = Universe::new(p).node_size(4).run(move |ctx| run_rma(ctx, &cfg));
        let rmc = Universe::new(p).node_size(4).run(move |ctx| run_rma_rmc(ctx, &cfg));
        let t = |r: &[MilcResult]| r.iter().map(|x| x.time_ns).fold(0.0, f64::max);
        assert!(
            t(&rmc) < t(&flags),
            "RMC halo {} should beat the flag-based halo {}",
            t(&rmc),
            t(&flags)
        );
    }

    #[test]
    fn notify_halo_cheaper_than_flag_halo() {
        // Fusing data + notification must save time over put + flush +
        // separate fetch_and_op flags.
        let cfg = MilcConfig { local: [4, 4, 4, 8], iters: 4, seed: 2 };
        let p = 8;
        let flags = Universe::new(p).node_size(4).run(move |ctx| run_rma(ctx, &cfg));
        let notify = Universe::new(p).node_size(4).run(move |ctx| run_rma_notify(ctx, &cfg));
        let t = |r: &[MilcResult]| r.iter().map(|x| x.time_ns).fold(0.0, f64::max);
        assert!(
            t(&notify) < t(&flags),
            "notified access {} should beat flag-based {}",
            t(&notify),
            t(&flags)
        );
    }

    #[test]
    fn rma_not_slower_than_mpi1() {
        let cfg = MilcConfig { local: [2, 2, 2, 4], iters: 4, seed: 2 };
        let p = 8;
        let engine = MsgEngine::new(p);
        let mpi = Universe::new(p).node_size(2).run(move |ctx| {
            let comm = Comm::attach(ctx, &engine);
            run_mpi1(ctx, &comm, &cfg)
        });
        let rma = Universe::new(p).node_size(2).run(move |ctx| run_rma(ctx, &cfg));
        let t_mpi = crate::max_time(&mpi.iter().map(|r| r.time_ns).collect::<Vec<_>>());
        let t_rma = crate::max_time(&rma.iter().map(|r| r.time_ns).collect::<Vec<_>>());
        assert!(t_rma < t_mpi * 1.02, "RMA halo ({t_rma}) should not lose to MPI-1 ({t_mpi})");
    }
}
