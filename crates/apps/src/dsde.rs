//! Dynamic Sparse Data Exchange (§4.2, Figure 7b).
//!
//! Each process picks `k` random targets and sends 8 bytes to each; no
//! process knows how much it will receive. The four protocols of Hoefler,
//! Siebert & Lumsdaine (PPoPP'10), as the paper benchmarks them:
//!
//! 1. **alltoall** — a full personalized exchange with empty slots for
//!    non-targets: simple, Θ(p) data per process;
//! 2. **reduce_scatter** — first learn the receive count via a
//!    reduce_scatter of indicator vectors, then plain sends/recvs;
//! 3. **NBX** — synchronous sends + nonblocking-consensus barrier: the
//!    protocol "proved optimal" that Figure 7b shows winning among the
//!    message-passing options;
//! 4. **RMA accumulate** — fetch-and-add a remote write cursor, put the
//!    payload, fence: foMPI's entry, competitive with NBX and portable.
//!
//! Payloads encode `(source << 32) | target`, so receivers verify that
//! every message landed at its intended destination; tests additionally
//! check global conservation (p·k sent = p·k received).

use fompi::{MpiOp, NumKind, Win};
use fompi_msg::coll::IBarrier;
use fompi_msg::{Comm, ANY_SOURCE};
use fompi_runtime::RankCtx;

/// One DSDE round's outcome for a rank.
#[derive(Debug, Clone)]
pub struct DsdeResult {
    /// Virtual ns from protocol start to local completion.
    pub time_ns: f64,
    /// Payloads received (each `(src << 32) | me`).
    pub received: Vec<u64>,
}

/// Choose `k` distinct random targets (≠ me) for this round.
pub fn pick_targets(me: u32, p: usize, k: usize, seed: u64) -> Vec<u32> {
    assert!(k < p, "need at least k+1 ranks");
    let mut targets = Vec::with_capacity(k);
    let mut x = seed ^ ((me as u64) << 20) ^ 0xD5DE;
    while targets.len() < k {
        x = crate::splitmix64(x);
        let t = (x % p as u64) as u32;
        if t != me && !targets.contains(&t) {
            targets.push(t);
        }
    }
    targets
}

fn payload(src: u32, dst: u32) -> u64 {
    ((src as u64) << 32) | dst as u64
}

/// Verify and strip received payloads.
fn check_received(me: u32, received: &[u64]) {
    for &r in received {
        assert_eq!(r as u32, me, "payload delivered to the wrong rank");
    }
}

const DSDE_TAG: u32 = 0xD5_0000;

// --------------------------------------------------------------- alltoall

/// Protocol 1: personalized alltoall with a (flag, payload) block per peer.
pub fn run_alltoall(ctx: &RankCtx, comm: &Comm, k: usize, seed: u64) -> DsdeResult {
    let p = ctx.size();
    let me = ctx.rank();
    let targets = pick_targets(me, p, k, seed);
    ctx.barrier();
    let t0 = ctx.now();
    let mut send = vec![0u8; p * 16];
    for &t in &targets {
        let o = t as usize * 16;
        send[o..o + 8].copy_from_slice(&1u64.to_le_bytes());
        send[o + 8..o + 16].copy_from_slice(&payload(me, t).to_le_bytes());
    }
    let mut recv = vec![0u8; p * 16];
    comm.alltoall(&send, &mut recv, 16);
    let mut received = Vec::new();
    for s in 0..p {
        let o = s * 16;
        if u64::from_le_bytes(recv[o..o + 8].try_into().unwrap()) == 1 {
            received.push(u64::from_le_bytes(recv[o + 8..o + 16].try_into().unwrap()));
        }
    }
    let time_ns = ctx.now() - t0;
    check_received(me, &received);
    DsdeResult { time_ns, received }
}

// ---------------------------------------------------------- reduce_scatter

/// Protocol 2: reduce_scatter of indicator vectors to learn the receive
/// count, then point-to-point sends.
pub fn run_reduce_scatter(ctx: &RankCtx, comm: &Comm, k: usize, seed: u64) -> DsdeResult {
    let p = ctx.size();
    let me = ctx.rank();
    let targets = pick_targets(me, p, k, seed);
    ctx.barrier();
    let t0 = ctx.now();
    let mut indicator = vec![0u64; p];
    for &t in &targets {
        indicator[t as usize] += 1;
    }
    let mut my_count = [0u64; 1];
    comm.reduce_scatter_u64(&indicator, &mut my_count);
    for &t in &targets {
        comm.send(&payload(me, t).to_le_bytes(), t, DSDE_TAG).expect("dsde send");
    }
    let mut received = Vec::with_capacity(my_count[0] as usize);
    for _ in 0..my_count[0] {
        let mut b = [0u8; 8];
        comm.recv(&mut b, ANY_SOURCE, DSDE_TAG).expect("dsde recv");
        received.push(u64::from_le_bytes(b));
    }
    let time_ns = ctx.now() - t0;
    check_received(me, &received);
    DsdeResult { time_ns, received }
}

// --------------------------------------------------------------------- NBX

/// Protocol 3: NBX — synchronous sends, then nonblocking consensus.
pub fn run_nbx(ctx: &RankCtx, comm: &Comm, k: usize, seed: u64, epoch: u32) -> DsdeResult {
    let p = ctx.size();
    let me = ctx.rank();
    let targets = pick_targets(me, p, k, seed);
    ctx.barrier();
    let t0 = ctx.now();
    // Issue all synchronous sends (nonblocking: completion = matched).
    let mut reqs: Vec<_> = targets
        .iter()
        .map(|&t| {
            comm.issend(&payload(me, t).to_le_bytes(), t, DSDE_TAG + 1 + epoch).expect("issend")
        })
        .collect();
    let mut received = Vec::new();
    let mut barrier: Option<IBarrier> = None;
    loop {
        // Receive anything that arrived.
        while comm.iprobe(ANY_SOURCE, DSDE_TAG + 1 + epoch).is_some() {
            let mut b = [0u8; 8];
            comm.recv(&mut b, ANY_SOURCE, DSDE_TAG + 1 + epoch).expect("nbx recv");
            received.push(u64::from_le_bytes(b));
        }
        match &mut barrier {
            None => {
                if reqs.iter().all(|r| r.test()) {
                    reqs.drain(..).for_each(|r| r.wait(ctx.ep()));
                    barrier = Some(IBarrier::start(comm, 16 + epoch));
                }
            }
            Some(ib) => {
                if ib.test(comm) {
                    break;
                }
            }
        }
        std::thread::yield_now();
    }
    // Final drain (messages may have raced the last barrier round).
    while comm.iprobe(ANY_SOURCE, DSDE_TAG + 1 + epoch).is_some() {
        let mut b = [0u8; 8];
        comm.recv(&mut b, ANY_SOURCE, DSDE_TAG + 1 + epoch).expect("nbx drain");
        received.push(u64::from_le_bytes(b));
    }
    let time_ns = ctx.now() - t0;
    check_received(me, &received);
    DsdeResult { time_ns, received }
}

// --------------------------------------------------------------------- RMA

/// Protocol 4: one-sided accumulates in active target mode — FAA a remote
/// cursor, put the payload, fence.
pub fn run_rma(ctx: &RankCtx, win: &Win, k: usize, seed: u64) -> DsdeResult {
    let p = ctx.size();
    let me = ctx.rank();
    let targets = pick_targets(me, p, k, seed);
    // Window layout: [0..8) cursor; [8..) payload slots.
    win.write_local(0, &0u64.to_le_bytes());
    win.fence().expect("fence open");
    let t0 = ctx.now();
    for &t in &targets {
        let mut idx = [0u8; 8];
        win.fetch_and_op(&1u64.to_le_bytes(), &mut idx, NumKind::U64, MpiOp::Sum, t, 0)
            .expect("cursor FAA");
        let slot = u64::from_le_bytes(idx) as usize;
        win.put(&payload(me, t).to_le_bytes(), t, 8 + slot * 8).expect("payload put");
    }
    win.fence().expect("fence close");
    let count = {
        let mut b = [0u8; 8];
        win.read_local(0, &mut b);
        u64::from_le_bytes(b) as usize
    };
    let mut received = Vec::with_capacity(count);
    for i in 0..count {
        let mut b = [0u8; 8];
        win.read_local(8 + i * 8, &mut b);
        received.push(u64::from_le_bytes(b));
    }
    let time_ns = ctx.now() - t0;
    check_received(me, &received);
    // Reset for the next round.
    win.write_local(0, &0u64.to_le_bytes());
    win.fence().expect("fence reset");
    DsdeResult { time_ns, received }
}

/// Protocol 4b: the same accumulate scheme over the MPI-2.2-era one-sided
/// implementation (software-agent path) — the "Cray MPI-2.2" line of
/// Figure 7b.
pub fn run_win22(ctx: &RankCtx, win: &fompi_msg::Win22, k: usize, seed: u64) -> DsdeResult {
    let p = ctx.size();
    let me = ctx.rank();
    let targets = pick_targets(me, p, k, seed);
    win.write_local(0, &0u64.to_le_bytes());
    win.fence();
    let t0 = ctx.now();
    for &t in &targets {
        // No fetching AMO in MPI-2.2: reserve a slot with an accumulate on
        // the cursor, then read it back through the agent (get).
        win.accumulate_sum_u64(&[1], t, 0);
        // The 2.2-era pattern cannot allocate disjoint slots one-sidedly
        // without fetch-and-op; emulate the common workaround of one slot
        // per (sender) rank.
        win.put(&payload(me, t).to_le_bytes(), t, 8 + me as usize * 8);
    }
    win.fence();
    let count = {
        let mut b = [0u8; 8];
        win.read_local(0, &mut b);
        u64::from_le_bytes(b) as usize
    };
    let mut received = Vec::with_capacity(count);
    for s in 0..p {
        let mut b = [0u8; 8];
        win.read_local(8 + s * 8, &mut b);
        let v = u64::from_le_bytes(b);
        if v != 0 {
            received.push(v);
        }
    }
    let time_ns = ctx.now() - t0;
    check_received(me, &received);
    // Clear slots for reuse.
    for s in 0..p {
        win.write_local(8 + s * 8, &0u64.to_le_bytes());
    }
    win.write_local(0, &0u64.to_le_bytes());
    win.fence();
    DsdeResult { time_ns, received }
}

// --------------------------------------------------------- notified access

/// Protocol 5: notified access — deliver each payload with a single
/// `put_notify` and let the notification itself carry both completion and
/// the sender's identity.
///
/// The notification record's `source` field replaces `run_rma`'s
/// fetch-and-add slot allocation outright: each sender owns slot `src` in
/// every receiver's window (targets are distinct per sender, so one slot
/// per pair suffices), which removes the AMO round trip from every
/// message's critical path. The receiver never polls a cursor and needs
/// no closing fence to learn its receive count: the notification append
/// is synchronous with the issuing call, so once a plain barrier bounds
/// the send phase every incoming record is already in this rank's ring
/// and a drain-until-dry observes the exact count — the consensus NBX
/// buys with a nonblocking barrier comes for free with the records, and
/// the fence's window-wide flush is replaced by the per-record stamps
/// joined as each notification is consumed.
pub fn run_notified(ctx: &RankCtx, win: &Win, k: usize, seed: u64) -> DsdeResult {
    let p = ctx.size();
    let me = ctx.rank();
    let targets = pick_targets(me, p, k, seed);
    // Window layout: [0..8) unused (run_rma's cursor); slot for sender
    // `src` at [8 + 8·src ..) — the run_win22 one-slot-per-sender shape.
    ctx.barrier();
    win.lock_all().expect("lock_all");
    let t0 = ctx.now();
    for &t in &targets {
        win.put_notify(&payload(me, t).to_le_bytes(), t, 8 + me as usize * 8, DSDE_TAG)
            .expect("notified put");
    }
    ctx.barrier();
    let mut received = Vec::new();
    while let Some(rec) = win.test_notify(fompi::ANY_SOURCE, DSDE_TAG).expect("notify drain") {
        // Each consumed record joins its stamp, so the read below is
        // covered by the arrival of that sender's payload.
        let mut b = [0u8; 8];
        win.read_local(8 + rec.source as usize * 8, &mut b);
        received.push(u64::from_le_bytes(b));
    }
    let time_ns = ctx.now() - t0;
    check_received(me, &received);
    win.unlock_all().expect("unlock_all");
    ctx.barrier();
    DsdeResult { time_ns, received }
}

// ----------------------------------------------------------------- RMC

/// Protocol 6: remote memory channels — the same FAA-free scheme as
/// [`run_notified`], but through the reusable [`fompi_rmc::mesh`]
/// abstraction instead of a hand-rolled window layout. Each rank sends
/// its `k` payloads over the all-to-all mesh, a barrier bounds the send
/// phase, and the receiver drains until dry. Credits are returned with
/// one batched [`fompi_rmc::Mesh::flush_credits`] *after* the drain, so
/// the timed critical path is identical to the hand-rolled protocol —
/// what the channel substrate charges for its generality is deferred off
/// the round, and the `time_ns` comparison in the tests holds it to that.
pub fn run_rmc(ctx: &RankCtx, mesh: &mut fompi_rmc::Mesh, k: usize, seed: u64) -> DsdeResult {
    let p = ctx.size();
    let me = ctx.rank();
    let targets = pick_targets(me, p, k, seed);
    ctx.barrier();
    let t0 = ctx.now();
    for &t in &targets {
        mesh.send(t, &payload(me, t).to_le_bytes()).expect("rmc send");
    }
    ctx.barrier();
    let mut received = Vec::new();
    let mut buf = [0u8; 8];
    while let Some((_, len)) = mesh.try_recv(&mut buf).expect("rmc drain") {
        debug_assert_eq!(len, 8);
        received.push(u64::from_le_bytes(buf));
    }
    let time_ns = ctx.now() - t0;
    check_received(me, &received);
    mesh.flush_credits().expect("rmc credits");
    ctx.barrier();
    DsdeResult { time_ns, received }
}

/// Window size needed by [`run_rma`] for up to `p` senders of one message
/// each (worst case: every rank targets me).
pub fn rma_win_bytes(p: usize) -> usize {
    8 + p * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_msg::MsgEngine;
    use fompi_runtime::Universe;

    fn conservation(results: &[DsdeResult], p: usize, k: usize) {
        let total: usize = results.iter().map(|r| r.received.len()).sum();
        assert_eq!(total, p * k, "messages lost or duplicated");
    }

    #[test]
    fn alltoall_delivers_everything() {
        let (p, k) = (6, 3);
        let engine = MsgEngine::new(p);
        let got = Universe::new(p).node_size(2).run(move |ctx| {
            let comm = Comm::attach(ctx, &engine);
            run_alltoall(ctx, &comm, k, 99)
        });
        conservation(&got, p, k);
    }

    #[test]
    fn reduce_scatter_delivers_everything() {
        let (p, k) = (5, 2);
        let engine = MsgEngine::new(p);
        let got = Universe::new(p).node_size(2).run(move |ctx| {
            let comm = Comm::attach(ctx, &engine);
            run_reduce_scatter(ctx, &comm, k, 123)
        });
        conservation(&got, p, k);
    }

    #[test]
    fn nbx_delivers_everything() {
        let (p, k) = (6, 3);
        let engine = MsgEngine::new(p);
        let got = Universe::new(p).node_size(3).run(move |ctx| {
            let comm = Comm::attach(ctx, &engine);
            run_nbx(ctx, &comm, k, 7, 0)
        });
        conservation(&got, p, k);
    }

    #[test]
    fn rma_delivers_everything() {
        let (p, k) = (6, 3);
        let got = Universe::new(p).node_size(2).run(move |ctx| {
            let win = Win::allocate(ctx, rma_win_bytes(p), 1).expect("win");
            run_rma(ctx, &win, k, 31)
        });
        conservation(&got, p, k);
    }

    #[test]
    fn win22_variant_delivers_and_is_slower() {
        let (p, k) = (6, 2);
        let w22 = Universe::new(p).node_size(2).run(move |ctx| {
            let win = fompi_msg::Win22::allocate(ctx, rma_win_bytes(p));
            run_win22(ctx, &win, k, 17)
        });
        // Each sender has one slot per target, so a sender hitting the
        // same receiver twice would collide — k distinct targets per
        // sender and one slot per sender guarantees delivery.
        let total: usize = w22.iter().map(|r| r.received.len()).sum();
        assert_eq!(total, p * k);
        let rma = Universe::new(p).node_size(2).run(move |ctx| {
            let win = Win::allocate(ctx, rma_win_bytes(p), 1).expect("win");
            run_rma(ctx, &win, k, 17)
        });
        let t22 = crate::max_time(&w22.iter().map(|r| r.time_ns).collect::<Vec<_>>());
        let trma = crate::max_time(&rma.iter().map(|r| r.time_ns).collect::<Vec<_>>());
        assert!(trma < t22, "foMPI {trma} must beat the MPI-2.2 agent path {t22}");
    }

    #[test]
    fn notified_delivers_everything() {
        let (p, k) = (6, 3);
        let got = Universe::new(p).node_size(2).run(move |ctx| {
            let win = Win::allocate(ctx, rma_win_bytes(p), 1).expect("win");
            run_notified(ctx, &win, k, 31)
        });
        conservation(&got, p, k);
        for (rank, r) in got.iter().enumerate() {
            check_received(rank as u32, &r.received);
        }
    }

    #[test]
    fn notified_repeated_rounds_reuse_window_and_ring() {
        // Two rounds over the same window: the drain-until-dry of round 1
        // must leave the ring empty so round 2's count is exact.
        let (p, k) = (4, 2);
        let got = Universe::new(p).node_size(2).run(move |ctx| {
            let win = Win::allocate(ctx, rma_win_bytes(p), 1).expect("win");
            let r1 = run_notified(ctx, &win, k, 1);
            let r2 = run_notified(ctx, &win, k, 2);
            (r1, r2)
        });
        conservation(&got.iter().map(|(a, _)| a.clone()).collect::<Vec<_>>(), p, k);
        conservation(&got.iter().map(|(_, b)| b.clone()).collect::<Vec<_>>(), p, k);
    }

    #[test]
    fn rmc_delivers_everything() {
        let (p, k) = (6, 3);
        let got = Universe::new(p).node_size(2).run(move |ctx| {
            let cfg = fompi_rmc::RmcConfig { slots: 2, slot_bytes: 8, ..Default::default() };
            let mut m = fompi_rmc::mesh(ctx, &cfg).expect("mesh");
            let r = run_rmc(ctx, &mut m, k, 31);
            m.close(ctx).expect("close");
            r
        });
        conservation(&got, p, k);
        for (rank, r) in got.iter().enumerate() {
            check_received(rank as u32, &r.received);
        }
    }

    #[test]
    fn rmc_repeated_rounds_recycle_credits() {
        // More rounds than slots: later rounds depend on the batched
        // credit returns of earlier ones.
        let (p, k) = (4, 2);
        let got = Universe::new(p).node_size(2).run(move |ctx| {
            let cfg = fompi_rmc::RmcConfig { slots: 2, slot_bytes: 8, ..Default::default() };
            let mut m = fompi_rmc::mesh(ctx, &cfg).expect("mesh");
            let rs: Vec<DsdeResult> = (0..5).map(|r| run_rmc(ctx, &mut m, k, r)).collect();
            m.close(ctx).expect("close");
            rs
        });
        for round in 0..5 {
            conservation(&got.iter().map(|rs| rs[round].clone()).collect::<Vec<_>>(), p, k);
        }
    }

    #[test]
    fn rmc_matches_notified_time() {
        // The channel abstraction must not tax the critical path: same
        // FAA-free scheme, same virtual time as the hand-rolled protocol
        // (the batched credit returns sit outside the timed region).
        let (p, k) = (8, 3);
        let notified = Universe::new(p).node_size(2).run(move |ctx| {
            let win = Win::allocate(ctx, rma_win_bytes(p), 1).expect("win");
            run_notified(ctx, &win, k, 13)
        });
        let rmc = Universe::new(p).node_size(2).run(move |ctx| {
            let cfg = fompi_rmc::RmcConfig { slots: 2, slot_bytes: 8, ..Default::default() };
            let mut m = fompi_rmc::mesh(ctx, &cfg).expect("mesh");
            let r = run_rmc(ctx, &mut m, k, 13);
            m.close(ctx).expect("close");
            r
        });
        let t_not = crate::max_time(&notified.iter().map(|r| r.time_ns).collect::<Vec<_>>());
        let t_rmc = crate::max_time(&rmc.iter().map(|r| r.time_ns).collect::<Vec<_>>());
        assert!(
            t_rmc <= t_not * 1.05,
            "RMC mesh ({t_rmc}) must match the hand-rolled notified protocol ({t_not})"
        );
    }

    #[test]
    fn rma_repeated_rounds_reuse_window() {
        let (p, k) = (4, 2);
        let got = Universe::new(p).node_size(2).run(move |ctx| {
            let win = Win::allocate(ctx, rma_win_bytes(p), 1).expect("win");
            let r1 = run_rma(ctx, &win, k, 1);
            let r2 = run_rma(ctx, &win, k, 2);
            (r1, r2)
        });
        conservation(&got.iter().map(|(a, _)| a.clone()).collect::<Vec<_>>(), p, k);
        conservation(&got.iter().map(|(_, b)| b.clone()).collect::<Vec<_>>(), p, k);
    }

    #[test]
    fn rma_beats_alltoall_at_scale() {
        // Even at modest p the alltoall pays Θ(p) per rank.
        let (p, k) = (8, 2);
        let engine = MsgEngine::new(p);
        let a2a = Universe::new(p).node_size(1).run(move |ctx| {
            let comm = Comm::attach(ctx, &engine);
            run_alltoall(ctx, &comm, k, 5)
        });
        let rma = Universe::new(p).node_size(1).run(move |ctx| {
            let win = Win::allocate(ctx, rma_win_bytes(p), 1).expect("win");
            run_rma(ctx, &win, k, 5)
        });
        let t_a2a = crate::max_time(&a2a.iter().map(|r| r.time_ns).collect::<Vec<_>>());
        let t_rma = crate::max_time(&rma.iter().map(|r| r.time_ns).collect::<Vec<_>>());
        assert!(t_rma < t_a2a, "RMA {t_rma} should beat alltoall {t_a2a}");
    }
}
