//! Distributed transactional key-value store over `fompi-txn`.
//!
//! The data-analytics motif, upgraded from single-element CAS inserts
//! (see [`crate::hashtable`]) to *multi-key transactions*: each rank owns
//! a fixed-size open-addressed bucket table of versioned cells (8-byte
//! seqlock version word + 16-byte payload `[key | value]`), and every
//! operation — point read, additive upsert, two-key transfer — runs as an
//! optimistic transaction through [`fompi_txn::run`]. Keys hash to an
//! owner rank and a home bucket; collisions probe linearly within the
//! owner. Key 0 is the empty-cell sentinel, so client keys start at 1.
//!
//! The serving driver ([`serve`]) plays a simulated client population:
//! after a deterministic warm-up that inserts the hot head of the
//! keyspace, each rank issues a mixed read/upsert/transfer stream with
//! Zipf-skewed key popularity (the usual KV-serving skew model, sampled
//! from the in-repo SplitMix64 generator). Because upserts are *additive*
//! and transfers conserve value, the final table contents are
//! schedule-independent: any interleaving of committed transactions sums
//! to the same per-key values, which is what makes the CI smoke artifact
//! byte-diffable and the conservation check exact.

use crate::splitmix64;
use fompi::Win;
use fompi_fabric::rng::Rng;
use fompi_runtime::RankCtx;
use fompi_txn::{run, RetryPolicy, Txn, TxnError, VersionedCell};

/// Bytes per bucket: version word + `[key | value]` payload.
pub const CELL: usize = 24;
const PAYLOAD: usize = 16;

/// Store geometry and workload shape.
#[derive(Debug, Clone, Copy)]
pub struct KvConfig {
    /// Buckets in each rank's local volume.
    pub buckets_per_rank: usize,
    /// Client keys are drawn from `1..=keyspace`.
    pub keyspace: u64,
    /// Zipf skew of the mixed workload (0 = uniform; 0.99 = classic
    /// serving skew).
    pub theta: f64,
    /// Keys inserted per rank during warm-up (round-robin over the
    /// keyspace head, so the Zipf-hot ids are present before serving).
    pub warm_per_rank: usize,
    /// Operations per rank in the mixed phase.
    pub ops_per_rank: usize,
    /// Out of 100: reads per 100 ops; the rest split between upserts and
    /// transfers.
    pub read_pct: u32,
    /// Out of 100: transfers per 100 ops.
    pub transfer_pct: u32,
    /// Probe-chain cap before an insert declares the table full.
    pub max_probe: usize,
    /// Workload seed (key streams, op mix, jitter).
    pub seed: u64,
}

impl Default for KvConfig {
    fn default() -> Self {
        Self {
            buckets_per_rank: 1024,
            keyspace: 16_384,
            theta: 0.99,
            warm_per_rank: 256,
            ops_per_rank: 512,
            read_pct: 70,
            transfer_pct: 10,
            max_probe: 64,
            seed: 42,
        }
    }
}

/// Zipf-skewed key sampler: continuous-CDF approximation
/// `rank = N · u^(1/(1-θ))` on a SplitMix64 uniform draw. Exact for
/// θ = 0 (uniform) and a close, monotone fit for the serving-skew range
/// θ ∈ (0, 1); key ids are 1-based with id 1 the hottest.
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    exponent: f64,
}

impl Zipf {
    /// Sampler over `1..=n` with skew `theta ∈ [0, 1)`.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "empty keyspace");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        Zipf { n, exponent: 1.0 / (1.0 - theta) }
    }

    /// Draw one key id.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.next_f64();
        let k = (self.n as f64 * u.powf(self.exponent)) as u64;
        k.min(self.n - 1) + 1
    }
}

/// The distributed table: a window of versioned bucket cells per rank.
pub struct KvStore {
    /// The table window (callers manage the `lock_all` epoch).
    pub win: Win,
    cfg: KvConfig,
    p: usize,
}

/// One probe outcome inside a transaction.
enum Slot {
    /// The key is present with this value.
    Found(VersionedCell, u64),
    /// First empty cell on the key's probe chain.
    Empty(VersionedCell),
}

impl KvStore {
    /// Allocate and zero this rank's volume. Collective; ends with a
    /// barrier, so the store is servable (after `lock_all`) on return.
    pub fn allocate(ctx: &RankCtx, cfg: KvConfig) -> KvStore {
        let win = Win::allocate(ctx, cfg.buckets_per_rank * CELL, 1).expect("kv window");
        for slot in 0..cfg.buckets_per_rank {
            VersionedCell::init_local(&win, slot * CELL, &[0u8; PAYLOAD]);
        }
        ctx.barrier();
        KvStore { win, cfg, p: ctx.size() }
    }

    /// Rank owning `key`.
    pub fn owner_of(&self, key: u64) -> u32 {
        (splitmix64(key ^ 0x04_11E5) % self.p as u64) as u32
    }

    fn cell(&self, owner: u32, slot: usize) -> VersionedCell {
        VersionedCell::new(owner, slot * CELL, PAYLOAD)
    }

    /// Walk `key`'s probe chain inside `txn` until the key or an empty
    /// cell turns up. Every probed cell joins the read set, so a commit
    /// certifies the whole chain — a racing insert into a probed slot
    /// aborts us instead of corrupting the chain.
    fn probe(&self, txn: &mut Txn, key: u64) -> Result<Slot, TxnError> {
        assert!(key != 0, "key 0 is the empty sentinel");
        let owner = self.owner_of(key);
        let home = (splitmix64(key ^ 0x5107) % self.cfg.buckets_per_rank as u64) as usize;
        let mut buf = [0u8; PAYLOAD];
        for i in 0..self.cfg.max_probe.min(self.cfg.buckets_per_rank) {
            let cell = self.cell(owner, (home + i) % self.cfg.buckets_per_rank);
            txn.read(cell, &mut buf)?;
            let k = u64::from_le_bytes(buf[..8].try_into().unwrap());
            if k == key {
                return Ok(Slot::Found(cell, u64::from_le_bytes(buf[8..].try_into().unwrap())));
            }
            if k == 0 {
                return Ok(Slot::Empty(cell));
            }
        }
        panic!(
            "kv probe chain for key {key} exceeded {} cells: table too full",
            self.cfg.max_probe
        );
    }

    fn stage(txn: &mut Txn, cell: VersionedCell, key: u64, value: u64) -> Result<(), TxnError> {
        let mut payload = [0u8; PAYLOAD];
        payload[..8].copy_from_slice(&key.to_le_bytes());
        payload[8..].copy_from_slice(&value.to_le_bytes());
        txn.write(cell, &payload)
    }

    /// Transactional point read: the committed snapshot's value, or
    /// `None` if absent.
    pub fn get(
        &self,
        policy: &RetryPolicy,
        rng: &mut Rng,
        key: u64,
    ) -> Result<Option<u64>, TxnError> {
        run(&self.win, policy, rng, |txn| {
            Ok(match self.probe(txn, key)? {
                Slot::Found(_, v) => Some(v),
                Slot::Empty(_) => None,
            })
        })
    }

    /// Additive upsert: `value += delta`, inserting at `delta` if the key
    /// is absent. Returns the value the commit published. Additivity
    /// makes concurrent upserts commute — the final table is the same for
    /// every schedule.
    pub fn upsert(
        &self,
        policy: &RetryPolicy,
        rng: &mut Rng,
        key: u64,
        delta: u64,
    ) -> Result<u64, TxnError> {
        run(&self.win, policy, rng, |txn| {
            let (cell, new) = match self.probe(txn, key)? {
                Slot::Found(cell, v) => (cell, v.wrapping_add(delta)),
                Slot::Empty(cell) => (cell, delta),
            };
            Self::stage(txn, cell, key, new)?;
            Ok(new)
        })
    }

    /// Two-key transactional transfer: atomically move `amount` from
    /// `from` to `to` (wrapping). `Ok(false)` if either key is absent —
    /// validated but unwritten, so the table is untouched.
    pub fn transfer(
        &self,
        policy: &RetryPolicy,
        rng: &mut Rng,
        from: u64,
        to: u64,
        amount: u64,
    ) -> Result<bool, TxnError> {
        assert_ne!(from, to, "transfer endpoints must differ");
        run(&self.win, policy, rng, |txn| {
            let a = self.probe(txn, from)?;
            let b = self.probe(txn, to)?;
            let (Slot::Found(ca, va), Slot::Found(cb, vb)) = (a, b) else {
                return Ok(false);
            };
            Self::stage(txn, ca, from, va.wrapping_sub(amount))?;
            Self::stage(txn, cb, to, vb.wrapping_add(amount))?;
            Ok(true)
        })
    }

    /// Post-run scan of this rank's volume (local reads; quiescent-point
    /// only): `(occupied cells, value sum, commutative content hash)`.
    /// The hash folds per-cell `splitmix64(key ^ splitmix64(value))` with
    /// XOR, so it is independent of both bucket placement and scan order —
    /// equal across runs whenever the committed *contents* are equal.
    pub fn local_digest(&self) -> (u64, u64, u64) {
        let (mut occupied, mut sum, mut hash) = (0u64, 0u64, 0u64);
        let mut b = [0u8; 8];
        for slot in 0..self.cfg.buckets_per_rank {
            self.win.read_local(slot * CELL + 8, &mut b);
            let key = u64::from_le_bytes(b);
            if key == 0 {
                continue;
            }
            self.win.read_local(slot * CELL + 16, &mut b);
            let value = u64::from_le_bytes(b);
            occupied += 1;
            sum = sum.wrapping_add(value);
            hash ^= splitmix64(key ^ splitmix64(value));
        }
        (occupied, sum, hash)
    }
}

/// One rank's serving tally.
#[derive(Debug, Clone, Copy, Default)]
pub struct KvServeStats {
    /// Point reads issued (mixed phase).
    pub reads: u64,
    /// Reads that found their key.
    pub hits: u64,
    /// Upserts committed (warm-up + mixed phase).
    pub upserts: u64,
    /// Two-key transfers committed.
    pub transfers: u64,
    /// Value this rank added to the table (sum of committed deltas;
    /// transfers are net zero). Wrapping, like the cell values.
    pub added: u64,
    /// Virtual ns the rank spent serving.
    pub time_ns: f64,
}

/// The id the warm-up assigns to rank `r`'s `i`-th insert: the keyspace
/// head `1..=p·warm_per_rank`, dealt round-robin so every rank's warm set
/// is disjoint and the Zipf-hot ids are all covered.
pub fn warm_key(r: u32, i: usize, p: usize) -> u64 {
    (i as u64) * (p as u64) + (r as u64) + 1
}

/// Deterministic warm-up value for `key` (nonzero).
fn warm_value(seed: u64, key: u64) -> u64 {
    splitmix64(seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1
}

/// Serve the simulated client population: warm-up inserts, then
/// `ops_per_rank` mixed Zipf-skewed operations. Call from inside a
/// launched rank; collective (internal barriers). Transfers move value
/// between this rank's own warm keys — guaranteed present, so every
/// transfer is a true two-key commit.
///
/// `serve` asserts every operation commits (its invariants need the
/// exact table), so `policy` must carry a budget sized for the
/// contention — hot probe chains under many ranks can burn through the
/// default 64 attempts. Pass an effectively unbounded budget (as
/// the `kv_serve` driver does) unless shedding load is the experiment.
pub fn serve(ctx: &RankCtx, store: &KvStore, policy: &RetryPolicy) -> KvServeStats {
    let cfg = store.cfg;
    let me = ctx.rank();
    let p = ctx.size();
    assert!((p * cfg.warm_per_rank) as u64 <= cfg.keyspace, "warm set exceeds the keyspace");
    assert!(cfg.warm_per_rank >= 2, "transfers need two warm keys per rank");
    let mut rng = Rng::seed_from_u64(splitmix64(cfg.seed ^ 0x5EED ^ (me as u64 + 1)));
    // Retry jitter draws a random number per abort, and abort counts are
    // schedule-dependent — so jitter gets its own stream, or every retry
    // would shift the workload's key/delta draws and the "final table is
    // schedule-independent" invariant (and the CI byte-diff) would break.
    let mut jitter = Rng::seed_from_u64(splitmix64(cfg.seed ^ 0x0BAC_C0FF ^ (me as u64 + 1)));
    let zipf = Zipf::new(cfg.keyspace, cfg.theta);
    let mut stats = KvServeStats::default();
    store.win.lock_all().expect("kv lock_all");
    let t0 = ctx.now();
    for i in 0..cfg.warm_per_rank {
        let key = warm_key(me, i, p);
        let delta = warm_value(cfg.seed, key);
        store.upsert(policy, &mut jitter, key, delta).expect("warm upsert");
        stats.upserts += 1;
        stats.added = stats.added.wrapping_add(delta);
    }
    // Serving starts only when the whole warm set is visible.
    store.win.flush_all().expect("warm flush");
    ctx.barrier();
    for _ in 0..cfg.ops_per_rank {
        let draw = rng.next_below(100) as u32;
        if draw < cfg.read_pct {
            let key = zipf.sample(&mut rng);
            let hit = store.get(policy, &mut jitter, key).expect("kv read");
            stats.reads += 1;
            stats.hits += u64::from(hit.is_some());
        } else if draw < cfg.read_pct + cfg.transfer_pct {
            let i = rng.next_below(cfg.warm_per_rank as u64) as usize;
            let j =
                (i + 1 + rng.next_below(cfg.warm_per_rank as u64 - 1) as usize) % cfg.warm_per_rank;
            let amount = rng.next_below(1000);
            let moved = store
                .transfer(policy, &mut jitter, warm_key(me, i, p), warm_key(me, j, p), amount)
                .expect("kv transfer");
            assert!(moved, "warm keys must be present");
            stats.transfers += 1;
        } else {
            let key = zipf.sample(&mut rng);
            let delta = rng.next_below(1 << 20) | 1;
            store.upsert(policy, &mut jitter, key, delta).expect("kv upsert");
            stats.upserts += 1;
            stats.added = stats.added.wrapping_add(delta);
        }
    }
    stats.time_ns = ctx.now() - t0;
    store.win.unlock_all().expect("kv unlock_all");
    ctx.barrier();
    stats
}

/// Cross-rank invariant check after [`serve`]: the table's value sum must
/// equal everything the ranks added (transfers conserve, upserts add).
/// Returns `(violations, occupied, sum, content_hash)` — all
/// schedule-independent, so CI byte-diffs them.
pub fn conservation_check(
    ctx: &RankCtx,
    store: &KvStore,
    stats: &KvServeStats,
) -> (u64, u64, u64, u64) {
    let (occ, sum, hash) = store.local_digest();
    let total_occ = ctx.allreduce_u64(occ, u64::wrapping_add);
    let total_sum = ctx.allreduce_u64(sum, u64::wrapping_add);
    let total_hash = ctx.allreduce_u64(hash, |a, b| a ^ b);
    let total_added = ctx.allreduce_u64(stats.added, u64::wrapping_add);
    let violations = u64::from(total_sum != total_added);
    (violations, total_occ, total_sum, total_hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_fabric::FaultPlan;
    use fompi_runtime::Universe;

    /// An effectively unbounded budget: the serve tests assert every
    /// operation commits, so retries must never exhaust (see [`serve`]).
    fn patient() -> RetryPolicy {
        RetryPolicy::Backoff { budget: 1 << 20, base_ns: 400, cap_ns: 100_000 }
    }

    fn small_cfg() -> KvConfig {
        KvConfig {
            buckets_per_rank: 128,
            keyspace: 256,
            theta: 0.9,
            warm_per_rank: 24,
            ops_per_rank: 120,
            ..KvConfig::default()
        }
    }

    #[test]
    fn zipf_stays_in_range_and_skews_hot() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = Rng::seed_from_u64(5);
        let mut head = 0usize;
        for _ in 0..4000 {
            let k = z.sample(&mut rng);
            assert!((1..=1000).contains(&k));
            head += usize::from(k <= 10);
        }
        // θ=0.99 concentrates most draws on the head of the keyspace.
        assert!(head > 2000, "only {head}/4000 draws hit the hot ten keys");
        // θ=0 is uniform: the head gets roughly its fair 1% share.
        let u = Zipf::new(1000, 0.0);
        let mut head_u = 0usize;
        for _ in 0..4000 {
            head_u += usize::from(u.sample(&mut rng) <= 10);
        }
        assert!(head_u < 200, "uniform draws over-concentrated: {head_u}/4000");
    }

    #[test]
    fn warm_keys_are_disjoint_and_dense() {
        let (p, per) = (4, 8);
        let mut all: Vec<u64> =
            (0..p as u32).flat_map(|r| (0..per).map(move |i| warm_key(r, i, p))).collect();
        all.sort_unstable();
        assert_eq!(all, (1..=(p * per) as u64).collect::<Vec<_>>());
    }

    #[test]
    fn serve_conserves_value_and_counts_commits() {
        let cfg = small_cfg();
        let (outs, fabric) = Universe::new(4)
            .node_size(2)
            .seed(7)
            .faults(FaultPlan::disabled())
            .metrics(true)
            .launch(move |ctx| {
                let store = KvStore::allocate(ctx, cfg);
                let stats = serve(ctx, &store, &patient());
                conservation_check(ctx, &store, &stats)
            });
        for (violations, occ, _, _) in &outs {
            assert_eq!(*violations, 0, "value was minted or burned");
            assert!(*occ >= (4 * cfg.warm_per_rank) as u64, "warm set missing");
        }
        // Every rank computed the same global digest.
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
        use fompi_fabric::telemetry::EventKind;
        let commits = fabric.telemetry().stats(EventKind::TxnCommit).count();
        assert!(commits >= (4 * (cfg.warm_per_rank + cfg.ops_per_rank)) as u64);
    }

    #[test]
    fn digest_is_schedule_independent_across_seeds_of_the_fabric() {
        // Same workload seed, different *fault* schedules: committed
        // contents must match because ops are additive/conserving.
        let cfg = small_cfg();
        let digest = |fabric_seed: u64| {
            let (outs, _) =
                Universe::new(3).node_size(1).seed(fabric_seed).faults(FaultPlan::light(0)).launch(
                    move |ctx| {
                        let store = KvStore::allocate(ctx, cfg);
                        let stats = serve(ctx, &store, &patient());
                        conservation_check(ctx, &store, &stats)
                    },
                );
            outs[0]
        };
        let (a, b) = (digest(100), digest(200));
        assert_eq!(a.0, 0);
        assert_eq!(a, b, "committed table contents must not depend on the schedule");
    }

    #[test]
    fn transfers_move_value_between_remote_keys() {
        let cfg = small_cfg();
        let (outs, _) = Universe::new(2).node_size(1).seed(3).faults(FaultPlan::disabled()).launch(
            move |ctx| {
                let store = KvStore::allocate(ctx, cfg);
                let policy = RetryPolicy::default();
                let mut rng = Rng::seed_from_u64(9);
                let mut out = (0, 0);
                store.win.lock_all().unwrap();
                if ctx.rank() == 0 {
                    store.upsert(&policy, &mut rng, 10, 500).unwrap();
                    store.upsert(&policy, &mut rng, 11, 100).unwrap();
                    assert!(store.transfer(&policy, &mut rng, 10, 11, 150).unwrap());
                    // Absent endpoints leave the table untouched.
                    assert!(!store.transfer(&policy, &mut rng, 10, 99, 1).unwrap());
                    let a = store.get(&policy, &mut rng, 10).unwrap().unwrap();
                    let b = store.get(&policy, &mut rng, 11).unwrap().unwrap();
                    out = (a, b);
                }
                store.win.unlock_all().unwrap();
                ctx.barrier();
                out
            },
        );
        assert_eq!(outs[0], (350, 250));
    }
}
