//! Distributed hashtable (§4.1, Figure 7a).
//!
//! "Each process manages a part of the hashtable called the local volume
//! consisting of a table of elements and an additional overflow heap to
//! store elements after collisions. [...] Pointers to most recently
//! inserted items as well as to the next free cells are stored along with
//! the remaining data in each local volume. The elements are 8-byte
//! integers."
//!
//! Three backends, mirroring the paper:
//!
//! * **RMA (foMPI)**: inserts use `compare_and_swap` on the slot; on
//!   collision the loser claims an overflow cell with `fetch_and_op(SUM)`
//!   and links it with a second CAS — all inside one `lock_all` epoch with
//!   flushes.
//! * **UPC**: the same algorithm over Cray-style `aadd`/`cas` extensions.
//! * **MPI-1**: active-message scheme — the element is *sent* to the owner,
//!   which applies it locally; termination via done-notifications from
//!   every process.
//!
//! Keys are unique and nonzero by construction, so tests can verify that
//! exactly `p × inserts` elements are present afterwards.

use crate::splitmix64;
use fompi::{MpiOp, NumKind, Win};
use fompi_msg::{Comm, ANY_SOURCE};
use fompi_pgas::SharedArray;
use fompi_runtime::RankCtx;

/// Hashtable geometry.
#[derive(Debug, Clone, Copy)]
pub struct HtConfig {
    /// Inserts performed by each rank.
    pub inserts_per_rank: usize,
    /// Direct-table slots per rank.
    pub table_slots: usize,
    /// Overflow-heap cells per rank.
    pub heap_cells: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HtConfig {
    fn default() -> Self {
        Self { inserts_per_rank: 256, table_slots: 512, heap_cells: 2048, seed: 42 }
    }
}

/// Outcome of one rank's run.
#[derive(Debug, Clone)]
pub struct HtResult {
    /// Virtual nanoseconds this rank spent in the insert phase.
    pub time_ns: f64,
    /// Elements stored in this rank's local volume afterwards.
    pub local_elements: usize,
}

// Window layout (bytes):
//   0                 next-free overflow index (u64)
//   8 .. 8+16T        table slots  [key u64][next u64]
//   8+16T .. +16H     heap cells   [key u64][next u64]
const HDR: usize = 8;
const NIL64: u64 = u64::MAX;

fn slot_off(s: usize) -> usize {
    HDR + s * 16
}

fn heap_off(cfg: &HtConfig, h: usize) -> usize {
    HDR + cfg.table_slots * 16 + h * 16
}

fn win_bytes(cfg: &HtConfig) -> usize {
    HDR + (cfg.table_slots + cfg.heap_cells) * 16
}

/// The key stream for `rank`: unique, nonzero, uniformly scattered.
pub fn keys_for(rank: u32, cfg: &HtConfig) -> impl Iterator<Item = u64> + '_ {
    (0..cfg.inserts_per_rank).map(move |i| splitmix64(((rank as u64) << 32) | (i as u64 + 1)) | 1)
}

fn owner_of(key: u64, p: usize) -> u32 {
    (splitmix64(key) % p as u64) as u32
}

fn slot_of(key: u64, cfg: &HtConfig) -> usize {
    (splitmix64(key ^ 0xABCD) % cfg.table_slots as u64) as usize
}

/// Count elements in a local volume after the run (verification).
fn count_local(read: impl Fn(usize, &mut [u8]), cfg: &HtConfig) -> usize {
    let mut n = 0;
    let mut buf = [0u8; 8];
    for s in 0..cfg.table_slots {
        read(slot_off(s), &mut buf);
        if u64::from_le_bytes(buf) != 0 {
            n += 1;
        }
    }
    read(0, &mut buf);
    n + u64::from_le_bytes(buf) as usize // heap cells in use
}

// ------------------------------------------------------------------ foMPI

/// RMA backend: CAS insert, FAA overflow claim, CAS list push.
pub fn run_rma(ctx: &RankCtx, cfg: &HtConfig) -> HtResult {
    let (res, _win) = run_rma_keep_window(ctx, cfg);
    res
}

/// Like [`run_rma`] but hands the window back (inside an open `lock_all`
/// epoch has ended; re-lock for the read phase) so callers can run the
/// lookup phase against the populated table.
pub fn run_rma_keep_window(ctx: &RankCtx, cfg: &HtConfig) -> (HtResult, Win) {
    let p = ctx.size();
    let win = Win::allocate(ctx, win_bytes(cfg), 1).expect("window");
    init_local(&win, cfg);
    ctx.barrier();
    win.lock_all().expect("lock_all");
    let t0 = ctx.now();
    for key in keys_for(ctx.rank(), cfg) {
        let owner = owner_of(key, p);
        let slot = slot_of(key, cfg);
        // Fast path: claim the direct slot.
        let old = win.compare_and_swap(key, 0, owner, slot_off(slot)).expect("slot CAS");
        if old == 0 {
            continue;
        }
        // Collision: claim an overflow cell.
        let mut idx = [0u8; 8];
        win.fetch_and_op(&1u64.to_le_bytes(), &mut idx, NumKind::U64, MpiOp::Sum, owner, 0)
            .expect("next-free FAA");
        let h = u64::from_le_bytes(idx) as usize;
        assert!(h < cfg.heap_cells, "overflow heap exhausted");
        win.put(&key.to_le_bytes(), owner, heap_off(cfg, h)).expect("heap put");
        //

        // Push onto the slot's chain with a second CAS (Treiber). An
        // aligned 8-byte get is atomic on Gemini, so the head read needs no
        // lock.
        loop {
            let mut cur = [0u8; 8];
            win.get(&mut cur, owner, slot_off(slot) + 8).expect("chain read");
            win.flush(owner).expect("chain read flush");
            let head = u64::from_le_bytes(cur);
            win.put(&head.to_le_bytes(), owner, heap_off(cfg, h) + 8).expect("cell next put");
            win.flush(owner).expect("flush before CAS");
            let old = win
                .compare_and_swap(h as u64 | (1 << 63), head, owner, slot_off(slot) + 8)
                .expect("chain CAS");
            if old == head {
                break;
            }
        }
    }
    win.flush_all().expect("final flush");
    let time_ns = ctx.now() - t0;
    win.unlock_all().expect("unlock_all");
    ctx.barrier();
    let local = count_local(|o, b| win.read_local(o, b), cfg);
    (HtResult { time_ns, local_elements: local }, win)
}

fn init_local(win: &Win, cfg: &HtConfig) {
    win.write_local(0, &0u64.to_le_bytes());
    for s in 0..cfg.table_slots {
        win.write_local(slot_off(s), &0u64.to_le_bytes());
        win.write_local(slot_off(s) + 8, &NIL64.to_le_bytes());
    }
}

/// One-sided lookup: probe the owner's direct slot, then walk the
/// overflow chain with RMA gets — the random-read half of the
/// data-analytics motif. Requires an open passive epoch covering `owner`.
pub fn lookup_rma(win: &Win, cfg: &HtConfig, p: usize, key: u64) -> bool {
    let owner = owner_of(key, p);
    let slot = slot_of(key, cfg);
    let mut cell = [0u8; 8];
    win.get(&mut cell, owner, slot_off(slot)).expect("slot get");
    win.flush(owner).expect("slot flush");
    if u64::from_le_bytes(cell) == key {
        return true;
    }
    // Walk the chain: next pointers carry bit 63 as the "heap index" tag.
    let mut next = {
        let mut b = [0u8; 8];
        win.get(&mut b, owner, slot_off(slot) + 8).expect("chain get");
        win.flush(owner).expect("chain flush");
        u64::from_le_bytes(b)
    };
    let mut hops = 0;
    while next != NIL64 && next & (1 << 63) != 0 {
        let h = (next & !(1 << 63)) as usize;
        let mut kb = [0u8; 8];
        win.get(&mut kb, owner, heap_off(cfg, h)).expect("heap get");
        let mut nb = [0u8; 8];
        win.get(&mut nb, owner, heap_off(cfg, h) + 8).expect("heap next get");
        win.flush(owner).expect("heap flush");
        if u64::from_le_bytes(kb) == key {
            return true;
        }
        next = u64::from_le_bytes(nb);
        hops += 1;
        assert!(hops <= cfg.heap_cells, "cyclic overflow chain");
    }
    false
}

// -------------------------------------------------- notified (owner computes)

const HT_NOTIFY_TAG: u32 = 0x47_00A1;
const HT_DONE_TAG: u32 = 0x47_00FE;

// Inbox window layout (separate from the table window, whose layout stays
// byte-identical to the RMA backend so `count_local` / `lookup_rma` work
// on either):
//   0..8    done-notification landing pad (operand is informational)
//   8..    one region of `inserts_per_rank` key slots (8 B) per sender
//
// Dedicated per-sender regions mean slot allocation is a local counter at
// the sender — the scatter needs *no remote atomics at all*, only notified
// puts; the notification records' `source` field tells the owner how far
// into each region to read.
fn inbox_bytes(cfg: &HtConfig, p: usize) -> usize {
    8 + p * cfg.inserts_per_rank * 8
}

fn inbox_slot_off(cfg: &HtConfig, sender: u32, seq: usize) -> usize {
    8 + (sender as usize * cfg.inserts_per_rank + seq) * 8
}

/// Apply one insert to this rank's own volume with window-local reads and
/// writes, preserving the exact RMA chain encoding. No atomics: the owner
/// is the only writer of its table under this backend.
fn insert_local(win: &Win, cfg: &HtConfig, key: u64) {
    let slot = slot_of(key, cfg);
    let mut b = [0u8; 8];
    win.read_local(slot_off(slot), &mut b);
    if u64::from_le_bytes(b) == 0 {
        win.write_local(slot_off(slot), &key.to_le_bytes());
        return;
    }
    win.read_local(0, &mut b);
    let h = u64::from_le_bytes(b) as usize;
    assert!(h < cfg.heap_cells, "overflow heap exhausted");
    win.write_local(0, &(h as u64 + 1).to_le_bytes());
    win.read_local(slot_off(slot) + 8, &mut b);
    let head = u64::from_le_bytes(b);
    win.write_local(heap_off(cfg, h), &key.to_le_bytes());
    win.write_local(heap_off(cfg, h) + 8, &head.to_le_bytes());
    win.write_local(slot_off(slot) + 8, &(h as u64 | (1 << 63)).to_le_bytes());
}

/// Notified-access backend ("owner computes").
pub fn run_notified(ctx: &RankCtx, cfg: &HtConfig) -> HtResult {
    let (res, _win) = run_notified_keep_window(ctx, cfg);
    res
}

/// Notified-access backend, window-returning variant: instead of mutating
/// the owner's volume remotely with CAS/FAA polling loops, each rank
/// *ships the key* — a single `put_notify` into its own region of the
/// owner's inbox — and the owner applies inserts locally while consuming
/// its notification ring. The remote critical path per insert shrinks
/// from CAS (plus FAA + put + get/flush + CAS on every collision) to one
/// notified put, independent of the collision rate and free of the AMO
/// serialisation that hot table slots and cursors suffer.
///
/// Termination is fully one-sided, mirroring the MPI-1 backend: after its
/// last key each rank sends a notified done-AMO to every peer. Notified
/// puts are ordered per target, so once `p - 1` done records have been
/// consumed every incoming key record is already in the ring and a final
/// drain-until-dry yields the exact count. Ring overflow surfaces as a
/// transient backpressure error at the *sender*, which responds by
/// draining its own ring before retrying — that break of the
/// wait-while-full cycle is what makes the protocol deadlock-free at any
/// ring depth.
pub fn run_notified_keep_window(ctx: &RankCtx, cfg: &HtConfig) -> (HtResult, Win) {
    let p = ctx.size();
    let me = ctx.rank();
    let win = Win::allocate(ctx, win_bytes(cfg), 1).expect("table window");
    let inbox = Win::allocate(ctx, inbox_bytes(cfg, p), 1).expect("inbox window");
    init_local(&win, cfg);
    inbox.write_local(0, &0u64.to_le_bytes());
    ctx.barrier();
    inbox.lock_all().expect("lock_all");
    let t0 = ctx.now();
    // Keys received so far, per sender: region read-depth in the absorb
    // phase below.
    let mut keys_in = vec![0usize; p];
    let mut dones = 0usize;
    let drain = |keys_in: &mut [usize], dones: &mut usize| {
        while let Some(rec) =
            inbox.test_notify(fompi::ANY_SOURCE, fompi::ANY_TAG).expect("inbox drain")
        {
            match rec.tag {
                HT_NOTIFY_TAG => keys_in[rec.source as usize] += 1,
                HT_DONE_TAG => *dones += 1,
                t => unreachable!("unexpected notification tag {t:#x}"),
            }
        }
    };
    let mut seq = vec![0usize; p];
    for key in keys_for(me, cfg) {
        let owner = owner_of(key, p);
        if owner == me {
            insert_local(&win, cfg, key);
            continue;
        }
        let off = inbox_slot_off(cfg, me, seq[owner as usize]);
        seq[owner as usize] += 1;
        loop {
            match inbox.put_notify(&key.to_le_bytes(), owner, off, HT_NOTIFY_TAG) {
                Ok(()) => break,
                Err(e) if e.is_transient() => drain(&mut keys_in, &mut dones),
                Err(e) => panic!("notified key put failed: {e}"),
            }
        }
        drain(&mut keys_in, &mut dones);
    }
    for r in 0..p as u32 {
        if r == me {
            continue;
        }
        loop {
            match inbox.accumulate_notify(1, MpiOp::Sum, r, 0, HT_DONE_TAG) {
                Ok(()) => break,
                Err(e) if e.is_transient() => drain(&mut keys_in, &mut dones),
                Err(e) => panic!("done notification failed: {e}"),
            }
        }
    }
    while dones < p - 1 {
        drain(&mut keys_in, &mut dones);
        std::thread::yield_now();
    }
    drain(&mut keys_in, &mut dones);
    for (sender, &n) in keys_in.iter().enumerate() {
        for i in 0..n {
            let mut b = [0u8; 8];
            inbox.read_local(inbox_slot_off(cfg, sender as u32, i), &mut b);
            insert_local(&win, cfg, u64::from_le_bytes(b));
        }
    }
    let time_ns = ctx.now() - t0;
    inbox.unlock_all().expect("unlock_all");
    inbox.free(ctx);
    ctx.barrier();
    let local = count_local(|o, b| win.read_local(o, b), cfg);
    (HtResult { time_ns, local_elements: local }, win)
}

// -------------------------------------------------------------------- UPC

/// UPC backend: identical algorithm over `aadd`/`cas`.
pub fn run_upc(ctx: &RankCtx, cfg: &HtConfig) -> HtResult {
    let p = ctx.size();
    let a = SharedArray::all_alloc(ctx, win_bytes(cfg));
    a.write_local(0, &0u64.to_le_bytes());
    for s in 0..cfg.table_slots {
        a.write_local(slot_off(s), &0u64.to_le_bytes());
        a.write_local(slot_off(s) + 8, &NIL64.to_le_bytes());
    }
    a.barrier();
    let t0 = ctx.now();
    for key in keys_for(ctx.rank(), cfg) {
        let owner = owner_of(key, p);
        let slot = slot_of(key, cfg);
        if a.cas(owner, slot_off(slot), key, 0) == 0 {
            continue;
        }
        let h = a.aadd(owner, 0, 1) as usize;
        assert!(h < cfg.heap_cells, "overflow heap exhausted");
        a.memput(owner, heap_off(cfg, h), &key.to_le_bytes());
        loop {
            let mut cur = [0u8; 8];
            a.memget(&mut cur, owner, slot_off(slot) + 8);
            let head = u64::from_le_bytes(cur);
            a.memput(owner, heap_off(cfg, h) + 8, &head.to_le_bytes());
            a.fence();
            if a.cas(owner, slot_off(slot) + 8, h as u64 | (1 << 63), head) == head {
                break;
            }
        }
    }
    a.fence();
    let time_ns = ctx.now() - t0;
    a.barrier();
    let local = count_local(|o, b| a.read_local(o, b), cfg);
    HtResult { time_ns, local_elements: local }
}

// ------------------------------------------------------------------ MPI-1

const HT_TAG: u32 = 0x47_0000;
const DONE_TAG: u32 = 0x47_FFFF;

/// MPI-1 backend: active messages to the owner; the owner inserts locally.
/// Termination: every rank notifies every other of local completion (§4.1).
pub fn run_mpi1(ctx: &RankCtx, comm: &Comm, cfg: &HtConfig) -> HtResult {
    let p = ctx.size();
    let me = ctx.rank();
    // Local volume as plain memory (no remote access).
    let mut table = vec![(0u64, NIL64); cfg.table_slots];
    let mut heap = vec![(0u64, NIL64); cfg.heap_cells];
    let mut next_free = 0usize;
    let mut dones = 0usize;
    ctx.barrier();
    let t0 = ctx.now();
    let apply = |key: u64,
                 table: &mut Vec<(u64, u64)>,
                 heap: &mut Vec<(u64, u64)>,
                 next_free: &mut usize| {
        let slot = slot_of(key, cfg);
        if table[slot].0 == 0 {
            table[slot].0 = key;
        } else {
            let h = *next_free;
            *next_free += 1;
            assert!(h < cfg.heap_cells, "overflow heap exhausted");
            heap[h] = (key, table[slot].1);
            table[slot].1 = h as u64 | (1 << 63);
        }
    };
    let mut pending: Vec<u64> = keys_for(me, cfg).collect();
    pending.reverse();
    let mut sent_done = false;
    loop {
        // Drain incoming inserts and done notifications.
        while let Some(st) = comm.iprobe(ANY_SOURCE, HT_TAG) {
            let mut b = [0u8; 8];
            comm.recv(&mut b, st.src, HT_TAG).expect("ht recv");
            apply(u64::from_le_bytes(b), &mut table, &mut heap, &mut next_free);
        }
        while comm.iprobe(ANY_SOURCE, DONE_TAG).is_some() {
            let mut b = [0u8; 1];
            comm.recv(&mut b, ANY_SOURCE, DONE_TAG).expect("done recv");
            dones += 1;
        }
        if let Some(key) = pending.pop() {
            let owner = owner_of(key, p);
            if owner == me {
                apply(key, &mut table, &mut heap, &mut next_free);
            } else {
                comm.send(&key.to_le_bytes(), owner, HT_TAG).expect("ht send");
            }
        } else if !sent_done {
            for r in 0..p as u32 {
                if r != me {
                    comm.send(&[1], r, DONE_TAG).expect("done send");
                }
            }
            sent_done = true;
        } else if dones == p - 1 {
            // One final drain: sends from peers that finished before us
            // may still be queued.
            while let Some(st) = comm.iprobe(ANY_SOURCE, HT_TAG) {
                let mut b = [0u8; 8];
                comm.recv(&mut b, st.src, HT_TAG).expect("ht recv");
                apply(u64::from_le_bytes(b), &mut table, &mut heap, &mut next_free);
            }
            break;
        } else {
            std::thread::yield_now();
        }
    }
    let time_ns = ctx.now() - t0;
    ctx.barrier();
    // There is a subtlety: messages can still be in flight when the first
    // DONE arrives; the barrier above plus a final drain closes the race.
    while let Some(st) = comm.iprobe(ANY_SOURCE, HT_TAG) {
        let mut b = [0u8; 8];
        comm.recv(&mut b, st.src, HT_TAG).expect("ht recv");
        apply(u64::from_le_bytes(b), &mut table, &mut heap, &mut next_free);
    }
    ctx.barrier();
    let local = table.iter().filter(|(k, _)| *k != 0).count() + next_free;
    HtResult { time_ns, local_elements: local }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_msg::MsgEngine;
    use fompi_runtime::Universe;

    fn verify_total(results: &[HtResult], cfg: &HtConfig, p: usize) {
        let total: usize = results.iter().map(|r| r.local_elements).sum();
        assert_eq!(total, p * cfg.inserts_per_rank, "elements lost or duplicated");
    }

    #[test]
    fn rma_inserts_all_elements() {
        let cfg = HtConfig { inserts_per_rank: 200, table_slots: 64, heap_cells: 2048, seed: 1 };
        let p = 4;
        let got = Universe::new(p).node_size(2).run(|ctx| run_rma(ctx, &cfg));
        verify_total(&got, &cfg, p);
    }

    #[test]
    fn upc_inserts_all_elements() {
        let cfg = HtConfig { inserts_per_rank: 150, table_slots: 64, heap_cells: 2048, seed: 1 };
        let p = 4;
        let got = Universe::new(p).node_size(2).run(|ctx| run_upc(ctx, &cfg));
        verify_total(&got, &cfg, p);
    }

    #[test]
    fn mpi1_inserts_all_elements() {
        let cfg = HtConfig { inserts_per_rank: 120, table_slots: 64, heap_cells: 2048, seed: 1 };
        let p = 4;
        let engine = MsgEngine::new(p);
        let got = Universe::new(p).node_size(2).run(move |ctx| {
            let comm = Comm::attach(ctx, &engine);
            run_mpi1(ctx, &comm, &cfg)
        });
        verify_total(&got, &cfg, p);
    }

    #[test]
    fn rma_lookup_finds_all_keys_and_rejects_absent() {
        // Small table forces chains, so lookups exercise the remote walk.
        let cfg = HtConfig { inserts_per_rank: 60, table_slots: 32, heap_cells: 1024, seed: 4 };
        let p = 4;
        let got = Universe::new(p).node_size(2).run(|ctx| {
            let (_res, win) = run_rma_keep_window(ctx, &cfg);
            win.lock_all().unwrap();
            let mut found_all = true;
            for key in keys_for(ctx.rank(), &cfg) {
                found_all &= lookup_rma(&win, &cfg, p, key);
            }
            // Keys that were never inserted must not be found (even
            // nonzero odd ones from a different generator stream).
            let mut ghosts = false;
            for i in 0..20u64 {
                let ghost = crate::splitmix64(0xDEAD_0000 | i) | 1;
                ghosts |= lookup_rma(&win, &cfg, p, ghost);
            }
            win.unlock_all().unwrap();
            ctx.barrier();
            (found_all, ghosts)
        });
        for (rank, (found, ghosts)) in got.iter().enumerate() {
            assert!(*found, "rank {rank} lost keys");
            assert!(!*ghosts, "rank {rank} found a never-inserted key");
        }
    }

    #[test]
    fn notified_inserts_all_elements() {
        let cfg = HtConfig { inserts_per_rank: 200, table_slots: 64, heap_cells: 2048, seed: 1 };
        let p = 4;
        let got = Universe::new(p).node_size(2).run(|ctx| run_notified(ctx, &cfg));
        verify_total(&got, &cfg, p);
    }

    #[test]
    fn notified_layout_is_lookup_compatible() {
        // The owner-computes backend must leave the exact chain encoding
        // the one-sided lookup walks.
        let cfg = HtConfig { inserts_per_rank: 60, table_slots: 32, heap_cells: 1024, seed: 4 };
        let p = 4;
        let got = Universe::new(p).node_size(2).run(|ctx| {
            let (_res, win) = run_notified_keep_window(ctx, &cfg);
            win.lock_all().unwrap();
            let mut found_all = true;
            for key in keys_for(ctx.rank(), &cfg) {
                found_all &= lookup_rma(&win, &cfg, p, key);
            }
            win.unlock_all().unwrap();
            ctx.barrier();
            found_all
        });
        for (rank, found) in got.iter().enumerate() {
            assert!(*found, "rank {rank} lost keys under the notified backend");
        }
    }

    #[test]
    fn notified_survives_tiny_notification_rings() {
        // Depth 2 forces constant overflow backpressure; the
        // drain-own-ring-on-transient-error loop must keep the exchange
        // deadlock-free and lossless.
        let cfg = HtConfig { inserts_per_rank: 80, table_slots: 64, heap_cells: 1024, seed: 9 };
        let p = 3;
        let got = Universe::new(p).node_size(1).notify_depth(2).run(|ctx| run_notified(ctx, &cfg));
        verify_total(&got, &cfg, p);
    }

    #[test]
    fn notified_beats_amo_polling_under_collisions() {
        // Small table → long chains: the CAS/FAA/get-flush retry path of
        // the polling backend grows with the collision rate, while the
        // notified owner-computes path stays at one FAA + one notified put
        // per insert regardless.
        // The ring is sized for the worst-case fan-in so no overflow
        // stalls pollute the comparison (backpressure pricing is covered
        // by notified_survives_tiny_notification_rings).
        let cfg = HtConfig { inserts_per_rank: 100, table_slots: 8, heap_cells: 2048, seed: 7 };
        let p = 4;
        let rma = Universe::new(p).node_size(1).run(|ctx| run_rma(ctx, &cfg));
        let na = Universe::new(p).node_size(1).notify_depth(512).run(|ctx| run_notified(ctx, &cfg));
        let t_rma = crate::max_time(&rma.iter().map(|r| r.time_ns).collect::<Vec<_>>());
        let t_na = crate::max_time(&na.iter().map(|r| r.time_ns).collect::<Vec<_>>());
        assert!(
            t_na < t_rma,
            "notified inserts ({t_na} ns) should beat AMO polling ({t_rma} ns) under collisions"
        );
    }

    #[test]
    fn heavy_collisions_exercise_overflow() {
        // Tiny table forces almost everything into the overflow heap.
        let cfg = HtConfig { inserts_per_rank: 100, table_slots: 2, heap_cells: 1024, seed: 7 };
        let p = 3;
        let got = Universe::new(p).node_size(1).run(|ctx| run_rma(ctx, &cfg));
        verify_total(&got, &cfg, p);
        // Overflow must actually have been used.
        assert!(got.iter().map(|r| r.local_elements).sum::<usize>() > 3 * 2);
    }

    #[test]
    fn rma_beats_mpi1_inter_node_rate() {
        let cfg = HtConfig { inserts_per_rank: 64, table_slots: 4096, heap_cells: 1024, seed: 3 };
        let p = 4;
        let rma = Universe::new(p).node_size(1).run(|ctx| run_rma(ctx, &cfg));
        let engine = MsgEngine::new(p);
        let mpi1 = Universe::new(p).node_size(1).run(move |ctx| {
            let comm = Comm::attach(ctx, &engine);
            run_mpi1(ctx, &comm, &cfg)
        });
        let t_rma = crate::max_time(&rma.iter().map(|r| r.time_ns).collect::<Vec<_>>());
        let t_mpi = crate::max_time(&mpi1.iter().map(|r| r.time_ns).collect::<Vec<_>>());
        assert!(
            t_rma < t_mpi,
            "RMA ({t_rma} ns) should beat MPI-1 active messages ({t_mpi} ns) across nodes"
        );
    }
}
