//! 3-D Fast Fourier Transform with communication/computation overlap
//! (§4.3, Figure 7c — NAS FT benchmark style).
//!
//! A complex n³ grid is decomposed into z-slabs. Each rank FFTs its planes
//! in x and y, redistributes to x-slabs (the global transpose), and FFTs in
//! z. Following Nishtala/Bell (and the paper), the overlapped variants
//! "start to communicate the data of a plane as soon as it is available and
//! complete the communication as late as possible":
//!
//! * [`run_mpi1`] with `overlap = false` — compute everything, one bulk
//!   exchange, compute (the MPI-1 baseline);
//! * [`run_mpi1`] with `overlap = true` — per-plane nonblocking sends
//!   (the "default nonblocking MPI" curve);
//! * [`run_rma`] — per-plane `MPI_Put` directly into the target slab inside
//!   a single fence epoch (the foMPI curve);
//! * [`run_upc`] — per-plane `upc_memput` + barrier (the UPC slab curve).
//!
//! All variants produce bit-identical results (same operation order), so
//! tests verify them against a naive DFT and against each other.

use fompi::Win;
use fompi_msg::Comm;
use fompi_pgas::SharedArray;
use fompi_runtime::RankCtx;

/// A complex number (f64 re/im) — the FFT element type.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Construct.
    pub fn new(re: f64, im: f64) -> C64 {
        C64 { re, im }
    }

    /// Squared magnitude.
    pub fn norm2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Mul for C64 {
    type Output = C64;
    fn mul(self, o: C64) -> C64 {
        C64::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }
}

impl std::ops::Add for C64 {
    type Output = C64;
    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for C64 {
    type Output = C64;
    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }
}

/// In-place iterative radix-2 Cooley-Tukey FFT. `data.len()` must be a
/// power of two.
pub fn fft_1d(data: &mut [C64], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = C64::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = C64::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for d in data {
            d.re *= inv;
            d.im *= inv;
        }
    }
}

/// Naive O(n²) DFT for verification.
pub fn dft_naive(data: &[C64]) -> Vec<C64> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = C64::default();
            for (j, &x) in data.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = acc + x * C64::new(ang.cos(), ang.sin());
            }
            acc
        })
        .collect()
}

/// FFT flop count: 5 n log2 n (the NAS convention).
pub fn fft_flops(n: usize) -> f64 {
    5.0 * n as f64 * (n as f64).log2()
}

/// Problem description.
#[derive(Debug, Clone, Copy)]
pub struct FftConfig {
    /// Grid edge (n³ total, power of two, divisible by p).
    pub n: usize,
    /// Input seed.
    pub seed: u64,
}

/// Per-rank result.
#[derive(Debug, Clone)]
pub struct FftResult {
    /// Virtual ns for the full transform.
    pub time_ns: f64,
    /// This rank's x-slab of the transformed grid, layout
    /// `[(z·n + y)·nxl + xl]`.
    pub local_out: Vec<C64>,
}

impl FftResult {
    /// GFlop/s achieved for the full 3-D transform across `p` ranks.
    pub fn gflops(&self, n: usize) -> f64 {
        let total = n * n * n;
        fft_flops(total) / self.time_ns
    }
}

/// Deterministic input value at global coordinates.
pub fn input_at(cfg: &FftConfig, x: usize, y: usize, z: usize) -> C64 {
    let h = crate::splitmix64(cfg.seed ^ ((x as u64) << 40) ^ ((y as u64) << 20) ^ z as u64);
    let re = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
    let im = ((crate::splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
    C64::new(re, im)
}

/// Serial reference: full 3-D FFT of the same input, layout
/// `[(z·n + y)·n + x]`.
pub fn fft3d_serial(cfg: &FftConfig) -> Vec<C64> {
    let n = cfg.n;
    let mut grid = vec![C64::default(); n * n * n];
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                grid[(z * n + y) * n + x] = input_at(cfg, x, y, z);
            }
        }
    }
    // x direction.
    for z in 0..n {
        for y in 0..n {
            fft_1d(&mut grid[(z * n + y) * n..(z * n + y) * n + n], false);
        }
    }
    // y direction.
    let mut col = vec![C64::default(); n];
    for z in 0..n {
        for x in 0..n {
            for y in 0..n {
                col[y] = grid[(z * n + y) * n + x];
            }
            fft_1d(&mut col, false);
            for y in 0..n {
                grid[(z * n + y) * n + x] = col[y];
            }
        }
    }
    // z direction.
    for y in 0..n {
        for x in 0..n {
            for z in 0..n {
                col[z] = grid[(z * n + y) * n + x];
            }
            fft_1d(&mut col, false);
            for z in 0..n {
                grid[(z * n + y) * n + x] = col[z];
            }
        }
    }
    grid
}

// ------------------------------------------------------ distributed pieces

struct Slab {
    n: usize,
    p: usize,
    nzl: usize,
    nxl: usize,
    me: usize,
}

impl Slab {
    fn new(ctx: &RankCtx, cfg: &FftConfig) -> Slab {
        let n = cfg.n;
        let p = ctx.size();
        assert!(n.is_multiple_of(p), "n must be divisible by p");
        Slab { n, p, nzl: n / p, nxl: n / p, me: ctx.rank() as usize }
    }

    /// Fill this rank's z-slab with input data (layout `[zl][y][x]`).
    fn load_input(&self, cfg: &FftConfig) -> Vec<C64> {
        let n = self.n;
        let mut data = vec![C64::default(); self.nzl * n * n];
        for zl in 0..self.nzl {
            let z = self.me * self.nzl + zl;
            for y in 0..n {
                for x in 0..n {
                    data[(zl * n + y) * n + x] = input_at(cfg, x, y, z);
                }
            }
        }
        data
    }

    /// FFT plane `zl` in x then y; charge flops.
    fn fft_plane(&self, ctx: &RankCtx, data: &mut [C64], zl: usize) {
        let n = self.n;
        let plane = &mut data[zl * n * n..(zl + 1) * n * n];
        for y in 0..n {
            fft_1d(&mut plane[y * n..y * n + n], false);
        }
        let mut col = vec![C64::default(); n];
        for x in 0..n {
            for y in 0..n {
                col[y] = plane[y * n + x];
            }
            fft_1d(&mut col, false);
            for y in 0..n {
                plane[y * n + x] = col[y];
            }
        }
        ctx.ep().charge_flops(2.0 * n as f64 * fft_flops(n));
    }

    /// Pack plane `zl`'s chunk destined for target `t` (bytes).
    fn pack_chunk(&self, data: &[C64], zl: usize, t: usize) -> Vec<u8> {
        let n = self.n;
        let nxl = self.nxl;
        let mut out = Vec::with_capacity(n * nxl * 16);
        for y in 0..n {
            for xl in 0..nxl {
                let c = data[(zl * n + y) * n + t * nxl + xl];
                out.extend_from_slice(&c.re.to_le_bytes());
                out.extend_from_slice(&c.im.to_le_bytes());
            }
        }
        out
    }

    /// Byte offset of plane `z` in the x-slab receive buffer.
    fn slab_plane_off(&self, z: usize) -> usize {
        z * self.n * self.nxl * 16
    }

    /// Total x-slab bytes.
    fn slab_bytes(&self) -> usize {
        self.n * self.n * self.nxl * 16
    }

    /// Decode the x-slab byte buffer into complex values.
    fn decode_slab(&self, bytes: &[u8]) -> Vec<C64> {
        bytes
            .chunks_exact(16)
            .map(|b| {
                C64::new(
                    f64::from_le_bytes(b[0..8].try_into().unwrap()),
                    f64::from_le_bytes(b[8..16].try_into().unwrap()),
                )
            })
            .collect()
    }

    /// Final z-direction FFT over the x-slab; charge flops.
    fn fft_z(&self, ctx: &RankCtx, slab: &mut [C64]) {
        let n = self.n;
        let nxl = self.nxl;
        let mut col = vec![C64::default(); n];
        for y in 0..n {
            for xl in 0..nxl {
                for z in 0..n {
                    col[z] = slab[(z * n + y) * nxl + xl];
                }
                fft_1d(&mut col, false);
                for z in 0..n {
                    slab[(z * n + y) * nxl + xl] = col[z];
                }
            }
        }
        ctx.ep().charge_flops(n as f64 * nxl as f64 * fft_flops(n));
    }
}

// ------------------------------------------------------------------ MPI-1

/// Message-passing variant. With `overlap`, each plane's chunks are sent
/// (nonblocking) as soon as the plane is transformed; otherwise one bulk
/// alltoall runs after all planes.
pub fn run_mpi1(ctx: &RankCtx, comm: &Comm, cfg: &FftConfig, overlap: bool) -> FftResult {
    let s = Slab::new(ctx, cfg);
    let (n, p, nzl, nxl, me) = (s.n, s.p, s.nzl, s.nxl, s.me);
    let mut data = s.load_input(cfg);
    ctx.barrier();
    let t0 = ctx.now();
    let mut slab_bytes = vec![0u8; s.slab_bytes()];
    if overlap {
        const FFT_TAG: u32 = 0xFF7_0000;
        // Pre-post receives for every incoming plane chunk.
        let chunk = n * nxl * 16;
        let mut reqs = Vec::new();
        {
            let mut rest: &mut [u8] = &mut slab_bytes;
            let mut chunks: Vec<&mut [u8]> = Vec::new();
            while !rest.is_empty() {
                let (a, b) = rest.split_at_mut(chunk);
                chunks.push(a);
                rest = b;
            }
            // chunks[z] is plane z's slot; plane z comes from rank z / nzl.
            for (z, buf) in chunks.into_iter().enumerate() {
                let src = (z / nzl) as u32;
                if src as usize == me {
                    continue;
                }
                reqs.push(comm.irecv(buf, src, FFT_TAG + z as u32).expect("irecv"));
            }
            for zl in 0..nzl {
                s.fft_plane(ctx, &mut data, zl);
                let z = me * nzl + zl;
                for t in 0..p {
                    if t == me {
                        continue; // self chunk copied after the borrows end
                    }
                    let bytes = s.pack_chunk(&data, zl, t);
                    comm.isend(&bytes, t as u32, FFT_TAG + z as u32).expect("isend");
                }
            }
            for r in reqs {
                r.wait(ctx.ep());
            }
        }
        // Local chunks (self → self).
        for zl in 0..nzl {
            let z = me * nzl + zl;
            let bytes = s.pack_chunk(&data, zl, me);
            slab_bytes[s.slab_plane_off(z)..s.slab_plane_off(z) + bytes.len()]
                .copy_from_slice(&bytes);
        }
    } else {
        // Bulk variant: compute all planes, then one alltoall.
        for zl in 0..nzl {
            s.fft_plane(ctx, &mut data, zl);
        }
        let block = nzl * n * nxl * 16;
        let mut send = vec![0u8; p * block];
        for t in 0..p {
            for zl in 0..nzl {
                let bytes = s.pack_chunk(&data, zl, t);
                let off = t * block + zl * n * nxl * 16;
                send[off..off + bytes.len()].copy_from_slice(&bytes);
            }
        }
        let mut recv = vec![0u8; p * block];
        comm.alltoall(&send, &mut recv, block);
        // recv[s] holds source s's planes z = s*nzl + zl.
        for src in 0..p {
            for zl in 0..nzl {
                let z = src * nzl + zl;
                let from = src * block + zl * n * nxl * 16;
                let to = s.slab_plane_off(z);
                slab_bytes[to..to + n * nxl * 16].copy_from_slice(&recv[from..from + n * nxl * 16]);
            }
        }
    }
    let mut slab = s.decode_slab(&slab_bytes);
    s.fft_z(ctx, &mut slab);
    ctx.barrier();
    FftResult { time_ns: ctx.now() - t0, local_out: slab }
}

// -------------------------------------------------------------------- RMA

/// foMPI variant: per-plane puts straight into the target slab, one fence
/// epoch, communication completed "as late as possible".
pub fn run_rma(ctx: &RankCtx, cfg: &FftConfig) -> FftResult {
    let s = Slab::new(ctx, cfg);
    let (p, nzl, me) = (s.p, s.nzl, s.me);
    let win = Win::allocate(ctx, s.slab_bytes(), 1).expect("fft window");
    let mut data = s.load_input(cfg);
    win.fence().expect("fence open");
    let t0 = ctx.now();
    let mut local_chunks = Vec::with_capacity(nzl);
    for zl in 0..nzl {
        s.fft_plane(ctx, &mut data, zl);
        let z = me * nzl + zl;
        // Communicate this plane immediately (overlapped with the next
        // plane's compute).
        for t in 0..p {
            let bytes = s.pack_chunk(&data, zl, t);
            if t == me {
                local_chunks.push((z, bytes));
            } else {
                win.put(&bytes, t as u32, s.slab_plane_off(z)).expect("plane put");
            }
        }
    }
    for (z, bytes) in local_chunks {
        win.write_local(s.slab_plane_off(z), &bytes);
    }
    win.fence().expect("fence close");
    let mut slab_bytes = vec![0u8; s.slab_bytes()];
    win.read_local(0, &mut slab_bytes);
    let mut slab = s.decode_slab(&slab_bytes);
    s.fft_z(ctx, &mut slab);
    ctx.barrier();
    FftResult { time_ns: ctx.now() - t0, local_out: slab }
}

// -------------------------------------------------------------------- UPC

/// UPC slab variant: `upc_memput` per plane chunk, completed by a barrier.
pub fn run_upc(ctx: &RankCtx, cfg: &FftConfig) -> FftResult {
    let s = Slab::new(ctx, cfg);
    let (p, nzl, me) = (s.p, s.nzl, s.me);
    let arr = SharedArray::all_alloc(ctx, s.slab_bytes());
    let mut data = s.load_input(cfg);
    arr.barrier();
    let t0 = ctx.now();
    for zl in 0..nzl {
        s.fft_plane(ctx, &mut data, zl);
        let z = me * nzl + zl;
        for t in 0..p {
            let bytes = s.pack_chunk(&data, zl, t);
            if t == me {
                arr.write_local(s.slab_plane_off(z), &bytes);
            } else {
                arr.memput(t as u32, s.slab_plane_off(z), &bytes);
            }
        }
    }
    arr.barrier();
    let mut slab_bytes = vec![0u8; s.slab_bytes()];
    arr.read_local(0, &mut slab_bytes);
    let mut slab = s.decode_slab(&slab_bytes);
    s.fft_z(ctx, &mut slab);
    ctx.barrier();
    FftResult { time_ns: ctx.now() - t0, local_out: slab }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_msg::MsgEngine;
    use fompi_runtime::Universe;

    #[test]
    fn fft1d_matches_naive_dft() {
        let data: Vec<C64> =
            (0..16).map(|i| C64::new((i as f64).sin(), (i as f64 * 0.3).cos())).collect();
        let mut fast = data.clone();
        fft_1d(&mut fast, false);
        let slow = dft_naive(&data);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn fft1d_inverse_roundtrip() {
        let data: Vec<C64> = (0..32).map(|i| C64::new(i as f64, -(i as f64))).collect();
        let mut w = data.clone();
        fft_1d(&mut w, false);
        fft_1d(&mut w, true);
        for (a, b) in w.iter().zip(&data) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    fn check_against_serial(cfg: &FftConfig, p: usize, results: &[FftResult]) {
        let reference = fft3d_serial(cfg);
        let n = cfg.n;
        let nxl = n / p;
        for (rank, res) in results.iter().enumerate() {
            for z in 0..n {
                for y in 0..n {
                    for xl in 0..nxl {
                        let got = res.local_out[(z * n + y) * nxl + xl];
                        let want = reference[(z * n + y) * n + rank * nxl + xl];
                        assert!(
                            (got.re - want.re).abs() < 1e-6 && (got.im - want.im).abs() < 1e-6,
                            "mismatch at rank {rank} z{z} y{y} x{xl}: {got:?} vs {want:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mpi1_bulk_matches_serial() {
        let cfg = FftConfig { n: 8, seed: 11 };
        let p = 4;
        let engine = MsgEngine::new(p);
        let got = Universe::new(p).node_size(2).run(move |ctx| {
            let comm = Comm::attach(ctx, &engine);
            run_mpi1(ctx, &comm, &cfg, false)
        });
        check_against_serial(&cfg, p, &got);
    }

    #[test]
    fn mpi1_overlap_matches_serial() {
        let cfg = FftConfig { n: 8, seed: 12 };
        let p = 2;
        let engine = MsgEngine::new(p);
        let got = Universe::new(p).node_size(1).run(move |ctx| {
            let comm = Comm::attach(ctx, &engine);
            run_mpi1(ctx, &comm, &cfg, true)
        });
        check_against_serial(&cfg, p, &got);
    }

    #[test]
    fn rma_matches_serial() {
        let cfg = FftConfig { n: 8, seed: 13 };
        let p = 4;
        let got = Universe::new(p).node_size(2).run(move |ctx| run_rma(ctx, &cfg));
        check_against_serial(&cfg, p, &got);
    }

    #[test]
    fn upc_matches_serial() {
        let cfg = FftConfig { n: 8, seed: 14 };
        let p = 2;
        let got = Universe::new(p).node_size(2).run(move |ctx| run_upc(ctx, &cfg));
        check_against_serial(&cfg, p, &got);
    }

    #[test]
    fn parseval_energy_conserved() {
        // ‖FFT(x)‖² = n·‖x‖² for our unnormalised forward transform —
        // checked on the distributed result.
        let cfg = FftConfig { n: 8, seed: 21 };
        let p = 4;
        let got = Universe::new(p).node_size(2).run(move |ctx| {
            let r = run_rma(ctx, &cfg);
            r.local_out.iter().map(|c| c.norm2()).sum::<f64>()
        });
        let freq_energy: f64 = got.iter().sum();
        let n = cfg.n;
        let mut time_energy = 0.0;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    time_energy += input_at(&cfg, x, y, z).norm2();
                }
            }
        }
        let expect = time_energy * (n * n * n) as f64;
        assert!(
            (freq_energy - expect).abs() < 1e-6 * expect,
            "Parseval violated: {freq_energy} vs {expect}"
        );
    }

    #[test]
    fn gflops_reporting_consistent() {
        let cfg = FftConfig { n: 8, seed: 1 };
        let engine = MsgEngine::new(2);
        let got = Universe::new(2).node_size(1).run(move |ctx| {
            let c = Comm::attach(ctx, &engine);
            run_mpi1(ctx, &c, &cfg, false)
        });
        let g = got[0].gflops(cfg.n);
        assert!(g.is_finite() && g > 0.0);
    }

    #[test]
    fn rma_overlap_not_slower_than_bulk_mpi1() {
        let cfg = FftConfig { n: 16, seed: 15 };
        let p = 4;
        let engine = MsgEngine::new(p);
        let mpi = Universe::new(p).node_size(1).run(move |ctx| {
            let comm = Comm::attach(ctx, &engine);
            run_mpi1(ctx, &comm, &cfg, false)
        });
        let rma = Universe::new(p).node_size(1).run(move |ctx| run_rma(ctx, &cfg));
        let t_mpi = crate::max_time(&mpi.iter().map(|r| r.time_ns).collect::<Vec<_>>());
        let t_rma = crate::max_time(&rma.iter().map(|r| r.time_ns).collect::<Vec<_>>());
        assert!(
            t_rma <= t_mpi * 1.05,
            "overlapped RMA ({t_rma}) should not lose to bulk MPI-1 ({t_mpi})"
        );
    }
}
