//! # fompi-apps — the paper's application studies, executable
//!
//! §4 of the paper evaluates foMPI on two motifs and two applications; all
//! four are implemented here with the same backend matrix the paper uses:
//!
//! * [`hashtable`] — distributed hashtable with random inserts
//!   (data-analytics motif, Figure 7a): MPI-1 active messages vs foMPI
//!   RMA atomics vs UPC atomics;
//! * [`dsde`] — dynamic sparse data exchange (irregular-application motif,
//!   Figure 7b): personalized alltoall vs reduce_scatter vs the NBX
//!   nonblocking-consensus protocol vs RMA accumulates;
//! * [`fft`] — 2D-decomposed 3-D FFT with communication/computation
//!   overlap (Figure 7c): blocking MPI-1 vs overlapped RMA/UPC slabs;
//! * [`milc`] — a MIMD Lattice Computation proxy: 4-D stencil
//!   conjugate-gradient solver with 8-direction halo exchange (Figure 8).
//!
//! Beyond the paper's four, [`kv`] is a served key-value store built on
//! the `fompi-txn` transaction layer: Zipf-skewed mixed read/write load
//! against versioned bucket tables, with two-key transfers as the
//! multi-key-transaction stressor.
//!
//! Every motif returns both a *correctness artefact* (checked in tests: all
//! elements present, all messages delivered, FFT matches a naive DFT, CG
//! residual converges identically across backends) and the per-rank virtual
//! time used by the benchmark harness.

pub mod dsde;
pub mod fft;
pub mod hashtable;
pub mod kv;
pub mod milc;

/// Max virtual time across ranks — the completion time a benchmark reports.
pub fn max_time(times: &[f64]) -> f64 {
    times.iter().cloned().fold(0.0, f64::max)
}

/// splitmix64 — the hash used to scatter keys across ranks and slots
/// (re-exported from the fabric's in-repo PRNG module).
pub use fompi_fabric::rng::splitmix64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_spreads_bits() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a & 0xFFFF, b & 0xFFFF);
    }

    #[test]
    fn max_time_of_empty_is_zero() {
        assert_eq!(max_time(&[]), 0.0);
        assert_eq!(max_time(&[1.0, 5.0, 2.0]), 5.0);
    }
}
