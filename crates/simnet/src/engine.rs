//! Discrete-event simulation core.
//!
//! A [`Sim`] owns `n` [`Actor`]s and an event heap. Actors react to typed
//! events, send messages (delivered after a caller-computed delay — usually
//! from [`crate::net::LogGP`]) and set timers. Determinism: ties in time
//! break by sequence number, so runs are reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event in flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Delivery time (ns).
    pub time: f64,
    /// Destination actor.
    pub dst: usize,
    /// Source actor (self for timers).
    pub src: usize,
    /// Application-defined event kind.
    pub kind: u64,
    /// Application-defined payload.
    pub payload: u64,
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    ev: Event,
    seq: u64,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.ev.time == other.ev.time && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (time, seq) via reversed comparison.
        other
            .ev
            .time
            .partial_cmp(&self.ev.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// What an actor can do during a callback.
pub struct Api {
    now: f64,
    me: usize,
    outbox: Vec<(f64, Event)>,
}

impl Api {
    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// This actor's id.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Deliver `kind`/`payload` to `dst` after `delay` ns.
    pub fn send_after(&mut self, dst: usize, delay: f64, kind: u64, payload: u64) {
        debug_assert!(delay >= 0.0);
        self.outbox.push((
            self.now + delay,
            Event { time: self.now + delay, dst, src: self.me, kind, payload },
        ));
    }

    /// Set a timer on self.
    pub fn timer(&mut self, delay: f64, kind: u64, payload: u64) {
        let me = self.me;
        self.send_after(me, delay, kind, payload);
    }
}

/// A simulated process.
pub trait Actor {
    /// Called once at time 0.
    fn start(&mut self, api: &mut Api);
    /// Called per delivered event.
    fn on(&mut self, ev: Event, api: &mut Api);
    /// Completion time to report (or None if never finished).
    fn done_at(&self) -> Option<f64>;
}

/// The simulator.
pub struct Sim<A: Actor> {
    actors: Vec<A>,
    heap: BinaryHeap<Queued>,
    seq: u64,
    events_processed: u64,
}

impl<A: Actor> Sim<A> {
    /// Build from actors.
    pub fn new(actors: Vec<A>) -> Self {
        Sim { actors, heap: BinaryHeap::new(), seq: 0, events_processed: 0 }
    }

    fn flush(&mut self, outbox: Vec<(f64, Event)>) {
        for (_, ev) in outbox {
            self.seq += 1;
            self.heap.push(Queued { ev, seq: self.seq });
        }
    }

    /// Run to quiescence (or `max_events`). Returns per-actor completion
    /// times.
    pub fn run(&mut self, max_events: u64) -> Vec<Option<f64>> {
        for i in 0..self.actors.len() {
            let mut api = Api { now: 0.0, me: i, outbox: Vec::new() };
            self.actors[i].start(&mut api);
            let out = std::mem::take(&mut api.outbox);
            self.flush(out);
        }
        while let Some(q) = self.heap.pop() {
            self.events_processed += 1;
            if self.events_processed > max_events {
                panic!("simulation exceeded {max_events} events — runaway protocol?");
            }
            let ev = q.ev;
            let mut api = Api { now: ev.time, me: ev.dst, outbox: Vec::new() };
            self.actors[ev.dst].on(ev, &mut api);
            let out = std::mem::take(&mut api.outbox);
            self.flush(out);
        }
        self.actors.iter().map(|a| a.done_at()).collect()
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Access the actors after a run.
    pub fn actors(&self) -> &[A] {
        &self.actors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong: actor 0 sends to 1 and back, 10 hops of 100 ns.
    struct Ping {
        id: usize,
        hops_left: u64,
        done: Option<f64>,
    }

    impl Actor for Ping {
        fn start(&mut self, api: &mut Api) {
            if self.id == 0 {
                api.send_after(1, 100.0, 1, self.hops_left);
            }
        }
        fn on(&mut self, ev: Event, api: &mut Api) {
            // payload = hops remaining including the one just taken.
            if ev.payload > 1 {
                let peer = 1 - self.id;
                api.send_after(peer, 100.0, 1, ev.payload - 1);
            }
            self.done = Some(api.now());
        }
        fn done_at(&self) -> Option<f64> {
            self.done
        }
    }

    #[test]
    fn ping_pong_timing_is_exact() {
        let actors = vec![
            Ping { id: 0, hops_left: 10, done: None },
            Ping { id: 1, hops_left: 10, done: None },
        ];
        let mut sim = Sim::new(actors);
        let done = sim.run(1_000);
        // 10 hops of 100 ns: last delivery at 1000 ns.
        let latest = done.iter().flatten().cloned().fold(0.0, f64::max);
        assert_eq!(latest, 1000.0);
    }

    #[test]
    fn deterministic_tie_breaking() {
        struct Tied {
            order: Vec<u64>,
            done: Option<f64>,
        }
        impl Actor for Tied {
            fn start(&mut self, api: &mut Api) {
                // Three events at the identical time.
                api.timer(5.0, 1, 10);
                api.timer(5.0, 1, 20);
                api.timer(5.0, 1, 30);
            }
            fn on(&mut self, ev: Event, api: &mut Api) {
                self.order.push(ev.payload);
                self.done = Some(api.now());
            }
            fn done_at(&self) -> Option<f64> {
                self.done
            }
        }
        let run = || {
            let mut sim = Sim::new(vec![Tied { order: vec![], done: None }]);
            sim.run(100);
            sim.actors()[0].order.clone()
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![10, 20, 30]); // FIFO among ties
    }

    #[test]
    #[should_panic(expected = "runaway")]
    fn event_cap_trips() {
        struct Loopy;
        impl Actor for Loopy {
            fn start(&mut self, api: &mut Api) {
                api.timer(1.0, 0, 0);
            }
            fn on(&mut self, _ev: Event, api: &mut Api) {
                api.timer(1.0, 0, 0);
            }
            fn done_at(&self) -> Option<f64> {
                None
            }
        }
        Sim::new(vec![Loopy]).run(1_000);
    }
}
