//! Event-driven protocol simulations on the DES engine.
//!
//! Where the closed-form charges in [`crate::figures`] assume balanced
//! execution, these replay protocols message by message:
//!
//! * [`nbx_time`] — the NBX dynamic-sparse-data-exchange: synchronous
//!   sends to random targets interleaved with the nonblocking-consensus
//!   dissemination barrier; finishing skew and message interleaving are
//!   captured exactly;
//! * [`hashtable_layout_rate`] — the MPI-1 hashtable DES routed over a
//!   3-D torus with link occupancy, under different rank→node placements.
//!   The paper attributes the spikes at 4 Ki/16 Ki nodes in Figure 7a to
//!   "different job layouts in the Gemini torus"; this experiment
//!   reproduces the effect: a scattered placement raises average hop
//!   counts and link contention, denting the insert rate.

use crate::engine::{Actor, Api, Event, Sim};
use crate::net::LogGP;
use crate::net_hash;
use crate::Torus3D;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

// ------------------------------------------------------------------- NBX

const EV_DATA: u64 = 1; // synchronous-send RTS arriving at a receiver
const EV_ACK: u64 = 2; // matching ack back to the sender
const EV_TOKEN: u64 = 3; // ibarrier round token (payload = round)

struct NbxActor {
    p: usize,
    k: usize,
    seed: u64,
    m: LogGP,
    // ssend bookkeeping
    acks_pending: usize,
    // ibarrier state
    round: u32,
    rounds: u32,
    tokens: Vec<u32>, // received tokens per round
    in_barrier: bool,
    done: Option<f64>,
}

impl NbxActor {
    fn lat(&self) -> f64 {
        self.m.o + self.m.put(40)
    }

    fn try_advance_barrier(&mut self, api: &mut Api) {
        while self.in_barrier && self.round < self.rounds && self.tokens[self.round as usize] > 0 {
            self.tokens[self.round as usize] -= 1;
            self.round += 1;
            if self.round < self.rounds {
                let dist = 1usize << self.round;
                let dst = (api.me() + dist) % self.p;
                api.send_after(dst, self.lat(), EV_TOKEN, self.round as u64);
            }
        }
        if self.in_barrier && self.round >= self.rounds && self.done.is_none() {
            self.done = Some(api.now());
        }
    }

    fn maybe_enter_barrier(&mut self, api: &mut Api) {
        if self.acks_pending == 0 && !self.in_barrier {
            self.in_barrier = true;
            if self.rounds == 0 {
                self.done = Some(api.now());
                return;
            }
            let dst = (api.me() + 1) % self.p;
            api.send_after(dst, self.lat(), EV_TOKEN, 0);
            self.try_advance_barrier(api);
        }
    }
}

impl Actor for NbxActor {
    fn start(&mut self, api: &mut Api) {
        // Issue k synchronous sends to distinct random targets.
        let mut x = self.seed ^ ((api.me() as u64) << 24);
        let mut chosen = Vec::new();
        while chosen.len() < self.k {
            x = net_hash(x);
            let t = (x % self.p as u64) as usize;
            if t != api.me() && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        self.acks_pending = self.k;
        for (i, t) in chosen.into_iter().enumerate() {
            // Injection serialises on the sender CPU.
            let depart = (i as f64 + 1.0) * (self.m.o + self.m.sw_mpi1);
            api.send_after(t, depart + self.m.put(40), EV_DATA, api.me() as u64);
        }
        self.maybe_enter_barrier(api);
    }

    fn on(&mut self, ev: Event, api: &mut Api) {
        match ev.kind {
            EV_DATA => {
                // Receive + matching, then ack the synchronous sender.
                api.send_after(ev.src, self.m.sw_mpi1 + self.lat(), EV_ACK, 0);
            }
            EV_ACK => {
                self.acks_pending -= 1;
                self.maybe_enter_barrier(api);
            }
            EV_TOKEN => {
                let r = ev.payload as usize;
                if self.tokens.len() <= r {
                    self.tokens.resize(r + 1, 0);
                }
                self.tokens[r] += 1;
                self.try_advance_barrier(api);
            }
            _ => unreachable!(),
        }
    }

    fn done_at(&self) -> Option<f64> {
        self.done
    }
}

/// Event-driven NBX exchange time (ns): max completion over ranks.
pub fn nbx_time(p: usize, k: usize, seed: u64) -> f64 {
    let m = LogGP::default();
    let rounds = if p <= 1 { 0 } else { usize::BITS - (p - 1).leading_zeros() };
    let actors = (0..p)
        .map(|_| NbxActor {
            p,
            k,
            seed,
            m: m.clone(),
            acks_pending: 0,
            round: 0,
            rounds,
            tokens: vec![0; rounds.max(1) as usize],
            in_barrier: false,
            done: None,
        })
        .collect();
    let mut sim = Sim::new(actors);
    let done = sim.run(200_000_000);
    done.into_iter().flatten().fold(0.0, f64::max)
}

// ------------------------------------------- hashtable over a real torus

#[derive(Debug, Clone, Copy)]
struct TEvent {
    time: f64,
    kind: u8,
    a: u32,
    b: u32,
}

#[derive(Debug, Clone, Copy)]
struct TQ {
    ev: TEvent,
    seq: u64,
}
impl PartialEq for TQ {
    fn eq(&self, o: &Self) -> bool {
        self.seq == o.seq
    }
}
impl Eq for TQ {}
impl PartialOrd for TQ {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for TQ {
    fn cmp(&self, o: &Self) -> Ordering {
        o.ev.time
            .partial_cmp(&self.ev.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| o.seq.cmp(&self.seq))
    }
}

/// Job placement in the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Compact allocation: the job occupies a contiguous sub-torus sized
    /// exactly for its nodes.
    Block,
    /// Fragmented allocation: the job's nodes are scattered across a
    /// machine torus four times larger (shared with other jobs), so
    /// average hop counts — and link sharing — grow.
    Scattered,
}

/// MPI-1 active-message hashtable DES with messages routed over a real
/// 3-D torus with link occupancy. Returns total inserts/second.
pub fn hashtable_layout_rate(
    p: usize,
    node_size: usize,
    inserts: usize,
    layout: Layout,
    seed: u64,
) -> f64 {
    let m = LogGP::default();
    let nodes = p.div_ceil(node_size);
    // Compact jobs get a snug torus; fragmented jobs live inside a machine
    // torus 4x their size, on pseudo-randomly chosen machine nodes.
    let machine_nodes = match layout {
        Layout::Block => nodes,
        Layout::Scattered => nodes * 4,
    };
    let torus = RefCell::new(Torus3D::new(machine_nodes));
    if layout == Layout::Scattered {
        // The rest of the machine is not idle: other jobs stream traffic
        // across the shared links. Pre-load background flows (4 KiB
        // messages between random node pairs every few microseconds) so
        // our fragmented job competes for link time.
        let mut x = seed ^ 0xBACC;
        let horizon_ns = 2_000_000.0; // generously covers the run
        let mut t = 0.0;
        while t < horizon_ns {
            x = net_hash(x);
            let a = (x % machine_nodes as u64) as usize;
            x = net_hash(x);
            let b = (x % machine_nodes as u64) as usize;
            if a != b {
                torus.borrow_mut().route(a, b, 4096, t);
            }
            t += 2_000.0 / machine_nodes as f64 * 16.0;
        }
    }
    let node_of: Vec<usize> = match layout {
        Layout::Block => (0..p).map(|r| r / node_size).collect(),
        Layout::Scattered => {
            // Choose `nodes` distinct machine nodes pseudo-randomly.
            let mut chosen: Vec<usize> = Vec::with_capacity(nodes);
            let mut x = seed ^ 0x5CA7;
            while chosen.len() < nodes {
                x = net_hash(x);
                let n = (x % machine_nodes as u64) as usize;
                if !chosen.contains(&n) {
                    chosen.push(n);
                }
            }
            (0..p).map(|r| chosen[r / node_size]).collect()
        }
    };
    let mut heap: BinaryHeap<TQ> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut cpu = vec![0.0f64; p];
    let mut remaining = vec![inserts; p];
    let mut rng = seed;
    let service = m.sw_mpi1 + 100.0 + 2_000.0;
    let push = |heap: &mut BinaryHeap<TQ>, seq: &mut u64, ev: TEvent| {
        *seq += 1;
        heap.push(TQ { ev, seq: *seq });
    };
    // Message delivery time over the torus (header-sized messages).
    let deliver = |a: usize, b: usize, t: f64, torus: &RefCell<Torus3D>| -> f64 {
        let (na, nb) = (node_of[a], node_of[b]);
        if na == nb {
            t + m.o_intra + m.l_intra
        } else {
            m.o + torus.borrow_mut().route(na, nb, 40, t + m.o)
        }
    };
    let issue = |r: usize,
                 cpu: &mut Vec<f64>,
                 remaining: &mut Vec<usize>,
                 heap: &mut BinaryHeap<TQ>,
                 seq: &mut u64,
                 rng: &mut u64,
                 torus: &RefCell<Torus3D>| {
        if remaining[r] == 0 {
            return;
        }
        remaining[r] -= 1;
        *rng = net_hash(*rng ^ r as u64);
        let target = (*rng % p as u64) as usize;
        if target == r {
            cpu[r] += service;
            push(heap, seq, TEvent { time: cpu[r], kind: 1, a: r as u32, b: 0 });
        } else {
            cpu[r] += m.o;
            let t_arr = deliver(r, target, cpu[r], torus);
            push(heap, seq, TEvent { time: t_arr, kind: 0, a: target as u32, b: r as u32 });
        }
    };
    for r in 0..p {
        issue(r, &mut cpu, &mut remaining, &mut heap, &mut seq, &mut rng, &torus);
    }
    let mut t_end = 0.0f64;
    while let Some(q) = heap.pop() {
        let ev = q.ev;
        match ev.kind {
            0 => {
                let tgt = ev.a as usize;
                let start = ev.time.max(cpu[tgt]);
                cpu[tgt] = start + service;
                let t_ack = deliver(tgt, ev.b as usize, cpu[tgt], &torus);
                push(&mut heap, &mut seq, TEvent { time: t_ack, kind: 1, a: ev.b, b: 0 });
            }
            _ => {
                let s = ev.a as usize;
                cpu[s] = cpu[s].max(ev.time);
                t_end = t_end.max(ev.time);
                issue(s, &mut cpu, &mut remaining, &mut heap, &mut seq, &mut rng, &torus);
            }
        }
    }
    (p * inserts) as f64 / (t_end / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nbx_completes_and_scales_mildly() {
        let t64 = nbx_time(64, 6, 1);
        let t4096 = nbx_time(4096, 6, 1);
        assert!(t64 > 0.0);
        // log-ish growth: 4096/64 = 64x ranks but < 4x time.
        assert!(t4096 < t64 * 4.0, "t64={t64} t4096={t4096}");
        assert!(t4096 > t64, "more rounds must cost something");
    }

    #[test]
    fn nbx_deterministic() {
        assert_eq!(nbx_time(128, 4, 9), nbx_time(128, 4, 9));
    }

    #[test]
    fn nbx_matches_figure_series_magnitude() {
        // The event-driven time and the closed-form fig7b NBX entry should
        // agree within a small factor (both model the same protocol).
        let des = nbx_time(1024, 6, 3) / 1e3;
        let series = crate::figures::fig7b(&[1024], 6);
        let closed = series.iter().find(|s| s.label.contains("NBX")).unwrap().points[0].1;
        let ratio = des / closed;
        assert!(
            (0.3..6.0).contains(&ratio),
            "DES {des} us vs closed-form {closed} us (ratio {ratio})"
        );
    }

    #[test]
    fn scattered_layout_hurts_insert_rate() {
        // Figure 7a's spikes: fragmented allocations raise hop counts and
        // link contention, reducing throughput.
        let block = hashtable_layout_rate(512, 32, 48, Layout::Block, 5);
        let scattered = hashtable_layout_rate(512, 32, 48, Layout::Scattered, 5);
        assert!(scattered < block, "scattered {scattered} should be slower than block {block}");
    }

    #[test]
    fn layout_effect_is_bounded() {
        // The dent is a constant factor, not an order of magnitude.
        let block = hashtable_layout_rate(256, 32, 48, Layout::Block, 5);
        let scattered = hashtable_layout_rate(256, 32, 48, Layout::Scattered, 5);
        assert!(scattered > block * 0.2, "layout effect too extreme: {scattered} vs {block}");
    }
}
