//! # fompi-simnet — large-scale protocol simulation
//!
//! The paper's scaling figures run on up to 524,288 processes of Blue
//! Waters; real threads top out around a few hundred on one machine. This
//! crate closes the gap with three complementary simulators, all driven by
//! the same calibrated cost constants as the live fabric
//! ([`fompi_fabric::cost::CostModel`]):
//!
//! * [`engine`] — a classic discrete-event core (event heap + actors) used
//!   where message interleaving matters (NBX consensus, hashtable service
//!   queues);
//! * [`net`] — a LogGP cost model plus a 3-D-torus link-occupancy model for
//!   congestion (the Gemini network);
//! * [`patterns`] — vector-time round simulations of the *exact protocol
//!   structures* implemented in the live crates: dissemination barrier
//!   (fence), PSCW ring post/start/complete/wait, lock acquisition
//!   sequences — exact for these synchronous patterns and cheap enough for
//!   p = 512 Ki, with optional per-rank OS-noise injection (the jitter the
//!   paper observes beyond ~1000 processes);
//! * [`figures`] — per-figure series generators (6b, 6c, 7a, 7b, 7c, 8)
//!   combining the above with documented analytic terms where full DES
//!   would be prohibitive (e.g. 32 Ki-rank alltoall is charged per the
//!   pairwise-exchange algorithm rather than replayed message by message).
//!
//! Everything here predicts *shape* — who wins, by what factor, where
//! curves bend. Absolute constants come from the paper's Gemini
//! measurements; tests pin the qualitative properties (log-p fence,
//! p-independent PSCW, protocol orderings, crossovers).

pub mod engine;
pub mod figures;
pub mod net;
pub mod patterns;
pub mod protocols;

pub use engine::{Actor, Api, Sim};
pub use net::{LogGP, Torus3D};

/// splitmix64 — deterministic hashing for simulated random targets.
pub fn net_hash(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}
