//! Network cost models for the simulators.
//!
//! [`LogGP`] carries the Gemini constants (the same defaults as the live
//! fabric's `CostModel`); [`Torus3D`] adds dimension-ordered routing with
//! per-link occupancy, the congestion source behind the hashtable spikes
//! the paper attributes to "different job layouts in the Gemini torus".

use fompi_fabric::rng::{splitmix64, Rng};
use fompi_fabric::FaultPlan;

/// LogGP-flavoured parameters (ns / ns-per-byte).
#[derive(Debug, Clone)]
pub struct LogGP {
    /// CPU injection overhead per message (o).
    pub o: f64,
    /// Base network latency (L) of a put.
    pub l_put: f64,
    /// Base network latency of a get (round trip).
    pub l_get: f64,
    /// Per-byte cost (G).
    pub g: f64,
    /// Issue gap (g) between members of a coalesced injection burst: with
    /// issue-side batching, successive small ops to adjacent offsets pay
    /// `g_gap` instead of a full `o` (see `fompi_fabric::batch`).
    pub g_gap: f64,
    /// Remote-AMO latency.
    pub amo: f64,
    /// Per-byte cost of the accelerated accumulate stream (the paper's
    /// Pacc,sum slope; feeds the txn twins' atomic payload legs).
    pub g_amo: f64,
    /// Intra-node injection overhead.
    pub o_intra: f64,
    /// Intra-node latency.
    pub l_intra: f64,
    /// Software layer overhead for foMPI calls.
    pub sw_fompi: f64,
    /// Software layer overhead for Cray UPC calls.
    pub sw_upc: f64,
    /// Software layer overhead for Cray CAF calls.
    pub sw_caf: f64,
    /// Per-message matching/software cost of Cray MPI-1.
    pub sw_mpi1: f64,
    /// Per-op software-agent cost of Cray MPI-2.2 one-sided.
    pub sw_mpi22: f64,
    /// Compute speed (ns/flop).
    pub ns_per_flop: f64,
}

impl Default for LogGP {
    fn default() -> Self {
        Self {
            o: 416.0,
            l_put: 1_000.0,
            l_get: 1_900.0,
            g: 0.16,
            g_gap: 50.0,
            amo: 2_400.0,
            g_amo: 28.0,
            o_intra: 80.0,
            l_intra: 250.0,
            sw_fompi: 75.0,
            sw_upc: 900.0,
            sw_caf: 1_500.0,
            sw_mpi1: 700.0,
            sw_mpi22: 7_000.0,
            ns_per_flop: 0.11,
        }
    }
}

impl LogGP {
    /// One-way put time for `bytes`.
    pub fn put(&self, bytes: usize) -> f64 {
        self.l_put + self.g * bytes as f64
    }

    /// Remote get (round trip) for `bytes`.
    pub fn get(&self, bytes: usize) -> f64 {
        self.l_get + 0.17 * bytes as f64
    }

    /// One dissemination-barrier round (inject + 8-byte put + poll pickup).
    pub fn barrier_round(&self) -> f64 {
        self.o + self.put(8)
    }

    /// An MPI-1 small-message half-round-trip (send → matched receive).
    pub fn mpi1_msg(&self, bytes: usize) -> f64 {
        self.o + self.sw_mpi1 + self.put(bytes + 32)
    }

    /// A burst of `n` contiguous `bytes`-sized puts with issue-side
    /// batching: one injection `o`, `n-1` issue gaps, one wire message of
    /// the combined size. The closed-form twin of the live fabric's
    /// batching layer, used for model-drift coverage of `batch_*` spans.
    pub fn put_batched(&self, n: usize, bytes: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.o + (n - 1) as f64 * self.g_gap + self.put(n * bytes)
    }

    /// The same `n` puts issued individually (each pays `o` and a full
    /// wire message) — the ablation baseline.
    pub fn put_unbatched(&self, n: usize, bytes: usize) -> f64 {
        n as f64 * (self.o + self.put(bytes))
    }

    /// One notified put of `bytes` (foMPI-NA style): the data put and its
    /// trailing notification AMO share the DMAPP ordered class, so the
    /// origin pays two injections and the consumer sees the record once
    /// the slower of the two wire legs lands —
    /// `2o + max(Pput(s), amo)`. Twin of `fompi::perf` `put_notified`.
    pub fn put_notified(&self, bytes: usize) -> f64 {
        2.0 * self.o + self.put(bytes).max(self.amo)
    }

    /// The pre-notified idiom: put the data, flush, then update a flag
    /// AMO the consumer polls. The flush serialises the put's wire
    /// latency before the flag even starts —
    /// `2o + Pflush + Pput(s) + amo` (`sw_fompi` stands in for the
    /// ≈76 ns foMPI flush). Twin of `fompi::perf` `put_polled`.
    pub fn put_polled(&self, bytes: usize) -> f64 {
        2.0 * self.o + self.sw_fompi + self.put(bytes) + self.amo
    }

    /// A bare notified AMO (credit returns, counters): two injections,
    /// one AMO latency. Twin of `fompi::perf` `notified_amo`.
    pub fn notified_amo(&self) -> f64 {
        2.0 * self.o + self.amo
    }

    /// One producer-consumer channel round over notified access: the
    /// notified payload put plus the notified credit AMO flowing back.
    /// Twin of `fompi::perf` `channel_round`.
    pub fn channel_round(&self, bytes: usize) -> f64 {
        self.put_notified(bytes) + self.notified_amo()
    }

    /// An atomic accumulate-stream access of `bytes` (the paper's
    /// Pacc,sum(s) = amo + g_amo·s) — the payload leg of the txn twins.
    pub fn acc(&self, bytes: usize) -> f64 {
        self.amo + self.g_amo * bytes as f64
    }

    /// One uncontended versioned read: version fetch AMO + atomic payload
    /// read + version re-check AMO. Twin of `fompi::perf` `txn_read`.
    pub fn txn_read(&self, bytes: usize) -> f64 {
        2.0 * self.amo + self.acc(bytes)
    }

    /// One uncontended optimistic commit over `nkeys` cells of `bytes`
    /// payload each: a lock CAS and an unlock CAS per key, an atomic
    /// payload write per key, and the two flushes fencing the write and
    /// publication phases (`sw_fompi` stands in for the ≈76 ns foMPI
    /// flush, as in [`LogGP::put_polled`]). Twin of `fompi::perf`
    /// `txn_commit`.
    pub fn txn_commit(&self, nkeys: usize, bytes: usize) -> f64 {
        let k = nkeys as f64;
        2.0 * k * self.amo + k * self.acc(bytes) + 2.0 * self.sw_fompi
    }

    /// One fan-in message round over a remote-memory channel: per-producer
    /// slot regions make the MPMC data path exactly the SPSC channel round
    /// (no shared cursor, no FAA). Twin of `fompi::perf` `rmc_fanin_round`.
    pub fn rmc_fanin_round(&self, bytes: usize) -> f64 {
        self.channel_round(bytes)
    }

    /// One fan-out publication to `m` subscribers: the publisher
    /// serializes `m` notified-put injections (2·o each) while the wire
    /// legs overlap, so one `max(Pput(s), amo)` covers the set. Twin of
    /// `fompi::perf` `rmc_fanout_publish`.
    pub fn rmc_fanout_publish(&self, m: usize, bytes: usize) -> f64 {
        2.0 * m as f64 * self.o + self.put(bytes).max(self.amo)
    }

    /// One RPC round trip: a channel round carrying the request to the
    /// server plus a channel round carrying the reply back. Twin of
    /// `fompi::perf` `rpc_round`.
    pub fn rpc_round(&self, req: usize, rep: usize) -> f64 {
        self.channel_round(req) + self.channel_round(rep)
    }
}

/// A 3-D torus with per-link occupancy (wormhole-ish approximation:
/// a message claims each link on its dimension-ordered path in turn; the
/// arrival time accumulates waiting at busy links).
pub struct Torus3D {
    dims: [usize; 3],
    /// busy-until time for each directed link: node × 6 directions.
    busy: Vec<f64>,
    /// Per-hop router latency.
    pub hop_ns: f64,
    /// Link serialisation cost per byte.
    pub byte_ns: f64,
}

impl Torus3D {
    /// A near-cubic torus hosting `nodes` nodes.
    pub fn new(nodes: usize) -> Torus3D {
        let mut dx = (nodes as f64).cbrt().round() as usize;
        dx = dx.max(1);
        while !nodes.is_multiple_of(dx) {
            dx -= 1;
        }
        let rest = nodes / dx;
        let mut dy = (rest as f64).sqrt().round() as usize;
        dy = dy.max(1);
        while !rest.is_multiple_of(dy) {
            dy -= 1;
        }
        let dz = rest / dy;
        let dims = [dx, dy, dz];
        Torus3D {
            dims,
            busy: vec![0.0; nodes * 6],
            hop_ns: 105.0, // Gemini per-hop
            byte_ns: 0.19, // ~5.2 GB/s per link
        }
    }

    /// The torus dimensions.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    fn coords(&self, node: usize) -> [usize; 3] {
        let [dx, dy, _] = self.dims;
        [node % dx, (node / dx) % dy, node / (dx * dy)]
    }

    fn node(&self, c: [usize; 3]) -> usize {
        let [dx, dy, _] = self.dims;
        c[0] + dx * (c[1] + dy * c[2])
    }

    /// Hop count of the dimension-ordered shortest path.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let ca = self.coords(a);
        let cb = self.coords(b);
        (0..3)
            .map(|d| {
                let n = self.dims[d];
                let diff = ca[d].abs_diff(cb[d]);
                diff.min(n - diff)
            })
            .sum()
    }

    /// Route a message of `bytes` from node `a` to node `b`, departing at
    /// `t`; returns the arrival time and updates link occupancy.
    pub fn route(&mut self, a: usize, b: usize, bytes: usize, t: f64) -> f64 {
        let mut cur = self.coords(a);
        let target = self.coords(b);
        let ser = self.byte_ns * bytes as f64;
        let mut time = t;
        for d in 0..3 {
            while cur[d] != target[d] {
                let n = self.dims[d];
                let fwd = (target[d] + n - cur[d]) % n;
                let go_up = fwd <= n - fwd;
                let dir = 2 * d + usize::from(!go_up);
                let link = self.node(cur) * 6 + dir;
                // Wait for the link, then occupy it for the serialisation
                // time and hop onward.
                time = time.max(self.busy[link]) + self.hop_ns;
                self.busy[link] = time + ser;
                cur[d] = if go_up { (cur[d] + 1) % n } else { (cur[d] + n - 1) % n };
            }
        }
        time + ser
    }

    /// Reset occupancy between experiments.
    pub fn reset(&mut self) {
        self.busy.iter_mut().for_each(|b| *b = 0.0);
    }
}

/// Per-rank OS-noise generator: occasional detours of `amp_ns` with
/// probability `prob` per operation — the source of the jitter the paper's
/// Figure 6c shows beyond ~1000 processes (cf. Petrini's "missing
/// supercomputer performance").
///
/// A source built with [`Noise::from_plan`] instead mirrors the live
/// fabric's fault layer (`fompi_fabric::faults`): the same fault classes a
/// soak run injects perturb the closed-form series, so large-p figures can
/// be regenerated "under weather" comparable to a small-p soak.
pub struct Noise {
    rng: Rng,
    /// Perturbation probability per sample.
    pub prob: f64,
    /// Perturbation amplitude (ns).
    pub amp_ns: f64,
    /// Armed fault plan (plan-mirroring mode); `None` = legacy prob/amp.
    plan: Option<FaultPlan>,
}

impl Noise {
    /// Deterministic noise source.
    pub fn new(seed: u64, prob: f64, amp_ns: f64) -> Noise {
        Noise { rng: Rng::seed_from_u64(seed), prob, amp_ns, plan: None }
    }

    /// Disabled noise.
    pub fn off() -> Noise {
        Noise::new(0, 0.0, 0.0)
    }

    /// Mirror a live fault plan into the simulations. Every class the
    /// fault layer injects per issue — rank pauses, injection-queue
    /// stalls, proportional jitter, heavy-tail spikes, delayed retirement
    /// — collapses here to extra latency on the sampled operation.
    /// `stream` decorrelates independent series drawn from one plan.
    pub fn from_plan(plan: &FaultPlan, stream: u64) -> Noise {
        Noise {
            rng: Rng::seed_from_u64(splitmix64(
                plan.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )),
            prob: 0.0,
            amp_ns: 0.0,
            plan: plan.any().then(|| plan.clone()),
        }
    }

    /// Sample one perturbation with no base latency (legacy call sites;
    /// in plan mode the proportional jitter term is zero).
    pub fn sample(&mut self) -> f64 {
        self.sample_op(0.0)
    }

    /// Sample the perturbation of one operation whose unperturbed latency
    /// is `base_ns`. Mirrors `Faults::draw_op`'s draw structure.
    pub fn sample_op(&mut self, base_ns: f64) -> f64 {
        let Some(p) = self.plan.clone() else {
            return if self.prob > 0.0 && self.rng.next_f64() < self.prob {
                self.amp_ns * self.rng.next_f64()
            } else {
                0.0
            };
        };
        let mut extra = 0.0;
        if p.pause_prob > 0.0 && self.rng.next_f64() < p.pause_prob {
            extra += p.pause_ns * (0.5 + self.rng.next_f64());
        }
        if p.bp_prob > 0.0 && self.rng.next_f64() < p.bp_prob {
            extra += p.bp_ns * self.rng.next_f64();
        }
        if p.jitter_frac > 0.0 {
            extra += base_ns * p.jitter_frac * self.rng.next_f64();
        }
        if p.spike_prob > 0.0 && self.rng.next_f64() < p.spike_prob {
            let u = self.rng.next_f64().max(1e-9);
            extra += (p.spike_ns / u.sqrt()).min(64.0 * p.spike_ns);
        }
        if p.delay_prob > 0.0 && self.rng.next_f64() < p.delay_prob {
            extra += p.delay_ns * self.rng.next_f64();
        }
        extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_dims_cover_nodes() {
        for n in [1, 8, 27, 64, 100, 1000, 1024] {
            let t = Torus3D::new(n);
            let [a, b, c] = t.dims();
            assert_eq!(a * b * c, n, "n={n} dims={:?}", t.dims());
        }
    }

    #[test]
    fn hops_symmetric_and_wrapping() {
        let t = Torus3D::new(64); // 4x4x4
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 1), 1);
        // Wrap-around: distance 3 becomes 1.
        assert_eq!(t.hops(0, 3), 1);
        for (a, b) in [(0, 13), (5, 62), (7, 7)] {
            assert_eq!(t.hops(a, b), t.hops(b, a));
        }
    }

    #[test]
    fn congestion_delays_messages() {
        let mut t = Torus3D::new(8);
        let big = 1 << 20;
        let first = t.route(0, 1, big, 0.0);
        // Same link immediately after: must wait out the serialisation.
        let second = t.route(0, 1, big, 0.0);
        assert!(second > first, "{second} vs {first}");
        t.reset();
        let fresh = t.route(0, 1, big, 0.0);
        assert_eq!(fresh, first);
    }

    #[test]
    fn loggp_sanity() {
        let m = LogGP::default();
        assert!(m.put(8) < m.get(8));
        assert!(m.barrier_round() > 1_000.0);
    }

    #[test]
    fn batched_series_beats_unbatched_for_bursts() {
        let m = LogGP::default();
        // n = 1: identical by construction.
        assert!((m.put_batched(1, 8) - m.put_unbatched(1, 8)).abs() < 1e-9);
        // The advantage grows monotonically with burst length.
        let mut prev_gain = 0.0;
        for n in [2, 4, 8, 16, 32] {
            let gain = m.put_unbatched(n, 8) - m.put_batched(n, 8);
            assert!(gain > prev_gain, "n={n}");
            prev_gain = gain;
        }
        // And matches the closed form (n-1)·(o + L - g_gap).
        let n = 8;
        let expect = (n - 1) as f64 * (m.o + m.l_put - m.g_gap);
        assert!((m.put_unbatched(n, 8) - m.put_batched(n, 8) - expect).abs() < 1e-6);
    }

    #[test]
    fn notified_twins_mirror_the_live_model() {
        let m = LogGP::default();
        // The notified put always beats the flush + polled-flag idiom, and
        // the win is exactly flush + the overlapped (smaller) leg.
        for s in [8usize, 64, 512, 4096, 1 << 16] {
            let gain = m.put_polled(s) - m.put_notified(s);
            let expect = m.sw_fompi + m.put(s).min(m.amo);
            assert!(gain > 0.0, "s={s}");
            assert!((gain - expect).abs() < 1e-9, "s={s}");
        }
        // Channel round = notified put + notified credit AMO.
        assert!((m.channel_round(256) - (m.put_notified(256) + m.notified_amo())).abs() < 1e-9);
        // Once the put's wire time dominates the AMO leg, growing the
        // payload grows the notified put at exactly G per byte.
        let big = 1 << 20;
        let d = m.put_notified(2 * big) - m.put_notified(big);
        assert!((d - m.g * big as f64).abs() < 1e-6);
    }

    #[test]
    fn txn_twins_mirror_the_live_model() {
        let m = LogGP::default();
        // Same structure as `fompi::perf`: a read is two version AMOs plus
        // the atomic payload leg…
        for s in [8usize, 16, 64, 256] {
            assert!((m.txn_read(s) - (2.0 * m.amo + m.acc(s))).abs() < 1e-9, "s={s}");
            assert!(m.txn_read(s) > m.acc(s));
        }
        // …and each extra committed key costs exactly lock CAS + payload
        // write + unlock CAS.
        let s = 16;
        let per_key = m.txn_commit(2, s) - m.txn_commit(1, s);
        assert!((per_key - (2.0 * m.amo + m.acc(s))).abs() < 1e-9);
        // A 2-key commit amortizes the flush pair over both keys.
        assert!(m.txn_commit(2, s) < 2.0 * m.txn_commit(1, s));
    }

    #[test]
    fn rmc_twins_mirror_the_live_model() {
        let m = LogGP::default();
        let live = fompi::perf::PaperModel::default();
        // Fan-in adds nothing over the SPSC channel round in either model.
        for s in [8usize, 256, 4096] {
            assert!((m.rmc_fanin_round(s) - m.channel_round(s)).abs() < 1e-9, "s={s}");
            assert!((live.rmc_fanin_round(s) - live.channel_round(s)).abs() < 1e-9, "s={s}");
        }
        // Fan-out: one subscriber degenerates to a notified put, and every
        // extra subscriber costs exactly two injections — in both models.
        assert!((m.rmc_fanout_publish(1, 512) - m.put_notified(512)).abs() < 1e-9);
        let slope = m.rmc_fanout_publish(5, 512) - m.rmc_fanout_publish(4, 512);
        assert!((slope - 2.0 * m.o).abs() < 1e-9);
        let live_slope = live.rmc_fanout_publish(5, 512) - live.rmc_fanout_publish(4, 512);
        assert!((live_slope - 2.0 * live.inject).abs() < 1e-9);
        // RPC is two channel rounds in both models.
        assert!((m.rpc_round(64, 256) - (m.channel_round(64) + m.channel_round(256))).abs() < 1e-9);
        assert!(
            (live.rpc_round(64, 256) - (live.channel_round(64) + live.channel_round(256))).abs()
                < 1e-9
        );
    }

    #[test]
    fn noise_off_is_zero() {
        let mut n = Noise::off();
        for _ in 0..100 {
            assert_eq!(n.sample(), 0.0);
        }
    }

    #[test]
    fn plan_noise_is_deterministic_and_scales_with_base() {
        let plan = FaultPlan::heavy(77);
        let mut a = Noise::from_plan(&plan, 0);
        let mut b = Noise::from_plan(&plan, 0);
        let mut any = false;
        for _ in 0..200 {
            let x = a.sample_op(1_000.0);
            assert_eq!(x.to_bits(), b.sample_op(1_000.0).to_bits());
            any |= x > 0.0;
        }
        assert!(any, "heavy plan must perturb the series");
        // Distinct streams decorrelate.
        let mut c = Noise::from_plan(&plan, 1);
        let diverged = (0..50).any(|_| {
            Noise::from_plan(&plan, 0).sample_op(500.0).to_bits() != c.sample_op(500.0).to_bits()
        });
        assert!(diverged);
        // A disabled plan is inert even through from_plan.
        let mut off = Noise::from_plan(&FaultPlan::disabled(), 0);
        for _ in 0..50 {
            assert_eq!(off.sample_op(1_000.0), 0.0);
        }
    }

    #[test]
    fn noise_on_is_bounded() {
        let mut n = Noise::new(7, 1.0, 500.0);
        for _ in 0..100 {
            let s = n.sample();
            assert!((0.0..=500.0).contains(&s));
        }
    }
}
