//! Per-figure series generators for the paper's scaling plots.
//!
//! Each function returns one [`Series`] per transport layer, exactly the
//! lines of the corresponding figure. Protocol structure comes from the
//! live implementations (same operation sequences); per-operation costs
//! come from [`LogGP`]; where a full message-level replay would be
//! prohibitive at 512 Ki ranks the cost of a *named algorithm* is charged
//! in closed form and documented inline. The MPI-1 hashtable is a genuine
//! discrete-event simulation (request/ack active messages with FIFO
//! service at the owner), because its behaviour is queueing-dominated.

use crate::net::{LogGP, Noise};
use crate::patterns;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One line of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (matches the paper's).
    pub label: String,
    /// `(x, y)` points; x is process count unless noted.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    fn new(label: &str) -> Series {
        Series { label: label.to_string(), points: Vec::new() }
    }
}

fn log2f(p: usize) -> f64 {
    (p.max(2) as f64).log2()
}

// ------------------------------------------------------------- Figure 6b

/// Figure 6b: global synchronisation latency (µs) vs p.
pub fn fig6b(ps: &[usize]) -> Vec<Series> {
    let m = LogGP::default();
    let mut fompi = Series::new("foMPI Win_fence");
    let mut upc = Series::new("Cray UPC barrier");
    let mut caf = Series::new("Cray CAF sync_all");
    let mut cray = Series::new("Cray MPI Win_fence");
    for &p in ps {
        let mut n = Noise::off();
        let base = patterns::max_of(&patterns::dissemination_barrier(&vec![0.0; p], &m, &mut n));
        fompi.points.push((p as f64, base / 1e3));
        // The PGAS barriers run the same dissemination but pay their
        // runtime's software path every round.
        upc.points.push((p as f64, (base + log2f(p) * m.sw_upc) / 1e3));
        caf.points.push((p as f64, (base + log2f(p) * m.sw_caf) / 1e3));
        // Cray's MPI-2.2 fence: two barriers over the messaging stack plus
        // the software agent and a per-rank counter exchange (the
        // reduce_scatter of op counts its implementation performs).
        let msg_round = m.mpi1_msg(8);
        let cray_t = 2.0 * log2f(p) * msg_round + m.sw_mpi22 + 0.6 * p as f64;
        cray.points.push((p as f64, cray_t / 1e3));
    }
    vec![fompi, upc, caf, cray]
}

// ------------------------------------------------------------- Figure 6c

/// Figure 6c: PSCW latency (µs) vs p on a ring (k = 2).
pub fn fig6c(ps: &[usize]) -> Vec<Series> {
    let m = LogGP::default();
    let mut fompi = Series::new("foMPI PSCW");
    let mut cray = Series::new("Cray MPI PSCW");
    for &p in ps {
        // System noise appears beyond ~1000 ranks (Figure 6c's jitter).
        let mut noise = Noise::new(p as u64, 2e-4, 10_000.0);
        let t = patterns::max_of(&patterns::pscw_ring(p, &m, &mut noise));
        fompi.points.push((p as f64, t / 1e3));
        // Cray's implementation routes post/complete through the messaging
        // stack and performs group translation that grows with the job
        // (fitted to the paper's "systematically growing overheads").
        let base = 4.0 * m.mpi1_msg(8) + 2.0 * m.sw_mpi22;
        let growth = 450.0 * log2f(p) * log2f(p);
        cray.points.push((p as f64, (base + growth) / 1e3));
    }
    vec![fompi, cray]
}

// ------------------------------------------------------------- Figure 7a

#[derive(Debug, Clone, Copy, PartialEq)]
struct HtEvent {
    time: f64,
    kind: u8, // 0 = request arrives at target, 1 = ack arrives at sender
    a: u32,   // target (kind 0) / sender (kind 1)
    b: u32,   // sender (kind 0) / unused
}

#[derive(Debug, Clone, Copy)]
struct HtQ {
    ev: HtEvent,
    seq: u64,
}
impl PartialEq for HtQ {
    fn eq(&self, o: &Self) -> bool {
        self.seq == o.seq
    }
}
impl Eq for HtQ {}
impl PartialOrd for HtQ {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for HtQ {
    fn cmp(&self, o: &Self) -> Ordering {
        o.ev.time
            .partial_cmp(&self.ev.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| o.seq.cmp(&self.seq))
    }
}

/// DES of the MPI-1 active-message hashtable: each insert is a request to
/// the owner, serviced FIFO on the owner's CPU, acknowledged back (the
/// flow control real AM layers impose). Returns total inserts/second.
pub fn mpi1_hashtable_rate(p: usize, node_size: usize, inserts: usize, seed: u64) -> f64 {
    let m = LogGP::default();
    let mut heap: BinaryHeap<HtQ> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut cpu = vec![0.0f64; p]; // CPU-free time per rank
    let mut remaining = vec![inserts; p];
    let mut rng = seed;
    let mut next_key = |r: usize| {
        rng = crate::net_hash(rng ^ r as u64);
        (rng % p as u64) as u32
    };
    let service = m.sw_mpi1 + 100.0 + 2_000.0; // matching + update + polling
                                               // The +2 us term models the owner’s polling granularity: requests are
                                               // only serviced between the owner’s own blocking operations (the
                                               // iprobe loop of the section-4.1 MPI-1 implementation).
    let lat = |a: u32, b: u32| {
        if (a as usize) / node_size == (b as usize) / node_size {
            m.o_intra + m.l_intra
        } else {
            m.o + m.put(40)
        }
    };
    let push = |heap: &mut BinaryHeap<HtQ>, seq: &mut u64, ev: HtEvent| {
        *seq += 1;
        heap.push(HtQ { ev, seq: *seq });
    };
    // Kick off: every rank issues its first insert.
    let issue = |r: usize,
                 cpu: &mut Vec<f64>,
                 remaining: &mut Vec<usize>,
                 heap: &mut BinaryHeap<HtQ>,
                 seq: &mut u64,
                 next_key: &mut dyn FnMut(usize) -> u32| {
        if remaining[r] == 0 {
            return;
        }
        remaining[r] -= 1;
        let target = next_key(r);
        if target as usize == r {
            // Local insert: pure CPU.
            cpu[r] += service;
            push(heap, seq, HtEvent { time: cpu[r], kind: 1, a: r as u32, b: 0 });
        } else {
            cpu[r] += m.o;
            let t_arr = cpu[r] + lat(r as u32, target);
            push(heap, seq, HtEvent { time: t_arr, kind: 0, a: target, b: r as u32 });
        }
    };
    for r in 0..p {
        issue(r, &mut cpu, &mut remaining, &mut heap, &mut seq, &mut next_key);
    }
    let mut t_end = 0.0f64;
    while let Some(q) = heap.pop() {
        let ev = q.ev;
        match ev.kind {
            0 => {
                // Request at the owner: service FIFO on its CPU, ack back.
                let tgt = ev.a as usize;
                let start = ev.time.max(cpu[tgt]);
                cpu[tgt] = start + service;
                let t_ack = cpu[tgt] + lat(ev.a, ev.b);
                push(&mut heap, &mut seq, HtEvent { time: t_ack, kind: 1, a: ev.b, b: 0 });
            }
            _ => {
                // Ack at the sender: next insert.
                let s = ev.a as usize;
                cpu[s] = cpu[s].max(ev.time);
                t_end = t_end.max(ev.time);
                issue(s, &mut cpu, &mut remaining, &mut heap, &mut seq, &mut next_key);
            }
        }
    }
    (p * inserts) as f64 / (t_end / 1e9)
}

/// Figure 7a: hashtable inserts per second (total, billions) vs p.
/// `inserts` per process (the paper uses 16 Ki; the DES uses a smaller
/// batch since the rate is intensive).
pub fn fig7a(ps: &[usize], node_size: usize, inserts: usize) -> Vec<Series> {
    let m = LogGP::default();
    let mut fompi = Series::new("foMPI MPI-3.0");
    let mut upc = Series::new("Cray UPC");
    let mut mpi1 = Series::new("Cray MPI-1");
    for &p in ps {
        // One-sided inserts are independent: the average cost mixes the
        // intra-node CAS with the inter-node CAS by the random-target
        // fractions.
        let intra_frac =
            if p <= 1 { 1.0 } else { ((node_size.min(p)) as f64 - 1.0) / (p as f64 - 1.0) };
        let inter = m.o + m.amo;
        let intra = m.o_intra + 200.0;
        let per = |sw: f64| sw + intra_frac * intra + (1.0 - intra_frac) * inter;
        let rate = |cost: f64| (p as f64 / cost) * 1e9 / 1e9; // billion/s
        fompi.points.push((p as f64, rate(per(m.sw_fompi))));
        upc.points.push((p as f64, rate(per(m.sw_upc))));
        let r = mpi1_hashtable_rate(p, node_size, inserts, 0xDEED ^ p as u64);
        mpi1.points.push((p as f64, r / 1e9));
    }
    vec![fompi, upc, mpi1]
}

// ------------------------------------------------------------- Figure 7b

/// Figure 7b: DSDE exchange time (µs) vs p for k random neighbours.
pub fn fig7b(ps: &[usize], k: usize) -> Vec<Series> {
    let m = LogGP::default();
    let mut a2a = Series::new("Cray Alltoall");
    let mut rs = Series::new("Cray Reduce_scatter");
    let mut nbx = Series::new("LibNBC (NBX)");
    let mut rma = Series::new("foMPI MPI-3.0");
    let mut mpi22 = Series::new("Cray MPI-2.2 (accumulate)");
    for &p in ps {
        let pf = p as f64;
        let kf = k as f64;
        // Pairwise-exchange alltoall: p−1 dependent sendrecv rounds of one
        // 16-byte block (+header).
        let t_a2a = (pf - 1.0) * (m.o + m.sw_mpi1 + m.put(16 + 32));
        a2a.points.push((pf, t_a2a / 1e3));
        // Ring reduce_scatter of the count vector (8-byte blocks), then k
        // direct messages.
        let t_rs = (pf - 1.0) * (m.o + m.sw_mpi1 + m.put(8 + 32)) + kf * m.mpi1_msg(8);
        rs.points.push((pf, t_rs / 1e3));
        // NBX: replayed message by message on the DES engine (synchronous
        // sends + nonblocking consensus), capturing finishing skew.
        let t_nbx = crate::protocols::nbx_time(p, k, 0xAB ^ p as u64);
        nbx.points.push((pf, t_nbx / 1e3));
        // foMPI: k blocking FAAs + k implicit puts + closing fence.
        let mut n = Noise::off();
        let fence = patterns::max_of(&patterns::dissemination_barrier(&vec![0.0; p], &m, &mut n));
        let t_rma = kf * (m.o + m.sw_fompi + m.amo) + kf * m.o + m.put(8) + fence;
        rma.points.push((pf, t_rma / 1e3));
        // Cray MPI-2.2 accumulates: the same structure through the
        // software-agent path, plus its heavyweight fence.
        let t_22 = kf * (m.o + m.sw_mpi22 + m.amo) + 2.0 * fence + m.sw_mpi22;
        mpi22.points.push((pf, t_22 / 1e3));
    }
    vec![rma, nbx, mpi22, rs, a2a]
}

// ------------------------------------------------------------- Figure 7c

/// Figure 7c: 3-D FFT strong-scaling performance (GFlop/s) vs p for the
/// class-D grid (2048×1024×1024).
pub fn fig7c(ps: &[usize]) -> Vec<Series> {
    let m = LogGP::default();
    let n_total: f64 = 2048.0 * 1024.0 * 1024.0;
    let flops = 5.0 * n_total * n_total.log2();
    let bytes_total = n_total * 16.0;
    let mut fompi = Series::new("foMPI MPI-3.0");
    let mut upc = Series::new("Cray UPC");
    let mut mpi1 = Series::new("Cray MPI-1");
    for &p in ps {
        let pf = p as f64;
        let t_comp = flops / pf * m.ns_per_flop;
        // Transpose: each rank ships bytes_total/p bytes. Cray's alltoall
        // picks pairwise exchange (p−1 pipelined messages, per-message
        // injection o) for large chunks and Bruck (log p rounds moving half
        // the data each) for the tiny chunks of large p.
        let bytes_rank = bytes_total / pf;
        // Each layer picks the cheaper alltoall algorithm *including its
        // own per-message software path*: pairwise exchange (p−1 messages)
        // or Bruck (log p rounds moving half the data each).
        let comm = |sw: f64| {
            let pairwise = (pf - 1.0) * (m.o + sw) + bytes_rank * m.g + m.put(0);
            let bruck = log2f(p) * (m.o + sw + m.put(0)) + log2f(p) * (bytes_rank / 2.0) * m.g;
            pairwise.min(bruck)
        };
        // MPI-1: compute then exchange (the NAS baseline barely overlaps).
        let t_mpi = t_comp + comm(m.sw_mpi1);
        // Overlapped slabs: communication hides behind compute except the
        // exposed remainder; foMPI's cheaper injection path exposes less.
        let overlap = |sw: f64| t_comp.max(comm(sw)) + 0.05 * comm(sw);
        let t_upc = overlap(m.sw_upc);
        let t_fompi = overlap(m.sw_fompi);
        mpi1.points.push((pf, flops / t_mpi));
        upc.points.push((pf, flops / t_upc));
        fompi.points.push((pf, flops / t_fompi));
    }
    vec![fompi, upc, mpi1]
}

// -------------------------------------------------------------- Figure 8

/// Figure 8: MILC weak-scaling full-application time (s) vs p, local
/// lattice 4³×8.
pub fn fig8(ps: &[usize]) -> Vec<Series> {
    let m = LogGP::default();
    let local: [usize; 4] = [4, 4, 4, 8];
    let vol: usize = local.iter().product();
    // One CG iteration: stencil flops + vector updates, 8-face halo
    // exchange, two dot-product allreduces. A full su3_rmd run performs
    // ~1M solver iterations (trajectories × steps × CG iterations).
    const NOMINAL_ITERS: f64 = 1.0e6;
    let flops_iter = vol as f64 * 8.0 * 72.0 + 8.0 * vol as f64 * 6.0;
    let t_comp = flops_iter * m.ns_per_flop;
    let face_bytes = |d: usize| vol / local[d] * 6 * 8;
    let mut fompi = Series::new("foMPI MPI-3.0");
    let mut upc = Series::new("Cray UPC");
    let mut mpi1 = Series::new("Cray MPI-1");
    for &p in ps {
        let pf = p as f64;
        // Largest face dominates the (overlapped) exchange.
        let max_face = (0..4).map(face_bytes).max().unwrap();
        let halo = |sw: f64, extra: f64| 8.0 * (m.o + sw) + m.put(max_face) + extra;
        let reduce = |sw: f64| 2.0 * log2f(p) * (m.o + sw + m.put(8));
        // Noise: some rank hits a detour each iteration once p is large;
        // the allreduce propagates the straggler.
        let noise = 3_000.0 * (1.0 - (1.0 - 2e-4_f64).powi(p as i32)).min(1.0);
        // MPI-1: matching per face; the allreduce is Cray's tuned
        // collective for every layer (MILC calls MPI_Allreduce natively).
        let t_mpi1 = t_comp + halo(m.sw_mpi1, 8.0 * m.sw_mpi1) + reduce(0.0) + noise;
        // foMPI: cheap puts, one flush, 8 notify AMOs (overlapped to one
        // latency), tuned allreduce.
        let t_fompi = t_comp + halo(m.sw_fompi, m.amo) + reduce(0.0) + noise;
        // UPC: same scheme, heavier per-op path, get-based pull.
        let t_upc = t_comp
            + halo(m.sw_upc, m.amo + m.get(max_face) - m.put(max_face))
            + reduce(0.0)
            + noise;
        mpi1.points.push((pf, t_mpi1 * NOMINAL_ITERS / 1e9));
        fompi.points.push((pf, t_fompi * NOMINAL_ITERS / 1e9));
        upc.points.push((pf, t_upc * NOMINAL_ITERS / 1e9));
    }
    vec![fompi, upc, mpi1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ys(s: &Series) -> Vec<f64> {
        s.points.iter().map(|p| p.1).collect()
    }

    #[test]
    fn fig6b_orderings_and_log_growth() {
        let ps = [2, 8, 32, 128, 512, 2048, 8192];
        let s = fig6b(&ps);
        let (fompi, upc, caf, cray) = (&s[0], &s[1], &s[2], &s[3]);
        for i in 0..ps.len() {
            assert!(ys(fompi)[i] < ys(upc)[i]);
            assert!(ys(upc)[i] < ys(caf)[i]);
            assert!(ys(caf)[i] < ys(cray)[i]);
        }
        // foMPI fence ≈ c·log2 p: doubling log doubles time.
        let t8 = ys(fompi)[1];
        let t512 = ys(fompi)[4];
        assert!((t512 / t8 - 3.0).abs() < 0.3, "{t8} {t512}");
    }

    #[test]
    fn fig6c_fompi_flat_cray_grows() {
        let ps = [2, 32, 1024, 32768, 131072];
        let s = fig6c(&ps);
        let fompi = ys(&s[0]);
        let cray = ys(&s[1]);
        // foMPI flat within noise (< 3x across 5 orders of magnitude).
        assert!(fompi.last().unwrap() / fompi[0] < 3.0, "{fompi:?}");
        // Cray grows monotonically and ends much higher.
        assert!(cray.windows(2).all(|w| w[1] > w[0]));
        assert!(cray.last().unwrap() > &(fompi.last().unwrap() * 1.5));
    }

    #[test]
    fn fig7a_rma_wins_at_scale_mpi1_competitive_intra() {
        let node = 32;
        let s = fig7a(&[2, 32, 256, 2048], node, 64);
        let fompi = ys(&s[0]);
        let mpi1 = ys(&s[2]);
        // At 2 ranks (one node) MPI-1 is within the same ballpark.
        assert!(mpi1[0] > fompi[0] / 16.0, "intra: {mpi1:?} vs {fompi:?}");
        // At 2048 ranks RMA is clearly ahead.
        assert!(fompi[3] > mpi1[3] * 2.0, "inter: {fompi:?} vs {mpi1:?}");
        // foMPI rate grows ~linearly with p.
        assert!(fompi[3] > fompi[1] * 4.0);
    }

    #[test]
    fn fig7b_orderings() {
        let ps = [64, 512, 4096, 32768];
        let s = fig7b(&ps, 6);
        let rma = ys(&s[0]);
        let nbx = ys(&s[1]);
        let rs = ys(&s[3]);
        let a2a = ys(&s[4]);
        for i in 0..ps.len() {
            // RMA and NBX both beat the dense collectives...
            assert!(rma[i] < rs[i] && rma[i] < a2a[i]);
            assert!(nbx[i] < rs[i] && nbx[i] < a2a[i]);
        }
        // ...by growing factors (2× to orders of magnitude, §4.2).
        assert!(a2a[3] / rma[3] > 50.0);
        // RMA competitive with NBX (within ~3× either way).
        for i in 0..ps.len() {
            let ratio = rma[i] / nbx[i];
            assert!(ratio < 3.0 && ratio > 0.2, "p={} ratio={ratio}", ps[i]);
        }
    }

    #[test]
    fn fig7c_fompi_on_top_and_factor_two_at_64k() {
        let ps = [1024, 4096, 16384, 65536];
        let s = fig7c(&ps);
        let fompi = ys(&s[0]);
        let upc = ys(&s[1]);
        let mpi1 = ys(&s[2]);
        for i in 0..ps.len() {
            assert!(fompi[i] >= upc[i]);
            assert!(upc[i] > mpi1[i]);
        }
        // §6: "a 3D FFT on 65,536 processes by a factor of two".
        let factor = fompi[3] / mpi1[3];
        assert!(factor > 1.5 && factor < 3.5, "factor {factor}");
    }

    #[test]
    fn fig8_improvement_in_papers_range() {
        let ps = [4096, 32768, 262144, 524288];
        let s = fig8(&ps);
        let fompi = ys(&s[0]);
        let upc = ys(&s[1]);
        let mpi1 = ys(&s[2]);
        for i in 0..ps.len() {
            let gain = (mpi1[i] - fompi[i]) / fompi[i] * 100.0;
            // Paper annotations: 5.3% – 15.2%.
            assert!(gain > 3.0 && gain < 25.0, "gain at p={}: {gain}%", ps[i]);
            // foMPI ≈ UPC (within 5%).
            assert!((fompi[i] - upc[i]).abs() / fompi[i] < 0.12);
        }
        // Weak scaling: time grows slowly (log p + noise), < 1.5× across
        // the whole range.
        assert!(fompi.last().unwrap() / fompi[0] < 1.5);
    }

    #[test]
    fn hashtable_des_is_deterministic() {
        let a = mpi1_hashtable_rate(64, 32, 32, 7);
        let b = mpi1_hashtable_rate(64, 32, 32, 7);
        assert_eq!(a, b);
    }
}
