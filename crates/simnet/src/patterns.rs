//! Vector-time simulations of the live protocols' message structures.
//!
//! These replay, rank by rank and round by round, exactly the remote
//! operations the `fompi` crate issues — dissemination barrier for fence,
//! the Figure-2 matching ops for PSCW, the Figure-3 AMO sequences for
//! locks — using LogGP costs. For synchronous patterns this is exact (it
//! is the fixed point of the happens-before recurrence) and runs in
//! O(p log p), so half a million ranks take milliseconds.

use crate::net::{LogGP, Noise};

/// Completion time per rank of a dissemination barrier entered by all
/// ranks at `t0[i]`.
pub fn dissemination_barrier(t0: &[f64], m: &LogGP, noise: &mut Noise) -> Vec<f64> {
    let p = t0.len();
    let mut t = t0.to_vec();
    if p <= 1 {
        return t;
    }
    let mut dist = 1;
    while dist < p {
        let prev = t.clone();
        for i in 0..p {
            let src = (i + p - dist) % p;
            // I send at prev[i] + o; I proceed once my own send is injected
            // and the token from src arrived.
            let my_send = prev[i] + m.o;
            let arrival = prev[src] + m.o + m.put(8) + noise.sample_op(m.put(8));
            t[i] = my_send.max(arrival);
        }
        dist *= 2;
    }
    t
}

/// Cost of the one-sided slot acquisition + match-list push that
/// `MPI_Win_post` performs per neighbour (Figure 2c: two gets and a CAS to
/// pop the free list, one get, one put and a CAS to push the match list).
pub fn post_per_neighbor(m: &LogGP) -> f64 {
    let acquire = m.get(8) + m.get(8) + m.amo + 3.0 * m.o;
    let push = m.get(8) + m.put(8) + m.amo + 3.0 * m.o;
    acquire + push
}

/// PSCW ring (k = 2 neighbours, Figure 6c): returns per-rank completion
/// times of one post/start/complete/wait cycle entered at time zero.
pub fn pscw_ring(p: usize, m: &LogGP, noise: &mut Noise) -> Vec<f64> {
    if p == 1 {
        return vec![2.0 * post_per_neighbor(m) + 2.0 * (m.o + m.amo)];
    }
    // Phase 1: post to both neighbours (sequential remote ops).
    let post_done: Vec<f64> = (0..p)
        .map(|_| 2.0 * post_per_neighbor(m) + noise.sample_op(2.0 * post_per_neighbor(m)))
        .collect();
    // Phase 2: start = my post done (program order) ∨ both neighbours'
    // announcements visible; the announcement lands partway through their
    // post, bounded by post_done.
    let start_done: Vec<f64> = (0..p)
        .map(|i| {
            let l = (i + p - 1) % p;
            let r = (i + 1) % p;
            post_done[i].max(post_done[l]).max(post_done[r]) + m.sw_fompi
        })
        .collect();
    // Phase 3: complete = gsync + one AMO per neighbour.
    let complete_done: Vec<f64> = (0..p)
        .map(|i| start_done[i] + 2.0 * (m.o + m.amo) + noise.sample_op(2.0 * (m.o + m.amo)))
        .collect();
    // Phase 4: wait = both neighbours' completes visible.
    (0..p)
        .map(|i| {
            let l = (i + p - 1) % p;
            let r = (i + 1) % p;
            complete_done[i].max(complete_done[l]).max(complete_done[r]) + m.sw_fompi
        })
        .collect()
}

/// Uncontended lock-operation costs (the §3.2 constants as protocol sums).
pub struct LockCosts {
    /// First exclusive lock: global registration AMO + local CAS.
    pub lock_excl: f64,
    /// Shared lock / lock_all: one remote AMO.
    pub lock_shared: f64,
    /// Unlock (shared): one AMO.
    pub unlock: f64,
    /// Flush.
    pub flush: f64,
}

/// Derive lock costs from the model.
pub fn lock_costs(m: &LogGP) -> LockCosts {
    LockCosts {
        lock_excl: 2.0 * (m.o + m.amo) + m.sw_fompi,
        lock_shared: m.o + m.amo + m.sw_fompi,
        unlock: m.o + m.amo * 0.0 + m.sw_fompi + m.o, // release is fire-and-forget
        flush: m.sw_fompi,
    }
}

/// Max over ranks (the reported latency).
pub fn max_of(v: &[f64]) -> f64 {
    v.iter().cloned().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_scales_logarithmically() {
        let m = LogGP::default();
        let mut n = Noise::off();
        let mut at = |p: usize| max_of(&dissemination_barrier(&vec![0.0; p], &m, &mut n));
        let t2 = at(2);
        let t1024 = at(1024);
        assert!((t1024 / t2 - 10.0).abs() < 0.5, "t2={t2} t1024={t1024}");
    }

    #[test]
    fn barrier_waits_for_latecomer() {
        let m = LogGP::default();
        let mut n = Noise::off();
        let mut t0 = vec![0.0; 8];
        t0[3] = 1_000_000.0;
        let done = dissemination_barrier(&t0, &m, &mut n);
        assert!(done.iter().all(|&t| t > 1_000_000.0));
    }

    #[test]
    fn pscw_ring_is_flat_in_p() {
        let m = LogGP::default();
        let mut n = Noise::off();
        let t16 = max_of(&pscw_ring(16, &m, &mut n));
        let t16k = max_of(&pscw_ring(16_384, &m, &mut n));
        // The paper's key property: constant time for constant k.
        assert!((t16k - t16).abs() < 1.0, "t16={t16} t16k={t16k}");
    }

    #[test]
    fn pscw_noise_grows_with_p() {
        let m = LogGP::default();
        let noisy = |p: usize| {
            let mut n = Noise::new(42, 0.001, 50_000.0);
            max_of(&pscw_ring(p, &m, &mut n))
        };
        let clean = {
            let mut n = Noise::off();
            max_of(&pscw_ring(1 << 14, &m, &mut n))
        };
        // With thousands of ranks, someone hits the noise (probabilistic
        // but deterministic seed).
        assert!(noisy(1 << 14) > clean);
    }

    #[test]
    fn lock_constants_ordering() {
        let c = lock_costs(&LogGP::default());
        assert!(c.lock_excl > c.lock_shared);
        assert!(c.lock_shared > c.unlock);
        assert!(c.unlock > c.flush);
    }
}
