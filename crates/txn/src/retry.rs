//! Pluggable retry policies for transient transaction failures.
//!
//! Conflicts and torn reads are *expected* under contention; what differs
//! per workload is how to space the retries. [`RetryPolicy::Immediate`]
//! retries back-to-back (best for near-zero contention, where the first
//! retry almost always wins); [`RetryPolicy::Backoff`] spaces attempts
//! with capped exponential backoff and seeded jitter so symmetric
//! conflicters desynchronize instead of livelocking. Backoff time is
//! charged to the rank's *virtual* clock, so policies shape the modeled
//! latency distribution deterministically.
//!
//! The `FOMPI_TXN_RETRY` environment knob (carried by the fabric, parsed
//! here) selects the job-wide default:
//!
//! ```text
//! immediate[:budget]
//! backoff[:budget[:base_ns[:cap_ns]]]
//! ```
//!
//! e.g. `immediate:16` or `backoff:64:400:100000`.

use fompi::win::Win;
use fompi_fabric::rng::Rng;
use fompi_fabric::Fabric;

/// How a transaction retries after a transient failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryPolicy {
    /// Retry at once, up to `budget` attempts.
    Immediate {
        /// Maximum attempts before surfacing
        /// [`TxnError::RetriesExhausted`](crate::TxnError::RetriesExhausted).
        budget: u32,
    },
    /// Capped exponential backoff with jitter: attempt `a` waits a
    /// uniformly jittered `min(base_ns · 2^a, cap_ns)` virtual ns.
    Backoff {
        /// Maximum attempts before surfacing exhaustion.
        budget: u32,
        /// First-retry backoff in virtual ns.
        base_ns: u64,
        /// Backoff ceiling in virtual ns.
        cap_ns: u64,
    },
}

impl Default for RetryPolicy {
    /// The job-wide default when `FOMPI_TXN_RETRY` is unset: backoff with
    /// a 64-attempt budget, 400 ns base and 100 µs cap — aggressive
    /// enough for hot keys, bounded enough to surface pathologies.
    fn default() -> Self {
        RetryPolicy::Backoff { budget: 64, base_ns: 400, cap_ns: 100_000 }
    }
}

impl RetryPolicy {
    /// Maximum attempts before exhaustion surfaces.
    pub fn budget(&self) -> u32 {
        match *self {
            RetryPolicy::Immediate { budget } => budget,
            RetryPolicy::Backoff { budget, .. } => budget,
        }
    }

    /// Virtual ns to wait before retry number `attempt` (1-based). The
    /// jitter draw comes from `rng`, so two ranks seeded differently
    /// desynchronize while each rank's schedule stays deterministic.
    pub fn backoff_ns(&self, attempt: u32, rng: &mut Rng) -> f64 {
        match *self {
            RetryPolicy::Immediate { .. } => 0.0,
            RetryPolicy::Backoff { base_ns, cap_ns, .. } => {
                let exp = attempt.saturating_sub(1).min(16);
                let raw = base_ns.saturating_mul(1u64 << exp).min(cap_ns.max(1));
                // Uniform jitter over [raw/2, raw]: keeps the exponential
                // envelope while decorrelating symmetric conflicters.
                let half = raw / 2;
                (half + rng.next_below(raw - half + 1)) as f64
            }
        }
    }

    /// Parse the `FOMPI_TXN_RETRY` grammar (see the module docs).
    pub fn from_spec(spec: &str) -> Result<RetryPolicy, String> {
        let mut parts = spec.trim().split(':');
        let kind = parts.next().unwrap_or("");
        let mut num = |what: &str, default: u64| -> Result<u64, String> {
            match parts.next() {
                None | Some("") => Ok(default),
                Some(tok) => tok
                    .parse::<u64>()
                    .map_err(|_| format!("FOMPI_TXN_RETRY: bad {what} {tok:?} in {spec:?}")),
            }
        };
        let policy = match kind {
            "immediate" => RetryPolicy::Immediate { budget: num("budget", 64)? as u32 },
            "backoff" => {
                let d = RetryPolicy::default();
                let (db, dbase, dcap) = match d {
                    RetryPolicy::Backoff { budget, base_ns, cap_ns } => {
                        (budget as u64, base_ns, cap_ns)
                    }
                    RetryPolicy::Immediate { .. } => unreachable!(),
                };
                RetryPolicy::Backoff {
                    budget: num("budget", db)? as u32,
                    base_ns: num("base_ns", dbase)?,
                    cap_ns: num("cap_ns", dcap)?,
                }
            }
            other => return Err(format!("FOMPI_TXN_RETRY: unknown policy {other:?} in {spec:?}")),
        };
        if let Some(extra) = parts.next() {
            return Err(format!("FOMPI_TXN_RETRY: trailing field {extra:?} in {spec:?}"));
        }
        if policy.budget() == 0 {
            return Err(format!("FOMPI_TXN_RETRY: budget must be >= 1 in {spec:?}"));
        }
        Ok(policy)
    }

    /// The policy the fabric carries (`FOMPI_TXN_RETRY` /
    /// `Universe::txn_retry`), or the default when unset. A malformed
    /// spec panics: it is launch-time configuration, and silently
    /// substituting the default would hide the typo.
    pub fn for_fabric(fabric: &Fabric) -> RetryPolicy {
        match fabric.txn_retry() {
            None => RetryPolicy::default(),
            Some(spec) => match RetryPolicy::from_spec(&spec) {
                Ok(p) => p,
                Err(e) => panic!("{e}"),
            },
        }
    }

    /// [`RetryPolicy::for_fabric`] via the window's endpoint.
    pub fn for_win(win: &Win) -> RetryPolicy {
        Self::for_fabric(win.endpoint().fabric())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_roundtrips() {
        assert_eq!(RetryPolicy::from_spec("immediate"), Ok(RetryPolicy::Immediate { budget: 64 }));
        assert_eq!(RetryPolicy::from_spec("immediate:3"), Ok(RetryPolicy::Immediate { budget: 3 }));
        assert_eq!(RetryPolicy::from_spec("backoff"), Ok(RetryPolicy::default()));
        assert_eq!(
            RetryPolicy::from_spec("backoff:8:100:5000"),
            Ok(RetryPolicy::Backoff { budget: 8, base_ns: 100, cap_ns: 5000 })
        );
        // Partial backoff specs fill the tail with defaults.
        assert_eq!(
            RetryPolicy::from_spec("backoff:8"),
            Ok(RetryPolicy::Backoff { budget: 8, base_ns: 400, cap_ns: 100_000 })
        );
        for bad in ["", "exponential", "backoff:x", "immediate:1:2", "backoff:1:2:3:4", "backoff:0"]
        {
            assert!(RetryPolicy::from_spec(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy::Backoff { budget: 32, base_ns: 100, cap_ns: 1_000 };
        let mut rng = Rng::seed_from_u64(7);
        // The jittered wait stays inside [raw/2, raw] for every attempt,
        // with raw = min(100·2^(a-1), 1000).
        let mut hit_cap = false;
        for a in 1..=20u32 {
            let raw = (100u64 << (a - 1).min(16)).min(1_000) as f64;
            let w = p.backoff_ns(a, &mut rng);
            assert!(
                w >= raw / 2.0 - 1.0 && w <= raw,
                "attempt {a}: {w} outside [{}, {raw}]",
                raw / 2.0
            );
            hit_cap |= raw == 1_000.0;
        }
        assert!(hit_cap);
        // Immediate never waits.
        let mut rng2 = Rng::seed_from_u64(7);
        assert_eq!(RetryPolicy::Immediate { budget: 4 }.backoff_ns(9, &mut rng2), 0.0);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let p = RetryPolicy::default();
        let series = |seed| {
            let mut rng = Rng::seed_from_u64(seed);
            (1..=8u32).map(|a| p.backoff_ns(a, &mut rng).to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(series(42), series(42));
        assert_ne!(series(42), series(43), "different seeds must decorrelate");
    }
}
