//! Optimistic multi-key transactions and the retry driver.
//!
//! A [`Txn`] accumulates a read set (cells read through the versioned
//! protocol, with the version each payload was consistent at) and a write
//! set (staged payloads for cells already in the read set). [`Txn::commit`]
//! then runs the four phases, all built from `compare_and_swap` /
//! `accumulate` / `get_accumulate` + `flush`:
//!
//! 1. **lock+validate** — write-set cells in global (rank, disp) order:
//!    CAS `v → v+1` where `v` is the version observed at read time. The
//!    CAS *is* the validation; a miss rolls back the locked prefix and
//!    aborts with [`TxnError::Conflict`].
//! 2. **validate reads** — read-only cells are re-fetched and must still
//!    hold their observed version.
//! 3. **write** — staged payloads land via `accumulate(MPI_REPLACE)`,
//!    fenced by one flush.
//! 4. **publish** — per cell CAS `v+1 → v+2`, fenced by a final flush.
//!
//! The sorted lock order makes symmetric conflicts deadlock-free: two
//! transactions contending for the same pair always collide on the
//! *first* common cell, and the loser backs off holding nothing beyond
//! its rolled-back prefix.
//!
//! The caller must hold a passive-target access epoch covering every
//! target (in practice `lock_all`), mirroring how the paper's hashtable
//! drives its CAS inserts.

use crate::retry::RetryPolicy;
use crate::versioned::VersionedCell;
use crate::{Result, TxnError};
use fompi::win::Win;
use fompi::{MpiOp, NumKind};
use fompi_fabric::rng::Rng;
use fompi_fabric::telemetry::{EventKind, NO_FLOW, NO_TARGET};

struct ReadEntry {
    cell: VersionedCell,
    version: u64,
}

struct WriteEntry {
    cell: VersionedCell,
    version: u64,
    payload: Vec<u8>,
}

/// What a successful commit did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitStats {
    /// Cells written (0 for a validated read-only transaction).
    pub keys: usize,
    /// Payload bytes published.
    pub bytes: usize,
}

/// One transaction attempt over a window.
pub struct Txn<'w> {
    win: &'w Win,
    reads: Vec<ReadEntry>,
    writes: Vec<WriteEntry>,
}

impl<'w> Txn<'w> {
    /// Start an empty transaction. Dropping it without
    /// [`commit`](Txn::commit) aborts for free — no remote state is
    /// touched before the commit phases.
    pub fn begin(win: &'w Win) -> Txn<'w> {
        Txn { win, reads: Vec::new(), writes: Vec::new() }
    }

    /// Versioned read of `cell` into `buf`, recording the observed
    /// version in the read set. A torn read fails the whole attempt
    /// (transient) — the retry driver re-runs the body.
    pub fn read(&mut self, cell: VersionedCell, buf: &mut [u8]) -> Result<u64> {
        let version = cell.read(self.win, buf)?;
        match self.reads.iter_mut().find(|r| r.cell == cell) {
            // Re-reading a cell inside one attempt must see one snapshot.
            Some(prev) if prev.version != version => {
                Err(TxnError::TornRead { target: cell.target, disp: cell.disp })
            }
            Some(_) => Ok(version),
            None => {
                self.reads.push(ReadEntry { cell, version });
                Ok(version)
            }
        }
    }

    /// Stage `payload` for `cell`. The cell must have been read by *this*
    /// transaction — the observed version is what commit validates — so a
    /// blind write is rejected. Restaging replaces the earlier payload.
    pub fn write(&mut self, cell: VersionedCell, payload: &[u8]) -> Result<()> {
        assert_eq!(payload.len(), cell.payload_len, "staged payload size mismatch");
        let Some(read) = self.reads.iter().find(|r| r.cell == cell) else {
            return Err(TxnError::BlindWrite { target: cell.target, disp: cell.disp });
        };
        let version = read.version;
        match self.writes.iter_mut().find(|w| w.cell == cell) {
            Some(w) => w.payload.copy_from_slice(payload),
            None => self.writes.push(WriteEntry { cell, version, payload: payload.to_vec() }),
        }
        Ok(())
    }

    /// Run the commit phases. On success every staged payload is
    /// remotely visible at version `v+2` and a `txn_commit` span is
    /// recorded; on conflict nothing is (the locked prefix was rolled
    /// back) and the error is transient.
    pub fn commit(mut self) -> Result<CommitStats> {
        let win = self.win;
        let ep = win.endpoint();
        let t0 = ep.clock().now();
        // Global lock order: (rank, disp) sorts identically everywhere.
        self.writes.sort_by_key(|w| (w.cell.target, w.cell.disp));

        // Phase 1: lock+validate the write set.
        for i in 0..self.writes.len() {
            let w = &self.writes[i];
            let prev = w.cell.cas_version(win, w.version + 1, w.version)?;
            if prev != w.version {
                self.rollback(i)?;
                return Err(TxnError::Conflict { target: w.cell.target, disp: w.cell.disp });
            }
        }
        // Phase 2: validate read-only cells against their observed
        // versions (write-set cells were validated by the lock CAS).
        for r in &self.reads {
            if self.writes.iter().any(|w| w.cell == r.cell) {
                continue;
            }
            if r.cell.fetch_version(win)? != r.version {
                self.rollback(self.writes.len())?;
                return Err(TxnError::Conflict { target: r.cell.target, disp: r.cell.disp });
            }
        }
        // Phase 3: write payloads, fence before publication.
        let mut bytes = 0usize;
        for w in &self.writes {
            win.accumulate(
                &w.payload,
                NumKind::U64,
                MpiOp::Replace,
                w.cell.target,
                w.cell.disp + 8,
            )?;
            bytes += w.payload.len();
        }
        win.flush_all()?;
        // Phase 4: publish — the unlock CAS cannot miss (we hold v+1).
        for w in &self.writes {
            let prev = w.cell.cas_version(win, w.version + 2, w.version + 1)?;
            debug_assert_eq!(prev, w.version + 1, "lock word stolen while held");
        }
        win.flush_all()?;
        let keys = self.writes.len();
        ep.trace_flow_consume(EventKind::TxnCommit, NO_TARGET, t0, NO_FLOW, bytes as u64);
        Ok(CommitStats { keys, bytes })
    }

    /// Unlock the first `locked` write-set cells (`v+1 → v`) after a lost
    /// lock or failed validation.
    fn rollback(&self, locked: usize) -> Result<()> {
        for w in &self.writes[..locked] {
            let prev = w.cell.cas_version(self.win, w.version, w.version + 1)?;
            debug_assert_eq!(prev, w.version + 1, "lock word stolen during rollback");
        }
        if locked > 0 {
            self.win.flush_all()?;
        }
        Ok(())
    }
}

/// Run `body` under `policy` until it commits, a non-transient error
/// escapes, or the retry budget is exhausted. Each failed attempt records
/// a `txn_abort` telemetry span and charges the policy's backoff to the
/// rank's virtual clock; exhaustion surfaces as the *transient*
/// [`TxnError::RetriesExhausted`] so callers can shed load (the notify
/// backpressure idiom) instead of spinning forever.
pub fn run<T>(
    win: &Win,
    policy: &RetryPolicy,
    rng: &mut Rng,
    mut body: impl FnMut(&mut Txn) -> Result<T>,
) -> Result<T> {
    let ep = win.endpoint();
    let mut attempts = 0u32;
    loop {
        let t0 = ep.clock().now();
        let mut txn = Txn::begin(win);
        let res = body(&mut txn).and_then(|v| txn.commit().map(|_| v));
        match res {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() => {
                ep.trace_flow_consume(EventKind::TxnAbort, NO_TARGET, t0, NO_FLOW, 0);
                attempts += 1;
                if attempts >= policy.budget() {
                    return Err(TxnError::RetriesExhausted { attempts });
                }
                ep.charge(policy.backoff_ns(attempts, rng));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_fabric::FaultPlan;
    use fompi_runtime::Universe;

    const CELL: usize = 16; // version word + one u64 payload
    const PAY: usize = 8;

    fn cell(rank: u32, slot: usize) -> VersionedCell {
        VersionedCell::new(rank, slot * CELL, PAY)
    }

    fn read_u64(txn: &mut Txn, c: VersionedCell) -> Result<u64> {
        let mut b = [0u8; PAY];
        txn.read(c, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    #[test]
    fn single_key_commit_bumps_version_and_lands_payload() {
        let (_, fabric) = Universe::new(2)
            .node_size(1)
            .seed(3)
            .faults(FaultPlan::disabled())
            .metrics(true)
            .launch(|ctx| {
                let win = fompi::Win::allocate(ctx, CELL, 1).unwrap();
                VersionedCell::init_local(&win, 0, &7u64.to_le_bytes());
                ctx.barrier();
                win.lock_all().unwrap();
                if ctx.rank() == 0 {
                    let c = cell(1, 0);
                    let mut txn = Txn::begin(&win);
                    let old = read_u64(&mut txn, c).unwrap();
                    txn.write(c, &(old + 35).to_le_bytes()).unwrap();
                    let stats = txn.commit().unwrap();
                    assert_eq!(stats, CommitStats { keys: 1, bytes: PAY });
                    // A fresh read sees the new value at version 2.
                    let mut txn2 = Txn::begin(&win);
                    let mut b = [0u8; PAY];
                    assert_eq!(txn2.read(c, &mut b).unwrap(), 2);
                    assert_eq!(u64::from_le_bytes(b), 42);
                }
                win.unlock_all().unwrap();
                ctx.barrier();
            });
        // The metrics plane saw the commit and both versioned reads.
        let tel = fabric.telemetry();
        assert_eq!(tel.stats(EventKind::TxnCommit).count(), 1);
        assert_eq!(tel.stats(EventKind::TxnRead).count(), 2);
        assert_eq!(tel.stats(EventKind::TxnAbort).count(), 0);
    }

    #[test]
    fn blind_writes_are_rejected() {
        Universe::new(2).node_size(1).seed(5).faults(FaultPlan::disabled()).launch(|ctx| {
            let win = fompi::Win::allocate(ctx, CELL, 1).unwrap();
            VersionedCell::init_local(&win, 0, &[0u8; PAY]);
            ctx.barrier();
            win.lock_all().unwrap();
            if ctx.rank() == 0 {
                let mut txn = Txn::begin(&win);
                let e = txn.write(cell(1, 0), &[0u8; PAY]).unwrap_err();
                assert!(matches!(e, TxnError::BlindWrite { target: 1, disp: 0 }));
                assert!(!e.is_transient(), "a blind write is a program bug, not contention");
            }
            win.unlock_all().unwrap();
            ctx.barrier();
        });
    }

    #[test]
    fn symmetric_two_key_conflicts_are_deadlock_free() {
        // Both ranks run opposing transfers over the same two cells for
        // many rounds. The sorted lock order turns would-be deadlocks
        // into plain conflicts, so with retries every round terminates —
        // and the conserved sum proves no half-applied transfer leaked.
        const ROUNDS: usize = 25;
        const INIT: u64 = 1_000_000;
        let (outs, fabric) = Universe::new(2)
            .node_size(1)
            .seed(9)
            .faults(FaultPlan::disabled())
            .metrics(true)
            .launch(|ctx| {
                let win = fompi::Win::allocate(ctx, CELL, 1).unwrap();
                VersionedCell::init_local(&win, 0, &INIT.to_le_bytes());
                ctx.barrier();
                win.lock_all().unwrap();
                let me = ctx.rank();
                let (a, b) = (cell(me, 0), cell(1 - me, 0)); // opposite orders
                let policy = RetryPolicy::default();
                let mut rng = Rng::seed_from_u64(100 + me as u64);
                for round in 0..ROUNDS {
                    let amt = (round as u64 % 7) + 1;
                    run(&win, &policy, &mut rng, |txn| {
                        let from = read_u64(txn, a)?;
                        let to = read_u64(txn, b)?;
                        txn.write(a, &from.wrapping_sub(amt).to_le_bytes())?;
                        txn.write(b, &to.wrapping_add(amt).to_le_bytes())?;
                        Ok(())
                    })
                    .unwrap();
                }
                win.unlock_all().unwrap();
                ctx.barrier();
                let mut bal = [0u8; PAY];
                win.read_local(8, &mut bal);
                ctx.allreduce_u64(u64::from_le_bytes(bal), u64::wrapping_add)
            });
        let tel = fabric.telemetry();
        let commits = tel.stats(EventKind::TxnCommit).count();
        assert_eq!(commits, 2 * ROUNDS as u64, "every transfer must eventually commit");
        for sum in outs {
            assert_eq!(sum, 2 * INIT, "transfers must conserve the total balance");
        }
    }

    #[test]
    fn retry_budget_exhaustion_is_transient_not_a_spin() {
        let (outs, fabric) = Universe::new(2)
            .node_size(1)
            .seed(13)
            .faults(FaultPlan::disabled())
            .metrics(true)
            .launch(|ctx| {
                let win = fompi::Win::allocate(ctx, CELL, 1).unwrap();
                VersionedCell::init_local(&win, 0, &[0u8; PAY]);
                ctx.barrier();
                win.lock_all().unwrap();
                let c = cell(0, 0);
                let mut out = None;
                if ctx.rank() == 0 {
                    // Hold our own cell's lock across the peer's attempts.
                    assert_eq!(c.cas_version(&win, 1, 0).unwrap(), 0);
                    win.flush_all().unwrap();
                }
                ctx.barrier();
                if ctx.rank() == 1 {
                    let policy = RetryPolicy::Backoff { budget: 3, base_ns: 50, cap_ns: 400 };
                    let mut rng = Rng::seed_from_u64(77);
                    let before = ctx.now();
                    let err = run(&win, &policy, &mut rng, |txn| {
                        let v = read_u64(txn, c)?;
                        txn.write(c, &(v + 1).to_le_bytes())?;
                        Ok(())
                    })
                    .unwrap_err();
                    assert!(
                        matches!(err, TxnError::RetriesExhausted { attempts: 3 }),
                        "got {err:?}"
                    );
                    assert!(err.is_transient(), "exhaustion must be sheddable, like backpressure");
                    // The backoff charged virtual time: we waited, not spun.
                    out = Some(ctx.now() - before);
                }
                ctx.barrier();
                if ctx.rank() == 0 {
                    assert_eq!(c.cas_version(&win, 0, 1).unwrap(), 1);
                    win.flush_all().unwrap();
                }
                win.unlock_all().unwrap();
                ctx.barrier();
                out
            });
        assert!(outs[1].unwrap() > 0.0);
        assert_eq!(fabric.telemetry().stats(EventKind::TxnAbort).count(), 3);
        assert_eq!(fabric.telemetry().stats(EventKind::TxnCommit).count(), 0);
    }

    #[test]
    fn read_only_transactions_validate_their_snapshot() {
        Universe::new(2).node_size(1).seed(21).faults(FaultPlan::disabled()).launch(|ctx| {
            let win = fompi::Win::allocate(ctx, CELL, 1).unwrap();
            VersionedCell::init_local(&win, 0, &5u64.to_le_bytes());
            ctx.barrier();
            win.lock_all().unwrap();
            if ctx.rank() == 0 {
                let c = cell(1, 0);
                // Clean snapshot commits…
                let mut txn = Txn::begin(&win);
                assert_eq!(read_u64(&mut txn, c).unwrap(), 5);
                assert_eq!(txn.commit().unwrap(), CommitStats { keys: 0, bytes: 0 });
                // …but a snapshot invalidated by a later commit aborts.
                let mut stale = Txn::begin(&win);
                read_u64(&mut stale, c).unwrap();
                let mut bump = Txn::begin(&win);
                let v = read_u64(&mut bump, c).unwrap();
                bump.write(c, &(v + 1).to_le_bytes()).unwrap();
                bump.commit().unwrap();
                let e = stale.commit().unwrap_err();
                assert!(matches!(e, TxnError::Conflict { target: 1, disp: 0 }), "{e:?}");
            }
            win.unlock_all().unwrap();
            ctx.barrier();
        });
    }
}
