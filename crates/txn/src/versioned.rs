//! Versioned remote cells: the seqlock-style object layout transactions
//! operate on.
//!
//! A cell is an 8-byte **version word** followed by `payload_len` payload
//! bytes, both in ordinary window memory. Even version = unlocked; odd =
//! a commit holds the cell. Readers never lock: they fetch the version,
//! atomically read the payload, re-fetch the version, and reject the read
//! as *torn* if either fetch is odd or the two differ.
//!
//! Every remote access is an accumulate-class op — version fetches are
//! `MPI_NO_OP` fetch-and-ops, payload reads `MPI_NO_OP` get-accumulates,
//! payload writes `MPI_REPLACE` accumulates, version transitions CAS — so
//! the epoch-aware race checker sees only MPI-permitted same-op/no-op
//! accumulate overlap, never put/get conflicts.

use crate::{Result, TxnError};
use fompi::win::Win;
use fompi::{MpiOp, NumKind};
use fompi_fabric::telemetry::{EventKind, NO_FLOW};

/// One remote versioned cell: the version word lives at `disp` (which
/// must be 8-byte aligned in the target's window — CAS requires it), the
/// payload at `disp + 8`. Displacements are in window displacement units;
/// the transactional structures use byte-addressed windows
/// (`disp_unit = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionedCell {
    /// Rank owning the cell.
    pub target: u32,
    /// Displacement of the version word.
    pub disp: usize,
    /// Payload bytes (must be a multiple of 8: payloads move as atomic
    /// 8-byte accumulate elements).
    pub payload_len: usize,
}

/// Seqlock validation: a read is consistent iff the version was even
/// (unlocked) and unchanged across the payload read.
#[inline]
pub fn versions_consistent(v1: u64, v2: u64) -> bool {
    v1 & 1 == 0 && v1 == v2
}

impl VersionedCell {
    /// A cell handle. Panics on a misaligned version word or a payload
    /// that is not a multiple of 8 bytes — both are layout bugs, not
    /// runtime conditions.
    pub fn new(target: u32, disp: usize, payload_len: usize) -> VersionedCell {
        assert!(disp.is_multiple_of(8), "version word at disp {disp} must be 8-byte aligned");
        assert!(
            payload_len > 0 && payload_len.is_multiple_of(8),
            "payload of {payload_len} bytes must be a positive multiple of 8"
        );
        VersionedCell { target, disp, payload_len }
    }

    /// Window bytes one cell occupies (version word + payload).
    pub fn footprint(&self) -> usize {
        8 + self.payload_len
    }

    /// Initialize this rank's *own* cell before any epoch opens: version
    /// zero (unlocked), payload as given. Local stores only — call it
    /// between allocation and the first barrier, like any window
    /// initialization.
    pub fn init_local(win: &Win, disp: usize, payload: &[u8]) {
        win.write_local(disp, &0u64.to_le_bytes());
        win.write_local(disp + 8, payload);
    }

    /// Atomically fetch the version word.
    pub(crate) fn fetch_version(&self, win: &Win) -> Result<u64> {
        let mut b = [0u8; 8];
        win.fetch_and_op(&[], &mut b, NumKind::U64, MpiOp::NoOp, self.target, self.disp)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Try the seqlock transition `expect → desired` on the version word;
    /// returns the previous value (success iff it equals `expect`).
    pub(crate) fn cas_version(&self, win: &Win, desired: u64, expect: u64) -> Result<u64> {
        Ok(win.compare_and_swap(desired, expect, self.target, self.disp)?)
    }

    /// Atomically read the payload (no version check — used between the
    /// two version fetches of [`VersionedCell::read`]).
    pub(crate) fn fetch_payload(&self, win: &Win, buf: &mut [u8]) -> Result<()> {
        assert_eq!(buf.len(), self.payload_len, "payload buffer size mismatch");
        win.get_accumulate(&[], buf, NumKind::U64, MpiOp::NoOp, self.target, self.disp + 8)?;
        Ok(())
    }

    /// One versioned read: version fetch, atomic payload read, version
    /// re-check. On success returns the (even) version the payload is
    /// consistent with and records a `txn_read` telemetry span; a locked
    /// or moving version fails with [`TxnError::TornRead`] (transient —
    /// retry, e.g. via [`crate::run`]).
    pub fn read(&self, win: &Win, buf: &mut [u8]) -> Result<u64> {
        let ep = win.endpoint();
        let t0 = ep.clock().now();
        let v1 = self.fetch_version(win)?;
        if v1 & 1 == 1 {
            return Err(TxnError::TornRead { target: self.target, disp: self.disp });
        }
        self.fetch_payload(win, buf)?;
        let v2 = self.fetch_version(win)?;
        if !versions_consistent(v1, v2) {
            return Err(TxnError::TornRead { target: self.target, disp: self.disp });
        }
        ep.trace_flow_consume(
            EventKind::TxnRead,
            self.target,
            t0,
            NO_FLOW,
            self.payload_len as u64,
        );
        Ok(v1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_fabric::FaultPlan;
    use fompi_runtime::Universe;

    fn uni(p: usize) -> Universe {
        Universe::new(p).node_size(1).seed(11).faults(FaultPlan::disabled())
    }

    #[test]
    fn consistency_predicate_pins_the_seqlock_rules() {
        assert!(versions_consistent(0, 0));
        assert!(versions_consistent(4, 4));
        // Locked at first fetch…
        assert!(!versions_consistent(1, 1));
        // …or moved across the payload read (even→even still tears).
        assert!(!versions_consistent(0, 2));
        assert!(!versions_consistent(2, 0));
        // …or locked at the re-check.
        assert!(!versions_consistent(2, 3));
    }

    #[test]
    fn read_roundtrips_payload_and_version() {
        let (outs, _) = uni(2).launch(|ctx| {
            let win = fompi::Win::allocate(ctx, 24, 1).unwrap();
            let me = ctx.rank();
            VersionedCell::init_local(&win, 0, &[me as u8; 16]);
            ctx.barrier();
            win.lock_all().unwrap();
            let peer = 1 - me;
            let cell = VersionedCell::new(peer, 0, 16);
            let mut buf = [0u8; 16];
            let v = cell.read(&win, &mut buf).unwrap();
            win.unlock_all().unwrap();
            ctx.barrier();
            (v, buf)
        });
        for (me, (v, buf)) in outs.iter().enumerate() {
            assert_eq!(*v, 0, "fresh cell must read at version 0");
            assert_eq!(*buf, [(1 - me) as u8; 16]);
        }
    }

    #[test]
    fn torn_read_rejected_when_version_odd() {
        let (outs, _) = uni(2).launch(|ctx| {
            let win = fompi::Win::allocate(ctx, 24, 1).unwrap();
            VersionedCell::init_local(&win, 0, &[0u8; 16]);
            ctx.barrier();
            win.lock_all().unwrap();
            let cell = VersionedCell::new(1, 0, 16);
            let mut torn = false;
            if ctx.rank() == 0 {
                // Lock rank 1's cell (0 → 1) and leave it locked…
                assert_eq!(cell.cas_version(&win, 1, 0).unwrap(), 0);
                win.flush_all().unwrap();
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                // …so a reader must reject the odd version as torn.
                let mut buf = [0u8; 16];
                match cell.read(&win, &mut buf) {
                    Err(TxnError::TornRead { target: 1, disp: 0 }) => torn = true,
                    other => panic!("expected TornRead, got {other:?}"),
                }
            }
            ctx.barrier();
            if ctx.rank() == 0 {
                // Unlock so quiescent teardown sees an even version.
                assert_eq!(cell.cas_version(&win, 0, 1).unwrap(), 1);
                win.flush_all().unwrap();
            }
            win.unlock_all().unwrap();
            ctx.barrier();
            torn
        });
        assert!(outs[1], "rank 1 must observe the torn read");
    }

    #[test]
    fn torn_read_is_transient_and_named() {
        let e = TxnError::TornRead { target: 3, disp: 48 };
        assert!(e.is_transient());
        assert!(e.to_string().contains("rank=3"));
    }

    #[test]
    #[should_panic(expected = "8-byte aligned")]
    fn misaligned_version_word_is_a_layout_bug() {
        VersionedCell::new(0, 4, 16);
    }
}
