//! `fompi-txn`: transactional remote data structures over foMPI RMA.
//!
//! A thin optimistic-concurrency layer in the style of Storm's "fast
//! transactional dataplane": remote objects are *versioned cells* — a
//! seqlock-style 8-byte version word followed by the payload, both in
//! ordinary window memory — and writes go through a CAS-based optimistic
//! multi-key commit built purely from the MPI-3 one-sided primitives the
//! paper accelerates (`compare_and_swap`, `accumulate`, `get_accumulate`,
//! `flush`). No receiver-side CPU touches the data path.
//!
//! ## Version-word protocol
//!
//! * An **even** version means the cell is unlocked; **odd** means a
//!   commit holds it.
//! * A [`read`](Txn::read) fetches the version, atomically reads the
//!   payload, and re-fetches the version: if either fetch is odd or the
//!   two differ, the read was torn and fails with
//!   [`TxnError::TornRead`] (transient — retry).
//! * A [`commit`](Txn::commit) sorts its write set by (rank,
//!   displacement) — the global lock order that makes symmetric conflicts
//!   deadlock-free — then per key CASes `v → v+1` where `v` is the
//!   version observed at read time. The CAS *is* the validation: it fails
//!   iff the cell changed or is locked. Payloads are then written with
//!   accumulate(REPLACE), flushed, and each key is published with a CAS
//!   `v+1 → v+2` and a final flush.
//! * On a lock conflict the already-locked prefix is rolled back
//!   (`v+1 → v`) and the attempt aborts with [`TxnError::Conflict`].
//!
//! All remote accesses are accumulate-class ops (CAS, `MPI_NO_OP` reads,
//! `MPI_REPLACE` writes), so the racecheck shadow model sees only
//! same-op/no-op accumulate overlap — permitted by MPI-3 §11.7.1 — and
//! the commit path is racecheck-clean by construction.
//!
//! ## Retry
//!
//! [`RetryPolicy`] drives the retry loop ([`run`]): immediate retry or
//! capped exponential backoff with seeded jitter (`fabric::rng`), charged
//! to the rank's *virtual* clock. An exhausted budget surfaces as
//! [`TxnError::RetriesExhausted`], which is transient
//! ([`TxnError::is_transient`]) exactly like the notified-access
//! backpressure path, so callers can shed load instead of spinning.

pub mod retry;
pub mod txn;
pub mod versioned;

pub use retry::RetryPolicy;
pub use txn::{run, CommitStats, Txn};
pub use versioned::{versions_consistent, VersionedCell};

use fompi::FompiError;

/// Transaction-layer errors. The conflict/torn/exhausted variants are
/// *transient*: the data structure is unchanged and the operation can be
/// retried (or shed) safely.
#[derive(Debug)]
pub enum TxnError {
    /// A commit lost the lock CAS on a cell: it changed (or is locked)
    /// since this transaction read it. The attempt rolled back.
    Conflict {
        /// Rank owning the contended cell.
        target: u32,
        /// Displacement of the cell's version word.
        disp: usize,
    },
    /// A versioned read observed a locked (odd) or changing version.
    TornRead {
        /// Rank owning the cell.
        target: u32,
        /// Displacement of the cell's version word.
        disp: usize,
    },
    /// The retry budget ran out before a clean attempt. Transient by
    /// design: surfacing beats spinning (cf. notify backpressure).
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A write was staged for a cell this transaction never read; the
    /// commit has no version to validate against.
    BlindWrite {
        /// Rank owning the cell.
        target: u32,
        /// Displacement of the cell's version word.
        disp: usize,
    },
    /// An underlying RMA error (epoch misuse, bounds, fabric faults).
    Fompi(FompiError),
}

impl From<FompiError> for TxnError {
    fn from(e: FompiError) -> Self {
        TxnError::Fompi(e)
    }
}

impl TxnError {
    /// Would a retry (or load shed) make sense? True for conflicts, torn
    /// reads and budget exhaustion — and for transient fabric errors
    /// (backpressure, busy segments) bubbling up from below.
    pub fn is_transient(&self) -> bool {
        match self {
            TxnError::Conflict { .. }
            | TxnError::TornRead { .. }
            | TxnError::RetriesExhausted { .. } => true,
            TxnError::BlindWrite { .. } => false,
            TxnError::Fompi(e) => e.is_transient(),
        }
    }
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::Conflict { target, disp } => {
                write!(f, "commit conflict on cell rank={target} disp={disp} (transient)")
            }
            TxnError::TornRead { target, disp } => {
                write!(f, "torn versioned read on cell rank={target} disp={disp} (transient)")
            }
            TxnError::RetriesExhausted { attempts } => {
                write!(f, "transaction retry budget exhausted after {attempts} attempts")
            }
            TxnError::BlindWrite { target, disp } => {
                write!(f, "write staged for unread cell rank={target} disp={disp}")
            }
            TxnError::Fompi(e) => write!(f, "rma error in transaction: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

/// Result alias for the transaction layer.
pub type Result<T> = std::result::Result<T, TxnError>;
