//! End-to-end model-checking gates: the six protocol kernels must pass
//! exhaustively with zero violations, both mutants must produce
//! replayable counterexamples, and replay — in-process and through the
//! `FOMPI_MC_REPLAY` environment knob — must reproduce the violation
//! *and* the per-rank virtual clocks bit-for-bit.

use fompi_mc::{check, find_model, replay, Found, McConfig, Model};

fn model(name: &str) -> Model {
    find_model(name).unwrap_or_else(|| panic!("unknown model {name}"))
}

/// Exhaustive default-bound run: complete, violation-free, with a
/// reference digest established.
fn assert_clean(name: &str) {
    let r = check(&model(name), &McConfig::default());
    assert!(r.complete, "{name}: exploration hit a bound");
    assert!(
        r.counterexample.is_none(),
        "{name}: {}",
        r.counterexample.map(|c| format!("{} ({})", c.violation, c.schedule)).unwrap()
    );
    assert!(r.schedules >= 1, "{name}: no completed schedule");
    assert!(r.digest.is_some(), "{name}: no reference digest");
    assert_eq!(r.pruned, 0, "{name}: pruning without a preemption budget");
}

#[test]
fn msg_channel_is_exhaustively_clean() {
    assert_clean("msg-channel");
}

#[test]
fn rmc_fanin_is_exhaustively_clean() {
    assert_clean("rmc-fanin");
}

#[test]
fn rmc_fanout_is_exhaustively_clean() {
    assert_clean("rmc-fanout");
}

#[test]
fn rmc_mesh_is_exhaustively_clean() {
    assert_clean("rmc-mesh");
}

#[test]
fn rpc_timeout_is_exhaustively_clean() {
    assert_clean("rpc-timeout");
}

#[test]
fn txn_commit_is_exhaustively_clean() {
    assert_clean("txn-commit");
}

#[test]
fn mesh_credit_leak_deadlocks_with_replayable_counterexample() {
    let m = model("mesh-credit-leak");
    let cx = check(&m, &McConfig::default())
        .counterexample
        .expect("broken credit return must produce a counterexample");
    assert!(matches!(cx.violation, Found::Deadlock { .. }), "got {}", cx.violation);
    if let Found::Deadlock { detail } = &cx.violation {
        assert!(detail.contains("wait-notify"), "deadlock detail names the waits: {detail}");
    }
    let rep = replay(&m, &cx.schedule);
    let rcx = rep.counterexample.expect("replay must reproduce the deadlock");
    assert_eq!(rcx.violation, cx.violation);
    assert_eq!(rcx.schedule, cx.schedule);
    assert_eq!(rep.clocks, cx.clocks, "replayed per-rank virtual clocks must match exactly");
}

#[test]
fn txn_lost_publish_panics_with_replayable_counterexample() {
    let m = model("txn-lost-publish");
    let cx = check(&m, &McConfig::default())
        .counterexample
        .expect("dropped publish CAS must produce a counterexample");
    match &cx.violation {
        Found::Panic { rank, msg } => {
            assert_eq!(*rank, 0);
            assert!(msg.contains("lost publish CAS"), "{msg}");
        }
        other => panic!("expected a panic violation, got {other}"),
    }
    let rep = replay(&m, &cx.schedule);
    let rcx = rep.counterexample.expect("replay must reproduce the panic");
    assert_eq!(rcx.violation, cx.violation);
    assert_eq!(rep.clocks, cx.clocks, "replayed per-rank virtual clocks must match exactly");
}

#[test]
fn counterexamples_are_deterministic_across_explorations() {
    let m = model("mesh-credit-leak");
    let a = check(&m, &McConfig::default()).counterexample.unwrap();
    let b = check(&m, &McConfig::default()).counterexample.unwrap();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.violation, b.violation);
    assert_eq!(a.clocks, b.clocks);
}

#[test]
fn replay_env_knob_round_trips_out_of_process() {
    let m = model("mesh-credit-leak");
    let cx = check(&m, &McConfig::default()).counterexample.unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_mc_summary"))
        .args(["--model", "mesh-credit-leak"])
        .env("FOMPI_MC_REPLAY", &cx.schedule)
        .output()
        .expect("spawning mc_summary");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let line = String::from_utf8(out.stdout).unwrap();
    let clocks = cx.clocks.iter().map(|c| format!("{c:016x}")).collect::<Vec<_>>().join(".");
    assert!(line.contains("violation=deadlock"), "{line}");
    assert!(line.contains(&format!("schedule={}", cx.schedule)), "{line}");
    assert!(line.contains(&format!("clocks={clocks}")), "{line}");
}

#[test]
fn replay_rejects_malformed_schedules() {
    let m = model("rmc-mesh");
    let bad = std::panic::catch_unwind(|| replay(&m, "0.1.0"));
    assert!(bad.is_err(), "missing mc1: prefix must fail loudly");
    let oob = std::panic::catch_unwind(|| replay(&m, "mc1:0.7"));
    assert!(oob.is_err(), "out-of-range rank must fail loudly");
}

#[test]
fn preemption_budget_prunes_but_stays_sound() {
    let cfg = McConfig { max_preemptions: Some(0), ..McConfig::default() };
    let r = check(&model("rmc-mesh"), &cfg);
    assert!(r.counterexample.is_none(), "bounding must not invent violations");
    assert!(r.pruned > 0, "a zero-preemption budget must prune something");
    assert!(!r.complete, "a pruned exploration must not claim completeness");
    let exhaustive = check(&model("rmc-mesh"), &McConfig::default());
    assert!(r.schedules < exhaustive.schedules);
}

/// An intentionally racy kernel: both ranks put to the same bytes of
/// rank 0's window inside one passive epoch. The armed shadow must
/// abort the run, and the surfaced report must carry causal flow ids.
fn racy_put(ctx: &mut fompi_runtime::RankCtx) -> u64 {
    let win = fompi::Win::allocate(ctx, 8, 1).unwrap();
    win.lock_all().unwrap();
    win.put(&[ctx.rank() as u8 + 1; 8], 0, 0).unwrap();
    win.flush_all().unwrap();
    win.unlock_all().unwrap();
    win.free(ctx);
    0
}

#[test]
fn racecheck_violations_surface_with_flow_ids() {
    let m = Model { name: "racy-put", p: 2, prog: racy_put };
    let cx = check(&m, &McConfig::default())
        .counterexample
        .expect("overlapping puts must trip the armed racecheck");
    match &cx.violation {
        Found::Panic { msg, .. } => {
            assert!(msg.contains("racecheck"), "{msg}");
            assert!(msg.contains("flow"), "race report must carry flow ids: {msg}");
        }
        other => panic!("expected a racecheck panic, got {other}"),
    }
    // The violating schedule replays to the identical report.
    let rep = replay(&m, &cx.schedule).counterexample.expect("replay reproduces the race");
    assert_eq!(rep.violation, cx.violation);
}
