//! Dynamic partial-order reduction over the gate's run logs.
//!
//! Classic stateless exploration (Flanagan–Godefroid shape): depth-first
//! over a tree of scheduling decisions, where each run contributes its
//! executed schedule as a path and conflict analysis plants *backtrack
//! points* — alternative ranks worth trying — at the shallowest step
//! whose reordering could matter. Sleep sets prune runs that can only
//! revisit explored interleavings.
//!
//! Two deliberate simplifications, both on the sound side:
//!
//! - the backtrack rule is the persistent-set over-approximation: for
//!   every conflicting pair `(i, j)` with `i < j`, add `rank(j)` to the
//!   backtrack set at `i` if it was enabled there, else add *all* of
//!   step `i`'s enabled ranks. No vector clocks — a few redundant runs
//!   instead of a happens-before engine, never a missed interleaving;
//! - the conflict relation itself is the fabric's conservative
//!   [`ops_conflict`] (whole rings are single objects).
//!
//! Determinism is load-bearing (counterexample schedules ship in CI
//! gates): candidate sets are `BTreeSet`s walked in order, runs pick the
//! lowest awake rank, and nothing consults time or randomness.

use crate::gate::{RunLog, Stop};
use fompi_fabric::mc::{ops_conflict, McOp};
use std::collections::BTreeSet;

/// What one run of the program produced, as the explorer sees it.
pub struct RunOutcome {
    /// Executed schedule and stop reason.
    pub log: RunLog,
    /// Per-rank program digests (`None` for ranks that unwound).
    pub digests: Vec<Option<u64>>,
    /// Per-rank final virtual clocks, `f64::to_bits`.
    pub clocks: Vec<u64>,
    /// Were all notification rings empty after teardown?
    pub quiescent: bool,
}

/// A property violation, with the run that exhibits it.
#[derive(Debug, Clone, PartialEq)]
pub enum Found {
    /// A rank panicked (race-checker violation, assertion, protocol
    /// error unwrap).
    Panic {
        /// Rank that panicked.
        rank: u32,
        /// Panic payload.
        msg: String,
    },
    /// Global deadlock: no rank enabled, not all finished.
    Deadlock {
        /// Parked-state listing from the gate.
        detail: String,
    },
    /// A notification ring was non-empty after teardown.
    Quiescence,
    /// A completed run's per-rank digests differ from the reference
    /// schedule's — a declared-stable output is schedule-dependent.
    DigestMismatch {
        /// Reference digests (first completed schedule).
        want: Vec<u64>,
        /// This schedule's digests.
        got: Vec<u64>,
    },
}

/// Everything an exploration learned.
pub struct Exploration {
    /// Runs that completed (every rank returned).
    pub schedules: u64,
    /// Runs stopped early as redundant (sleep-set blocked) or over the
    /// step budget.
    pub aborted: u64,
    /// Backtrack candidates skipped by the preemption budget.
    pub pruned: u64,
    /// Total scheduling steps executed across all runs.
    pub steps_total: u64,
    /// Did the exploration cover every non-equivalent schedule within
    /// the bounds? `false` once anything was pruned or capped.
    pub complete: bool,
    /// First violation found: the grant sequence that exhibits it, the
    /// violation, and the run's per-rank clocks.
    pub violation: Option<(Vec<u32>, Found, Vec<u64>)>,
    /// Reference per-rank digests (first completed run).
    pub digest: Option<Vec<u64>>,
    /// Reference per-rank clocks (first completed run).
    pub clocks: Vec<u64>,
}

/// One node of the decision tree: the state reached by the schedule
/// prefix above it, and what has been tried from here.
struct Node {
    /// Ranks enabled at this state (sorted; recorded by the gate).
    enabled: Vec<u32>,
    /// Rank the current path takes here.
    chosen: u32,
    /// Sleep set before this step.
    sleep: Vec<(u32, McOp)>,
    /// Ranks worth exploring from this state.
    backtrack: BTreeSet<u32>,
    /// Choices already taken (or deliberately skipped) here, with the
    /// op each one executed when known.
    done: Vec<(u32, Option<McOp>)>,
}

/// Exploration bounds (mirrors [`crate::McConfig`]).
pub struct Bounds {
    /// Cap on total runs.
    pub max_schedules: u64,
    /// Cap on steps per run.
    pub max_steps: usize,
    /// Preemptive context-switch budget per schedule; `None` explores
    /// exhaustively.
    pub max_preemptions: Option<u32>,
}

/// Preemptive context switches along `path` if its last node chose
/// `cand`: a switch away from a rank that was still enabled.
fn preemptions(path: &[Node], cand: u32) -> u32 {
    let mut n = 0;
    for k in 1..path.len() {
        let chosen = if k == path.len() - 1 { cand } else { path[k].chosen };
        let prev = path[k - 1].chosen;
        if chosen != prev && path[k].enabled.contains(&prev) {
            n += 1;
        }
    }
    n
}

/// Explore `run` (which executes one schedule: forced prefix, sleep set
/// for the branch step, step cap) until the tree is exhausted, a bound
/// trips, or a violation appears.
pub fn explore(
    bounds: &Bounds,
    run: impl Fn(&[u32], Vec<(u32, McOp)>, usize) -> RunOutcome,
) -> Exploration {
    let mut out = Exploration {
        schedules: 0,
        aborted: 0,
        pruned: 0,
        steps_total: 0,
        complete: true,
        violation: None,
        digest: None,
        clocks: Vec::new(),
    };
    let mut nodes: Vec<Node> = Vec::new();
    let mut forced: Vec<u32> = Vec::new();
    let mut sleep_base: Vec<(u32, McOp)> = Vec::new();
    loop {
        if out.schedules + out.aborted >= bounds.max_schedules {
            out.complete = false;
            return out;
        }
        let o = run(&forced, std::mem::take(&mut sleep_base), bounds.max_steps);
        out.steps_total += o.log.steps.len() as u64;
        if let Some(Stop::Divergence { at, want }) = &o.log.stop {
            unreachable!("forced rank {want} not enabled at step {at}: model is nondeterministic");
        }
        let steps = &o.log.steps;
        let base = forced.len();
        assert!(
            steps.len() >= base,
            "run executed {} steps but {} were forced — nondeterministic model",
            steps.len(),
            base
        );
        // Fold the run into the tree: the branch node's choice becomes
        // what actually ran, everything deeper is fresh.
        if base > 0 {
            let n = &mut nodes[base - 1];
            n.chosen = steps[base - 1].rank;
            let op = steps[base - 1].op.clone();
            n.done.last_mut().expect("branch node has a pending done entry").1 = op;
        }
        nodes.truncate(base);
        for step in &steps[base..] {
            nodes.push(Node {
                enabled: step.enabled.clone(),
                chosen: step.rank,
                sleep: step.sleep.clone(),
                backtrack: BTreeSet::new(),
                done: vec![(step.rank, step.op.clone())],
            });
        }
        // Plant backtrack points for every conflicting pair.
        for j in 0..steps.len() {
            let Some(oj) = &steps[j].op else { continue };
            for i in 0..j {
                if steps[i].rank == steps[j].rank {
                    continue;
                }
                let Some(oi) = &steps[i].op else { continue };
                if ops_conflict(oi, oj) {
                    if steps[i].enabled.contains(&steps[j].rank) {
                        nodes[i].backtrack.insert(steps[j].rank);
                    } else {
                        nodes[i].backtrack.extend(steps[i].enabled.iter().copied());
                    }
                }
            }
        }
        let grants: Vec<u32> = steps.iter().map(|s| s.rank).collect();
        match o.log.stop {
            Some(Stop::Panic { rank, msg }) => {
                out.violation = Some((grants, Found::Panic { rank, msg }, o.clocks));
                return out;
            }
            Some(Stop::Deadlock { detail }) => {
                out.violation = Some((grants, Found::Deadlock { detail }, o.clocks));
                return out;
            }
            Some(Stop::Redundant) => out.aborted += 1,
            Some(Stop::StepBudget) => {
                out.aborted += 1;
                out.complete = false;
            }
            // Divergence was rejected above, before the tree fold.
            Some(Stop::Divergence { .. }) => unreachable!(),
            None => {
                out.schedules += 1;
                if !o.quiescent {
                    out.violation = Some((grants, Found::Quiescence, o.clocks));
                    return out;
                }
                let digests: Vec<u64> = o
                    .digests
                    .iter()
                    .map(|d| d.expect("completed run has a digest from every rank"))
                    .collect();
                match &out.digest {
                    None => {
                        out.digest = Some(digests);
                        out.clocks = o.clocks;
                    }
                    Some(want) if *want != digests => {
                        out.violation = Some((
                            grants,
                            Found::DigestMismatch { want: want.clone(), got: digests },
                            o.clocks,
                        ));
                        return out;
                    }
                    Some(_) => {}
                }
            }
        }
        // Deepest-first backtrack walk for the next schedule to force.
        let mut next: Option<(usize, u32)> = None;
        'walk: for idx in (0..nodes.len()).rev() {
            loop {
                let n = &nodes[idx];
                let cand =
                    n.backtrack.iter().copied().find(|c| !n.done.iter().any(|(r, _)| r == c));
                let Some(c) = cand else { break };
                if n.sleep.iter().any(|(r, _)| *r == c) {
                    // Sleeping here: any schedule through it is covered
                    // by an exploration that already branched earlier.
                    nodes[idx].done.push((c, None));
                    continue;
                }
                if let Some(budget) = bounds.max_preemptions {
                    if preemptions(&nodes[..=idx], c) > budget {
                        out.pruned += 1;
                        out.complete = false;
                        nodes[idx].done.push((c, None));
                        continue;
                    }
                }
                next = Some((idx, c));
                break 'walk;
            }
        }
        let Some((idx, c)) = next else { return out };
        forced = nodes[..idx].iter().map(|n| n.chosen).collect();
        forced.push(c);
        // The sleep set handed to the branch step: this node's own,
        // plus every sibling choice already explored from here.
        sleep_base = nodes[idx].sleep.clone();
        for (r, op) in &nodes[idx].done {
            if let Some(o) = op {
                if *r != c {
                    sleep_base.push((*r, o.clone()));
                }
            }
        }
        nodes[idx].done.push((c, None));
        nodes.truncate(idx + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(chosen: u32, enabled: &[u32]) -> Node {
        Node {
            enabled: enabled.to_vec(),
            chosen,
            sleep: Vec::new(),
            backtrack: BTreeSet::new(),
            done: Vec::new(),
        }
    }

    #[test]
    fn preemption_count_ignores_forced_switches() {
        // 0 runs, then 1 runs while 0 is *not* enabled (blocked): no
        // preemption. Then 0 again while 1 still enabled: preemptive.
        let path = [node(0, &[0, 1]), node(1, &[1]), node(0, &[0, 1])];
        assert_eq!(preemptions(&path, 0), 1);
    }

    #[test]
    fn preemption_count_candidate_replaces_last_chosen() {
        let path = [node(0, &[0, 1]), node(0, &[0, 1])];
        // Continuing with 0 costs nothing; switching to 1 while 0 is
        // enabled costs one.
        assert_eq!(preemptions(&path, 0), 0);
        assert_eq!(preemptions(&path, 1), 1);
    }
}
