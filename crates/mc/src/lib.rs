//! fompi-mc: exhaustive interleaving model checker for the one-sided
//! protocols, with replayable counterexamples.
//!
//! The checker runs small-rank model programs ([`programs`]) under a
//! cooperative scheduler ([`gate::SchedGate`]) that serializes the job
//! at every announced operation — remote puts/gets/AMOs, notification
//! ring pushes/pops, wait-loop re-polls, runtime collectives (the hook
//! surface is [`fompi_fabric::mc`]). A dynamic partial-order reduction
//! ([`dpor`]) enumerates every non-equivalent interleaving, where
//! equivalence is keyed on the same (window, target, byte-range,
//! access-kind) conflict relation the dynamic race checker classifies.
//!
//! Every explored schedule is checked for:
//!
//! - **racecheck violations** — runs execute with the shadow armed in
//!   panic mode, so an MPI-illegal overlap aborts the run with the full
//!   race report (including both accesses' causal flow ids);
//! - **global deadlock** — no rank enabled, not all finished;
//! - **quiescence at teardown** — every notification ring empty after
//!   the program returns;
//! - **schedule-independence of declared-stable outputs** — each rank's
//!   digest must be byte-equal across all explored schedules.
//!
//! A violation serializes to a compact schedule string (`mc1:` plus the
//! dot-separated grant sequence) that [`replay`] — or the
//! `FOMPI_MC_REPLAY` environment knob, which reroutes [`check`] — turns
//! back into the exact failing execution, virtual clocks and all.
//!
//! Explorations are *stateless*: every run builds a fresh `Universe`
//! and fabric, with a fixed seed, faults disabled and single-node
//! topology, so a schedule fully determines an execution.

pub mod dpor;
pub mod gate;
pub mod programs;

pub use dpor::Found;
pub use gate::{McAbort, SchedGate, Stop};
pub use programs::{all_models, find_model, mutants, Model};

use dpor::{Bounds, RunOutcome};
use fompi_fabric::mc::{McGate, McOp};
use fompi_fabric::{FaultPlan, RacecheckMode};
use fompi_runtime::Universe;
use std::fmt;
use std::sync::Arc;

/// Environment knob: set to a schedule string to make [`check`] replay
/// that one schedule instead of exploring. Malformed values fail loudly.
pub const REPLAY_ENV: &str = "FOMPI_MC_REPLAY";

/// Fixed root seed for every model-checking universe: runs must be
/// schedule-deterministic, so nothing else may vary.
const MC_SEED: u64 = 0xF0;

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Cap on total runs (clean + aborted) per exploration.
    pub max_schedules: u64,
    /// Cap on scheduling steps per run.
    pub max_steps: usize,
    /// Preemptive context-switch budget per schedule (a switch away
    /// from a still-enabled rank). `None` — the default — explores
    /// exhaustively.
    pub max_preemptions: Option<u32>,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig { max_schedules: 200_000, max_steps: 5_000, max_preemptions: None }
    }
}

/// A violating schedule, replayable via [`replay`] / `FOMPI_MC_REPLAY`.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// `mc1:`-prefixed dot-separated grant sequence.
    pub schedule: String,
    /// What went wrong on that schedule.
    pub violation: Found,
    /// Per-rank final virtual clocks of the violating run
    /// (`f64::to_bits` — replay must reproduce them exactly).
    pub clocks: Vec<u64>,
}

impl fmt::Display for Found {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Found::Panic { rank, msg } => write!(f, "panic[rank {rank}]: {msg}"),
            Found::Deadlock { detail } => write!(f, "deadlock: {detail}"),
            Found::Quiescence => {
                write!(f, "non-quiescent teardown: notification ring not drained")
            }
            Found::DigestMismatch { want, got } => {
                write!(f, "digest mismatch: want {want:x?} got {got:x?}")
            }
        }
    }
}

/// What one [`check`] produced.
#[derive(Debug)]
pub struct McResult {
    /// Completed (clean) runs.
    pub schedules: u64,
    /// Runs stopped early as redundant or over the step budget.
    pub aborted: u64,
    /// Backtrack candidates skipped by the preemption budget.
    pub pruned: u64,
    /// Scheduling steps across all runs.
    pub steps_total: u64,
    /// Did the exploration cover everything within bounds?
    pub complete: bool,
    /// First violation found, if any.
    pub counterexample: Option<Counterexample>,
    /// Reference per-rank digests (first clean run).
    pub digest: Option<Vec<u64>>,
    /// Reference per-rank clocks (first clean run; the replayed run's
    /// clocks when replaying).
    pub clocks: Vec<u64>,
}

/// Serialize a grant sequence: `mc1:0.1.0.1`.
pub fn encode_schedule(grants: &[u32]) -> String {
    let body: Vec<String> = grants.iter().map(u32::to_string).collect();
    format!("mc1:{}", body.join("."))
}

/// Parse [`encode_schedule`]'s format.
pub fn parse_schedule(s: &str) -> Result<Vec<u32>, String> {
    let body = s
        .strip_prefix("mc1:")
        .ok_or_else(|| format!("schedule {s:?} does not start with \"mc1:\""))?;
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split('.')
        .map(|t| t.parse::<u32>().map_err(|_| format!("schedule token {t:?} is not a rank")))
        .collect()
}

fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute one schedule of `model`: forced grant prefix, sleep set for
/// the branch step, step cap. Builds a fresh gate and universe — runs
/// share nothing.
fn run_once(
    model: &Model,
    forced: &[u32],
    sleep_base: Vec<(u32, McOp)>,
    max_steps: usize,
) -> RunOutcome {
    let gate = Arc::new(SchedGate::new(model.p, forced.to_vec(), sleep_base, max_steps));
    let g = gate.clone();
    let prog = model.prog;
    let (outs, fabric) = Universe::new(model.p)
        .node_size(1)
        .seed(MC_SEED)
        .faults(FaultPlan::disabled())
        .racecheck(RacecheckMode::Panic)
        .mc_gate(gate.clone() as Arc<dyn McGate>)
        .launch(move |ctx| {
            let r = ctx.rank();
            // The mc-begin collective parks every rank before the first
            // scheduling decision, so the enabled set at step 0 does not
            // depend on thread spawn order.
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                g.collective(r, "mc-begin");
                prog(ctx)
            }));
            let clock = ctx.ep().clock().now().to_bits();
            match res {
                Ok(d) => {
                    g.finish(r);
                    (Some(d), clock)
                }
                Err(payload) => {
                    if payload.downcast_ref::<McAbort>().is_none() {
                        g.report_panic(r, panic_msg(payload.as_ref()));
                    }
                    (None, clock)
                }
            }
        });
    let quiescent = (0..model.p as u32).all(|q| fabric.notify().queue(q).is_empty());
    RunOutcome {
        log: gate.take_log(),
        digests: outs.iter().map(|(d, _)| *d).collect(),
        clocks: outs.iter().map(|(_, c)| *c).collect(),
        quiescent,
    }
}

/// Model-check `model` under `cfg`. Honours `FOMPI_MC_REPLAY`: when
/// set, replays that single schedule instead of exploring.
pub fn check(model: &Model, cfg: &McConfig) -> McResult {
    if let Ok(sched) = std::env::var(REPLAY_ENV) {
        return replay(model, &sched);
    }
    let bounds = Bounds {
        max_schedules: cfg.max_schedules,
        max_steps: cfg.max_steps,
        max_preemptions: cfg.max_preemptions,
    };
    let ex = dpor::explore(&bounds, |forced, sleep, max_steps| {
        run_once(model, forced, sleep, max_steps)
    });
    McResult {
        schedules: ex.schedules,
        aborted: ex.aborted,
        pruned: ex.pruned,
        steps_total: ex.steps_total,
        complete: ex.complete,
        counterexample: ex.violation.map(|(grants, found, clocks)| Counterexample {
            schedule: encode_schedule(&grants),
            violation: found,
            clocks,
        }),
        digest: ex.digest,
        clocks: ex.clocks,
    }
}

/// Replay one schedule of `model`. Panics loudly on a malformed or
/// divergent (stale) schedule — a replay that cannot follow its script
/// must never look like a pass.
pub fn replay(model: &Model, schedule: &str) -> McResult {
    let grants = match parse_schedule(schedule) {
        Ok(g) => g,
        Err(e) => panic!("{REPLAY_ENV}: {e}"),
    };
    for &g in &grants {
        assert!(
            (g as usize) < model.p,
            "{REPLAY_ENV}: rank {g} out of range for {} (p = {})",
            model.name,
            model.p
        );
    }
    let o = run_once(model, &grants, Vec::new(), McConfig::default().max_steps);
    let ran: Vec<u32> = o.log.steps.iter().map(|s| s.rank).collect();
    let mut res = McResult {
        schedules: 0,
        aborted: 0,
        pruned: 0,
        steps_total: o.log.steps.len() as u64,
        complete: false,
        counterexample: None,
        digest: None,
        clocks: o.clocks.clone(),
    };
    let cx = |found: Found| Counterexample {
        schedule: encode_schedule(&ran),
        violation: found,
        clocks: o.clocks.clone(),
    };
    match o.log.stop {
        Some(Stop::Panic { rank, msg }) => {
            res.counterexample = Some(cx(Found::Panic { rank, msg }))
        }
        Some(Stop::Deadlock { detail }) => {
            res.counterexample = Some(cx(Found::Deadlock { detail }))
        }
        Some(Stop::Divergence { at, want }) => panic!(
            "{REPLAY_ENV}: schedule diverged at step {at} (wanted rank {want}) — \
             stale schedule for this build or model?"
        ),
        Some(Stop::Redundant) => unreachable!("replay runs with an empty sleep set"),
        Some(Stop::StepBudget) => panic!("{REPLAY_ENV}: replay exceeded the step budget"),
        None => {
            res.schedules = 1;
            res.complete = true;
            if o.quiescent {
                res.digest =
                    Some(o.digests.iter().map(|d| d.expect("clean run digests")).collect());
            } else {
                res.counterexample = Some(cx(Found::Quiescence));
            }
        }
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_codec_round_trips() {
        let grants = vec![0, 1, 1, 2, 0];
        let s = encode_schedule(&grants);
        assert_eq!(s, "mc1:0.1.1.2.0");
        assert_eq!(parse_schedule(&s).unwrap(), grants);
        assert_eq!(parse_schedule("mc1:").unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn schedule_codec_rejects_garbage() {
        assert!(parse_schedule("0.1.2").is_err());
        assert!(parse_schedule("mc1:0.x.2").is_err());
        assert!(parse_schedule("mc2:0").is_err());
    }

    #[test]
    fn default_bounds_are_exhaustive() {
        let cfg = McConfig::default();
        assert!(cfg.max_preemptions.is_none());
        assert!(cfg.max_schedules >= 100_000);
    }
}
