//! Model-checking summary: explores every model program and mutant and
//! writes `results/mc_summary.csv` (byte-deterministic — CI diffs it
//! against the committed copy). With `--model <name>` it checks just
//! that model and prints one result line, which combined with
//! `FOMPI_MC_REPLAY` gives an out-of-process replay entry point.

use fompi_mc::{all_models, check, find_model, mutants, McConfig, McResult, Model};

/// Collapse a violation message onto one CSV-safe line.
fn csv_safe(s: &str) -> String {
    s.replace('\n', " / ").replace(',', ";")
}

fn hex_clocks(clocks: &[u64]) -> String {
    clocks.iter().map(|c| format!("{c:016x}")).collect::<Vec<_>>().join(".")
}

fn row(m: &Model, r: &McResult) -> String {
    let (violation, schedule) = match &r.counterexample {
        Some(cx) => (csv_safe(&cx.violation.to_string()), cx.schedule.clone()),
        None => ("none".to_string(), String::new()),
    };
    format!(
        "{},{},{},{},{},{},{},{}",
        m.name, m.p, r.schedules, r.aborted, r.steps_total, r.complete, violation, schedule
    )
}

fn write_summary() {
    let cfg = McConfig::default();
    let mut csv = String::from("model,p,schedules,aborted,steps,complete,violation,schedule\n");
    for m in all_models().iter().chain(mutants().iter()) {
        let r = check(m, &cfg);
        csv.push_str(&row(m, &r));
        csv.push('\n');
        println!("{} -> {}", m.name, row(m, &r).split(',').skip(2).collect::<Vec<_>>().join(","));
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/mc_summary.csv");
    std::fs::write(path, &csv).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

fn run_one(name: &str) {
    let model = find_model(name).unwrap_or_else(|| panic!("unknown model {name:?}"));
    let r = check(&model, &McConfig::default());
    match &r.counterexample {
        Some(cx) => println!(
            "model={name} violation={} schedule={} clocks={}",
            csv_safe(&cx.violation.to_string()),
            cx.schedule,
            hex_clocks(&cx.clocks)
        ),
        None => println!(
            "model={name} violation=none schedules={} aborted={} steps={} complete={} clocks={}",
            r.schedules,
            r.aborted,
            r.steps_total,
            r.complete,
            hex_clocks(&r.clocks)
        ),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => write_summary(),
        [flag, name] if flag == "--model" => run_one(name),
        _ => {
            eprintln!("usage: mc_summary [--model <name>]");
            std::process::exit(2);
        }
    }
}
