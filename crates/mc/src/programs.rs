//! The model programs: small-rank protocol kernels the checker
//! exhaustively interleaves, plus deliberately broken twins (mutants)
//! proving the checker actually catches the bug classes it claims to.
//!
//! Sizing rule: every program is the *smallest* instance that still
//! exercises the protocol's ordering decisions — one or two slots, one
//! or two messages per edge — because exploration cost is exponential in
//! announced conflicting operations. A program's return value is its
//! **declared-stable digest**: the checker requires it to be byte-equal
//! across every explored schedule, so digests must fold
//! arrival-order-*insensitive* data (per-record hashes summed) wherever
//! the protocol leaves arrival order unspecified, and may fold ordered
//! data only where the protocol guarantees FIFO.

use fompi::Win;
use fompi_msg::channel::{channel, ChannelEnd};
use fompi_rmc::{fanin, fanout, mesh, rpc, FaninEnd, FanoutEnd, LaggingPolicy, RmcConfig, RpcEnd};
use fompi_runtime::RankCtx;
use fompi_txn::{RetryPolicy, VersionedCell};

/// One checkable program: a name for reports, a rank count, and the
/// per-rank body returning that rank's declared-stable digest.
#[derive(Clone, Copy)]
pub struct Model {
    /// Name used in schedules, CSV rows and test output.
    pub name: &'static str,
    /// Ranks the program runs on.
    pub p: usize,
    /// Per-rank body; the return value must be schedule-independent.
    pub prog: fn(&mut RankCtx) -> u64,
}

/// splitmix64 finalizer — the unit hash order-insensitive digests sum.
fn h1(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-*sensitive* fold for FIFO edges.
fn mix(h: u64, v: u64) -> u64 {
    h1(h ^ h1(v))
}

fn le(buf: &[u8]) -> u64 {
    u64::from_le_bytes(buf[..8].try_into().expect("8-byte payload"))
}

/// The six well-formed protocol kernels.
pub fn all_models() -> Vec<Model> {
    vec![
        Model { name: "msg-channel", p: 2, prog: msg_channel },
        Model { name: "rmc-fanin", p: 3, prog: rmc_fanin },
        Model { name: "rmc-fanout", p: 3, prog: rmc_fanout },
        Model { name: "rmc-mesh", p: 2, prog: rmc_mesh },
        Model { name: "rpc-timeout", p: 2, prog: rpc_timeout },
        Model { name: "txn-commit", p: 2, prog: txn_commit },
    ]
}

/// The broken twins. Each must produce a replayable counterexample.
pub fn mutants() -> Vec<Model> {
    vec![
        Model { name: "mesh-credit-leak", p: 2, prog: mesh_credit_leak },
        Model { name: "txn-lost-publish", p: 2, prog: txn_lost_publish },
    ]
}

/// Look a model up by name across both sets.
pub fn find_model(name: &str) -> Option<Model> {
    all_models().into_iter().chain(mutants()).find(|m| m.name == name)
}

/// SPSC channel, one slot, two messages: the second send must wait for
/// the consumer's credit, so flow control is on the explored path. The
/// edge is FIFO — the receiver folds in order.
fn msg_channel(ctx: &mut RankCtx) -> u64 {
    match channel(ctx, 0, 1, 1, 8).unwrap().unwrap() {
        ChannelEnd::Sender(mut s) => {
            s.send(&11u64.to_le_bytes()).unwrap();
            s.send(&22u64.to_le_bytes()).unwrap();
            s.close(ctx).unwrap();
            0
        }
        ChannelEnd::Receiver(mut r) => {
            let mut h = 0u64;
            let mut buf = [0u8; 8];
            for _ in 0..2 {
                r.recv(&mut buf).unwrap();
                h = mix(h, le(&buf));
            }
            r.close(ctx).unwrap();
            h
        }
    }
}

/// Two producers fan into one consumer. Arrival *order* across producers
/// is schedule-dependent by design, so the consumer's digest sums
/// per-record hashes — the set of deliveries is the stable output.
fn rmc_fanin(ctx: &mut RankCtx) -> u64 {
    match fanin(ctx, 2, &[0, 1], 1, 8).unwrap().unwrap() {
        FaninEnd::Producer(mut p) => {
            let v = (ctx.rank() as u64 + 1) * 7;
            p.send(&v.to_le_bytes()).unwrap();
            p.close(ctx).unwrap();
            0
        }
        FaninEnd::Consumer(mut c) => {
            let mut h = 0u64;
            let mut buf = [0u8; 8];
            for _ in 0..2 {
                let (src, _) = c.recv(&mut buf).unwrap();
                h = h.wrapping_add(h1(((src as u64) << 32) ^ le(&buf)));
            }
            c.close(ctx).unwrap();
            h
        }
    }
}

/// One publisher, two subscribers, one slot: the second publish blocks
/// on both subscribers' credits. Each subscriber's edge is FIFO.
fn rmc_fanout(ctx: &mut RankCtx) -> u64 {
    match fanout(ctx, 0, &[1, 2], 1, 8, LaggingPolicy::Block).unwrap().unwrap() {
        FanoutEnd::Publisher(mut p) => {
            p.publish(&31u64.to_le_bytes()).unwrap();
            p.publish(&32u64.to_le_bytes()).unwrap();
            let dropped = p.dropped_total();
            p.close(ctx).unwrap();
            dropped
        }
        FanoutEnd::Subscriber(mut s) => {
            let mut h = 0u64;
            let mut buf = [0u8; 8];
            for _ in 0..2 {
                s.recv(&mut buf).unwrap();
                h = mix(h, le(&buf));
            }
            s.close(ctx).unwrap();
            h
        }
    }
}

/// Two ranks exchange two rounds over a one-slot mesh: round 1's sends
/// need round 0's *lazily flushed* credits, so the batched credit-return
/// path is what the checker interleaves.
fn rmc_mesh(ctx: &mut RankCtx) -> u64 {
    let mut m = mesh(ctx, &RmcConfig { slots: 1, slot_bytes: 8, ..RmcConfig::default() }).unwrap();
    let me = ctx.rank();
    let peer = 1 - me;
    let mut h = 0u64;
    let mut buf = [0u8; 8];
    for round in 0..2u64 {
        m.send(peer, &(((me as u64) << 8) | round).to_le_bytes()).unwrap();
        let (src, _) = m.recv(&mut buf).unwrap();
        h = h.wrapping_add(h1(((src as u64) << 32) ^ le(&buf)));
        m.flush_credits().unwrap();
    }
    m.close(ctx).unwrap();
    h
}

/// MUTANT of [`rmc_mesh`]: the round-0 credit return is dropped. Both
/// ranks' round-1 sends then wait forever for a credit nobody will
/// flush — the checker must report a global deadlock.
fn mesh_credit_leak(ctx: &mut RankCtx) -> u64 {
    let mut m = mesh(ctx, &RmcConfig { slots: 1, slot_bytes: 8, ..RmcConfig::default() }).unwrap();
    let me = ctx.rank();
    let peer = 1 - me;
    let mut h = 0u64;
    let mut buf = [0u8; 8];
    for round in 0..2u64 {
        m.send(peer, &(((me as u64) << 8) | round).to_le_bytes()).unwrap();
        let (src, _) = m.recv(&mut buf).unwrap();
        h = h.wrapping_add(h1(((src as u64) << 32) ^ le(&buf)));
        if round > 0 {
            // BUG under test: round 0's consumed slot is never credited
            // back to the producer.
            m.flush_credits().unwrap();
        }
    }
    m.close(ctx).unwrap();
    h
}

/// Request/response with a virtual-time deadline: call 1 completes, the
/// server then charges 1 ms before answering call 2, blowing its 100 µs
/// deadline in *every* schedule — the timeout result is deterministic
/// and the late reply still settles the slot credit.
fn rpc_timeout(ctx: &mut RankCtx) -> u64 {
    let cfg = RmcConfig {
        slots: 1,
        slot_bytes: 8,
        rpc_budget: 1,
        rpc_timeout_ns: 100_000,
        ..RmcConfig::default()
    };
    match rpc(ctx, 0, &[1], &cfg).unwrap().unwrap() {
        RpcEnd::Server(mut s) => {
            let q1 = s.recv().unwrap();
            s.reply(&q1, &99u64.to_le_bytes()).unwrap();
            let q2 = s.recv().unwrap();
            ctx.ep().charge(1_000_000.0);
            s.reply(&q2, &77u64.to_le_bytes()).unwrap();
            s.close(ctx).unwrap();
            0
        }
        RpcEnd::Client(mut c) => {
            let mut buf = [0u8; 8];
            c.call(&1u64.to_le_bytes(), &mut buf).unwrap();
            let mut h = mix(0, le(&buf));
            let late = c.call(&2u64.to_le_bytes(), &mut buf);
            h = mix(h, if late.is_err() { 0xDEAD } else { 0xBEEF });
            c.close(ctx).unwrap();
            h
        }
    }
}

const CELL: usize = 16; // version word + one u64 payload

/// Both ranks run the full optimistic commit protocol (lock-CAS,
/// validate, publish) against *disjoint* cells on rank 0, then everyone
/// reads both payloads back. Disjoint cells keep the exploration small
/// while still interleaving every phase of two commits; the shared-cell
/// contention path is covered by [`txn_lost_publish`]'s correct prefix
/// and by `fompi-txn`'s own stress tests.
fn txn_commit(ctx: &mut RankCtx) -> u64 {
    let win = Win::allocate(ctx, 2 * CELL, 1).unwrap();
    VersionedCell::init_local(&win, 0, &0u64.to_le_bytes());
    VersionedCell::init_local(&win, CELL, &0u64.to_le_bytes());
    ctx.barrier();
    win.lock_all().unwrap();
    let me = ctx.rank();
    let cell = VersionedCell::new(0, me as usize * CELL, 8);
    let policy = RetryPolicy::for_win(&win);
    let mut rng = fompi_fabric::rng::Rng::seed_from_u64(7 + me as u64);
    fompi_txn::run(&win, &policy, &mut rng, |txn| {
        let mut b = [0u8; 8];
        txn.read(cell, &mut b)?;
        let v = le(&b).wrapping_add(me as u64 + 1);
        txn.write(cell, &v.to_le_bytes())?;
        Ok(v)
    })
    .unwrap();
    ctx.barrier();
    let mut h = 0u64;
    for c in [VersionedCell::new(0, 0, 8), VersionedCell::new(0, CELL, 8)] {
        let mut b = [0u8; 8];
        c.read(&win, &mut b).unwrap();
        h = mix(h, le(&b));
    }
    win.unlock_all().unwrap();
    win.free(ctx);
    h
}

/// MUTANT: rank 1 hand-rolls the commit's lock phase on a shared cell
/// and *drops the publish CAS*, leaving the seqlock version odd forever.
/// Rank 0's bounded versioned-read retry then exhausts and panics — the
/// counterexample every schedule must reach.
fn txn_lost_publish(ctx: &mut RankCtx) -> u64 {
    let win = Win::allocate(ctx, CELL, 1).unwrap();
    VersionedCell::init_local(&win, 0, &0u64.to_le_bytes());
    ctx.barrier();
    win.lock_all().unwrap();
    if ctx.rank() == 1 {
        // Lock phase of the commit protocol: version 0 -> 1 (odd =
        // locked)...
        let prev = win.compare_and_swap(1, 0, 0, 0).unwrap();
        assert_eq!(prev, 0, "lock CAS lost with no contention");
        // ...BUG under test: the publish CAS (1 -> 2) never happens.
    }
    ctx.barrier();
    if ctx.rank() == 0 {
        let cell = VersionedCell::new(0, 0, 8);
        let mut b = [0u8; 8];
        let published = (0..3).any(|_| cell.read(&win, &mut b).is_ok());
        assert!(published, "cell never published: version stuck odd (lost publish CAS)");
    }
    win.unlock_all().unwrap();
    win.free(ctx);
    0
}
