//! The cooperative scheduler every exploration run executes under.
//!
//! [`SchedGate`] implements [`fompi_fabric::McGate`]: each rank thread,
//! on reaching a scheduling point, parks inside the gate and the gate
//! grants the global execution token to exactly one parked rank at a
//! time. A rank holds the token from its grant until it parks at its
//! *next* scheduling point (or finishes), so between two grants exactly
//! one rank makes progress — the run is a serialization, and the grant
//! sequence *is* the schedule.
//!
//! The gate is single-use: one `SchedGate` drives one run and is then
//! interrogated for its [`RunLog`]. The DPOR explorer (crate-level
//! [`crate::dpor`]) builds a fresh gate — and a fresh `Universe`, this
//! is *stateless* model checking — for every run.
//!
//! # Abort protocol
//!
//! When the gate decides a run is over early (violation found, sleep-set
//! redundancy, step budget), it stores a [`Stop`] and wakes every parked
//! rank. Woken ranks unwind out of fabric code by panicking with the
//! [`McAbort`] sentinel payload; the checker's per-rank wrapper catches
//! it. Two guards keep the unwind clean:
//!
//! - a process-wide panic hook (installed once) swallows the default
//!   "thread panicked" report for `McAbort` payloads, so aborted runs
//!   don't spam stderr;
//! - gate methods called while the thread is *already* panicking (fabric
//!   calls made during unwind) return immediately instead of panicking
//!   again — a second panic during unwind would abort the process.

use fompi_fabric::mc::{ops_conflict, McGate, McObj, McOp};
use fompi_fabric::shim::{Condvar, Mutex};
use std::sync::Once;

/// Panic payload the gate unwinds aborted ranks with. Carries no data —
/// its type is the signal.
pub struct McAbort;

static HOOK: Once = Once::new();

/// Install the `McAbort`-filtering panic hook (idempotent). Every other
/// payload is forwarded to whatever hook was installed before — real
/// panics, including race-checker violations, still print.
pub fn install_abort_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<McAbort>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Why a run stopped before (or at) completion.
#[derive(Debug, Clone, PartialEq)]
pub enum Stop {
    /// A rank panicked for real: race-checker violation, assertion,
    /// `unwrap` on a protocol error. The message is the panic payload.
    Panic {
        /// Rank whose thread panicked.
        rank: u32,
        /// Stringified panic payload.
        msg: String,
    },
    /// No rank is enabled and at least one has not finished.
    Deadlock {
        /// Human-readable parked-state listing, one entry per live rank.
        detail: String,
    },
    /// Every enabled rank is in the sleep set — this run only revisits
    /// already-explored interleavings.
    Redundant,
    /// The schedule exceeded the step budget ([`crate::McConfig::max_steps`]).
    StepBudget,
    /// A forced (replayed) rank was not enabled at its turn — the
    /// schedule string does not match this build/model.
    Divergence {
        /// Step index at which the forced rank was not enabled.
        at: usize,
        /// The rank the schedule demanded.
        want: u32,
    },
}

/// One grant in the schedule, with everything the DPOR explorer needs to
/// place backtrack points.
#[derive(Debug, Clone)]
pub struct Step {
    /// Rank granted the token.
    pub rank: u32,
    /// The operation the grant released: `Some` for announced ops and
    /// poll wakes, `None` for collective releases (which commute with
    /// everything and never branch).
    pub op: Option<McOp>,
    /// Ranks enabled when this grant was chosen, sorted ascending.
    pub enabled: Vec<u32>,
    /// The active sleep set *before* this step executed.
    pub sleep: Vec<(u32, McOp)>,
}

/// What one run produced: the executed schedule and how it ended
/// (`None` = every rank ran to completion).
#[derive(Debug)]
pub struct RunLog {
    /// The executed grant sequence.
    pub steps: Vec<Step>,
    /// Early-stop reason, if any.
    pub stop: Option<Stop>,
}

/// Where a parked rank is waiting.
enum Pending {
    /// Holds the token (or has not reached its first scheduling point).
    Running,
    /// Announced an operation; enabled unconditionally.
    Want(McOp),
    /// Waiting for a predicate; enabled iff the predicate holds.
    Poll { obj: McObj, label: &'static str, pred: Box<dyn Fn() -> bool + Send + Sync> },
    /// Arrived at collective number `epoch` (its own arrival count at
    /// entry); enabled once every rank's arrival count exceeds `epoch`.
    Coll { epoch: u64, label: &'static str },
    /// Returned from the program (or unwound).
    Finished,
}

impl Pending {
    fn describe(&self) -> String {
        match self {
            Pending::Running => "running".into(),
            Pending::Want(op) => format!("op {op}"),
            Pending::Poll { obj, label, .. } => match obj {
                McObj::Ring(r) => format!("poll {label}@ring{r}"),
                McObj::Seg { owner, id } => format!("poll {label}@seg{owner}.{id}"),
            },
            Pending::Coll { label, .. } => format!("collective {label}"),
            Pending::Finished => "finished".into(),
        }
    }
}

struct State {
    ranks: Vec<Pending>,
    /// Per-rank collective arrival counters (never reset — back-to-back
    /// collectives are told apart by the count, not the label).
    arrived: Vec<u64>,
    /// Ranks currently off executing (holding the token, in their
    /// pre-gate preamble, or unwinding). The scheduler only picks a next
    /// step when this reaches zero.
    executing: usize,
    /// Replay prefix: grant exactly these ranks first.
    forced: Vec<u32>,
    fpos: usize,
    /// Sleep set to activate when the last forced step (the branch step)
    /// executes.
    sleep_base: Vec<(u32, McOp)>,
    /// Active sleep set (empty until the branch step).
    sleep: Vec<(u32, McOp)>,
    steps: Vec<Step>,
    max_steps: usize,
    /// Last granted rank — preferred next (run-to-completion order keeps
    /// schedules short and context switches meaningful).
    prev: Option<u32>,
    stop: Option<Stop>,
}

/// The scheduling gate. See the module docs for the protocol.
pub struct SchedGate {
    state: Mutex<State>,
    cv: Condvar,
}

impl SchedGate {
    /// Gate for `p` ranks, granting `forced` first, starting from
    /// `sleep_base` at the branch step, aborting past `max_steps`.
    pub fn new(p: usize, forced: Vec<u32>, sleep_base: Vec<(u32, McOp)>, max_steps: usize) -> Self {
        install_abort_hook();
        SchedGate {
            state: Mutex::new(State {
                ranks: (0..p).map(|_| Pending::Running).collect(),
                arrived: vec![0; p],
                executing: p,
                forced,
                fpos: 0,
                sleep_base,
                sleep: Vec::new(),
                steps: Vec::new(),
                max_steps,
                prev: None,
                stop: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Is `rank` enabled in `st`?
    fn enabled(st: &State, rank: usize) -> bool {
        match &st.ranks[rank] {
            Pending::Want(_) => true,
            Pending::Poll { pred, .. } => pred(),
            Pending::Coll { epoch, .. } => st.arrived.iter().all(|&a| a > *epoch),
            Pending::Running | Pending::Finished => false,
        }
    }

    /// Pick and grant the next step. Runs under the state lock whenever
    /// the last token holder has parked (`executing == 0`).
    fn schedule(&self, st: &mut State) {
        if st.stop.is_some() {
            self.cv.notify_all();
            return;
        }
        let p = st.ranks.len();
        let enabled: Vec<u32> =
            (0..p).filter(|&r| Self::enabled(st, r)).map(|r| r as u32).collect();
        if enabled.is_empty() {
            if st.ranks.iter().any(|r| !matches!(r, Pending::Finished)) {
                let detail = st
                    .ranks
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !matches!(r, Pending::Finished))
                    .map(|(i, r)| format!("rank {i}: {}", r.describe()))
                    .collect::<Vec<_>>()
                    .join("; ");
                st.stop = Some(Stop::Deadlock { detail });
            }
            // All finished: the run is complete; nothing to grant.
            self.cv.notify_all();
            return;
        }
        if st.steps.len() >= st.max_steps {
            st.stop = Some(Stop::StepBudget);
            self.cv.notify_all();
            return;
        }
        let chosen = if st.fpos < st.forced.len() {
            let want = st.forced[st.fpos];
            if !enabled.contains(&want) {
                st.stop = Some(Stop::Divergence { at: st.fpos, want });
                self.cv.notify_all();
                return;
            }
            want
        } else {
            // Free phase: skip sleeping ranks (their next transition
            // only revisits explored ground); prefer the previous rank.
            let awake: Vec<u32> = enabled
                .iter()
                .copied()
                .filter(|&r| !st.sleep.iter().any(|(sr, _)| *sr == r))
                .collect();
            if awake.is_empty() {
                st.stop = Some(Stop::Redundant);
                self.cv.notify_all();
                return;
            }
            match st.prev {
                Some(pr) if awake.contains(&pr) => pr,
                _ => awake[0],
            }
        };
        let op = match &st.ranks[chosen as usize] {
            Pending::Want(op) => Some(op.clone()),
            // A poll wake observes the object: model it as a fetching
            // read so reordering against writers stays visible to DPOR.
            Pending::Poll { obj, label, .. } => Some(McOp {
                obj: *obj,
                lo: 0,
                hi: 0,
                kind: fompi_fabric::AccessKind::Get,
                fetch: true,
                label,
            }),
            Pending::Coll { .. } => None,
            Pending::Running | Pending::Finished => unreachable!("granting a non-parked rank"),
        };
        st.steps.push(Step {
            rank: chosen,
            op: op.clone(),
            enabled: enabled.clone(),
            sleep: st.sleep.clone(),
        });
        let at_branch = st.fpos + 1 == st.forced.len();
        if st.fpos < st.forced.len() {
            st.fpos += 1;
        }
        if at_branch {
            // The branch step: activate the explorer's sleep set, minus
            // whatever this very step wakes.
            st.sleep = std::mem::take(&mut st.sleep_base);
        }
        if let Some(o) = &op {
            st.sleep.retain(|(sr, so)| *sr != chosen && !ops_conflict(so, o));
        } else {
            st.sleep.retain(|(sr, _)| *sr != chosen);
        }
        st.prev = Some(chosen);
        st.ranks[chosen as usize] = Pending::Running;
        st.executing += 1;
        self.cv.notify_all();
    }

    /// Park `rank` as `pending` until granted. Returns normally when the
    /// rank holds the token; unwinds with [`McAbort`] on an early stop.
    fn park(&self, rank: u32, pending: Pending) {
        let mut st = self.state.lock();
        if st.stop.is_some() {
            drop(st);
            self.abort();
            return;
        }
        st.ranks[rank as usize] = pending;
        st.executing -= 1;
        if st.executing == 0 {
            self.schedule(&mut st);
        }
        loop {
            if st.stop.is_some() {
                // Mark ourselves out so deadlock listings don't show
                // ranks that are busy unwinding.
                st.ranks[rank as usize] = Pending::Finished;
                drop(st);
                self.abort();
                return;
            }
            if matches!(st.ranks[rank as usize], Pending::Running) {
                return;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Unwind with the sentinel — unless this thread is already
    /// unwinding (a gate call from a destructor mid-panic), in which
    /// case fall through and let the operation run unserialized: the
    /// run is aborted and its state is discarded anyway.
    fn abort(&self) {
        if !std::thread::panicking() {
            std::panic::panic_any(McAbort);
        }
    }

    /// `rank`'s program returned; release the token for good.
    pub fn finish(&self, rank: u32) {
        let mut st = self.state.lock();
        st.ranks[rank as usize] = Pending::Finished;
        st.executing -= 1;
        if st.executing == 0 {
            self.schedule(&mut st);
        }
    }

    /// `rank`'s program panicked for real (caught by the checker's rank
    /// wrapper): record the violation and wake everyone.
    pub fn report_panic(&self, rank: u32, msg: String) {
        let mut st = self.state.lock();
        st.ranks[rank as usize] = Pending::Finished;
        st.executing -= 1;
        if st.stop.is_none() {
            st.stop = Some(Stop::Panic { rank, msg });
        }
        self.cv.notify_all();
    }

    /// Extract the run's schedule and stop reason. Call after every rank
    /// thread has joined.
    pub fn take_log(&self) -> RunLog {
        let mut st = self.state.lock();
        RunLog { steps: std::mem::take(&mut st.steps), stop: st.stop.take() }
    }
}

impl McGate for SchedGate {
    fn op(&self, rank: u32, op: McOp) {
        self.park(rank, Pending::Want(op));
    }

    fn poll(
        &self,
        rank: u32,
        obj: McObj,
        label: &'static str,
        pred: Box<dyn Fn() -> bool + Send + Sync>,
    ) {
        self.park(rank, Pending::Poll { obj, label, pred });
    }

    fn collective(&self, rank: u32, label: &'static str) -> bool {
        let epoch = {
            let mut st = self.state.lock();
            if st.stop.is_some() {
                drop(st);
                self.abort();
                return rank == 0;
            }
            let e = st.arrived[rank as usize];
            st.arrived[rank as usize] = e + 1;
            e
        };
        self.park(rank, Pending::Coll { epoch, label });
        rank == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_is_stable() {
        assert_eq!(Pending::Running.describe(), "running");
        assert_eq!(Pending::Coll { epoch: 3, label: "x" }.describe(), "collective x");
    }

    #[test]
    fn stop_equality() {
        assert_eq!(Stop::Redundant, Stop::Redundant);
        assert_ne!(Stop::Redundant, Stop::StepBudget);
    }
}
