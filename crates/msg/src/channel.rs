//! One-sided producer-consumer channels over notified access.
//!
//! The classic RMA producer-consumer pattern needs *two* mechanisms: the
//! data put, and a separately-synchronised flag the consumer polls (plus a
//! reverse flag so the producer knows a slot is free again). Notified
//! access collapses both directions into single calls: the producer's
//! [`Sender::send`] is one `put_notify` (data + arrival notification,
//! ordered), and the consumer's [`Receiver::recv`] returns credits with
//! one `accumulate_notify` (slot-free AMO + notification). No two-sided
//! message, no tag-matching engine, no polling AMOs over the wire — the
//! only remote operations are the notified put and the notified credit
//! return.
//!
//! Layout of the ring window (lives in the *consumer*'s window memory;
//! `slots × slot_bytes` data cells):
//!
//! ```text
//! | slot 0 | slot 1 | ... | slot n-1 |
//! ```
//!
//! Flow control is credit-based: the producer starts with `slots` credits,
//! spends one per send, and blocks in [`Sender::send`] on the consumer's
//! credit notifications ([`CREDIT_TAG`]) when it runs out. Slot indices
//! advance monotonically mod `slots` on both sides, so no cursor ever
//! travels over the wire; the payload length rides in the notification
//! record's `bytes` field.
//!
//! Both endpoints are built collectively by [`channel`] over one window;
//! the channel is SPSC (one producer rank, one consumer rank), the
//! degenerate but dominant case of the paper's halo/pipeline patterns.

use fompi::{FompiError, MpiOp, Notification, Result, Win};
use fompi_runtime::RankCtx;

/// Tag carried by data notifications (producer → consumer).
pub const DATA_TAG: u32 = 0x00C4_07DA;

/// Tag carried by credit-return notifications (consumer → producer).
pub const CREDIT_TAG: u32 = 0x00C4_07CE;

/// Producer half of a notified-access channel.
pub struct Sender {
    win: Win,
    peer: u32,
    slots: usize,
    slot_bytes: usize,
    head: u64,
    credits: u64,
    /// Head value at the last flush toward the consumer (slot-reuse
    /// fence, see [`Sender::send`]).
    flushed_at: u64,
}

/// Consumer half of a notified-access channel.
pub struct Receiver {
    win: Win,
    peer: u32,
    slots: usize,
    slot_bytes: usize,
    tail: u64,
}

/// Collectively build an SPSC channel from `producer` to `consumer` with
/// `slots` ring cells of `slot_bytes` each. Every rank of the universe
/// must call (window creation is collective); ranks other than the two
/// endpoints get `None`. The ring memory lives in the consumer's window;
/// both endpoints hold a `lock_all` passive epoch for the channel's
/// lifetime — drop via [`Sender::close`] / [`Receiver::close`].
///
/// A zero-capacity configuration (`slots == 0` or `slot_bytes == 0`) is
/// rejected with a typed error rather than a panic: every rank takes the
/// same branch before any collective allocation, so the rejection is
/// itself collective and no window leaks.
pub fn channel(
    ctx: &RankCtx,
    producer: u32,
    consumer: u32,
    slots: usize,
    slot_bytes: usize,
) -> Result<Option<ChannelEnd>> {
    if slots == 0 || slot_bytes == 0 {
        return Err(FompiError::InvalidEpoch("channel needs at least one non-empty slot"));
    }
    assert_ne!(producer, consumer, "SPSC channel endpoints must differ");
    // Symmetric-heap window: every rank exposes the same size (only the
    // consumer's copy holds ring data; the producer's doubles as the
    // credit-AMO landing pad at offset 0).
    let win = Win::allocate(ctx, slots * slot_bytes, 1)?;
    win.lock_all()?;
    if ctx.rank() == producer {
        Ok(Some(ChannelEnd::Sender(Sender {
            win,
            peer: consumer,
            slots,
            slot_bytes,
            head: 0,
            credits: slots as u64,
            flushed_at: 0,
        })))
    } else if ctx.rank() == consumer {
        Ok(Some(ChannelEnd::Receiver(Receiver { win, peer: producer, slots, slot_bytes, tail: 0 })))
    } else {
        win.unlock_all()?;
        win.free(ctx);
        Ok(None)
    }
}

/// What [`channel`] hands each participating rank.
pub enum ChannelEnd {
    /// This rank is the producer.
    Sender(Sender),
    /// This rank is the consumer.
    Receiver(Receiver),
}

impl ChannelEnd {
    /// Unwrap the producer half.
    pub fn into_sender(self) -> Sender {
        match self {
            ChannelEnd::Sender(s) => s,
            ChannelEnd::Receiver(_) => panic!("this rank is the consumer"),
        }
    }

    /// Unwrap the consumer half.
    pub fn into_receiver(self) -> Receiver {
        match self {
            ChannelEnd::Receiver(r) => r,
            ChannelEnd::Sender(_) => panic!("this rank is the producer"),
        }
    }
}

impl Sender {
    /// Send `msg` (at most `slot_bytes`). Blocks on credit notifications
    /// when the ring is full — backpressure is the consumer's pace, felt
    /// through returned credits, not through ring overflow.
    pub fn send(&mut self, msg: &[u8]) -> Result<()> {
        assert!(msg.len() <= self.slot_bytes, "message exceeds the channel slot size");
        if self.credits == 0 {
            // One credit notification per freed slot; its stamp joins our
            // clock, so waiting here *is* the flow-control time.
            self.win.wait_notify(self.peer, CREDIT_TAG)?;
            self.add_credit()?;
        }
        // Slot-reuse fence: put N+slots lands where put N did, and two
        // same-origin puts in one passive epoch are unordered in MPI
        // even though the returned credit proves the consumer drained
        // the old payload. One flush covers a whole window of slots
        // (the same rule as the RMC mesh; found by the fompi-mc model
        // checker on a one-slot channel).
        if self.head >= self.flushed_at + self.slots as u64 {
            self.win.flush(self.peer)?;
            self.flushed_at = self.head;
        }
        let slot = (self.head % self.slots as u64) as usize;
        self.win.put_notify(msg, self.peer, slot * self.slot_bytes, DATA_TAG)?;
        self.head += 1;
        self.credits -= 1;
        Ok(())
    }

    /// Credits currently in hand (free slots known to this side).
    pub fn credits(&self) -> u64 {
        self.credits
    }

    /// Absorb any credit notifications that already arrived (nonblocking).
    pub fn poll_credits(&mut self) -> Result<u64> {
        while self.win.test_notify(self.peer, CREDIT_TAG)?.is_some() {
            self.add_credit()?;
        }
        Ok(self.credits)
    }

    /// Book one returned credit, failing loudly on underflow of the
    /// outstanding-message count: a credit beyond `slots` means the
    /// consumer freed a slot this producer never filled (a stray or
    /// duplicated credit notification), and silently absorbing it would
    /// let a later burst overrun the ring.
    fn add_credit(&mut self) -> Result<()> {
        if self.credits >= self.slots as u64 {
            return Err(FompiError::InvalidEpoch(
                "channel credit underflow: consumer returned more slots than were ever filled",
            ));
        }
        self.credits += 1;
        Ok(())
    }

    /// Tear down this half (collective with [`Receiver::close`]).
    pub fn close(self, ctx: &RankCtx) -> Result<()> {
        self.win.unlock_all()?;
        self.win.free(ctx);
        Ok(())
    }
}

impl Receiver {
    /// Receive the next message into `buf`, returning the payload length.
    /// Blocks on the producer's data notification; the matched record's
    /// stamp fences the ring read (the data is visible). The slot is
    /// recycled immediately after the copy with a notified credit AMO.
    pub fn recv(&mut self, buf: &mut [u8]) -> Result<usize> {
        let rec: Notification = self.win.wait_notify(self.peer, DATA_TAG)?;
        let len = rec.bytes as usize;
        assert!(len <= self.slot_bytes && len <= buf.len(), "slot payload exceeds recv buffer");
        let slot = (self.tail % self.slots as u64) as usize;
        self.win.read_local(slot * self.slot_bytes, &mut buf[..len]);
        self.tail += 1;
        // Return the credit: a notified AMO (the operand is informational
        // — flow control rides the notification itself).
        self.win.accumulate_notify(1, MpiOp::Sum, self.peer, 0, CREDIT_TAG)?;
        Ok(len)
    }

    /// Nonblocking probe: `Some(len)` if a message is ready (not consumed).
    pub fn try_peek(&self) -> Result<Option<usize>> {
        // A peek must not consume the notification: probe the pending set.
        Ok(if self.win.notify_pending() > 0 { Some(self.slot_bytes) } else { None })
    }

    /// Tear down this half (collective with [`Sender::close`]).
    ///
    /// Closing with undelivered data still in the ring is a typed error:
    /// the undrained messages vanish with the window. Drain with
    /// [`Receiver::recv`] until the producer's count is met (the two
    /// sides must agree on it out of band or via a barrier) before
    /// closing. The teardown itself still runs — `Win::free` is
    /// collective, so refusing here would deadlock the producer's close —
    /// but the loss is reported instead of silent. The sender side
    /// carries no such check: unabsorbed *credit* notifications at the
    /// producer are benign, they only mean the producer never needed the
    /// freed slots.
    pub fn close(self, ctx: &RankCtx) -> Result<()> {
        let undrained = self.win.notify_pending();
        self.win.unlock_all()?;
        self.win.free(ctx);
        if undrained != 0 {
            return Err(FompiError::InvalidEpoch(
                "receiver closed with undrained messages in the ring",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_runtime::Universe;

    #[test]
    fn round_trip_preserves_order_and_bytes() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let end = channel(ctx, 0, 1, 4, 64).unwrap().unwrap();
            match end {
                ChannelEnd::Sender(mut tx) => {
                    for i in 0..10u8 {
                        let msg = vec![i; (i as usize % 64) + 1];
                        tx.send(&msg).unwrap();
                    }
                    tx.close(ctx).unwrap();
                    Vec::new()
                }
                ChannelEnd::Receiver(mut rx) => {
                    let mut sums = Vec::new();
                    let mut buf = [0u8; 64];
                    for i in 0..10u8 {
                        let n = rx.recv(&mut buf).unwrap();
                        assert_eq!(n, (i as usize % 64) + 1);
                        assert!(buf[..n].iter().all(|&b| b == i));
                        sums.push(n);
                    }
                    rx.close(ctx).unwrap();
                    sums
                }
            }
        });
        assert_eq!(got[1], (0..10).map(|i| (i % 64) + 1).collect::<Vec<_>>());
    }

    #[test]
    fn credit_flow_bounds_the_producer() {
        // Many more messages than slots: the producer must block on
        // credits rather than overrun the 2-slot ring, and every payload
        // must still arrive intact and in order.
        const MSGS: u64 = 50;
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let end = channel(ctx, 0, 1, 2, 8).unwrap().unwrap();
            match end {
                ChannelEnd::Sender(mut tx) => {
                    for i in 0..MSGS {
                        tx.send(&i.to_le_bytes()).unwrap();
                        assert!(tx.credits() < 2, "a send always spends a credit");
                    }
                    tx.close(ctx).unwrap();
                    0
                }
                ChannelEnd::Receiver(mut rx) => {
                    let mut ok = 0u64;
                    let mut buf = [0u8; 8];
                    for i in 0..MSGS {
                        rx.recv(&mut buf).unwrap();
                        if u64::from_le_bytes(buf) == i {
                            ok += 1;
                        }
                    }
                    rx.close(ctx).unwrap();
                    ok
                }
            }
        });
        assert_eq!(got[1], MSGS);
    }

    #[test]
    fn zero_capacity_is_rejected_with_a_typed_error() {
        // Both degenerate shapes, rejected on every rank before any
        // collective allocation — the universe still tears down cleanly.
        Universe::new(2).node_size(1).run(|ctx| {
            for (slots, slot_bytes) in [(0usize, 64usize), (4, 0), (0, 0)] {
                match channel(ctx, 0, 1, slots, slot_bytes) {
                    Err(FompiError::InvalidEpoch(msg)) => assert!(msg.contains("slot")),
                    Err(e) => panic!("wrong rejection for ({slots},{slot_bytes}): {e}"),
                    Ok(_) => panic!("zero-capacity channel ({slots},{slot_bytes}) was accepted"),
                }
            }
        });
    }

    #[test]
    fn receiver_close_before_drain_is_a_typed_error() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let end = channel(ctx, 0, 1, 4, 8).unwrap().unwrap();
            match end {
                ChannelEnd::Sender(mut tx) => {
                    tx.send(b"payload!").unwrap();
                    ctx.barrier(); // message is in the ring before the close attempt
                    ctx.barrier();
                    tx.close(ctx).unwrap();
                    0
                }
                ChannelEnd::Receiver(rx) => {
                    ctx.barrier();
                    // The ring still holds the undelivered message: the
                    // close must refuse rather than drop it on the floor.
                    assert_eq!(rx.try_peek().unwrap(), Some(8));
                    let err = rx.close(ctx).unwrap_err();
                    assert!(
                        matches!(err, FompiError::InvalidEpoch(m) if m.contains("undrained")),
                        "expected an undrained-close error, got {err:?}"
                    );
                    ctx.barrier();
                    1
                }
            }
        });
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn stray_credit_is_a_loud_underflow_error() {
        // A consumer that returns more credits than the producer ever
        // spent (here: one real + one forged) must trip the producer's
        // underflow check instead of silently inflating the window.
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let end = channel(ctx, 0, 1, 1, 8).unwrap().unwrap();
            match end {
                ChannelEnd::Sender(mut tx) => {
                    tx.send(b"one-----").unwrap();
                    ctx.barrier(); // consumer drained + forged by now
                    let err = tx.poll_credits().unwrap_err();
                    assert!(
                        matches!(err, FompiError::InvalidEpoch(m) if m.contains("underflow")),
                        "expected a credit-underflow error, got {err:?}"
                    );
                    tx.close(ctx).unwrap();
                    1
                }
                ChannelEnd::Receiver(mut rx) => {
                    let mut buf = [0u8; 8];
                    rx.recv(&mut buf).unwrap(); // returns the legitimate credit
                                                // Forge a second credit for a slot that was never filled.
                    rx.win.accumulate_notify(1, MpiOp::Sum, rx.peer, 0, CREDIT_TAG).unwrap();
                    ctx.barrier();
                    rx.close(ctx).unwrap();
                    2
                }
            }
        });
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn third_party_ranks_pass_through() {
        let got = Universe::new(4).node_size(2).run(|ctx| {
            let end = channel(ctx, 1, 3, 2, 16).unwrap();
            match end {
                Some(ChannelEnd::Sender(mut tx)) => {
                    tx.send(b"ping").unwrap();
                    tx.close(ctx).unwrap();
                    1u8
                }
                Some(ChannelEnd::Receiver(mut rx)) => {
                    let mut b = [0u8; 16];
                    let n = rx.recv(&mut b).unwrap();
                    assert_eq!(&b[..n], b"ping");
                    rx.close(ctx).unwrap();
                    2u8
                }
                None => 0u8,
            }
        });
        assert_eq!(got, vec![0, 1, 0, 2]);
    }
}
