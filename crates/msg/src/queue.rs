//! Matching engine: posted-receive and unexpected-message queues.
//!
//! The sending rank's thread plays the role of the NIC/firmware: it locks
//! the destination's queue pair, attempts the tag match, and either
//! delivers in place (receive already posted — the zero-copy fast path) or
//! enqueues the message as *unexpected*, buffering eager payloads at the
//! receiver — the memory cost the paper's RMA protocols eliminate.

use fompi_fabric::shim::{Condvar, Mutex};
use fompi_fabric::SegKey;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wildcard source.
pub const ANY_SOURCE: u32 = u32::MAX;
/// Wildcard tag.
pub const ANY_TAG: u32 = u32::MAX;

/// Destination buffer of a posted receive. The receiver guarantees the
/// buffer outlives the matching delivery (it blocks in `recv`, or holds a
/// `RecvRequest` borrowing the buffer).
pub(crate) struct RecvSlot {
    ptr: *mut u8,
    cap: usize,
}

// SAFETY: the slot is only dereferenced by the (single) matching sender
// while holding the destination queue lock, and the receiver keeps the
// buffer alive until the completion cell fires — enforced by the
// `RecvRequest` borrow or by blocking in `recv`.
unsafe impl Send for RecvSlot {}

impl RecvSlot {
    pub fn new(buf: &mut [u8]) -> Self {
        Self { ptr: buf.as_mut_ptr(), cap: buf.len() }
    }

    #[allow(dead_code)]
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Deliver `data` into the posted buffer.
    ///
    /// # Safety
    /// Caller must be the matching sender; the receiver's buffer is alive
    /// per the type-level contract above.
    pub unsafe fn write(&self, data: &[u8]) {
        assert!(data.len() <= self.cap, "message longer than posted receive buffer");
        // SAFETY: `ptr` points at a live buffer of at least `cap` bytes
        // (caller contract above), `data.len() <= cap` is asserted, and the
        // source slice cannot alias the posted receive buffer.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr, data.len());
        }
    }
}

/// What a message carries.
pub(crate) enum Payload {
    /// Eager: the payload itself (buffered when unexpected).
    Eager(Vec<u8>),
    /// Rendezvous RTS: a descriptor for the source buffer plus the
    /// sender's FIN cell.
    Rndv { key: SegKey, len: usize, fin: Arc<Completion> },
}

impl Payload {
    pub fn len(&self) -> usize {
        match self {
            Payload::Eager(d) => d.len(),
            Payload::Rndv { len, .. } => *len,
        }
    }
}

/// A message that arrived before its receive was posted.
pub(crate) struct Unexpected {
    pub src: u32,
    pub tag: u32,
    /// Virtual arrival time at the receiver.
    pub t_arrival: f64,
    pub payload: Payload,
}

/// A receive posted before its message arrived.
pub(crate) struct Posted {
    pub src: u32,
    pub tag: u32,
    pub slot: RecvSlot,
    pub cell: Arc<Completion>,
}

pub(crate) fn tag_match(want_src: u32, want_tag: u32, src: u32, tag: u32) -> bool {
    (want_src == ANY_SOURCE || want_src == src) && (want_tag == ANY_TAG || want_tag == tag)
}

/// Per-rank queue pair.
pub(crate) struct RankQueues {
    pub inner: Mutex<QInner>,
    pub cv: Condvar,
}

#[derive(Default)]
pub(crate) struct QInner {
    pub posted: VecDeque<Posted>,
    pub unexpected: VecDeque<Unexpected>,
}

impl RankQueues {
    fn new() -> Self {
        Self { inner: Mutex::new(QInner::default()), cv: Condvar::new() }
    }
}

/// Completion cell: how the matching side wakes a blocked peer and hands
/// over the causal timestamp (and, for rendezvous, the pull descriptor).
pub(crate) struct Completion {
    state: Mutex<CompletionState>,
    cv: Condvar,
}

#[derive(Clone)]
pub(crate) struct CompletionState {
    pub done: bool,
    pub stamp: f64,
    pub src: u32,
    pub tag: u32,
    pub len: usize,
    /// Present when the receiver must pull the payload itself (rendezvous
    /// matched against a posted receive).
    pub pull: Option<PullInfo>,
}

#[derive(Clone)]
pub(crate) struct PullInfo {
    pub key: SegKey,
    pub len: usize,
    pub fin: Arc<Completion>,
}

impl Completion {
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(CompletionState {
                done: false,
                stamp: 0.0,
                src: 0,
                tag: 0,
                len: 0,
                pull: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Mark complete and wake waiters.
    pub fn signal(&self, stamp: f64, src: u32, tag: u32, len: usize, pull: Option<PullInfo>) {
        let mut st = self.state.lock();
        st.done = true;
        st.stamp = st.stamp.max(stamp);
        st.src = src;
        st.tag = tag;
        st.len = len;
        st.pull = pull;
        self.cv.notify_all();
    }

    /// Block until signalled; returns the final state.
    pub fn wait(&self) -> CompletionState {
        let mut st = self.state.lock();
        while !st.done {
            self.cv.wait(&mut st);
        }
        st.clone()
    }

    /// Nonblocking check.
    pub fn poll(&self) -> Option<CompletionState> {
        let st = self.state.lock();
        st.done.then(|| st.clone())
    }
}

/// Shared messaging state for a universe: one queue pair per rank plus the
/// receiver-buffering accountant.
pub struct MsgEngine {
    ranks: Box<[RankQueues]>,
    buffered: AtomicU64,
    buffered_hw: AtomicU64,
}

impl MsgEngine {
    /// Engine for `p` ranks.
    pub fn new(p: usize) -> Arc<Self> {
        Arc::new(Self {
            ranks: (0..p).map(|_| RankQueues::new()).collect(),
            buffered: AtomicU64::new(0),
            buffered_hw: AtomicU64::new(0),
        })
    }

    /// Rank count the engine was built for.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    pub(crate) fn q(&self, rank: u32) -> &RankQueues {
        &self.ranks[rank as usize]
    }

    pub(crate) fn buffer_add(&self, n: usize) {
        let cur = self.buffered.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
        self.buffered_hw.fetch_max(cur, Ordering::Relaxed);
    }

    pub(crate) fn buffer_sub(&self, n: usize) {
        self.buffered.fetch_sub(n as u64, Ordering::Relaxed);
    }

    /// Peak bytes of receiver-side eager buffering — the "space" cost of
    /// message passing the paper's §1 calls out.
    pub fn buffered_high_water(&self) -> u64 {
        self.buffered_hw.load(Ordering::Relaxed)
    }

    /// Currently buffered unexpected-eager bytes.
    pub fn buffered_now(&self) -> u64 {
        self.buffered.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_matching_rules() {
        assert!(tag_match(ANY_SOURCE, ANY_TAG, 5, 9));
        assert!(tag_match(5, ANY_TAG, 5, 9));
        assert!(!tag_match(4, ANY_TAG, 5, 9));
        assert!(tag_match(5, 9, 5, 9));
        assert!(!tag_match(5, 8, 5, 9));
    }

    #[test]
    fn buffering_accounting() {
        let e = MsgEngine::new(2);
        e.buffer_add(100);
        e.buffer_add(50);
        e.buffer_sub(100);
        assert_eq!(e.buffered_now(), 50);
        assert_eq!(e.buffered_high_water(), 150);
    }

    #[test]
    fn completion_signal_wait() {
        let c = Completion::new();
        let c2 = c.clone();
        let h = std::thread::spawn(move || c2.wait());
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(c.poll().is_none());
        c.signal(42.0, 1, 2, 3, None);
        let st = h.join().unwrap();
        assert_eq!((st.stamp, st.src, st.tag, st.len), (42.0, 1, 2, 3));
        assert!(c.poll().is_some());
    }
}
