//! Point-to-point messaging: eager and rendezvous protocols.
//!
//! §1 of the paper: "fast message passing libraries over RDMA usually
//! require different protocols: an eager protocol with receiver-side
//! buffering of small messages and a rendezvous protocol that synchronizes
//! the sender. Eager requires additional copies, and rendezvous sends
//! additional messages and may delay the sending process." Both are
//! implemented here over the same fabric foMPI uses, so every comparison in
//! Figures 4–8 exercises real protocol differences.

use crate::queue::{tag_match, Completion, Payload, Posted, PullInfo, RecvSlot, Unexpected};
use crate::Comm;
use fompi_fabric::{Endpoint, Segment};
use std::marker::PhantomData;
use std::sync::Arc;

/// Receive status (MPI_Status).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Matched source rank.
    pub src: u32,
    /// Matched tag.
    pub tag: u32,
    /// Received bytes.
    pub len: usize,
}

/// Handle of a nonblocking receive; borrows the destination buffer.
pub struct RecvRequest<'buf> {
    cell: Arc<Completion>,
    _buf: PhantomData<&'buf mut [u8]>,
}

impl RecvRequest<'_> {
    /// MPI_Wait: block until the message arrived (pulling the payload
    /// itself if the sender chose rendezvous).
    pub fn wait(self, ep: &Endpoint) -> Status {
        let st = self.cell.wait();
        finish_recv(ep, &st)
    }

    /// MPI_Test.
    pub fn test(&self) -> bool {
        self.cell.poll().is_some()
    }
}

/// Handle of a nonblocking send.
pub struct SendRequest {
    /// FIN cell for rendezvous; eager sends complete locally.
    fin: Option<Arc<Completion>>,
}

impl SendRequest {
    /// MPI_Wait for the send.
    pub fn wait(self, ep: &Endpoint) {
        if let Some(fin) = self.fin {
            let st = fin.wait();
            ep.clock().join(st.stamp);
        }
    }

    /// MPI_Test for the send.
    pub fn test(&self) -> bool {
        self.fin.as_ref().map(|f| f.poll().is_some()).unwrap_or(true)
    }
}

/// Rendezvous completion: the receiver pulls payload via RDMA get and
/// signals the sender's FIN.
fn finish_recv(ep: &Endpoint, st: &crate::queue::CompletionState) -> Status {
    ep.clock().join(st.stamp);
    if let Some(pull) = &st.pull {
        // The slot pointer was captured by the matching sender; the pull
        // copy happens here, receiver-side, as real rendezvous does. The
        // sender wrote the descriptor; data was already delivered into the
        // buffer by `deliver_rndv_to_slot` under the queue lock, so only
        // timing and FIN remain.
        let m = ep.fabric().model();
        let t = ep.transport_to(pull.key.rank);
        ep.clock().advance(m.inject(t));
        ep.clock().advance(m.get_latency(t, pull.len));
        let t_fin = ep.clock().now() + m.put_latency(t, 8);
        pull.fin.signal(t_fin, 0, 0, pull.len, None);
    }
    Status { src: st.src, tag: st.tag, len: st.len }
}

impl Comm {
    fn arrival_time(&self, dst: u32, bytes: usize) -> f64 {
        let t = self.ep.transport_to(dst);
        let m = self.ep.fabric().model();
        self.ep.charge(m.inject(t));
        self.ep.clock().now()
            + m.put_latency(t, bytes + self.costs.header_bytes)
            + self.costs.match_ns
    }

    /// MPI_Send (standard mode): eager below the threshold (completes
    /// locally), rendezvous above (blocks until the receiver pulled).
    pub fn send(&self, data: &[u8], dst: u32, tag: u32) -> Result<(), String> {
        self.ep.charge(self.costs.sw_ns);
        if data.len() <= self.costs.eager_threshold {
            self.send_eager(data, dst, tag);
            Ok(())
        } else {
            let fin = self.send_rndv(data, dst, tag);
            let st = fin.wait();
            self.ep.clock().join(st.stamp);
            Ok(())
        }
    }

    /// MPI_Ssend: synchronous mode — always uses the rendezvous handshake,
    /// so completion implies the receive was matched (the property NBX
    /// termination detection relies on).
    pub fn ssend(&self, data: &[u8], dst: u32, tag: u32) -> Result<(), String> {
        self.ep.charge(self.costs.sw_ns);
        let fin = self.send_rndv(data, dst, tag);
        let st = fin.wait();
        self.ep.clock().join(st.stamp);
        Ok(())
    }

    /// MPI_Isend.
    pub fn isend(&self, data: &[u8], dst: u32, tag: u32) -> Result<SendRequest, String> {
        self.ep.charge(self.costs.sw_ns);
        if data.len() <= self.costs.eager_threshold {
            self.send_eager(data, dst, tag);
            Ok(SendRequest { fin: None })
        } else {
            Ok(SendRequest { fin: Some(self.send_rndv(data, dst, tag)) })
        }
    }

    /// MPI_Issend (nonblocking synchronous).
    pub fn issend(&self, data: &[u8], dst: u32, tag: u32) -> Result<SendRequest, String> {
        self.ep.charge(self.costs.sw_ns);
        Ok(SendRequest { fin: Some(self.send_rndv(data, dst, tag)) })
    }

    fn send_eager(&self, data: &[u8], dst: u32, tag: u32) {
        let t_arr = self.arrival_time(dst, data.len());
        let q = self.engine.q(dst);
        let mut inner = q.inner.lock();
        if let Some(pos) = inner.posted.iter().position(|p| tag_match(p.src, p.tag, self.rank, tag))
        {
            let posted = inner.posted.remove(pos).unwrap();
            // Zero-copy fast path: deliver straight into the user buffer.
            // SAFETY: per RecvSlot contract — receiver keeps buffer alive.
            unsafe { posted.slot.write(data) };
            posted.cell.signal(t_arr, self.rank, tag, data.len(), None);
            q.cv.notify_all();
        } else {
            // Unexpected: buffer at the receiver (the eager copy).
            self.engine.buffer_add(data.len());
            inner.unexpected.push_back(Unexpected {
                src: self.rank,
                tag,
                t_arrival: t_arr,
                payload: Payload::Eager(data.to_vec()),
            });
            q.cv.notify_all();
        }
    }

    /// Rendezvous: register the source, send the RTS. Returns the FIN cell.
    fn send_rndv(&self, data: &[u8], dst: u32, tag: u32) -> Arc<Completion> {
        // Register the (copied) source buffer: the descriptor in the RTS.
        let seg = Segment::new(data.len().max(8));
        seg.write(0, data);
        let key = self.ep.fabric().register(self.rank, seg);
        let fin = Completion::new();
        let t_rts = self.arrival_time(dst, 0);
        let q = self.engine.q(dst);
        let mut inner = q.inner.lock();
        if let Some(pos) = inner.posted.iter().position(|p| tag_match(p.src, p.tag, self.rank, tag))
        {
            let posted = inner.posted.remove(pos).unwrap();
            // Deliver the payload into the posted buffer now (we are the
            // NIC); the receiver charges the get cost when it wakes.
            // SAFETY: per RecvSlot contract.
            unsafe { posted.slot.write(data) };
            posted.cell.signal(
                t_rts,
                self.rank,
                tag,
                data.len(),
                Some(PullInfo { key, len: data.len(), fin: fin.clone() }),
            );
            // With the receive already posted, the NIC progresses the pull
            // without receiver involvement: FIN fires at the modeled
            // transfer-complete time. (Deferring FIN to the receiver's
            // wait() would deadlock symmetric rendezvous sendrecv pairs.)
            let m = self.ep.fabric().model();
            let t = self.ep.transport_to(dst);
            let t_fin = t_rts + m.get_latency(t, data.len()) + m.put_latency(t, 8);
            fin.signal(t_fin, 0, 0, data.len(), None);
            q.cv.notify_all();
        } else {
            inner.unexpected.push_back(Unexpected {
                src: self.rank,
                tag,
                t_arrival: t_rts,
                payload: Payload::Rndv { key, len: data.len(), fin: fin.clone() },
            });
            q.cv.notify_all();
        }
        fin
    }

    /// MPI_Recv (blocking).
    pub fn recv(&self, buf: &mut [u8], src: u32, tag: u32) -> Result<Status, String> {
        self.ep.charge(self.costs.sw_ns + self.costs.match_ns);
        let cell;
        {
            let q = self.engine.q(self.rank);
            let mut inner = q.inner.lock();
            if let Some(pos) =
                inner.unexpected.iter().position(|u| tag_match(src, tag, u.src, u.tag))
            {
                let u = inner.unexpected.remove(pos).unwrap();
                drop(inner);
                return Ok(self.consume_unexpected(u, buf));
            }
            cell = Completion::new();
            inner.posted.push_back(Posted {
                src,
                tag,
                slot: RecvSlot::new(buf),
                cell: cell.clone(),
            });
        }
        let st = cell.wait();
        Ok(finish_recv(&self.ep, &st))
    }

    /// MPI_Irecv. The returned request borrows `buf` until waited.
    pub fn irecv<'b>(
        &self,
        buf: &'b mut [u8],
        src: u32,
        tag: u32,
    ) -> Result<RecvRequest<'b>, String> {
        self.ep.charge(self.costs.sw_ns + self.costs.match_ns);
        let q = self.engine.q(self.rank);
        let mut inner = q.inner.lock();
        let cell = Completion::new();
        if let Some(pos) = inner.unexpected.iter().position(|u| tag_match(src, tag, u.src, u.tag)) {
            let u = inner.unexpected.remove(pos).unwrap();
            drop(inner);
            let st = self.consume_unexpected(u, buf);
            cell.signal(self.ep.clock().now(), st.src, st.tag, st.len, None);
        } else {
            inner.posted.push_back(Posted {
                src,
                tag,
                slot: RecvSlot::new(buf),
                cell: cell.clone(),
            });
        }
        Ok(RecvRequest { cell, _buf: PhantomData })
    }

    /// Handle a matched unexpected message: eager costs the extra copy,
    /// rendezvous pulls via RDMA get and FINs the sender.
    fn consume_unexpected(&self, u: Unexpected, buf: &mut [u8]) -> Status {
        let m = self.ep.fabric().model();
        match u.payload {
            Payload::Eager(data) => {
                self.engine.buffer_sub(data.len());
                buf[..data.len()].copy_from_slice(&data);
                // The eager copy out of the bounce buffer.
                self.ep.clock().join(u.t_arrival);
                self.ep.charge(m.memcpy_byte_ns * data.len() as f64);
                Status { src: u.src, tag: u.tag, len: data.len() }
            }
            Payload::Rndv { key, len, fin } => {
                self.ep.clock().join(u.t_arrival);
                let mut tmp = vec![0u8; len];
                self.ep.get(key, 0, &mut tmp).expect("rendezvous source vanished");
                buf[..len].copy_from_slice(&tmp);
                let t = self.ep.transport_to(key.rank);
                let t_fin = self.ep.clock().now() + m.put_latency(t, 8);
                fin.signal(t_fin, 0, 0, len, None);
                Status { src: u.src, tag: u.tag, len }
            }
        }
    }

    /// MPI_Iprobe: nonblocking check for a matching unexpected message.
    pub fn iprobe(&self, src: u32, tag: u32) -> Option<Status> {
        self.ep.charge(self.costs.match_ns);
        let q = self.engine.q(self.rank);
        let inner = q.inner.lock();
        inner.unexpected.iter().find(|u| tag_match(src, tag, u.src, u.tag)).map(|u| Status {
            src: u.src,
            tag: u.tag,
            len: u.payload.len(),
        })
    }

    /// MPI_Sendrecv.
    pub fn sendrecv(
        &self,
        senddata: &[u8],
        dst: u32,
        sendtag: u32,
        recvbuf: &mut [u8],
        src: u32,
        recvtag: u32,
    ) -> Result<Status, String> {
        let req = self.irecv(recvbuf, src, recvtag)?;
        self.send(senddata, dst, sendtag)?;
        Ok(req.wait(&self.ep))
    }

    /// Blocking probe.
    pub fn probe(&self, src: u32, tag: u32) -> Status {
        loop {
            if let Some(st) = self.iprobe(src, tag) {
                return st;
            }
            std::thread::yield_now();
        }
    }
}
