//! An MPI-2.2-era one-sided implementation ("Cray MPI-2.2" baseline).
//!
//! Pre-foMPI vendor RMA layered every one-sided operation over the
//! messaging stack: the origin ships an (op, offset, data) descriptor and a
//! software agent on the target applies it — hence the ~10 µs small-message
//! latencies of Figures 4a/4b and the huge fence costs of Figure 6b. We
//! reproduce that architecture: data still moves for real, but each
//! operation pays the messaging software path plus an agent charge, and
//! synchronisation costs a full round trip per target.

use crate::MsgCosts;
use fompi_fabric::{SegKey, Segment};
use fompi_runtime::RankCtx;
use std::rc::Rc;
use std::sync::Arc;

/// A one-sided window in the MPI-2.2 style.
pub struct Win22 {
    ep: Rc<fompi_fabric::Endpoint>,
    coll: Arc<fompi_runtime::CollEngine>,
    id: u64,
    size: usize,
    seg: Arc<Segment>,
    costs: MsgCosts,
}

impl Win22 {
    /// Collectively create a window of `size` bytes per rank.
    pub fn allocate(ctx: &RankCtx, size: usize) -> Win22 {
        let seg = Segment::new(size.max(8));
        let id = loop {
            let proposal = if ctx.rank() == 0 {
                ctx.fabric().propose_id().to_le_bytes().to_vec()
            } else {
                vec![0u8; 8]
            };
            let id = u64::from_le_bytes(ctx.bcast(0, &proposal).try_into().unwrap());
            let ok = ctx.fabric().register_symmetric(ctx.rank(), id, seg.clone()).is_ok();
            if ctx.allreduce_u64(ok as u64, |a, b| a & b) == 1 {
                break id;
            }
            if ok {
                ctx.fabric().deregister(SegKey { rank: ctx.rank(), id });
            }
        };
        ctx.barrier();
        Win22 {
            ep: ctx.ep_rc(),
            coll: ctx.coll_arc(),
            id,
            size: size.max(8),
            seg,
            costs: MsgCosts::default(),
        }
    }

    fn key(&self, target: u32) -> SegKey {
        SegKey { rank: target, id: self.id }
    }

    /// Software path of one emulated active-message RMA op: messaging
    /// overhead + matching + target-agent processing.
    fn charge_agent_path(&self) {
        self.ep.charge(self.costs.sw_ns + self.costs.match_ns + self.costs.agent_ns);
    }

    /// One-sided put: header + payload through the messaging path, applied
    /// by the (emulated) target agent.
    pub fn put(&self, origin: &[u8], target: u32, offset: usize) {
        self.charge_agent_path();
        self.ep.put_implicit(self.key(target), offset, origin).expect("win22 put failed");
    }

    /// One-sided get: request message + reply through the agent.
    pub fn get(&self, dst: &mut [u8], target: u32, offset: usize) {
        self.charge_agent_path();
        // The request/response round trip: one extra base latency.
        let t = self.ep.transport_to(target);
        self.ep.charge(self.ep.fabric().model().put_latency(t, 0));
        self.ep.get_implicit(self.key(target), offset, dst).expect("win22 get failed");
    }

    /// Accumulate (sum of u64 elements) through the agent.
    pub fn accumulate_sum_u64(&self, origin: &[u64], target: u32, offset: usize) {
        self.charge_agent_path();
        for (i, v) in origin.iter().enumerate() {
            self.seg_apply_add(target, offset + i * 8, *v);
        }
    }

    fn seg_apply_add(&self, target: u32, off: usize, v: u64) {
        self.ep
            .amo_implicit(self.key(target), off, fompi_fabric::AmoOp::Add, v)
            .expect("win22 accumulate failed");
    }

    /// MPI-2.2 fence: flush + heavyweight barrier (the implementation the
    /// paper measures is "relatively untuned": extra collective overhead
    /// per fence).
    pub fn fence(&self) {
        self.ep.gsync();
        // Untuned implementations add an alltoall-like counter exchange to
        // know how many ops target each rank.
        self.ep.charge(self.costs.agent_ns);
        self.coll.barrier(&self.ep);
        self.coll.barrier(&self.ep);
    }

    /// Passive lock: a request/grant round trip with the target agent.
    pub fn lock(&self, target: u32) {
        self.charge_agent_path();
        let t = self.ep.transport_to(target);
        let m = self.ep.fabric().model();
        self.ep.charge(m.put_latency(t, 0) + m.get_latency(t, 0));
    }

    /// Passive unlock: completes queued ops, releases via the agent.
    pub fn unlock(&self, target: u32) {
        self.ep.flush_target(target);
        self.charge_agent_path();
        let t = self.ep.transport_to(target);
        self.ep.charge(self.ep.fabric().model().put_latency(t, 0));
    }

    /// Local window size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Read local window memory.
    pub fn read_local(&self, off: usize, dst: &mut [u8]) {
        self.seg.read(off, dst);
    }

    /// Write local window memory.
    pub fn write_local(&self, off: usize, src: &[u8]) {
        self.seg.write(off, src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_runtime::Universe;

    #[test]
    fn put_roundtrip_with_fence() {
        let got = Universe::new(4).node_size(2).run(|ctx| {
            let win = Win22::allocate(ctx, 64);
            win.fence();
            let next = (ctx.rank() + 1) % 4;
            win.put(&[ctx.rank() as u8 + 1; 8], next, 0);
            win.fence();
            let mut b = [0u8; 8];
            win.read_local(0, &mut b);
            b[0]
        });
        assert_eq!(got, vec![4, 1, 2, 3]);
    }

    #[test]
    fn agent_path_much_slower_than_fompi_put() {
        // The point of this baseline: one Win22 put costs ≳ 7 µs of software
        // path before any network time.
        let times = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win22::allocate(ctx, 64);
            win.fence();
            let t0 = ctx.now();
            if ctx.rank() == 0 {
                win.put(&[1u8; 8], 1, 0);
            }
            let dt = ctx.now() - t0;
            win.fence();
            dt
        });
        assert!(times[0] > 7_000.0, "agent path too cheap: {} ns", times[0]);
    }

    #[test]
    fn accumulate_sums() {
        let got = Universe::new(3).node_size(3).run(|ctx| {
            let win = Win22::allocate(ctx, 32);
            win.fence();
            win.accumulate_sum_u64(&[ctx.rank() as u64 + 1], 0, 0);
            win.fence();
            let mut b = [0u8; 8];
            win.read_local(0, &mut b);
            u64::from_le_bytes(b)
        });
        assert_eq!(got[0], 6);
    }

    #[test]
    fn lock_unlock_get() {
        let got = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win22::allocate(ctx, 16);
            win.write_local(0, &[ctx.rank() as u8 + 40; 16]);
            ctx.barrier();
            let other = (ctx.rank() + 1) % 2;
            win.lock(other);
            let mut b = [0u8; 8];
            win.get(&mut b, other, 0);
            win.unlock(other);
            b[0]
        });
        assert_eq!(got, vec![41, 40]);
    }
}
