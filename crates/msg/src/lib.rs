//! # fompi-msg — the message-passing baseline (Cray MPI-1 / MPI-2.2 stand-in)
//!
//! The paper compares foMPI against Cray's MPI-1 point-to-point and its
//! (relatively untuned) MPI-2.2 one-sided implementation. This crate
//! implements that baseline *for real* over the same fabric, because the
//! comparison hinges on mechanisms, not constants:
//!
//! * **eager protocol** (small messages): the payload travels immediately
//!   and, if no receive is posted, is buffered at the receiver — costing an
//!   extra copy and receiver-side memory (the paper's "time / energy /
//!   space" motivation, §1). [`MsgEngine::buffered_high_water`] exposes the
//!   buffering footprint.
//! * **rendezvous protocol** (large messages): an RTS carries a source
//!   descriptor; the receiver pulls the payload with an RDMA get and
//!   signals FIN — synchronising the sender.
//! * **tag matching**: posted-receive and unexpected queues with
//!   ANY_SOURCE/ANY_TAG wildcards, FIFO per pair, charged a per-message
//!   matching overhead.
//! * **collectives**: dissemination barrier, NBX-style nonblocking barrier
//!   ([`coll::IBarrier`]), pairwise alltoall, ring reduce_scatter,
//!   recursive-doubling allreduce, allgather — the building blocks of the
//!   DSDE comparison (Figure 7b).
//! * **MPI-2.2-style one-sided** ([`win22::Win22`]): RMA layered over the
//!   messaging engine with a software-agent charge per operation — the
//!   high-latency curve of Figures 4/5.
//! * **notified-access channels** ([`channel`]): the inverse comparison —
//!   an SPSC producer-consumer channel built purely on one-sided notified
//!   operations (`put_notify` + credit-return `accumulate_notify`),
//!   showing message-passing semantics recovered *from* scalable RMA.

pub mod channel;
pub mod coll;
pub mod p2p;
pub mod queue;
pub mod win22;

pub use p2p::{RecvRequest, SendRequest, Status};
pub use queue::{MsgEngine, ANY_SOURCE, ANY_TAG};
pub use win22::Win22;

use fompi_fabric::Endpoint;
use fompi_runtime::RankCtx;
use std::rc::Rc;
use std::sync::Arc;

/// Software cost constants for the messaging layer (ns). Defaults model
/// Cray MPI on Gemini (§3.1: MPI-1 small-message latency ≈ 2–3 µs where
/// the raw put costs ≈ 1 µs).
#[derive(Debug, Clone)]
pub struct MsgCosts {
    /// Per-call software overhead (argument checking, protocol selection).
    pub sw_ns: f64,
    /// Tag-matching cost per message at the receiver.
    pub match_ns: f64,
    /// Eager/rendezvous protocol switch threshold in bytes.
    pub eager_threshold: usize,
    /// Envelope (header) bytes travelling with each message.
    pub header_bytes: usize,
    /// Software-agent cost for the MPI-2.2 one-sided emulation: the target
    /// side of each RMA op runs through the messaging stack.
    pub agent_ns: f64,
}

impl Default for MsgCosts {
    fn default() -> Self {
        Self {
            sw_ns: 400.0,
            match_ns: 300.0,
            eager_threshold: 8192,
            header_bytes: 32,
            agent_ns: 7_000.0,
        }
    }
}

/// A communicator handle: one per rank, bound to the shared [`MsgEngine`].
pub struct Comm {
    pub(crate) ep: Rc<Endpoint>,
    pub(crate) engine: Arc<MsgEngine>,
    pub(crate) costs: MsgCosts,
    pub(crate) rank: u32,
    pub(crate) size: usize,
}

impl Comm {
    /// Bind `ctx` to `engine` (the engine must have been created for the
    /// same rank count).
    pub fn attach(ctx: &RankCtx, engine: &Arc<MsgEngine>) -> Comm {
        assert_eq!(engine.size(), ctx.size(), "engine sized for a different universe");
        Comm {
            ep: ctx.ep_rc(),
            engine: engine.clone(),
            costs: MsgCosts::default(),
            rank: ctx.rank(),
            size: ctx.size(),
        }
    }

    /// Override the cost constants.
    pub fn with_costs(mut self, costs: MsgCosts) -> Comm {
        self.costs = costs;
        self
    }

    /// This rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The underlying endpoint (virtual clock access).
    pub fn ep(&self) -> &Endpoint {
        &self.ep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_runtime::Universe;

    fn run_msg<T: Send>(p: usize, node: usize, f: impl Fn(&Comm) -> T + Send + Sync) -> Vec<T> {
        let engine = MsgEngine::new(p);
        Universe::new(p).node_size(node).run(move |ctx| {
            let comm = Comm::attach(ctx, &engine);
            f(&comm)
        })
    }

    #[test]
    fn eager_send_recv() {
        let got = run_msg(2, 1, |c| {
            if c.rank() == 0 {
                c.send(&[1, 2, 3, 4], 1, 7).unwrap();
                Vec::new()
            } else {
                let mut buf = [0u8; 4];
                let st = c.recv(&mut buf, ANY_SOURCE, 7).unwrap();
                assert_eq!(st.src, 0);
                assert_eq!(st.len, 4);
                buf.to_vec()
            }
        });
        assert_eq!(got[1], vec![1, 2, 3, 4]);
    }

    #[test]
    fn rendezvous_large_message() {
        let n = 100_000; // > eager threshold
        let got = run_msg(2, 1, |c| {
            if c.rank() == 0 {
                let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
                c.send(&data, 1, 0).unwrap();
                0u64
            } else {
                let mut buf = vec![0u8; n];
                c.recv(&mut buf, 0, 0).unwrap();
                buf.iter().map(|&b| b as u64).sum()
            }
        });
        let expect: u64 = (0..n).map(|i| (i % 251) as u64).sum();
        assert_eq!(got[1], expect);
    }

    #[test]
    fn posted_before_send_fast_path() {
        let got = run_msg(2, 2, |c| {
            if c.rank() == 1 {
                let mut buf = [0u8; 8];
                // Post first (the sender waits on a barrier).
                let req = c.irecv(&mut buf, 0, 5).unwrap();
                c.barrier();
                req.wait(c.ep());
                buf[0]
            } else {
                c.barrier();
                c.send(&[9u8; 8], 1, 5).unwrap();
                0
            }
        });
        assert_eq!(got[1], 9);
    }

    #[test]
    fn wildcard_tag_and_source() {
        let got = run_msg(3, 1, |c| {
            if c.rank() > 0 {
                c.send(&[c.rank() as u8], 0, c.rank()).unwrap();
                0u8
            } else {
                let mut sum = 0;
                for _ in 0..2 {
                    let mut b = [0u8; 1];
                    c.recv(&mut b, ANY_SOURCE, ANY_TAG).unwrap();
                    sum += b[0];
                }
                sum
            }
        });
        assert_eq!(got[0], 3);
    }

    #[test]
    fn message_ordering_per_pair() {
        let got = run_msg(2, 1, |c| {
            if c.rank() == 0 {
                for i in 0..20u8 {
                    c.send(&[i], 1, 3).unwrap();
                }
                vec![]
            } else {
                let mut got = Vec::new();
                for _ in 0..20 {
                    let mut b = [0u8; 1];
                    c.recv(&mut b, 0, 3).unwrap();
                    got.push(b[0]);
                }
                got
            }
        });
        assert_eq!(got[1], (0..20).collect::<Vec<u8>>());
    }

    #[test]
    fn eager_buffering_counts_memory() {
        let engine = MsgEngine::new(2);
        let eng2 = engine.clone();
        Universe::new(2).node_size(1).run(move |ctx| {
            let c = Comm::attach(ctx, &eng2);
            if c.rank() == 0 {
                for _ in 0..4 {
                    c.send(&[0u8; 1024], 1, 0).unwrap();
                }
                c.barrier();
            } else {
                c.barrier(); // let all sends land unexpected
                let mut b = vec![0u8; 1024];
                for _ in 0..4 {
                    c.recv(&mut b, 0, 0).unwrap();
                }
            }
        });
        assert!(engine.buffered_high_water() >= 4 * 1024);
    }

    #[test]
    fn self_send_and_recv() {
        let got = run_msg(2, 1, |c| {
            // Send to self, then receive it (eager buffering path).
            c.send(&[c.rank() as u8 + 50], c.rank(), 9).unwrap();
            let mut b = [0u8; 1];
            let st = c.recv(&mut b, c.rank(), 9).unwrap();
            assert_eq!(st.src, c.rank());
            b[0]
        });
        assert_eq!(got, vec![50, 51]);
    }

    #[test]
    fn zero_byte_messages() {
        let got = run_msg(2, 1, |c| {
            if c.rank() == 0 {
                c.send(&[], 1, 4).unwrap();
                true
            } else {
                let mut b = [0u8; 0];
                let st = c.recv(&mut b, 0, 4).unwrap();
                st.len == 0
            }
        });
        assert!(got.iter().all(|&b| b));
    }

    #[test]
    fn sendrecv_exchange() {
        let got = run_msg(4, 2, |c| {
            let right = (c.rank() + 1) % 4;
            let left = (c.rank() + 3) % 4;
            let mut buf = [0u8; 1];
            c.sendrecv(&[c.rank() as u8 + 1], right, 0, &mut buf, left, 0).unwrap();
            buf[0]
        });
        assert_eq!(got, vec![4, 1, 2, 3]);
    }
}
