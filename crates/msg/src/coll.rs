//! Collectives over point-to-point messaging.
//!
//! These are the baseline algorithms the DSDE comparison (Figure 7b) pits
//! against RMA: personalized alltoall, ring reduce_scatter, and the
//! NBX nonblocking-consensus barrier of Hoefler, Siebert & Lumsdaine
//! (PPoPP'10) — "proved optimal" per §4.2. Plus the dissemination barrier
//! and recursive reduce/broadcast trees used throughout.

use crate::p2p::SendRequest;
use crate::Comm;

/// Tag space reserved for collective internals.
const COLL_TAG: u32 = 0xC011_0000;
/// Tag space reserved for nonblocking barriers (caller supplies an epoch).
const IBARRIER_TAG: u32 = 0xB0_0000;

impl Comm {
    /// Dissemination barrier: ⌈log2 p⌉ rounds of one small message each.
    pub fn barrier(&self) {
        let p = self.size as u32;
        if p <= 1 {
            return;
        }
        let mut r = 0;
        let mut dist = 1;
        while dist < p {
            let dst = (self.rank + dist) % p;
            let src = (self.rank + p - dist) % p;
            let mut token = [0u8; 1];
            self.sendrecv(&[1], dst, COLL_TAG + r, &mut token, src, COLL_TAG + r)
                .expect("barrier exchange failed");
            dist *= 2;
            r += 1;
        }
    }

    /// Personalized all-to-all of `block` bytes per peer. `send.len()` and
    /// `recv.len()` must equal `p * block`. Pairwise-exchange algorithm
    /// (p − 1 rounds).
    pub fn alltoall(&self, send: &[u8], recv: &mut [u8], block: usize) {
        let p = self.size;
        assert_eq!(send.len(), p * block);
        assert_eq!(recv.len(), p * block);
        let me = self.rank as usize;
        recv[me * block..(me + 1) * block].copy_from_slice(&send[me * block..(me + 1) * block]);
        for i in 1..p {
            let dst = (me + i) % p;
            let src = (me + p - i) % p;
            self.sendrecv(
                &send[dst * block..(dst + 1) * block],
                dst as u32,
                COLL_TAG + 64 + i as u32,
                &mut recv[src * block..(src + 1) * block],
                src as u32,
                COLL_TAG + 64 + i as u32,
            )
            .expect("alltoall exchange failed");
        }
    }

    /// Allgather of equal `block`-byte contributions (ring algorithm,
    /// p − 1 steps).
    pub fn allgather(&self, send: &[u8], recv: &mut [u8]) {
        let p = self.size;
        let block = send.len();
        assert_eq!(recv.len(), p * block);
        let me = self.rank as usize;
        recv[me * block..(me + 1) * block].copy_from_slice(send);
        let right = ((me + 1) % p) as u32;
        let left = ((me + p - 1) % p) as u32;
        for s in 0..p - 1 {
            let send_idx = (me + p - s) % p;
            let recv_idx = (me + p - s - 1) % p;
            let chunk = recv[send_idx * block..(send_idx + 1) * block].to_vec();
            let mut tmp = vec![0u8; block];
            self.sendrecv(
                &chunk,
                right,
                COLL_TAG + 128 + s as u32,
                &mut tmp,
                left,
                COLL_TAG + 128 + s as u32,
            )
            .expect("allgather exchange failed");
            recv[recv_idx * block..(recv_idx + 1) * block].copy_from_slice(&tmp);
        }
    }

    /// Allreduce over f64 vectors: binomial-tree reduce to rank 0, then
    /// binomial broadcast (O(log p) rounds, any p).
    pub fn allreduce_f64(&self, vals: &mut [f64], op: impl Fn(f64, f64) -> f64 + Copy) {
        let p = self.size as u32;
        let me = self.rank;
        // Reduce phase.
        let mut dist = 1;
        while dist < p {
            if me.is_multiple_of(2 * dist) {
                let src = me + dist;
                if src < p {
                    let mut buf = vec![0u8; vals.len() * 8];
                    self.recv(&mut buf, src, COLL_TAG + 256).expect("reduce recv");
                    for (i, v) in vals.iter_mut().enumerate() {
                        let o = f64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
                        *v = op(*v, o);
                    }
                }
            } else if me % (2 * dist) == dist {
                let dst = me - dist;
                let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
                self.send(&bytes, dst, COLL_TAG + 256).expect("reduce send");
                break;
            }
            dist *= 2;
        }
        // Broadcast phase (mirror).
        let rounds = 32 - (p - 1).leading_zeros();
        for r in (0..rounds).rev() {
            let dist = 1 << r;
            if me.is_multiple_of(2 * dist) {
                let dst = me + dist;
                if dst < p {
                    let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
                    self.send(&bytes, dst, COLL_TAG + 257).expect("bcast send");
                }
            } else if me % (2 * dist) == dist {
                let mut buf = vec![0u8; vals.len() * 8];
                self.recv(&mut buf, me - dist, COLL_TAG + 257).expect("bcast recv");
                for (i, v) in vals.iter_mut().enumerate() {
                    *v = f64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
                }
            }
        }
    }

    /// Reduce_scatter_block over u64 sums: input is `p` blocks of
    /// `block_len` u64 each; rank r receives the element-wise sum of every
    /// rank's block r. Ring algorithm, p − 1 steps.
    pub fn reduce_scatter_u64(&self, send: &[u64], out: &mut [u64]) {
        let p = self.size;
        let block = out.len();
        assert_eq!(send.len(), p * block);
        let me = self.rank as usize;
        if p == 1 {
            out.copy_from_slice(send);
            return;
        }
        let right = ((me + 1) % p) as u32;
        let left = ((me + p - 1) % p) as u32;
        // Block b's partial starts at rank (b+1) mod p and flows rightward,
        // each visitor adding its contribution; it reaches its owner b
        // after p-1 hops. At step k, rank r forwards the partial for block
        // (r-k) mod p and receives the partial for block (r-1-k) mod p.
        let mut acc: Vec<u64> = Vec::new();
        for k in 1..p {
            let b_send = (me + p - k) % p;
            let payload: Vec<u64> = if k == 1 {
                send[b_send * block..(b_send + 1) * block].to_vec()
            } else {
                acc.clone()
            };
            let bytes: Vec<u8> = payload.iter().flat_map(|v| v.to_le_bytes()).collect();
            let mut buf = vec![0u8; block * 8];
            self.sendrecv(
                &bytes,
                right,
                COLL_TAG + 512 + k as u32,
                &mut buf,
                left,
                COLL_TAG + 512 + k as u32,
            )
            .expect("reduce_scatter exchange failed");
            let b_recv = (me + 2 * p - 1 - k) % p;
            acc = (0..block)
                .map(|i| {
                    u64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap())
                        .wrapping_add(send[b_recv * block + i])
                })
                .collect();
        }
        out.copy_from_slice(&acc);
    }
}

impl Comm {
    /// Binomial-tree broadcast from `root` (MPI_Bcast).
    pub fn bcast(&self, buf: &mut [u8], root: u32) {
        let p = self.size as u32;
        if p <= 1 {
            return;
        }
        // Re-root the tree: virtual rank 0 is `root`.
        let vrank = (self.rank + p - root) % p;
        let rounds = 32 - (p - 1).leading_zeros();
        for r in (0..rounds).rev() {
            let dist = 1 << r;
            if vrank.is_multiple_of(2 * dist) {
                let vdst = vrank + dist;
                if vdst < p {
                    let dst = (vdst + root) % p;
                    self.send(buf, dst, COLL_TAG + 300 + r).expect("bcast send");
                }
            } else if vrank % (2 * dist) == dist {
                let src = ((vrank - dist) + root) % p;
                self.recv(buf, src, COLL_TAG + 300 + r).expect("bcast recv");
            }
        }
    }

    /// Gather equal-sized contributions at `root` (MPI_Gather). `recv` is
    /// only written at the root (must hold `p * send.len()` bytes there).
    pub fn gather(&self, send: &[u8], recv: &mut [u8], root: u32) {
        let p = self.size;
        if self.rank == root {
            assert_eq!(recv.len(), p * send.len());
            let me = self.rank as usize;
            recv[me * send.len()..(me + 1) * send.len()].copy_from_slice(send);
            for _ in 0..p - 1 {
                let block = send.len();
                let mut tmp = vec![0u8; block];
                let st = self
                    .recv(&mut tmp, crate::queue::ANY_SOURCE, COLL_TAG + 400)
                    .expect("gather recv");
                recv[st.src as usize * block..(st.src as usize + 1) * block].copy_from_slice(&tmp);
            }
        } else {
            self.send(send, root, COLL_TAG + 400).expect("gather send");
        }
    }

    /// Inclusive prefix sum over u64 (MPI_Scan with MPI_SUM): rank r
    /// receives the sum of contributions from ranks 0..=r.
    pub fn scan_sum_u64(&self, v: u64) -> u64 {
        let p = self.size as u32;
        let me = self.rank;
        let mut acc = v;
        let mut dist = 1;
        // Hillis-Steele: receive from me-dist, send to me+dist.
        while dist < p {
            let mut reqs = None;
            if me + dist < p {
                reqs = Some(
                    self.isend(&acc.to_le_bytes(), me + dist, COLL_TAG + 500 + dist)
                        .expect("scan send"),
                );
            }
            if me >= dist {
                let mut b = [0u8; 8];
                self.recv(&mut b, me - dist, COLL_TAG + 500 + dist).expect("scan recv");
                acc = acc.wrapping_add(u64::from_le_bytes(b));
            }
            if let Some(r) = reqs {
                r.wait(self.ep());
            }
            dist *= 2;
        }
        acc
    }
}

/// Nonblocking dissemination barrier (MPI_Ibarrier), the core of the NBX
/// dynamic-sparse-data-exchange protocol. Progress is made by polling
/// [`IBarrier::test`]; distinct concurrent barriers need distinct `epoch`s.
pub struct IBarrier {
    round: u32,
    rounds: u32,
    dist: u32,
    sent: bool,
    done: bool,
    tag_base: u32,
    pending_send: Vec<SendRequest>,
}

impl IBarrier {
    /// Begin a nonblocking barrier for `epoch`.
    pub fn start(comm: &Comm, epoch: u32) -> IBarrier {
        let p = comm.size() as u32;
        let rounds = if p <= 1 { 0 } else { 32 - (p - 1).leading_zeros() };
        IBarrier {
            round: 0,
            rounds,
            dist: 1,
            sent: false,
            done: rounds == 0,
            tag_base: IBARRIER_TAG + epoch * 64,
            pending_send: Vec::new(),
        }
    }

    /// Advance the barrier; returns true once complete.
    pub fn test(&mut self, comm: &Comm) -> bool {
        let p = comm.size() as u32;
        while !self.done {
            if !self.sent {
                let dst = (comm.rank() + self.dist) % p;
                let req = comm.isend(&[1], dst, self.tag_base + self.round).expect("ibarrier send");
                self.pending_send.push(req);
                self.sent = true;
            }
            let src = (comm.rank() + p - self.dist) % p;
            if comm.iprobe(src, self.tag_base + self.round).is_some() {
                let mut token = [0u8; 1];
                comm.recv(&mut token, src, self.tag_base + self.round).expect("ibarrier recv");
                self.round += 1;
                self.dist *= 2;
                self.sent = false;
                if self.round == self.rounds {
                    self.done = true;
                }
            } else {
                return false;
            }
        }
        true
    }

    /// Blocking completion.
    pub fn wait(&mut self, comm: &Comm) {
        while !self.test(comm) {
            std::thread::yield_now();
        }
    }
}

/// Drain any stray messages with a given tag (test hygiene helper).
pub fn drain_tag(comm: &Comm, tag: u32) {
    while comm.iprobe(crate::queue::ANY_SOURCE, tag).is_some() {
        let mut sink = vec![0u8; 1 << 16];
        comm.recv(&mut sink, crate::queue::ANY_SOURCE, tag).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::MsgEngine;
    use fompi_runtime::Universe;

    fn run<T: Send>(p: usize, f: impl Fn(&Comm) -> T + Send + Sync) -> Vec<T> {
        let engine = MsgEngine::new(p);
        Universe::new(p).node_size(2).run(move |ctx| f(&Comm::attach(ctx, &engine)))
    }

    #[test]
    fn barrier_completes() {
        let got = run(5, |c| {
            for _ in 0..3 {
                c.barrier();
            }
            true
        });
        assert!(got.iter().all(|&b| b));
    }

    #[test]
    fn alltoall_permutes_blocks() {
        let got = run(4, |c| {
            let p = c.size();
            let send: Vec<u8> =
                (0..p).flat_map(|d| vec![(c.rank() as u8) * 16 + d as u8; 2]).collect();
            let mut recv = vec![0u8; p * 2];
            c.alltoall(&send, &mut recv, 2);
            recv
        });
        for (r, recv) in got.iter().enumerate() {
            for s in 0..4usize {
                assert_eq!(recv[s * 2], (s as u8) * 16 + r as u8, "rank {r} from {s}");
            }
        }
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        let got = run(5, |c| {
            let mut recv = vec![0u8; 5 * 3];
            c.allgather(&[c.rank() as u8 + 1; 3], &mut recv);
            recv
        });
        for recv in got {
            for s in 0..5usize {
                assert_eq!(&recv[s * 3..s * 3 + 3], &[s as u8 + 1; 3]);
            }
        }
    }

    #[test]
    fn allreduce_f64_sums() {
        let got = run(6, |c| {
            let mut v = [c.rank() as f64, 1.0];
            c.allreduce_f64(&mut v, |a, b| a + b);
            v
        });
        for v in got {
            assert_eq!(v[0], 15.0);
            assert_eq!(v[1], 6.0);
        }
    }

    #[test]
    fn allreduce_f64_non_power_of_two() {
        let got = run(7, |c| {
            let mut v = [1.0f64];
            c.allreduce_f64(&mut v, |a, b| a + b);
            v[0]
        });
        assert!(got.iter().all(|&v| v == 7.0));
    }

    #[test]
    fn reduce_scatter_sums_blocks() {
        let got = run(4, |c| {
            let p = c.size();
            // Rank r contributes block j = [r + 10*j, r + 10*j] (len 2).
            let send: Vec<u64> =
                (0..p).flat_map(|j| vec![c.rank() as u64 + 10 * j as u64; 2]).collect();
            let mut out = vec![0u64; 2];
            c.reduce_scatter_u64(&send, &mut out);
            out
        });
        // Block j sum over r: (0+1+2+3) + 4*(10 j) = 6 + 40 j.
        for (j, out) in got.iter().enumerate() {
            assert_eq!(out[0], 6 + 40 * j as u64, "block {j}");
            assert_eq!(out[1], 6 + 40 * j as u64);
        }
    }

    #[test]
    fn bcast_any_root() {
        for root in [0u32, 2, 4] {
            let got = run(5, move |c| {
                let mut buf = if c.rank() == root { vec![9u8, 8, 7] } else { vec![0u8; 3] };
                c.bcast(&mut buf, root);
                buf
            });
            assert!(got.iter().all(|b| b == &[9, 8, 7]), "root {root}");
        }
    }

    #[test]
    fn gather_collects_at_root() {
        let got = run(4, |c| {
            let mine = [c.rank() as u8 * 3; 2];
            let mut recv = vec![0u8; if c.rank() == 1 { 8 } else { 0 }];
            c.gather(&mine, &mut recv, 1);
            recv
        });
        assert_eq!(got[1], vec![0, 0, 3, 3, 6, 6, 9, 9]);
        assert!(got[0].is_empty());
    }

    #[test]
    fn scan_prefix_sums() {
        let got = run(6, |c| c.scan_sum_u64(c.rank() as u64 + 1));
        // rank r gets 1+2+...+(r+1).
        for (r, v) in got.iter().enumerate() {
            assert_eq!(*v, ((r + 1) * (r + 2) / 2) as u64);
        }
    }

    #[test]
    fn ibarrier_requires_all_participants() {
        let got = run(4, |c| {
            if c.rank() == 3 {
                // Latecomer: delay joining.
                c.ep().charge(1.0);
            }
            let mut ib = IBarrier::start(c, 0);
            ib.wait(c);
            true
        });
        assert!(got.iter().all(|&b| b));
    }

    #[test]
    fn barrier_virtual_time_scales_with_log_p() {
        let t4 = run(4, |c| {
            let t0 = c.ep().clock().now();
            c.barrier();
            c.ep().clock().now() - t0
        });
        let t16 = run(16, |c| {
            let t0 = c.ep().clock().now();
            c.barrier();
            c.ep().clock().now() - t0
        });
        let m4 = t4.iter().cloned().fold(0.0, f64::max);
        let m16 = t16.iter().cloned().fold(0.0, f64::max);
        assert!(m16 > m4, "barrier should cost more at higher p");
        assert!(m16 < m4 * 6.0, "barrier should scale ~log p, not linearly");
    }
}
