//! Property tests for the message-passing layer: collectives and matching
//! must be correct for arbitrary sizes, rank counts and payloads.

use fompi_fabric::CostModel;
use fompi_msg::{Comm, MsgEngine};
use fompi_runtime::Universe;
use proptest::prelude::*;

fn run_msg<T: Send>(p: usize, f: impl Fn(&Comm) -> T + Send + Sync) -> Vec<T> {
    let engine = MsgEngine::new(p);
    Universe::new(p)
        .node_size(2)
        .model(CostModel::free())
        .run(move |ctx| f(&Comm::attach(ctx, &engine)))
}

proptest! {
    // Thread-spawning tests: keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any payload size crosses the eager/rendezvous boundary intact.
    #[test]
    fn send_recv_any_size(len in 0usize..40_000, seed in any::<u64>()) {
        let data: Vec<u8> = (0..len).map(|i| ((seed as usize + i) % 251) as u8).collect();
        let d2 = data.clone();
        let got = run_msg(2, move |c| {
            if c.rank() == 0 {
                c.send(&d2, 1, 3).unwrap();
                Vec::new()
            } else {
                let mut buf = vec![0u8; d2.len()];
                c.recv(&mut buf, 0, 3).unwrap();
                buf
            }
        });
        prop_assert_eq!(&got[1], &data);
    }

    /// alltoall is a permutation: every (src, dst) block arrives exactly
    /// once with the right contents.
    #[test]
    fn alltoall_permutation(p in 2usize..6, block in 1usize..40) {
        let got = run_msg(p, move |c| {
            let me = c.rank() as usize;
            let send: Vec<u8> = (0..p)
                .flat_map(|d| vec![(me * 31 + d * 7) as u8; block])
                .collect();
            let mut recv = vec![0u8; p * block];
            c.alltoall(&send, &mut recv, block);
            recv
        });
        for (dst, recv) in got.iter().enumerate() {
            for src in 0..p {
                let expect = (src * 31 + dst * 7) as u8;
                prop_assert!(recv[src * block..(src + 1) * block].iter().all(|&b| b == expect));
            }
        }
    }

    /// reduce_scatter_u64 computes exact block sums for any p/block size.
    #[test]
    fn reduce_scatter_sums(p in 2usize..6, block in 1usize..8, seed in any::<u32>()) {
        let got = run_msg(p, move |c| {
            let me = c.rank() as u64;
            let send: Vec<u64> = (0..p * block)
                .map(|i| me * 1000 + i as u64 + seed as u64 % 17)
                .collect();
            let mut out = vec![0u64; block];
            c.reduce_scatter_u64(&send, &mut out);
            out
        });
        for (r, out) in got.iter().enumerate() {
            for j in 0..block {
                let idx = r * block + j;
                let expect: u64 = (0..p as u64)
                    .map(|s| s * 1000 + idx as u64 + seed as u64 % 17)
                    .sum();
                prop_assert_eq!(out[j], expect, "rank {} elem {}", r, j);
            }
        }
    }

    /// allreduce_f64 sum equals the serial sum for any rank count.
    #[test]
    fn allreduce_matches_serial(p in 2usize..8, vals in proptest::collection::vec(-1e6f64..1e6, 1..5)) {
        let v2 = vals.clone();
        let got = run_msg(p, move |c| {
            let mut mine: Vec<f64> = v2.iter().map(|v| v + c.rank() as f64).collect();
            c.allreduce_f64(&mut mine, |a, b| a + b);
            mine
        });
        // All ranks agree.
        for other in &got[1..] {
            prop_assert_eq!(other, &got[0]);
        }
        // And the total is a permutation-sum of the inputs (tolerant).
        for (i, &v) in got[0].iter().enumerate() {
            let expect: f64 = (0..p).map(|r| vals[i] + r as f64).sum();
            prop_assert!((v - expect).abs() < 1e-6 * expect.abs().max(1.0));
        }
    }

    /// Messages with distinct tags never cross-match.
    #[test]
    fn tags_isolate_flows(n in 1usize..20) {
        let got = run_msg(2, move |c| {
            if c.rank() == 0 {
                // Interleave two tag flows.
                for i in 0..n {
                    c.send(&[i as u8], 1, 100).unwrap();
                    c.send(&[i as u8 | 0x80], 1, 200).unwrap();
                }
                (Vec::new(), Vec::new())
            } else {
                let mut a = Vec::new();
                let mut b = Vec::new();
                for _ in 0..n {
                    let mut buf = [0u8; 1];
                    c.recv(&mut buf, 0, 200).unwrap();
                    b.push(buf[0]);
                    c.recv(&mut buf, 0, 100).unwrap();
                    a.push(buf[0]);
                }
                (a, b)
            }
        });
        let (a, b) = &got[1];
        prop_assert_eq!(a, &(0..n as u8).collect::<Vec<_>>());
        prop_assert_eq!(b, &(0..n as u8).map(|i| i | 0x80).collect::<Vec<_>>());
    }
}
