//! Randomized tests for the message-passing layer (seeded in-repo PRNG):
//! collectives and matching must be correct for arbitrary sizes, rank
//! counts and payloads.

use fompi_fabric::rng::Rng;
use fompi_fabric::CostModel;
use fompi_msg::{Comm, MsgEngine};
use fompi_runtime::Universe;

fn run_msg<T: Send>(p: usize, f: impl Fn(&Comm) -> T + Send + Sync) -> Vec<T> {
    let engine = MsgEngine::new(p);
    Universe::new(p)
        .node_size(2)
        .model(CostModel::free())
        .run(move |ctx| f(&Comm::attach(ctx, &engine)))
}

/// Any payload size crosses the eager/rendezvous boundary intact.
#[test]
fn send_recv_any_size() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0x5E4D_0000 + case);
        let len = rng.range(0, 40_000);
        let seed = rng.next_u64();
        let data: Vec<u8> = (0..len).map(|i| ((seed as usize + i) % 251) as u8).collect();
        let d2 = data.clone();
        let got = run_msg(2, move |c| {
            if c.rank() == 0 {
                c.send(&d2, 1, 3).unwrap();
                Vec::new()
            } else {
                let mut buf = vec![0u8; d2.len()];
                c.recv(&mut buf, 0, 3).unwrap();
                buf
            }
        });
        assert_eq!(got[1], data, "case {case} len {len}");
    }
}

/// alltoall is a permutation: every (src, dst) block arrives exactly once
/// with the right contents.
#[test]
fn alltoall_permutation() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xA220_A110 + case);
        let p = rng.range(2, 6);
        let block = rng.range(1, 40);
        let got = run_msg(p, move |c| {
            let me = c.rank() as usize;
            let send: Vec<u8> = (0..p).flat_map(|d| vec![(me * 31 + d * 7) as u8; block]).collect();
            let mut recv = vec![0u8; p * block];
            c.alltoall(&send, &mut recv, block);
            recv
        });
        for (dst, recv) in got.iter().enumerate() {
            for src in 0..p {
                let expect = (src * 31 + dst * 7) as u8;
                assert!(
                    recv[src * block..(src + 1) * block].iter().all(|&b| b == expect),
                    "case {case} src {src} dst {dst}"
                );
            }
        }
    }
}

/// reduce_scatter_u64 computes exact block sums for any p/block size.
#[test]
fn reduce_scatter_sums() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0x5CA7_7E00 + case);
        let p = rng.range(2, 6);
        let block = rng.range(1, 8);
        let seed = rng.next_u64() as u32;
        let got = run_msg(p, move |c| {
            let me = c.rank() as u64;
            let send: Vec<u64> =
                (0..p * block).map(|i| me * 1000 + i as u64 + seed as u64 % 17).collect();
            let mut out = vec![0u64; block];
            c.reduce_scatter_u64(&send, &mut out);
            out
        });
        for (r, out) in got.iter().enumerate() {
            for (j, &v) in out.iter().enumerate().take(block) {
                let idx = r * block + j;
                let expect: u64 =
                    (0..p as u64).map(|s| s * 1000 + idx as u64 + seed as u64 % 17).sum();
                assert_eq!(v, expect, "case {case} rank {r} elem {j}");
            }
        }
    }
}

/// allreduce_f64 sum equals the serial sum for any rank count.
#[test]
fn allreduce_matches_serial() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xA11_4ED0 + case);
        let p = rng.range(2, 8);
        let vals: Vec<f64> = (0..rng.range(1, 5)).map(|_| (rng.next_f64() - 0.5) * 2e6).collect();
        let v2 = vals.clone();
        let got = run_msg(p, move |c| {
            let mut mine: Vec<f64> = v2.iter().map(|v| v + c.rank() as f64).collect();
            c.allreduce_f64(&mut mine, |a, b| a + b);
            mine
        });
        // All ranks agree.
        for other in &got[1..] {
            assert_eq!(other, &got[0], "case {case}");
        }
        // And the total is a permutation-sum of the inputs (tolerant).
        for (i, &v) in got[0].iter().enumerate() {
            let expect: f64 = (0..p).map(|r| vals[i] + r as f64).sum();
            assert!(
                (v - expect).abs() < 1e-6 * expect.abs().max(1.0),
                "case {case} elem {i}: {v} vs {expect}"
            );
        }
    }
}

/// Messages with distinct tags never cross-match.
#[test]
fn tags_isolate_flows() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0x7A65_0000 + case);
        let n = rng.range(1, 20);
        let got = run_msg(2, move |c| {
            if c.rank() == 0 {
                // Interleave two tag flows.
                for i in 0..n {
                    c.send(&[i as u8], 1, 100).unwrap();
                    c.send(&[i as u8 | 0x80], 1, 200).unwrap();
                }
                (Vec::new(), Vec::new())
            } else {
                let mut a = Vec::new();
                let mut b = Vec::new();
                for _ in 0..n {
                    let mut buf = [0u8; 1];
                    c.recv(&mut buf, 0, 200).unwrap();
                    b.push(buf[0]);
                    c.recv(&mut buf, 0, 100).unwrap();
                    a.push(buf[0]);
                }
                (a, b)
            }
        });
        let (a, b) = &got[1];
        assert_eq!(a, &(0..n as u8).collect::<Vec<_>>(), "case {case}");
        assert_eq!(b, &(0..n as u8).map(|i| i | 0x80).collect::<Vec<_>>(), "case {case}");
    }
}
