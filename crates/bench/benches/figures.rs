//! Wall-clock microbenchmarks — real CPU cost of the hot paths behind each
//! figure, measured with a hand-rolled harness (`std::time::Instant`; no
//! external bench framework, so `cargo bench --offline` works anywhere).
//! These complement the virtual-time harness: the paper's overhead story
//! (173 instructions per put, 78 per flush) is about CPU cost, which this
//! file measures directly on this machine.
//!
//! One section per figure/table:
//!   fig4_put_path      — MPI_Put + flush critical path (per size)
//!   fig5_injection     — put injection only (message-rate numerator)
//!   fig6a_atomics      — accumulate paths (HW AMO vs lock fallback)
//!   fig6b_fence        — fence at small p
//!   fig6c_pscw         — full PSCW cycle at small p
//!   locks              — lock/unlock constants
//!   dtype              — datatype flattening engine
//!   apps               — hashtable insert batch, FFT plane

use fompi::{DataType, LockType, MpiOp, NumKind, Win};
use fompi_apps::{fft, hashtable};
use fompi_runtime::{Group, Universe};
use std::hint::black_box;
use std::time::Instant;

/// Run `f` repeatedly for a fixed wall-clock budget and report mean
/// time/iteration. Two warm-up iterations, then batches until ~200 ms.
fn bench(name: &str, mut f: impl FnMut()) {
    for _ in 0..2 {
        f();
    }
    let budget = std::time::Duration::from_millis(200);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        f();
        iters += 1;
    }
    let per = start.elapsed().as_nanos() as f64 / iters as f64;
    let (val, unit) = if per >= 1e6 {
        (per / 1e6, "ms")
    } else if per >= 1e3 {
        (per / 1e3, "µs")
    } else {
        (per, "ns")
    };
    println!("{name:<40} {val:>10.2} {unit}/iter  ({iters} iters)");
}

fn bench_put_path() {
    for size in [8usize, 4096, 65536] {
        bench(&format!("fig4_put_path/{size}"), || {
            let t = Universe::new(2).node_size(1).run(|ctx| {
                let win = Win::allocate(ctx, size.max(8), 1).unwrap();
                let mut out = 0.0;
                if ctx.rank() == 0 {
                    win.lock(LockType::Exclusive, 1).unwrap();
                    let buf = vec![1u8; size];
                    for _ in 0..16 {
                        win.put(&buf, 1, 0).unwrap();
                        win.flush(1).unwrap();
                    }
                    out = ctx.now();
                    win.unlock(1).unwrap();
                }
                ctx.barrier();
                out
            });
            black_box(t);
        });
    }
}

fn bench_injection() {
    bench("fig5_injection_1000_puts", || {
        let t = Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 8192, 1).unwrap();
            if ctx.rank() == 0 {
                win.lock(LockType::Shared, 1).unwrap();
                let buf = [1u8; 8];
                for i in 0..1000 {
                    win.put(&buf, 1, (i % 1024) * 8).unwrap();
                }
                win.flush(1).unwrap();
                win.unlock(1).unwrap();
            }
            ctx.barrier();
            ctx.now()
        });
        black_box(t);
    });
}

fn bench_atomics() {
    bench("fig6a_atomics/hw_sum_64_elems", || {
        Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 512, 1).unwrap();
            win.fence().unwrap();
            if ctx.rank() == 0 {
                let buf = [0u8; 512];
                win.accumulate(&buf, NumKind::U64, MpiOp::Sum, 1, 0).unwrap();
            }
            win.fence().unwrap();
        });
    });
    bench("fig6a_atomics/fallback_min_64_elems", || {
        Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 512, 1).unwrap();
            win.fence().unwrap();
            if ctx.rank() == 0 {
                let buf = [0u8; 512];
                win.accumulate(&buf, NumKind::I64, MpiOp::Min, 1, 0).unwrap();
            }
            win.fence().unwrap();
        });
    });
}

fn bench_fence() {
    for p in [2usize, 8] {
        bench(&format!("fig6b_fence/p{p}"), || {
            Universe::new(p).node_size(4).run(|ctx| {
                let win = Win::allocate(ctx, 64, 1).unwrap();
                for _ in 0..8 {
                    win.fence().unwrap();
                }
            });
        });
    }
}

fn bench_pscw() {
    bench("fig6c_pscw_cycle_p4", || {
        Universe::new(4).node_size(2).run(|ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            let p = 4u32;
            let me = ctx.rank();
            let g = Group::new([(me + p - 1) % p, (me + 1) % p]);
            for _ in 0..4 {
                win.post(&g).unwrap();
                win.start(&g).unwrap();
                win.complete().unwrap();
                win.wait().unwrap();
            }
        });
    });
}

fn bench_locks() {
    bench("locks_excl_roundtrip", || {
        Universe::new(2).node_size(1).run(|ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            if ctx.rank() == 0 {
                for _ in 0..16 {
                    win.lock(LockType::Exclusive, 1).unwrap();
                    win.unlock(1).unwrap();
                }
            }
            ctx.barrier();
        });
    });
}

fn bench_dtype() {
    let vector = DataType::vector(64, 4, 8, DataType::double());
    bench("dtype_flatten_vector_64x4", || {
        black_box(vector.flatten(black_box(4)));
    });
    let src = vec![0u8; vector.extent() * 4];
    bench("dtype_pack_vector_64x4", || {
        black_box(vector.pack(4, black_box(&src)));
    });
}

fn bench_apps() {
    let cfg =
        hashtable::HtConfig { inserts_per_rank: 64, table_slots: 1024, heap_cells: 1024, seed: 5 };
    bench("apps/fig7a_hashtable_rma_p4", || {
        Universe::new(4).node_size(2).run(|ctx| hashtable::run_rma(ctx, &cfg));
    });
    let fcfg = fft::FftConfig { n: 16, seed: 6 };
    bench("apps/fig7c_fft_rma_p4", || {
        Universe::new(4).node_size(2).run(|ctx| fft::run_rma(ctx, &fcfg));
    });
}

fn main() {
    // `cargo bench` passes harness flags (e.g. --bench); ignore them.
    println!("wall-clock microbenchmarks (mean over ~200 ms per case)\n");
    bench_put_path();
    bench_injection();
    bench_atomics();
    bench_fence();
    bench_pscw();
    bench_locks();
    bench_dtype();
    bench_apps();
}
