//! Model-drift reporting: per-op-class virtual-time costs observed by the
//! fabric telemetry vs the paper's §3 closed-form performance models.
//!
//! The implementation *composes* its costs (software overheads plus
//! injection, transport latency, completion waits), while the paper gives
//! closed forms (Pput = 0.16 ns/B + 1 µs, Pfence = 2.9 µs · log2 p, ...).
//! This module runs a calibration workload with telemetry enabled,
//! aggregates every traced event by class, and reports how far the
//! composed costs drift from the closed forms — the repo's continuous
//! check that refactors do not silently bend the model.

use fompi::{LockType, PaperModel, Win};
use fompi_fabric::telemetry::EventKind;
use fompi_runtime::{Group, Universe};

/// One drift-table row: an op class with at least one observation.
#[derive(Debug, Clone)]
pub struct DriftRow {
    /// Op class name (telemetry event-kind name).
    pub class: &'static str,
    /// Events observed.
    pub ops: u64,
    /// Mean message size over those events (0 for sync classes).
    pub mean_bytes: f64,
    /// Mean observed virtual-time span, ns.
    pub observed_ns: f64,
    /// Paper closed-form prediction, ns.
    pub model_ns: f64,
}

impl DriftRow {
    /// Relative drift of observed vs model, percent (positive = costlier
    /// than the paper's form).
    pub fn drift_pct(&self) -> f64 {
        if self.model_ns == 0.0 {
            0.0
        } else {
            (self.observed_ns / self.model_ns - 1.0) * 100.0
        }
    }
}

/// Number of neighbours used by the calibration PSCW ring.
const PSCW_K: usize = 2;

/// Run the calibration workload at `p` ranks with telemetry forced on and
/// return one row per op class the workload exercises.
///
/// The workload keeps every class's model inputs unambiguous: all locks are
/// exclusive (compare against Plock,excl), AMOs are CAS, the PSCW group is
/// a ring (k = 2), and puts/gets stay below the 4 KiB protocol change.
pub fn collect(p: usize) -> Vec<DriftRow> {
    assert!(p >= 2, "drift calibration needs at least 2 ranks");
    let (_, fabric) = Universe::new(p).node_size(1).trace(1 << 14).launch(|ctx| {
        let win = Win::allocate(ctx, 1 << 16, 1).unwrap();
        let me = ctx.rank();
        let pn = ctx.size() as u32;
        let right = (me + 1) % pn;
        // Fences (Pfence): a few rounds so the mean settles; the last one
        // closes the fence epoch so passive-target locking is legal.
        for _ in 0..3 {
            win.fence().unwrap();
        }
        win.fence_assert(fompi::ASSERT_NOSUCCEED).unwrap();
        // Exclusive lock epoch (Plock,excl / Punlock) with puts and gets
        // (Pput / Pget) completed one flush per batch (Pflush).
        win.lock(LockType::Exclusive, right).unwrap();
        let small = [1u8; 8];
        let big = [2u8; 2048];
        let mut dst = [0u8; 8];
        for i in 0..8 {
            win.put(&small, right, i * 8).unwrap();
        }
        win.put(&big, right, 4096).unwrap();
        win.flush(right).unwrap();
        for _ in 0..4 {
            win.get(&mut dst, right, 0).unwrap();
        }
        win.flush(right).unwrap();
        // A flush with nothing pending — the paper's measurement setup.
        win.flush(right).unwrap();
        win.flush_local(right).unwrap();
        win.unlock(right).unwrap();
        ctx.barrier();
        // Hardware AMOs (PCAS).
        win.lock(LockType::Exclusive, right).unwrap();
        for _ in 0..8 {
            win.compare_and_swap(me as u64, 0, right, 0).unwrap();
        }
        win.unlock(right).unwrap();
        ctx.barrier();
        // PSCW ring, k = 2 (Ppost/Pstart/Pcomplete/Pwait).
        let g = Group::new([(me + pn - 1) % pn, right]);
        for _ in 0..4 {
            win.post(&g).unwrap();
            win.start(&g).unwrap();
            win.put(&small, right, 0).unwrap();
            win.complete().unwrap();
            win.wait().unwrap();
        }
        // lock_all (Plock,shrd) and window sync (Psync).
        win.lock_all().unwrap();
        win.put(&small, right, 0).unwrap();
        win.unlock_all().unwrap();
        for _ in 0..4 {
            win.sync();
        }
        ctx.barrier();
    });
    let m = PaperModel::default();
    let tel = fabric.telemetry();
    let mut rows = Vec::new();
    let mut push = |kind: EventKind, model_of: &dyn Fn(f64) -> f64| {
        let st = tel.stats(kind);
        let ops = st.count();
        if ops == 0 {
            return;
        }
        let mean_bytes = st.bytes() as f64 / ops as f64;
        rows.push(DriftRow {
            class: kind.name(),
            ops,
            mean_bytes,
            observed_ns: st.mean_ns(),
            model_ns: model_of(mean_bytes),
        });
    };
    push(EventKind::Put, &|s| m.put(s as usize));
    push(EventKind::Get, &|s| m.get(s as usize));
    push(EventKind::Amo, &|_| m.cas);
    push(EventKind::Fence, &|_| m.fence(p));
    push(EventKind::Post, &|_| m.post(PSCW_K));
    push(EventKind::Start, &|_| m.start);
    push(EventKind::Complete, &|_| m.post(PSCW_K));
    push(EventKind::WaitEpoch, &|_| m.wait);
    push(EventKind::Lock, &|_| m.lock_excl);
    push(EventKind::Unlock, &|_| m.unlock);
    push(EventKind::LockAll, &|_| m.lock_shared);
    push(EventKind::UnlockAll, &|_| m.unlock);
    push(EventKind::Flush, &|_| m.flush);
    push(EventKind::FlushLocal, &|_| m.flush);
    push(EventKind::WinSync, &|_| m.sync);
    rows
}

/// Burst length used by the batched calibration workload.
const BATCH_N: usize = 8;
/// Per-op payload of the batched calibration workload.
const BATCH_S: usize = 8;

/// Batched-path drift rows: run a burst-heavy workload with issue-side
/// batching armed and compare the observed spans against the closed-form
/// batched small-message model (`PaperModel::put_batched`).
///
/// Two classes come back:
///
/// * `put_batched` — the per-burst `put` span (open → remote completion of
///   the coalesced wire message) vs `Pput,b(n,s) = o + (n-1)·g + Pput(n·s)`;
/// * `batch_flush` — the issue window of a burst (open → retire) vs its
///   injection-side share `o + (n-1)·g`.
///
/// Observed spans also carry the per-op foMPI software overhead the closed
/// forms omit, so expect a positive drift of a few hundred ns per burst —
/// the point of the row is to pin that gap and watch it, like every other
/// class.
pub fn collect_batched(p: usize) -> Vec<DriftRow> {
    assert!(p >= 2, "drift calibration needs at least 2 ranks");
    const BURSTS: usize = 16;
    let (_, fabric) = Universe::new(p).node_size(1).trace(1 << 14).batch(true).launch(|ctx| {
        let win = Win::allocate(ctx, 1 << 16, 1).unwrap();
        let me = ctx.rank();
        let right = (me + 1) % ctx.size() as u32;
        let chunk = [3u8; BATCH_S];
        win.lock(LockType::Exclusive, right).unwrap();
        for b in 0..BURSTS {
            for i in 0..BATCH_N {
                win.put(&chunk, right, (b * BATCH_N + i) * BATCH_S).unwrap();
            }
            // One flush per burst: retires the coalesced descriptor and
            // stamps both the put span and the batch_flush span.
            win.flush(right).unwrap();
        }
        win.unlock(right).unwrap();
        ctx.barrier();
        let _ = me;
    });
    let m = PaperModel::default();
    let tel = fabric.telemetry();
    let mut rows = Vec::new();
    let put = tel.stats(EventKind::Put);
    if put.count() > 0 {
        rows.push(DriftRow {
            class: "put_batched",
            ops: put.count(),
            mean_bytes: put.bytes() as f64 / put.count() as f64,
            observed_ns: put.mean_ns(),
            model_ns: m.put_batched(BATCH_N, BATCH_S),
        });
    }
    let fl = tel.stats(EventKind::BatchFlush);
    if fl.count() > 0 {
        rows.push(DriftRow {
            class: "batch_flush",
            ops: fl.count(),
            mean_bytes: (BATCH_N * BATCH_S) as f64,
            observed_ns: fl.mean_ns(),
            model_ns: m.inject + (BATCH_N - 1) as f64 * m.gap,
        });
    }
    rows
}

/// Render the drift table for terminal output.
pub fn render(rows: &[DriftRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>7} {:>9} {:>13} {:>12} {:>9}\n",
        "class", "ops", "mean B", "observed ns", "model ns", "drift"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>7} {:>9.0} {:>13.1} {:>12.1} {:>+8.1}%\n",
            r.class,
            r.ops,
            r.mean_bytes,
            r.observed_ns,
            r.model_ns,
            r.drift_pct()
        ));
    }
    out
}

/// CSV rows (no header) matching `drift_csv_header`.
pub fn csv_rows(rows: &[DriftRow]) -> Vec<String> {
    rows.iter()
        .map(|r| {
            format!(
                "{},{},{},{},{},{}",
                r.class,
                r.ops,
                r.mean_bytes,
                r.observed_ns,
                r.model_ns,
                r.drift_pct()
            )
        })
        .collect()
}

/// Header for [`csv_rows`].
pub fn csv_header() -> &'static str {
    "class,ops,mean_bytes,observed_ns,model_ns,drift_pct"
}

/// Classes whose observed spans include *waiting for a partner rank*:
/// the waiter's poll loop charges virtual time per iteration, and the
/// iteration count depends on OS thread scheduling — so these rows are
/// not bit-reproducible run to run. The reproduce harness routes them to
/// `results/drift_sched.csv`, keeping `results/drift.csv` byte-stable
/// for the CI results-determinism gate.
pub fn is_schedule_dependent(class: &str) -> bool {
    matches!(class, "post" | "start" | "wait")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_covers_all_modeled_classes() {
        let rows = collect(4);
        let classes: Vec<&str> = rows.iter().map(|r| r.class).collect();
        for want in [
            "put",
            "get",
            "amo",
            "fence",
            "post",
            "start",
            "complete",
            "wait",
            "lock",
            "unlock",
            "lock_all",
            "unlock_all",
            "flush",
            "flush_local",
            "win_sync",
        ] {
            assert!(classes.contains(&want), "missing class {want} in {classes:?}");
        }
        for r in &rows {
            assert!(r.ops > 0);
            assert!(r.observed_ns >= 0.0, "{}: {}", r.class, r.observed_ns);
            assert!(r.model_ns > 0.0, "{}: {}", r.class, r.model_ns);
        }
    }

    #[test]
    fn put_drift_is_moderate() {
        // The fabric charges Blue Waters constants, so blocking put spans
        // must land within 2x of the paper's closed form.
        let rows = collect(2);
        let put = rows.iter().find(|r| r.class == "put").unwrap();
        assert!(
            put.drift_pct().abs() < 100.0,
            "put drift {}% (observed {} vs model {})",
            put.drift_pct(),
            put.observed_ns,
            put.model_ns
        );
    }

    #[test]
    fn batched_calibration_covers_batch_classes() {
        let rows = collect_batched(2);
        let classes: Vec<&str> = rows.iter().map(|r| r.class).collect();
        assert!(classes.contains(&"put_batched"), "{classes:?}");
        assert!(classes.contains(&"batch_flush"), "{classes:?}");
        let put = rows.iter().find(|r| r.class == "put_batched").unwrap();
        // Every burst coalesced fully: one traced put per 8-op burst.
        assert!((put.mean_bytes - 64.0).abs() < 1e-9, "mean_bytes {}", put.mean_bytes);
        // Spans include per-op software overhead on top of the closed
        // form, but stay well under the unbatched cost of the same ops.
        let m = PaperModel::default();
        assert!(put.observed_ns >= put.model_ns - 1e-6);
        assert!(put.observed_ns < m.put_unbatched(8, 8));
    }

    #[test]
    fn render_and_csv_agree_on_rows() {
        let rows = collect(2);
        let table = render(&rows);
        let csv = csv_rows(&rows);
        assert_eq!(csv.len(), rows.len());
        for r in &rows {
            assert!(table.contains(r.class));
        }
        assert!(csv_header().starts_with("class,"));
    }
}
