//! # fompi-bench — the measurement harness behind every figure
//!
//! Small-scale points come from *real execution* of the live
//! implementations on the threaded fabric (virtual-time clocks, §3's
//! methodology: repeat, take the median); large-scale points come from
//! `fompi-simnet`. The `reproduce` binary prints every figure's series
//! side by side with the paper's expectations and writes CSVs into
//! `results/`.
//!
//! Microbenchmarks implemented here (one function per paper benchmark):
//!
//! * [`fig4_latency`] — put/get latency vs size for all five transports
//!   (foMPI, Cray UPC, Cray CAF, Cray MPI-1 ping-pong, Cray MPI-2.2 RMA);
//! * [`fig5_overlap`] / [`fig5_message_rate`] — overlap and rate;
//! * [`fig6a_atomics`] — accelerated SUM vs fallback MIN vs CAS vs UPC;
//! * [`fence_latency`] / [`pscw_latency`] — real-mode points for 6b/6c;
//! * [`fit_models`] — linear fits of the measured series against the
//!   paper's §3 performance functions.

pub mod drift;

use fompi::{LockType, MpiOp, NumKind, Win};
use fompi_msg::{Comm, MsgEngine, Win22};
use fompi_pgas::{Coarray, SharedArray};
use fompi_runtime::{Group, Universe};

/// Transport layers of the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// foMPI MPI-3.0.
    Fompi,
    /// Cray UPC.
    Upc,
    /// Cray Fortran Coarrays.
    Caf,
    /// Cray MPI-1 (Send/Recv ping-pong).
    Mpi1,
    /// Cray MPI-2.2 one-sided.
    Mpi22,
}

impl Layer {
    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            Layer::Fompi => "FOMPI MPI-3.0",
            Layer::Upc => "Cray UPC",
            Layer::Caf => "Cray CAF",
            Layer::Mpi1 => "Cray MPI-1",
            Layer::Mpi22 => "Cray MPI-2.2",
        }
    }
}

/// The standard message-size sweep (8 B … 256 KiB).
pub fn size_sweep() -> Vec<usize> {
    (3..=18).map(|e| 1usize << e).collect()
}

/// Figure 4a/4b/4c: remote put/get latency (ns) at one size over one
/// transport. `intra` selects the XPMEM (same node) path; `get` selects the
/// get direction. Returns the virtual-time latency of one remotely
/// completed operation.
pub fn fig4_latency(layer: Layer, size: usize, intra: bool, get: bool) -> f64 {
    let node = if intra { 2 } else { 1 };
    const REPS: usize = 8;
    match layer {
        Layer::Fompi => {
            let times = Universe::new(2).node_size(node).run(move |ctx| {
                let win = Win::allocate(ctx, size.max(8), 1).unwrap();
                let mut out = 0.0;
                if ctx.rank() == 0 {
                    win.lock(LockType::Exclusive, 1).unwrap();
                    let buf = vec![1u8; size];
                    let mut dst = vec![0u8; size];
                    let t0 = ctx.now();
                    for _ in 0..REPS {
                        if get {
                            win.get(&mut dst, 1, 0).unwrap();
                        } else {
                            win.put(&buf, 1, 0).unwrap();
                        }
                        win.flush(1).unwrap();
                    }
                    out = (ctx.now() - t0) / REPS as f64;
                    win.unlock(1).unwrap();
                }
                ctx.barrier();
                out
            });
            times[0]
        }
        Layer::Upc => {
            let times = Universe::new(2).node_size(node).run(move |ctx| {
                let a = SharedArray::all_alloc(ctx, size.max(8));
                let mut out = 0.0;
                if ctx.rank() == 0 {
                    let buf = vec![1u8; size];
                    let mut dst = vec![0u8; size];
                    let t0 = ctx.now();
                    for _ in 0..REPS {
                        if get {
                            a.memget(&mut dst, 1, 0);
                        } else {
                            a.memput(1, 0, &buf);
                            a.fence();
                        }
                    }
                    out = (ctx.now() - t0) / REPS as f64;
                }
                ctx.barrier();
                out
            });
            times[0]
        }
        Layer::Caf => {
            let times = Universe::new(2).node_size(node).run(move |ctx| {
                let a = Coarray::new(ctx, size.max(8));
                let mut out = 0.0;
                if ctx.rank() == 0 {
                    let buf = vec![1u8; size];
                    let mut dst = vec![0u8; size];
                    let t0 = ctx.now();
                    for _ in 0..REPS {
                        if get {
                            a.get(&mut dst, 1, 0);
                        } else {
                            a.put(1, 0, &buf);
                            a.sync_memory();
                        }
                    }
                    out = (ctx.now() - t0) / REPS as f64;
                }
                ctx.barrier();
                out
            });
            times[0]
        }
        Layer::Mpi1 => {
            // Standard ping-pong: half the round trip.
            let engine = MsgEngine::new(2);
            let times = Universe::new(2).node_size(node).run(move |ctx| {
                let c = Comm::attach(ctx, &engine);
                let mut buf = vec![0u8; size];
                let payload = vec![1u8; size];
                ctx.barrier();
                let t0 = ctx.now();
                for _ in 0..REPS {
                    if ctx.rank() == 0 {
                        c.send(&payload, 1, 1).unwrap();
                        c.recv(&mut buf, 1, 2).unwrap();
                    } else {
                        c.recv(&mut buf, 0, 1).unwrap();
                        c.send(&payload, 0, 2).unwrap();
                    }
                }
                (ctx.now() - t0) / (2 * REPS) as f64
            });
            times[0]
        }
        Layer::Mpi22 => {
            let times = Universe::new(2).node_size(node).run(move |ctx| {
                let win = Win22::allocate(ctx, size.max(8));
                let mut out = 0.0;
                win.fence();
                if ctx.rank() == 0 {
                    let buf = vec![1u8; size];
                    let mut dst = vec![0u8; size];
                    win.lock(1);
                    let t0 = ctx.now();
                    for _ in 0..REPS {
                        if get {
                            win.get(&mut dst, 1, 0);
                        } else {
                            win.put(&buf, 1, 0);
                        }
                        ctx.ep().gsync();
                    }
                    out = (ctx.now() - t0) / REPS as f64;
                    win.unlock(1);
                }
                ctx.barrier();
                out
            });
            times[0]
        }
    }
}

/// Figure 5a: fraction (%) of the communication hidden behind a calibrated
/// compute loop for one message size.
pub fn fig5_overlap(layer: Layer, size: usize) -> f64 {
    // Pure communication time.
    let t_comm = fig4_latency(layer, size, false, false);
    let compute_ns = t_comm * 1.2; // "slightly more than the latency"
    let total = match layer {
        Layer::Fompi => {
            let times = Universe::new(2).node_size(1).run(move |ctx| {
                let win = Win::allocate(ctx, size.max(8), 1).unwrap();
                let mut out = 0.0;
                if ctx.rank() == 0 {
                    win.lock(LockType::Exclusive, 1).unwrap();
                    let buf = vec![1u8; size];
                    let t0 = ctx.now();
                    win.put(&buf, 1, 0).unwrap();
                    ctx.ep().charge(compute_ns);
                    win.flush(1).unwrap();
                    out = ctx.now() - t0;
                    win.unlock(1).unwrap();
                }
                ctx.barrier();
                out
            });
            times[0]
        }
        Layer::Upc => {
            let times = Universe::new(2).node_size(1).run(move |ctx| {
                let a = SharedArray::all_alloc(ctx, size.max(8));
                let mut out = 0.0;
                if ctx.rank() == 0 {
                    let buf = vec![1u8; size];
                    let t0 = ctx.now();
                    a.memput(1, 0, &buf);
                    ctx.ep().charge(compute_ns);
                    a.fence();
                    out = ctx.now() - t0;
                }
                ctx.barrier();
                out
            });
            times[0]
        }
        Layer::Mpi22 => {
            let times = Universe::new(2).node_size(1).run(move |ctx| {
                let win = Win22::allocate(ctx, size.max(8));
                win.fence();
                let mut out = 0.0;
                if ctx.rank() == 0 {
                    let buf = vec![1u8; size];
                    win.lock(1);
                    let t0 = ctx.now();
                    win.put(&buf, 1, 0);
                    ctx.ep().charge(compute_ns);
                    ctx.ep().gsync();
                    out = ctx.now() - t0;
                    win.unlock(1);
                }
                ctx.barrier();
                out
            });
            times[0]
        }
        _ => return 0.0,
    };
    let hidden = (t_comm + compute_ns - total).max(0.0);
    (hidden / t_comm * 100.0).min(100.0)
}

/// Figure 5b/5c: message rate (million messages/s) — 1000 unsynchronised
/// transactions, then one completion.
pub fn fig5_message_rate(layer: Layer, size: usize, intra: bool) -> f64 {
    let node = if intra { 2 } else { 1 };
    const N: usize = 1000;
    let per_msg_ns = match layer {
        Layer::Fompi => {
            let times = Universe::new(2).node_size(node).run(move |ctx| {
                let win = Win::allocate(ctx, (size * N).max(8), 1).unwrap();
                let mut out = f64::MAX;
                if ctx.rank() == 0 {
                    win.lock(LockType::Shared, 1).unwrap();
                    let buf = vec![1u8; size];
                    let t0 = ctx.now();
                    for i in 0..N {
                        win.put(&buf, 1, i * size).unwrap();
                    }
                    out = (ctx.now() - t0) / N as f64;
                    win.flush(1).unwrap();
                    win.unlock(1).unwrap();
                }
                ctx.barrier();
                out
            });
            times[0]
        }
        Layer::Upc => {
            // defer_sync: fully asynchronous puts.
            let times = Universe::new(2).node_size(node).run(move |ctx| {
                let a = SharedArray::all_alloc(ctx, (size * N).max(8));
                let mut out = f64::MAX;
                if ctx.rank() == 0 {
                    let buf = vec![1u8; size];
                    let t0 = ctx.now();
                    for i in 0..N {
                        a.memput(1, i * size, &buf);
                    }
                    out = (ctx.now() - t0) / N as f64;
                    a.fence();
                }
                ctx.barrier();
                out
            });
            times[0]
        }
        Layer::Caf => {
            let times = Universe::new(2).node_size(node).run(move |ctx| {
                let a = Coarray::new(ctx, (size * N).max(8));
                let mut out = f64::MAX;
                if ctx.rank() == 0 {
                    let buf = vec![1u8; size];
                    let t0 = ctx.now();
                    for i in 0..N {
                        a.put(1, i * size, &buf);
                    }
                    out = (ctx.now() - t0) / N as f64;
                    a.sync_memory();
                }
                ctx.barrier();
                out
            });
            times[0]
        }
        Layer::Mpi1 => {
            let engine = MsgEngine::new(2);
            let times = Universe::new(2).node_size(node).run(move |ctx| {
                let c = Comm::attach(ctx, &engine);
                let mut out = f64::MAX;
                if ctx.rank() == 0 {
                    let buf = vec![1u8; size];
                    let t0 = ctx.now();
                    for _ in 0..N {
                        c.isend(&buf, 1, 7).unwrap();
                    }
                    out = (ctx.now() - t0) / N as f64;
                } else {
                    let mut b = vec![0u8; size];
                    for _ in 0..N {
                        c.recv(&mut b, 0, 7).unwrap();
                    }
                }
                ctx.barrier();
                out
            });
            times[0]
        }
        Layer::Mpi22 => {
            let times = Universe::new(2).node_size(node).run(move |ctx| {
                let win = Win22::allocate(ctx, (size * N).max(8));
                win.fence();
                let mut out = f64::MAX;
                if ctx.rank() == 0 {
                    let buf = vec![1u8; size];
                    win.lock(1);
                    let t0 = ctx.now();
                    for i in 0..N {
                        win.put(&buf, 1, i * size);
                    }
                    out = (ctx.now() - t0) / N as f64;
                    win.unlock(1);
                }
                ctx.barrier();
                out
            });
            times[0]
        }
    };
    1e9 / per_msg_ns / 1e6
}

/// Figure 6a curves: latency (ns) of an atomic accumulate of `n` 8-byte
/// elements.
pub fn fig6a_atomics(kind: &str, n: usize) -> f64 {
    const REPS: usize = 4;
    let k = kind.to_string();
    let times = Universe::new(2).node_size(1).run(move |ctx| {
        let win = Win::allocate(ctx, (n * 8).max(16), 1).unwrap();
        let arr = SharedArray::all_alloc(ctx, (n * 8).max(16));
        let mut out = 0.0;
        ctx.barrier();
        if ctx.rank() == 0 {
            win.lock_all().unwrap();
            let buf: Vec<u8> = (0..n).flat_map(|i| (i as u64).to_le_bytes()).collect();
            let t0 = ctx.now();
            for _ in 0..REPS {
                match k.as_str() {
                    "fompi_sum" => {
                        win.accumulate(&buf, NumKind::U64, MpiOp::Sum, 1, 0).unwrap();
                        win.flush(1).unwrap();
                    }
                    "fompi_min" => {
                        win.accumulate(&buf, NumKind::I64, MpiOp::Min, 1, 0).unwrap();
                        win.flush(1).unwrap();
                    }
                    "fompi_cas" => {
                        win.compare_and_swap(1, 0, 1, 0).unwrap();
                    }
                    "upc_aadd" => {
                        for i in 0..n {
                            arr.aadd(1, i * 8, 1);
                        }
                    }
                    "upc_cas" => {
                        arr.cas(1, 0, 1, 0);
                    }
                    other => panic!("unknown atomic benchmark {other}"),
                }
            }
            out = (ctx.now() - t0) / REPS as f64;
            win.unlock_all().unwrap();
        }
        ctx.barrier();
        out
    });
    times[0]
}

/// Real-mode fence latency at `p` ranks (figure 6b's small-p points).
pub fn fence_latency(p: usize, node_size: usize) -> f64 {
    let times = Universe::new(p).node_size(node_size).run(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.fence().unwrap(); // warm-up: align clocks
        let t0 = ctx.now();
        win.fence().unwrap();
        ctx.now() - t0
    });
    times.iter().cloned().fold(0.0, f64::max)
}

/// Real-mode PSCW ring latency at `p` ranks (figure 6c's small-p points).
/// `fast` selects the FAA-ring announcement variant (`pscw_fast`), which
/// matches the paper's Ppost = 350 ns·k cost class.
pub fn pscw_latency_cfg(p: usize, node_size: usize, fast: bool) -> f64 {
    let cfg = fompi::WinConfig { pscw_fast: fast, ..fompi::WinConfig::default() };
    let times = Universe::new(p).node_size(node_size).run(move |ctx| {
        let win = Win::allocate_cfg(ctx, 64, 1, cfg.clone()).unwrap();
        let me = ctx.rank();
        let pn = p as u32;
        let g = Group::new([(me + pn - 1) % pn, (me + 1) % pn]);
        ctx.barrier();
        let t0 = ctx.now();
        win.post(&g).unwrap();
        win.start(&g).unwrap();
        win.put(&[1u8; 8], (me + 1) % pn, 0).unwrap();
        win.complete().unwrap();
        win.wait().unwrap();
        ctx.now() - t0
    });
    times.iter().cloned().fold(0.0, f64::max)
}

/// Real-mode PSCW ring latency at `p` ranks (figure 6c's small-p points).
pub fn pscw_latency(p: usize, node_size: usize) -> f64 {
    let times = Universe::new(p).node_size(node_size).run(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        let me = ctx.rank();
        let pn = p as u32;
        let g = Group::new([(me + pn - 1) % pn, (me + 1) % pn]);
        ctx.barrier();
        let t0 = ctx.now();
        win.post(&g).unwrap();
        win.start(&g).unwrap();
        win.put(&[1u8; 8], (me + 1) % pn, 0).unwrap();
        win.complete().unwrap();
        win.wait().unwrap();
        ctx.now() - t0
    });
    times.iter().cloned().fold(0.0, f64::max)
}

/// Passive-target constants (§3.2): `(lock_excl, lock_shared, lock_all,
/// unlock, flush, sync)` in ns, measured uncontended.
pub fn lock_constants() -> (f64, f64, f64, f64, f64, f64) {
    // Measure from rank 1 so that both the target's local lock and the
    // master's global lock (rank 0) are remote, as in the paper's setup.
    let times = Universe::new(2).node_size(1).run(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        let mut v = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        if ctx.rank() == 1 {
            let t0 = ctx.now();
            win.lock(LockType::Exclusive, 0).unwrap();
            v.0 = ctx.now() - t0;
            let t0 = ctx.now();
            win.flush(0).unwrap();
            v.4 = ctx.now() - t0;
            let t0 = ctx.now();
            win.unlock(0).unwrap();
            v.3 = ctx.now() - t0;
            let t0 = ctx.now();
            win.lock(LockType::Shared, 0).unwrap();
            v.1 = ctx.now() - t0;
            win.unlock(0).unwrap();
            let t0 = ctx.now();
            win.lock_all().unwrap();
            v.2 = ctx.now() - t0;
            win.unlock_all().unwrap();
            let t0 = ctx.now();
            win.sync();
            v.5 = ctx.now() - t0;
        }
        ctx.barrier();
        v
    });
    times[1]
}

/// Least-squares linear fit `y = a + b·x`; returns `(a, b)`.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let a = (sy - b * sx) / n;
    (a, b)
}

/// Fit the measured put/get series to `base + byte·s` (the paper's Pput /
/// Pget form). Returns `(base_ns, per_byte_ns)`.
pub fn fit_models(get: bool) -> (f64, f64) {
    let pts: Vec<(f64, f64)> = size_sweep()
        .into_iter()
        .filter(|&s| s < 4096) // below the protocol change
        .map(|s| (s as f64, fig4_latency(Layer::Fompi, s, false, get)))
        .collect();
    linear_fit(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fompi_beats_pgas_small_put() {
        let f = fig4_latency(Layer::Fompi, 8, false, false);
        let u = fig4_latency(Layer::Upc, 8, false, false);
        let c = fig4_latency(Layer::Caf, 8, false, false);
        // "more than 50% lower latency than other PGAS models".
        assert!(f < u * 0.67, "foMPI {f} vs UPC {u}");
        assert!(u < c, "UPC {u} vs CAF {c}");
    }

    #[test]
    fn mpi22_is_the_slow_one() {
        let f = fig4_latency(Layer::Fompi, 8, false, false);
        let m22 = fig4_latency(Layer::Mpi22, 8, false, false);
        assert!(m22 > 5.0 * f, "MPI-2.2 {m22} vs foMPI {f}");
    }

    #[test]
    fn bandwidth_converges_at_large_sizes() {
        let f = fig4_latency(Layer::Fompi, 1 << 18, false, false);
        let u = fig4_latency(Layer::Upc, 1 << 18, false, false);
        assert!((f - u).abs() / f < 0.1, "large-message bandwidth: {f} vs {u}");
    }

    #[test]
    fn intra_node_much_faster() {
        let inter = fig4_latency(Layer::Fompi, 8, false, false);
        let intra = fig4_latency(Layer::Fompi, 8, true, false);
        assert!(intra * 2.0 < inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn protocol_change_bump_visible() {
        let below = fig4_latency(Layer::Fompi, 2048, false, false);
        let above = fig4_latency(Layer::Fompi, 8192, false, false);
        assert!(above > below, "{below} vs {above}");
    }

    #[test]
    fn overlap_high_for_fompi() {
        let f = fig5_overlap(Layer::Fompi, 4096);
        assert!(f > 70.0, "foMPI overlap {f}%");
        let big = fig5_overlap(Layer::Fompi, 32768);
        assert!(big > 85.0, "foMPI overlap at 32 KiB {big}%");
        assert!(big > f, "overlap should grow with size");
    }

    #[test]
    fn message_rate_sane() {
        let r8 = fig5_message_rate(Layer::Fompi, 8, false);
        // ~1/(416 ns + overhead) ≈ 2 M/s.
        assert!(r8 > 1.0 && r8 < 3.0, "rate {r8} M/s");
        let intra = fig5_message_rate(Layer::Fompi, 8, true);
        assert!(intra > r8 * 2.0, "intra rate {intra} vs {r8}");
        let upc = fig5_message_rate(Layer::Upc, 8, false);
        assert!(upc < r8, "UPC rate {upc} vs foMPI {r8}");
    }

    #[test]
    fn atomics_sum_accelerated_min_not() {
        let sum1 = fig6a_atomics("fompi_sum", 1);
        let min1 = fig6a_atomics("fompi_min", 1);
        let cas = fig6a_atomics("fompi_cas", 1);
        // Small counts: accelerated SUM beats the locked MIN fallback.
        assert!(sum1 < min1, "sum {sum1} vs min {min1}");
        assert!((cas - sum1).abs() < sum1, "CAS {cas} near SUM {sum1}");
        // Large counts: the bandwidth-bound fallback wins (Figure 6a).
        let sum = fig6a_atomics("fompi_sum", 4096);
        let min = fig6a_atomics("fompi_min", 4096);
        assert!(min < sum, "large-n: min {min} should beat sum {sum}");
    }

    #[test]
    fn fence_latency_log_p() {
        let t4 = fence_latency(4, 1);
        let t16 = fence_latency(16, 1);
        assert!(t16 > t4);
        assert!(t16 < t4 * 3.0);
    }

    #[test]
    fn pscw_flat_in_p() {
        // Contended CAS retries vary with real thread scheduling; take the
        // best of three runs at each size (the paper reports medians).
        let best = |p: usize| (0..3).map(|_| pscw_latency(p, 1)).fold(f64::MAX, f64::min);
        let t4 = best(4);
        let t16 = best(16);
        assert!(t16 < t4 * 3.0, "PSCW should be ~flat: {t4} vs {t16}");
    }

    #[test]
    fn lock_constants_ordered_like_paper() {
        let (excl, shared, all, unlock, flush, sync) = lock_constants();
        assert!(excl > shared, "excl {excl} vs shared {shared}");
        assert!((shared - all).abs() < shared * 0.5);
        assert!(unlock < shared);
        assert!(flush < unlock);
        assert!(sync < flush);
    }

    #[test]
    fn put_model_fit_close_to_cost_model() {
        let (base, byte) = fit_models(false);
        // Our put path ≈ overheads + 1 µs base, 0.16 ns/B.
        assert!(base > 800.0 && base < 2_500.0, "base {base}");
        assert!(byte > 0.1 && byte < 0.25, "byte {byte}");
    }

    #[test]
    fn real_and_simulated_fence_agree() {
        // The threaded run (virtual clocks) and the simnet replay must be
        // mutually consistent where they overlap — the strongest internal
        // validation of the two-mode methodology.
        let real = fence_latency(64, 1);
        let sim = fompi_simnet::figures::fig6b(&[64])[0].points[0].1 * 1e3;
        let ratio = real / sim;
        assert!(
            (0.9..1.1).contains(&ratio),
            "real fence {real} ns vs simulated {sim} ns (ratio {ratio})"
        );
    }

    #[test]
    fn real_and_simulated_pscw_same_ballpark() {
        // PSCW involves contended CAS retries in real mode, so agreement
        // is looser, but both must sit in the same decade and both flat.
        let real = (0..3).map(|_| pscw_latency(16, 1)).fold(f64::MAX, f64::min);
        let sim = fompi_simnet::figures::fig6c(&[16])[0].points[0].1 * 1e3;
        let ratio = real / sim;
        assert!(
            (0.2..5.0).contains(&ratio),
            "real PSCW {real} ns vs simulated {sim} ns (ratio {ratio})"
        );
    }

    #[test]
    fn linear_fit_exact_on_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (a, b) = linear_fit(&pts);
        assert!((a - 3.0).abs() < 1e-9 && (b - 2.0).abs() < 1e-9);
    }
}
