//! fompi-scope driver: regenerate the committed metrics snapshot and run
//! the observability overhead ablation.
//!
//! ```text
//! cargo run --release -p fompi-bench --bin scope               # write results/scope_metrics.{prom,json}
//! cargo run --release -p fompi-bench --bin scope -- --ablation # armed-vs-disarmed bit-identity gate
//! ```
//!
//! The snapshot workload is built only from schedule-independent
//! primitives (a single-locker put epoch and a notified handoff), so two
//! runs — on any machine — produce byte-identical Prometheus text and
//! JSON lines. `scripts/ci.sh` regenerates both files under a pinned
//! environment and byte-diffs them against the committed copies, the same
//! contract `soak.csv` and `notify_ablation.csv` live under.
//!
//! `--ablation` reruns the workload with the whole plane armed (metrics +
//! full wall-clock profiling + telemetry + flight recorder) and disarmed,
//! and asserts the per-rank virtual clocks are bit-identical: the
//! observability plane may spend real time, never virtual time.

use fompi::{LockType, Win};
use fompi_fabric::{metrics_snapshot, FaultPlan, ProfileMode};
use fompi_runtime::Universe;
use std::process::ExitCode;

/// Notified messages per run (well under the sized notification ring).
const ITEMS: usize = 32;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => snapshot_files(),
        [flag] if flag == "--ablation" => ablation(),
        [flag] if flag == "--agent-json" => agent_json(),
        _ => {
            eprintln!("usage: scope [--ablation | --agent-json]");
            ExitCode::FAILURE
        }
    }
}

/// Fleet-agent mode: run the same workload and print exactly one line —
/// the JSON metrics snapshot — with no file writes (the orchestrator owns
/// `results/`; a stray `scope_metrics.json` write here would clobber the
/// byte-diffed copy).
fn agent_json() -> ExitCode {
    let (_clocks, fabric) = workload(universe().metrics(true));
    println!("{}", metrics_snapshot(&fabric).to_json_line());
    ExitCode::SUCCESS
}

/// The seeded workload every mode runs: rank 0 holds a shared lock on
/// rank 1 and streams `ITEMS` notified 64-byte puts plus a locked put
/// epoch; rank 1 consumes the notifications from its local ring. No
/// contended AMO ever races (single locker, local ring polls), so the
/// virtual timeline is schedule-independent.
fn universe() -> Universe {
    Universe::new(2)
        .node_size(1)
        .seed(7)
        .faults(FaultPlan::disabled())
        .batch(false)
        .notify_depth(2 * ITEMS)
}

fn workload(u: Universe) -> (Vec<u64>, std::sync::Arc<fompi_fabric::Fabric>) {
    u.launch(|ctx| {
        let win = Win::allocate(ctx, 4096, 1).unwrap();
        if ctx.rank() == 0 {
            win.lock(LockType::Shared, 1).unwrap();
            for i in 0..ITEMS {
                win.put_notify(&[i as u8; 64], 1, i * 64, i as u32).unwrap();
            }
            win.put(&[0xA5u8; 256], 1, ITEMS * 64).unwrap();
            win.flush(1).unwrap();
            win.unlock(1).unwrap();
        } else {
            for i in 0..ITEMS as u32 {
                win.wait_notify(0, i).unwrap();
            }
        }
        ctx.barrier();
        ctx.now().to_bits()
    })
}

/// Default mode: run the workload with metrics armed and write both
/// exposition forms under `results/`.
fn snapshot_files() -> ExitCode {
    let (_clocks, fabric) = workload(universe().metrics(true));
    let snap = metrics_snapshot(&fabric);
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/scope_metrics.prom", snap.to_prometheus())
        .expect("write scope_metrics.prom");
    std::fs::write("results/scope_metrics.json", snap.to_json_line() + "\n")
        .expect("write scope_metrics.json");
    println!("== fompi-scope metrics snapshot ==");
    print!("{}", snap.to_prometheus());
    println!("-> results/scope_metrics.prom");
    println!("-> results/scope_metrics.json");
    ExitCode::SUCCESS
}

/// Overhead ablation: per-rank virtual clocks must be bit-identical with
/// the plane fully armed and fully disarmed.
fn ablation() -> ExitCode {
    let (armed, fabric) = workload(universe().metrics(true).profile(ProfileMode::Full).trace(4096));
    let (disarmed, _) = workload(universe());
    println!("== fompi-scope overhead ablation (virtual-time bit-identity) ==");
    println!("  profiled wall-clock samples: {}", fabric.profiler().total_count());
    for (rank, (a, d)) in armed.iter().zip(&disarmed).enumerate() {
        let (a_ns, d_ns) = (f64::from_bits(*a), f64::from_bits(*d));
        let ok = a == d;
        println!(
            "  rank {rank}: armed {a_ns:.1} ns, disarmed {d_ns:.1} ns  {}",
            if ok { "ok" } else { "MISMATCH" }
        );
        if !ok {
            eprintln!(
                "scope: armed observability perturbed rank {rank}'s virtual clock \
                 ({a_ns} != {d_ns}) — the plane must charge zero virtual time"
            );
            return ExitCode::FAILURE;
        }
    }
    println!("scope: armed/disarmed virtual time bit-identical.");
    ExitCode::SUCCESS
}
