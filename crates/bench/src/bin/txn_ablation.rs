//! Transaction contention ablation: commit latency and abort rate as the
//! number of conflicting writers grows.
//!
//! ```text
//! cargo run --release -p fompi-bench --bin txn_ablation                 # CSV ablation
//! cargo run --release -p fompi-bench --bin txn_ablation -- --agent-json # fleet agent: one JSON metrics line
//! ```
//!
//! W logical writers contend for one remote versioned cell. Each round
//! every writer snapshots the cell (versioned read) and stages an
//! additive update, then the commits are attempted in round-robin order:
//! the first CAS wins, every other writer loses validation, aborts,
//! charges its policy backoff, re-snapshots and retries in the next
//! sub-round. The writers are *deterministically interleaved on one
//! driver rank*, so the sub-round cascade — W commits and
//! W·(W−1)/2 aborts per round, abort rate (W−1)/(W+1) — and every
//! virtual-time latency are exact functions of the seed. The CSV is
//! byte-diffed by `scripts/ci.sh`.
//!
//! What the ablation shows: optimistic commit degrades gracefully —
//! latency grows with contention because losers pay (backoff + re-read +
//! re-commit) per extra writer, while the abort *rate* approaches 1 as
//! W → ∞ yet throughput never collapses to zero (sorted lock order means
//! someone always wins each sub-round).

use fompi::Win;
use fompi_fabric::rng::Rng;
use fompi_fabric::{metrics_snapshot, FaultPlan};
use fompi_runtime::Universe;
use fompi_txn::{RetryPolicy, Txn, TxnError, VersionedCell};

const ROUNDS: usize = 32;
const PAY: usize = 8;

/// One contention point: mean commit latency (snapshot → publication,
/// including retries and backoff) and the abort tally.
struct Point {
    writers: usize,
    commits: u64,
    aborts: u64,
    mean_commit_ns: f64,
    final_value: u64,
}

fn contend(writers: usize, agent: bool) -> (Point, std::sync::Arc<fompi_fabric::Fabric>) {
    // Agent mode arms metrics and leaves the fault layer env-governed so
    // the fleet's chaos sweep can inject through `FOMPI_FAULTS`; the CSV
    // path pins faults off (the cascade asserts below are exact).
    let mut universe = Universe::new(2).node_size(1).seed(11).metrics(agent);
    if !agent {
        universe = universe.faults(FaultPlan::disabled());
    }
    let (outs, fabric) = universe.launch(move |ctx| {
        let win = Win::allocate(ctx, 16, 1).unwrap();
        VersionedCell::init_local(&win, 0, &[0u8; PAY]);
        ctx.barrier();
        win.lock_all().unwrap();
        let mut out = (0u64, 0u64, 0.0, 0u64);
        if ctx.rank() == 0 {
            let cell = VersionedCell::new(1, 0, PAY);
            let policy = RetryPolicy::default();
            let mut rng = Rng::seed_from_u64(99);
            let (mut commits, mut aborts, mut total_ns) = (0u64, 0u64, 0.0);
            // A writer's pending attempt: its staged delta, the
            // virtual time its *first* snapshot started, its attempt
            // count, and the ready-to-commit transaction.
            let snapshot = |w: &mut Txn, delta: u64| -> Result<(), TxnError> {
                let mut buf = [0u8; PAY];
                w.read(cell, &mut buf)?;
                let v = u64::from_le_bytes(buf).wrapping_add(delta);
                w.write(cell, &v.to_le_bytes())
            };
            for round in 0..ROUNDS {
                // Phase 1: every writer snapshots the same version.
                let mut pending = Vec::new();
                for wi in 0..writers {
                    let delta = (round * writers + wi) as u64 + 1;
                    let mut txn = Txn::begin(&win);
                    snapshot(&mut txn, delta).unwrap();
                    pending.push((delta, ctx.now(), 1u32, txn));
                }
                // Phase 2: round-robin commits; losers back off,
                // re-snapshot and re-queue for the next sub-round.
                while !pending.is_empty() {
                    let mut next = Vec::new();
                    for (delta, t0, attempt, txn) in pending {
                        match txn.commit() {
                            Ok(_) => {
                                commits += 1;
                                total_ns += ctx.now() - t0;
                            }
                            Err(e) if e.is_transient() => {
                                aborts += 1;
                                ctx.ep().charge(policy.backoff_ns(attempt, &mut rng));
                                let mut retry = Txn::begin(&win);
                                snapshot(&mut retry, delta).unwrap();
                                next.push((delta, t0, attempt + 1, retry));
                            }
                            Err(e) => panic!("non-transient abort: {e}"),
                        }
                    }
                    pending = next;
                }
            }
            let mut buf = [0u8; PAY];
            cell.read(&win, &mut buf).unwrap();
            out = (commits, aborts, total_ns / commits as f64, u64::from_le_bytes(buf));
        }
        win.unlock_all().unwrap();
        ctx.barrier();
        out
    });
    let (commits, aborts, mean_commit_ns, final_value) = outs[0];
    (Point { writers, commits, aborts, mean_commit_ns, final_value }, fabric)
}

fn main() {
    // Fleet-agent mode: the driver-rank interleave makes even the
    // abort cascade an exact function of the seed, so this bin is the
    // fleet's *stable* txn-backend agent. One JSON line, no file writes.
    if std::env::args().any(|a| a == "--agent-json") {
        let (_, fabric) = contend(4, true);
        println!("{}", metrics_snapshot(&fabric).to_json_line());
        return;
    }
    println!("== txn contention ablation: W writers, one hot cell ==\n");
    let mut rows =
        vec!["writers,rounds,commits,aborts,abort_rate,mean_commit_ns,final_value".to_string()];
    let mut prev_lat = 0.0;
    for writers in [1usize, 2, 4] {
        let (p, _) = contend(writers, false);
        // The cascade is exact: W commits/round, W(W-1)/2 aborts/round.
        assert_eq!(p.commits, (ROUNDS * writers) as u64);
        assert_eq!(p.aborts, (ROUNDS * writers * (writers - 1) / 2) as u64);
        // Additive deltas: the final value is the sum of every delta,
        // independent of commit order.
        let n = (ROUNDS * writers) as u64;
        assert_eq!(p.final_value, n * (n + 1) / 2, "lost update at W={writers}");
        let rate = p.aborts as f64 / (p.aborts + p.commits) as f64;
        println!(
            "  W={} : {:>4} commits, {:>4} aborts (rate {:.3}), mean commit {:>9.1} ns",
            p.writers, p.commits, p.aborts, rate, p.mean_commit_ns
        );
        assert!(
            p.mean_commit_ns > prev_lat,
            "commit latency must grow with contention (W={writers})"
        );
        prev_lat = p.mean_commit_ns;
        rows.push(format!(
            "{},{ROUNDS},{},{},{rate},{},{}",
            p.writers, p.commits, p.aborts, p.mean_commit_ns, p.final_value
        ));
    }
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/txn_ablation.csv", rows.join("\n") + "\n").expect("write csv");
    println!("\n  -> results/txn_ablation.csv");
}
