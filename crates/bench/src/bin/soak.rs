//! Protocol soak harness driver.
//!
//! ```text
//! cargo run --release -p fompi-bench --bin soak              # bounded smoke
//! cargo run --release -p fompi-bench --bin soak lock mcs     # subset
//! SOAK_SECONDS=300 cargo run --release -p fompi-bench --bin soak   # long soak
//! ```
//!
//! Every synchronisation protocol runs for many epochs under deterministic
//! fault plans (alternating light/heavy), across several rank counts and
//! seeds, with the window's protocol invariants checked after each run
//! (see `fompi::soak`). Environment knobs:
//!
//! * `FOMPI_SEED`    — root seed; the whole campaign derives from it.
//! * `SOAK_SEEDS`    — seeds per (protocol, p) cell (default 8).
//! * `SOAK_SECONDS`  — long mode: keep drawing fresh seeds until the
//!   wall-clock budget is spent (overrides `SOAK_SEEDS`).
//! * `SOAK_P`        — comma-separated rank counts (default `4,6`).
//! * `SOAK_EPOCHS`   — epochs per rank per run (default 6).
//!
//! Per-protocol pass counts land in `results/soak.csv`. Any violation
//! prints the reproducing seed and the process exits nonzero.

use fompi::soak::{run_case, seeds, Protocol};
use fompi_fabric::rng::root_seed_from_env;
use fompi_fabric::FaultPlan;
use std::fmt::Write as _;
use std::fs;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |p: Protocol| args.is_empty() || args.iter().any(|a| a == p.name());
    let root = root_seed_from_env(0xDEFA_17AB1E);
    let epochs = env_usize("SOAK_EPOCHS", 6);
    let ranks: Vec<usize> = std::env::var("SOAK_P")
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|_| vec![4, 6]);
    let seconds: Option<u64> =
        std::env::var("SOAK_SECONDS").ok().and_then(|v| v.parse().ok()).filter(|&s| s > 0);
    let per_cell = env_usize("SOAK_SEEDS", 8);
    let deadline = seconds.map(|s| Instant::now() + Duration::from_secs(s));

    println!("== foMPI-rs protocol soak ==");
    println!(
        "   root seed {root:#x}, {epochs} epochs, p in {ranks:?}, {}",
        match seconds {
            Some(s) => format!("long mode: ~{s}s wall clock"),
            None => format!("{per_cell} seeds per cell"),
        }
    );

    let mut rows: Vec<String> = Vec::new();
    let mut failed = false;
    for proto in Protocol::ALL {
        if !want(proto) {
            continue;
        }
        for &p in &ranks {
            let mut passes = 0usize;
            let mut violations = 0usize;
            let mut injected = 0u64;
            let mut ran = 0usize;
            // Cell-specific stream so adding protocols/rank counts never
            // reshuffles another cell's seeds.
            let cell_root = root ^ ((proto as u64 + 1) << 32) ^ (p as u64);
            let mut batch = 0u64;
            loop {
                let batch_seeds = seeds(cell_root.wrapping_add(batch), per_cell);
                for (i, &seed) in batch_seeds.iter().enumerate() {
                    // Alternate plan severities; seed 0 defers to the root
                    // seed, keeping one number sufficient for replay.
                    let plan = if i % 2 == 0 { FaultPlan::light(0) } else { FaultPlan::heavy(0) };
                    let out = run_case(proto, p, epochs, seed, plan);
                    ran += 1;
                    injected += out.injected;
                    if out.passed() {
                        passes += 1;
                    } else {
                        violations += out.violations.len();
                        failed = true;
                        for v in &out.violations {
                            eprintln!("VIOLATION {v}");
                        }
                    }
                }
                match deadline {
                    Some(d) if Instant::now() < d => batch += 1,
                    _ => break,
                }
            }
            println!(
                "   {:<10} p={p}: {passes}/{ran} passed, {injected} faults injected",
                proto.name()
            );
            rows.push(format!(
                "{},{p},{ran},{epochs},{passes},{violations},{injected}",
                proto.name()
            ));
        }
    }

    fs::create_dir_all("results").ok();
    let mut csv = String::from("proto,p,seeds,epochs,passes,violations,injected\n");
    for r in &rows {
        let _ = writeln!(csv, "{r}");
    }
    if let Err(e) = fs::write("results/soak.csv", csv) {
        eprintln!("failed to write results/soak.csv: {e}");
    }
    println!("   wrote results/soak.csv");
    if failed {
        eprintln!("soak FAILED — replay any violation with FOMPI_SEED=<seed>");
        std::process::exit(1);
    }
}
