//! Remote-memory-channel ablation: the WIND-shaped a1–a4 scenario family
//! over `fompi-rmc`, plus one RPC round-trip point.
//!
//! ```text
//! cargo run --release -p fompi-bench --bin rmc_ablation                 # CSV ablation
//! cargo run --release -p fompi-bench --bin rmc_ablation -- --agent-json # fleet agent: one JSON metrics line
//! ```
//!
//! * **a1** — baseline latency: one producer, one consumer, a 1-slot
//!   fan-in ring, so every send strictly alternates with the returning
//!   credit AMO; producer time / messages is the steady-state channel
//!   round (model twin `rmc_fanin_round`).
//! * **a2** — fan-out: one publisher multicasting to N subscribers under
//!   `LaggingPolicy::Block` (model twin `rmc_fanout_publish`), plus a
//!   `Drop` point where the subscribers deliberately lag and the exact
//!   drop count is asserted.
//! * **a3** — fan-in: N producers into one drain-until-dry consumer.
//! * **a4** — scalability: every rank of a mesh publishes to a k-subset
//!   of peers (ring offsets), so N producers and M subscribers overlap.
//! * **rpc** — one client's request/reply round against a served rank
//!   (model twin `rpc_round`).
//!
//! Sender-side virtual times are schedule-independent (no sender ever
//! waits on a credit in the sized-ring scenarios, and a1/rpc strictly
//! alternate), so they land in `results/rmc_ablation.csv` and are
//! byte-diffed by `scripts/ci.sh`. Consumer-side drain times under
//! `ANY_SOURCE` join notification stamps in arrival order — schedule
//! *dependent* — so, like `notify_ablation`'s app rows, they print but
//! stay out of the gated CSV.

use fompi::PaperModel;
use fompi_fabric::rng::splitmix64;
use fompi_fabric::{metrics_snapshot, FaultPlan};
use fompi_rmc::{fanin, fanout, mesh, rpc, FaninEnd, FanoutEnd, LaggingPolicy, RmcConfig, RpcEnd};
use fompi_runtime::Universe;

/// Messages per sender in every scenario.
const MSGS: usize = 16;
/// Channel payload bytes (one cache-line-ish message).
const BYTES: usize = 64;
/// RPC request/reply payload bytes.
const REQ: usize = 32;
const REP: usize = 64;

/// Deterministic universe for the CSV scenarios: faults pinned off,
/// inter-node topology, notification ring sized so no overflow stall can
/// enter the numbers.
fn universe(p: usize) -> Universe {
    Universe::new(p).node_size(1).seed(1).faults(FaultPlan::disabled()).notify_depth(256)
}

/// Deterministic per-message payload.
fn payload(source: u32, seq: usize) -> [u8; BYTES] {
    let mut b = [0u8; BYTES];
    b[..8].copy_from_slice(&splitmix64(((source as u64) << 32) ^ seq as u64).to_le_bytes());
    b
}

/// a1: 1 producer → 1 consumer over a 1-slot ring. Returns the producer's
/// steady-state ns per round (send + returning credit).
fn a1_baseline() -> f64 {
    let got = universe(2).run(|ctx| match fanin(ctx, 1, &[0], 1, BYTES).unwrap().unwrap() {
        FaninEnd::Producer(mut tx) => {
            ctx.barrier();
            let t0 = ctx.now();
            for seq in 0..MSGS {
                tx.send(&payload(0, seq)).unwrap();
            }
            // Absorb the final credit so whole rounds are timed.
            while tx.poll_credits().unwrap() == 0 {
                std::thread::yield_now();
            }
            let dt = ctx.now() - t0;
            tx.close(ctx).unwrap();
            dt
        }
        FaninEnd::Consumer(mut rx) => {
            let mut buf = [0u8; BYTES];
            ctx.barrier();
            for seq in 0..MSGS {
                let (src, len) = rx.recv(&mut buf).unwrap();
                assert_eq!((src, len), (0, BYTES));
                assert_eq!(buf, payload(0, seq), "a1 message {seq} corrupted");
            }
            rx.close(ctx).unwrap();
            0.0
        }
    });
    got[0] / MSGS as f64
}

/// a2: 1 publisher → n subscribers, `Block`, rings sized so the publisher
/// never waits. Returns the publisher's mean ns per multicast.
fn a2_fanout(n: usize) -> f64 {
    let subs: Vec<u32> = (1..=n as u32).collect();
    let got = universe(n + 1).run(move |ctx| {
        match fanout(ctx, 0, &subs, MSGS, BYTES, LaggingPolicy::Block).unwrap().unwrap() {
            FanoutEnd::Publisher(mut tx) => {
                ctx.barrier();
                let t0 = ctx.now();
                for seq in 0..MSGS {
                    assert_eq!(tx.publish(&payload(0, seq)).unwrap(), subs.len());
                }
                let dt = ctx.now() - t0;
                assert_eq!(tx.dropped_total(), 0);
                ctx.barrier();
                tx.close(ctx).unwrap();
                dt
            }
            FanoutEnd::Subscriber(mut rx) => {
                let mut buf = [0u8; BYTES];
                ctx.barrier();
                for seq in 0..MSGS {
                    assert_eq!(rx.recv(&mut buf).unwrap(), BYTES);
                    assert_eq!(buf, payload(0, seq), "a2 multicast {seq} corrupted");
                }
                ctx.barrier();
                rx.close(ctx).unwrap();
                0.0
            }
        }
    });
    got[0] / MSGS as f64
}

/// a2 drop point: 2 deliberately lagging subscribers (no recv until the
/// publisher is done), 4-slot rings. Returns (publisher mean ns,
/// delivered, dropped) — the counts are exact: the first 4 publications
/// land, every later one finds zero credits and is dropped.
fn a2_fanout_drop() -> (f64, u64, u64) {
    const SLOTS: usize = 4;
    let got = universe(3).run(|ctx| {
        match fanout(ctx, 0, &[1, 2], SLOTS, BYTES, LaggingPolicy::Drop).unwrap().unwrap() {
            FanoutEnd::Publisher(mut tx) => {
                ctx.barrier();
                let t0 = ctx.now();
                let mut delivered = 0u64;
                for seq in 0..MSGS {
                    delivered += tx.publish(&payload(0, seq)).unwrap() as u64;
                }
                let dt = ctx.now() - t0;
                let dropped = tx.dropped_total();
                ctx.barrier(); // subscribers start draining only now
                ctx.barrier();
                tx.close(ctx).unwrap();
                (dt, delivered, dropped)
            }
            FanoutEnd::Subscriber(mut rx) => {
                let mut buf = [0u8; BYTES];
                ctx.barrier();
                ctx.barrier();
                // Lagged the whole run: exactly the first SLOTS messages
                // survive, in order.
                for seq in 0..SLOTS {
                    assert_eq!(rx.recv(&mut buf).unwrap(), BYTES);
                    assert_eq!(buf, payload(0, seq), "a2-drop kept the wrong message");
                }
                ctx.barrier();
                rx.close(ctx).unwrap();
                (0.0, 0, 0)
            }
        }
    });
    (got[0].0 / MSGS as f64, got[0].1, got[0].2)
}

/// a3: n producers → 1 consumer, rings sized so no producer ever waits.
/// Returns (producer-1 mean send ns, consumer drain ns — the latter is
/// schedule-dependent and must stay out of the CSV).
fn a3_fanin(n: usize) -> (f64, f64) {
    let producers: Vec<u32> = (1..=n as u32).collect();
    let got = universe(n + 1).run(move |ctx| {
        match fanin(ctx, 0, &producers, MSGS, BYTES).unwrap() {
            Some(FaninEnd::Producer(mut tx)) => {
                let me = ctx.rank();
                ctx.barrier();
                let t0 = ctx.now();
                for seq in 0..MSGS {
                    tx.send(&payload(me, seq)).unwrap();
                }
                let dt = ctx.now() - t0;
                ctx.barrier();
                tx.close(ctx).unwrap();
                dt
            }
            Some(FaninEnd::Consumer(mut rx)) => {
                let mut buf = [0u8; BYTES];
                let mut next = vec![0usize; n + 1];
                ctx.barrier();
                let t0 = ctx.now();
                for _ in 0..n * MSGS {
                    let (src, len) = rx.recv(&mut buf).unwrap();
                    assert_eq!(len, BYTES);
                    // Per-producer FIFO: slots recycle strictly in order.
                    let seq = next[src as usize];
                    assert_eq!(buf, payload(src, seq), "a3 out-of-order from rank {src}");
                    next[src as usize] = seq + 1;
                }
                let dt = ctx.now() - t0;
                assert!(rx.try_recv(&mut buf).unwrap().is_none(), "a3 consumer not dry");
                ctx.barrier();
                rx.close(ctx).unwrap();
                dt
            }
            None => unreachable!("every rank participates"),
        }
    });
    (got[1] / MSGS as f64, got[0] / (n * MSGS) as f64)
}

/// a4 connectivity: rank `s` publishes to its next `k` ring neighbours.
fn a4_targets(s: u32, p: usize, k: usize) -> Vec<u32> {
    (1..=k as u32).map(|d| (s + d) % p as u32).collect()
}

/// a4: p-rank mesh, each rank sending `per_target` messages to a k-subset
/// of peers. Returns (rank-0 mean send ns, per-rank drain ns max —
/// schedule-dependent). Sized rings (`per_target <= slots`) keep the
/// send side wait-free.
fn a4_mesh(p: usize, k: usize, per_target: usize) -> (f64, f64) {
    let cfg = RmcConfig { slots: 8, slot_bytes: BYTES, ..RmcConfig::default() };
    assert!(per_target <= cfg.slots);
    let got = universe(p).run(move |ctx| {
        let me = ctx.rank();
        let mut m = mesh(ctx, &cfg).unwrap();
        ctx.barrier();
        let t0 = ctx.now();
        for seq in 0..per_target {
            for &t in &a4_targets(me, p, k) {
                m.send(t, &payload(me, seq * p + t as usize)).unwrap();
            }
        }
        let send_ns = ctx.now() - t0;
        // Drain: every rank knows exactly who publishes to it.
        let sources: Vec<u32> =
            (0..p as u32).filter(|&s| a4_targets(s, p, k).contains(&me)).collect();
        let mut next = vec![0usize; p];
        let mut buf = [0u8; BYTES];
        let t1 = ctx.now();
        for _ in 0..sources.len() * per_target {
            let (src, len) = m.recv(&mut buf).unwrap();
            assert_eq!(len, BYTES);
            assert!(sources.contains(&src), "a4: message from non-neighbour {src}");
            let seq = next[src as usize];
            assert_eq!(buf, payload(src, seq * p + me as usize), "a4 out-of-order from {src}");
            next[src as usize] = seq + 1;
        }
        let drain_ns = ctx.now() - t1;
        // Dry means no *data* record left; peers' lazy credit returns may
        // already sit in the notification ring.
        assert!(m.try_recv(&mut buf).unwrap().is_none(), "a4 mesh not dry");
        m.flush_credits().unwrap();
        ctx.barrier();
        m.close(ctx).unwrap();
        (send_ns, drain_ns)
    });
    let sends = (k * per_target) as f64;
    (got[0].0 / sends, got.iter().map(|r| r.1).fold(0.0, f64::max))
}

/// rpc: one client round-tripping against a served rank. Returns the
/// client's mean ns per call (request + service + reply).
fn rpc_point() -> f64 {
    let cfg = RmcConfig { slots: 4, slot_bytes: REP.max(REQ), ..RmcConfig::default() };
    let got = universe(2).run(move |ctx| match rpc(ctx, 0, &[1], &cfg).unwrap().unwrap() {
        RpcEnd::Server(mut srv) => {
            ctx.barrier();
            for _ in 0..MSGS {
                let req = srv.recv().unwrap();
                assert_eq!(req.data.len(), REQ);
                // Service: echo the request doubled into a REP-byte reply.
                let mut rep = [0u8; REP];
                for (i, b) in req.data.iter().enumerate() {
                    rep[i] = b.wrapping_mul(2);
                }
                srv.reply(&req, &rep).unwrap();
            }
            ctx.barrier();
            srv.close(ctx).unwrap();
            0.0
        }
        RpcEnd::Client(mut cl) => {
            let mut buf = [0u8; REP];
            ctx.barrier();
            let t0 = ctx.now();
            for seq in 0..MSGS {
                let req = [seq as u8 + 1; REQ];
                assert_eq!(cl.call(&req, &mut buf).unwrap(), REP);
                assert_eq!(buf[REQ - 1], (seq as u8 + 1).wrapping_mul(2), "rpc reply wrong");
            }
            let dt = ctx.now() - t0;
            ctx.barrier();
            cl.close(ctx).unwrap();
            dt
        }
    });
    got[1] / MSGS as f64
}

/// Fleet-agent mode: one deterministic universe exercising the
/// schedule-independent paths only (sized fan-out, 1-slot fan-in, one
/// RPC client), metrics armed, faults env-governed so the chaos sweep can
/// inject through `FOMPI_FAULTS`.
fn agent() {
    let (_, fabric) =
        Universe::new(4).node_size(1).seed(11).notify_depth(256).metrics(true).launch(|ctx| {
            // Phase 1: fan-out 0 → {1,2,3}, rings sized to the burst.
            match fanout(ctx, 0, &[1, 2, 3], MSGS, BYTES, LaggingPolicy::Block).unwrap().unwrap() {
                FanoutEnd::Publisher(mut tx) => {
                    ctx.barrier();
                    for seq in 0..MSGS {
                        tx.publish(&payload(0, seq)).unwrap();
                    }
                    ctx.barrier();
                    tx.close(ctx).unwrap();
                }
                FanoutEnd::Subscriber(mut rx) => {
                    let mut buf = [0u8; BYTES];
                    ctx.barrier();
                    for _ in 0..MSGS {
                        rx.recv(&mut buf).unwrap();
                    }
                    ctx.barrier();
                    rx.close(ctx).unwrap();
                }
            }
            // Phase 2: strict-alternation fan-in 1 → 0 plus an RPC client;
            // ranks 2 and 3 pass through the collectives.
            match fanin(ctx, 0, &[1], 1, BYTES).unwrap() {
                Some(FaninEnd::Producer(mut tx)) => {
                    for seq in 0..MSGS {
                        tx.send(&payload(1, seq)).unwrap();
                    }
                    tx.close(ctx).unwrap();
                }
                Some(FaninEnd::Consumer(mut rx)) => {
                    let mut buf = [0u8; BYTES];
                    for _ in 0..MSGS {
                        rx.recv(&mut buf).unwrap();
                    }
                    rx.close(ctx).unwrap();
                }
                None => {}
            }
            let cfg = RmcConfig { slots: 4, slot_bytes: REP.max(REQ), ..RmcConfig::default() };
            match rpc(ctx, 0, &[1], &cfg).unwrap() {
                Some(RpcEnd::Server(mut srv)) => {
                    for _ in 0..MSGS {
                        let req = srv.recv().unwrap();
                        let rep = [0x7Fu8; REP];
                        srv.reply(&req, &rep).unwrap();
                    }
                    srv.close(ctx).unwrap();
                }
                Some(RpcEnd::Client(mut cl)) => {
                    let mut buf = [0u8; REP];
                    for _ in 0..MSGS {
                        cl.call(&[1u8; REQ], &mut buf).unwrap();
                    }
                    cl.close(ctx).unwrap();
                }
                None => {}
            }
            ctx.barrier();
        });
    println!("{}", metrics_snapshot(&fabric).to_json_line());
}

fn main() {
    if std::env::args().any(|a| a == "--agent-json") {
        agent();
        return;
    }
    let model = PaperModel::default();
    println!("== rmc ablation: WIND a1–a4 + rpc, {BYTES}-byte messages ==\n");
    let mut rows = vec!["scenario,p,slots,slot_bytes,msgs,delivered,dropped,ns,model_ns".into()];

    let a1 = a1_baseline();
    let m1 = model.rmc_fanin_round(BYTES);
    println!("  a1 baseline    1→1 : {a1:>9.1} ns/round   (model {m1:.1})");
    assert!((a1 / m1 - 1.0).abs() < 0.15, "a1 ({a1}) drifted far from its model twin ({m1})");
    rows.push(format!("a1_baseline,2,1,{BYTES},{MSGS},{MSGS},0,{a1},{m1}"));

    let mut prev = 0.0;
    for n in [2usize, 4, 8] {
        let a2 = a2_fanout(n);
        let m2 = model.rmc_fanout_publish(n, BYTES);
        println!("  a2 fan-out    1→{n} : {a2:>9.1} ns/publish (model {m2:.1})");
        assert!(a2 > prev, "fan-out cost must grow with the subscriber count (n={n})");
        assert!(a2 < n as f64 * a1, "fan-out must amortise over a1 rounds per subscriber (n={n})");
        prev = a2;
        rows.push(format!(
            "a2_fanout_{n},{},{MSGS},{BYTES},{MSGS},{},0,{a2},{m2}",
            n + 1,
            n * MSGS
        ));
    }

    let (a2d, delivered, dropped) = a2_fanout_drop();
    println!(
        "  a2 drop       1→2 : {a2d:>9.1} ns/publish ({delivered} delivered, {dropped} dropped)"
    );
    assert_eq!(delivered, 2 * 4, "drop point: exactly the ring capacity is delivered");
    assert_eq!(dropped, 2 * (MSGS as u64 - 4), "drop point: every later publish is counted");
    rows.push(format!("a2_fanout_drop,3,4,{BYTES},{MSGS},{delivered},{dropped},{a2d},"));

    for n in [2usize, 4, 8] {
        let (send, drain) = a3_fanin(n);
        println!(
            "  a3 fan-in     {n}→1 : {send:>9.1} ns/send    (drain {drain:.1} ns/msg, schedule-dependent)"
        );
        rows.push(format!("a3_fanin_{n},{},{MSGS},{BYTES},{MSGS},{},0,{send},", n + 1, n * MSGS));
    }

    for p in [4usize, 8] {
        let (send, drain) = a4_mesh(p, 2, 4);
        let delivered = p * 2 * 4;
        println!(
            "  a4 mesh      p={p}  : {send:>9.1} ns/send    (drain {drain:.1} ns/msg, schedule-dependent)"
        );
        rows.push(format!("a4_mesh_p{p},{p},8,{BYTES},8,{delivered},0,{send},"));
    }

    let r = rpc_point();
    let mr = model.rpc_round(REQ, REP);
    println!("  rpc           1→1 : {r:>9.1} ns/call    (model {mr:.1})");
    assert!(r > a1, "an rpc call is a request round plus a reply round; it cannot beat a1");
    rows.push(format!("rpc_1client,2,4,{},{MSGS},{MSGS},0,{r},{mr}", REP.max(REQ)));

    std::fs::create_dir_all("results").ok();
    std::fs::write("results/rmc_ablation.csv", rows.join("\n") + "\n").expect("write csv");
    println!("\n  -> results/rmc_ablation.csv");
}
