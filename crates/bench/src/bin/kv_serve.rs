//! Served KV-store driver: a simulated client population against the
//! transactional store in `fompi_apps::kv`.
//!
//! ```text
//! cargo run --release -p fompi-bench --bin kv_serve             # full run
//! cargo run --release -p fompi-bench --bin kv_serve -- --smoke  # CI smoke
//! ```
//!
//! The full run serves a Zipf-skewed (θ = 0.99) mixed read/upsert/transfer
//! workload over a 2^20-key keyspace at 64 simulated ranks, and reports
//! throughput plus p50/p99 commit and read latency from the
//! `fabric::metrics` snapshot (the `txn_read`/`txn_commit`/`txn_abort` op
//! classes the transaction layer traces).
//!
//! `--smoke` is the gated CI mode: a small fixed-seed serve whose
//! *schedule-independent* outcomes — commit count, table occupancy, value
//! sum, placement-independent content hash, conservation violations —
//! land in `results/kv_smoke.csv` for byte-diffing. Upserts are additive
//! and transfers conserving, so those fields are the same for every
//! thread interleaving; latency quantiles and abort counts are
//! schedule-dependent and stay on stdout. The retry budget is effectively
//! unbounded here (every transaction must eventually commit for the
//! final table to be exact); set `FOMPI_TXN_RETRY` to serve with a real
//! budget and shed load instead.

use fompi_apps::kv::{conservation_check, serve, KvConfig, KvServeStats, KvStore};
use fompi_fabric::telemetry::EventKind;
use fompi_fabric::{metrics, FaultPlan};
use fompi_runtime::Universe;
use fompi_txn::RetryPolicy;

fn main() {
    // Fleet-agent mode: run the smoke-sized serve under the ambient fault
    // plan (the chaos sweep arms `FOMPI_FAULTS`), print exactly one JSON
    // metrics line, and write nothing under `results/`.
    let agent_json = std::env::args().any(|a| a == "--agent-json");
    let smoke = agent_json || std::env::args().any(|a| a == "--smoke");
    let (p, node_size, cfg) = if smoke {
        (
            8usize,
            4usize,
            KvConfig {
                buckets_per_rank: 512,
                keyspace: 4096,
                theta: 0.99,
                warm_per_rank: 64,
                ops_per_rank: 128,
                seed: 7,
                ..KvConfig::default()
            },
        )
    } else {
        (
            64usize,
            8usize,
            KvConfig {
                buckets_per_rank: 32 * 1024,
                keyspace: 1 << 20,
                theta: 0.99,
                warm_per_rank: 2048,
                ops_per_rank: 512,
                seed: 7,
                ..KvConfig::default()
            },
        )
    };
    // The job-wide policy: `FOMPI_TXN_RETRY` if set, else an effectively
    // unbounded backoff so every operation commits (exactness over
    // shedding — this driver asserts the final table).
    let fallback = RetryPolicy::Backoff { budget: 1 << 20, base_ns: 400, cap_ns: 100_000 };
    let mut universe = Universe::new(p).node_size(node_size).seed(cfg.seed).metrics(true);
    if !agent_json {
        // Agent mode leaves the fault layer env-governed so the fleet's
        // chaos sweep can arm `FOMPI_FAULTS`; standalone runs pin it off.
        universe = universe.faults(FaultPlan::disabled());
    }
    let (outs, fabric) = universe.launch(move |ctx| {
        let store = KvStore::allocate(ctx, cfg);
        let policy = match store.win.endpoint().fabric().txn_retry() {
            Some(_) => RetryPolicy::for_win(&store.win),
            None => fallback.clone(),
        };
        let stats = serve(ctx, &store, &policy);
        let check = conservation_check(ctx, &store, &stats);
        (stats, check)
    });

    let agg = outs.iter().fold(KvServeStats::default(), |mut a, (s, _)| {
        a.reads += s.reads;
        a.hits += s.hits;
        a.upserts += s.upserts;
        a.transfers += s.transfers;
        a.time_ns = a.time_ns.max(s.time_ns);
        a
    });
    let (violations, occupied, value_sum, content_hash) = outs[0].1;
    assert!(outs.iter().all(|(_, c)| *c == outs[0].1), "ranks disagree on the global table digest");
    assert_eq!(violations, 0, "conservation violated");
    let txns = agg.reads + agg.upserts + agg.transfers;

    // Snapshot only now, after quiescence: every rank thread has joined
    // (the launch returned) and the conservation digest has been
    // cross-checked, so the commit tail — retried transactions that
    // landed after the fast ranks finished — is fully recorded. A
    // snapshot taken before this point undercounts `txn_commit` and
    // skews the smoke CSV's commit column low.
    let snap = metrics::snapshot(&fabric);
    let class = |kind: EventKind| snap.classes.iter().find(|c| c.kind == kind);
    let commits = class(EventKind::TxnCommit).map_or(0, |c| c.count);
    let aborts = class(EventKind::TxnAbort).map_or(0, |c| c.count);

    if !agent_json {
        print_report(smoke, p, &cfg, &agg, commits, aborts, txns, &snap, outs[0].1);
    }

    // The gate: work happened, and no value was minted or burned.
    assert!(commits > 0, "no transaction committed");
    assert_eq!(
        commits,
        (p * (cfg.warm_per_rank + cfg.ops_per_rank)) as u64,
        "every issued operation must commit exactly once"
    );

    if agent_json {
        println!("{}", snap.to_json_line());
        return;
    }

    if smoke {
        // Schedule-independent fields only (see module docs).
        let csv = format!(
            "ranks,buckets_per_rank,keyspace,warm_per_rank,ops_per_rank,commits,occupied,value_sum,content_hash,violations\n\
             {p},{},{},{},{},{commits},{occupied},{value_sum},{content_hash},{violations}\n",
            cfg.buckets_per_rank, cfg.keyspace, cfg.warm_per_rank, cfg.ops_per_rank
        );
        std::fs::create_dir_all("results").ok();
        std::fs::write("results/kv_smoke.csv", csv).expect("write kv_smoke.csv");
        println!("  -> results/kv_smoke.csv");
    }
}

#[allow(clippy::too_many_arguments)]
fn print_report(
    smoke: bool,
    p: usize,
    cfg: &KvConfig,
    agg: &KvServeStats,
    commits: u64,
    aborts: u64,
    txns: u64,
    snap: &fompi_fabric::metrics::MetricsSnapshot,
    digest: (u64, u64, u64, u64),
) {
    let class = |kind: EventKind| snap.classes.iter().find(|c| c.kind == kind);
    let (_violations, occupied, value_sum, content_hash) = digest;
    println!(
        "== kv_serve: transactional KV store ({} mode) ==",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "  {} ranks x ({} warm + {} mixed ops), keyspace {}, theta {:.2}",
        p, cfg.warm_per_rank, cfg.ops_per_rank, cfg.keyspace, cfg.theta
    );
    println!(
        "  committed txns : {commits} ({} reads, {} upserts, {} transfers; {} read hits)",
        agg.reads, agg.upserts, agg.transfers, agg.hits
    );
    println!("  aborted attempts: {aborts} (schedule-dependent)");
    println!(
        "  throughput     : {:.1} txn/s virtual ({txns} txns in {:.3} ms)",
        txns as f64 / (agg.time_ns / 1e9),
        agg.time_ns / 1e6
    );
    for (label, kind) in [("txn_commit", EventKind::TxnCommit), ("txn_read", EventKind::TxnRead)] {
        if let Some(c) = class(kind) {
            println!("  {label:<10} lat : p50 {} ns, p99 {} ns, p999 {} ns", c.p50, c.p99, c.p999);
        }
    }
    println!(
        "  table          : {occupied} cells occupied, value sum {value_sum:#x}, hash {content_hash:#018x}"
    );
}
