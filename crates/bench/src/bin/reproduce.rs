//! Regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p fompi-bench --bin reproduce            # everything
//! cargo run --release -p fompi-bench --bin reproduce fig6b ...  # subset
//! ```
//!
//! Small-p points: real execution of the live implementations (virtual
//! time). Large-p series: `fompi-simnet`. CSVs land in `results/`.

use fompi::PaperModel;
use fompi_apps::{dsde, fft, hashtable, milc};
use fompi_bench as bench;
use fompi_bench::Layer;
use fompi_msg::{Comm, MsgEngine};
use fompi_runtime::Universe;
use fompi_simnet::figures as sim;
use std::fmt::Write as _;
use std::fs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    fs::create_dir_all("results").ok();
    println!("== foMPI-rs reproduction harness ==");
    println!("   (virtual-time measurements; shapes comparable to the paper,");
    println!("    absolute values calibrated to Blue Waters constants)\n");
    if want("fig4a") {
        fig4(false, false, "fig4a", "Figure 4a: inter-node Put latency [us]");
    }
    if want("fig4b") {
        fig4(true, false, "fig4b", "Figure 4b: inter-node Get latency [us]");
    }
    if want("fig4c") {
        fig4(false, true, "fig4c", "Figure 4c: intra-node Put latency [us]");
    }
    if want("fig5a") {
        fig5a();
    }
    if want("fig5b") {
        fig5rate(false, "fig5b", "Figure 5b: message rate inter-node [M msgs/s]");
    }
    if want("fig5c") {
        fig5rate(true, "fig5c", "Figure 5c: message rate intra-node [M msgs/s]");
    }
    if want("fig6a") {
        fig6a();
    }
    if want("fig6b") {
        fig6b();
    }
    if want("fig6c") {
        fig6c();
    }
    if want("fig7a") {
        fig7a();
    }
    if want("fig7b") {
        fig7b();
    }
    if want("fig7c") {
        fig7c();
    }
    if want("fig8") {
        fig8();
    }
    if want("models") {
        models();
    }
    if want("drift") {
        drift();
    }
    println!("\nCSV series written to results/");
}

fn write_csv(name: &str, header: &str, rows: &[String]) {
    let mut s = String::new();
    let _ = writeln!(s, "{header}");
    for r in rows {
        let _ = writeln!(s, "{r}");
    }
    fs::write(format!("results/{name}.csv"), s).expect("write csv");
}

fn fig4(get: bool, intra: bool, id: &str, title: &str) {
    println!("--- {title} ---");
    let layers = [Layer::Fompi, Layer::Upc, Layer::Caf, Layer::Mpi1, Layer::Mpi22];
    println!(
        "{:>9} {:>13} {:>13} {:>13} {:>13} {:>13}",
        "size", "foMPI", "UPC", "CAF", "MPI-1", "MPI-2.2"
    );
    let mut rows = Vec::new();
    for size in bench::size_sweep() {
        let vals: Vec<f64> =
            layers.iter().map(|&l| bench::fig4_latency(l, size, intra, get) / 1e3).collect();
        println!(
            "{:>9} {:>13.2} {:>13.2} {:>13.2} {:>13.2} {:>13.2}",
            size, vals[0], vals[1], vals[2], vals[3], vals[4]
        );
        rows.push(format!("{size},{},{},{},{},{}", vals[0], vals[1], vals[2], vals[3], vals[4]));
    }
    write_csv(id, "size_bytes,fompi_us,upc_us,caf_us,mpi1_us,mpi22_us", &rows);
    println!();
}

fn fig5a() {
    println!("--- Figure 5a: communication/computation overlap inter-node [%] ---");
    println!("{:>9} {:>10} {:>10} {:>10}", "size", "foMPI", "UPC", "MPI-2.2");
    let mut rows = Vec::new();
    for size in bench::size_sweep() {
        let f = bench::fig5_overlap(Layer::Fompi, size);
        let u = bench::fig5_overlap(Layer::Upc, size);
        let m = bench::fig5_overlap(Layer::Mpi22, size);
        println!("{size:>9} {f:>10.1} {u:>10.1} {m:>10.1}");
        rows.push(format!("{size},{f},{u},{m}"));
    }
    write_csv("fig5a", "size_bytes,fompi_pct,upc_pct,mpi22_pct", &rows);
    println!();
}

fn fig5rate(intra: bool, id: &str, title: &str) {
    println!("--- {title} ---");
    let layers = [Layer::Fompi, Layer::Upc, Layer::Caf, Layer::Mpi1, Layer::Mpi22];
    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "size", "foMPI", "UPC", "CAF", "MPI-1", "MPI-2.2"
    );
    let mut rows = Vec::new();
    for size in bench::size_sweep().into_iter().filter(|s| *s <= 1 << 15) {
        let vals: Vec<f64> =
            layers.iter().map(|&l| bench::fig5_message_rate(l, size, intra)).collect();
        println!(
            "{:>9} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            size, vals[0], vals[1], vals[2], vals[3], vals[4]
        );
        rows.push(format!("{size},{},{},{},{},{}", vals[0], vals[1], vals[2], vals[3], vals[4]));
    }
    write_csv(id, "size_bytes,fompi,upc,caf,mpi1,mpi22", &rows);
    println!();
}

fn fig6a() {
    println!("--- Figure 6a: atomics latency [us] vs element count ---");
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "elems", "foMPI SUM", "foMPI MIN", "foMPI CAS", "UPC aadd", "UPC CAS"
    );
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8, 64, 512, 4096, 32768] {
        let sum = bench::fig6a_atomics("fompi_sum", n) / 1e3;
        let min = bench::fig6a_atomics("fompi_min", n) / 1e3;
        let cas = bench::fig6a_atomics("fompi_cas", 1) / 1e3;
        let aadd = bench::fig6a_atomics("upc_aadd", n) / 1e3;
        let ucas = bench::fig6a_atomics("upc_cas", 1) / 1e3;
        println!("{n:>9} {sum:>12.2} {min:>12.2} {cas:>12.2} {aadd:>12.2} {ucas:>12.2}");
        rows.push(format!("{n},{sum},{min},{cas},{aadd},{ucas}"));
    }
    write_csv(
        "fig6a",
        "elems,fompi_sum_us,fompi_min_us,fompi_cas_us,upc_aadd_us,upc_cas_us",
        &rows,
    );
    println!();
}

fn print_series(title: &str, id: &str, xlabel: &str, series: &[sim::Series]) {
    println!("--- {title} ---");
    print!("{xlabel:>9}");
    for s in series {
        print!(" {:>22}", s.label);
    }
    println!();
    let mut rows = Vec::new();
    for i in 0..series[0].points.len() {
        let x = series[0].points[i].0;
        print!("{x:>9.0}");
        let mut row = format!("{x}");
        for s in series {
            print!(" {:>22.3}", s.points[i].1);
            let _ = write!(row, ",{}", s.points[i].1);
        }
        println!();
        rows.push(row);
    }
    let header = std::iter::once(xlabel.to_string())
        .chain(series.iter().map(|s| s.label.replace(' ', "_")))
        .collect::<Vec<_>>()
        .join(",");
    write_csv(id, &header, &rows);
    println!();
}

fn fig6b() {
    println!("--- Figure 6b (real, threads): foMPI fence latency [us] ---");
    let mut rows = Vec::new();
    for p in [2usize, 4, 8, 16, 32, 64] {
        let t = bench::fence_latency(p, 32.min(p)) / 1e3;
        println!("  p={p:<4} fence = {t:.2} us");
        rows.push(format!("{p},{t}"));
    }
    write_csv("fig6b_real", "p,fompi_fence_us", &rows);
    let ps: Vec<usize> = (1..=13).map(|e| 1usize << e).collect();
    print_series(
        "Figure 6b (simulated): global synchronization latency [us]",
        "fig6b",
        "p",
        &sim::fig6b(&ps),
    );
}

fn fig6c() {
    println!("--- Figure 6c (real, threads): foMPI PSCW ring latency [us] ---");
    let mut rows = Vec::new();
    for p in [2usize, 4, 8, 16, 32, 64] {
        let t = bench::pscw_latency(p, 32.min(p)) / 1e3;
        println!("  p={p:<4} PSCW = {t:.2} us");
        rows.push(format!("{p},{t}"));
    }
    write_csv("fig6c_real", "p,fompi_pscw_us", &rows);
    let ps: Vec<usize> = (1..=17).map(|e| 1usize << e).collect();
    print_series("Figure 6c (simulated): PSCW ring latency [us]", "fig6c", "p", &sim::fig6c(&ps));
}

fn fig7a() {
    println!("--- Figure 7a (real, threads): hashtable inserts/s [millions] ---");
    let cfg = hashtable::HtConfig {
        inserts_per_rank: 128,
        table_slots: 4096,
        heap_cells: 4096,
        seed: 42,
    };
    let mut rows = Vec::new();
    for p in [2usize, 4, 8, 16] {
        let rma = Universe::new(p).node_size(1).run(|ctx| hashtable::run_rma(ctx, &cfg));
        let upc = Universe::new(p).node_size(1).run(|ctx| hashtable::run_upc(ctx, &cfg));
        let engine = MsgEngine::new(p);
        let mpi = Universe::new(p).node_size(1).run(move |ctx| {
            let comm = Comm::attach(ctx, &engine);
            hashtable::run_mpi1(ctx, &comm, &cfg)
        });
        let rate = |rs: &[hashtable::HtResult]| {
            let t = rs.iter().map(|r| r.time_ns).fold(0.0, f64::max);
            (p * cfg.inserts_per_rank) as f64 / t * 1e3 // M inserts/s
        };
        let (r, u, m) = (rate(&rma), rate(&upc), rate(&mpi));
        println!("  p={p:<4} foMPI={r:>8.2}  UPC={u:>8.2}  MPI-1={m:>8.2}");
        rows.push(format!("{p},{r},{u},{m}"));
    }
    write_csv("fig7a_real", "p,fompi_M_per_s,upc_M_per_s,mpi1_M_per_s", &rows);
    let ps: Vec<usize> = (1..=15).map(|e| 1usize << e).collect();
    print_series(
        "Figure 7a (simulated): inserts per second [billions]",
        "fig7a",
        "p",
        &sim::fig7a(&ps, 32, 128),
    );
}

fn fig7b() {
    println!("--- Figure 7b (real, threads): DSDE time [us], k=3 ---");
    let k = 3;
    let mut rows = Vec::new();
    for p in [8usize, 16] {
        let engine = MsgEngine::new(p);
        let e2 = engine.clone();
        let a2a = Universe::new(p).node_size(2).run(move |ctx| {
            let c = Comm::attach(ctx, &e2);
            dsde::run_alltoall(ctx, &c, k, 9).time_ns
        });
        let e2 = engine.clone();
        let rs = Universe::new(p).node_size(2).run(move |ctx| {
            let c = Comm::attach(ctx, &e2);
            dsde::run_reduce_scatter(ctx, &c, k, 9).time_ns
        });
        let e2 = engine.clone();
        let nbx = Universe::new(p).node_size(2).run(move |ctx| {
            let c = Comm::attach(ctx, &e2);
            dsde::run_nbx(ctx, &c, k, 9, 1).time_ns
        });
        let rma = Universe::new(p).node_size(2).run(move |ctx| {
            let win = fompi::Win::allocate(ctx, dsde::rma_win_bytes(p), 1).unwrap();
            dsde::run_rma(ctx, &win, k, 9).time_ns
        });
        let mx = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max) / 1e3;
        let (a, r, n, o) = (mx(&a2a), mx(&rs), mx(&nbx), mx(&rma));
        println!("  p={p:<4} RMA={o:>8.1}  NBX={n:>8.1}  red_scat={r:>8.1}  alltoall={a:>8.1}");
        rows.push(format!("{p},{o},{n},{r},{a}"));
    }
    write_csv("fig7b_real", "p,rma_us,nbx_us,reduce_scatter_us,alltoall_us", &rows);
    let ps: Vec<usize> = (3..=15).map(|e| 1usize << e).collect();
    print_series(
        "Figure 7b (simulated): DSDE exchange time [us], k=6",
        "fig7b",
        "p",
        &sim::fig7b(&ps, 6),
    );
}

fn fig7c() {
    println!("--- Figure 7c (real, threads): 3-D FFT GFlop/s, n=32 ---");
    let cfg = fft::FftConfig { n: 32, seed: 3 };
    let mut rows = Vec::new();
    for p in [2usize, 4, 8] {
        let engine = MsgEngine::new(p);
        let mpi = Universe::new(p).node_size(2).run(move |ctx| {
            let c = Comm::attach(ctx, &engine);
            fft::run_mpi1(ctx, &c, &cfg, false)
        });
        let rma = Universe::new(p).node_size(2).run(move |ctx| fft::run_rma(ctx, &cfg));
        let upc = Universe::new(p).node_size(2).run(move |ctx| fft::run_upc(ctx, &cfg));
        let gf = |rs: &[fft::FftResult]| {
            let t = rs.iter().map(|r| r.time_ns).fold(0.0, f64::max);
            fft::fft_flops(cfg.n * cfg.n * cfg.n) / t
        };
        let (m, r, u) = (gf(&mpi), gf(&rma), gf(&upc));
        println!(
            "  p={p:<4} foMPI={r:>8.3}  UPC={u:>8.3}  MPI-1={m:>8.3}  (gain {:.1}%)",
            (r / m - 1.0) * 100.0
        );
        rows.push(format!("{p},{r},{u},{m}"));
    }
    write_csv("fig7c_real", "p,fompi_gflops,upc_gflops,mpi1_gflops", &rows);
    let ps: Vec<usize> = (10..=16).map(|e| 1usize << e).collect();
    let series = sim::fig7c(&ps);
    print_series("Figure 7c (simulated): class-D FFT performance [GFlop/s]", "fig7c", "p", &series);
    println!("   improvement of foMPI over MPI-1 (paper annotations: 18.4% ... 101.8%):");
    for (i, &p) in ps.iter().enumerate() {
        let f = series[0].points[i].1;
        let m = series[2].points[i].1;
        println!("     p={p:<7} {:+.1}%", (f / m - 1.0) * 100.0);
    }
    println!();
}

fn fig8() {
    println!("--- Figure 8 (real, threads): MILC proxy CG time [us], local 4x4x4x8 ---");
    let cfg = milc::MilcConfig { local: [4, 4, 4, 8], iters: 5, seed: 4 };
    let mut rows = Vec::new();
    for p in [4usize, 8, 16] {
        let engine = MsgEngine::new(p);
        let mpi = Universe::new(p).node_size(4).run(move |ctx| {
            let c = Comm::attach(ctx, &engine);
            milc::run_mpi1(ctx, &c, &cfg)
        });
        let rma = Universe::new(p).node_size(4).run(move |ctx| milc::run_rma(ctx, &cfg));
        let upc = Universe::new(p).node_size(4).run(move |ctx| milc::run_upc(ctx, &cfg));
        let mx = |rs: &[milc::MilcResult]| rs.iter().map(|r| r.time_ns).fold(0.0, f64::max) / 1e3;
        let (m, r, u) = (mx(&mpi), mx(&rma), mx(&upc));
        println!(
            "  p={p:<4} foMPI={r:>9.1}  UPC={u:>9.1}  MPI-1={m:>9.1}  (gain {:+.1}%)",
            (m / r - 1.0) * 100.0
        );
        rows.push(format!("{p},{r},{u},{m}"));
    }
    write_csv("fig8_real", "p,fompi_us,upc_us,mpi1_us", &rows);
    let ps: Vec<usize> = (12..=19).map(|e| 1usize << e).collect();
    let series = sim::fig8(&ps);
    print_series(
        "Figure 8 (simulated): MILC full-application time [s], weak scaling",
        "fig8",
        "p",
        &series,
    );
    println!("   improvement of foMPI over MPI-1 (paper annotations: 5.3% ... 15.2%):");
    for (i, &p) in ps.iter().enumerate() {
        let f = series[0].points[i].1;
        let m = series[2].points[i].1;
        println!("     p={p:<7} {:+.1}%", (m / f - 1.0) * 100.0);
    }
    println!();
}

fn models() {
    println!("--- Section 3 performance models: measured vs paper ---");
    let paper = PaperModel::default();
    let (pb, pbyte) = bench::fit_models(false);
    let (gb, gbyte) = bench::fit_models(true);
    println!(
        "  Pput  : measured {pb:7.0} + {pbyte:.3} ns/B   (paper {:.0} + {:.2} ns/B)",
        paper.put_base, paper.put_byte
    );
    println!(
        "  Pget  : measured {gb:7.0} + {gbyte:.3} ns/B   (paper {:.0} + {:.2} ns/B)",
        paper.get_base, paper.get_byte
    );
    let (excl, shared, all, unlock, flush, sync) = bench::lock_constants();
    println!("  Plock,excl : measured {excl:7.0} ns   (paper {:.0} ns)", paper.lock_excl);
    println!("  Plock,shrd : measured {shared:7.0} ns   (paper {:.0} ns)", paper.lock_shared);
    println!("  Plock_all  : measured {all:7.0} ns   (paper {:.0} ns)", paper.lock_shared);
    println!("  Punlock    : measured {unlock:7.0} ns   (paper {:.0} ns)", paper.unlock);
    println!("  Pflush     : measured {flush:7.0} ns   (paper {:.0} ns)", paper.flush);
    println!("  Psync      : measured {sync:7.0} ns   (paper {:.0} ns)", paper.sync);
    // Fence constant: fit t = c · log2 p.
    let mut cs = Vec::new();
    for p in [4usize, 8, 16, 32] {
        let t = bench::fence_latency(p, 1);
        cs.push(t / (p as f64).log2());
    }
    let c = cs.iter().sum::<f64>() / cs.len() as f64;
    println!(
        "  Pfence     : measured {c:7.0} ns * log2(p)   (paper {:.0} ns * log2(p))",
        paper.fence_log
    );
    let p4 = bench::pscw_latency(4, 1);
    println!("  PSCW cycle : measured {p4:7.0} ns (k=2)   (paper {:.0} ns)", paper.pscw_round(2));
    let p4f = bench::pscw_latency_cfg(4, 1, true);
    println!("  PSCW cycle (pscw_fast FAA-ring variant): {p4f:7.0} ns (k=2)");
    write_csv(
        "models",
        "metric,measured,paper",
        &[
            format!("put_base_ns,{pb},{}", paper.put_base),
            format!("put_byte_ns,{pbyte},{}", paper.put_byte),
            format!("get_base_ns,{gb},{}", paper.get_base),
            format!("get_byte_ns,{gbyte},{}", paper.get_byte),
            format!("lock_excl_ns,{excl},{}", paper.lock_excl),
            format!("lock_shared_ns,{shared},{}", paper.lock_shared),
            format!("lock_all_ns,{all},{}", paper.lock_shared),
            format!("unlock_ns,{unlock},{}", paper.unlock),
            format!("flush_ns,{flush},{}", paper.flush),
            format!("sync_ns,{sync},{}", paper.sync),
            format!("fence_log_ns,{c},{}", paper.fence_log),
            format!("pscw_k2_ns,{p4},{}", paper.pscw_round(2)),
        ],
    );
    println!();
}

fn drift() {
    println!("--- Model drift: telemetry-observed costs vs §3 closed forms (p=4) ---");
    let mut rows = bench::drift::collect(4);
    // Batched-path coverage: the same drift discipline applied to the
    // issue-side batching layer's closed form (put_batched / batch_flush).
    rows.extend(bench::drift::collect_batched(4));
    print!("{}", bench::drift::render(&rows));
    // Split the table: deterministic classes feed the CI determinism gate
    // (drift.csv must regenerate byte-identically); partner-waiting
    // classes vary with thread scheduling and live apart.
    let (sched, det): (Vec<_>, Vec<_>) =
        rows.into_iter().partition(|r| bench::drift::is_schedule_dependent(r.class));
    write_csv("drift", bench::drift::csv_header(), &bench::drift::csv_rows(&det));
    write_csv("drift_sched", bench::drift::csv_header(), &bench::drift::csv_rows(&sched));
    println!();
}
