//! The fleet's sweepable workhorse agent: one backend, one rank count,
//! one seed, one JSON metrics line.
//!
//! ```text
//! bench_agent --agent-json --backend rma  --ranks 4 --seed 1
//! bench_agent --agent-json --backend msg  --ranks 4 --seed 1
//! bench_agent --agent-json --backend pgas --ranks 4 --seed 1
//! bench_agent --agent-json --backend rma  --ranks 4 --node-size 2
//! ```
//!
//! Each backend runs an equivalent fixed-shape neighbor workload over a
//! different software path — raw RMA (fompi one-sided), notified
//! msg-channels, and the compiled-PGAS layer — so a fleet sweep compares
//! the three stacks on identical topology and op mix. Every workload is
//! built from schedule-independent primitives only (single-locker epochs,
//! disjoint AMO targets, pairwise channels), so the virtual-time metrics
//! line is byte-stable for a given (backend, ranks, seed) and the fleet
//! summary can be byte-diffed in CI.
//!
//! `--node-size` sets how many consecutive ranks share a node: 1 makes
//! every neighbor hop cross the network, larger values route part of the
//! ring through the XPMEM fast path. The placement changes per-op
//! *costs*, never the schedule, so every (backend, ranks, node_size,
//! seed) point stays byte-stable and the fleet can sweep locality as a
//! first-class axis.
//!
//! `FOMPI_FAULTS` is deliberately *not* overridden: the chaos sweep arms
//! it per agent, and fault draws are issue-side seeded, so even chaos
//! metrics are deterministic.

use fompi::{LockType, MpiOp, NumKind, Win};
use fompi_fabric::{metrics_snapshot, Fabric};
use fompi_msg::channel::{channel, ChannelEnd};
use fompi_pgas::SharedArray;
use fompi_runtime::Universe;
use std::process::ExitCode;
use std::sync::Arc;

/// Put/get sizes each backend streams (8 B … 4 KiB spans the DMAPP
/// protocol change, so the size histograms cover both regimes).
const SIZES: [usize; 4] = [8, 64, 512, 4096];
/// Ops per size per rank.
const REPS: usize = 8;
/// Channel messages per pair (msg backend).
const MSGS: usize = 32;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_agent --backend <rma|msg|pgas> --ranks <N> [--node-size <M>] \\
         [--seed <S>] [--agent-json]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut backend = String::new();
    let mut ranks = 0usize;
    let mut node_size = 1usize;
    let mut seed = 1u64;
    let mut agent_json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--agent-json" => agent_json = true,
            "--backend" => backend = args.next().unwrap_or_default(),
            "--ranks" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => ranks = n,
                None => return usage(),
            },
            "--node-size" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => node_size = n,
                _ => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if ranks < 2 || !ranks.is_multiple_of(2) {
        eprintln!("bench_agent: --ranks must be an even number >= 2 (pairwise channel phase)");
        return ExitCode::FAILURE;
    }
    let fabric = match backend.as_str() {
        "rma" => rma(ranks, node_size, seed),
        "msg" => msg(ranks, node_size, seed),
        "pgas" => pgas(ranks, node_size, seed),
        _ => return usage(),
    };
    let snap = metrics_snapshot(&fabric);
    if agent_json {
        println!("{}", snap.to_json_line());
    } else {
        print!("{}", snap.to_prometheus());
    }
    ExitCode::SUCCESS
}

fn universe(p: usize, node_size: usize, seed: u64) -> Universe {
    Universe::new(p)
        .node_size(node_size)
        .seed(seed)
        .metrics(true)
        .notify_depth(2 * REPS * SIZES.len())
}

/// Raw one-sided backend: ring-neighbor put/get epochs, disjoint-target
/// AMOs, notified handoffs and fence rounds. Each target is locked by
/// exactly one origin (its left neighbor), so no lock is ever contended.
fn rma(p: usize, node_size: usize, seed: u64) -> Arc<Fabric> {
    let (_, fabric) = universe(p, node_size, seed).launch(move |ctx| {
        let win = Win::allocate(ctx, 1 << 16, 1).unwrap();
        let right = (ctx.rank() + 1) % ctx.size() as u32;
        win.lock(LockType::Exclusive, right).unwrap();
        let mut disp = 0usize;
        for size in SIZES {
            let data = vec![0x5Au8; size];
            for _ in 0..REPS {
                win.put(&data, right, disp).unwrap();
                disp += size;
            }
            win.flush(right).unwrap();
        }
        let mut buf = vec![0u8; 512];
        win.get(&mut buf, right, 0).unwrap();
        win.flush(right).unwrap();
        win.accumulate(&[1u8; 64], NumKind::U64, MpiOp::Sum, right, disp).unwrap();
        win.compare_and_swap(7, 0, right, disp + 64).unwrap();
        win.flush(right).unwrap();
        win.unlock(right).unwrap();
        win.fence().unwrap();
        win.fence().unwrap();
        win.free(ctx);
        // Notified ring: every rank streams to its right neighbor and
        // drains from its left; records are matched by tag = index.
        let nwin = Win::allocate(ctx, REPS * 64, 1).unwrap();
        nwin.lock_all().unwrap();
        ctx.barrier();
        for i in 0..REPS {
            nwin.put_notify(&[i as u8; 64], right, i * 64, i as u32).unwrap();
        }
        let left = (ctx.rank() + ctx.size() as u32 - 1) % ctx.size() as u32;
        for i in 0..REPS as u32 {
            nwin.wait_notify(left, i).unwrap();
        }
        nwin.unlock_all().unwrap();
        ctx.barrier();
    });
    fabric
}

/// Msg-channel backend: the same byte volume moved through notified SPSC
/// channels, one independent pair per two ranks (even sender, odd
/// receiver).
fn msg(p: usize, node_size: usize, seed: u64) -> Arc<Fabric> {
    let (_, fabric) = universe(p, node_size, seed).launch(move |ctx| {
        for pair in 0..(p as u32) / 2 {
            let (tx_rank, rx_rank) = (2 * pair, 2 * pair + 1);
            match channel(ctx, tx_rank, rx_rank, 4, *SIZES.last().unwrap()).unwrap() {
                Some(ChannelEnd::Sender(mut tx)) => {
                    for i in 0..MSGS {
                        let msg = vec![i as u8; SIZES[i % SIZES.len()]];
                        tx.send(&msg).unwrap();
                    }
                    tx.close(ctx).unwrap();
                }
                Some(ChannelEnd::Receiver(mut rx)) => {
                    let mut buf = [0u8; 4096];
                    for _ in 0..MSGS {
                        rx.recv(&mut buf).unwrap();
                    }
                    rx.close(ctx).unwrap();
                }
                None => {}
            }
        }
        ctx.barrier();
    });
    fabric
}

/// Compiled-PGAS backend: the same neighbor traffic through the UPC-style
/// shared array (per-op software overhead on the same fabric), including
/// uncontended remote atomics onto per-origin slots.
fn pgas(p: usize, node_size: usize, seed: u64) -> Arc<Fabric> {
    let (_, fabric) = universe(p, node_size, seed).launch(move |ctx| {
        let arr = SharedArray::all_alloc(ctx, 1 << 16);
        let right = (ctx.rank() + 1) % ctx.size() as u32;
        let mut disp = 0usize;
        for size in SIZES {
            let data = vec![0xC3u8; size];
            for _ in 0..REPS {
                arr.memput(right, disp, &data);
                disp += size;
            }
        }
        arr.fence();
        let mut buf = vec![0u8; 512];
        arr.memget(&mut buf, right, 0);
        // One aadd per origin onto a slot only this origin touches.
        arr.aadd(right, disp + 8 * ctx.rank() as usize, 3);
        arr.barrier();
    });
    fabric
}
