//! Fleet agent wrapping the DSDE motif: one sparse neighbour-exchange
//! round over the remote-memory-channel mesh, one JSON metrics line.
//!
//! ```text
//! dsde_agent --agent-json [--ranks <N>] [--seed <S>]
//! ```
//!
//! The exchange drains with `ANY_SOURCE`, so per-op latency joins arrive
//! in schedule order — this agent is registered *unstable*: its numbers
//! feed the wall-clock table and the chaos sweep, never the byte-diffed
//! summary (the same contract as `kv_serve`).

use fompi_apps::dsde;
use fompi_fabric::metrics_snapshot;
use fompi_rmc::RmcConfig;
use fompi_runtime::Universe;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut ranks = 8usize;
    let mut seed = 1u64;
    let mut agent_json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--agent-json" => agent_json = true,
            "--ranks" => ranks = args.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(1),
            other => {
                eprintln!("dsde_agent: unknown argument {other:?}");
                eprintln!("usage: dsde_agent --agent-json [--ranks <N>] [--seed <S>]");
                return ExitCode::FAILURE;
            }
        }
    }
    if ranks < 2 {
        eprintln!("dsde_agent: --ranks must be >= 2");
        return ExitCode::FAILURE;
    }
    let k = 3.min(ranks - 1);
    let cfg = RmcConfig { slots: 4, slot_bytes: 8, ..RmcConfig::default() };
    let (_, fabric) =
        Universe::new(ranks).node_size(2).seed(seed).notify_depth(256).metrics(true).launch(
            move |ctx| {
                let mut m = fompi_rmc::mesh(ctx, &cfg).expect("mesh");
                let r = dsde::run_rmc(ctx, &mut m, k, seed);
                assert_eq!(r.received.len(), {
                    let p = ctx.size();
                    (0..p as u32)
                        .flat_map(|s| dsde::pick_targets(s, p, k, seed))
                        .filter(|&t| t == ctx.rank())
                        .count()
                });
                m.close(ctx).expect("mesh close");
            },
        );
    let snap = metrics_snapshot(&fabric);
    if agent_json {
        println!("{}", snap.to_json_line());
    } else {
        print!("{}", snap.to_prometheus());
    }
    ExitCode::SUCCESS
}
