//! Deterministic virtual-time perf-regression gate.
//!
//! ```text
//! cargo run --release -p fompi-bench --bin perfgate                  # write BENCH_PR9.json
//! cargo run --release -p fompi-bench --bin perfgate -- --check results/BENCH_PR9_baseline.json
//! ```
//!
//! The fabric charges *virtual* time from a fixed cost model, so every
//! metric here is bit-reproducible: the same binary on any machine, any
//! load, produces the same JSON. That is what makes a tight (1%) regression
//! gate workable in CI — there is no measurement noise to absorb, only
//! genuine model/protocol changes. A regression means a code change made a
//! protocol charge more virtual time; an improvement means the baseline is
//! stale and should be regenerated deliberately:
//!
//! ```text
//! cargo run --release -p fompi-bench --bin perfgate
//! cp BENCH_PR9.json results/BENCH_PR9_baseline.json
//! ```
//!
//! Metrics cover the §3 primitives at small and large sizes, with the
//! issue-side batching layer both off and on (put bursts and
//! hardware-AMO accumulate bursts), plus the notified-access paths: a
//! single `put_notify`/`wait_notify` handoff and one `msg::channel`
//! round (notified payload put forward, notified credit-AMO back), the
//! transaction layer's hot path: one versioned read and the commit
//! phase of a 2-key transaction, and the remote-memory-channel layer:
//! a steady-state fan-in round over a 1-slot ring, the publisher-side
//! cost of a 2-subscriber fan-out publish, and one full single-client
//! RPC round (request forward, correlated reply back). Every rmc
//! metric is sender-side or single-pairing, so it stays deterministic
//! (consumer `ANY_SOURCE` drains are schedule-dependent and excluded).

use fompi::{LockType, MpiOp, NumKind, Win};
use fompi_fabric::FaultPlan;
use fompi_fleet::gate::{compare, parse_flat_json, EXIT_BASELINE, EXIT_REGRESSED};
use fompi_msg::channel::{channel, ChannelEnd};
use fompi_rmc::{FaninEnd, FanoutEnd, LaggingPolicy, RmcConfig, RpcEnd};
use fompi_runtime::{RankCtx, Universe};
use fompi_txn::{Txn, VersionedCell};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Relative regression tolerance. Virtual time is deterministic, so this
/// only exists to forgive float formatting round-trips, not noise.
const TOLERANCE: f64 = 0.01;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--check" => Some(path.clone()),
        _ => {
            eprintln!("usage: perfgate [--check <baseline.json>]");
            return ExitCode::FAILURE;
        }
    };

    let metrics = collect();
    let json = render_json(&metrics);
    std::fs::write("BENCH_PR9.json", &json).expect("write BENCH_PR9.json");
    println!("== perfgate: virtual-time metrics (ns) ==");
    for (k, v) in &metrics {
        println!("  {k:<28} {v:>12.1}");
    }
    println!("-> BENCH_PR9.json");

    let Some(path) = baseline_path else {
        return ExitCode::SUCCESS;
    };
    // The comparison itself is `fompi_fleet::gate` — one implementation
    // shared with `fleet --gate`, including the exit-code contract: 2 for
    // a regressed/vanished metric, 3 for a missing/unparseable baseline.
    let base_text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perfgate: baseline {path} missing/unreadable: {e} (exit 3)");
            return ExitCode::from(EXIT_BASELINE);
        }
    };
    let baseline = parse_flat_json(&base_text);
    if baseline.is_empty() {
        eprintln!("perfgate: baseline {path} parsed to zero metrics (exit 3)");
        return ExitCode::from(EXIT_BASELINE);
    }
    println!("== perfgate: check vs {path} (tolerance {:.1}%) ==", TOLERANCE * 100.0);
    let report = compare(&baseline, &metrics, &|_| TOLERANCE);
    for f in &report.failures {
        match f.now {
            Some(now) => println!("  FAIL {}: {:.1} -> {now:.1} ns", f.describe(), f.base),
            None => println!("  FAIL {}: metric missing from this build", f.metric),
        }
    }
    for k in &report.improved {
        println!(
            "  ok   {k}: {:.1} -> {:.1} ns [improved; consider refreshing the baseline]",
            baseline[k], metrics[k]
        );
    }
    for (k, v) in &metrics {
        if !report.failures.iter().any(|f| &f.metric == k) && !report.improved.contains(k) {
            if baseline.contains_key(k) {
                println!("  ok   {k}: {v:.1} ns");
            } else {
                println!("  note {k}: new metric, not in baseline (refresh to start gating it)");
            }
        }
    }
    if !report.passed() {
        eprintln!(
            "perfgate: virtual-time regression beyond {:.1}% in: {} (exit 2)",
            TOLERANCE * 100.0,
            report.failure_summary()
        );
        return ExitCode::from(EXIT_REGRESSED);
    }
    println!("perfgate: all {} metrics within tolerance.", report.checked);
    ExitCode::SUCCESS
}

/// Run `f` on rank 0 of a deterministic 2-rank inter-node job and return
/// the virtual ns it reports. Faults are explicitly disabled and batching
/// explicitly set, so ambient `FOMPI_*` knobs cannot perturb the gate.
fn measure(batch: bool, f: impl Fn(&Win, &RankCtx) -> f64 + Send + Sync) -> f64 {
    let got = Universe::new(2).node_size(1).seed(1).faults(FaultPlan::disabled()).batch(batch).run(
        |ctx| {
            let win = Win::allocate(ctx, 1 << 14, 1).unwrap();
            let dt = if ctx.rank() == 0 { f(&win, ctx) } else { 0.0 };
            ctx.barrier();
            dt
        },
    );
    got[0]
}

/// A locked epoch issuing `n` contiguous `chunk`-sized puts then flushing;
/// returns total virtual ns for the epoch body.
fn put_epoch(batch: bool, n: usize, chunk: usize) -> f64 {
    measure(batch, move |win, ctx| {
        let data = vec![5u8; chunk];
        win.lock(LockType::Exclusive, 1).unwrap();
        let t0 = ctx.now();
        for i in 0..n {
            win.put(&data, 1, i * chunk).unwrap();
        }
        win.flush(1).unwrap();
        let dt = ctx.now() - t0;
        win.unlock(1).unwrap();
        dt
    })
}

fn collect() -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    // Small puts: a 16-op contiguous burst, per-op cost, both paths.
    m.insert("put_small_8_unbatched_ns".into(), put_epoch(false, 16, 8) / 16.0);
    m.insert("put_small_8_batched_ns".into(), put_epoch(true, 16, 8) / 16.0);
    // Large puts sit beyond the protocol change and bypass batching; gate
    // both switch positions to prove the bypass stays free.
    m.insert("put_large_8192_unbatched_ns".into(), put_epoch(false, 1, 8192));
    m.insert("put_large_8192_batched_ns".into(), put_epoch(true, 1, 8192));
    // Gets (never batched; reads must see a coherent horizon).
    m.insert(
        "get_small_8_ns".into(),
        measure(false, |win, ctx| {
            let mut dst = [0u8; 8];
            win.lock(LockType::Shared, 1).unwrap();
            let t0 = ctx.now();
            win.get(&mut dst, 1, 0).unwrap();
            win.flush(1).unwrap();
            let dt = ctx.now() - t0;
            win.unlock(1).unwrap();
            dt
        }),
    );
    m.insert(
        "get_large_8192_ns".into(),
        measure(false, |win, ctx| {
            let mut dst = vec![0u8; 8192];
            win.lock(LockType::Shared, 1).unwrap();
            let t0 = ctx.now();
            win.get(&mut dst, 1, 0).unwrap();
            win.flush(1).unwrap();
            let dt = ctx.now() - t0;
            win.unlock(1).unwrap();
            dt
        }),
    );
    // Hardware-AMO accumulate: 8 contiguous 8-byte MPI_SUM elements — an
    // AMO burst when batching is armed.
    let amo_epoch = |batch: bool| {
        measure(batch, |win, ctx| {
            let data = [1u8; 64];
            win.lock(LockType::Exclusive, 1).unwrap();
            let t0 = ctx.now();
            win.accumulate(&data, NumKind::U64, MpiOp::Sum, 1, 0).unwrap();
            win.flush(1).unwrap();
            let dt = ctx.now() - t0;
            win.unlock(1).unwrap();
            dt
        })
    };
    m.insert("amo_sum8_unbatched_ns".into(), amo_epoch(false));
    m.insert("amo_sum8_batched_ns".into(), amo_epoch(true));
    // One 8-byte CAS (PCAS).
    m.insert(
        "amo_cas_ns".into(),
        measure(false, |win, ctx| {
            win.lock(LockType::Exclusive, 1).unwrap();
            let t0 = ctx.now();
            win.compare_and_swap(7, 0, 1, 0).unwrap();
            let dt = ctx.now() - t0;
            win.unlock(1).unwrap();
            dt
        }),
    );
    // Fence epoch at p = 2 (collective: every rank participates).
    let fence =
        Universe::new(2).node_size(1).seed(1).faults(FaultPlan::disabled()).batch(false).run(
            |ctx| {
                let win = Win::allocate(ctx, 64, 1).unwrap();
                win.fence().unwrap();
                let t0 = ctx.now();
                win.fence().unwrap();
                let dt = ctx.now() - t0;
                win.fence_assert(fompi::ASSERT_NOSUCCEED).unwrap();
                ctx.barrier();
                dt
            },
        );
    m.insert("fence_p2_ns".into(), fence[0]);
    // Notified put: consumer-side cost of one 8-byte `put_notify` landing
    // (producer's put retires, the notification record is matched by
    // `wait_notify`, and the consumer's clock joins the data's stamp).
    let notified = Universe::new(2)
        .node_size(1)
        .seed(1)
        .faults(FaultPlan::disabled())
        .batch(false)
        .notify_depth(16)
        .run(|ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            win.lock_all().unwrap();
            ctx.barrier();
            let t0 = ctx.now();
            let dt = if ctx.rank() == 0 {
                win.put_notify(&7u64.to_le_bytes(), 1, 0, 1).unwrap();
                0.0
            } else {
                win.wait_notify(0, 1).unwrap();
                ctx.now() - t0
            };
            win.unlock_all().unwrap();
            ctx.barrier();
            dt
        });
    m.insert("put_notify_8_ns".into(), notified[1]);
    // One `msg::channel` round over a 1-slot ring: every send after the
    // first blocks on the previous credit, so producer time / rounds is
    // the steady-state notified put + notified credit-AMO pace.
    const CHAN_ROUNDS: usize = 4;
    let chan = Universe::new(2)
        .node_size(1)
        .seed(1)
        .faults(FaultPlan::disabled())
        .batch(false)
        .notify_depth(16)
        .run(|ctx| {
            match channel(ctx, 0, 1, 1, 64).unwrap().unwrap() {
                ChannelEnd::Sender(mut tx) => {
                    let msg = [9u8; 64];
                    ctx.barrier();
                    let t0 = ctx.now();
                    for _ in 0..CHAN_ROUNDS {
                        tx.send(&msg).unwrap();
                    }
                    // Absorb the final credit so whole rounds are timed.
                    while tx.credits() == 0 {
                        tx.poll_credits().unwrap();
                        std::thread::yield_now();
                    }
                    let dt = ctx.now() - t0;
                    tx.close(ctx).unwrap();
                    dt / CHAN_ROUNDS as f64
                }
                ChannelEnd::Receiver(mut rx) => {
                    let mut buf = [0u8; 64];
                    ctx.barrier();
                    for _ in 0..CHAN_ROUNDS {
                        rx.recv(&mut buf).unwrap();
                    }
                    rx.close(ctx).unwrap();
                    0.0
                }
            }
        });
    m.insert("channel_round_64_ns".into(), chan[0]);
    // Remote-memory-channel twins. All three are timed on the *sending*
    // side (or a single fixed pairing), where virtual time is schedule-
    // independent; consumer `ANY_SOURCE` drain clocks are max-joins in
    // arrival order and would not byte-stabilise.
    //
    // Fan-in over a 1-slot ring: strict data/credit alternation, so
    // producer time / rounds is the steady-state rmc round.
    const RMC_ROUNDS: usize = 4;
    let fanin_run = Universe::new(2)
        .node_size(1)
        .seed(1)
        .faults(FaultPlan::disabled())
        .batch(false)
        .notify_depth(16)
        .run(|ctx| match fompi_rmc::fanin(ctx, 0, &[1], 1, 64).unwrap().unwrap() {
            FaninEnd::Producer(mut tx) => {
                let msg = [3u8; 64];
                ctx.barrier();
                let t0 = ctx.now();
                for _ in 0..RMC_ROUNDS {
                    tx.send(&msg).unwrap();
                }
                while tx.credits() == 0 {
                    tx.poll_credits().unwrap();
                    std::thread::yield_now();
                }
                let dt = ctx.now() - t0;
                tx.close(ctx).unwrap();
                dt / RMC_ROUNDS as f64
            }
            FaninEnd::Consumer(mut rx) => {
                let mut buf = [0u8; 64];
                ctx.barrier();
                for _ in 0..RMC_ROUNDS {
                    rx.recv(&mut buf).unwrap();
                }
                rx.close(ctx).unwrap();
                0.0
            }
        });
    m.insert("rmc_fanin_round_64_ns".into(), fanin_run[1]);
    // Fan-out publish to 2 subscribers with rings sized to the burst, so
    // the publisher never blocks on credits: pure issue-side fan-out cost.
    let fanout_run = Universe::new(3)
        .node_size(1)
        .seed(1)
        .faults(FaultPlan::disabled())
        .batch(false)
        .notify_depth(16)
        .run(|ctx| {
            match fompi_rmc::fanout(ctx, 0, &[1, 2], RMC_ROUNDS, 64, LaggingPolicy::Block)
                .unwrap()
                .unwrap()
            {
                FanoutEnd::Publisher(mut tx) => {
                    let msg = [4u8; 64];
                    ctx.barrier();
                    let t0 = ctx.now();
                    for _ in 0..RMC_ROUNDS {
                        assert_eq!(tx.publish(&msg).unwrap(), 2);
                    }
                    let dt = ctx.now() - t0;
                    ctx.barrier();
                    tx.close(ctx).unwrap();
                    dt / RMC_ROUNDS as f64
                }
                FanoutEnd::Subscriber(mut rx) => {
                    let mut buf = [0u8; 64];
                    ctx.barrier();
                    for _ in 0..RMC_ROUNDS {
                        rx.recv(&mut buf).unwrap();
                    }
                    ctx.barrier();
                    rx.close(ctx).unwrap();
                    0.0
                }
            }
        });
    m.insert("rmc_fanout_publish_2sub_ns".into(), fanout_run[0]);
    // One full RPC round with a single client: the server's probe order
    // has exactly one source, so the round time is deterministic.
    let rpc_cfg = RmcConfig { slots: 4, slot_bytes: 64, ..RmcConfig::default() };
    let rpc_run = Universe::new(2)
        .node_size(1)
        .seed(1)
        .faults(FaultPlan::disabled())
        .batch(false)
        .notify_depth(16)
        .run(move |ctx| match fompi_rmc::rpc(ctx, 0, &[1], &rpc_cfg).unwrap().unwrap() {
            RpcEnd::Server(mut srv) => {
                for _ in 0..RMC_ROUNDS {
                    let req = srv.recv().unwrap();
                    let rep = req.data.clone();
                    srv.reply(&req, &rep).unwrap();
                }
                srv.close(ctx).unwrap();
                0.0
            }
            RpcEnd::Client(mut cl) => {
                let req = [6u8; 64];
                let mut rep = [0u8; 64];
                let t0 = ctx.now();
                for _ in 0..RMC_ROUNDS {
                    cl.call(&req, &mut rep).unwrap();
                }
                let dt = ctx.now() - t0;
                cl.close(ctx).unwrap();
                dt / RMC_ROUNDS as f64
            }
        });
    m.insert("rpc_round_64_ns".into(), rpc_run[1]);
    // Transaction-layer twins: one versioned read (two NO_OP version
    // fetches bracketing a NO_OP payload fetch) and the commit phase of a
    // 2-key transaction (lock-CAS x2, REPLACE accumulate x2, flush,
    // publish-CAS x2, flush) — read time excluded so the metric isolates
    // the commit protocol.
    let txn = Universe::new(2).node_size(1).seed(1).faults(FaultPlan::disabled()).batch(false).run(
        |ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            VersionedCell::init_local(&win, 0, &7u64.to_le_bytes());
            VersionedCell::init_local(&win, 16, &9u64.to_le_bytes());
            ctx.barrier();
            win.lock_all().unwrap();
            let mut out = (0.0, 0.0);
            if ctx.rank() == 0 {
                let (a, b) = (VersionedCell::new(1, 0, 8), VersionedCell::new(1, 16, 8));
                let mut buf = [0u8; 8];
                let t0 = ctx.now();
                a.read(&win, &mut buf).unwrap();
                let read_ns = ctx.now() - t0;
                let mut txn = Txn::begin(&win);
                txn.read(a, &mut buf).unwrap();
                txn.write(a, &1u64.to_le_bytes()).unwrap();
                txn.read(b, &mut buf).unwrap();
                txn.write(b, &2u64.to_le_bytes()).unwrap();
                let t1 = ctx.now();
                txn.commit().unwrap();
                out = (read_ns, ctx.now() - t1);
            }
            win.unlock_all().unwrap();
            ctx.barrier();
            out
        },
    );
    m.insert("txn_read_ns".into(), txn[0].0);
    m.insert("txn_commit_2key_ns".into(), txn[0].1);
    m
}

/// Flat sorted-key JSON. `f64` Display is the shortest round-trip
/// representation, so output is byte-stable for identical inputs.
fn render_json(metrics: &BTreeMap<String, f64>) -> String {
    let mut s = String::from("{\n");
    let last = metrics.len().saturating_sub(1);
    for (i, (k, v)) in metrics.iter().enumerate() {
        s.push_str(&format!("  \"{k}\": {v}{}\n", if i == last { "" } else { "," }));
    }
    s.push_str("}\n");
    s
}
