//! fleet: the process-based cross-backend bench orchestrator.
//!
//! ```text
//! cargo build --release -p fompi-bench                      # agents must exist first
//! cargo run --release -p fompi-bench --bin fleet -- --smoke # small sweep -> results/fleet_summary.json
//! cargo run --release -p fompi-bench --bin fleet -- --sweep # full rank sweep
//! cargo run --release -p fompi-bench --bin fleet -- --chaos # sweep under FOMPI_FAULTS -> results/fleet_chaos.json
//! cargo run --release -p fompi-bench --bin fleet -- --gate  # smoke sweep vs results/fleet_baseline.json
//! ```
//!
//! Unlike every other bench in this repo, the fleet runs its workloads as
//! *separate release processes*: each registered agent is spawned with an
//! expanded argv template, its single-line JSON metrics output is parsed
//! (errors name the agent), its RSS/CPU/wall usage is sampled from
//! `/proc`, and the per-agent histogram snapshots are merged into one
//! fleet summary — p50/p99/p999 per op class per configuration plus exact
//! fleet-wide distributions. The summary holds only virtual-time data
//! from schedule-independent agents, so it is byte-stable and CI diffs
//! it; the wall-clock side — and every schedule-dependent agent's numbers
//! — land in the human sweep table (stdout + `results/fleet_sweep.txt`).
//!
//! `--gate` compares the freshly merged summary against a checked-in
//! baseline with per-metric tolerances (`fompi_fleet::gate`, shared with
//! perfgate) and exits 2 on a regression, 3 on a missing/unparseable
//! baseline. `--slowdown <pct>` synthetically inflates the virtual-ns
//! metrics first — the gate's own smoke test, wired into ci.sh.
//!
//! Agents run under a scrubbed environment (every `FOMPI_*` knob
//! removed) so ambient shell state cannot perturb the summary; `--chaos`
//! then arms `FOMPI_FAULTS` explicitly, making tail-latency-under-failure
//! a tracked number (fault draws are issue-side seeded, so even the chaos
//! summary is deterministic).

use fompi_fleet::{
    compare, expand_argv, flatten_summary, fleet_tolerance, parse_agent_json, render_summary,
    render_table, run_agent, AgentSpec, ConfigResult, EXIT_BASELINE, EXIT_REGRESSED,
};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::{Command, ExitCode};
use std::time::Duration;

/// Every agent the fleet can spawn. `bench_agent` sweeps rank counts ×
/// node sizes per backend (node_size 1 = all-inter-node, 2 = half the
/// ring hops ride the XPMEM fast path); `scope`, `txn_ablation` and
/// `rmc_ablation` are fixed-config agents that add binary diversity
/// (their workloads live in those bins). `kv-serve`, `dsde` and
/// `hashtable` are the *unstable* agents: transactional abort/retry
/// counts and `ANY_SOURCE` drain joins are schedule-dependent, so their
/// metrics feed the wall-clock table and the chaos sweep but never the
/// byte-diffed summary.
const BENCH_ARGS: &[&str] = &[
    "--agent-json",
    "--backend",
    "{backend}",
    "--ranks",
    "{ranks}",
    "--node-size",
    "{node_size}",
    "--seed",
    "{seed}",
];
const REGISTRY: &[AgentSpec] = &[
    AgentSpec {
        name: "bench-rma",
        bin: "bench_agent",
        args: BENCH_ARGS,
        backend: "rma",
        ranks: &[2, 4, 8, 16],
        node_sizes: &[1, 2],
        stable: true,
    },
    AgentSpec {
        name: "bench-msg",
        bin: "bench_agent",
        args: BENCH_ARGS,
        backend: "msg",
        ranks: &[2, 4, 8, 16],
        node_sizes: &[1, 2],
        stable: true,
    },
    AgentSpec {
        name: "bench-pgas",
        bin: "bench_agent",
        args: BENCH_ARGS,
        backend: "pgas",
        ranks: &[2, 4, 8, 16],
        node_sizes: &[1, 2],
        stable: true,
    },
    AgentSpec {
        name: "scope",
        bin: "scope",
        args: &["--agent-json"],
        backend: "rma",
        ranks: &[2],
        node_sizes: &[1],
        stable: true,
    },
    AgentSpec {
        name: "txn-ablate",
        bin: "txn_ablation",
        args: &["--agent-json"],
        backend: "txn",
        ranks: &[2],
        node_sizes: &[1],
        stable: true,
    },
    AgentSpec {
        name: "rmc-ablate",
        bin: "rmc_ablation",
        args: &["--agent-json"],
        backend: "rmc",
        ranks: &[4],
        node_sizes: &[1],
        stable: true,
    },
    AgentSpec {
        name: "kv-serve",
        bin: "kv_serve",
        args: &["--agent-json"],
        backend: "txn",
        ranks: &[8],
        node_sizes: &[1],
        stable: false,
    },
    AgentSpec {
        name: "dsde",
        bin: "dsde_agent",
        args: &["--agent-json", "--ranks", "{ranks}", "--seed", "{seed}"],
        backend: "rmc",
        ranks: &[8],
        node_sizes: &[1],
        stable: false,
    },
    AgentSpec {
        name: "hashtable",
        bin: "hashtable_agent",
        args: &["--agent-json", "--ranks", "{ranks}", "--seed", "{seed}"],
        backend: "rma",
        ranks: &[8],
        node_sizes: &[1],
        stable: false,
    },
];

/// Env knobs scrubbed from every agent so the summary only depends on
/// what the fleet passes explicitly.
const SCRUBBED: &[&str] = &[
    "FOMPI_SEED",
    "FOMPI_FAULTS",
    "FOMPI_BATCH",
    "FOMPI_TELEMETRY",
    "FOMPI_TELEMETRY_RING",
    "FOMPI_NOTIFY_DEPTH",
    "FOMPI_RACECHECK",
    "FOMPI_PROFILE",
    "FOMPI_METRICS",
    "FOMPI_TXN_RETRY",
    "FOMPI_RMC",
];

/// The chaos sweep's fault plan (seeded: deterministic injections).
const CHAOS_PLAN: &str = "heavy,seed=5";

/// Seed every sweep point runs with.
const SEED: u64 = 1;

/// Smoke/gate sweeps stop at this rank count; `--sweep`/`--chaos` run the
/// registry's full rank lists.
const SMOKE_MAX_RANKS: usize = 4;

struct Cli {
    mode: Mode,
    bin_dir: Option<PathBuf>,
    baseline: String,
    slowdown_pct: f64,
}

#[derive(PartialEq, Clone, Copy)]
enum Mode {
    Smoke,
    Sweep,
    Chaos,
    Gate,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        mode: Mode::Smoke,
        bin_dir: None,
        baseline: "results/fleet_baseline.json".into(),
        slowdown_pct: 0.0,
    };
    let mut mode_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" | "--sweep" | "--chaos" | "--gate" => {
                cli.mode = match a.as_str() {
                    "--smoke" => Mode::Smoke,
                    "--sweep" => Mode::Sweep,
                    "--chaos" => Mode::Chaos,
                    _ => Mode::Gate,
                };
                mode_set = true;
            }
            "--bin-dir" => cli.bin_dir = Some(args.next().ok_or("--bin-dir needs a path")?.into()),
            "--baseline" => cli.baseline = args.next().ok_or("--baseline needs a path")?,
            "--slowdown" => {
                cli.slowdown_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--slowdown needs a percentage")?
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !mode_set {
        return Err("pick a mode: --smoke | --sweep | --chaos | --gate".into());
    }
    Ok(cli)
}

fn bin_dir(cli: &Cli) -> Result<PathBuf, String> {
    if let Some(d) = &cli.bin_dir {
        return Ok(d.clone());
    }
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .ok_or_else(|| "cannot locate own binary directory; pass --bin-dir".into())
}

fn timeout() -> Duration {
    let secs = std::env::var("FLEET_TIMEOUT_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(300);
    Duration::from_secs(secs)
}

/// Run the sweep: every registry agent at every selected rank count.
fn run_sweep(cli: &Cli, chaos: bool) -> Result<Vec<ConfigResult>, String> {
    let dir = bin_dir(cli)?;
    let max_ranks = if cli.mode == Mode::Sweep || chaos { usize::MAX } else { SMOKE_MAX_RANKS };
    let timeout = timeout();
    let mut runs = Vec::new();
    let (mut bins, mut backends) = (BTreeSet::new(), BTreeSet::new());
    for spec in REGISTRY {
        for &ranks in spec.ranks.iter().filter(|&&r| r <= max_ranks) {
            for &node_size in spec.node_sizes {
                let label = format!("{}-p{ranks}-n{node_size}", spec.name);
                let bin = dir.join(spec.bin);
                if !bin.exists() {
                    return Err(format!(
                        "agent {label}: binary {} not found — build the agents first: \
                         cargo build --release -p fompi-bench",
                        bin.display()
                    ));
                }
                let argv = expand_argv(spec, ranks, node_size, SEED)?;
                let mut cmd = Command::new(&bin);
                cmd.args(&argv);
                for knob in SCRUBBED {
                    cmd.env_remove(knob);
                }
                if chaos {
                    cmd.env("FOMPI_FAULTS", CHAOS_PLAN);
                }
                let run = run_agent(&label, &mut cmd, timeout)?;
                if run.exit_code != Some(0) {
                    return Err(format!(
                        "agent {label}: exited with {:?}\n--- stderr ---\n{}",
                        run.exit_code,
                        run.stderr.trim_end()
                    ));
                }
                let metrics = parse_agent_json(&label, &run.stdout)?;
                bins.insert(spec.bin);
                backends.insert(spec.backend);
                runs.push(ConfigResult {
                    agent: spec.name.to_string(),
                    backend: spec.backend.to_string(),
                    ranks,
                    node_size,
                    seed: SEED,
                    metrics,
                    usage: run.usage,
                    stable: spec.stable,
                });
            }
        }
    }
    // The fleet's own coverage contract: a sweep that silently dropped
    // to one binary or one backend is not a cross-backend sweep.
    assert!(bins.len() >= 4, "sweep must spawn >= 4 distinct agent binaries, got {bins:?}");
    assert!(backends.len() >= 3, "sweep must cover >= 3 backends, got {backends:?}");
    Ok(runs)
}

fn write_outputs(runs: &[ConfigResult], summary_path: &str, table_path: &str) {
    std::fs::create_dir_all("results").ok();
    let summary = render_summary(runs);
    std::fs::write(summary_path, &summary).expect("write fleet summary");
    let table = render_table(runs);
    std::fs::write(table_path, &table).expect("write fleet sweep table");
    print!("{table}");
    println!("-> {summary_path}");
    println!("-> {table_path} (wall-clock columns; not byte-stable)");
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fleet: {e}");
            eprintln!(
                "usage: fleet (--smoke | --sweep | --chaos | --gate) \
                 [--bin-dir <dir>] [--baseline <file>] [--slowdown <pct>]"
            );
            return ExitCode::FAILURE;
        }
    };
    let chaos = cli.mode == Mode::Chaos;
    println!(
        "== fleet: {} sweep ({} agents registered) ==",
        match cli.mode {
            Mode::Smoke => "smoke",
            Mode::Sweep => "full",
            Mode::Chaos => "chaos",
            Mode::Gate => "gate (smoke)",
        },
        REGISTRY.len()
    );
    let runs = match run_sweep(&cli, chaos) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    if chaos {
        write_outputs(&runs, "results/fleet_chaos.json", "results/fleet_chaos_sweep.txt");
        let total_faults: u64 = runs.iter().map(|r| r.metrics.total_faults()).sum();
        println!("fleet: chaos sweep injected {total_faults} faults across {} runs", runs.len());
        assert!(total_faults > 0, "chaos sweep must actually inject faults");
        return ExitCode::SUCCESS;
    }
    write_outputs(&runs, "results/fleet_summary.json", "results/fleet_sweep.txt");
    if cli.mode != Mode::Gate {
        return ExitCode::SUCCESS;
    }

    // Gate: flatten the fresh summary and compare against the baseline.
    let summary = render_summary(&runs);
    let parsed = fompi_fleet::json::parse(&summary).expect("fleet summary must parse");
    let mut current = flatten_summary(&parsed).expect("fleet summary must flatten");
    if cli.slowdown_pct != 0.0 {
        println!(
            "fleet: applying synthetic {:.1}% slowdown to virtual_ns metrics",
            cli.slowdown_pct
        );
        for (k, v) in current.iter_mut() {
            if k.ends_with("/virtual_ns") {
                *v *= 1.0 + cli.slowdown_pct / 100.0;
            }
        }
    }
    let base_text = match std::fs::read_to_string(&cli.baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fleet: baseline {} missing/unreadable: {e} (exit 3)", cli.baseline);
            return ExitCode::from(EXIT_BASELINE);
        }
    };
    let baseline = match fompi_fleet::json::parse(&base_text)
        .map_err(|e| e.to_string())
        .and_then(|j| flatten_summary(&j))
    {
        Ok(b) if !b.is_empty() => b,
        Ok(_) => {
            eprintln!("fleet: baseline {} parsed to zero metrics (exit 3)", cli.baseline);
            return ExitCode::from(EXIT_BASELINE);
        }
        Err(e) => {
            eprintln!("fleet: baseline {} unparseable: {e} (exit 3)", cli.baseline);
            return ExitCode::from(EXIT_BASELINE);
        }
    };
    let report = compare(&baseline, &current, &fleet_tolerance);
    println!(
        "== fleet gate vs {} ({} metrics; virtual_ns 1%, counts/quantiles exact) ==",
        cli.baseline, report.checked
    );
    for f in &report.failures {
        match f.now {
            Some(now) => println!("  FAIL {}: {} -> {now}", f.describe(), f.base),
            None => println!("  FAIL {}: metric missing from this sweep", f.metric),
        }
    }
    for m in &report.improved {
        println!("  ok   {m}: improved beyond tolerance [consider refreshing the baseline]");
    }
    for m in &report.new_metrics {
        println!("  note {m}: new metric, not in baseline (refresh to start gating it)");
    }
    if !report.passed() {
        eprintln!("fleet: regression in: {} (exit 2)", report.failure_summary());
        return ExitCode::from(EXIT_REGRESSED);
    }
    println!("fleet: all {} gated metrics within tolerance.", report.checked);
    ExitCode::SUCCESS
}
