//! Notified-access ablation: what does fusing the completion notification
//! into the RMA operation buy over the classical synchronisation idioms?
//!
//! ```text
//! cargo run --release -p fompi-bench --bin notify_ablation
//! ```
//!
//! 1. **micro**: a producer hands 64 8-byte items to a consumer, one
//!    synchronisation action per item, under four styles — notified put
//!    (`put_notify`/`wait_notify`), a fence per item, a PSCW epoch per
//!    item, and the put + flush + flag-AMO idiom the consumer polls
//!    (`put_signal`/`signal_wait`);
//! 2. **channel**: one `msg::channel` round over a 1-slot ring — a
//!    notified payload put strictly alternating with the notified credit
//!    AMO flowing back;
//! 3. **apps**: DSDE notified vs the fence-synchronised accumulate
//!    protocol, and the hashtable's owner-computes notified backend vs
//!    the CAS/FAA polling backend.
//!
//! Sections 1–2 are schedule-independent, so their rows land in
//! `results/notify_ablation.csv` and are byte-diffed by `scripts/ci.sh`
//! under `FOMPI_SEED=1`. The app protocols serialise contended AMOs in
//! arrival order, which makes their virtual times schedule-dependent —
//! they print and are asserted relationally (notified must win) but stay
//! out of the gated CSV, the same split `drift_sched.csv` uses.

use fompi::{PaperModel, Win};
use fompi_apps::dsde;
use fompi_apps::hashtable::{self, HtConfig};
use fompi_fabric::FaultPlan;
use fompi_msg::channel::{channel, ChannelEnd};
use fompi_runtime::{Group, Universe};

/// Items per micro handoff run (well under the sized notification ring).
const ITEMS: usize = 64;
const TAG: u32 = 7;

fn main() {
    println!("== notified access ablation ==\n");
    let model = PaperModel::default();

    println!("--- per-item producer→consumer handoff, 8-byte payload (p=2, inter-node) ---");
    let notified = handoff("notified");
    let fence = handoff("fence");
    let pscw = handoff("pscw");
    let amo_poll = handoff("amo_poll");
    let m_notified = model.put_notified(8);
    let m_polled = model.put_polled(8);
    println!("  notified : {notified:>9.1} ns/item   (model {m_notified:.1})");
    println!("  fence    : {fence:>9.1} ns/item");
    println!("  pscw     : {pscw:>9.1} ns/item");
    println!("  amo_poll : {amo_poll:>9.1} ns/item   (model {m_polled:.1})");
    println!(
        "  notified wins {:.1}x over fence, {:.1}x over pscw, {:.1}x over amo_poll\n",
        fence / notified,
        pscw / notified,
        amo_poll / notified
    );
    assert!(notified < fence, "notified ({notified}) must beat fence-per-item ({fence})");
    assert!(notified < pscw, "notified ({notified}) must beat PSCW-per-item ({pscw})");
    assert!(notified < amo_poll, "notified ({notified}) must beat flag polling ({amo_poll})");

    println!("--- channel round: 1-slot msg::channel, 64-byte payload (p=2, inter-node) ---");
    let chan = channel_round();
    let m_chan = model.channel_round(64);
    println!("  measured : {chan:>9.1} ns/round  (model {m_chan:.1})\n");

    let mut rows = vec!["section,variant,ns,model_ns".to_string()];
    rows.push(format!("micro_handoff_8B,notified,{notified},{m_notified}"));
    rows.push(format!("micro_handoff_8B,fence,{fence},"));
    rows.push(format!("micro_handoff_8B,pscw,{pscw},"));
    rows.push(format!("micro_handoff_8B,amo_poll,{amo_poll},{m_polled}"));
    rows.push(format!("channel_round_64B,notified,{chan},{m_chan}"));
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/notify_ablation.csv", rows.join("\n") + "\n").expect("write csv");
    println!("  -> results/notify_ablation.csv\n");

    dsde_rows();
    hashtable_rows();
}

/// Deterministic 2-rank universe for the micro sections: faults off,
/// batching off, ring sized so no overflow stall can enter the numbers.
fn universe() -> Universe {
    Universe::new(2)
        .node_size(1)
        .seed(1)
        .faults(FaultPlan::disabled())
        .batch(false)
        .notify_depth(2 * ITEMS)
}

/// Consumer-side virtual ns per item for one handoff style.
fn handoff(variant: &str) -> f64 {
    let v = variant.to_string();
    let got = universe().run(move |ctx| {
        // One 8-byte cell per item plus a trailing scratch word for the
        // polled-flag variant's signal payload.
        let win = Win::allocate(ctx, 8 * (ITEMS + 1), 1).unwrap();
        let me = ctx.rank();
        let mut buf = [0u8; 8];
        let dt = match v.as_str() {
            "notified" => {
                win.lock_all().unwrap();
                ctx.barrier();
                let t0 = ctx.now();
                for i in 0..ITEMS {
                    if me == 0 {
                        win.put_notify(&(i as u64).to_le_bytes(), 1, i * 8, TAG).unwrap();
                    } else {
                        win.wait_notify(0, TAG).unwrap();
                        win.read_local(i * 8, &mut buf);
                    }
                }
                let dt = ctx.now() - t0;
                win.unlock_all().unwrap();
                dt
            }
            "fence" => {
                win.fence().unwrap();
                let t0 = ctx.now();
                for i in 0..ITEMS {
                    if me == 0 {
                        win.put(&(i as u64).to_le_bytes(), 1, i * 8).unwrap();
                    }
                    win.fence().unwrap();
                    if me == 1 {
                        win.read_local(i * 8, &mut buf);
                    }
                }
                let dt = ctx.now() - t0;
                win.fence().unwrap();
                dt
            }
            "pscw" => {
                ctx.barrier();
                let t0 = ctx.now();
                for i in 0..ITEMS {
                    if me == 0 {
                        win.start(&Group::new([1])).unwrap();
                        win.put(&(i as u64).to_le_bytes(), 1, i * 8).unwrap();
                        win.complete().unwrap();
                    } else {
                        win.post(&Group::new([0])).unwrap();
                        win.wait().unwrap();
                        win.read_local(i * 8, &mut buf);
                    }
                }
                ctx.now() - t0
            }
            "amo_poll" => {
                // The classic pre-notified idiom: put the data, *flush*,
                // then raise a flag the consumer polls. The signal slot
                // plays the flag; the explicit flush in between is what
                // `put_notify` removes (its notification rides the DMAPP
                // ordered class instead).
                win.lock_all().unwrap();
                ctx.barrier();
                let t0 = ctx.now();
                for i in 0..ITEMS {
                    if me == 0 {
                        win.put(&(i as u64).to_le_bytes(), 1, i * 8).unwrap();
                        win.flush(1).unwrap();
                        win.put_signal(&1u64.to_le_bytes(), 1, ITEMS * 8, 0).unwrap();
                    } else {
                        win.signal_wait(0, (i + 1) as u64).unwrap();
                        win.read_local(i * 8, &mut buf);
                    }
                }
                let dt = ctx.now() - t0;
                win.unlock_all().unwrap();
                dt
            }
            other => unreachable!("unknown variant {other}"),
        };
        ctx.barrier();
        dt
    });
    got[1] / ITEMS as f64
}

/// Producer-side virtual ns per message over a 1-slot channel: every send
/// after the first blocks on the previous credit, so the steady-state pace
/// *is* the notified put + notified credit-AMO round.
fn channel_round() -> f64 {
    const MSGS: usize = 16;
    let got = universe().run(move |ctx| {
        let end = channel(ctx, 0, 1, 1, 64).unwrap().unwrap();
        match end {
            ChannelEnd::Sender(mut tx) => {
                let msg = [3u8; 64];
                ctx.barrier();
                let t0 = ctx.now();
                for _ in 0..MSGS {
                    tx.send(&msg).unwrap();
                }
                // The last send's credit is still outstanding; absorb it so
                // the measurement covers whole rounds.
                while tx.credits() == 0 {
                    tx.poll_credits().unwrap();
                    std::thread::yield_now();
                }
                let dt = ctx.now() - t0;
                tx.close(ctx).unwrap();
                dt
            }
            ChannelEnd::Receiver(mut rx) => {
                let mut buf = [0u8; 64];
                ctx.barrier();
                for _ in 0..MSGS {
                    rx.recv(&mut buf).unwrap();
                }
                rx.close(ctx).unwrap();
                0.0
            }
        }
    });
    got[0] / MSGS as f64
}

/// DSDE: notified access vs the fence-synchronised accumulate protocol.
fn dsde_rows() {
    println!("--- DSDE, p=8, k=3 (schedule-dependent; not in the gated CSV) ---");
    let (p, k, seed) = (8usize, 3usize, 5u64);
    let fence =
        Universe::new(p).node_size(2).seed(1).faults(FaultPlan::disabled()).run(move |ctx| {
            let win = Win::allocate(ctx, dsde::rma_win_bytes(p), 1).expect("win");
            dsde::run_rma(ctx, &win, k, seed)
        });
    let notified =
        Universe::new(p).node_size(2).seed(1).faults(FaultPlan::disabled()).notify_depth(64).run(
            move |ctx| {
                let win = Win::allocate(ctx, dsde::rma_win_bytes(p), 1).expect("win");
                dsde::run_notified(ctx, &win, k, seed)
            },
        );
    let t = |r: &[dsde::DsdeResult]| r.iter().map(|x| x.time_ns).fold(0.0, f64::max);
    let (tf, tn) = (t(&fence), t(&notified));
    println!("  fence    : {:>9.1} us", tf / 1e3);
    println!("  notified : {:>9.1} us   ({:.2}x)\n", tn / 1e3, tf / tn);
    assert!(tn < tf, "notified DSDE ({tn} ns) must beat the fence protocol ({tf} ns)");
}

/// Hashtable: owner-computes notified backend vs CAS/FAA polling.
fn hashtable_rows() {
    println!("--- hashtable, p=8, collision-heavy (schedule-dependent; not in the gated CSV) ---");
    let cfg = HtConfig { inserts_per_rank: 128, table_slots: 16, heap_cells: 4096, seed: 5 };
    let p = 8;
    let polling = Universe::new(p)
        .node_size(2)
        .seed(1)
        .faults(FaultPlan::disabled())
        .run(move |ctx| hashtable::run_rma(ctx, &cfg));
    let notified = Universe::new(p)
        .node_size(2)
        .seed(1)
        .faults(FaultPlan::disabled())
        .notify_depth(2048)
        .run(move |ctx| hashtable::run_notified(ctx, &cfg));
    let t = |r: &[hashtable::HtResult]| r.iter().map(|x| x.time_ns).fold(0.0, f64::max);
    let (tp, tn) = (t(&polling), t(&notified));
    let total: usize = notified.iter().map(|r| r.local_elements).sum();
    assert_eq!(total, p * cfg.inserts_per_rank, "notified backend lost elements");
    println!("  amo_poll : {:>9.1} us   (CAS insert + FAA/chain on collision)", tp / 1e3);
    println!("  notified : {:>9.1} us   ({:.2}x)\n", tn / 1e3, tp / tn);
    assert!(tn < tp, "notified inserts ({tn} ns) must beat AMO polling ({tp} ns)");
}
