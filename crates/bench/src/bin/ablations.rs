//! Ablation studies for the design decisions DESIGN.md calls out.
//!
//! ```text
//! cargo run --release -p fompi-bench --bin ablations
//! ```
//!
//! 1. hardware AMOs vs lock-fallback accumulates (the §2.4 choice);
//! 2. dynamic-window cache protocols: id-counter vs notify (§2.2);
//! 3. exclusive-lock waiting: backoff CAS (Figure 3) vs MCS queue (§2.3's
//!    remark) under contention;
//! 4. eager/rendezvous threshold sweep (the §1 protocol trade-off);
//! 5. MILC halo: pack/unpack vs zero-copy datatypes (§4.4's remark);
//! 6. PSCW matching-pool size vs post latency under heavy fan-in.

use fompi::{LockType, MpiOp, NumKind, Win, WinConfig};
use fompi_apps::hashtable::HtConfig;
use fompi_apps::milc::{self, MilcConfig};
use fompi_fabric::FaultPlan;
use fompi_msg::{Comm, MsgCosts, MsgEngine};
use fompi_runtime::{Group, Universe};
use fompi_simnet::net::{LogGP, Noise};
use fompi_simnet::patterns::{dissemination_barrier, lock_costs, max_of, pscw_ring};

fn main() {
    println!("== foMPI-rs ablation studies ==\n");
    hw_amo_ablation();
    dyn_cache_ablation();
    lock_ablation();
    eager_threshold_ablation();
    milc_halo_ablation();
    pscw_pool_ablation();
    drift_vs_scale_ablation();
    jitter_amplification_ablation();
    batching_ablation();
    racecheck_ablation();
}

/// 1. DMAPP-accelerated accumulates vs forcing the lock fallback.
fn hw_amo_ablation() {
    println!("--- accumulate path: hardware AMOs vs lock fallback (hashtable, p=8) ---");
    let rate = |hw: bool| {
        let cfg = HtConfig { inserts_per_rank: 96, table_slots: 4096, heap_cells: 1024, seed: 2 };
        let wcfg = WinConfig { hw_amo: hw, ..WinConfig::default() };
        // run_rma uses Win::allocate internally; emulate by measuring
        // fetch_and_op-heavy inserts directly with the config.
        let got = Universe::new(8).node_size(4).run(move |ctx| {
            let win = Win::allocate_cfg(ctx, 1 << 16, 1, wcfg.clone()).unwrap();
            win.lock_all().unwrap();
            let t0 = ctx.now();
            for i in 0..cfg.inserts_per_rank {
                let slot = (fompi_apps::splitmix64(i as u64 ^ ctx.rank() as u64) % 4096) as usize;
                let owner = (fompi_apps::splitmix64(slot as u64) % 8) as u32;
                let mut old = [0u8; 8];
                win.fetch_and_op(
                    &1u64.to_le_bytes(),
                    &mut old,
                    NumKind::U64,
                    MpiOp::Sum,
                    owner,
                    slot * 8,
                )
                .unwrap();
            }
            win.flush_all().unwrap();
            let dt = ctx.now() - t0;
            win.unlock_all().unwrap();
            ctx.barrier();
            dt
        });
        let t = got.iter().cloned().fold(0.0, f64::max);
        (8.0 * 96.0) / t * 1e3 // M ops/s
    };
    let hw = rate(true);
    let sw = rate(false);
    println!("  hw_amo = true : {hw:>8.2} M FAA/s");
    println!("  hw_amo = false: {sw:>8.2} M FAA/s   (lock-get-compute-put per op)");
    println!("  speedup: {:.1}x\n", hw / sw);
    assert!(hw > sw, "hardware AMOs must win for 8-byte fetch-and-op");
}

/// 2. Dynamic windows: per-access id check vs notify-based invalidation.
fn dyn_cache_ablation() {
    println!("--- dynamic windows: id-counter check vs notify protocol (p=2, 64 accesses) ---");
    let access_time = |notify: bool| {
        let wcfg = WinConfig { dyn_notify: notify, ..WinConfig::default() };
        let got = Universe::new(2).node_size(1).run(move |ctx| {
            let win = Win::create_dynamic_cfg(ctx, wcfg.clone()).unwrap();
            let addr = if ctx.rank() == 1 { win.attach(4096).unwrap() } else { 0 };
            let addrs = ctx.allgather(&addr.to_le_bytes());
            let raddr = u64::from_le_bytes(addrs[1].as_slice().try_into().unwrap());
            let mut dt = 0.0;
            if ctx.rank() == 0 {
                win.lock(LockType::Shared, 1).unwrap();
                win.put(&[1u8; 8], 1, raddr as usize).unwrap(); // warm the cache
                win.flush(1).unwrap();
                let t0 = ctx.now();
                for i in 0..64 {
                    win.put(&[2u8; 8], 1, raddr as usize + 8 + i * 8).unwrap();
                }
                win.flush(1).unwrap();
                dt = (ctx.now() - t0) / 64.0;
                win.unlock(1).unwrap();
            }
            ctx.barrier();
            dt
        });
        got[0]
    };
    let id = access_time(false);
    let notify = access_time(true);
    println!("  id-counter : {id:>8.0} ns per cached access (one remote id get each)");
    println!("  notify     : {notify:>8.0} ns per cached access (local mailbox check)");
    println!("  notify speedup: {:.1}x\n", id / notify);
    assert!(notify < id, "notify protocol must make cached accesses cheaper");
}

/// 3. Exclusive locking under contention: backoff vs MCS.
fn lock_ablation() {
    println!("--- contended exclusive lock: Figure-3 backoff vs MCS queue (p=8, 12 acquisitions each) ---");
    let run = |mcs: bool| {
        let (res, fabric) = Universe::new(8).node_size(4).launch(move |ctx| {
            let win = Win::allocate(ctx, 16, 1).unwrap();
            ctx.barrier();
            let t0 = ctx.now();
            for _ in 0..12 {
                if mcs {
                    win.mcs_lock().unwrap();
                    win.mcs_unlock().unwrap();
                } else {
                    win.lock(LockType::Exclusive, 0).unwrap();
                    win.unlock(0).unwrap();
                }
            }
            ctx.barrier();
            ctx.now() - t0
        });
        let t = res.iter().cloned().fold(0.0, f64::max);
        (t, fabric.counters().snapshot().amos)
    };
    let (t_bk, amo_bk) = run(false);
    let (t_mcs, amo_mcs) = run(true);
    println!("  backoff: {:>9.1} us total, {amo_bk:>6} AMOs issued", t_bk / 1e3);
    println!("  MCS    : {:>9.1} us total, {amo_mcs:>6} AMOs issued", t_mcs / 1e3);
    println!("  AMO-traffic reduction: {:.1}x\n", amo_bk as f64 / amo_mcs as f64);
    assert!(amo_mcs < amo_bk, "MCS must bound remote waiting traffic");
}

/// 4. Eager/rendezvous threshold: ping-pong latency across the switch.
fn eager_threshold_ablation() {
    println!("--- eager threshold sweep: 16 KiB message, threshold ∈ {{1 KiB, 8 KiB, 64 KiB}} ---");
    for thr in [1024usize, 8192, 65536] {
        let engine = MsgEngine::new(2);
        let got = Universe::new(2).node_size(1).run(move |ctx| {
            let costs = MsgCosts { eager_threshold: thr, ..MsgCosts::default() };
            let c = Comm::attach(ctx, &engine).with_costs(costs);
            let mut buf = vec![0u8; 16384];
            let payload = vec![1u8; 16384];
            ctx.barrier();
            let t0 = ctx.now();
            for _ in 0..4 {
                if c.rank() == 0 {
                    c.send(&payload, 1, 1).unwrap();
                    c.recv(&mut buf, 1, 2).unwrap();
                } else {
                    c.recv(&mut buf, 0, 1).unwrap();
                    c.send(&payload, 0, 2).unwrap();
                }
            }
            (ctx.now() - t0) / 8.0
        });
        let mode = if thr >= 16384 { "eager (receiver copy)" } else { "rendezvous (get + FIN)" };
        println!("  threshold {thr:>6}: {:>8.2} us   [{mode}]", got[0] / 1e3);
    }
    println!();
}

/// 5. MILC halo: pack/unpack vs zero-copy datatypes per face shape.
fn milc_halo_ablation() {
    println!("--- MILC halo: packed buffers vs zero-copy datatypes (p=8, local 4x4x4x8) ---");
    let cfg = MilcConfig { local: [4, 4, 4, 8], iters: 4, seed: 3 };
    let packed = Universe::new(8).node_size(4).run(move |ctx| milc::run_rma(ctx, &cfg));
    let typed = Universe::new(8).node_size(4).run(move |ctx| milc::run_rma_typed(ctx, &cfg));
    assert_eq!(packed[0].residuals, typed[0].residuals, "must be bit-identical");
    let t = |r: &[milc::MilcResult]| r.iter().map(|x| x.time_ns).fold(0.0, f64::max) / 1e3;
    let (tp, tt) = (t(&packed), t(&typed));
    println!("  packed halos: {tp:>9.1} us   (pack copy + 1 put per face)");
    println!("  typed halos : {tt:>9.1} us   (no copies; 1 put per contiguous block)");
    println!(
        "  {}: x-faces shatter into many blocks, t-faces are one block\n",
        if tt < tp { "datatypes win here" } else { "packing wins here" }
    );
}

/// 6. PSCW pool size: fan-in within capacity is flat; fan-in beyond
///    capacity (with an order-dependent starter) is *detected* as
///    PoolExhausted rather than deadlocking silently.
fn pscw_pool_ablation() {
    println!("--- PSCW matching-pool: 7 posters fan in to rank 0 ---");
    for pool in [8usize, 32, 128] {
        let wcfg = WinConfig { pscw_pool: pool, ..WinConfig::default() };
        let got = Universe::new(8).node_size(4).run(move |ctx| {
            let win = Win::allocate_cfg(ctx, 64, 1, wcfg.clone()).unwrap();
            let mut dt = 0.0;
            ctx.barrier();
            if ctx.rank() == 0 {
                for peer in 1..8u32 {
                    win.start(&Group::new([peer])).unwrap();
                    win.complete().unwrap();
                }
            } else {
                let t0 = ctx.now();
                win.post(&Group::new([0])).unwrap();
                win.wait().unwrap();
                dt = ctx.now() - t0;
            }
            ctx.barrier();
            dt
        });
        let worst = got.iter().cloned().fold(0.0, f64::max);
        println!("  pool = {pool:>4}: worst poster latency {:>9.1} us", worst / 1e3);
    }
    // Undersized pool: with 7 concurrent posters and 4 slots, 3 posts must
    // fail — and the bounded retry surfaces that as PoolExhausted instead
    // of hanging. Successful posts are then matched normally.
    let wcfg = WinConfig { pscw_pool: 4, pool_retry_limit: 20_000, ..WinConfig::default() };
    let got = Universe::new(8).node_size(4).run(move |ctx| {
        let win = Win::allocate_cfg(ctx, 64, 1, wcfg.clone()).unwrap();
        ctx.barrier();
        let mut posted = false;
        let mut exhausted = false;
        if ctx.rank() != 0 {
            match win.post(&Group::new([0])) {
                Ok(()) => posted = true,
                Err(fompi::FompiError::PoolExhausted { .. }) => exhausted = true,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        // Everyone reaches the allgather (nobody is blocked in wait yet).
        let flags = ctx.allgather(&[posted as u8]);
        if ctx.rank() == 0 {
            for (peer, f) in flags.iter().enumerate().skip(1) {
                if f[0] == 1 {
                    win.start(&Group::new([peer as u32])).unwrap();
                    win.complete().unwrap();
                }
            }
        } else if posted {
            win.wait().unwrap();
        }
        ctx.barrier();
        exhausted
    });
    let n = got.iter().filter(|&&e| e).count();
    println!("  pool = 4, 7 concurrent posters: {n} posters detected PoolExhausted (expected 3)\n");
    assert_eq!(n, 3);
}

/// 8. Fault-plan jitter vs the §3 closed forms at scale: how much do the
///    light plan's perturbations amplify fence / PSCW / lock latency as p
///    grows? Fence (a log-p dissemination barrier) takes the max over
///    O(p log p) perturbed operations, so its tail amplification grows
///    with p; PSCW's ring (k = 2) and the uncontended lock constants stay
///    nearly flat — the same scalability argument the paper makes for the
///    protocols themselves.
fn jitter_amplification_ablation() {
    println!("--- fault-plan jitter vs §3 closed forms (simnet, light plan) ---");
    let m = LogGP::default();
    let plan = FaultPlan::light(42);
    let c = lock_costs(&m);
    let mut fence_amp = Vec::new();
    for p in [64usize, 1024, 16384] {
        let t0 = vec![0.0; p];
        let fence_model = (p as f64).log2().ceil() * m.barrier_round();
        let fence_clean = max_of(&dissemination_barrier(&t0, &m, &mut Noise::off()));
        let fence_noisy =
            max_of(&dissemination_barrier(&t0, &m, &mut Noise::from_plan(&plan, p as u64)));
        let pscw_clean = max_of(&pscw_ring(p, &m, &mut Noise::off()));
        let pscw_noisy = max_of(&pscw_ring(p, &m, &mut Noise::from_plan(&plan, 1 + p as u64)));
        // Uncontended exclusive lock: the closed form is p-independent;
        // under noise the *worst rank's* acquire is what a barrier-synced
        // phase would wait for.
        let mut ln = Noise::from_plan(&plan, 2 + p as u64);
        let lock_noisy =
            (0..p).map(|_| c.lock_excl + ln.sample_op(c.lock_excl)).fold(0.0, f64::max);
        println!("  p = {p:>5}:");
        println!(
            "    fence: model {:>8.1} us | clean {:>8.1} us | jitter {:>8.1} us ({:.2}x)",
            fence_model / 1e3,
            fence_clean / 1e3,
            fence_noisy / 1e3,
            fence_noisy / fence_clean
        );
        println!(
            "    pscw : clean {:>8.1} us | jitter {:>8.1} us ({:.2}x)",
            pscw_clean / 1e3,
            pscw_noisy / 1e3,
            pscw_noisy / pscw_clean
        );
        println!(
            "    lock : model {:>8.1} us | worst-rank jitter {:>8.1} us ({:.2}x)",
            c.lock_excl / 1e3,
            lock_noisy / 1e3,
            lock_noisy / c.lock_excl
        );
        assert!(fence_noisy >= fence_clean && pscw_noisy >= pscw_clean);
        fence_amp.push(fence_noisy / fence_clean);
    }
    println!();
    assert!(
        fence_amp[2] > 1.0,
        "a light plan must visibly perturb a 16k-rank fence: {fence_amp:?}"
    );
}

/// 9. Issue-side batching: a lock epoch issuing bursts of contiguous
///    8-byte puts, with and without the injection-queue coalescer.
///    Batching replaces per-op injection (o = 416 ns DMAPP) and per-op wire
///    latency with one injection + per-op issue gap (g = 50 ns) + one
///    combined wire message — the LogGP g/G amortisation the fabric's
///    `batch` module implements. Bursts of ≥ 8 ops must win measurably;
///    the series lands in results/batch_ablation.csv.
fn batching_ablation() {
    println!("--- issue-side batching: n contiguous 8-byte puts per flush (p=2, inter-node) ---");
    let epoch = |batch: bool, n: usize| {
        let got = Universe::new(2).node_size(1).batch(batch).run(move |ctx| {
            let win = Win::allocate(ctx, 1 << 12, 1).unwrap();
            let chunk = [7u8; 8];
            let mut dt = 0.0;
            if ctx.rank() == 0 {
                win.lock(LockType::Exclusive, 1).unwrap();
                let t0 = ctx.now();
                for rep in 0..4 {
                    for i in 0..n {
                        win.put(&chunk, 1, (rep * n + i) * 8).unwrap();
                    }
                    win.flush(1).unwrap();
                }
                dt = (ctx.now() - t0) / 4.0;
                win.unlock(1).unwrap();
            }
            ctx.barrier();
            dt
        });
        got[0]
    };
    let mut rows = vec!["n,unbatched_ns,batched_ns,speedup".to_string()];
    for n in [1usize, 4, 8, 16, 32] {
        let un = epoch(false, n);
        let ba = epoch(true, n);
        let speedup = un / ba;
        println!("  n = {n:>3}: unbatched {un:>9.0} ns | batched {ba:>9.0} ns | {speedup:>5.2}x");
        rows.push(format!("{n},{un},{ba},{speedup}"));
        if n >= 8 {
            assert!(
                ba < un,
                "an {n}-op burst must beat per-op injection: batched {ba} vs unbatched {un}"
            );
        }
    }
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/batch_ablation.csv", rows.join("\n") + "\n").expect("write csv");
    println!("  -> results/batch_ablation.csv\n");
}

/// 10. fompi-check overhead: the race checker charges no *virtual* time —
///     armed and unarmed runs must report bit-identical epoch times — and
///     the unarmed probe on the hot path is a single relaxed load, so the
///     wall-clock delta with the checker off is noise. Report mode pays
///     real (wall-clock only) cost for the shadow interval maps; this
///     prints that price per op so EXPERIMENTS.md can quote it.
fn racecheck_ablation() {
    use fompi_fabric::RacecheckMode;
    println!("--- fompi-check overhead: 4096 puts under lock_all (p=4) ---");
    let run = |mode: Option<RacecheckMode>| {
        let mut uni = Universe::new(4).node_size(2);
        if let Some(m) = mode {
            uni = uni.racecheck(m);
        }
        let wall = std::time::Instant::now();
        let got = uni.run(move |ctx| {
            let win = Win::allocate(ctx, 1 << 12, 1).unwrap();
            win.lock_all().unwrap();
            let t0 = ctx.now();
            // Race-free by construction: origin r writes only the
            // [r KiB, r+1 KiB) slice of its right neighbour's window.
            let base = ctx.rank() as usize * 1024;
            let target = (ctx.rank() + 1) % 4;
            for rep in 0..64usize {
                for i in 0..16usize {
                    win.put(&[1u8; 8], target, base + ((rep * 16 + i) % 128) * 8).unwrap();
                }
                win.flush_all().unwrap();
            }
            let dt = ctx.now() - t0;
            win.unlock_all().unwrap();
            ctx.barrier();
            win.free(ctx);
            dt
        });
        (got.iter().cloned().fold(0.0, f64::max), wall.elapsed().as_secs_f64())
    };
    let (vt_base, w_base) = run(None);
    let (vt_off, w_off) = run(Some(RacecheckMode::Off));
    let (vt_rep, w_rep) = run(Some(RacecheckMode::Report));
    let ops = 4.0 * 64.0 * 16.0;
    println!(
        "  unarmed        : virtual {:>9.1} us | wall {:>7.2} ms",
        vt_base / 1e3,
        w_base * 1e3
    );
    println!(
        "  FOMPI_RACECHECK=off   : virtual {:>9.1} us | wall {:>7.2} ms",
        vt_off / 1e3,
        w_off * 1e3
    );
    println!(
        "  FOMPI_RACECHECK=report: virtual {:>9.1} us | wall {:>7.2} ms",
        vt_rep / 1e3,
        w_rep * 1e3
    );
    println!(
        "  report-mode wall cost: {:>6.0} ns/op (wall-clock only; virtual time identical)\n",
        (w_rep - w_off).max(0.0) / ops * 1e9
    );
    // The ≈0-when-off claim, enforced: the checker never charges virtual
    // time, so armed/unarmed virtual times are bit-identical, and the
    // perfgate (which runs unarmed) cannot see it at all.
    assert_eq!(vt_base, vt_off, "disabled checker perturbed virtual time");
    assert_eq!(vt_base, vt_rep, "report mode must not charge virtual time");
}

/// 7. Model drift vs job size: which op classes stay pinned to the §3
///    closed forms as p grows, and which (fence, the log-p collective) pick
///    up composition overhead.
fn drift_vs_scale_ablation() {
    println!("--- model drift vs job size: telemetry means vs §3 closed forms ---");
    for p in [2usize, 4, 8] {
        println!("  p = {p}:");
        let rows = fompi_bench::drift::collect(p);
        for line in fompi_bench::drift::render(&rows).lines() {
            println!("    {line}");
        }
    }
    println!();
}
