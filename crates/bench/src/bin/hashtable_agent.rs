//! Fleet agent wrapping the distributed-hashtable motif: owner-computes
//! notified inserts, one JSON metrics line.
//!
//! ```text
//! hashtable_agent --agent-json [--ranks <N>] [--seed <S>]
//! ```
//!
//! Collision chains serialise contended AMOs in arrival order, so the
//! virtual times are schedule-dependent — the registry marks this agent
//! *unstable*: it feeds the wall-clock table and the chaos sweep, never
//! the byte-diffed summary.

use fompi_apps::hashtable::{self, HtConfig};
use fompi_fabric::metrics_snapshot;
use fompi_runtime::Universe;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut ranks = 8usize;
    let mut seed = 1u64;
    let mut agent_json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--agent-json" => agent_json = true,
            "--ranks" => ranks = args.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(1),
            other => {
                eprintln!("hashtable_agent: unknown argument {other:?}");
                eprintln!("usage: hashtable_agent --agent-json [--ranks <N>] [--seed <S>]");
                return ExitCode::FAILURE;
            }
        }
    }
    if ranks < 2 {
        eprintln!("hashtable_agent: --ranks must be >= 2");
        return ExitCode::FAILURE;
    }
    let cfg = HtConfig { inserts_per_rank: 64, table_slots: 32, heap_cells: 4096, seed };
    let (outs, fabric) = Universe::new(ranks)
        .node_size(2)
        .seed(seed)
        .notify_depth(2048)
        .metrics(true)
        .launch(move |ctx| hashtable::run_notified(ctx, &cfg));
    let total: usize = outs.iter().map(|r| r.local_elements).sum();
    assert_eq!(total, ranks * 64, "hashtable agent lost elements");
    let snap = metrics_snapshot(&fabric);
    if agent_json {
        println!("{}", snap.to_json_line());
    } else {
        print!("{}", snap.to_prometheus());
    }
    ExitCode::SUCCESS
}
