//! # fompi-pgas — the compiled-PGAS baseline (Cray UPC / Fortran Coarrays)
//!
//! §3 of the paper benchmarks foMPI against Cray's UPC and Fortran 2008
//! coarray compilers, both of which drive the same DMAPP hardware but
//! through heavier compiler-generated software paths ("foMPI has more than
//! 50% lower latency than other PGAS models", §3.1). This crate provides
//! that comparison surface:
//!
//! * [`SharedArray`] — a UPC-style blocked shared array with
//!   `upc_memput`/`upc_memget`, `upc_fence`, `upc_barrier` and the
//!   Cray-specific atomic extensions (`aadd`, `cas`) used by the hashtable
//!   study (§4.1);
//! * [`Coarray`] — a Fortran-coarray-style object with remote assignment
//!   (`buf(1:n)[img] = ...`), `sync_all` and `sync_memory`;
//! * [`PgasCosts`] — the per-call software overheads of the two compilers,
//!   calibrated so the paper's latency ordering (foMPI < UPC < CAF)
//!   emerges from the shared fabric model.

pub mod coarray;
pub mod shared;

pub use coarray::Coarray;
pub use shared::SharedArray;

/// Software overheads of the compiled-PGAS runtimes (ns per call).
/// Calibrated to Figure 4a's inset: at 8 bytes foMPI ≈ 1.0–1.2 µs,
/// Cray UPC ≈ 2 µs, Cray CAF ≈ 2.5–3 µs over the same ≈1 µs DMAPP put.
#[derive(Debug, Clone, Copy)]
pub struct PgasCosts {
    /// Per-operation overhead of the Cray UPC runtime.
    pub upc_op_ns: f64,
    /// Per-operation overhead of the Cray CAF runtime.
    pub caf_op_ns: f64,
    /// Extra cost of `upc_barrier`/`sync all` over a raw dissemination
    /// barrier round (their implementations synchronise memory on the way).
    pub barrier_extra_ns: f64,
}

impl Default for PgasCosts {
    fn default() -> Self {
        Self { upc_op_ns: 900.0, caf_op_ns: 1_500.0, barrier_extra_ns: 800.0 }
    }
}
