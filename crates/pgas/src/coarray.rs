//! Fortran 2008 coarray baseline.
//!
//! The paper's CAF microbenchmark is a remote array assignment
//! `buf(1:n)[img] = buf(1:n)` followed by `sync memory` — a put plus a
//! completion fence. Cray's CAF runtime rides the same DMAPP layer with a
//! still-heavier compiler path than UPC (Figure 4a inset).

use crate::PgasCosts;
use fompi_fabric::{SegKey, Segment};
use fompi_runtime::RankCtx;
use std::rc::Rc;
use std::sync::Arc;

/// A coarray of `len` bytes per image.
pub struct Coarray {
    ep: Rc<fompi_fabric::Endpoint>,
    coll: Arc<fompi_runtime::CollEngine>,
    id: u64,
    costs: PgasCosts,
    len: usize,
}

impl Coarray {
    /// Collective allocation (coarrays are symmetric by construction).
    pub fn new(ctx: &RankCtx, len: usize) -> Coarray {
        let seg = Segment::new(len.max(8));
        let id = loop {
            let proposal = if ctx.rank() == 0 {
                ctx.fabric().propose_id().to_le_bytes().to_vec()
            } else {
                vec![0u8; 8]
            };
            let id = u64::from_le_bytes(ctx.bcast(0, &proposal).try_into().unwrap());
            let ok = ctx.fabric().register_symmetric(ctx.rank(), id, seg.clone()).is_ok();
            if ctx.allreduce_u64(ok as u64, |a, b| a & b) == 1 {
                break id;
            }
            if ok {
                ctx.fabric().deregister(SegKey { rank: ctx.rank(), id });
            }
        };
        ctx.barrier();
        Coarray {
            ep: ctx.ep_rc(),
            coll: ctx.coll_arc(),
            id,
            costs: PgasCosts::default(),
            len: len.max(8),
        }
    }

    fn key(&self, image: u32) -> SegKey {
        SegKey { rank: image, id: self.id }
    }

    /// Bytes per image.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remote assignment `a(off:off+n)[image] = src` (relaxed; completed by
    /// [`Coarray::sync_memory`]).
    pub fn put(&self, image: u32, off: usize, src: &[u8]) {
        self.ep.charge(self.costs.caf_op_ns);
        self.ep.put_implicit(self.key(image), off, src).expect("coarray put out of bounds");
    }

    /// Remote read `dst = a(off:off+n)[image]` (blocking, like a coindexed
    /// RHS reference).
    pub fn get(&self, dst: &mut [u8], image: u32, off: usize) {
        self.ep.charge(self.costs.caf_op_ns);
        self.ep.get(self.key(image), off, dst).expect("coarray get out of bounds");
    }

    /// `sync memory`: completion of all outstanding coarray accesses.
    pub fn sync_memory(&self) {
        self.ep.charge(self.costs.caf_op_ns * 0.5);
        self.ep.gsync();
        self.ep.mfence();
    }

    /// `sync all`: global image barrier + memory sync.
    pub fn sync_all(&self) {
        self.sync_memory();
        self.ep.charge(self.costs.barrier_extra_ns);
        self.coll.barrier(&self.ep);
    }

    /// Local read.
    pub fn read_local(&self, off: usize, dst: &mut [u8]) {
        self.ep.fabric().resolve(self.key(self.ep.rank())).expect("own image").read(off, dst);
    }

    /// Local write.
    pub fn write_local(&self, off: usize, src: &[u8]) {
        self.ep.fabric().resolve(self.key(self.ep.rank())).expect("own image").write(off, src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_runtime::Universe;

    #[test]
    fn remote_assignment_roundtrip() {
        let got = Universe::new(3).node_size(1).run(|ctx| {
            let a = Coarray::new(ctx, 32);
            let next = (ctx.rank() + 1) % 3;
            a.put(next, 0, &[ctx.rank() as u8 + 9; 8]);
            a.sync_all();
            let mut b = [0u8; 8];
            a.read_local(0, &mut b);
            b[0]
        });
        assert_eq!(got, vec![11, 9, 10]);
    }

    #[test]
    fn caf_put_costs_more_than_upc_put() {
        let caf = Universe::new(2).node_size(1).run(|ctx| {
            let a = Coarray::new(ctx, 32);
            let t0 = ctx.now();
            a.put(1, 0, &[1u8; 8]);
            a.sync_memory();
            ctx.now() - t0
        })[0];
        let upc = Universe::new(2).node_size(1).run(|ctx| {
            let a = crate::SharedArray::all_alloc(ctx, 32);
            let t0 = ctx.now();
            a.memput(1, 0, &[1u8; 8]);
            a.fence();
            ctx.now() - t0
        })[0];
        assert!(caf > upc, "CAF {caf} should exceed UPC {upc}");
    }
}
