//! UPC-style shared arrays.
//!
//! `shared [B] T a[N]` distributes N elements round-robin in blocks of B
//! across the threads. `upc_memput`/`upc_memget` move contiguous bytes
//! to/from one thread's chunk; Cray-specific atomics (`aadd`, `cas`) serve
//! the hashtable motif; `upc_fence` guarantees remote completion of prior
//! relaxed accesses (like `MPI_Win_flush_all`). When the Cray `defer_sync`
//! pragma applies (message-rate benchmark), puts are issued fully
//! asynchronously, identical to our implicit-nonblocking flavour.

use crate::PgasCosts;
use fompi_fabric::{AmoOp, SegKey, Segment};
use fompi_runtime::RankCtx;
use std::rc::Rc;
use std::sync::Arc;

/// A blocked shared array of `elem_bytes`-sized elements, `block_elems` per
/// thread chunk. Each thread owns one chunk (UPC's cyclic distribution with
/// block size = chunk size, the layout the paper's benchmarks use).
pub struct SharedArray {
    ep: Rc<fompi_fabric::Endpoint>,
    coll: Arc<fompi_runtime::CollEngine>,
    id: u64,
    costs: PgasCosts,
    chunk_bytes: usize,
}

impl SharedArray {
    /// Collective: allocate `chunk_bytes` on every thread
    /// (`upc_all_alloc(THREADS, chunk_bytes)`).
    pub fn all_alloc(ctx: &RankCtx, chunk_bytes: usize) -> SharedArray {
        let seg = Segment::new(chunk_bytes.max(8));
        let id = loop {
            let proposal = if ctx.rank() == 0 {
                ctx.fabric().propose_id().to_le_bytes().to_vec()
            } else {
                vec![0u8; 8]
            };
            let id = u64::from_le_bytes(ctx.bcast(0, &proposal).try_into().unwrap());
            let ok = ctx.fabric().register_symmetric(ctx.rank(), id, seg.clone()).is_ok();
            if ctx.allreduce_u64(ok as u64, |a, b| a & b) == 1 {
                break id;
            }
            if ok {
                ctx.fabric().deregister(SegKey { rank: ctx.rank(), id });
            }
        };
        ctx.barrier();
        SharedArray {
            ep: ctx.ep_rc(),
            coll: ctx.coll_arc(),
            id,
            costs: PgasCosts::default(),
            chunk_bytes: chunk_bytes.max(8),
        }
    }

    fn key(&self, thread: u32) -> SegKey {
        SegKey { rank: thread, id: self.id }
    }

    /// Bytes per thread chunk.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// `upc_memput(&a[thread][off], src, n)`: relaxed put, completed by
    /// [`SharedArray::fence`].
    pub fn memput(&self, thread: u32, off: usize, src: &[u8]) {
        self.ep.charge(self.costs.upc_op_ns);
        self.ep.put_implicit(self.key(thread), off, src).expect("upc_memput out of bounds");
    }

    /// `upc_memget(dst, &a[thread][off], n)`.
    pub fn memget(&self, dst: &mut [u8], thread: u32, off: usize) {
        self.ep.charge(self.costs.upc_op_ns);
        self.ep.get_implicit(self.key(thread), off, dst).expect("upc_memget out of bounds");
        // Blocking semantics (no defer_sync): complete now.
        self.ep.gsync();
    }

    /// Nonblocking get (`upc_memget_nb` + `defer_sync`), completed by
    /// [`SharedArray::fence`]. Used by the MILC UPC port (§4.4).
    pub fn memget_nb(&self, dst: &mut [u8], thread: u32, off: usize) {
        self.ep.charge(self.costs.upc_op_ns);
        self.ep.get_implicit(self.key(thread), off, dst).expect("upc_memget_nb out of bounds");
    }

    /// `upc_fence`: remote completion of all outstanding relaxed accesses.
    pub fn fence(&self) {
        self.ep.charge(self.costs.upc_op_ns * 0.5);
        self.ep.gsync();
        self.ep.mfence();
    }

    /// `upc_barrier`: global barrier + memory synchronisation.
    pub fn barrier(&self) {
        self.fence();
        self.ep.charge(self.costs.barrier_extra_ns);
        self.coll.barrier(&self.ep);
    }

    /// Cray UPC atomic fetch-and-add on an 8-byte slot (`_amo_afadd`).
    pub fn aadd(&self, thread: u32, off: usize, v: u64) -> u64 {
        self.ep.charge(self.costs.upc_op_ns);
        self.ep.amo(self.key(thread), off, AmoOp::Add, v, 0).expect("aadd out of bounds")
    }

    /// Cray UPC atomic compare-and-swap (`_amo_acswap`). Returns the old
    /// value.
    pub fn cas(&self, thread: u32, off: usize, desired: u64, compare: u64) -> u64 {
        self.ep.charge(self.costs.upc_op_ns);
        self.ep.amo(self.key(thread), off, AmoOp::Cas, desired, compare).expect("cas out of bounds")
    }

    /// Local chunk read.
    pub fn read_local(&self, off: usize, dst: &mut [u8]) {
        let mut tmp = dst.to_vec();
        self.ep.fabric().resolve(self.key(self.ep.rank())).expect("own chunk").read(off, &mut tmp);
        dst.copy_from_slice(&tmp);
    }

    /// Local chunk write.
    pub fn write_local(&self, off: usize, src: &[u8]) {
        self.ep.fabric().resolve(self.key(self.ep.rank())).expect("own chunk").write(off, src);
    }

    /// The endpoint (clock access for benchmarks).
    pub fn ep(&self) -> &fompi_fabric::Endpoint {
        &self.ep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_runtime::Universe;

    #[test]
    fn memput_fence_memget() {
        let got = Universe::new(4).node_size(2).run(|ctx| {
            let a = SharedArray::all_alloc(ctx, 64);
            let next = (ctx.rank() + 1) % 4;
            a.memput(next, 0, &[ctx.rank() as u8 + 1; 8]);
            a.barrier();
            let mut b = [0u8; 8];
            a.read_local(0, &mut b);
            b[0]
        });
        assert_eq!(got, vec![4, 1, 2, 3]);
    }

    #[test]
    fn aadd_is_atomic_across_threads() {
        let got = Universe::new(8).node_size(4).run(|ctx| {
            let a = SharedArray::all_alloc(ctx, 16);
            for _ in 0..100 {
                a.aadd(0, 0, 1);
            }
            a.barrier();
            let mut b = [0u8; 8];
            a.read_local(0, &mut b);
            u64::from_le_bytes(b)
        });
        assert_eq!(got[0], 800);
    }

    #[test]
    fn cas_loses_and_wins() {
        let got = Universe::new(4).node_size(4).run(|ctx| {
            let a = SharedArray::all_alloc(ctx, 16);
            let old = a.cas(0, 8, ctx.rank() as u64 + 1, 0);
            a.barrier();
            old
        });
        assert_eq!(got.iter().filter(|&&o| o == 0).count(), 1);
    }

    #[test]
    fn upc_put_slower_than_raw_fabric() {
        let times = Universe::new(2).node_size(1).run(|ctx| {
            let a = SharedArray::all_alloc(ctx, 64);
            let t0 = ctx.now();
            a.memput(1, 0, &[1u8; 8]);
            a.fence();
            ctx.now() - t0
        });
        // One UPC put must cost at least the runtime overhead + DMAPP put.
        assert!(times[0] > 1_900.0, "UPC path too cheap: {}", times[0]);
    }
}
