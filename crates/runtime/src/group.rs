//! Process groups (the `group` argument of PSCW synchronisation).

/// An ordered set of ranks. Used for PSCW access/exposure groups and for
/// subset collectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    ranks: Vec<u32>,
}

impl Group {
    /// Group from an explicit rank list (deduplicated, order preserved).
    pub fn new(ranks: impl IntoIterator<Item = u32>) -> Self {
        let mut seen = std::collections::HashSet::new();
        let ranks = ranks.into_iter().filter(|r| seen.insert(*r)).collect();
        Self { ranks }
    }

    /// The group of all `p` ranks.
    pub fn world(p: usize) -> Self {
        Self { ranks: (0..p as u32).collect() }
    }

    /// Empty group.
    pub fn empty() -> Self {
        Self { ranks: Vec::new() }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True if no members.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, rank: u32) -> bool {
        self.ranks.contains(&rank)
    }

    /// Iterate members in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.ranks.iter().copied()
    }

    /// Members as a slice.
    pub fn ranks(&self) -> &[u32] {
        &self.ranks
    }
}

impl FromIterator<u32> for Group {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Group::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_preserves_order() {
        let g = Group::new([3, 1, 3, 2, 1]);
        assert_eq!(g.ranks(), &[3, 1, 2]);
        assert_eq!(g.len(), 3);
        assert!(g.contains(2));
        assert!(!g.contains(0));
    }

    #[test]
    fn world_and_empty() {
        assert_eq!(Group::world(3).ranks(), &[0, 1, 2]);
        assert!(Group::empty().is_empty());
    }
}
