//! Internal collectives with virtual-time accounting.
//!
//! Data exchange happens through shared slots guarded by a reusable
//! `std::sync::Barrier` (write — barrier — read — barrier), which is correct
//! and simple. Virtual time is charged according to the *scalable algorithm*
//! each collective would use on an RDMA network:
//!
//! * barrier — dissemination, `⌈log2 p⌉` rounds of one 8-byte put each;
//! * allgather — Bruck, round `r` moves `2^r · s` bytes;
//! * allreduce — recursive doubling, `⌈log2 p⌉` rounds of `s` bytes;
//! * broadcast — binomial tree, depth `⌈log2 p⌉`.
//!
//! Every collective max-combines the participants' clocks through a
//! [`StampCell`], so the returned virtual time is
//! `max(entry times) + algorithm cost` — what a balanced execution of the
//! real algorithm yields.

use fompi_fabric::cost::Transport;
use fompi_fabric::shim::Mutex;
use fompi_fabric::{Endpoint, Fabric, StampCell};
use std::sync::Arc;
use std::sync::Barrier;

/// Shared collective state for one universe.
pub struct CollEngine {
    p: usize,
    barrier: Barrier,
    slots: Box<[Mutex<Vec<u8>>]>,
    stamp: StampCell,
    fabric: Arc<Fabric>,
}

impl CollEngine {
    /// Engine for `p` ranks on `fabric`.
    pub fn new(p: usize, fabric: Arc<Fabric>) -> Self {
        Self {
            p,
            barrier: Barrier::new(p),
            slots: (0..p).map(|_| Mutex::new(Vec::new())).collect(),
            stamp: StampCell::new(),
            fabric,
        }
    }

    fn rounds(&self) -> u32 {
        (usize::BITS - (self.p - 1).leading_zeros()).min(63)
    }

    fn transport(&self) -> Transport {
        if self.fabric.topology().single_node() {
            Transport::Xpmem
        } else {
            Transport::Dmapp
        }
    }

    /// First rendezvous of the write–barrier–read–barrier pattern. Every
    /// collective is a process-wide happens-before edge, so the barrier
    /// leader — elected while all ranks are still inside the wait, and
    /// sandwiched before anyone passes the *second* barrier — advances
    /// the race checker's epoch clocks exactly once per collective (the
    /// `init → barrier → epoch` idiom must not flag).
    ///
    /// Under an armed model-checker gate ([`fompi_fabric::mc`]) the real
    /// barrier is replaced by the gate's collective: every other rank is
    /// parked inside the gate, so a `std::sync::Barrier` would never
    /// fill. The leader still runs `process_sync` before reaching the
    /// exit rendezvous, preserving the sandwich.
    fn sync_entry(&self, ep: &Endpoint) {
        let leader = match ep.mc_collective("coll-entry") {
            Some(l) => l,
            None => self.barrier.wait().is_leader(),
        };
        if leader {
            self.fabric.shadow().process_sync();
        }
    }

    /// Second rendezvous (the read-side barrier), gate-mediated like
    /// [`CollEngine::sync_entry`].
    fn sync_exit(&self, ep: &Endpoint) {
        if ep.mc_collective("coll-exit").is_none() {
            self.barrier.wait();
        }
    }

    /// Synchronise entry clocks: returns `max(entry times)`. The trailing
    /// barrier prevents a fast rank's *next* collective from polluting this
    /// one's stamp.
    fn sync_clocks(&self, ep: &Endpoint) -> f64 {
        self.stamp.raise(ep.clock().now());
        self.sync_entry(ep);
        let t = self.stamp.get();
        self.sync_exit(ep);
        t
    }

    /// Dissemination barrier.
    pub fn barrier(&self, ep: &Endpoint) {
        if self.p == 1 {
            return;
        }
        let t = self.sync_clocks(ep);
        let m = self.fabric.model();
        let cost = self.rounds() as f64 * m.barrier_round(self.transport());
        ep.clock().join(t + cost);
    }

    /// Bruck allgather of equal-sized contributions.
    pub fn allgather(&self, ep: &Endpoint, bytes: &[u8]) -> Vec<Vec<u8>> {
        *self.slots[ep.rank() as usize].lock() = bytes.to_vec();
        if self.p == 1 {
            return vec![bytes.to_vec()];
        }
        self.stamp.raise(ep.clock().now());
        self.sync_entry(ep);
        let t = self.stamp.get();
        let out: Vec<Vec<u8>> = self.slots.iter().map(|s| s.lock().clone()).collect();
        self.sync_exit(ep);
        let m = self.fabric.model();
        let tr = self.transport();
        let mut cost = 0.0;
        let mut chunk = bytes.len().max(1);
        for _ in 0..self.rounds() {
            cost += m.inject(tr) + m.put_latency(tr, chunk);
            chunk *= 2;
        }
        ep.clock().join(t + cost);
        out
    }

    /// Recursive-doubling allreduce of one u64.
    pub fn allreduce_u64(&self, ep: &Endpoint, v: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        let vals = self.allgather_u64_cheap(ep, v);
        let mut acc = vals[0];
        for &x in &vals[1..] {
            acc = op(acc, x);
        }
        // allgather_u64_cheap already charged log p rounds of 8-byte
        // messages, which equals the recursive-doubling cost for u64.
        acc
    }

    /// Allgather of a single u64 with recursive-doubling cost (8-byte
    /// payloads don't grow the Bruck chunks meaningfully).
    fn allgather_u64_cheap(&self, ep: &Endpoint, v: u64) -> Vec<u64> {
        *self.slots[ep.rank() as usize].lock() = v.to_le_bytes().to_vec();
        if self.p == 1 {
            return vec![v];
        }
        self.stamp.raise(ep.clock().now());
        self.sync_entry(ep);
        let t = self.stamp.get();
        let out: Vec<u64> = self
            .slots
            .iter()
            .map(|s| u64::from_le_bytes(s.lock().as_slice().try_into().unwrap()))
            .collect();
        self.sync_exit(ep);
        let m = self.fabric.model();
        let tr = self.transport();
        let cost = self.rounds() as f64 * (m.inject(tr) + m.put_latency(tr, 8));
        ep.clock().join(t + cost);
        out
    }

    /// Recursive-doubling allreduce of an f64 vector (sum by default via
    /// `op`). Used by the RMA/PGAS application variants, whose runtimes
    /// ship tuned collectives.
    pub fn allreduce_f64(&self, ep: &Endpoint, vals: &mut [f64], op: impl Fn(f64, f64) -> f64) {
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        *self.slots[ep.rank() as usize].lock() = bytes;
        if self.p == 1 {
            return;
        }
        self.stamp.raise(ep.clock().now());
        self.sync_entry(ep);
        let t = self.stamp.get();
        let all: Vec<Vec<u8>> = self.slots.iter().map(|s| s.lock().clone()).collect();
        self.sync_exit(ep);
        for (i, v) in vals.iter_mut().enumerate() {
            let mut acc = f64::from_le_bytes(all[0][i * 8..i * 8 + 8].try_into().unwrap());
            for row in &all[1..] {
                acc = op(acc, f64::from_le_bytes(row[i * 8..i * 8 + 8].try_into().unwrap()));
            }
            *v = acc;
        }
        let m = self.fabric.model();
        let tr = self.transport();
        let cost = self.rounds() as f64 * (m.inject(tr) + m.put_latency(tr, vals.len() * 8));
        ep.clock().join(t + cost);
    }

    /// Binomial-tree broadcast from `root`.
    pub fn bcast(&self, ep: &Endpoint, root: u32, bytes: &[u8]) -> Vec<u8> {
        if ep.rank() == root {
            *self.slots[root as usize].lock() = bytes.to_vec();
        }
        if self.p == 1 {
            return bytes.to_vec();
        }
        self.stamp.raise(ep.clock().now());
        self.sync_entry(ep);
        let t = self.stamp.get();
        let out = self.slots[root as usize].lock().clone();
        self.sync_exit(ep);
        let m = self.fabric.model();
        let tr = self.transport();
        let cost = self.rounds() as f64 * (m.inject(tr) + m.put_latency(tr, out.len()));
        ep.clock().join(t + cost);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fompi_fabric::CostModel;

    /// Drive the engine with real threads outside the Universe wrapper.
    fn with_ranks<T: Send>(p: usize, f: impl Fn(&Endpoint, &CollEngine) -> T + Sync) -> Vec<T> {
        let fabric = Fabric::new(p, 1, CostModel::default());
        let eng = CollEngine::new(p, fabric.clone());
        let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
        std::thread::scope(|s| {
            for (r, slot) in out.iter_mut().enumerate() {
                let fabric = fabric.clone();
                let eng = &eng;
                let f = &f;
                s.spawn(move || {
                    let ep = Endpoint::new(fabric, r as u32);
                    *slot = Some(f(&ep, eng));
                });
            }
        });
        out.into_iter().map(|o| o.unwrap()).collect()
    }

    #[test]
    fn barrier_is_a_max_plus_cost() {
        let times = with_ranks(4, |ep, eng| {
            ep.charge(500.0 * (ep.rank() + 1) as f64);
            eng.barrier(ep);
            ep.clock().now()
        });
        let expect_min = 2000.0; // slowest entry
        for t in times {
            assert!(t > expect_min);
        }
    }

    #[test]
    fn allgather_returns_everyones_bytes() {
        let res = with_ranks(3, |ep, eng| eng.allgather(ep, &[ep.rank() as u8; 2]));
        for per in res {
            assert_eq!(per, vec![vec![0, 0], vec![1, 1], vec![2, 2]]);
        }
    }

    #[test]
    fn allreduce_min() {
        let res =
            with_ranks(5, |ep, eng| eng.allreduce_u64(ep, 100 - ep.rank() as u64, |a, b| a.min(b)));
        assert!(res.iter().all(|&v| v == 96));
    }

    #[test]
    fn single_rank_collectives_are_trivial() {
        let res = with_ranks(1, |ep, eng| {
            eng.barrier(ep);
            let g = eng.allgather(ep, &[42]);
            let r = eng.allreduce_u64(ep, 7, |a, b| a + b);
            let b = eng.bcast(ep, 0, &[1, 2]);
            (g, r, b, ep.clock().now())
        });
        let (g, r, b, t) = &res[0];
        assert_eq!(g, &vec![vec![42]]);
        assert_eq!(*r, 7);
        assert_eq!(b, &vec![1, 2]);
        assert_eq!(*t, 0.0); // no cost at p = 1
    }
}
