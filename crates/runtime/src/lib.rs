//! # fompi-runtime — ranks, nodes and internal collectives
//!
//! MPI processes are simulated as threads of one OS process sharing a
//! [`fompi_fabric::Fabric`]. A [`Universe`] describes the job (rank count,
//! ranks per node, cost model); [`Universe::run`] spawns one thread per rank
//! and hands each a [`RankCtx`] — the per-rank execution context holding the
//! rank id, its fabric [`Endpoint`] and the collective engine.
//!
//! The collectives here are the *internal* ones an MPI-RMA implementation
//! itself needs (window creation uses two allgathers, allocated windows use
//! an allreduce-driven retry loop, fence needs a barrier — §2.2/§2.3 of the
//! paper). They are implemented with shared-memory exchange for
//! correctness, and charged virtual time according to the scalable
//! algorithms the paper assumes: dissemination barrier, Bruck allgather,
//! binomial broadcast, recursive-doubling allreduce — all `O(log p)` rounds.

pub mod coll;
pub mod group;

pub use coll::CollEngine;
pub use group::Group;

use fompi_fabric::rng::{root_seed_from_env, splitmix64};
use fompi_fabric::{CostModel, Endpoint, Fabric, FaultPlan, McGate, ProfileMode, RacecheckMode};
use std::rc::Rc;
use std::sync::Arc;

/// A parallel job description: `p` ranks, `node_size` ranks per simulated
/// node, and the fabric cost model.
pub struct Universe {
    p: usize,
    node_size: usize,
    model: CostModel,
    trace: Option<usize>,
    seed: u64,
    faults: Option<FaultPlan>,
    batch: Option<bool>,
    notify_depth: Option<usize>,
    racecheck: Option<RacecheckMode>,
    profile: Option<ProfileMode>,
    metrics: Option<bool>,
    txn_retry: Option<String>,
    rmc: Option<String>,
    mc_gate: Option<Arc<dyn McGate>>,
}

impl Universe {
    /// A job of `p` ranks, 32 per node (the Blue Waters XE6 layout). The
    /// root seed defaults to `FOMPI_SEED` (or 1): one value that every
    /// randomized component (fault plans, soak workloads) derives from,
    /// so a failure log prints a single reproducing seed.
    pub fn new(p: usize) -> Self {
        Self {
            p,
            node_size: 32,
            model: CostModel::default(),
            trace: None,
            seed: root_seed_from_env(1),
            faults: None,
            batch: None,
            notify_depth: None,
            racecheck: None,
            profile: None,
            metrics: None,
            txn_retry: None,
            rmc: None,
            mc_gate: None,
        }
    }

    /// Override ranks per node.
    pub fn node_size(mut self, node_size: usize) -> Self {
        assert!(node_size > 0);
        self.node_size = node_size;
        self
    }

    /// Override the cost model.
    pub fn model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// Force telemetry on with a per-rank event ring of `ring_cap` slots,
    /// regardless of `FOMPI_TELEMETRY`. Inspect via the fabric returned by
    /// [`Universe::launch`] (e.g. `fabric.telemetry().report()` or the
    /// Perfetto exporter).
    pub fn trace(mut self, ring_cap: usize) -> Self {
        self.trace = Some(ring_cap);
        self
    }

    /// Override the root seed (also the default seed of a fault plan
    /// installed with a zero seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Arm a fault plan, overriding `FOMPI_FAULTS`. A plan with `seed == 0`
    /// inherits a seed derived from the universe's root seed.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Arm (or explicitly disarm) issue-side small-op batching for every
    /// endpoint of the job, overriding `FOMPI_BATCH` (see
    /// `fompi_fabric::batch`). Leaving this unset defers to the
    /// environment, which defaults to off.
    pub fn batch(mut self, on: bool) -> Self {
        self.batch = Some(on);
        self
    }

    /// Override the per-rank notification-queue depth (records), overriding
    /// `FOMPI_NOTIFY_DEPTH` (see `fompi_fabric::notify`). Leaving this
    /// unset defers to the environment (default 64).
    pub fn notify_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0);
        self.notify_depth = Some(depth);
        self
    }

    /// Arm the RMA race checker (`fompi_fabric::shadow`) for every window
    /// of the job, overriding `FOMPI_RACECHECK`. `Report` prints each
    /// violation and keeps going; `Panic` aborts the offending rank thread
    /// on the first one; `Off` forces the checker off regardless of the
    /// environment.
    pub fn racecheck(mut self, mode: RacecheckMode) -> Self {
        self.racecheck = Some(mode);
        self
    }

    /// Arm the wall-clock profiler (`fompi_fabric::profile`) for the job,
    /// overriding `FOMPI_PROFILE`. Any mode other than
    /// [`ProfileMode::Off`] also arms the flight recorder, so a crashing
    /// run keeps its last-events black box. Never touches virtual time.
    pub fn profile(mut self, mode: ProfileMode) -> Self {
        self.profile = Some(mode);
        self
    }

    /// Arm (or disarm) the metrics plane (`fompi_fabric::metrics`),
    /// overriding `FOMPI_METRICS`. Arming also enables telemetry
    /// aggregates — the registry snapshots them. Inspect via
    /// `fompi_fabric::metrics_snapshot` on the fabric returned by
    /// [`Universe::launch`].
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = Some(on);
        self
    }

    /// Set the transaction retry-policy spec for the job, overriding
    /// `FOMPI_TXN_RETRY`. The fabric carries the raw string; the
    /// `fompi-txn` layer owns the grammar (`immediate[:budget]` or
    /// `backoff[:budget[:base_ns[:cap_ns]]]`) and parses it when a policy
    /// is constructed.
    pub fn txn_retry(mut self, spec: &str) -> Self {
        self.txn_retry = Some(spec.to_string());
        self
    }

    /// Set the remote-memory-channel tuning spec for the job, overriding
    /// `FOMPI_RMC`. The fabric carries the raw string; the `fompi-rmc`
    /// layer owns the grammar (comma-separated `key=value` pairs such as
    /// `slots=8,lagging=drop,rpc_budget=4`) and parses it when a channel
    /// or RPC endpoint is constructed.
    pub fn rmc(mut self, spec: &str) -> Self {
        self.rmc = Some(spec.to_string());
        self
    }

    /// Install a model-checker scheduling gate (`fompi_fabric::mc`) for
    /// the job: every endpoint serializes its shared-state operations
    /// through it and the collective engine swaps its real barriers for
    /// the gate's collective. Used by `fompi-mc`; regular runs never set
    /// this.
    pub fn mc_gate(mut self, gate: Arc<dyn McGate>) -> Self {
        self.mc_gate = Some(gate);
        self
    }

    /// The root seed in force.
    pub fn root_seed(&self) -> u64 {
        self.seed
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Spawn one thread per rank, run `f` on each, and return the per-rank
    /// results in rank order together with the fabric (for counter
    /// inspection).
    pub fn launch<T, F>(&self, f: F) -> (Vec<T>, Arc<Fabric>)
    where
        T: Send,
        F: Fn(&mut RankCtx) -> T + Send + Sync,
    {
        let plan = self.faults.clone().map(|plan| {
            if plan.seed == 0 {
                let seed = splitmix64(self.seed);
                plan.with_seed(if seed == 0 { 1 } else { seed })
            } else {
                plan
            }
        });
        let fabric =
            Fabric::with_config(self.p, self.node_size, self.model.clone(), self.trace, plan);
        if let Some(on) = self.batch {
            fabric.set_batch_default(on);
        }
        if let Some(depth) = self.notify_depth {
            fabric.set_notify_depth(depth);
        }
        if let Some(mode) = self.racecheck {
            fabric.set_racecheck(mode);
        }
        if let Some(mode) = self.profile {
            fabric.set_profile(mode);
        }
        if let Some(on) = self.metrics {
            fabric.set_metrics(on);
        }
        if let Some(spec) = &self.txn_retry {
            fabric.set_txn_retry(spec);
        }
        if let Some(spec) = &self.rmc {
            fabric.set_rmc(spec);
        }
        if let Some(gate) = &self.mc_gate {
            fabric.set_mc_gate(gate.clone());
        }
        let coll = Arc::new(CollEngine::new(self.p, fabric.clone()));
        let mut results: Vec<Option<T>> = (0..self.p).map(|_| None).collect();
        let fref = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = results
                .iter_mut()
                .enumerate()
                .map(|(rank, slot)| {
                    let fabric = fabric.clone();
                    let coll = coll.clone();
                    std::thread::Builder::new()
                        .name(format!("rank-{rank}"))
                        .stack_size(8 << 20)
                        .spawn_scoped(s, move || {
                            let mut ctx = RankCtx::new(rank as u32, fabric, coll);
                            // With the flight recorder armed, a panicking
                            // rank dumps its last-events window before the
                            // unwind propagates — the run's black box.
                            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                fref(&mut ctx)
                            })) {
                                Ok(v) => *slot = Some(v),
                                Err(payload) => {
                                    ctx.ep().flight_dump("rank thread panicked");
                                    std::panic::resume_unwind(payload);
                                }
                            }
                        })
                        .expect("failed to spawn rank thread")
                })
                .collect();
            for h in handles {
                h.join().expect("rank thread panicked");
            }
        });
        (results.into_iter().map(|r| r.unwrap()).collect(), fabric)
    }

    /// [`Universe::launch`] discarding the fabric.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut RankCtx) -> T + Send + Sync,
    {
        self.launch(f).0
    }
}

/// Per-rank execution context. One per rank thread; not `Send`.
pub struct RankCtx {
    rank: u32,
    size: usize,
    ep: Rc<Endpoint>,
    coll: Arc<CollEngine>,
}

impl RankCtx {
    /// Build the context for `rank`.
    pub fn new(rank: u32, fabric: Arc<Fabric>, coll: Arc<CollEngine>) -> Self {
        let size = fabric.num_ranks();
        let ep = Rc::new(Endpoint::new(fabric, rank));
        Self { rank, size, ep, coll }
    }

    /// This rank's id.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Job size (number of ranks).
    pub fn size(&self) -> usize {
        self.size
    }

    /// The fabric endpoint.
    pub fn ep(&self) -> &Endpoint {
        &self.ep
    }

    /// A shareable handle to the endpoint (windows keep one).
    pub fn ep_rc(&self) -> Rc<Endpoint> {
        self.ep.clone()
    }

    /// The shared fabric.
    pub fn fabric(&self) -> &Arc<Fabric> {
        self.ep.fabric()
    }

    /// Current virtual time (ns).
    pub fn now(&self) -> f64 {
        self.ep.clock().now()
    }

    /// The collective engine.
    pub fn coll(&self) -> &CollEngine {
        &self.coll
    }

    /// Shared handle to the collective engine (windows keep one for fence).
    pub fn coll_arc(&self) -> Arc<CollEngine> {
        self.coll.clone()
    }

    /// Dissemination barrier over all ranks (virtual-time `O(log p)`).
    pub fn barrier(&self) {
        self.coll.barrier(&self.ep);
    }

    /// Allgather: contribute `bytes`, receive every rank's contribution in
    /// rank order. All contributions must have equal length.
    pub fn allgather(&self, bytes: &[u8]) -> Vec<Vec<u8>> {
        self.coll.allgather(&self.ep, bytes)
    }

    /// Allreduce a u64 with a commutative-associative `op`.
    pub fn allreduce_u64(&self, v: u64, op: impl Fn(u64, u64) -> u64 + Copy) -> u64 {
        self.coll.allreduce_u64(&self.ep, v, op)
    }

    /// Broadcast from `root`: root's `bytes` are returned on every rank.
    pub fn bcast(&self, root: u32, bytes: &[u8]) -> Vec<u8> {
        self.coll.bcast(&self.ep, root, bytes)
    }

    /// The group of all ranks.
    pub fn world(&self) -> Group {
        Group::world(self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_get_distinct_ids() {
        let ranks = Universe::new(6).node_size(2).run(|ctx| ctx.rank());
        assert_eq!(ranks, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn barrier_equalises_clocks() {
        let times = Universe::new(4).node_size(2).run(|ctx| {
            // Skewed work before the barrier.
            ctx.ep().charge(1000.0 * ctx.rank() as f64);
            ctx.barrier();
            ctx.now()
        });
        let t0 = times[0];
        assert!(times.iter().all(|&t| (t - t0).abs() < 1e-6), "{times:?}");
        // Everyone ends past the slowest rank's pre-barrier time.
        assert!(t0 > 3000.0);
    }

    #[test]
    fn allgather_orders_by_rank() {
        let out = Universe::new(5).node_size(8).run(|ctx| {
            let mine = [ctx.rank() as u8 * 10; 4];
            ctx.allgather(&mine)
        });
        for per_rank in out {
            for (r, v) in per_rank.iter().enumerate() {
                assert_eq!(v, &vec![r as u8 * 10; 4]);
            }
        }
    }

    #[test]
    fn allreduce_sums() {
        let out = Universe::new(8)
            .node_size(4)
            .run(|ctx| ctx.allreduce_u64(ctx.rank() as u64 + 1, |a, b| a + b));
        assert!(out.iter().all(|&v| v == 36));
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let out = Universe::new(4).node_size(4).run(|ctx| {
            let data = if ctx.rank() == 2 { vec![7u8, 8, 9] } else { vec![] };
            ctx.bcast(2, &data)
        });
        assert!(out.iter().all(|v| v == &[7, 8, 9]));
    }

    #[test]
    fn repeated_barriers_preserve_clock_monotonicity() {
        let times = Universe::new(3).node_size(1).run(|ctx| {
            let mut prev = ctx.now();
            for _ in 0..10 {
                ctx.barrier();
                let t = ctx.now();
                assert!(t >= prev);
                prev = t;
            }
            prev
        });
        let t0 = times[0];
        assert!(times.iter().all(|&t| (t - t0).abs() < 1e-6));
    }

    #[test]
    fn fault_plan_inherits_root_seed() {
        let (_out, fabric) =
            Universe::new(2).node_size(1).seed(99).faults(FaultPlan::heavy(0)).launch(|ctx| {
                ctx.barrier();
            });
        let faults = fabric.faults();
        assert!(faults.active());
        assert_eq!(faults.plan().seed, splitmix64(99));
        // An explicit plan seed wins over the root seed.
        let (_out, fabric) =
            Universe::new(2).node_size(1).seed(99).faults(FaultPlan::heavy(7)).launch(|ctx| {
                ctx.barrier();
            });
        assert_eq!(fabric.faults().plan().seed, 7);
    }

    #[test]
    fn batch_builder_arms_every_endpoint() {
        let (on, fabric) =
            Universe::new(3).node_size(1).batch(true).launch(|ctx| ctx.ep().batching());
        assert!(on.iter().all(|&b| b));
        assert!(fabric.batch_default());
        let (off, _) = Universe::new(3).node_size(1).batch(false).launch(|ctx| ctx.ep().batching());
        assert!(off.iter().all(|&b| !b));
    }

    #[test]
    fn notify_depth_builder_resizes_rings() {
        let (_out, fabric) = Universe::new(2).node_size(1).notify_depth(8).launch(|ctx| {
            ctx.barrier();
        });
        assert_eq!(fabric.notify().queue(0).capacity(), 8);
        assert_eq!(fabric.notify().depth(), 8);
    }

    #[test]
    fn profile_builder_arms_profiler_and_flight() {
        let (_out, fabric) =
            Universe::new(2).node_size(1).profile(ProfileMode::Full).launch(|ctx| {
                ctx.ep().put(ctx.fabric().register(0, fompi_fabric::Segment::new(64)), 0, &[1u8; 8])
            });
        assert_eq!(fabric.profiler().mode(), ProfileMode::Full);
        assert!(fabric.telemetry().flight_enabled(), "profiling arms the flight recorder");
        assert!(fabric.profiler().total_count() > 0, "full mode times every op");
    }

    #[test]
    fn metrics_builder_enables_telemetry_and_snapshots() {
        let (_out, fabric) = Universe::new(2).node_size(1).metrics(true).launch(|ctx| {
            ctx.barrier();
        });
        assert!(fabric.metrics_enabled());
        assert!(fabric.telemetry().enabled(), "metrics ride the telemetry aggregates");
        let snap = fompi_fabric::metrics_snapshot(&fabric);
        assert!(snap.to_prometheus().contains("fompi_ranks 2"));
    }

    #[test]
    fn txn_retry_builder_lands_on_the_fabric() {
        let (_out, fabric) = Universe::new(2)
            .node_size(1)
            .txn_retry("backoff:8:200:50000")
            .launch(|ctx| ctx.barrier());
        assert_eq!(fabric.txn_retry().as_deref(), Some("backoff:8:200:50000"));
        if std::env::var("FOMPI_TXN_RETRY").is_err() {
            let (_out, fabric) = Universe::new(2).node_size(1).launch(|ctx| ctx.barrier());
            assert!(fabric.txn_retry().is_none(), "unset means the txn layer's default policy");
        }
    }

    #[test]
    fn rmc_builder_lands_on_the_fabric() {
        let (_out, fabric) =
            Universe::new(2).node_size(1).rmc("slots=4,lagging=drop").launch(|ctx| ctx.barrier());
        assert_eq!(fabric.rmc().as_deref(), Some("slots=4,lagging=drop"));
        if std::env::var("FOMPI_RMC").is_err() {
            let (_out, fabric) = Universe::new(2).node_size(1).launch(|ctx| ctx.barrier());
            assert!(fabric.rmc().is_none(), "unset means the rmc layer's defaults");
        }
    }

    #[test]
    fn racecheck_builder_arms_fabric() {
        use fompi_fabric::RacecheckMode;
        let (_out, fabric) = Universe::new(2)
            .node_size(1)
            .racecheck(RacecheckMode::Report)
            .launch(|ctx| ctx.barrier());
        assert!(fabric.shadow().active());
        assert_eq!(fabric.shadow().mode(), RacecheckMode::Report);
        let (_out, fabric) =
            Universe::new(2).node_size(1).racecheck(RacecheckMode::Off).launch(|ctx| ctx.barrier());
        assert!(!fabric.shadow().active());
    }

    #[test]
    fn barrier_cost_scales_logarithmically() {
        let cost_at = |p: usize| {
            let times = Universe::new(p).node_size(1).run(|ctx| {
                ctx.barrier(); // warm-up alignment
                let t0 = ctx.now();
                ctx.barrier();
                ctx.now() - t0
            });
            times[0]
        };
        let c2 = cost_at(2);
        let c16 = cost_at(16);
        // log2(16)/log2(2) = 4 → cost ratio ≈ 4.
        assert!((c16 / c2 - 4.0).abs() < 0.2, "c2={c2} c16={c16}");
    }
}
