//! Atomic memory operations (AMOs).
//!
//! DMAPP offers a limited set of 8-byte atomics (§2.1 of the paper); the
//! same set is available intra-node via CPU atomics. Everything richer
//! (floating-point min, products, ...) must be built from these by the upper
//! layer (foMPI's lock-get-compute-put fallback, §2.4).

/// The hardware-supported 8-byte atomic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// Fetch-and-add (returns the old value).
    Add,
    /// Fetch-and-AND.
    And,
    /// Fetch-and-OR.
    Or,
    /// Fetch-and-XOR.
    Xor,
    /// Atomic swap (returns the old value).
    Swap,
    /// Compare-and-swap: the operand is the *desired* value; the compare
    /// value travels separately. Returns the old value.
    Cas,
    /// Plain atomic read (fetch with no modification).
    Fetch,
}

impl AmoOp {
    /// Apply the operation to `old` with `operand`/`compare`, returning the
    /// new stored value. (The caller returns `old` to the origin.)
    pub fn apply(self, old: u64, operand: u64, compare: u64) -> u64 {
        match self {
            AmoOp::Add => old.wrapping_add(operand),
            AmoOp::And => old & operand,
            AmoOp::Or => old | operand,
            AmoOp::Xor => old ^ operand,
            AmoOp::Swap => operand,
            AmoOp::Cas => {
                if old == compare {
                    operand
                } else {
                    old
                }
            }
            AmoOp::Fetch => old,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_wraps() {
        assert_eq!(AmoOp::Add.apply(u64::MAX, 2, 0), 1);
    }

    #[test]
    fn cas_semantics() {
        assert_eq!(AmoOp::Cas.apply(5, 9, 5), 9); // matched: store desired
        assert_eq!(AmoOp::Cas.apply(5, 9, 4), 5); // mismatched: unchanged
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(AmoOp::And.apply(0b1100, 0b1010, 0), 0b1000);
        assert_eq!(AmoOp::Or.apply(0b1100, 0b1010, 0), 0b1110);
        assert_eq!(AmoOp::Xor.apply(0b1100, 0b1010, 0), 0b0110);
    }

    #[test]
    fn swap_and_fetch() {
        assert_eq!(AmoOp::Swap.apply(7, 42, 0), 42);
        assert_eq!(AmoOp::Fetch.apply(7, 42, 0), 7);
    }
}
