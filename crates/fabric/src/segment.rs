//! Registered memory segments — the exposed window memory.
//!
//! A [`Segment`] is a fixed-size byte region that many threads access
//! concurrently with no external synchronisation, exactly like memory
//! behind an RDMA NIC. To keep this sound in Rust the storage is a slice of
//! `AtomicU64` words:
//!
//! * bulk data moves through relaxed atomic loads/stores, word-at-a-time on
//!   aligned spans and byte-at-a-time (via an `AtomicU8` view of the same
//!   words) on the ragged edges;
//! * 8-byte AMOs (§2.1) operate on the aligned `AtomicU64` directly.
//!
//! Racing accesses therefore produce nondeterministic *values* — which MPI
//! declares an application error — but never UB. Mixing the byte view and
//! the word view on the *same* word concurrently is the one de-facto
//! (x86/aarch64-sound, formally unspecified) mixed-size-atomics pattern; it
//! only occurs when an application races a put against an AMO on the same
//! address, which MPI also forbids.

use crate::amo::AmoOp;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Remote descriptor for a registered segment: the "rkey" returned by
/// memory registration, used by peers to address the memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegKey {
    /// Owning rank.
    pub rank: u32,
    /// Registration id, unique per rank.
    pub id: u64,
}

/// A registered memory region. See module docs for the concurrency rules.
pub struct Segment {
    words: Box<[AtomicU64]>,
    len: usize,
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment").field("len", &self.len).finish()
    }
}

impl Segment {
    /// Allocate a zeroed segment of `len` bytes.
    pub fn new(len: usize) -> Arc<Self> {
        let n_words = len.div_ceil(8);
        let words = (0..n_words).map(|_| AtomicU64::new(0)).collect();
        Arc::new(Self { words, len })
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the segment has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn byte(&self, off: usize) -> &AtomicU8 {
        debug_assert!(off < self.len);
        // SAFETY: `off < len <= words.len()*8`, so the pointer stays inside
        // the allocation. AtomicU8 has size/align 1 and may alias any byte
        // of an AtomicU64 (same in-memory representation as u8).
        unsafe { &*(self.words.as_ptr().cast::<AtomicU8>().add(off)) }
    }

    /// Bounds-check a `[off, off+len)` access.
    #[inline]
    pub fn check(&self, off: usize, len: usize) -> bool {
        off.checked_add(len).is_some_and(|end| end <= self.len)
    }

    /// Write `src` at byte offset `off` (relaxed atomics; word-at-a-time on
    /// the aligned middle).
    pub fn write(&self, off: usize, src: &[u8]) {
        assert!(self.check(off, src.len()), "segment write out of bounds");
        let mut o = off;
        let mut s = src;
        // Ragged head.
        while !o.is_multiple_of(8) && !s.is_empty() {
            self.byte(o).store(s[0], Ordering::Relaxed);
            o += 1;
            s = &s[1..];
        }
        // Aligned middle, 8 bytes per store.
        while s.len() >= 8 {
            let w = u64::from_le_bytes(s[..8].try_into().unwrap());
            self.words[o / 8].store(w, Ordering::Relaxed);
            o += 8;
            s = &s[8..];
        }
        // Ragged tail.
        for &b in s {
            self.byte(o).store(b, Ordering::Relaxed);
            o += 1;
        }
    }

    /// Read `dst.len()` bytes at offset `off` into `dst`.
    pub fn read(&self, off: usize, dst: &mut [u8]) {
        assert!(self.check(off, dst.len()), "segment read out of bounds");
        let mut o = off;
        let mut d = &mut dst[..];
        while !o.is_multiple_of(8) && !d.is_empty() {
            d[0] = self.byte(o).load(Ordering::Relaxed);
            o += 1;
            d = &mut d[1..];
        }
        while d.len() >= 8 {
            let w = self.words[o / 8].load(Ordering::Relaxed);
            d[..8].copy_from_slice(&w.to_le_bytes());
            o += 8;
            d = &mut d[8..];
        }
        for b in d.iter_mut() {
            *b = self.byte(o).load(Ordering::Relaxed);
            o += 1;
        }
    }

    /// Fill `len` bytes at `off` with `val`.
    pub fn fill(&self, off: usize, len: usize, val: u8) {
        assert!(self.check(off, len), "segment fill out of bounds");
        for i in 0..len {
            self.byte(off + i).store(val, Ordering::Relaxed);
        }
    }

    /// The aligned 8-byte atomic word at byte offset `off` (must be
    /// 8-aligned and in bounds). This is the AMO target view.
    #[inline]
    pub fn word(&self, off: usize) -> &AtomicU64 {
        assert!(off.is_multiple_of(8), "AMO offset must be 8-byte aligned");
        assert!(self.check(off, 8), "AMO out of bounds");
        &self.words[off / 8]
    }

    /// Execute an AMO at aligned offset `off`. Returns the *old* value.
    /// Uses AcqRel so that sync-protocol words (completion counters, lock
    /// words, matching-list links) establish happens-before edges.
    pub fn amo(&self, off: usize, op: AmoOp, operand: u64, compare: u64) -> u64 {
        let w = self.word(off);
        match op {
            AmoOp::Add => w.fetch_add(operand, Ordering::AcqRel),
            AmoOp::And => w.fetch_and(operand, Ordering::AcqRel),
            AmoOp::Or => w.fetch_or(operand, Ordering::AcqRel),
            AmoOp::Xor => w.fetch_xor(operand, Ordering::AcqRel),
            AmoOp::Swap => w.swap(operand, Ordering::AcqRel),
            AmoOp::Cas => {
                match w.compare_exchange(compare, operand, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(old) => old,
                    Err(old) => old,
                }
            }
            AmoOp::Fetch => w.load(Ordering::Acquire),
        }
    }

    /// Convenience: read one u64 (little-endian) at arbitrary (possibly
    /// unaligned) byte offset. Not atomic as a unit unless aligned.
    pub fn read_u64(&self, off: usize) -> u64 {
        if off.is_multiple_of(8) && self.check(off, 8) {
            return self.words[off / 8].load(Ordering::Acquire);
        }
        let mut b = [0u8; 8];
        self.read(off, &mut b);
        u64::from_le_bytes(b)
    }

    /// Convenience: write one u64 (little-endian) at byte offset `off`.
    pub fn write_u64(&self, off: usize, v: u64) {
        if off.is_multiple_of(8) && self.check(off, 8) {
            self.words[off / 8].store(v, Ordering::Release);
            return;
        }
        self.write(off, &v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_aligned() {
        let s = Segment::new(64);
        let data: Vec<u8> = (0..32).collect();
        s.write(0, &data);
        let mut out = vec![0u8; 32];
        s.read(0, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn roundtrip_unaligned() {
        let s = Segment::new(64);
        let data: Vec<u8> = (10..41).collect();
        s.write(3, &data);
        let mut out = vec![0u8; 31];
        s.read(3, &mut out);
        assert_eq!(out, data);
        // Neighbouring bytes untouched.
        let mut edge = [0u8; 3];
        s.read(0, &mut edge);
        assert_eq!(edge, [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_write_panics() {
        let s = Segment::new(16);
        s.write(10, &[0u8; 8]);
    }

    #[test]
    fn amo_add_and_cas() {
        let s = Segment::new(32);
        assert_eq!(s.amo(8, AmoOp::Add, 5, 0), 0);
        assert_eq!(s.amo(8, AmoOp::Add, 2, 0), 5);
        assert_eq!(s.read_u64(8), 7);
        assert_eq!(s.amo(8, AmoOp::Cas, 100, 7), 7);
        assert_eq!(s.read_u64(8), 100);
        assert_eq!(s.amo(8, AmoOp::Cas, 1, 7), 100); // fails, old returned
        assert_eq!(s.read_u64(8), 100);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_amo_panics() {
        let s = Segment::new(32);
        s.amo(3, AmoOp::Add, 1, 0);
    }

    #[test]
    fn u64_helpers_unaligned() {
        let s = Segment::new(32);
        s.write_u64(5, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(s.read_u64(5), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn concurrent_amo_sum_is_exact() {
        let s = Segment::new(8);
        std::thread::scope(|sc| {
            for _ in 0..8 {
                sc.spawn(|| {
                    for _ in 0..10_000 {
                        s.amo(0, AmoOp::Add, 1, 0);
                    }
                });
            }
        });
        assert_eq!(s.read_u64(0), 80_000);
    }

    #[test]
    fn fill_works() {
        let s = Segment::new(24);
        s.fill(3, 10, 0xAB);
        let mut out = vec![0u8; 24];
        s.read(0, &mut out);
        assert!(out[3..13].iter().all(|&b| b == 0xAB));
        assert!(out[..3].iter().all(|&b| b == 0));
        assert!(out[13..].iter().all(|&b| b == 0));
    }
}
