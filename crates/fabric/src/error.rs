//! Fabric error type.

use crate::segment::SegKey;

/// Errors surfaced by the fabric layer.
///
/// [`FabricError::SegmentBusy`] and [`FabricError::Backpressure`] are
/// *transient*: the operation was never issued, the caller may retry after
/// the hinted delay (see [`FabricError::is_transient`]). The rest are
/// permanent program or addressing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// The key does not name a registered segment (stale descriptor —
    /// e.g. a detached dynamic-window region).
    UnknownKey(SegKey),
    /// Symmetric registration id already in use on this rank.
    KeyTaken(SegKey),
    /// Access outside the registered region.
    OutOfBounds {
        /// Offending key.
        key: SegKey,
        /// Requested offset.
        offset: usize,
        /// Requested length.
        len: usize,
        /// Segment length.
        seg_len: usize,
    },
    /// Transient registration failure: the NIC's registration resources
    /// are momentarily exhausted. Retry after the hinted delay.
    SegmentBusy {
        /// Suggested backoff before retrying (virtual ns).
        retry_after_ns: u64,
    },
    /// The injection queue refused the operation (nothing was issued).
    /// Retry after the hinted delay.
    Backpressure {
        /// Suggested backoff before retrying (virtual ns).
        retry_after_ns: u64,
    },
    /// XPMEM attach across nodes: the segment owner is not co-located
    /// with the attaching rank, so no shared mapping exists. Permanent.
    CrossNodeAttach {
        /// Attaching rank.
        origin: u32,
        /// Segment owner.
        target: u32,
    },
}

impl FabricError {
    /// May the caller retry this operation after backing off?
    pub fn is_transient(&self) -> bool {
        matches!(self, FabricError::SegmentBusy { .. } | FabricError::Backpressure { .. })
    }
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::UnknownKey(k) => write!(f, "unknown segment key {k:?}"),
            FabricError::KeyTaken(k) => write!(f, "segment key already registered: {k:?}"),
            FabricError::OutOfBounds { key, offset, len, seg_len } => write!(
                f,
                "access [{offset}, {}) out of bounds of segment {key:?} (len {seg_len})",
                offset + len
            ),
            FabricError::SegmentBusy { retry_after_ns } => {
                write!(f, "segment registration transiently busy (retry after {retry_after_ns} ns)")
            }
            FabricError::Backpressure { retry_after_ns } => {
                write!(f, "injection queue backpressure (retry after {retry_after_ns} ns)")
            }
            FabricError::CrossNodeAttach { origin, target } => {
                write!(
                    f,
                    "XPMEM attach requires co-located ranks: {origin} and {target} share no node"
                )
            }
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        // Leaf errors: no underlying cause.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let k = SegKey { rank: 3, id: 7 };
        let e = FabricError::OutOfBounds { key: k, offset: 8, len: 16, seg_len: 10 };
        let s = e.to_string();
        assert!(s.contains("out of bounds"));
        assert!(s.contains("len 10"));
    }

    #[test]
    fn transience_classification() {
        assert!(FabricError::SegmentBusy { retry_after_ns: 10 }.is_transient());
        assert!(FabricError::Backpressure { retry_after_ns: 10 }.is_transient());
        assert!(!FabricError::UnknownKey(SegKey { rank: 0, id: 1 }).is_transient());
        assert!(!FabricError::CrossNodeAttach { origin: 0, target: 5 }.is_transient());
    }

    #[test]
    fn transient_display_carries_hint() {
        let s = FabricError::Backpressure { retry_after_ns: 1234 }.to_string();
        assert!(s.contains("1234"));
    }
}
