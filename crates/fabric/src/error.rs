//! Fabric error type.

use crate::segment::SegKey;

/// Errors surfaced by the fabric layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// The key does not name a registered segment (stale descriptor —
    /// e.g. a detached dynamic-window region).
    UnknownKey(SegKey),
    /// Symmetric registration id already in use on this rank.
    KeyTaken(SegKey),
    /// Access outside the registered region.
    OutOfBounds {
        /// Offending key.
        key: SegKey,
        /// Requested offset.
        offset: usize,
        /// Requested length.
        len: usize,
        /// Segment length.
        seg_len: usize,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::UnknownKey(k) => write!(f, "unknown segment key {k:?}"),
            FabricError::KeyTaken(k) => write!(f, "segment key already registered: {k:?}"),
            FabricError::OutOfBounds { key, offset, len, seg_len } => write!(
                f,
                "access [{offset}, {}) out of bounds of segment {key:?} (len {seg_len})",
                offset + len
            ),
        }
    }
}

impl std::error::Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let k = SegKey { rank: 3, id: 7 };
        let e = FabricError::OutOfBounds { key: k, offset: 8, len: 16, seg_len: 10 };
        let s = e.to_string();
        assert!(s.contains("out of bounds"));
        assert!(s.contains("len 10"));
    }
}
