//! Deterministic fault injection — the "chaos" side of the software NIC.
//!
//! The paper's protocols (§2.2–2.3) are argued correct assuming a
//! well-behaved NIC. Real fabrics jitter latencies, retire completions out
//! of issue order, backpressure injection queues, deschedule ranks (OS
//! noise) and transiently fail memory registrations. This module perturbs
//! the virtual-time substrate in exactly those ways so the synchronisation
//! protocols can be soaked for correctness under adversity, while keeping
//! every run **bit-deterministic for a given seed**.
//!
//! ## Determinism contract
//!
//! Each rank owns an independent PRNG stream derived from the plan's root
//! seed ([`crate::rng::splitmix64`]` (seed ^ rank-salt)`), so the sequence
//! of draws a rank makes depends only on its own program order — never on
//! thread scheduling. For the same reason, faults are drawn **only at
//! call sites executed a deterministic number of times**: issue-side
//! operations (`put`/`get`/AMO issue, releases, attach). Polling
//! primitives (`read_sync`, `amo_sync` retry loops) spin a
//! schedule-dependent number of times under contention and therefore never
//! touch the fault RNG — exactly as a real NIC perturbs packets, not the
//! CPU's spin loop.
//!
//! ## Ordering invariants preserved
//!
//! Completion delays are applied to an operation's *own* completion time
//! before any ordering combination, so DMAPP's ordering classes survive:
//! [`crate::Endpoint::amo_sync_release_ordered`] still publishes
//! `max(own completion, pending horizon)` — a delayed release AMO can
//! never pass the data it fences. Unordered flavours (implicit puts,
//! plain releases) may retire arbitrarily late relative to each other,
//! which is what the soak harness stresses.
//!
//! The disabled path is one relaxed atomic load, mirroring
//! [`crate::telemetry::Telemetry::enabled`].

use crate::rng::{splitmix64, Rng};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Rank-salt stride for deriving per-rank RNG streams from the root seed.
const RANK_STREAM_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Classes of injected fault, for counters and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FaultKind {
    /// Proportional per-op latency jitter.
    Jitter,
    /// Heavy-tail latency spike (bounded Pareto).
    Spike,
    /// Delayed retirement of a nonblocking/implicit completion.
    Delay,
    /// Injection-queue backpressure (origin clock stalled, or a
    /// nonblocking issue rejected with [`crate::FabricError::Backpressure`]).
    Backpressure,
    /// Rank pause — simulated OS noise descheduling the whole rank.
    Pause,
    /// Transient registration failure on the attach path
    /// ([`crate::FabricError::SegmentBusy`]).
    Busy,
}

impl FaultKind {
    /// Number of fault classes.
    pub const COUNT: usize = 6;

    /// All kinds in `index` order.
    pub const ALL: [FaultKind; FaultKind::COUNT] = [
        FaultKind::Jitter,
        FaultKind::Spike,
        FaultKind::Delay,
        FaultKind::Backpressure,
        FaultKind::Pause,
        FaultKind::Busy,
    ];

    /// Dense index for counter arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Jitter => "jitter",
            FaultKind::Spike => "spike",
            FaultKind::Delay => "delay",
            FaultKind::Backpressure => "backpressure",
            FaultKind::Pause => "pause",
            FaultKind::Busy => "busy",
        }
    }
}

/// A complete, seeded description of what to inject. Probabilities are per
/// eligible operation; magnitudes are virtual nanoseconds. The all-zero
/// plan ([`FaultPlan::disabled`]) injects nothing and is never armed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Root seed; per-rank streams are derived from it.
    pub seed: u64,
    /// Proportional latency jitter: each op's wire latency is multiplied
    /// by `1 + U[0, jitter_frac)`.
    pub jitter_frac: f64,
    /// Probability of a heavy-tail latency spike on an op.
    pub spike_prob: f64,
    /// Spike scale: spikes are `spike_ns / sqrt(U)`, capped at 64×.
    pub spike_ns: f64,
    /// Probability a nonblocking/implicit completion retires late.
    pub delay_prob: f64,
    /// Maximum extra retirement delay (uniform in `[0, delay_ns)`).
    pub delay_ns: f64,
    /// Probability the injection queue backpressures an op's issue.
    pub bp_prob: f64,
    /// Maximum issue stall (uniform in `[0, bp_ns)`); also scales the
    /// `retry_after_ns` hint on rejected nonblocking issues.
    pub bp_ns: f64,
    /// Probability an explicit-nonblocking issue is *rejected* with
    /// [`crate::FabricError::Backpressure`] instead of stalled (callers
    /// must retry after the hinted delay).
    pub bp_reject_prob: f64,
    /// Probability an op observes the rank being descheduled (OS noise).
    pub pause_prob: f64,
    /// Pause length scale: pauses are `pause_ns · (0.5 + U)`.
    pub pause_ns: f64,
    /// Probability a registration attempt fails transiently
    /// ([`crate::FabricError::SegmentBusy`]).
    pub busy_prob: f64,
    /// Busy retry hint scale: `busy_ns · (0.5 + U)`.
    pub busy_ns: f64,
}

impl FaultPlan {
    /// The inert plan: nothing is ever injected.
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            jitter_frac: 0.0,
            spike_prob: 0.0,
            spike_ns: 0.0,
            delay_prob: 0.0,
            delay_ns: 0.0,
            bp_prob: 0.0,
            bp_ns: 0.0,
            bp_reject_prob: 0.0,
            pause_prob: 0.0,
            pause_ns: 0.0,
            busy_prob: 0.0,
            busy_ns: 0.0,
        }
    }

    /// A mild plan: realistic fabric weather. Jitter on every op, rare
    /// spikes and pauses, occasional delayed completions.
    pub fn light(seed: u64) -> Self {
        FaultPlan {
            seed,
            jitter_frac: 0.10,
            spike_prob: 0.01,
            spike_ns: 5_000.0,
            delay_prob: 0.05,
            delay_ns: 3_000.0,
            bp_prob: 0.02,
            bp_ns: 2_000.0,
            bp_reject_prob: 0.0,
            pause_prob: 0.005,
            pause_ns: 20_000.0,
            busy_prob: 0.0,
            busy_ns: 1_000.0,
        }
    }

    /// An adversarial plan: heavy jitter, frequent reordering, rejected
    /// issues and transient registration failures. This is the soak
    /// harness's storm setting.
    pub fn heavy(seed: u64) -> Self {
        FaultPlan {
            seed,
            jitter_frac: 0.50,
            spike_prob: 0.05,
            spike_ns: 20_000.0,
            delay_prob: 0.20,
            delay_ns: 10_000.0,
            bp_prob: 0.10,
            bp_ns: 5_000.0,
            bp_reject_prob: 0.02,
            pause_prob: 0.02,
            pause_ns: 50_000.0,
            busy_prob: 0.25,
            busy_ns: 1_000.0,
        }
    }

    /// Replace the seed, keeping the rest of the plan.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Does the plan inject anything at all?
    pub fn any(&self) -> bool {
        self.jitter_frac > 0.0
            || self.spike_prob > 0.0
            || self.delay_prob > 0.0
            || self.bp_prob > 0.0
            || self.bp_reject_prob > 0.0
            || self.pause_prob > 0.0
            || self.busy_prob > 0.0
    }

    /// Read a plan from `FOMPI_FAULTS` (see [`FaultPlan::parse`]);
    /// `Ok(None)` when unset, empty or `0`; `Err` on a malformed spec (the
    /// error names the offending clause — callers must surface it, never
    /// swallow it as "disabled").
    pub fn from_env() -> Result<Option<Self>, FaultParseError> {
        match std::env::var("FOMPI_FAULTS") {
            Ok(spec) => Self::parse(&spec),
            Err(_) => Ok(None),
        }
    }

    /// Parse a `FOMPI_FAULTS` spec. Grammar (see EXPERIMENTS.md):
    ///
    /// * `0` / empty — disabled (`Ok(None)`);
    /// * `1` or `light` — [`FaultPlan::light`];
    /// * `heavy` — [`FaultPlan::heavy`];
    /// * a comma-separated `key=value` list over a **light** base:
    ///   `seed`, `jitter`, `spike`, `spike_ns`, `delay`, `delay_ns`, `bp`,
    ///   `bp_ns`, `bp_reject`, `pause`, `pause_ns`, `busy`, `busy_ns` —
    ///   e.g. `FOMPI_FAULTS=seed=42,jitter=0.3,busy=0.2`. The shorthands
    ///   may also prefix the list: `heavy,seed=7`.
    ///
    /// The seed, unless given, comes from `FOMPI_SEED` (default 1).
    /// Malformed clauses are an error naming the clause, not a silent
    /// disable: a typo in a chaos spec must never quietly run clean.
    pub fn parse(spec: &str) -> Result<Option<Self>, FaultParseError> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "0" {
            return Ok(None);
        }
        let err = |clause: &str, reason: &str| FaultParseError {
            clause: clause.to_string(),
            reason: reason.to_string(),
        };
        let default_seed = crate::rng::root_seed_from_env(1);
        let mut plan = FaultPlan::light(default_seed);
        for part in spec.split(',') {
            let part = part.trim();
            match part {
                "" => continue,
                "1" | "light" => plan = FaultPlan::light(plan.seed),
                "heavy" => plan = FaultPlan::heavy(plan.seed),
                _ => {
                    let Some((key, val)) = part.split_once('=') else {
                        return Err(err(part, "expected `light`, `heavy` or `key=value`"));
                    };
                    let key = key.trim();
                    let val = val.trim();
                    if key == "seed" {
                        plan.seed = parse_u64(val)
                            .ok_or_else(|| err(part, "seed wants a decimal or 0x-hex u64"))?;
                        continue;
                    }
                    let v: f64 = val.parse().map_err(|_| err(part, "value must be a number"))?;
                    match key {
                        "jitter" => plan.jitter_frac = v,
                        "spike" => plan.spike_prob = v,
                        "spike_ns" => plan.spike_ns = v,
                        "delay" => plan.delay_prob = v,
                        "delay_ns" => plan.delay_ns = v,
                        "bp" => plan.bp_prob = v,
                        "bp_ns" => plan.bp_ns = v,
                        "bp_reject" => plan.bp_reject_prob = v,
                        "pause" => plan.pause_prob = v,
                        "pause_ns" => plan.pause_ns = v,
                        "busy" => plan.busy_prob = v,
                        "busy_ns" => plan.busy_ns = v,
                        _ => return Err(err(part, "unknown key")),
                    }
                }
            }
        }
        Ok(Some(plan))
    }
}

/// A malformed `FOMPI_FAULTS` clause: what was wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    /// The offending comma-separated clause, verbatim.
    pub clause: String,
    /// Why it was rejected.
    pub reason: String,
}

impl std::fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} in clause `{}`", self.reason, self.clause)
    }
}

impl std::error::Error for FaultParseError {}

/// Parse a decimal or `0x`-prefixed u64.
fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// What one issue-side draw decided to inject. All fields are virtual ns;
/// zero means "not injected".
#[derive(Debug, Clone, Copy, Default)]
pub struct OpFaults {
    /// Rank pause charged at issue (OS noise).
    pub pause_ns: f64,
    /// Injection-queue stall charged at issue.
    pub stall_ns: f64,
    /// Extra wire latency (jitter + spike) added to the op's completion.
    pub extra_ns: f64,
    /// Extra retirement delay for delayable (nonblocking) completions.
    pub delay_ns: f64,
}

/// Per-rank fault state. Single-writer: only the owning rank's thread
/// draws from its stream (the same discipline as telemetry's event rings).
struct RankFaults {
    rng: UnsafeCell<Rng>,
}

// SAFETY: each rank's stream is touched only from that rank's thread; the
// container is shared read-only. Same justification as telemetry's
// per-rank rings.
unsafe impl Sync for RankFaults {}

/// The fault hub, owned by [`crate::Fabric`]. [`Faults::active`] is one
/// relaxed load on the disabled path — the fig4a latency path stays
/// unperturbed when no plan is armed.
pub struct Faults {
    active: AtomicBool,
    plan: FaultPlan,
    ranks: Box<[RankFaults]>,
    injected: [AtomicU64; FaultKind::COUNT],
}

impl Faults {
    /// Build the hub for `p` ranks. Armed iff `plan` injects anything.
    pub fn new(p: usize, plan: FaultPlan) -> Self {
        let ranks = (0..p as u64)
            .map(|r| RankFaults {
                rng: UnsafeCell::new(Rng::seed_from_u64(splitmix64(
                    plan.seed.wrapping_add((r + 1).wrapping_mul(RANK_STREAM_SALT)),
                ))),
            })
            .collect();
        Faults { active: AtomicBool::new(plan.any()), plan, ranks, injected: Default::default() }
    }

    /// Hub configured from `FOMPI_FAULTS` (inert when unset). A malformed
    /// spec is a *startup error*, not a silent disable: nothing is worse
    /// than believing a soak ran under chaos when a typo turned it off.
    pub fn from_env(p: usize) -> Self {
        match FaultPlan::from_env() {
            Ok(plan) => Self::new(p, plan.unwrap_or_else(FaultPlan::disabled)),
            Err(e) => panic!("invalid FOMPI_FAULTS: {e}"),
        }
    }

    /// Is any fault injection armed? One relaxed load.
    #[inline]
    pub fn active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// How many faults of `kind` have been injected so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()].load(Ordering::Relaxed)
    }

    /// Total injected faults across all classes.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    #[inline]
    fn count(&self, kind: FaultKind) {
        self.injected[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn rng_ptr(&self, rank: u32) -> *mut Rng {
        self.ranks[rank as usize].rng.get()
    }

    /// Draw the faults hitting one issue-side operation whose unperturbed
    /// wire latency is `base_ns`. `delayable` marks completions that may
    /// legally retire late (nonblocking/implicit flavours and unordered
    /// releases). Callers must have checked [`Faults::active`]; this is
    /// the cold path and deliberately out-of-line.
    #[inline(never)]
    pub fn draw_op(&self, rank: u32, base_ns: f64, delayable: bool) -> OpFaults {
        let p = &self.plan;
        // SAFETY: single-writer per rank (see `RankFaults`).
        let rng = unsafe { &mut *self.rng_ptr(rank) };
        let mut out = OpFaults::default();
        if p.pause_prob > 0.0 && rng.next_f64() < p.pause_prob {
            out.pause_ns = p.pause_ns * (0.5 + rng.next_f64());
            self.count(FaultKind::Pause);
        }
        if p.bp_prob > 0.0 && rng.next_f64() < p.bp_prob {
            out.stall_ns = p.bp_ns * rng.next_f64();
            self.count(FaultKind::Backpressure);
        }
        if p.jitter_frac > 0.0 {
            let j = base_ns * p.jitter_frac * rng.next_f64();
            if j > 0.0 {
                out.extra_ns += j;
                self.count(FaultKind::Jitter);
            }
        }
        if p.spike_prob > 0.0 && rng.next_f64() < p.spike_prob {
            // Bounded Pareto-ish tail: median ≈ spike_ns·√2, capped 64×.
            let u = rng.next_f64().max(1e-9);
            out.extra_ns += (p.spike_ns / u.sqrt()).min(64.0 * p.spike_ns);
            self.count(FaultKind::Spike);
        }
        if delayable && p.delay_prob > 0.0 && rng.next_f64() < p.delay_prob {
            out.delay_ns = p.delay_ns * rng.next_f64();
            self.count(FaultKind::Delay);
        }
        out
    }

    /// Should this explicit-nonblocking issue be rejected with
    /// backpressure? Returns the retry hint. Callers must have checked
    /// [`Faults::active`].
    #[inline(never)]
    pub fn draw_reject(&self, rank: u32) -> Option<u64> {
        let p = &self.plan;
        if p.bp_reject_prob <= 0.0 {
            return None;
        }
        // SAFETY: single-writer per rank (see `RankFaults`).
        let rng = unsafe { &mut *self.rng_ptr(rank) };
        if rng.next_f64() < p.bp_reject_prob {
            self.count(FaultKind::Backpressure);
            Some((p.bp_ns.max(100.0) * (0.5 + rng.next_f64())) as u64)
        } else {
            None
        }
    }

    /// Should this registration attempt fail transiently? Returns the
    /// retry hint. Safe to call on the disabled path (checks `active`
    /// itself — attach is not latency-critical).
    pub fn draw_busy(&self, rank: u32) -> Option<u64> {
        if !self.active() {
            return None;
        }
        let p = &self.plan;
        if p.busy_prob <= 0.0 {
            return None;
        }
        // SAFETY: single-writer per rank (see `RankFaults`).
        let rng = unsafe { &mut *self.rng_ptr(rank) };
        if rng.next_f64() < p.busy_prob {
            self.count(FaultKind::Busy);
            Some((p.busy_ns.max(100.0) * (0.5 + rng.next_f64())) as u64)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_is_inert() {
        let f = Faults::new(4, FaultPlan::disabled());
        assert!(!f.active());
        assert_eq!(f.draw_busy(0), None);
        assert_eq!(f.total_injected(), 0);
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let a = Faults::new(2, FaultPlan::heavy(42));
        let b = Faults::new(2, FaultPlan::heavy(42));
        for _ in 0..200 {
            let x = a.draw_op(0, 1000.0, true);
            let y = b.draw_op(0, 1000.0, true);
            assert_eq!(x.pause_ns.to_bits(), y.pause_ns.to_bits());
            assert_eq!(x.stall_ns.to_bits(), y.stall_ns.to_bits());
            assert_eq!(x.extra_ns.to_bits(), y.extra_ns.to_bits());
            assert_eq!(x.delay_ns.to_bits(), y.delay_ns.to_bits());
        }
        assert_eq!(a.total_injected(), b.total_injected());
        assert!(a.total_injected() > 0, "heavy plan must actually inject");
    }

    #[test]
    fn rank_streams_are_independent() {
        // Draws on rank 1 must not perturb rank 0's stream.
        let a = Faults::new(2, FaultPlan::heavy(7));
        let b = Faults::new(2, FaultPlan::heavy(7));
        let mut xs = Vec::new();
        for i in 0..50 {
            if i % 2 == 0 {
                a.draw_op(1, 500.0, false); // interleaved noise on rank 1
            }
            xs.push(a.draw_op(0, 1000.0, true).extra_ns.to_bits());
        }
        for x in xs {
            assert_eq!(x, b.draw_op(0, 1000.0, true).extra_ns.to_bits());
        }
    }

    #[test]
    fn spike_tail_is_bounded() {
        let f = Faults::new(1, FaultPlan { spike_prob: 1.0, ..FaultPlan::heavy(3) });
        for _ in 0..1000 {
            let d = f.draw_op(0, 0.0, false);
            assert!(d.extra_ns <= 64.0 * f.plan().spike_ns + 1e-9);
        }
    }

    #[test]
    fn busy_draws_eventually_pass() {
        let f = Faults::new(1, FaultPlan::heavy(11));
        let mut tries = 0;
        while f.draw_busy(0).is_some() {
            tries += 1;
            assert!(tries < 1000, "busy_prob 0.25 cannot fail forever");
        }
    }

    #[test]
    fn parse_shorthands_and_overrides() {
        assert_eq!(FaultPlan::parse("0"), Ok(None));
        assert_eq!(FaultPlan::parse(""), Ok(None));
        let light = FaultPlan::parse("1").unwrap().unwrap();
        assert_eq!(light.jitter_frac, FaultPlan::light(light.seed).jitter_frac);
        let h = FaultPlan::parse("heavy,seed=0x2A").unwrap().unwrap();
        assert_eq!(h.seed, 42);
        assert_eq!(h.busy_prob, FaultPlan::heavy(0).busy_prob);
        let c = FaultPlan::parse("seed=9,jitter=0.3,busy=0.2,busy_ns=500").unwrap().unwrap();
        assert_eq!(c.seed, 9);
        assert_eq!(c.jitter_frac, 0.3);
        assert_eq!(c.busy_prob, 0.2);
        assert_eq!(c.busy_ns, 500.0);
    }

    #[test]
    fn parse_errors_name_the_offending_clause() {
        // A bare word that is not a shorthand is an error, not "disabled".
        let e = FaultPlan::parse("nonsense").unwrap_err();
        assert_eq!(e.clause, "nonsense");
        // A non-numeric value names its clause.
        let e = FaultPlan::parse("heavy,jitter=abc,busy=0.2").unwrap_err();
        assert_eq!(e.clause, "jitter=abc");
        assert!(e.to_string().contains("jitter=abc"), "{e}");
        // Unknown keys are errors too (typo'd chaos must not run clean).
        let e = FaultPlan::parse("jittr=0.3").unwrap_err();
        assert_eq!(e.clause, "jittr=0.3");
        assert!(e.reason.contains("unknown key"));
        // Bad seeds are caught.
        let e = FaultPlan::parse("seed=0xZZ").unwrap_err();
        assert_eq!(e.clause, "seed=0xZZ");
        // Display carries enough to act on.
        assert!(FaultPlan::parse("busy_ns=").unwrap_err().to_string().contains("must be a number"));
    }

    #[test]
    fn reject_draws_follow_probability() {
        let f = Faults::new(1, FaultPlan { bp_reject_prob: 1.0, ..FaultPlan::heavy(5) });
        assert!(f.draw_reject(0).is_some());
        let g = Faults::new(1, FaultPlan { bp_reject_prob: 0.0, ..FaultPlan::heavy(5) });
        assert!(g.draw_reject(0).is_none());
    }
}
